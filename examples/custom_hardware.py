"""What-if hardware studies with the cost model.

Because the simulated device is parameterized by a
:class:`~repro.hw.spec.GPUSpec` / :class:`~repro.hw.spec.PCIeSpec`, the
same pipeline can be "re-run" on hypothetical platforms: a K40-class card,
a PCIe Gen3 link, or a bandwidth-doubled future part.  This example sweeps
the platform and reports how the paper's eigensolver stage would respond —
the kind of projection the cost model makes cheap.

Run:  python examples/custom_hardware.py
"""

from dataclasses import replace

import numpy as np

from repro.cuda import Device
from repro.cusparse import coo_to_device
from repro.core import hybrid_eigensolver
from repro.datasets import stochastic_block_model
from repro.graph import device_sym_normalize
from repro.hw.spec import K20C, PCIE_X16_GEN2
from repro.sparse import from_edge_list

PLATFORMS = {
    "K20c + Gen2 (paper)": (K20C, PCIE_X16_GEN2),
    "K40-class (+30% bw)": (
        replace(K20C, name="K40-ish", mem_bandwidth_gbs=288.0,
                peak_gflops_dp=1430.0, sm_count=15),
        PCIE_X16_GEN2,
    ),
    "K20c + Gen3 link": (
        K20C,
        replace(PCIE_X16_GEN2, name="PCIe x16 Gen3", peak_gbs=16.0),
    ),
    "2x memory bandwidth": (
        replace(K20C, name="K20c-2xbw", mem_bandwidth_gbs=416.0),
        PCIE_X16_GEN2,
    ),
}


def main() -> None:
    rng = np.random.default_rng(0)
    edges, _ = stochastic_block_model([100] * 10, p_in=0.3, p_out=0.01, rng=rng)
    W = from_edge_list(edges, n_nodes=1000)
    k = 10

    print(f"workload: n={W.shape[0]}, nnz={W.nnz}, k={k}\n")
    print(f"{'platform':<24}{'eig sim t/s':>14}{'comm/s':>10}{'comm%':>8}")
    print("-" * 56)
    base = None
    for name, (gpu, pcie) in PLATFORMS.items():
        device = Device(spec=gpu, pcie=pcie)
        dcsr = device_sym_normalize(coo_to_device(device, W.sorted_by_row()))
        t0 = device.elapsed
        hybrid_eigensolver(device, dcsr, k=k, tol=1e-8, seed=0)
        total = device.elapsed - t0
        comm = device.timeline.communication_time(tag="eigensolver")
        if base is None:
            base = total
        print(
            f"{name:<24}{total:>14.5f}{comm:>10.5f}"
            f"{100 * comm / total:>7.1f}%   ({base / total:.2f}x vs paper HW)"
        )

    print(
        "\nNote: the numerics are identical on every platform — only the"
        "\nsimulated clock responds to the specs, which is the point."
    )


if __name__ == "__main__":
    main()
