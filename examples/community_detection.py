"""Community detection on social / co-authorship graphs with a three-way
implementation comparison — a miniature of the paper's Tables IV and VI.

Runs the FB-like and DBLP-like workloads through the hybrid CUDA pipeline
(simulated K20c times) and the Matlab-like / Python-like baselines
(modeled Xeon times), then prints the comparison table and the paper-scale
projection next to the published numbers.

Run:  python examples/community_detection.py
"""

from repro.bench import format_comparison, format_paper_check, run_comparison


def main() -> None:
    for name, scale in [("fb", 0.5), ("dblp", 0.02)]:
        print("=" * 68)
        r = run_comparison(name, scale=scale, seed=0, eig_tol=1e-8)
        print(format_comparison(r))
        print()
        print(format_paper_check(r))
        print()


if __name__ == "__main__":
    main()
