"""Using the reverse communication interface directly — the paper's
Algorithm 3 written out by hand.

The RCI is what lets the eigensolver's *driver* run in one place while the
matrix-vector products run anywhere else: here we drive it against (a) a
plain host operator and (b) the simulated GPU with explicit PCIe
transfers, and show the two agree while the device timeline records the
hybrid run's transfer traffic.

Run:  python examples/reverse_communication.py
"""

import numpy as np

from repro.cuda import Device
from repro.cusparse import coo_to_device, csrmv
from repro.datasets import stochastic_block_model
from repro.graph import device_sym_normalize, sym_normalized_adjacency
from repro.linalg import SymEigProblem
from repro.sparse import from_edge_list

K = 8


def host_driver(S, k: int):
    """Algorithm 3 with a host SpMV (what Matlab/Python effectively do)."""
    prob = SymEigProblem(n=S.shape[0], k=k, which="LA", tol=1e-10, seed=0)
    while not prob.converged():
        prob.take_step()
        if prob.needs_matvec():
            x = prob.get_vector()
            prob.put_vector(S.matvec(x))
    return prob.find_eigenvectors(), prob.result


def hybrid_driver(device: Device, W, k: int):
    """Algorithm 3 verbatim: CPU driver, GPU SpMV, PCIe in between."""
    dcoo = coo_to_device(device, W.sorted_by_row())
    A = device_sym_normalize(dcoo)  # Algorithm 2 on the device
    n = A.shape[0]
    dx = device.empty(n)
    dy = device.empty(n)

    prob = SymEigProblem(n=n, k=k, which="LA", tol=1e-10, seed=0)
    while not prob.converged():
        prob.take_step()  # CPU: implicitly restarted Lanczos bookkeeping
        if prob.needs_matvec():
            dx.copy_from_host(prob.get_vector())  # H2D
            csrmv(A, dx, dy)                      # cusparseDcsrmv
            prob.put_vector(dy.copy_to_host())    # D2H
    return prob.find_eigenvectors(), prob.result


def main() -> None:
    rng = np.random.default_rng(3)
    edges, _ = stochastic_block_model([60] * K, p_in=0.4, p_out=0.01, rng=rng)
    W = from_edge_list(edges, n_nodes=60 * K)
    S = sym_normalized_adjacency(W)

    (w_host, _), res_host = host_driver(S, K)
    device = Device()
    (w_gpu, _), res_gpu = hybrid_driver(device, W, K)

    print(f"top-{K} eigenvalues (host driver):   {np.round(w_host[::-1], 6)}")
    print(f"top-{K} eigenvalues (hybrid driver): {np.round(w_gpu[::-1], 6)}")
    print(f"max difference: {np.max(np.abs(w_host - w_gpu)):.2e}")
    print()
    print(
        f"hybrid run: {res_gpu.n_op} operator applications, "
        f"{res_gpu.n_restarts} implicit restarts"
    )
    print(
        f"device timeline: {device.timeline.count('h2d')} H2D / "
        f"{device.timeline.count('d2h')} D2H transfers, "
        f"{device.timeline.communication_time() * 1e3:.3f} ms on PCIe vs "
        f"{device.timeline.computation_time() * 1e3:.3f} ms computing"
    )


if __name__ == "__main__":
    main()
