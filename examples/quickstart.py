"""Quickstart: cluster a community-structured graph in ~10 lines.

Generates a stochastic block model graph (the paper's Syn200 family),
clusters it with the hybrid CPU-GPU pipeline, and reports quality and the
simulated per-stage times on the paper's Tesla K20c platform.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SpectralClustering
from repro.datasets import stochastic_block_model
from repro.metrics import adjusted_rand_index, modularity, ncut
from repro.sparse import from_edge_list


def main() -> None:
    # --- build a graph with 12 planted communities --------------------
    rng = np.random.default_rng(7)
    sizes = [120] * 12
    edges, truth = stochastic_block_model(sizes, p_in=0.2, p_out=0.005, rng=rng)
    W = from_edge_list(edges, n_nodes=sum(sizes))
    print(f"graph: {W.shape[0]} nodes, {W.nnz // 2} edges, 12 planted communities")

    # --- cluster -------------------------------------------------------
    model = SpectralClustering(n_clusters=12, seed=0)
    result = model.fit(graph=W)

    # --- inspect -------------------------------------------------------
    print()
    print(result.summary())
    print()
    print(f"ARI vs planted communities : {adjusted_rand_index(result.labels, truth):.3f}")
    print(f"NCut (recovered / planted) : {ncut(W, result.labels):.3f} / {ncut(W, truth):.3f}")
    print(f"modularity                 : {modularity(W, result.labels):.3f}")


if __name__ == "__main__":
    main()
