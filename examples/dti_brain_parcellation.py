"""Brain parcellation on a synthetic DTI volume — the paper's flagship
workload (Table III).

The full point-input pipeline runs: voxel profiles + ε-distance edge list
→ Algorithm 1 (GPU similarity matrix, cross-correlation measure)
→ Algorithm 2 (normalized operator) → Algorithm 3 (hybrid eigensolver)
→ Algorithm 4 (GPU k-means), and the result is compared against the
ground-truth parcellation plus the serial Matlab/Python-style baselines.

Run:  python examples/dti_brain_parcellation.py
"""

import numpy as np

from repro import SpectralClustering
from repro.baselines import (
    MATLAB_2015A,
    PYTHON_27,
    similarity_serial_time,
    similarity_vectorized_time,
)
from repro.datasets import make_dti_volume
from repro.metrics import adjusted_rand_index, purity


def main() -> None:
    # --- synthesize a small brain volume --------------------------------
    # (the paper's NKI volume is 142K voxels; this is a CI-sized stand-in
    #  with the identical structure: 2 mm voxels, 90-dim profiles, 4 mm
    #  neighborhood — scale the grid up to approach paper size)
    vol = make_dti_volume(grid=(18, 20, 18), n_regions=24, noise=0.25, seed=1)
    print(
        f"volume: {vol.n} voxels, {vol.edges.shape[0]} ε-pairs, "
        f"{vol.n_regions} parcels, d={vol.d}"
    )

    # --- hybrid pipeline -------------------------------------------------
    model = SpectralClustering(
        n_clusters=vol.n_regions,
        similarity="crosscorr",  # Eq. 7, the paper's DTI measure
        eig_tol=1e-8,
        seed=0,
    )
    result = model.fit(X=vol.profiles, edges=vol.edges)

    print()
    print(result.summary())

    # --- quality ----------------------------------------------------------
    ari = adjusted_rand_index(result.labels, vol.labels)
    pur = purity(result.labels, vol.labels)
    print()
    print(f"parcellation quality: ARI={ari:.3f}  purity={pur:.3f}")

    # --- what the serial baselines would pay for this similarity matrix ---
    nnz = vol.edges.shape[0]
    print()
    print("similarity-matrix construction (this volume, modeled):")
    print(f"  CUDA (simulated)      : {result.timings.simulated['similarity']:.4f} s")
    print(f"  Matlab serial loop    : {similarity_serial_time(MATLAB_2015A, nnz):.2f} s")
    print(f"  Python serial loop    : {similarity_serial_time(PYTHON_27, nnz):.2f} s")
    print(f"  Matlab vectorized     : {similarity_vectorized_time(MATLAB_2015A, nnz):.3f} s")
    print(f"  Python vectorized     : {similarity_vectorized_time(PYTHON_27, nnz):.3f} s")

    # --- the paper's Table VII observation on this run --------------------
    frac = result.profile.communication_fraction()
    print()
    print(
        f"PCIe communication: {result.profile.communication:.4f} s "
        f"({100 * frac:.1f}% of simulated total) over "
        f"{result.eig_stats['pcie_round_trips']} eigensolver round trips"
    )


if __name__ == "__main__":
    main()
