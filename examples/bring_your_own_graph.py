"""Clustering a graph from a SNAP-format edge-list file.

The paper's FB and DBLP datasets ship from snap.stanford.edu as plain
edge-list text files; this example writes a small file in that exact
format (so it runs offline), loads it through the SNAP reader, clusters
it under both cut objectives, and saves/reloads the problem as an NPZ
bundle.  Point the path at a real ``facebook_combined.txt`` /
``com-dblp.ungraph.txt`` download and everything below works unchanged.

Run:  python examples/bring_your_own_graph.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import SpectralClustering
from repro.datasets import (
    graph_from_snap,
    load_problem,
    save_problem,
    stochastic_block_model,
)
from repro.datasets.registry import Dataset
from repro.metrics import modularity, ncut, ratio_cut


def write_sample_snap(path: Path) -> None:
    """Emit an SBM graph in SNAP text format (comments + 'u v' lines)."""
    edges, _ = stochastic_block_model(
        [80] * 5, p_in=0.25, p_out=0.01, rng=np.random.default_rng(11)
    )
    lines = ["# Undirected graph (sample, SBM 5x80)",
             f"# Nodes: 400 Edges: {edges.shape[0]}"]
    lines += [f"{u} {v}" for u, v in edges]
    path.write_text("\n".join(lines) + "\n")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        snap_path = Path(tmp) / "sample.ungraph.txt"
        write_sample_snap(snap_path)

        # --- load exactly like a SNAP download --------------------------
        W = graph_from_snap(snap_path)
        print(f"loaded {snap_path.name}: {W.shape[0]} nodes, {W.nnz // 2} edges")

        # --- cluster under both cut objectives --------------------------
        for objective in ("ncut", "ratiocut"):
            res = SpectralClustering(
                n_clusters=5, objective=objective, seed=0
            ).fit(graph=W)
            print(
                f"{objective:>9}: NCut={ncut(W, res.labels):.4f}  "
                f"RatioCut={ratio_cut(W, res.labels):.4f}  "
                f"modularity={modularity(W, res.labels):.3f}  "
                f"(sim {res.timings.total_simulated() * 1e3:.2f} ms)"
            )

        # --- bundle the problem for a reproducible rerun ----------------
        npz = Path(tmp) / "problem.npz"
        save_problem(npz, Dataset(name="sample", n_clusters=5, graph=W))
        back = load_problem(npz)
        print(f"round-tripped problem bundle: {back.name!r}, "
              f"n={back.graph.shape[0]}, k={back.n_clusters}")


if __name__ == "__main__":
    main()
