"""Documentation consistency: the bench targets, modules and examples the
design documents promise must exist on disk."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


def _text(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignDoc:
    def test_every_referenced_bench_exists(self):
        design = _text("DESIGN.md")
        benches = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
        assert benches, "DESIGN.md names no bench targets?"
        for b in benches:
            assert (ROOT / "benchmarks" / b).exists(), b

    def test_every_referenced_module_exists(self):
        design = _text("DESIGN.md")
        mods = set(re.findall(r"repro/([\w/]+\.py)", design))
        missing = [m for m in mods if not (ROOT / "src" / "repro" / m).exists()]
        assert not missing, missing

    def test_every_table_and_figure_indexed(self):
        design = _text("DESIGN.md")
        for item in ("Table I", "Table II", "Table III", "Table IV",
                     "Table V", "Table VI", "Table VII",
                     "Fig 3", "Fig 4", "Fig 5", "Fig 6"):
            assert item in design, item

    def test_no_title_mismatch_flag(self):
        """DESIGN.md confirms the paper text matched (no collision note)."""
        assert "no title collision" in _text("DESIGN.md")


class TestExperimentsDoc:
    def test_covers_all_evaluation_tables(self):
        exp = _text("EXPERIMENTS.md")
        for sec in ("Table I", "Table II", "Table III", "Table IV",
                    "Table V", "Table VI", "Table VII", "Ablations"):
            assert sec in exp, sec

    def test_references_real_benches(self):
        exp = _text("EXPERIMENTS.md")
        for b in re.findall(r"(bench_\w+\.py)", exp):
            assert (ROOT / "benchmarks" / b).exists(), b

    def test_calibration_constants_match_code(self):
        """The documented calibrated constants are the ones in the code."""
        from repro.baselines.cost import MATLAB_2015A, PYTHON_27

        exp = _text("EXPERIMENTS.md")
        assert "55.4" in exp and f"{MATLAB_2015A.loop_overhead_s*1e6:.1f}" == "55.4"
        assert "55.3" in exp and f"{PYTHON_27.loop_overhead_s*1e6:.1f}" == "55.3"
        assert f"{MATLAB_2015A.vectorized_edge_cost_s*1e6:.3f}" == "1.441"
        assert f"{PYTHON_27.vectorized_edge_cost_s*1e6:.3f}" == "1.571"


class TestReadme:
    def test_examples_table_matches_disk(self):
        readme = _text("README.md")
        for script in (ROOT / "examples").glob("*.py"):
            assert script.name in readme, f"{script.name} missing from README"

    def test_docs_linked(self):
        readme = _text("README.md")
        assert "docs/architecture.md" in readme
        assert "docs/cost_model.md" in readme
        assert (ROOT / "docs" / "architecture.md").exists()
        assert (ROOT / "docs" / "cost_model.md").exists()

    def test_install_instructions_offline_safe(self):
        assert "setup.py develop" in _text("README.md")
