"""Content fingerprints: workload identity for batching and caching."""

import numpy as np
import pytest

from repro.serve.fingerprint import (
    embedding_key,
    graph_fingerprint,
    operator_key,
    points_fingerprint,
)


class TestGraphFingerprint:
    def test_deterministic(self, small_sym_csr):
        assert graph_fingerprint(small_sym_csr) == graph_fingerprint(small_sym_csr)

    def test_format_invariant(self, small_sym_csr):
        """COO and CSR forms of the same graph fingerprint equally."""
        coo = small_sym_csr.to_coo()
        assert graph_fingerprint(coo) == graph_fingerprint(small_sym_csr)

    def test_value_sensitive(self, small_sym_csr):
        fp = graph_fingerprint(small_sym_csr)
        other = small_sym_csr.to_coo()
        other.data = other.data.copy()
        other.data[0] *= 2.0
        assert graph_fingerprint(other) != fp

    def test_structure_sensitive(self, rng):
        from repro.sparse.construct import random_sparse

        a = random_sparse(40, 40, 0.2, rng=np.random.default_rng(1),
                          symmetric=True)
        b = random_sparse(40, 40, 0.2, rng=np.random.default_rng(2),
                          symmetric=True)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_is_hex_string(self, small_sym_csr):
        fp = graph_fingerprint(small_sym_csr)
        assert isinstance(fp, str) and len(fp) == 64
        int(fp, 16)  # parses as hex


class TestPointsFingerprint:
    def test_sensitive_to_all_inputs(self, rng):
        X = rng.random((20, 4))
        edges = np.array([[0, 1], [1, 2], [3, 4]], dtype=np.int64)
        base = points_fingerprint(X, edges, "crosscorr", 1.0)
        assert points_fingerprint(X, edges, "crosscorr", 1.0) == base
        assert points_fingerprint(X * 1.01, edges, "crosscorr", 1.0) != base
        assert points_fingerprint(X, edges[:-1], "crosscorr", 1.0) != base
        assert points_fingerprint(X, edges, "gaussian", 1.0) != base
        assert points_fingerprint(X, edges, "expdecay", 2.0) != \
            points_fingerprint(X, edges, "expdecay", 1.0)

    def test_sigma_canonicalized_for_non_expdecay(self, rng):
        """sigma only parameterizes expdecay: an explicit non-default
        sigma under cosine/crosscorr builds the identical graph, so it
        must share the fingerprint (and therefore every cache slot
        derived from it) with the default."""
        X = rng.random((20, 4))
        edges = np.array([[0, 1], [1, 2], [3, 4]], dtype=np.int64)
        for measure in ("crosscorr", "cosine"):
            assert points_fingerprint(X, edges, measure, 2.5) == \
                points_fingerprint(X, edges, measure, 1.0), measure
        # expdecay genuinely depends on sigma — no canonicalization there
        assert points_fingerprint(X, edges, "expdecay", 2.5) != \
            points_fingerprint(X, edges, "expdecay", 1.0)

    def test_explicit_default_sigma_request_shares_cache_slot(self, rng):
        """The PR-7 rule at the request level: two by-value requests that
        differ only in an inert sigma produce equal embedding keys."""
        from repro.serve.request import ClusterRequest

        X = rng.random((15, 3))
        edges = np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64)
        a = ClusterRequest(request_id="a", X=X, edges=edges,
                           similarity="crosscorr", sigma=1.0)
        b = ClusterRequest(request_id="b", X=X, edges=edges,
                           similarity="crosscorr", sigma=3.0)
        fa, fb = a.workload_fingerprint(), b.workload_fingerprint()
        assert fa == fb
        assert a.embedding_key(fa) == b.embedding_key(fb)
        assert a.model_key(fa) == b.model_key(fb)


class TestCompositeKeys:
    def test_operator_key_partitions(self):
        a = operator_key("fp", "sym", "ncut", "remove")
        assert a == operator_key("fp", "sym", "ncut", "remove")
        assert a != operator_key("fp", "rw", "ncut", "remove")
        assert a != operator_key("other", "sym", "ncut", "remove")

    def test_embedding_key_covers_solver_params(self):
        base = dict(
            fingerprint="fp", operator="sym", objective="ncut",
            handle_isolated="remove", n_clusters=4, m=None, eig_tol=1e-8,
            eig_maxiter=None, seed=0, normalize_rows=False,
        )
        key = embedding_key(**base)
        assert key == embedding_key(**base)
        for name, other in [
            ("n_clusters", 5), ("m", 32), ("eig_tol", 1e-6),
            ("eig_maxiter", 10), ("seed", 1), ("normalize_rows", True),
        ]:
            assert key != embedding_key(**{**base, name: other}), name

    def test_requests_sharing_operator_but_not_embedding(self, make_request):
        """Different k shares the operator key but not the cache key."""
        a, b = make_request(n_clusters=3), make_request(n_clusters=5)
        fp = a.workload_fingerprint()
        assert fp == b.workload_fingerprint()
        assert a.operator_key(fp) == b.operator_key(fp)
        assert a.embedding_key(fp) != b.embedding_key(fp)


class TestCompressiveKeyPartitioning:
    """embedding='compressive' entries must never collide with exact or
    power entries for the same workload, while the bit-identical
    placement knobs (eig_devices / eig_residency) stay excluded."""

    def test_tiers_partition_for_same_workload(self, make_request):
        exact = make_request()
        power = make_request(embedding="power")
        comp = make_request(embedding="compressive")
        fp = exact.workload_fingerprint()
        keys = {
            exact.embedding_key(fp),
            power.embedding_key(fp),
            comp.embedding_key(fp),
        }
        assert len(keys) == 3
        # ...while all three share the operator build
        assert exact.operator_key(fp) == comp.operator_key(fp)

    def test_filter_knobs_partition_compressive_entries(self, make_request):
        a = make_request(embedding="compressive")
        b = make_request(embedding="compressive", filter_order=96)
        c = make_request(embedding="compressive", n_signals=8)
        fp = a.workload_fingerprint()
        assert len({a.embedding_key(fp), b.embedding_key(fp),
                    c.embedding_key(fp)}) == 3

    def test_explicit_defaults_share_a_slot(self, make_request):
        """filter_order=None and filter_order=<engine default> are the
        same embedding — the key canonicalizes, so they share a slot."""
        from repro.compressive.filters import (
            DEFAULT_FILTER_ORDER,
            default_n_signals,
        )

        a = make_request(embedding="compressive")
        b = make_request(
            embedding="compressive",
            filter_order=DEFAULT_FILTER_ORDER,
            n_signals=default_n_signals(4),
        )
        fp = a.workload_fingerprint()
        assert a.embedding_key(fp) == b.embedding_key(fp)

    def test_filter_knobs_inert_outside_compressive(self, make_request):
        """On lanczos/power requests the compressive knobs do not touch
        the key (they are inert in the computation too)."""
        a = make_request()
        b = make_request(filter_order=96, n_signals=8)
        fp = a.workload_fingerprint()
        assert a.embedding_key(fp) == b.embedding_key(fp)

    def test_stage4_knobs_excluded(self, make_request):
        """sample_frac / lift act after the embedding is built; two
        requests differing only there share the embedding slot."""
        a = make_request(embedding="compressive")
        b = make_request(embedding="compressive", sample_frac=0.5,
                         lift="nearest")
        fp = a.workload_fingerprint()
        assert a.embedding_key(fp) == b.embedding_key(fp)

    def test_eig_devices_still_excluded(self, make_request):
        a = make_request(embedding="compressive")
        b = make_request(embedding="compressive", eig_devices=2)
        fp = a.workload_fingerprint()
        assert a.embedding_key(fp) == b.embedding_key(fp)


class TestModelKey:
    """The fitted-model cache key: embedding identity + k-means knobs,
    predict knobs excluded."""

    def test_extends_embedding_key(self, make_request):
        req = make_request()
        fp = req.workload_fingerprint()
        mk = req.model_key(fp)
        assert mk[0] == "model"
        assert mk[1:-2] == req.embedding_key(fp)

    def test_kmeans_knobs_partition(self, make_request):
        a = make_request()
        b = make_request(kmeans_max_iter=50)
        c = make_request(kmeans_init="random")
        fp = a.workload_fingerprint()
        assert a.model_key(fp) != b.model_key(fp)
        assert a.model_key(fp) != c.model_key(fp)

    def test_never_collides_with_embedding_slot(self, make_request):
        """Models and embeddings share one LRU cache; the 'model' prefix
        keeps the key spaces disjoint."""
        req = make_request()
        fp = req.workload_fingerprint()
        assert req.model_key(fp) != req.embedding_key(fp)

    def test_predict_knobs_outside_key(self, make_request):
        """Two predicts differing in payload / deadline / priority against
        the same fit spec share one cached model."""
        from repro.serve.request import PredictRequest

        fit = make_request()
        fp = fit.workload_fingerprint()
        a = PredictRequest(request_id="pa", fit=fit, n_new=4, priority=2,
                           deadline=1.0, arrival=0.5)
        b = PredictRequest(request_id="pb", fit=fit, n_new=64, new_seed=9)
        assert a.fit.model_key(fp) == b.fit.model_key(fp)
