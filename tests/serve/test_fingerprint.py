"""Content fingerprints: workload identity for batching and caching."""

import numpy as np
import pytest

from repro.serve.fingerprint import (
    embedding_key,
    graph_fingerprint,
    operator_key,
    points_fingerprint,
)


class TestGraphFingerprint:
    def test_deterministic(self, small_sym_csr):
        assert graph_fingerprint(small_sym_csr) == graph_fingerprint(small_sym_csr)

    def test_format_invariant(self, small_sym_csr):
        """COO and CSR forms of the same graph fingerprint equally."""
        coo = small_sym_csr.to_coo()
        assert graph_fingerprint(coo) == graph_fingerprint(small_sym_csr)

    def test_value_sensitive(self, small_sym_csr):
        fp = graph_fingerprint(small_sym_csr)
        other = small_sym_csr.to_coo()
        other.data = other.data.copy()
        other.data[0] *= 2.0
        assert graph_fingerprint(other) != fp

    def test_structure_sensitive(self, rng):
        from repro.sparse.construct import random_sparse

        a = random_sparse(40, 40, 0.2, rng=np.random.default_rng(1),
                          symmetric=True)
        b = random_sparse(40, 40, 0.2, rng=np.random.default_rng(2),
                          symmetric=True)
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_is_hex_string(self, small_sym_csr):
        fp = graph_fingerprint(small_sym_csr)
        assert isinstance(fp, str) and len(fp) == 64
        int(fp, 16)  # parses as hex


class TestPointsFingerprint:
    def test_sensitive_to_all_inputs(self, rng):
        X = rng.random((20, 4))
        edges = np.array([[0, 1], [1, 2], [3, 4]], dtype=np.int64)
        base = points_fingerprint(X, edges, "crosscorr", 1.0)
        assert points_fingerprint(X, edges, "crosscorr", 1.0) == base
        assert points_fingerprint(X * 1.01, edges, "crosscorr", 1.0) != base
        assert points_fingerprint(X, edges[:-1], "crosscorr", 1.0) != base
        assert points_fingerprint(X, edges, "gaussian", 1.0) != base
        assert points_fingerprint(X, edges, "crosscorr", 2.0) != base


class TestCompositeKeys:
    def test_operator_key_partitions(self):
        a = operator_key("fp", "sym", "ncut", "remove")
        assert a == operator_key("fp", "sym", "ncut", "remove")
        assert a != operator_key("fp", "rw", "ncut", "remove")
        assert a != operator_key("other", "sym", "ncut", "remove")

    def test_embedding_key_covers_solver_params(self):
        base = dict(
            fingerprint="fp", operator="sym", objective="ncut",
            handle_isolated="remove", n_clusters=4, m=None, eig_tol=1e-8,
            eig_maxiter=None, seed=0, normalize_rows=False,
        )
        key = embedding_key(**base)
        assert key == embedding_key(**base)
        for name, other in [
            ("n_clusters", 5), ("m", 32), ("eig_tol", 1e-6),
            ("eig_maxiter", 10), ("seed", 1), ("normalize_rows", True),
        ]:
            assert key != embedding_key(**{**base, name: other}), name

    def test_requests_sharing_operator_but_not_embedding(self, make_request):
        """Different k shares the operator key but not the cache key."""
        a, b = make_request(n_clusters=3), make_request(n_clusters=5)
        fp = a.workload_fingerprint()
        assert fp == b.workload_fingerprint()
        assert a.operator_key(fp) == b.operator_key(fp)
        assert a.embedding_key(fp) != b.embedding_key(fp)
