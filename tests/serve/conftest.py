"""Fixtures for the serving-layer tests: small by-value workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.sbm import stochastic_block_model
from repro.serve.request import ClusterRequest, PredictRequest
from repro.sparse.construct import from_edge_list


@pytest.fixture
def small_graph(rng):
    """A 4-community SBM graph small enough for many service runs."""
    sizes = [25] * 4
    edges, _ = stochastic_block_model(sizes, p_in=0.6, p_out=0.02, rng=rng)
    return from_edge_list(edges, n_nodes=sum(sizes))


@pytest.fixture
def other_graph(rng):
    """A second, structurally different graph (distinct fingerprint)."""
    sizes = [20] * 3
    edges, _ = stochastic_block_model(sizes, p_in=0.7, p_out=0.03, rng=rng)
    return from_edge_list(edges, n_nodes=sum(sizes))


@pytest.fixture
def make_request(small_graph):
    """Factory for by-value requests against the shared small graph."""
    counter = {"n": 0}

    def factory(arrival=0.0, graph=None, **kw):
        counter["n"] += 1
        kw.setdefault("n_clusters", 4)
        return ClusterRequest(
            request_id=kw.pop("request_id", f"q{counter['n']:03d}"),
            arrival=arrival,
            graph=graph if graph is not None else small_graph,
            **kw,
        )

    return factory


@pytest.fixture
def make_predict(make_request):
    """Factory for synthetic-payload predicts sharing one fit spec."""
    counter = {"n": 0}
    shared = {}

    def factory(arrival=0.0, fit=None, **kw):
        counter["n"] += 1
        if fit is None:
            fit = shared.setdefault(
                "fit", make_request(request_id="fitspec")
            )
        return PredictRequest(
            request_id=kw.pop("request_id", f"p{counter['n']:03d}"),
            fit=fit,
            arrival=arrival,
            **kw,
        )

    return factory
