"""Micro-batch formation over the admission queue."""

import pytest

from repro.errors import ServiceError
from repro.serve.batcher import MicroBatcher
from repro.serve.queue import AdmissionQueue


def _batcher(max_batch=4):
    return MicroBatcher(
        max_batch, key_of=lambda r: r.operator_key(r.workload_fingerprint())
    )


class TestMicroBatcher:
    def test_coalesces_compatible_requests(self, make_request):
        q = AdmissionQueue(capacity=8)
        for k in (2, 3, 4):
            q.submit(make_request(n_clusters=k))  # same graph, different k
        batch = _batcher().form(q)
        assert len(batch) == 3
        assert not q

    def test_respects_max_batch(self, make_request):
        q = AdmissionQueue(capacity=8)
        for _ in range(5):
            q.submit(make_request())
        batcher = _batcher(max_batch=2)
        assert len(batcher.form(q)) == 2
        assert len(q) == 3

    def test_incompatible_requests_left_queued(self, make_request, other_graph):
        q = AdmissionQueue(capacity=8)
        a = make_request()
        b = make_request(graph=other_graph)
        c = make_request()
        for r in (a, b, c):
            q.submit(r)
        batch = _batcher().form(q)
        assert [r.request_id for r in batch.requests] == [
            a.request_id, c.request_id
        ]
        assert q.peek() is b  # head-of-line for the next cycle

    def test_head_of_line_always_served(self, make_request, other_graph):
        """The oldest waiting request is in every batch — no starvation."""
        q = AdmissionQueue(capacity=8)
        q.submit(make_request(graph=other_graph))
        q.submit(make_request())
        batch = _batcher().form(q)
        assert len(batch) == 1  # the incompatible head got its own batch

    def test_embedding_groups_split_by_k(self, make_request):
        q = AdmissionQueue(capacity=8)
        for k in (3, 4, 3):
            q.submit(make_request(n_clusters=k))
        batch = _batcher().form(q)
        groups = batch.embedding_groups(
            lambda r: r.embedding_key(r.workload_fingerprint())
        )
        assert sorted(len(v) for v in groups.values()) == [1, 2]

    def test_stats(self, make_request):
        q = AdmissionQueue(capacity=8)
        for _ in range(3):
            q.submit(make_request())
        batcher = _batcher(max_batch=2)
        batcher.form(q)
        batcher.form(q)
        assert batcher.stats.n_batches == 2
        assert batcher.stats.total_batched == 3
        assert batcher.stats.max_batch == 2
        assert batcher.stats.mean_batch_size == pytest.approx(1.5)

    def test_batch_ids_increment(self, make_request):
        q = AdmissionQueue(capacity=8)
        q.submit(make_request())
        q.submit(make_request())
        batcher = _batcher(max_batch=1)
        assert batcher.form(q).batch_id == 0
        assert batcher.form(q).batch_id == 1

    def test_bad_max_batch(self):
        with pytest.raises(ServiceError):
            _batcher(max_batch=0)
