"""The predict fast lane: warm/cold serving, ordering, taint, baselines."""

import numpy as np
import pytest

from repro.serve.request import PredictRequest, PredictResponse
from repro.serve.service import ClusterService, ServiceConfig, run_sequential
from repro.serve.traceio import (
    read_trace,
    synthetic_predict_trace,
    write_trace,
)


def _service(**kw):
    kw.setdefault("max_batch", 4)
    kw.setdefault("queue_capacity", 64)
    return ClusterService(ServiceConfig(**kw))


@pytest.fixture
def make_predict(make_request):
    """Factory for synthetic-payload predicts sharing one fit spec."""
    counter = {"n": 0}
    shared = {}

    def factory(arrival=0.0, fit=None, **kw):
        counter["n"] += 1
        if fit is None:
            fit = shared.setdefault(
                "fit", make_request(request_id="fitspec")
            )
        return PredictRequest(
            request_id=kw.pop("request_id", f"p{counter['n']:03d}"),
            fit=fit,
            arrival=arrival,
            **kw,
        )

    return factory


class TestFastLane:
    def test_cold_then_warm(self, make_predict):
        svc = _service()
        reqs = [make_predict(arrival=0.0), make_predict(arrival=50.0)]
        responses, report = svc.process(reqs)
        first, second = responses
        assert first.ok and second.ok
        assert first.cold_fit and not first.model_hit
        assert second.model_hit and not second.cold_fit
        assert report.predict["total"] == 2
        assert report.predict["cold_fits"] == 1
        assert report.predict["model_hits"] == 1
        assert report.predict["ledger_mismatches"] == 0

    def test_warm_latency_far_below_cold(self, make_predict):
        responses, _ = _service().process(
            [make_predict(arrival=0.0), make_predict(arrival=50.0)]
        )
        cold, warm = responses
        assert warm.latency < cold.latency / 10

    def test_warm_predict_matches_direct_model_call(
        self, make_predict, make_request, small_graph
    ):
        """The lane's answer is the model's answer — same payload rng."""
        preq = make_predict(arrival=0.0, n_new=6, new_seed=3)
        responses, _ = _service().process([preq])
        resp = responses[0]
        assert resp.ok and resp.n_new == 6
        # every synthetic new vertex clones an anchor row, so labels are
        # a subset of the fit's label alphabet
        cold = preq.fit.estimator().fit(graph=small_graph)
        assert set(resp.labels.tolist()) <= set(cold.labels.tolist())

    def test_ledgers_audited_on_device(self, make_predict):
        responses, report = _service().process(
            [make_predict(arrival=0.0), make_predict(arrival=50.0)]
        )
        assert all(r.ledger_ok is True for r in responses)
        assert report.predict["ledger_checked"] == 2
        assert report.predict["ledger_mismatches"] == 0

    def test_ratiocut_fit_spec_fails_cleanly(self, make_predict, make_request):
        fit = make_request(objective="ratiocut")
        responses, report = _service().process(
            [make_predict(arrival=0.0, fit=fit)]
        )
        resp = responses[0]
        assert not resp.ok
        assert "no Nyström extension" in resp.error
        assert report.predict["failed"] == 1

    def test_duplicate_predict_id_rejected(self, make_predict):
        from repro.errors import ServiceError

        a = make_predict(request_id="dup")
        b = make_predict(request_id="dup")
        with pytest.raises(ServiceError, match="duplicate"):
            _service().process([a, b])

    def test_unknown_request_type_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="ClusterRequest or Predict"):
            _service().process([object()])


class TestMixedTrace:
    def test_fits_and_predicts_interleave(self, make_request, make_predict):
        """Fit requests and predicts share the service; responses come
        back in request order with the right types."""
        svc = _service()
        reqs = [
            make_request(arrival=0.0),
            make_predict(arrival=0.001),
            make_request(arrival=0.002, n_clusters=3),
            make_predict(arrival=60.0),
        ]
        responses, report = svc.process(reqs)
        assert [isinstance(r, PredictResponse) for r in responses] == [
            False, True, False, True
        ]
        assert all(r.ok for r in responses), [r.error for r in responses]
        assert report.n_requests == 4
        assert report.predict["total"] == 2

    def test_synthetic_predict_trace_end_to_end(self):
        reqs = synthetic_predict_trace(
            n_requests=12, datasets=(("syn200", 0.05),),
            predict_fraction=0.75, seed=1,
        )
        n_predicts = sum(isinstance(r, PredictRequest) for r in reqs)
        assert n_predicts == 9
        responses, report = _service().process(reqs)
        assert all(r.ok for r in responses), [r.error for r in responses]
        assert report.predict["total"] == 9
        assert report.predict["model_hits"] + report.predict["cold_fits"] == 9
        assert report.predict["model_hits"] > 0  # the point of the lane
        assert report.predict["ledger_mismatches"] == 0


class TestOrdering:
    def test_dispatch_order_priority_then_deadline(self, make_predict):
        from repro.serve.scheduler import StreamScheduler

        low = make_predict(request_id="low", priority=0)
        urgent = make_predict(request_id="urgent", priority=0, deadline=0.5)
        late = make_predict(request_id="late", priority=0, deadline=9.0)
        vip = make_predict(request_id="vip", priority=5)
        order = StreamScheduler.dispatch_order([low, late, vip, urgent])
        assert [r.request_id for r in order] == [
            "vip", "urgent", "late", "low"
        ]

    def test_priority_wins_the_lane(self, make_predict):
        """Two predicts arrive together on one lane; the priority one
        starts first even though its id sorts later."""
        svc = _service(streams_per_device=1)
        a = make_predict(request_id="pa", arrival=0.0)
        z = make_predict(request_id="pz", arrival=0.0, priority=9)
        responses, _ = svc.process([a, z])
        by_id = {r.request_id: r for r in responses}
        assert by_id["pz"].start < by_id["pa"].start

    def test_deadline_miss_counted(self, make_predict):
        svc = _service()
        # a cold fit stands between arrival and this deadline: unmeetable
        preq = make_predict(arrival=0.0, deadline=1e-9)
        responses, report = svc.process([preq])
        resp = responses[0]
        assert resp.ok
        assert resp.deadline_met is False
        assert report.predict["with_deadline"] == 1
        assert report.predict["deadline_misses"] == 1
        assert svc.scheduler.deadline_misses == 1

    def test_met_deadline_not_counted(self, make_predict):
        svc = _service()
        responses, report = svc.process(
            [make_predict(arrival=0.0, deadline=1e6)]
        )
        assert responses[0].deadline_met is True
        assert report.predict["deadline_misses"] == 0


class TestTaintRule:
    def test_recovered_coldfit_never_caches_model(self, make_predict):
        """chaos=7 recovers inside the cold fit (see test_service); the
        tainted model must not seed the cache, so the next predict against
        the same spec cold-fits again — and, being clean, caches."""
        svc = _service()
        reqs = [
            make_predict(arrival=0.0, chaos=7),
            make_predict(arrival=100.0),
            make_predict(arrival=200.0),
        ]
        responses, _ = svc.process(reqs)
        tainted, retry, warm = responses
        assert tainted.ok
        assert tainted.resilience  # recovery actually happened
        assert retry.ok and retry.cold_fit  # tainted model was not cached
        assert warm.ok and warm.model_hit  # the clean refit was

    def test_clean_coldfit_caches(self, make_predict):
        svc = _service()
        responses, _ = svc.process(
            [make_predict(arrival=0.0), make_predict(arrival=100.0)]
        )
        assert responses[0].ok and not responses[0].resilience
        assert responses[1].model_hit


class TestBaseline:
    def test_run_sequential_disables_the_model_cache(self):
        reqs = synthetic_predict_trace(
            n_requests=8, datasets=(("syn200", 0.05),),
            predict_fraction=0.75, seed=0,
        )
        responses, report = run_sequential(reqs)
        assert all(r.ok for r in responses), [r.error for r in responses]
        assert report.predict["model_hits"] == 0
        assert report.predict["cold_fits"] == report.predict["total"]

    def test_served_trace_beats_sequential_baseline(self):
        """The acceptance shape of the PR: a predict-heavy mix through
        the fast lane sustains far higher throughput than paying a cold
        fit per request."""
        reqs = synthetic_predict_trace(
            n_requests=12, datasets=(("syn200", 0.05),),
            predict_fraction=0.75, seed=2,
        )
        _, served = _service().process(reqs)
        _, seq = run_sequential(reqs)
        assert served.throughput_rps > 2.0 * seq.throughput_rps


class TestPredictTraceIO:
    def test_round_trip(self, tmp_path):
        reqs = synthetic_predict_trace(
            n_requests=10, predict_fraction=0.8, seed=4, chaos_every=3,
        )
        path = tmp_path / "trace.jsonl"
        write_trace(reqs, path)
        back = read_trace(path)
        assert len(back) == len(reqs)
        for orig, rt in zip(reqs, back):
            assert type(orig) is type(rt)
            assert orig.request_id == rt.request_id
            assert orig.arrival == rt.arrival
            if isinstance(orig, PredictRequest):
                assert orig.fit.dataset == rt.fit.dataset
                assert orig.n_new == rt.n_new
                assert orig.new_seed == rt.new_seed
                assert orig.deadline == rt.deadline
                assert orig.priority == rt.priority
                assert orig.chaos == rt.chaos

    def test_by_value_predict_payload_not_serializable(
        self, make_predict, tmp_path
    ):
        from repro.errors import ServiceError

        preq = make_predict(
            pairs_new=np.array([[0, 1]]), weights_new=np.array([0.5])
        )
        with pytest.raises(ServiceError, match="by-value"):
            write_trace([preq], tmp_path / "t.jsonl")
