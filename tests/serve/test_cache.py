"""LRU embedding cache semantics."""

import numpy as np
import pytest

from repro.core.result import EmbeddingResult, StageTimings
from repro.cuda.profiler import ProfileReport
from repro.errors import ServiceError
from repro.serve.cache import EmbeddingCache


def _entry(n=10, k=3):
    return EmbeddingResult(
        embedding=np.zeros((n, k)),
        eigenvalues=np.zeros(k),
        kept=np.arange(n),
        n_total=n,
        timings=StageTimings(),
        profile=ProfileReport(communication=0.0, computation=0.0),
        eig_stats={},
    )


class TestEmbeddingCache:
    def test_miss_then_hit(self):
        cache = EmbeddingCache(capacity=2)
        assert cache.get(("a",)) is None
        emb = _entry()
        assert cache.put(("a",), emb)
        assert cache.get(("a",)) is emb
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = EmbeddingCache(capacity=2)
        cache.put(("a",), _entry())
        cache.put(("b",), _entry())
        cache.get(("a",))  # refresh a → b is now LRU
        cache.put(("c",), _entry())
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache
        assert cache.stats.evictions == 1

    def test_bytes_tracking(self):
        cache = EmbeddingCache(capacity=1)
        e1, e2 = _entry(n=10), _entry(n=100)
        cache.put(("a",), e1)
        assert cache.stats.bytes_held == e1.nbytes
        cache.put(("b",), e2)  # evicts e1
        assert cache.stats.bytes_held == e2.nbytes

    def test_capacity_zero_disables(self):
        cache = EmbeddingCache(capacity=0)
        assert not cache.put(("a",), _entry())
        assert cache.get(("a",)) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServiceError):
            EmbeddingCache(capacity=-1)

    def test_hit_rate(self):
        cache = EmbeddingCache(capacity=4)
        assert cache.stats.hit_rate == 0.0
        cache.put(("a",), _entry())
        cache.get(("a",))
        cache.get(("b",))
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_clear(self):
        cache = EmbeddingCache(capacity=4)
        cache.put(("a",), _entry())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes_held == 0
