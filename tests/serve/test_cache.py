"""LRU embedding cache semantics."""

import numpy as np
import pytest

from repro.core.result import EmbeddingResult, StageTimings
from repro.cuda.profiler import ProfileReport
from repro.errors import ServiceError
from repro.serve.cache import EmbeddingCache


def _entry(n=10, k=3):
    return EmbeddingResult(
        embedding=np.zeros((n, k)),
        eigenvalues=np.zeros(k),
        kept=np.arange(n),
        n_total=n,
        timings=StageTimings(),
        profile=ProfileReport(communication=0.0, computation=0.0),
        eig_stats={},
    )


class TestEmbeddingCache:
    def test_miss_then_hit(self):
        cache = EmbeddingCache(capacity=2)
        assert cache.get(("a",)) is None
        emb = _entry()
        assert cache.put(("a",), emb)
        assert cache.get(("a",)) is emb
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = EmbeddingCache(capacity=2)
        cache.put(("a",), _entry())
        cache.put(("b",), _entry())
        cache.get(("a",))  # refresh a → b is now LRU
        cache.put(("c",), _entry())
        assert ("a",) in cache and ("c",) in cache
        assert ("b",) not in cache
        assert cache.stats.evictions == 1

    def test_bytes_tracking(self):
        cache = EmbeddingCache(capacity=1)
        e1, e2 = _entry(n=10), _entry(n=100)
        cache.put(("a",), e1)
        assert cache.stats.bytes_held == e1.nbytes
        cache.put(("b",), e2)  # evicts e1
        assert cache.stats.bytes_held == e2.nbytes

    def test_capacity_zero_disables(self):
        cache = EmbeddingCache(capacity=0)
        assert not cache.put(("a",), _entry())
        assert cache.get(("a",)) is None
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServiceError):
            EmbeddingCache(capacity=-1)

    def test_hit_rate(self):
        cache = EmbeddingCache(capacity=4)
        assert cache.stats.hit_rate == 0.0
        cache.put(("a",), _entry())
        cache.get(("a",))
        cache.get(("b",))
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_clear(self):
        cache = EmbeddingCache(capacity=4)
        cache.put(("a",), _entry())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes_held == 0


def _model(n_anchor=8, k=3, d=None):
    """A minimal FittedSpectralModel for cache-accounting tests."""
    from repro.core.model import FittedSpectralModel
    from repro.sparse.construct import from_edge_list

    edges = np.array(
        [[i, (i + 1) % n_anchor] for i in range(n_anchor)], dtype=np.int64
    )
    graph = from_edge_list(edges, n_nodes=n_anchor).to_csr()
    return FittedSpectralModel(
        basis=np.zeros((n_anchor, k)),
        eigenvalues=np.ones(k),
        degrees=np.full(n_anchor, 2.0),
        centroids=np.zeros((k, k)),
        labels=np.zeros(n_anchor, dtype=np.int64),
        embedding=np.zeros((n_anchor, k)),
        kept=np.arange(n_anchor, dtype=np.int64),
        n_total=n_anchor,
        graph=graph,
        anchors=None if d is None else np.zeros((n_anchor, d)),
        params={"n_clusters": k},
    )


class TestMixedFitPredictLoad:
    """Models and embeddings share one LRU: the 'model' key prefix keeps
    the spaces disjoint while eviction and accounting stay uniform."""

    def test_disjoint_key_spaces_coexist(self):
        cache = EmbeddingCache(capacity=4)
        ekey = ("fp", "sym", 4)
        mkey = ("model",) + ekey
        cache.put(ekey, _entry())
        cache.put(mkey, _model())
        assert len(cache) == 2
        assert isinstance(cache.get(ekey), EmbeddingResult)
        assert cache.get(mkey) is not None

    def test_model_nbytes_feeds_accounting(self):
        cache = EmbeddingCache(capacity=4)
        m = _model(n_anchor=16, d=5)
        e = _entry(n=32)
        cache.put(("model", "a"), m)
        cache.put(("a",), e)
        assert cache.stats.bytes_held == m.nbytes + e.nbytes
        assert m.nbytes > _model(n_anchor=16).nbytes  # anchors counted

    def test_lru_order_spans_both_kinds(self):
        """A hot model keeps its slot while a stale embedding evicts."""
        cache = EmbeddingCache(capacity=2)
        cache.put(("model", "m"), _model())
        cache.put(("e",), _entry())
        cache.get(("model", "m"))  # refresh: embedding is now LRU
        cache.put(("model", "m2"), _model())
        assert ("model", "m") in cache and ("model", "m2") in cache
        assert ("e",) not in cache
        assert cache.stats.bytes_held == sum(
            _model().nbytes for _ in range(2)
        )

    def test_hit_rate_counts_both_kinds(self):
        cache = EmbeddingCache(capacity=4)
        cache.put(("e",), _entry())
        cache.put(("model", "m"), _model())
        cache.get(("e",))
        cache.get(("model", "m"))
        cache.get(("model", "missing"))
        assert cache.stats.hits == 2 and cache.stats.misses == 1

    def test_service_taint_rule_is_callers_job(self):
        """The cache never inspects resilience — the service gates put();
        a tainted model inserted directly would be served.  Guard the
        contract: put/get round-trips whatever object it is handed."""
        cache = EmbeddingCache(capacity=1)
        m = _model()
        m.resilience = {"eigensolve": {"retries": 1}}
        cache.put(("model", "t"), m)
        assert cache.get(("model", "t")) is m
