"""The persistent cross-process cache: round-trips, staleness, taint."""

import numpy as np
import pytest

from repro.core.result import EmbeddingResult, StageTimings
from repro.cuda.profiler import ProfileReport
from repro.errors import ServiceError
from repro.serve.cache import EmbeddingCache
from repro.serve.persist import PersistentStore, canonical_key
from repro.serve.service import ClusterService, ServiceConfig


def _embedding(seed=0, n=40, k=3, resilience=None) -> EmbeddingResult:
    rng = np.random.default_rng(seed)
    kept = np.arange(n, dtype=np.int64)
    return EmbeddingResult(
        embedding=rng.standard_normal((n, k)),
        eigenvalues=np.sort(rng.random(k)),
        kept=kept,
        n_total=n,
        timings=StageTimings(simulated={"eigensolver": 0.5}),
        profile=ProfileReport(communication=0.1, computation=0.9),
        eig_stats={"iterations": 12, "restarts": 2},
        resilience=dict(resilience or {}),
    )


def _fitted_model(small_graph):
    from repro.serve.request import ClusterRequest

    req = ClusterRequest(request_id="m", graph=small_graph, n_clusters=4)
    return req.estimator().fit(graph=small_graph)


KEY = ("emb", "fp123", 3, 1e-8, True, None)


class TestStoreRoundTrip:
    def test_embedding_bit_identical(self, tmp_path):
        store = PersistentStore(tmp_path)
        emb = _embedding()
        nbytes = store.save(KEY, emb)
        assert nbytes > 0
        back = store.load(KEY)
        assert back is not None
        for name in ("embedding", "eigenvalues", "kept"):
            a, b = getattr(emb, name), getattr(back, name)
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)
        assert back.n_total == emb.n_total
        assert back.timings.simulated == emb.timings.simulated
        assert back.eig_stats["iterations"] == 12
        assert back.resilience == {}
        # process-local observations come back empty, by design
        assert back.profile.communication == 0.0
        assert store.stats.saves == 1 and store.stats.loads == 1

    def test_model_bit_identical(self, tmp_path, small_graph):
        store = PersistentStore(tmp_path)
        model = _fitted_model(small_graph).model
        key = ("model", "fpm", 4)
        store.save(key, model)
        back = store.load(key)
        assert back is not None
        for name in ("basis", "eigenvalues", "degrees", "centroids",
                     "labels", "embedding", "kept"):
            a, b = getattr(model, name), getattr(back, name)
            assert a.dtype == b.dtype, name
            assert np.array_equal(a, b), name
        assert np.array_equal(model.graph.indptr, back.graph.indptr)
        assert np.array_equal(model.graph.indices, back.graph.indices)
        assert np.array_equal(model.graph.data, back.graph.data)
        assert back.graph.shape == model.graph.shape
        assert back.n_total == model.n_total
        if model.anchors is None:
            assert back.anchors is None
        else:
            assert np.array_equal(model.anchors, back.anchors)

    def test_reloaded_model_predicts_identically(self, tmp_path, small_graph):
        from repro.cuda.device import Device

        store = PersistentStore(tmp_path)
        model = _fitted_model(small_graph).model
        store.save(("m",), model)
        back = store.load(("m",))
        rng = np.random.default_rng(7)
        pos = rng.integers(0, model.n_anchor, size=5)
        rows, cols, vals = [], [], []
        for i, p in enumerate(pos):
            c, v = model.graph.getrow(int(p))
            rows.append(np.full(c.size, i, dtype=np.int64))
            cols.append(model.kept[c])
            vals.append(v)
        payload = {
            "weights_new": np.concatenate(vals),
            "pairs_new": np.column_stack(
                [np.concatenate(rows), np.concatenate(cols)]
            ),
            "n_new": 5,
        }
        a = model.predict(device=Device(), **payload)
        b = back.predict(device=Device(), **payload)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.embedding, b.embedding)

    def test_missing_key_is_none(self, tmp_path):
        store = PersistentStore(tmp_path)
        assert store.load(("nothing",)) is None
        assert store.stats.errors == 0

    def test_unsupported_value_rejected(self, tmp_path):
        store = PersistentStore(tmp_path)
        with pytest.raises(ServiceError, match="cannot persist"):
            store.save(KEY, object())

    def test_non_serializable_key_rejected(self, tmp_path):
        store = PersistentStore(tmp_path)
        with pytest.raises(ServiceError, match="non-serializable"):
            store.save((object(),), _embedding())

    def test_canonical_key_distinguishes_types(self):
        # int vs float vs str must not alias
        assert canonical_key((1,)) != canonical_key((1.0,))
        assert canonical_key((1,)) != canonical_key(("1",))
        # tuples and nested tuples canonicalize stably
        assert canonical_key((("a", 2), None)) == canonical_key((("a", 2), None))


class TestStoreInvalidation:
    def test_format_version_mismatch_is_a_miss(self, tmp_path, monkeypatch):
        store = PersistentStore(tmp_path)
        store.save(KEY, _embedding())
        monkeypatch.setattr("repro.serve.persist.FORMAT_VERSION", 999)
        assert store.load(KEY) is None
        assert store.stats.stale == 1

    def test_embedded_key_verified(self, tmp_path):
        import shutil

        store = PersistentStore(tmp_path)
        store.save(KEY, _embedding())
        other = ("emb", "other-fp", 3, 1e-8, True, None)
        # a foreign file squatting on another key's path never aliases
        shutil.copy(store.path_for(KEY), store.path_for(other))
        assert store.load(other) is None
        assert store.stats.stale == 1

    def test_corrupt_file_is_a_miss_not_a_crash(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.save(KEY, _embedding())
        store.path_for(KEY).write_bytes(b"not an npz")
        assert store.load(KEY) is None
        assert store.stats.errors == 1

    def test_tainted_artifact_refused(self, tmp_path):
        store = PersistentStore(tmp_path)
        with pytest.raises(ServiceError, match="tainted"):
            store.save(KEY, _embedding(resilience={"eigensolver": 1}))
        assert KEY not in store


class TestTwoTierCache:
    def test_write_through_and_disk_warm_hit(self, tmp_path):
        store = PersistentStore(tmp_path)
        warm = EmbeddingCache(capacity=4, store=store)
        emb = _embedding()
        assert warm.put(KEY, emb)
        assert warm.stats.disk_writes == 1
        assert warm.stats.disk_bytes_written > 0

        # a "restarted process": fresh LRU, same directory
        cold = EmbeddingCache(capacity=4, store=PersistentStore(tmp_path))
        back = cold.get(KEY)
        assert back is not None
        assert np.array_equal(back.embedding, emb.embedding)
        assert cold.stats.hits == 1 and cold.stats.disk_hits == 1
        # re-admitted to memory: the next hit never touches disk
        again = cold.get(KEY)
        assert again is back
        assert cold.stats.hits == 2 and cold.stats.disk_hits == 1

    def test_eviction_keeps_disk_copy(self, tmp_path):
        store = PersistentStore(tmp_path)
        cache = EmbeddingCache(capacity=1, store=store)
        e1, e2 = _embedding(1), _embedding(2)
        cache.put(("k1",), e1)
        cache.put(("k2",), e2)  # evicts k1 from memory
        assert ("k1",) not in cache
        assert cache.stats.evictions == 1
        back = cache.get(("k1",))  # disk-warm re-admission
        assert back is not None
        assert np.array_equal(back.embedding, e1.embedding)
        assert cache.stats.disk_hits == 1

    def test_nbytes_accounting_through_disk_round_trip(self, tmp_path):
        store = PersistentStore(tmp_path)
        cache = EmbeddingCache(capacity=2, store=store)
        e1, e2, e3 = _embedding(1), _embedding(2), _embedding(3)
        cache.put(("k1",), e1)
        cache.put(("k2",), e2)
        cache.put(("k3",), e3)  # evicts k1
        assert cache.stats.bytes_held == e2.nbytes + e3.nbytes
        back = cache.get(("k1",))  # disk hit evicts k2 on re-admission
        assert back is not None
        assert cache.stats.bytes_held == back.nbytes + e3.nbytes
        assert len(cache) == 2

    def test_tainted_entry_never_written(self, tmp_path):
        store = PersistentStore(tmp_path)
        cache = EmbeddingCache(capacity=4, store=store)
        emb = _embedding(resilience={"kmeans": 2})
        assert cache.put(KEY, emb)  # memory residency is fine
        assert cache.stats.taint_skipped == 1
        assert cache.stats.disk_writes == 0
        assert KEY not in store
        # a fresh process finds nothing: taint never crosses processes
        cold = EmbeddingCache(capacity=4, store=PersistentStore(tmp_path))
        assert cold.get(KEY) is None

    def test_capacity_zero_disables_disk_tier_too(self, tmp_path):
        store = PersistentStore(tmp_path)
        cache = EmbeddingCache(capacity=0, store=store)
        assert not cache.put(KEY, _embedding())
        assert cache.get(KEY) is None
        assert store.stats.saves == 0 and store.stats.loads == 0

    def test_clear_keeps_disk(self, tmp_path):
        store = PersistentStore(tmp_path)
        cache = EmbeddingCache(capacity=4, store=store)
        cache.put(KEY, _embedding())
        cache.clear()
        assert len(cache) == 0
        assert cache.get(KEY) is not None  # disk-warm
        assert cache.stats.disk_hits == 1


class TestServiceWarmRestart:
    def _config(self, tmp_path, **kw):
        return ServiceConfig(
            n_devices=1, streams_per_device=2, max_batch=4,
            cache_dir=str(tmp_path / "store"), **kw,
        )

    def test_restarted_service_warms_from_disk(
        self, tmp_path, make_request, make_predict
    ):
        trace = [
            make_request(arrival=0.0, request_id="f0"),
            make_request(arrival=0.0, request_id="f1"),
            make_predict(arrival=0.0, request_id="p0"),
            make_predict(arrival=1.0, request_id="p1"),
        ]
        first = ClusterService(self._config(tmp_path))
        r1, rep1 = first.process(trace)
        assert rep1.cache["disk_writes"] >= 2  # embedding + model
        assert rep1.cache["disk_hits"] == 0

        second = ClusterService(self._config(tmp_path))
        r2, rep2 = second.process(trace)
        assert rep2.cache["disk_hits"] >= 2
        # the restarted process pays no cold fit and no eigensolve
        assert rep2.predict["cold_fits"] == 0
        assert rep2.predict["model_hits"] == rep2.predict["ok"]
        names = [ev.name for ev in second.scheduler.schedule]
        assert not any("eigensolve" in n for n in names)
        assert not any("coldfit" in n for n in names)
        # disk-warm responses are bit-identical to the cold process's
        for a, b in zip(r1, r2):
            assert a.request_id == b.request_id
            assert a.ok and b.ok
            assert np.array_equal(a.labels, b.labels)

    def test_mixed_fit_predict_eviction_under_persistence(
        self, tmp_path, make_request, make_predict, small_graph, other_graph
    ):
        """Embeddings and models share the tiny LRU; disk keeps them all."""
        trace = [
            make_request(arrival=0.0, request_id="f0"),
            make_request(arrival=5.0, request_id="g0", graph=other_graph,
                         n_clusters=3),
            make_predict(arrival=10.0, request_id="p0"),
        ]
        svc = ClusterService(self._config(tmp_path, cache_entries=1))
        responses, report = svc.process(trace)
        assert all(r.ok for r in responses)
        # capacity-1 LRU churned, but every clean artifact reached disk
        assert report.cache["evictions"] >= 2
        assert report.cache["disk_writes"] >= 3
        store = PersistentStore(tmp_path / "store")
        assert len(store) >= 3

        # a restart serves all three shapes disk-warm
        svc2 = ClusterService(self._config(tmp_path, cache_entries=1))
        r2, rep2 = svc2.process(trace)
        assert rep2.cache["disk_hits"] >= 3
        for a, b in zip(responses, r2):
            assert np.array_equal(a.labels, b.labels)

    def test_chaos_fit_stays_out_of_the_store(
        self, tmp_path, make_request
    ):
        """A recovered (tainted) embedding must never reach disk."""
        trace = [make_request(arrival=0.0, request_id="c0", chaos=1234)]
        svc = ClusterService(self._config(tmp_path))
        responses, report = svc.process(trace)
        resp = responses[0]
        if resp.ok and resp.resilience:
            assert report.cache["disk_writes"] == 0
            assert len(PersistentStore(tmp_path / "store")) == 0
