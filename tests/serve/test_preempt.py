"""Preemptive EDF scheduling: splits, inserts, honesty, bit-parity."""

import numpy as np
import pytest

from repro.cuda.boundaries import mark_boundary
from repro.errors import ServiceError
from repro.serve.request import PredictRequest
from repro.serve.scheduler import StreamScheduler
from repro.serve.service import ClusterService, ServiceConfig


def _burn(seconds):
    def fn(dev):
        dev.charge_cpu("work", seconds)
        return seconds
    return fn


def _burn_marked(chunks):
    """Charge each chunk, marking a stage boundary between chunks."""
    def fn(dev):
        for i, c in enumerate(chunks):
            if i:
                mark_boundary(dev)
            dev.charge_cpu("work", c)
        return sum(chunks)
    return fn


def _lane_events(sched, lane):
    return sorted(
        (ev for ev in sched.schedule if ev.tag == lane),
        key=lambda ev: ev.start,
    )


def _assert_no_overlap(sched, lane):
    evs = _lane_events(sched, lane)
    for a, b in zip(evs, evs[1:]):
        assert a.end <= b.start + 1e-12, (
            f"lane {lane} overlaps: {a.name} [{a.start},{a.end}] vs "
            f"{b.name} [{b.start},{b.end}]"
        )


class TestSplitPreemption:
    def test_split_converts_miss_to_meet(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        victim = sched.run(
            "victim", 0.0, _burn_marked([0.5, 0.5]), preemptible=True
        )
        assert victim.end == pytest.approx(1.0)
        urgent = sched.run(
            "urgent", 0.2, _burn(0.2), deadline=0.8
        )
        delta = sched.ctx_switch_s
        # suspended at the boundary (t=0.5), after a context save
        assert urgent.start == pytest.approx(0.5 + delta)
        assert urgent.end == pytest.approx(0.7 + delta)
        assert urgent.deadline_met is True
        assert urgent.preempted_victim == "victim"
        # the victim's remainder resumes after the urgent unit + restore
        assert victim.end == pytest.approx(1.0 + 0.2 + 2 * delta)
        s = sched.stats
        assert s.preemptions == 1 and s.preemption_splits == 1
        assert s.preemption_inserts == 0
        assert s.saved_misses == 1
        assert s.deadlines_met == 1 and s.deadline_misses == 0
        assert s.ctx_switch_s == pytest.approx(2 * delta)
        _assert_no_overlap(sched, "dev0/s0")

    def test_context_switches_on_schedule(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        sched.run("victim", 0.0, _burn_marked([0.5, 0.5]), preemptible=True)
        sched.run("urgent", 0.2, _burn(0.2), deadline=0.8)
        names = [ev.name for ev in sched.schedule]
        assert any(n.startswith("ctx-save[victim]") for n in names)
        assert any(n.startswith("ctx-restore[victim]") for n in names)
        assert any("victim (resumed)" in n for n in names)
        # the preemption is traced on its own track
        preempt = [ev for ev in sched.schedule if ev.tag == "preempt"]
        assert len(preempt) == 1
        assert preempt[0].category == "overhead"

    def test_preempt_track_in_chrome_trace(self):
        from repro.cuda.trace import schedule_to_trace_events

        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        sched.run("victim", 0.0, _burn_marked([0.5, 0.5]), preemptible=True)
        sched.run("urgent", 0.2, _burn(0.2), deadline=0.8)
        events = schedule_to_trace_events(sched.schedule)
        threads = {
            ev["tid"] for ev in events if ev.get("ph") == "X"
            and "preempt" in ev.get("name", "")
        }
        assert len(threads) == 1  # a dedicated preemption track

    def test_pointless_preemption_declined(self):
        """No slot converts the miss → plain FIFO, no disruption paid."""
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        victim = sched.run(
            "victim", 0.0, _burn_marked([0.5, 0.5]), preemptible=True
        )
        # even the boundary slot would finish at ~0.8 > 0.6: still a miss
        urgent = sched.run("urgent", 0.2, _burn(0.3), deadline=0.6)
        assert urgent.start == pytest.approx(1.0)
        assert sched.stats.preemptions == 0
        assert sched.stats.deadline_misses == 1
        assert victim.end == pytest.approx(1.0)

    def test_preemption_off_is_observational(self):
        sched = StreamScheduler(
            n_devices=1, streams_per_device=1, preemption=False
        )
        victim = sched.run(
            "victim", 0.0, _burn_marked([0.5, 0.5]), preemptible=True
        )
        urgent = sched.run("urgent", 0.2, _burn(0.2), deadline=0.8)
        assert urgent.start == pytest.approx(1.0)
        assert urgent.deadline_met is False
        assert sched.stats.preemptions == 0
        assert sched.stats.deadline_misses == 1
        assert victim.end == pytest.approx(1.0)


class TestInsertPreemption:
    def test_queue_jump_in_front_of_unstarted_unit(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        sched.run("head", 0.0, _burn(1.0))  # non-preemptible, running
        queued = sched.run("queued", 0.0, _burn(1.0), preemptible=True)
        assert queued.start == pytest.approx(1.0)
        urgent = sched.run("urgent", 1.0, _burn(0.3), deadline=1.4)
        assert urgent.start == pytest.approx(1.0)
        assert urgent.end == pytest.approx(1.3)
        assert urgent.deadline_met is True
        # no mid-flight state saved: a batch-member boundary is free
        assert sched.stats.preemption_inserts == 1
        assert sched.stats.preemption_splits == 0
        assert sched.stats.ctx_switch_s == 0.0
        assert queued.start == pytest.approx(1.3)
        assert queued.end == pytest.approx(2.3)
        _assert_no_overlap(sched, "dev0/s0")

    def test_non_preemptible_tail_blocks_slot(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        sched.run("head", 0.0, _burn(1.0), preemptible=True)
        sched.run("frozen", 0.0, _burn(1.0))  # not preemptible
        urgent = sched.run("urgent", 0.0, _burn(0.1), deadline=0.5)
        # shifting around the frozen unit would reorder the lane FIFO
        assert urgent.start == pytest.approx(2.0)
        assert sched.stats.preemptions == 0
        assert sched.stats.deadline_misses == 1

    def test_retired_victim_is_frozen(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        victim = sched.run(
            "victim", 0.0, _burn_marked([0.5, 0.5]), preemptible=True
        )
        # a dependent consumed the victim's end time: placement frozen
        dep = sched.run("dep", victim.end, _burn(0.1),
                        depends_on=(victim,))
        assert dep.start == pytest.approx(1.0)
        urgent = sched.run("urgent", 0.2, _burn(0.2), deadline=0.8)
        assert sched.stats.preemptions == 0
        assert urgent.deadline_met is False
        assert victim.end == pytest.approx(1.0)

    def test_preemption_restricted_to_execution_device(self):
        """The slot may not contradict the per-device profiler charge."""
        sched = StreamScheduler(n_devices=2, streams_per_device=1)
        # dev0 has a preemptible victim; dev1 is busy with frozen work
        sched.run("victim", 0.0, _burn_marked([0.5, 0.5]),
                  preemptible=True, device=sched.devices[0])
        sched.run("wall", 0.0, _burn(2.0), device=sched.devices[1])
        urgent = sched.run("urgent", 0.2, _burn(0.2), deadline=0.8,
                           device=sched.devices[1])
        # the victim lives on dev0, but the unit executed on dev1: no slot
        assert urgent.start == pytest.approx(2.0)
        assert sched.stats.preemptions == 0


class TestPreemptionInvariants:
    def test_preemptible_deadline_unit_rejected(self):
        sched = StreamScheduler()
        with pytest.raises(ServiceError, match="preemptible and deadline"):
            sched.run("bad", 0.0, _burn(0.1), preemptible=True, deadline=1.0)

    def test_preemptible_gang_rejected(self):
        sched = StreamScheduler(n_devices=2, streams_per_device=1)
        with pytest.raises(ServiceError, match="gang"):
            sched.run("bad", 0.0, _burn(0.1), preemptible=True, width=2)

    def test_negative_ctx_switch_rejected(self):
        with pytest.raises(ServiceError, match="ctx_switch_s"):
            StreamScheduler(ctx_switch_s=-1e-6)

    def test_lane_free_at_consistent_after_split(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        sched.run("victim", 0.0, _burn_marked([0.5, 0.5]), preemptible=True)
        sched.run("urgent", 0.2, _burn(0.2), deadline=0.8)
        lane = sched.lanes[0]
        last = max(ev.end for ev in sched.schedule if ev.tag == lane.name)
        assert lane.free_at == pytest.approx(last)
        follow = sched.run("follow", 0.0, _burn(0.1))
        assert follow.start == pytest.approx(last)


class TestDispatchOrderDeterminism:
    """Satellite: equal (priority, deadline) ties break by arrival index."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_equal_keys_preserve_submission_order(self, seed, make_request):
        rng = np.random.default_rng(seed)
        # ids that sort differently under lexicographic order than under
        # submission order (mixed widths, shuffled alphabet)
        ids = [f"{c}{rng.integers(0, 10**int(w))}"
               for c, w in zip("zqamxbtk", rng.integers(1, 5, size=8))]
        fit = make_request(request_id=f"fit-{seed}")
        items = [
            PredictRequest(request_id=rid, fit=fit, arrival=0.0,
                           priority=1, deadline=5.0)
            for rid in ids
        ]
        ordered = StreamScheduler.dispatch_order(items)
        assert [r.request_id for r in ordered] == ids

    def test_priority_then_deadline_still_dominate(self, make_request):
        fit = make_request()
        lo = PredictRequest(request_id="lo", fit=fit, priority=0)
        hi = PredictRequest(request_id="hi", fit=fit, priority=2)
        soon = PredictRequest(request_id="soon", fit=fit, priority=0,
                              deadline=1.0)
        ordered = StreamScheduler.dispatch_order([lo, hi, soon])
        assert [r.request_id for r in ordered] == ["hi", "soon", "lo"]


class TestServicePreemption:
    """End-to-end: an urgent predict steals time from running k-means."""

    def _trace(self, make_request, make_predict, arrival, deadline):
        warm = make_predict(arrival=0.0, request_id="warmup")
        fits = [
            make_request(arrival=0.01, request_id=f"f{i}") for i in range(3)
        ]
        urgent = make_predict(
            arrival=arrival, request_id="urgent", deadline=deadline,
            priority=2,
        )
        return [warm] + fits + [urgent]

    def _kmeans_window(self, make_request, make_predict):
        """Probe run: the span the batch's k-means units occupy."""
        svc = ClusterService(ServiceConfig(
            n_devices=1, streams_per_device=1, max_batch=4,
        ))
        svc.process(self._trace(make_request, make_predict, 1e9, None))
        kev = [
            ev for ev in svc.scheduler.schedule
            if ":kmeans[" in ev.name and ev.tag != "preempt"
        ]
        assert len(kev) == 3
        return min(e.start for e in kev), max(e.end for e in kev)

    def test_urgent_predict_preempts_kmeans(self, make_request, make_predict):
        lo, hi = self._kmeans_window(make_request, make_predict)
        arrival = lo + 0.25 * (hi - lo)
        deadline = arrival + 0.5 * (hi - arrival)
        trace = self._trace(make_request, make_predict, arrival, deadline)

        on = ClusterService(ServiceConfig(
            n_devices=1, streams_per_device=1, max_batch=4,
        ))
        r_on, rep_on = on.process(trace)
        off = ClusterService(ServiceConfig(
            n_devices=1, streams_per_device=1, max_batch=4,
            preemption=False,
        ))
        r_off, rep_off = off.process(trace)

        u_on = r_on[-1]
        u_off = r_off[-1]
        assert u_on.ok and u_off.ok
        # without preemption the predict queues behind the whole batch
        assert u_off.deadline_met is False
        assert u_on.deadline_met is True
        assert rep_on.scheduler["preemptions"] >= 1
        assert rep_on.scheduler["saved_misses"] >= 1
        assert rep_on.predict["deadline_misses"] == 0
        assert rep_off.predict["deadline_misses"] == 1
        # placement rewrites only: every result stays bit-identical
        for a, b in zip(r_on, r_off):
            assert a.request_id == b.request_id
            assert np.array_equal(a.labels, b.labels)

    def test_preempted_kmeans_response_reflects_shift(
        self, make_request, make_predict
    ):
        lo, hi = self._kmeans_window(make_request, make_predict)
        arrival = lo + 0.25 * (hi - lo)
        deadline = arrival + 0.5 * (hi - arrival)
        trace = self._trace(make_request, make_predict, arrival, deadline)
        svc = ClusterService(ServiceConfig(
            n_devices=1, streams_per_device=1, max_batch=4,
        ))
        responses, report = svc.process(trace)
        assert report.scheduler["preemptions"] >= 1
        # the victims' completion times include the stolen window: the
        # latest fit finishes after the urgent predict's span
        urgent = responses[-1]
        last_fit = max(
            (r for r in responses if r.request_id.startswith("f")),
            key=lambda r: r.completed,
        )
        assert last_fit.completed > urgent.completed
        # deferred finalization kept ordering facts coherent
        for r in responses:
            assert r.completed >= r.arrival
