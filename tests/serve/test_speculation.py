"""Speculative batch formation: the arrival predictor and the hold loop."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.serve.batcher import ArrivalPredictor
from repro.serve.service import ClusterService, ServiceConfig


class TestArrivalPredictor:
    def test_no_history_no_prediction(self):
        p = ArrivalPredictor()
        assert p.mean_gap(("k",)) is None
        assert p.predict_next(("k",), now=0.0) is None
        p.observe(("k",), 1.0)
        assert p.predict_next(("k",), now=1.0) is None  # one arrival

    def test_regular_stream_predicts_the_gap(self):
        p = ArrivalPredictor()
        for t in (0.0, 2.0, 4.0, 6.0):
            p.observe(("k",), t)
        assert p.mean_gap(("k",)) == pytest.approx(2.0)
        assert p.predict_next(("k",), now=6.5) == pytest.approx(8.0)

    def test_overdue_prediction_is_none(self):
        """An overdue prediction means the stream ended, not 'wait more'."""
        p = ArrivalPredictor()
        p.observe(("k",), 0.0)
        p.observe(("k",), 2.0)
        assert p.predict_next(("k",), now=10.0) is None

    def test_history_window_slides(self):
        p = ArrivalPredictor(history=2)
        for t in (0.0, 100.0, 101.0, 102.0):
            p.observe(("k",), t)
        # the burst at t=0 has aged out of the 2-gap window
        assert p.mean_gap(("k",)) == pytest.approx(1.0)

    def test_keys_are_independent(self):
        p = ArrivalPredictor()
        p.observe(("a",), 0.0)
        p.observe(("a",), 1.0)
        assert p.predict_next(("a",), now=1.5) == pytest.approx(2.0)
        assert p.predict_next(("b",), now=1.5) is None

    def test_bad_history_rejected(self):
        with pytest.raises(ServiceError):
            ArrivalPredictor(history=0)


class TestSpeculativeHold:
    def _run(self, requests, window):
        svc = ClusterService(ServiceConfig(
            n_devices=1, streams_per_device=1, max_batch=4,
            speculation_window=window,
        ))
        return svc.process(requests)

    def _recurring_trace(self, make_request, gap, n):
        """Identical fit specs arriving on a metronome — the recurring-
        fingerprint workload speculation exists for."""
        return [
            make_request(arrival=i * gap, request_id=f"r{i}") for i in range(n)
        ]

    def _calibrated_gap(self, make_request):
        """A gap comfortably larger than one request's service time, so
        without speculation every request dispatches as a lone batch."""
        _, report = self._run(self._recurring_trace(make_request, 0.0, 1), 0.0)
        return 4.0 * report.makespan

    def test_window_zero_never_holds(self, make_request):
        gap = self._calibrated_gap(make_request)
        _, report = self._run(
            self._recurring_trace(make_request, gap, 5), 0.0
        )
        assert report.batches["spec_holds"] == 0
        assert report.batches["n_batches"] == 5  # every batch is a singleton

    def test_hold_coalesces_recurring_arrivals(self, make_request):
        gap = self._calibrated_gap(make_request)
        trace = self._recurring_trace(make_request, gap, 5)
        _, base = self._run(trace, 0.0)
        responses, spec = self._run(trace, window=1.5 * gap)
        assert all(r.ok for r in responses)
        assert spec.batches["spec_holds"] > 0
        assert spec.batches["spec_hits"] > 0
        assert spec.batches["spec_hold_s"] > 0.0
        # the win: fewer, larger batches on the same trace
        assert spec.batches["n_batches"] < base.batches["n_batches"]
        assert (
            spec.batches["mean_batch_size"] > base.batches["mean_batch_size"]
        )

    def test_hold_cost_is_honest(self, make_request):
        """Held requests pay the wait: queue waits grow, win or lose."""
        gap = self._calibrated_gap(make_request)
        trace = self._recurring_trace(make_request, gap, 5)
        r_base, base = self._run(trace, 0.0)
        r_spec, spec = self._run(trace, window=1.5 * gap)
        by_id = {r.request_id: r for r in r_base}
        held_waits = [
            r.queue_wait - by_id[r.request_id].queue_wait for r in r_spec
        ]
        assert max(held_waits) > 0.0  # somebody waited for a speculated peer

    def test_window_shorter_than_gap_never_holds(self, make_request):
        gap = self._calibrated_gap(make_request)
        trace = self._recurring_trace(make_request, gap, 5)
        _, spec = self._run(trace, window=0.4 * gap)
        # the predicted arrival lands outside the window every time, so
        # the service never gambles at all
        assert spec.batches["spec_holds"] == 0
        assert spec.batches["n_batches"] == 5

    def test_ended_stream_expires_as_miss(self, make_request):
        gap = self._calibrated_gap(make_request)
        # two arrivals train the predictor; the stream then ends, so the
        # second request's hold waits the full window for nobody
        trace = self._recurring_trace(make_request, gap, 2)
        _, spec = self._run(trace, window=1.5 * gap)
        assert spec.batches["spec_holds"] == 1
        assert spec.batches["spec_misses"] == 1
        assert spec.batches["spec_hits"] == 0
        assert spec.batches["spec_hold_s"] == pytest.approx(1.5 * gap)

    def test_results_identical_with_and_without_speculation(
        self, make_request
    ):
        gap = self._calibrated_gap(make_request)
        trace = self._recurring_trace(make_request, gap, 5)
        r_base, _ = self._run(trace, 0.0)
        r_spec, _ = self._run(trace, window=1.5 * gap)
        for a, b in zip(r_base, r_spec):
            assert a.request_id == b.request_id
            assert np.array_equal(a.labels, b.labels)
            assert np.array_equal(a.embedding, b.embedding)

    def test_unpredictable_key_never_holds(self, make_request, other_graph):
        """Alternating fingerprints give each key too little history."""
        gap = self._calibrated_gap(make_request)
        trace = []
        for i in range(4):
            graph = other_graph if i % 2 else None
            kw = {"graph": graph} if graph is not None else {}
            trace.append(
                make_request(arrival=i * gap, request_id=f"r{i}", **kw)
            )
        _, report = self._run(trace, window=1.5 * gap)
        # each key recurs with gap 2*gap; predictions land outside the
        # window measured from each dispatch decision, so holds that do
        # start never pay off across keys
        assert report.batches["spec_hits"] == 0

    def test_max_batch_one_disables_speculation(self, make_request):
        gap = self._calibrated_gap(make_request)
        svc = ClusterService(ServiceConfig(
            n_devices=1, streams_per_device=1, max_batch=1,
            speculation_window=10.0 * gap,
        ))
        _, report = svc.process(self._recurring_trace(make_request, gap, 4))
        assert report.batches["spec_holds"] == 0
