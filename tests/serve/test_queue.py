"""Admission control: bounded queue with typed rejection."""

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.serve.queue import AdmissionQueue


class TestAdmissionQueue:
    def test_fifo_order(self, make_request):
        q = AdmissionQueue(capacity=4)
        reqs = [make_request() for _ in range(3)]
        for r in reqs:
            q.submit(r)
        assert q.peek() is reqs[0]
        assert [r.request_id for r in q] == [r.request_id for r in reqs]

    def test_rejection_is_typed_and_carries_occupancy(self, make_request):
        q = AdmissionQueue(capacity=2)
        q.submit(make_request())
        q.submit(make_request())
        with pytest.raises(AdmissionError) as exc:
            q.submit(make_request())
        assert exc.value.capacity == 2
        assert exc.value.occupancy == 2
        assert q.stats.rejected == 1
        assert q.stats.admitted == 2

    def test_take_preserves_untaken_order(self, make_request):
        q = AdmissionQueue(capacity=8)
        reqs = [make_request(n_clusters=2 + (i % 2)) for i in range(6)]
        for r in reqs:
            q.submit(r)
        taken = q.take(lambda r: r.n_clusters == 2, limit=2)
        assert [t.request_id for t in taken] == [
            reqs[0].request_id, reqs[2].request_id
        ]
        # untaken requests keep their relative order
        assert [r.request_id for r in q] == [
            reqs[1].request_id, reqs[3].request_id,
            reqs[4].request_id, reqs[5].request_id,
        ]

    def test_take_drains_capacity(self, make_request):
        q = AdmissionQueue(capacity=1)
        q.submit(make_request())
        q.take(lambda r: True, limit=1)
        q.submit(make_request())  # space freed, no rejection

    def test_max_occupancy_high_water(self, make_request):
        q = AdmissionQueue(capacity=4)
        q.submit(make_request())
        q.submit(make_request())
        q.take(lambda r: True, limit=2)
        q.submit(make_request())
        assert q.stats.max_occupancy == 2

    def test_peek_empty_raises(self):
        with pytest.raises(ServiceError):
            AdmissionQueue(capacity=1).peek()

    def test_bad_capacity_rejected(self):
        with pytest.raises(ServiceError):
            AdmissionQueue(capacity=0)
