"""Stream scheduler: honest overlap accounting on the simulated clock."""

import pytest

from repro.errors import ServiceError, TransferError
from repro.serve.scheduler import StreamScheduler


def _burn(seconds):
    """A unit fn charging a fixed simulated duration on its device."""
    def fn(dev):
        dev.charge_cpu("work", seconds)
        return seconds
    return fn


def _fail_after(seconds):
    def fn(dev):
        dev.charge_cpu("doomed", seconds)
        raise TransferError("injected for test")
    return fn


class TestStreamScheduler:
    def test_two_streams_overlap(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=2)
        a = sched.run("a", 0.0, _burn(1.0))
        b = sched.run("b", 0.0, _burn(1.0))
        assert a.start == 0.0 and b.start == 0.0
        assert sched.makespan() == pytest.approx(1.0)
        assert {a.lane, b.lane} == {"dev0/s0", "dev0/s1"}

    def test_single_stream_serializes(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        a = sched.run("a", 0.0, _burn(1.0))
        b = sched.run("b", 0.0, _burn(0.5))
        assert b.start == pytest.approx(a.end)
        assert sched.makespan() == pytest.approx(1.5)

    def test_ready_at_respected(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=2)
        unit = sched.run("late", 2.0, _burn(0.5))
        assert unit.start == pytest.approx(2.0)
        assert unit.end == pytest.approx(2.5)

    def test_device_affinity_pins_lane(self):
        sched = StreamScheduler(n_devices=2, streams_per_device=2)
        # make dev0 busy so the free choice would be dev1
        sched.run("busy", 0.0, _burn(5.0))
        pinned = sched.run("pinned", 0.0, _burn(0.1),
                           device=sched.devices[0])
        assert pinned.lane.startswith("dev0/")

    def test_unknown_device_rejected(self):
        from repro.cuda.device import Device

        sched = StreamScheduler(n_devices=1)
        with pytest.raises(ServiceError):
            sched.run("x", 0.0, _burn(0.1), device=Device())

    def test_failed_unit_still_charges_lane_time(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=1)
        unit = sched.run("doomed", 0.0, _fail_after(0.7))
        assert not unit.ok
        assert isinstance(unit.error, TransferError)
        assert unit.duration == pytest.approx(0.7)
        follow = sched.run("next", 0.0, _burn(0.1))
        assert follow.start == pytest.approx(0.7)

    def test_failure_annotated_in_schedule(self):
        sched = StreamScheduler()
        sched.run("doomed", 0.0, _fail_after(0.1))
        names = [ev.name for ev in sched.schedule]
        assert any("failed: TransferError" in n for n in names)

    def test_non_repro_errors_propagate(self):
        sched = StreamScheduler()

        def boom(dev):
            raise RuntimeError("programming bug")

        with pytest.raises(RuntimeError):
            sched.run("bug", 0.0, boom)

    def test_occupancy_bounds(self):
        sched = StreamScheduler(n_devices=2, streams_per_device=2)
        for i in range(4):
            sched.run(f"u{i}", 0.0, _burn(1.0))
        occ = sched.occupancy()
        assert set(occ) == {"dev0", "dev1"}
        for v in occ.values():
            assert 0.0 <= v <= 1.0
        # 4 equal units over 4 lanes at t=0 → everything fully busy
        assert occ["dev0"] == pytest.approx(1.0)
        assert occ["dev1"] == pytest.approx(1.0)

    def test_empty_schedule(self):
        sched = StreamScheduler()
        assert sched.makespan() == 0.0
        assert sched.occupancy() == {"dev0": 0.0}

    def test_bad_config_rejected(self):
        with pytest.raises(ServiceError):
            StreamScheduler(n_devices=0)
        with pytest.raises(ServiceError):
            StreamScheduler(streams_per_device=0)

    def test_deterministic_lane_ties(self):
        """Equal availability resolves to the first lane, every time."""
        sched = StreamScheduler(n_devices=1, streams_per_device=3)
        unit = sched.run("first", 0.0, _burn(0.1))
        assert unit.lane == "dev0/s0"


class TestGangScheduling:
    """width > 1: a multi-device solve occupies several lanes honestly."""

    def test_width_reserves_lanes_on_distinct_devices(self):
        sched = StreamScheduler(n_devices=2, streams_per_device=2)
        unit = sched.run("gang", 0.0, _burn(1.0), width=2)
        assert len(unit.lanes) == 2
        devs = {lane.split("/")[0] for lane in unit.lanes}
        assert devs == {"dev0", "dev1"}
        assert unit.lanes[0] == unit.lane

    def test_gang_members_share_a_common_start(self):
        sched = StreamScheduler(n_devices=2, streams_per_device=1)
        sched.run("head-start", 0.0, _burn(2.0))  # dev0 busy until t=2
        unit = sched.run("gang", 0.0, _burn(1.0), width=2)
        # the gang cannot start until its slowest member's lane frees up
        assert unit.start == pytest.approx(2.0)
        starts = {
            ev.start for ev in sched.schedule if ev.name == "gang"
        }
        assert starts == {unit.start}

    def test_width_spills_to_sibling_streams(self):
        sched = StreamScheduler(n_devices=2, streams_per_device=2)
        unit = sched.run("wide", 0.0, _burn(0.5), width=4)
        assert len(unit.lanes) == 4
        assert len(set(unit.lanes)) == 4  # all distinct lanes

    def test_width_beyond_lane_count_rejected(self):
        sched = StreamScheduler(n_devices=1, streams_per_device=2)
        with pytest.raises(ServiceError):
            sched.run("too-wide", 0.0, _burn(0.1), width=3)
        with pytest.raises(ServiceError):
            sched.run("non-positive", 0.0, _burn(0.1), width=0)

    def test_gang_blocks_other_units(self):
        sched = StreamScheduler(n_devices=2, streams_per_device=1)
        sched.run("gang", 0.0, _burn(1.0), width=2)
        late = sched.run("late", 0.0, _burn(0.5))
        # both lanes were held by the gang, so the next unit queues
        assert late.start == pytest.approx(1.0)

    def test_width_one_unchanged(self):
        sched = StreamScheduler(n_devices=2, streams_per_device=1)
        unit = sched.run("solo", 0.0, _burn(1.0))
        assert unit.lanes == (unit.lane,)
        other = sched.run("other", 0.0, _burn(1.0))
        assert other.start == pytest.approx(0.0)  # dev1 lane was free
