"""JSONL request traces: round-trip fidelity and strict parsing."""

import json

import pytest

from repro.errors import TraceFormatError
from repro.serve.request import ClusterRequest
from repro.serve.traceio import (
    read_trace,
    request_from_dict,
    request_to_dict,
    synthetic_trace,
    write_trace,
)


class TestTraceRoundTrip:
    def test_round_trip_preserves_everything(self, tmp_path):
        reqs = synthetic_trace(n_requests=8, chaos_every=3, seed=42)
        path = tmp_path / "trace.jsonl"
        write_trace(reqs, path)
        back = read_trace(path)
        assert len(back) == len(reqs)
        for a, b in zip(reqs, back):
            assert request_to_dict(a) == request_to_dict(b)

    def test_defaults_omitted_from_lines(self):
        req = ClusterRequest(request_id="r1", dataset="syn200")
        d = request_to_dict(req)
        assert set(d) == {"request_id", "dataset"}

    def test_by_value_request_not_serializable(self, small_graph):
        req = ClusterRequest(request_id="r1", graph=small_graph)
        with pytest.raises(TraceFormatError):
            request_to_dict(req)

    def test_comment_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            '# a comment\n\n{"request_id": "a", "dataset": "syn200"}\n'
        )
        assert len(read_trace(path)) == 1


class TestTraceParsing:
    def test_unknown_field_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown trace fields"):
            request_from_dict(
                {"request_id": "a", "dataset": "syn200", "n_cluster": 3}
            )

    def test_missing_required_fields(self):
        with pytest.raises(TraceFormatError):
            request_from_dict({"dataset": "syn200"})
        with pytest.raises(TraceFormatError):
            request_from_dict({"request_id": "a"})

    def test_non_integer_chaos_rejected(self):
        with pytest.raises(TraceFormatError, match="chaos"):
            request_from_dict(
                {"request_id": "a", "dataset": "syn200", "chaos": "boom"}
            )

    def test_invalid_json_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"request_id": "a", "dataset": "syn200"}\n{oops\n')
        with pytest.raises(TraceFormatError, match="line 2"):
            read_trace(path)


class TestSyntheticTrace:
    def test_arrivals_monotone_nonnegative(self):
        reqs = synthetic_trace(n_requests=20)
        arrivals = [r.arrival for r in reqs]
        assert all(a >= 0 for a in arrivals)
        assert arrivals == sorted(arrivals)

    def test_deterministic_by_seed(self):
        a = synthetic_trace(n_requests=10, seed=5)
        b = synthetic_trace(n_requests=10, seed=5)
        assert [request_to_dict(x) for x in a] == [request_to_dict(x) for x in b]

    def test_chaos_every_arms_subset(self):
        reqs = synthetic_trace(n_requests=12, chaos_every=4)
        armed = [r for r in reqs if r.chaos is not None]
        assert len(armed) == 3
        assert all(isinstance(r.chaos, int) for r in armed)

    def test_workloads_repeat_for_cache_pressure(self):
        reqs = synthetic_trace(n_requests=12)
        keys = {(r.dataset, r.scale, r.data_seed, r.n_clusters) for r in reqs}
        assert len(keys) < len(reqs)  # repeats exist by construction
