"""End-to-end service semantics: correctness, caching, throughput, chaos.

These tests pin the ISSUE's acceptance criteria: cache hits bit-identical
to cold runs, batched+cached service at least 2x the sequential simulated
throughput on a repeat-heavy workload, and fault isolation inside a batch.
"""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.serve import (
    ClusterService,
    ServiceConfig,
    run_sequential,
    verify_against_cold,
)
from repro.serve.request import ClusterRequest


def _service(**kw):
    kw.setdefault("max_batch", 8)
    kw.setdefault("cache_entries", 16)
    return ClusterService(ServiceConfig(**kw))


class TestServiceCorrectness:
    def test_single_request_matches_direct_fit(self, make_request, small_graph):
        req = make_request()
        responses, report = _service().process([req])
        resp = responses[0]
        assert resp.ok and not resp.cache_hit
        cold = req.estimator().fit(graph=small_graph)
        assert np.array_equal(resp.labels, cold.labels)
        assert np.array_equal(resp.embedding, cold.embedding)
        assert np.array_equal(resp.eigenvalues, cold.eigenvalues)
        assert report.n_ok == 1

    def test_batched_requests_bit_identical_to_cold(self, make_request,
                                                    small_graph):
        """A shared operator/solve must not perturb any member's result."""
        reqs = [make_request(n_clusters=k, seed=s)
                for k in (3, 4) for s in (0, 1)]
        responses, report = _service().process(reqs)
        assert report.batches["max_batch"] == 4
        for req, resp in zip(reqs, responses):
            cold = req.estimator().fit(graph=small_graph)
            assert np.array_equal(resp.labels, cold.labels), req.request_id
            assert np.array_equal(resp.embedding, cold.embedding)

    def test_cache_hit_bit_identical(self, make_request):
        """Second identical request hits the cache and matches exactly."""
        a, b = make_request(), make_request(arrival=1.0)
        responses, report = _service().process([a, b])
        assert not responses[0].cache_hit
        assert responses[1].cache_hit
        assert report.n_cache_hits == 1
        assert np.array_equal(responses[0].labels, responses[1].labels)
        assert np.array_equal(responses[0].embedding, responses[1].embedding)

    def test_cache_hit_skips_solver_time(self, make_request):
        a, b = make_request(), make_request(arrival=10.0)
        responses, _ = _service().process([a, b])
        hit = responses[1]
        assert "eigensolver" not in hit.timings.simulated
        assert "kmeans" in hit.timings.simulated
        assert hit.latency < responses[0].latency

    def test_different_seeds_do_not_share_cache(self, make_request):
        a, b = make_request(seed=0), make_request(arrival=1.0, seed=1)
        responses, report = _service().process([a, b])
        assert report.n_cache_hits == 0
        assert not np.array_equal(responses[0].embedding, responses[1].embedding)

    def test_precision_and_embedding_partition_the_cache(self, make_request):
        """The embedding key carries the precision and embedding axes: an
        fp32 or power-embedding result must never be served to an fp64
        Lanczos request, while a repeat of the same cell still hits."""
        reqs = [
            make_request(),
            make_request(arrival=1.0, precision="fp32"),
            make_request(arrival=2.0, embedding="power"),
            make_request(arrival=3.0, precision="fp32"),
        ]
        responses, report = _service().process(reqs)
        assert all(r.ok for r in responses)
        # only the repeated fp32 cell hits; the axes never cross-serve
        assert [r.cache_hit for r in responses] == [
            False, False, False, True,
        ]
        assert report.n_cache_hits == 1
        assert np.array_equal(responses[1].embedding, responses[3].embedding)

    def test_verify_against_cold_clean_run(self, make_request):
        reqs = [make_request(n_clusters=k) for k in (3, 4, 3)]
        responses, _ = _service().process(reqs)
        assert verify_against_cold(responses, reqs) == []

    def test_responses_in_request_order(self, make_request):
        reqs = [make_request(arrival=0.5), make_request(arrival=0.0)]
        responses, _ = _service().process(reqs)
        assert [r.request_id for r in responses] == [r.request_id for r in reqs]

    def test_duplicate_request_ids_rejected(self, make_request):
        from repro.errors import ServiceError

        a = make_request(request_id="dup")
        b = make_request(request_id="dup")
        with pytest.raises(ServiceError):
            _service().process([a, b])

    def test_point_input_requests(self, blobs):
        X, _, k = blobs
        n = X.shape[0]
        rng = np.random.default_rng(0)
        rows = rng.integers(0, n, size=600)
        cols = rng.integers(0, n, size=600)
        edges = np.stack([rows, cols], axis=1)
        req = ClusterRequest(request_id="pts", X=X, edges=edges, n_clusters=k)
        responses, _ = ClusterService().process([req])
        resp = responses[0]
        assert resp.ok
        cold = req.estimator().fit(X=X, edges=edges)
        assert np.array_equal(resp.labels, cold.labels)


class TestServiceThroughput:
    def test_batched_cached_at_least_2x_sequential(self, make_request):
        """The headline acceptance criterion, on a repeat-heavy workload."""
        reqs = [
            make_request(arrival=i * 1e-4, n_clusters=3 if i % 2 else 4)
            for i in range(10)
        ]
        responses, report = _service(streams_per_device=2).process(reqs)
        seq_resp, seq_report = run_sequential(reqs)
        assert report.n_ok == seq_report.n_ok == len(reqs)
        assert report.n_cache_hits > 0
        speedup = seq_report.makespan / report.makespan
        assert speedup >= 2.0, f"only {speedup:.2f}x"
        assert report.throughput_rps > 2.0 * seq_report.throughput_rps
        # and the fast path changed nothing
        for fast, slow in zip(responses, seq_resp):
            assert np.array_equal(fast.labels, slow.labels)
            assert np.array_equal(fast.embedding, slow.embedding)

    def test_queue_wait_charged_to_latency(self, make_request):
        reqs = [make_request(arrival=0.0), make_request(arrival=0.0,
                                                        n_clusters=5)]
        responses, _ = _service(max_batch=1, streams_per_device=1).process(reqs)
        second = responses[1]
        assert second.queue_wait > 0
        assert second.latency >= second.queue_wait

    def test_rejection_under_burst(self, make_request):
        reqs = [make_request(arrival=0.0) for _ in range(6)]
        responses, report = _service(
            queue_capacity=2, max_batch=1, cache_entries=0
        ).process(reqs)
        assert report.n_rejected > 0
        assert report.n_ok + report.n_rejected == len(reqs)
        rejected = [r for r in responses if r.status == "rejected"]
        assert all(r.labels is None for r in rejected)
        assert all("queue full" in r.error for r in rejected)

    def test_multi_device_distributes_work(self, make_request, other_graph):
        """Two incompatible request streams spread over two devices."""
        reqs = []
        for i in range(4):
            reqs.append(make_request(arrival=0.0, seed=i))
            reqs.append(make_request(arrival=0.0, graph=other_graph, seed=i))
        _, report = _service(
            n_devices=2, cache_entries=0, max_batch=1
        ).process(reqs)
        busy = report.occupancy
        assert busy["dev0"] > 0 and busy["dev1"] > 0


class TestServiceChaos:
    def test_fault_isolated_from_batch_mates(self, make_request, small_graph):
        """A terminally failing request must not poison its batch."""
        chaotic = make_request(chaos=1003, no_resilience=True)
        clean = [make_request(seed=s) for s in (0, 1)]
        reqs = [chaotic] + clean
        responses, report = _service().process(reqs)
        by_id = {r.request_id: r for r in responses}
        # the chaotic request may fail or survive (depends where faults land)
        for req in clean:
            resp = by_id[req.request_id]
            assert resp.ok, resp.error
            cold = req.estimator().fit(graph=small_graph)
            assert np.array_equal(resp.labels, cold.labels)
            assert np.array_equal(resp.embedding, cold.embedding)

    def test_resilient_chaos_recovers_and_is_flagged(self, make_request):
        reqs = [make_request(chaos=7)]
        responses, report = _service().process(reqs)
        resp = responses[0]
        assert resp.ok
        assert resp.resilience  # recovery recorded
        assert report.n_degraded == 1

    def test_faulted_results_never_cached(self, make_request):
        """A recovered (resilient) computation must not seed the cache."""
        svc = _service()
        reqs = [make_request(chaos=7), make_request(arrival=100.0)]
        responses, report = svc.process(reqs)
        assert responses[0].ok
        assert not responses[1].cache_hit  # recomputed, not served tainted
        assert svc.cache.stats.insertions >= 1  # the clean rerun is cached

    def test_faulted_reduced_precision_embedding_never_cached(
        self, make_request
    ):
        """The taint rule extends to the mixed-precision cells: a
        reduced-precision embedding computed under fault recovery must
        not seed the cache, even though it is numerically valid — the
        second identical fp32 request recomputes cleanly."""
        svc = _service()
        reqs = [
            make_request(precision="fp32", chaos=7),
            make_request(precision="fp32", arrival=100.0),
        ]
        responses, _ = svc.process(reqs)
        assert responses[0].ok
        assert responses[0].resilience  # recovery actually happened
        assert not responses[1].cache_hit  # tainted, so recomputed
        assert responses[1].ok
        # the clean rerun agrees bit-for-bit (deterministic reduced path)
        assert np.array_equal(responses[0].labels, responses[1].labels)
        assert svc.cache.stats.insertions >= 1

    def test_failed_leader_work_recomputed_for_survivors(self, make_request,
                                                         small_graph):
        """Exhaustive chaos seeds: whatever unit the fault kills, every
        non-chaotic batch-mate still gets a bit-exact result."""
        clean_cold = {}
        for seed in (1001, 1005, 1009):
            chaotic = make_request(chaos=seed, no_resilience=True)
            mate = make_request(seed=3)
            responses, _ = _service().process([chaotic, mate])
            resp = responses[1]
            assert resp.ok, resp.error
            if "ref" not in clean_cold:
                clean_cold["ref"] = mate.estimator().fit(graph=small_graph)
            assert np.array_equal(resp.labels, clean_cold["ref"].labels)


class TestServiceReportShape:
    def test_report_serializes(self, make_request):
        reqs = [make_request(), make_request(arrival=0.5)]
        _, report = _service().process(reqs)
        import json

        d = json.loads(report.to_json())
        assert d["requests"]["total"] == 2
        assert "latency_s" in d and "p95" in d["latency_s"]
        assert "occupancy" in d and "profile" in d
        text = report.format_report()
        assert "cache hit rate" in text and "makespan" in text

    def test_profile_totals_match_devices(self, make_request):
        svc = _service()
        _, report = svc.process([make_request()])
        assert report.profile is not None
        assert report.profile.total > 0


class TestMultiDeviceServing:
    """eig_devices requests gang-schedule across device lanes and still
    share the embedding cache with single-device solves."""

    def test_multi_device_request_bit_identical(self, make_request):
        ref, _ = _service().process([make_request()])
        multi, _ = _service(n_devices=2).process(
            [make_request(eig_devices=2)]
        )
        assert multi[0].labels.tobytes() == ref[0].labels.tobytes()
        assert np.array_equal(multi[0].eigenvalues, ref[0].eigenvalues)

    def test_solve_occupies_multiple_lanes(self, make_request):
        svc = _service(n_devices=2)
        svc.process([make_request(eig_devices=2)])
        solves = [
            ev for ev in svc.scheduler.schedule if "eigensolve" in ev.name
        ]
        # the gang reserves one lane per device, same start, same duration
        assert len(solves) == 2
        assert {ev.tag.split("/")[0] for ev in solves} == {"dev0", "dev1"}
        assert len({ev.start for ev in solves}) == 1
        assert len({ev.duration for ev in solves}) == 1

    def test_width_capped_by_available_lanes(self, make_request):
        svc = _service(n_devices=1, streams_per_device=1)
        responses, _ = svc.process([make_request(eig_devices=4)])
        assert responses[0].error is None

    def test_device_count_does_not_split_cache(self, make_request):
        """eig_devices is not part of the embedding key: one solve serves
        both a single- and a multi-device request for the same problem."""
        svc = _service(n_devices=2)
        responses, report = svc.process(
            [
                make_request(eig_devices=1),
                make_request(eig_devices=2),
            ]
        )
        solve_names = {
            ev.name for ev in svc.scheduler.schedule if "eigensolve" in ev.name
        }
        assert len(solve_names) == 1
        a, b = responses
        assert a.labels.tobytes() == b.labels.tobytes()

    def test_composed_request_bit_identical(self, make_request):
        """fit_devices requests run the composed plan through the staged
        estimator and reproduce the single-device answer bit for bit."""
        ref, _ = _service().process([make_request()])
        comp, _ = _service(n_devices=2).process(
            [make_request(fit_devices=2, partition_mode="mincut")]
        )
        assert comp[0].labels.tobytes() == ref[0].labels.tobytes()
        assert np.array_equal(comp[0].eigenvalues, ref[0].eigenvalues)

    def test_composed_does_not_split_cache(self, make_request):
        """fit_devices/partition_mode are not part of the embedding key —
        a composed fit serves a cached single-device embedding too."""
        svc = _service(n_devices=2)
        responses, _ = svc.process(
            [
                make_request(),
                make_request(fit_devices=2, partition_mode="mincut"),
            ]
        )
        solve_names = {
            ev.name for ev in svc.scheduler.schedule if "eigensolve" in ev.name
        }
        assert len(solve_names) == 1
        a, b = responses
        assert a.labels.tobytes() == b.labels.tobytes()


class TestCompressiveServing:
    """The compressive tier rides the service like any embedding: cache
    hits are bit-identical, tier keys never cross, and the taint rule
    (faulted embeddings never seed the cache) extends to it."""

    def test_compressive_cache_hit_bit_identical(self, make_request):
        svc = _service()
        reqs = [
            make_request(embedding="compressive"),
            make_request(embedding="compressive", arrival=100.0),
        ]
        responses, _ = svc.process(reqs)
        assert responses[0].ok and not responses[0].cache_hit
        assert responses[1].ok and responses[1].cache_hit
        assert np.array_equal(responses[0].labels, responses[1].labels)
        assert np.array_equal(responses[0].embedding, responses[1].embedding)

    def test_compressive_never_serves_exact_entry(self, make_request,
                                                  small_graph):
        """Same workload, exact then compressive: the second request must
        compute its own embedding, not hit the exact entry."""
        svc = _service()
        reqs = [
            make_request(),
            make_request(embedding="compressive", arrival=100.0),
        ]
        responses, _ = svc.process(reqs)
        assert responses[1].ok and not responses[1].cache_hit
        cold = reqs[1].estimator().fit(graph=small_graph)
        assert np.array_equal(responses[1].labels, cold.labels)

    def test_faulted_compressive_embedding_never_cached(self, make_request):
        """A compressive solve that recovered from injected faults must
        not seed the cache; the next identical request recomputes."""
        from repro.chaos import FaultPlan, FaultSpec

        plan = FaultPlan(
            [FaultSpec(site="compressive.filter", fault="transient",
                       nth=1, stage="eigensolver")]
        )
        svc = _service()
        reqs = [
            make_request(embedding="compressive", chaos=plan),
            make_request(embedding="compressive", arrival=100.0),
        ]
        responses, _ = svc.process(reqs)
        assert responses[0].ok
        assert responses[0].resilience  # recovery actually happened
        assert not responses[1].cache_hit  # tainted, so recomputed
        assert responses[1].ok
        # deterministic tier: the clean rerun agrees bit-for-bit
        assert np.array_equal(responses[0].labels, responses[1].labels)
        assert svc.cache.stats.insertions >= 1
