"""SimClock and Timeline accounting semantics."""

import pytest

from repro.hw.timeline import SimClock, Timeline


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        c = SimClock()
        c.advance(1.5)
        c.advance(0.5)
        assert c.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_reset(self):
        c = SimClock()
        c.advance(3.0)
        c.reset()
        assert c.now == 0.0


class TestTimeline:
    def test_record_advances_clock(self):
        tl = Timeline()
        tl.record("k1", "kernel", 0.25)
        assert tl.clock.now == pytest.approx(0.25)

    def test_events_carry_start_and_end(self):
        tl = Timeline()
        tl.record("a", "kernel", 0.1)
        ev = tl.record("b", "h2d", 0.2)
        assert ev.start == pytest.approx(0.1)
        assert ev.end == pytest.approx(0.3)

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            Timeline().record("x", "quantum", 0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Timeline().record("x", "kernel", -1.0)

    def test_total_filters_by_category(self):
        tl = Timeline()
        tl.record("a", "kernel", 1.0)
        tl.record("b", "h2d", 2.0)
        assert tl.total("kernel") == pytest.approx(1.0)
        assert tl.total() == pytest.approx(3.0)

    def test_tagging_scopes_events(self):
        tl = Timeline()
        tl.set_tag("stage1")
        tl.record("a", "kernel", 1.0)
        tl.set_tag("stage2")
        tl.record("b", "kernel", 2.0)
        assert tl.total(tag="stage1") == pytest.approx(1.0)
        assert tl.by_tag() == pytest.approx({"stage1": 1.0, "stage2": 2.0})

    def test_communication_vs_computation_split(self):
        tl = Timeline()
        tl.record("up", "h2d", 0.5)
        tl.record("k", "kernel", 1.0)
        tl.record("cpu", "cpu", 2.0)
        tl.record("down", "d2h", 0.25)
        assert tl.communication_time() == pytest.approx(0.75)
        assert tl.computation_time() == pytest.approx(3.0)

    def test_count(self):
        tl = Timeline()
        tl.record("a", "kernel", 0.1)
        tl.record("b", "kernel", 0.1)
        tl.record("c", "d2h", 0.1)
        assert tl.count("kernel") == 2
        assert len(tl) == 3

    def test_clear_resets_everything(self):
        tl = Timeline()
        tl.record("a", "kernel", 1.0)
        tl.clear()
        assert len(tl) == 0
        assert tl.clock.now == 0.0

    def test_by_category(self):
        tl = Timeline()
        tl.record("a", "kernel", 1.0)
        tl.record("b", "kernel", 0.5)
        tl.record("c", "h2d", 0.25)
        cats = tl.by_category()
        assert cats["kernel"] == pytest.approx(1.5)
        assert cats["h2d"] == pytest.approx(0.25)

    def test_iteration_order_is_insertion(self):
        tl = Timeline()
        tl.record("first", "kernel", 0.1)
        tl.record("second", "kernel", 0.1)
        assert [e.name for e in tl] == ["first", "second"]
