"""Cost model properties: roofline behavior, monotonicity, sane magnitudes."""

import pytest

from repro.hw.costmodel import (
    CPUCostModel,
    GPUCostModel,
    TransferCostModel,
    roofline_time,
)
from repro.hw.spec import K20C, PCIE_X16_GEN2, XEON_E5_2690


class TestRoofline:
    def test_compute_bound(self):
        # many flops, few bytes -> compute leg dominates
        assert roofline_time(1e12, 1.0, 1e12, 1e11) == pytest.approx(1.0)

    def test_memory_bound(self):
        assert roofline_time(1.0, 1e11, 1e12, 1e11) == pytest.approx(1.0)

    def test_zero_work_is_free(self):
        assert roofline_time(0, 0, 1e12, 1e11) == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            roofline_time(-1, 0, 1e12, 1e11)


class TestGPUCostModel:
    @pytest.fixture
    def gpu(self):
        return GPUCostModel(K20C)

    def test_kernel_has_launch_overhead_floor(self, gpu):
        assert gpu.kernel_time(0, 0) == pytest.approx(K20C.kernel_launch_overhead_s)

    def test_unknown_kind_rejected(self, gpu):
        with pytest.raises(ValueError):
            gpu.kernel_time(1, 1, kind="magic")

    def test_gemm_time_scales_cubically(self, gpu):
        t1 = gpu.gemm_time(512, 512, 512)
        t2 = gpu.gemm_time(1024, 1024, 1024)
        assert t2 / t1 == pytest.approx(8.0, rel=0.2)

    def test_gemm_near_peak_for_large_sizes(self, gpu):
        n = 4096
        t = gpu.gemm_time(n, n, n)
        achieved = 2.0 * n**3 / t
        assert achieved >= 0.5 * K20C.peak_flops(8)

    def test_spmv_is_bandwidth_bound(self, gpu):
        # doubling nnz ~doubles time once out of the launch-overhead regime
        t1 = gpu.spmv_time(10**6, 10**7)
        t2 = gpu.spmv_time(10**6, 2 * 10**7)
        assert 1.7 < (t2 - K20C.kernel_launch_overhead_s) / (
            t1 - K20C.kernel_launch_overhead_s
        ) < 2.3

    def test_sp_faster_than_dp_gemm(self, gpu):
        assert gpu.gemm_time(1024, 1024, 1024, itemsize=4) < gpu.gemm_time(
            1024, 1024, 1024, itemsize=8
        )

    def test_sort_time_linear(self, gpu):
        t1 = gpu.sort_time(10**6)
        t2 = gpu.sort_time(2 * 10**6)
        assert t2 > t1

    def test_gather_slower_than_stream(self, gpu):
        bytes_ = 1e9
        assert gpu.kernel_time(0, bytes_, kind="gather") > gpu.kernel_time(
            0, bytes_, kind="stream"
        )


class TestCPUCostModel:
    @pytest.fixture
    def cpu(self):
        return CPUCostModel(XEON_E5_2690)

    def test_blas3_scales_with_threads(self, cpu):
        assert cpu.blas3_time(1e12, threads=1) == pytest.approx(
            8 * cpu.blas3_time(1e12, threads=8)
        )

    def test_blas3_thread_clamp(self, cpu):
        # more threads than cores gives core-count performance
        assert cpu.blas3_time(1e12, threads=64) == cpu.blas3_time(1e12, threads=8)

    def test_blas1_saturates_by_4_threads(self, cpu):
        assert cpu.blas1_time(1e9, threads=4) == pytest.approx(
            cpu.blas1_time(1e9, threads=8)
        )
        assert cpu.blas1_time(1e9, threads=1) > cpu.blas1_time(1e9, threads=4)

    def test_interp_loop_dominated_by_dispatch(self, cpu):
        # 4M iterations at ~55us each lands near the paper's 221s
        t = CPUCostModel(XEON_E5_2690).interp_loop_time(3_992_290)
        assert 150 < t < 300

    def test_interp_loop_body_work_adds(self, cpu):
        base = cpu.interp_loop_time(1000)
        with_work = cpu.interp_loop_time(1000, work_per_iter_flops=1e6)
        assert with_work > base

    def test_spmv_threads_help(self, cpu):
        assert cpu.spmv_time(10**5, 10**6, threads=4) < cpu.spmv_time(
            10**5, 10**6, threads=1
        )


class TestTransferCostModel:
    def test_h2d_d2h_symmetric(self):
        m = TransferCostModel(PCIE_X16_GEN2)
        assert m.h2d_time(10**6) == m.d2h_time(10**6)

    def test_paper_magnitude_per_iteration(self):
        # one eigensolver round trip on DTI: 2 x 142541 doubles ~ 0.8 ms,
        # consistent with Table VII's 2.25 s over thousands of iterations
        m = TransferCostModel(PCIE_X16_GEN2)
        per_iter = m.h2d_time(142541 * 8) + m.d2h_time(142541 * 8)
        assert 1e-4 < per_iter < 2e-3
