"""Hardware spec presets and derived quantities."""

import pytest

from repro.hw.spec import (
    K20C,
    PAPER_PLATFORM,
    PCIE_X16_GEN2,
    XEON_E5_2690,
    GPUSpec,
    PCIeSpec,
)


class TestK20C:
    def test_table1_sm_sp(self):
        assert K20C.sm_count == 13
        assert K20C.sp_per_sm == 192
        assert K20C.core_count == 2496

    def test_table1_memory(self):
        assert K20C.memory_bytes == 5 * 1024**3

    def test_compute_capability(self):
        assert K20C.compute_capability == (3, 5)

    def test_peak_flops_selects_precision(self):
        assert K20C.peak_flops(8) == pytest.approx(1170e9)
        assert K20C.peak_flops(4) == pytest.approx(3520e9)

    def test_bandwidth_in_bytes(self):
        assert K20C.mem_bandwidth_bytes_s == pytest.approx(208e9)


class TestXeon:
    def test_core_count(self):
        assert XEON_E5_2690.cores == 8

    def test_dram_is_128gb(self):
        assert XEON_E5_2690.dram_bytes == 128 * 1024**3

    def test_multithreaded_peak_exceeds_single(self):
        assert (
            XEON_E5_2690.peak_flops_dp
            == pytest.approx(8 * XEON_E5_2690.peak_flops_single_thread)
        )


class TestPCIe:
    def test_theoretical_peak_8gbs(self):
        assert PCIE_X16_GEN2.peak_gbs == 8.0

    def test_transfer_time_has_latency_floor(self):
        t1 = PCIE_X16_GEN2.transfer_time(1)
        assert t1 >= PCIE_X16_GEN2.latency_s

    def test_transfer_time_scales_linearly(self):
        big = PCIE_X16_GEN2.transfer_time(10**9)
        bigger = PCIE_X16_GEN2.transfer_time(2 * 10**9)
        # latency is negligible at GB scale
        assert bigger / big == pytest.approx(2.0, rel=1e-3)

    def test_zero_bytes_is_free(self):
        assert PCIE_X16_GEN2.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PCIE_X16_GEN2.transfer_time(-1)

    def test_effective_below_peak(self):
        assert PCIE_X16_GEN2.effective_bytes_s < PCIE_X16_GEN2.peak_gbs * 1e9


class TestPlatform:
    def test_paper_platform_composition(self):
        assert PAPER_PLATFORM.cpu is XEON_E5_2690
        assert PAPER_PLATFORM.gpu is K20C
        assert PAPER_PLATFORM.pcie is PCIE_X16_GEN2

    def test_with_gpu_replaces_fields(self):
        p2 = PAPER_PLATFORM.with_gpu(mem_bandwidth_gbs=416.0)
        assert p2.gpu.mem_bandwidth_gbs == 416.0
        assert PAPER_PLATFORM.gpu.mem_bandwidth_gbs == 208.0  # original intact

    def test_with_cpu_replaces_fields(self):
        p2 = PAPER_PLATFORM.with_cpu(cores=16)
        assert p2.cpu.cores == 16
        assert PAPER_PLATFORM.cpu.cores == 8

    def test_specs_are_frozen(self):
        with pytest.raises(AttributeError):
            K20C.sm_count = 99  # type: ignore[misc]
