"""NUMA/PCIe topology: per-pair link laws and topology-aware pricing."""

import pytest

from repro.hw.costmodel import TransferCostModel
from repro.hw.spec import PCIE_X16_GEN2
from repro.hw.topology import (
    BRIDGE_EFFICIENCY_FACTOR,
    BRIDGE_LATENCY_FACTOR,
    PCIeTopology,
    paper_topology,
)

KB = 1024


class TestPaperTopology:
    def test_two_devices_share_a_switch(self):
        topo = paper_topology(2)
        assert topo.n_devices == 2
        assert topo.is_direct(0, 1)
        assert topo.pair_table() == {(0, 1): "direct", (1, 0): "direct"}

    def test_four_devices_split_across_bridges(self):
        topo = paper_topology(4)
        assert topo.switch_of == (0, 0, 1, 1)
        assert topo.is_direct(0, 1) and topo.is_direct(2, 3)
        assert not topo.is_direct(1, 2)
        table = topo.pair_table()
        assert table[(0, 3)] == "bridged"
        assert sum(v == "bridged" for v in table.values()) == 8

    def test_two_device_pricing_matches_single_link(self):
        """At 2 devices all pairs are direct — flat (pre-topology) law."""
        topo = paper_topology(2)
        assert topo.p2p_time(64 * KB, 0, 1) == PCIE_X16_GEN2.transfer_time(
            64 * KB
        )

    def test_bridged_pair_is_strictly_slower(self):
        topo = paper_topology(4)
        direct = topo.p2p_time(1 * KB, 0, 1)
        bridged = topo.p2p_time(1 * KB, 0, 2)
        assert bridged > direct
        # both components degrade: latency floor and asymptotic bandwidth
        assert topo.bridged.latency_s == pytest.approx(
            topo.direct.latency_s * BRIDGE_LATENCY_FACTOR
        )
        assert topo.bridged.efficiency == pytest.approx(
            topo.direct.efficiency * BRIDGE_EFFICIENCY_FACTOR
        )

    def test_out_of_range_index_rejected(self):
        topo = paper_topology(2)
        with pytest.raises(ValueError):
            topo.is_direct(0, 2)

    def test_degenerate_counts_rejected(self):
        with pytest.raises(ValueError):
            paper_topology(0)
        with pytest.raises(ValueError):
            paper_topology(2, devices_per_switch=0)
        with pytest.raises(ValueError):
            PCIeTopology("empty", (), PCIE_X16_GEN2, PCIE_X16_GEN2)


class TestTransferCostModelTopology:
    def test_pair_aware_p2p_pricing(self):
        topo = paper_topology(4)
        cost = TransferCostModel(PCIE_X16_GEN2, topo)
        assert cost.p2p_time(4 * KB, src=0, dst=1) == topo.p2p_time(
            4 * KB, 0, 1
        )
        assert cost.p2p_time(4 * KB, src=0, dst=2) == topo.p2p_time(
            4 * KB, 0, 2
        )
        assert cost.p2p_time(4 * KB, src=0, dst=2) > cost.p2p_time(
            4 * KB, src=0, dst=1
        )

    def test_unknown_pair_falls_back_to_flat_law(self):
        cost = TransferCostModel(PCIE_X16_GEN2, paper_topology(4))
        assert cost.p2p_time(4 * KB) == PCIE_X16_GEN2.transfer_time(4 * KB)

    def test_no_topology_is_pre_topology_behavior(self):
        cost = TransferCostModel(PCIE_X16_GEN2)
        assert cost.p2p_time(4 * KB, src=0, dst=3) == PCIE_X16_GEN2.transfer_time(
            4 * KB
        )
