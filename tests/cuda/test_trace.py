"""Chrome trace export."""

import json

import numpy as np
import pytest

from repro.cuda.trace import (
    export_chrome_trace,
    schedule_to_trace_events,
    timeline_to_trace_events,
)


class TestTraceExport:
    def test_events_carry_microsecond_times(self, device, rng):
        device.to_device(rng.random(1000))
        device.charge_kernel("k1", 1e6, 1e6)
        events = timeline_to_trace_events(device.timeline)
        dur = [e for e in events if e["ph"] == "X"]
        assert len(dur) == 3  # cudaMalloc + H2D + kernel
        assert dur[0]["ts"] == pytest.approx(0.0)
        assert dur[1]["ts"] == pytest.approx(dur[0]["dur"])
        assert dur[2]["ts"] == pytest.approx(dur[0]["dur"] + dur[1]["dur"])

    def test_tracks_separate_categories(self, device, rng):
        d = device.to_device(rng.random(10))
        device.charge_kernel("k", 1, 1)
        device.charge_cpu("host", 0.1)
        d.copy_to_host()
        events = timeline_to_trace_events(device.timeline)
        tids = {e["args"]["category"]: e["tid"] for e in events if e["ph"] == "X"}
        assert len(set(tids.values())) == 5  # h2d, kernel, cpu, d2h, overhead

    def test_stage_tags_exported(self, device):
        with device.stage("kmeans"):
            device.charge_kernel("k", 1, 1)
        events = timeline_to_trace_events(device.timeline)
        dur = [e for e in events if e["ph"] == "X"]
        assert dur[0]["cat"] == "kmeans"

    def test_file_round_trip(self, device, tmp_path, rng):
        device.to_device(rng.random(100))
        device.charge_kernel("k", 1e3, 1e3)
        path = tmp_path / "trace.json"
        n = export_chrome_trace(device.timeline, path)
        assert n == 3  # cudaMalloc + H2D + kernel
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded
        names = {e["name"] for e in loaded["traceEvents"]}
        assert "k" in names

    def test_export_is_valid_json_with_expected_tracks(self, device, rng, tmp_path):
        """The file parses as JSON and names every expected track."""
        d = device.to_device(rng.random(50))
        device.charge_kernel("k", 1, 1)
        device.charge_cpu("host", 0.1)
        d.copy_to_host()
        path = tmp_path / "trace.json"
        export_chrome_trace(device.timeline, path)
        loaded = json.loads(path.read_text())
        track_names = {
            e["args"]["name"] for e in loaded["traceEvents"] if e["ph"] == "M"
        }
        assert {"GPU compute", "CPU (host phases)", "PCIe H2D",
                "PCIe D2H", "overhead"} <= track_names

    def test_timestamps_nonnegative_and_monotone(self, device, rng):
        """Serial timeline: ts >= 0 and non-decreasing in emission order."""
        for i in range(5):
            device.to_device(rng.random(10 * (i + 1)))
            device.charge_kernel(f"k{i}", 1e3, 1e3)
        dur = [e for e in timeline_to_trace_events(device.timeline)
               if e["ph"] == "X"]
        ts = [e["ts"] for e in dur]
        assert all(t >= 0 for t in ts)
        assert ts == sorted(ts)
        assert all(e["dur"] >= 0 for e in dur)

    def test_schedule_export_one_track_per_lane(self, tmp_path):
        from repro.hw.timeline import Timeline

        tl = Timeline()
        tl.record_at("a", "kernel", 0.0, 1.0, tag="dev0/s0")
        tl.record_at("b", "kernel", 0.0, 1.0, tag="dev0/s1")
        tl.record_at("c", "kernel", 1.0, 0.5, tag="dev0/s0")
        events = schedule_to_trace_events(tl)
        meta = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert meta == {"dev0/s0", "dev0/s1"}
        dur = [e for e in events if e["ph"] == "X"]
        assert len(dur) == 3
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in dur)
        # lanes separate overlapping events onto distinct tids
        tids = {e["tid"] for e in dur if e["ts"] == 0.0}
        assert len(tids) == 2
        path = tmp_path / "sched.json"
        n = export_chrome_trace(tl, path, tracks="lane")
        assert n == 3
        json.loads(path.read_text())

    def test_unknown_tracks_mode_rejected(self, device, tmp_path):
        with pytest.raises(ValueError):
            export_chrome_trace(device.timeline, tmp_path / "x.json",
                                tracks="bogus")

    def test_scheduler_timeline_exports(self, tmp_path):
        """The serving scheduler's schedule round-trips through export."""
        from repro.serve.scheduler import StreamScheduler

        sched = StreamScheduler(n_devices=1, streams_per_device=2)
        sched.run("u1", 0.0, lambda dev: dev.charge_cpu("w", 0.5))
        sched.run("u2", 0.0, lambda dev: dev.charge_cpu("w", 0.5))
        path = tmp_path / "serve.json"
        n = export_chrome_trace(sched.schedule, path, tracks="lane")
        assert n == 2
        loaded = json.loads(path.read_text())
        lanes = {e["args"]["lane"] for e in loaded["traceEvents"]
                 if e["ph"] == "X"}
        assert lanes == {"dev0/s0", "dev0/s1"}

    def test_pipeline_trace_is_complete(self, sbm_graph, tmp_path):
        from repro.core.pipeline import SpectralClustering
        from repro.cuda.device import Device

        W, _ = sbm_graph
        dev = Device()
        SpectralClustering(n_clusters=6, seed=0, device=dev).fit(graph=W)
        path = tmp_path / "pipeline.json"
        n = export_chrome_trace(dev.timeline, path)
        assert n == len(dev.timeline)
        loaded = json.loads(path.read_text())
        stages = {e["args"].get("stage") for e in loaded["traceEvents"]
                  if e["ph"] == "X"}
        assert {"similarity", "laplacian", "eigensolver", "kmeans"} <= stages


class TestP2PTrack:
    """Peer-to-peer halo traffic lands on its own named track and visibly
    overlaps the local SpMV kernels."""

    def _partitioned_spmv(self, rng):
        from repro.cuda.device import Device
        from repro.cusparse.matrices import csr_to_device
        from repro.cusparse.partition import partition_csr, spmv_partitioned
        from repro.sparse.construct import random_sparse

        primary = Device()
        peer = Device(primary.spec, primary.pcie, timeline=primary.timeline)
        host = random_sparse(300, 300, 0.05, rng=rng).to_csr()
        P = partition_csr(csr_to_device(primary, host), [primary, peer])
        spmv_partitioned(P, rng.standard_normal(300))
        return primary.timeline

    def test_p2p_events_on_dedicated_track(self, rng):
        tl = self._partitioned_spmv(rng)
        events = timeline_to_trace_events(tl)
        p2p = [
            e for e in events
            if e["ph"] == "X" and e["args"]["category"] == "p2p"
        ]
        assert p2p
        tids = {e["tid"] for e in p2p}
        assert len(tids) == 1
        tid = tids.pop()
        labels = [
            e for e in events
            if e["ph"] == "M" and e.get("args", {}).get("name") == "P2P halo"
        ]
        assert labels and labels[0]["tid"] == tid

    def test_trace_shows_local_halo_overlap(self, rng):
        """In the exported trace, at least one peer copy's [ts, ts+dur)
        intersects a local kernel's — the copy engine is not serialized
        behind compute."""
        tl = self._partitioned_spmv(rng)
        events = [
            e for e in timeline_to_trace_events(tl) if e["ph"] == "X"
        ]
        kernels = [e for e in events if "csrmv[local" in e["name"]]
        copies = [e for e in events if e["args"]["category"] == "p2p"]
        assert kernels and copies
        assert any(
            k["ts"] < c["ts"] + c["dur"] and c["ts"] < k["ts"] + k["dur"]
            for k in kernels
            for c in copies
        )
