"""Chrome trace export."""

import json

import numpy as np
import pytest

from repro.cuda.trace import export_chrome_trace, timeline_to_trace_events


class TestTraceExport:
    def test_events_carry_microsecond_times(self, device, rng):
        device.to_device(rng.random(1000))
        device.charge_kernel("k1", 1e6, 1e6)
        events = timeline_to_trace_events(device.timeline)
        dur = [e for e in events if e["ph"] == "X"]
        assert len(dur) == 2
        assert dur[0]["ts"] == pytest.approx(0.0)
        assert dur[1]["ts"] == pytest.approx(dur[0]["dur"])

    def test_tracks_separate_categories(self, device, rng):
        d = device.to_device(rng.random(10))
        device.charge_kernel("k", 1, 1)
        device.charge_cpu("host", 0.1)
        d.copy_to_host()
        events = timeline_to_trace_events(device.timeline)
        tids = {e["args"]["category"]: e["tid"] for e in events if e["ph"] == "X"}
        assert len(set(tids.values())) == 4  # h2d, kernel, cpu, d2h

    def test_stage_tags_exported(self, device):
        with device.stage("kmeans"):
            device.charge_kernel("k", 1, 1)
        events = timeline_to_trace_events(device.timeline)
        dur = [e for e in events if e["ph"] == "X"]
        assert dur[0]["cat"] == "kmeans"

    def test_file_round_trip(self, device, tmp_path, rng):
        device.to_device(rng.random(100))
        device.charge_kernel("k", 1e3, 1e3)
        path = tmp_path / "trace.json"
        n = export_chrome_trace(device.timeline, path)
        assert n == 2
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded
        names = {e["name"] for e in loaded["traceEvents"]}
        assert "k" in names

    def test_pipeline_trace_is_complete(self, sbm_graph, tmp_path):
        from repro.core.pipeline import SpectralClustering
        from repro.cuda.device import Device

        W, _ = sbm_graph
        dev = Device()
        SpectralClustering(n_clusters=6, seed=0, device=dev).fit(graph=W)
        path = tmp_path / "pipeline.json"
        n = export_chrome_trace(dev.timeline, path)
        assert n == len(dev.timeline)
        loaded = json.loads(path.read_text())
        stages = {e["args"].get("stage") for e in loaded["traceEvents"]
                  if e["ph"] == "X"}
        assert {"similarity", "laplacian", "eigensolver", "kmeans"} <= stages
