"""Caching device allocator: bucketing, reuse, flush-and-retry, stats."""

import numpy as np
import pytest

from repro import SpectralClustering
from repro.chaos import FaultPlan, FaultSpec
from repro.chaos.runtime import chaos
from repro.core.workflow import hybrid_eigensolver
from repro.cuda.allocator import (
    CachingAllocator,
    LARGE_BLOCK_THRESHOLD,
    MIN_BUCKET_BYTES,
    bucket_bytes,
)
from repro.cuda.device import Device
from repro.cuda.profiler import Profiler
from repro.cusparse.matrices import coo_to_device
from repro.errors import DeviceMemoryError
from repro.graph.laplacian import device_sym_normalize


class TestBucketing:
    def test_rounds_to_512_multiples(self):
        assert bucket_bytes(0) == 0
        assert bucket_bytes(1) == MIN_BUCKET_BYTES
        assert bucket_bytes(MIN_BUCKET_BYTES) == MIN_BUCKET_BYTES
        assert bucket_bytes(MIN_BUCKET_BYTES + 1) == 2 * MIN_BUCKET_BYTES
        assert bucket_bytes(8000) == 8192

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bucket_bytes(-1)

    def test_fragmentation_bounded_per_block(self):
        """512 B classes waste < 512 B per block, unlike power-of-two."""
        for req in (513, 1000, 77777, 1 << 20):
            assert 0 <= bucket_bytes(req) - req < MIN_BUCKET_BYTES


class TestReuse:
    def test_free_then_alloc_same_class_is_hit(self):
        a = CachingAllocator(1 << 20)
        a.allocate(1000)
        a.release(1000)
        reserved = a.reserved_bytes
        out = a.allocate(900)  # same 1024 B class
        assert out.hit
        assert a.reserved_bytes == reserved  # no new reservation
        assert a.n_hits == 1 and a.n_misses == 1

    def test_different_class_is_miss(self):
        a = CachingAllocator(1 << 20)
        a.allocate(512)
        a.release(512)
        out = a.allocate(5000)
        assert not out.hit
        assert a.cached_blocks == 1  # the 512 B block is still parked

    def test_release_parks_instead_of_shrinking(self):
        a = CachingAllocator(1 << 20)
        a.allocate(4096)
        a.release(4096)
        assert a.used_bytes == 0
        assert a.reserved_bytes == 4096
        assert a.cached_bytes == 4096

    def test_used_vs_reserved_gap_is_fragmentation(self):
        a = CachingAllocator(1 << 20)
        a.allocate(100)
        assert a.used_bytes == 100
        assert a.reserved_bytes == MIN_BUCKET_BYTES
        s = a.stats()
        assert s["bytes_in_use"] == 100
        assert s["bytes_reserved"] == MIN_BUCKET_BYTES

    def test_free_bytes_counts_parked_blocks(self):
        a = CachingAllocator(10 * MIN_BUCKET_BYTES)
        a.allocate(MIN_BUCKET_BYTES)
        assert a.free_bytes == 9 * MIN_BUCKET_BYTES
        a.release(MIN_BUCKET_BYTES)
        # parked blocks are reclaimable via flush-and-retry
        assert a.free_bytes == 10 * MIN_BUCKET_BYTES


class TestLargeBlocks:
    def test_large_block_never_cached(self):
        a = CachingAllocator(1 << 30, large_threshold=1 << 20)
        big = (1 << 20) + 1
        a.allocate(big)
        real_free = a.release(big)
        assert real_free  # eager cudaFree
        assert a.cached_blocks == 0
        assert a.reserved_bytes == 0
        assert a.n_segment_frees == 1

    def test_default_threshold_is_256mb(self):
        assert LARGE_BLOCK_THRESHOLD == 256 * 1024 * 1024


class TestFlushAndRetry:
    def test_flush_reclaims_parked_blocks(self):
        a = CachingAllocator(4 * MIN_BUCKET_BYTES)
        for _ in range(4):
            a.allocate(MIN_BUCKET_BYTES)
        for _ in range(4):
            a.release(MIN_BUCKET_BYTES)
        # capacity fully parked in 512 B blocks; a 2048 B request must
        # flush them back to the driver before it can reserve
        out = a.allocate(4 * MIN_BUCKET_BYTES)
        assert not out.hit
        assert out.flushed_segments == 4
        assert a.n_flushes == 1
        assert a.n_segment_frees == 4

    def test_oom_when_flush_is_not_enough(self):
        a = CachingAllocator(2 * MIN_BUCKET_BYTES)
        a.allocate(MIN_BUCKET_BYTES)
        with pytest.raises(DeviceMemoryError):
            a.allocate(4 * MIN_BUCKET_BYTES)

    def test_empty_cache_returns_segment_count(self):
        a = CachingAllocator(1 << 20)
        for nb in (100, 100, 5000):
            a.allocate(nb)
        for nb in (100, 100, 5000):
            a.release(nb)
        assert a.empty_cache() == 3
        assert a.cached_bytes == 0
        assert a.reserved_bytes == 0


class TestDeviceIntegration:
    def test_hit_skips_cudamalloc_latency(self, device):
        buf = device.empty(1000)
        buf.free()
        n_overhead = device.timeline.count("overhead")
        device.empty(1000)  # free-list hit
        assert device.timeline.count("overhead") == n_overhead

    def test_miss_charges_cudamalloc_latency(self, device):
        n_overhead = device.timeline.count("overhead")
        device.empty(1000)
        assert device.timeline.count("overhead") == n_overhead + 1

    def test_noncaching_device_charges_every_call(self):
        dev = Device(caching=False)
        buf = dev.empty(1000)
        buf.free()
        before = dev.timeline.count("overhead")
        dev.empty(1000)
        assert dev.timeline.count("overhead") == before + 1
        assert dev.alloc_stats()["caching"] is False


class TestLanczosHitRate:
    def test_warm_loop_hit_rate_above_80pct(self, device, sbm_graph):
        """After warm-up, the RCI loop's staging buffers all cycle through
        the free lists — the acceptance threshold from the tuning issue."""
        W, _ = sbm_graph
        dcoo = coo_to_device(device, W.sorted_by_row())
        dcsr = device_sym_normalize(dcoo)
        hybrid_eigensolver(device, dcsr, k=6, tol=1e-8, seed=0)  # warm-up
        prof = Profiler(device)
        prof.start()
        hybrid_eigensolver(device, dcsr, k=6, tol=1e-8, seed=0)
        report = prof.stop()
        assert report.allocator["hit_rate"] > 0.8
        assert report.allocator["hits"] > 0


class TestPipelineParity:
    def test_bit_identical_with_and_without_caching(self, sbm_graph):
        """The allocator changes when memory is reserved, never a float."""
        W, _ = sbm_graph
        res_cached = SpectralClustering(
            n_clusters=6, seed=0, device=Device(caching=True)
        ).fit(graph=W)
        res_plain = SpectralClustering(
            n_clusters=6, seed=0, device=Device(caching=False)
        ).fit(graph=W)
        assert np.array_equal(res_cached.labels, res_plain.labels)
        assert np.array_equal(res_cached.embedding, res_plain.embedding)


class TestChaosInteraction:
    def test_injected_oom_not_masked_by_cache_hit(self, device):
        """Fault sites run before the free list is consulted, so a request
        that would be served from cache still surfaces an injected OOM."""
        buf = device.empty(1000)
        buf.free()
        plan = FaultPlan([FaultSpec(site="cuda.alloc", fault="oom", nth=1)])
        with chaos(plan):
            with pytest.raises(DeviceMemoryError):
                device.empty(1000)  # would have been a hit
        # and the parked block is still there for the next caller
        assert device.allocator.cached_blocks == 1


class TestSplitAndCoalesce:
    """Best-fit block splitting: small requests carve cached larger blocks
    instead of paying cudaMalloc, and the halves merge back on release."""

    def test_split_serves_small_request_from_larger_block(self):
        a = CachingAllocator(1 << 20)
        a.allocate(2048)
        a.release(2048)  # one 2048 B block parked
        reserved = a.reserved_bytes
        out = a.allocate(512)
        assert out.hit and out.split
        assert a.n_splits == 1
        # the 1536 B remainder parks on its own bucket; no new segment
        assert a.parked_blocks(1536) == 1
        assert a.reserved_bytes == reserved

    def test_split_picks_smallest_sufficient_parent(self):
        a = CachingAllocator(1 << 20)
        a.allocate(4096)
        a.allocate(1024)
        a.release(4096)
        a.release(1024)
        a.allocate(512)
        # best fit carves the 1024 B block, not the 4096 B one
        assert a.parked_blocks(4096) == 1
        assert a.parked_blocks(512) == 1

    def test_exact_hit_preferred_over_split(self):
        a = CachingAllocator(1 << 20)
        for size in (512, 2048):
            a.allocate(size)
            a.release(size)
        out = a.allocate(512)
        assert out.hit and not out.split
        assert a.n_splits == 0
        assert a.parked_blocks(2048) == 1

    def test_parent_must_be_strictly_larger(self):
        a = CachingAllocator(1 << 20)
        a.allocate(512)
        a.release(512)
        out = a.allocate(1024)  # the parked 512 B block cannot serve this
        assert not out.hit
        assert a.n_splits == 0

    def test_large_blocks_never_split(self):
        a = CachingAllocator(1 << 30)
        big = LARGE_BLOCK_THRESHOLD * 2
        a.allocate(big)
        a.release(big)  # bypasses the cache entirely
        out = a.allocate(512)
        assert not out.hit

    def test_release_coalesces_child_with_parked_remainder(self):
        a = CachingAllocator(1 << 20)
        a.allocate(2048)
        a.release(2048)
        a.allocate(512)  # split: 512 out, 1536 parked
        a.release(512)  # child + remainder merge back into 2048
        assert a.n_coalesces == 1
        assert a.parked_blocks(2048) == 1
        assert a.parked_blocks(1536) == 0
        assert a.parked_blocks(512) == 0

    def test_no_coalesce_when_remainder_consumed(self):
        a = CachingAllocator(1 << 20)
        a.allocate(2048)
        a.release(2048)
        a.allocate(512)  # split: remainder 1536 parked
        out = a.allocate(1536)  # exact hit consumes the remainder
        assert out.hit and not out.split
        a.release(512)  # nothing to merge with: parks as a plain block
        assert a.n_coalesces == 0
        assert a.parked_blocks(512) == 1

    def test_reserved_bytes_invariant_through_split_cycle(self):
        a = CachingAllocator(1 << 20)
        a.allocate(4096)
        a.release(4096)
        reserved = a.reserved_bytes
        a.allocate(1024)
        a.allocate(1024)
        a.release(1024)
        a.release(1024)
        assert a.reserved_bytes == reserved
        assert a.cached_bytes == reserved

    def test_flush_clears_split_bookkeeping(self):
        a = CachingAllocator(1 << 20)
        a.allocate(2048)
        a.release(2048)
        a.allocate(512)
        a.empty_cache()  # remainder went back to the driver
        a.release(512)  # must NOT merge with a flushed remainder
        assert a.n_coalesces == 0
        assert a._split_pairs == {}

    def test_stats_expose_split_counters(self):
        a = CachingAllocator(1 << 20)
        s = a.stats()
        assert s["splits"] == 0
        assert s["coalesces"] == 0
        a.allocate(2048)
        a.release(2048)
        a.allocate(512)
        a.release(512)
        s = a.stats()
        assert s["splits"] == 1
        assert s["coalesces"] == 1

    def test_device_split_avoids_cudamalloc_latency(self):
        """On a device, a split hit skips the cudaMalloc overhead charge."""
        dev = Device()
        buf = dev.empty(256, dtype=np.float64)  # 2048 B
        buf.free()
        t0 = dev.elapsed
        small = dev.empty(64, dtype=np.float64)  # 512 B, served by split
        assert dev.elapsed == t0  # no cudaMalloc event charged
        assert dev.allocator.n_splits == 1
        small.free()
        assert dev.allocator.n_coalesces == 1

    def test_profiler_reports_split_deltas(self):
        dev = Device()
        warm = dev.empty(256, dtype=np.float64)
        warm.free()
        prof = Profiler(dev)
        prof.start()
        dev.empty(64, dtype=np.float64).free()
        rep = prof.stop()
        assert rep.allocator["splits"] == 1
        assert rep.allocator["coalesces"] == 1


class TestStreamAwareReuse:
    """Per-stream free lists with event-based cross-stream reuse — the
    PyTorch block-pool rule, driven directly at the allocator level."""

    def test_same_stream_hit_is_immediate(self):
        a = CachingAllocator(1 << 20)
        a.allocate(1000, stream=3)
        # freeing stream still has queued work (event completes at t=5)
        a.release(1000, stream=3, ready=5.0)
        out = a.allocate(1000, stream=3, now=0.0)
        # FIFO on the freeing stream makes the reuse safe *now*
        assert out.hit and out.same_stream and not out.event_gated
        assert a.n_same_stream_hits == 1
        assert a.n_event_gated_hits == 0

    def test_cross_stream_reuse_blocked_before_event(self):
        a = CachingAllocator(1 << 20)
        a.allocate(1000, stream=1)
        a.release(1000, stream=1, ready=2.0)
        reserved = a.reserved_bytes
        out = a.allocate(1000, stream=2, now=1.0)  # event not complete
        assert not out.hit
        assert a.n_blocked_reuses == 1
        assert a.reserved_bytes == reserved + bucket_bytes(1000)

    def test_cross_stream_reuse_after_event_completes(self):
        a = CachingAllocator(1 << 20)
        a.allocate(1000, stream=1)
        a.release(1000, stream=1, ready=2.0)
        out = a.allocate(1000, stream=2, now=2.0)
        assert out.hit and out.event_gated and not out.same_stream
        assert a.n_event_gated_hits == 1
        assert a.n_blocked_reuses == 0

    def test_same_stream_block_preferred_over_event_gated(self):
        a = CachingAllocator(1 << 20)
        a.allocate(1000, stream=1)
        a.allocate(1000, stream=2)
        a.release(1000, stream=1, ready=0.0)  # other stream, event done
        a.release(1000, stream=2, ready=9.0)  # ours, event pending
        out = a.allocate(1000, stream=2, now=0.0)
        assert out.hit and out.same_stream  # no reason to cross streams

    def test_split_respects_cross_stream_gating(self):
        a = CachingAllocator(1 << 20)
        a.allocate(2048, stream=1)
        a.release(2048, stream=1, ready=7.0)
        out = a.allocate(512, stream=2, now=0.0)  # parent not usable yet
        assert not out.hit
        assert a.n_splits == 0
        out = a.allocate(512, stream=2, now=7.0)  # event done: split works
        assert out.hit and out.split

    def test_coalesced_block_gated_by_latest_event(self):
        a = CachingAllocator(1 << 20)
        a.allocate(2048, stream=1)
        a.release(2048, stream=1, ready=4.0)
        a.allocate(512, stream=1, now=4.0)  # split off the parked block
        a.release(512, stream=2, ready=9.0)  # child freed on another stream
        assert a.n_coalesces == 1
        out = a.allocate(2048, stream=3, now=5.0)
        assert not out.hit  # merged block waits for the *latest* half
        a.release(2048, stream=3, ready=5.0)
        out = a.allocate(2048, stream=3, now=9.0)
        assert out.hit

    def test_flush_reclaims_blocks_regardless_of_pending_events(self):
        """cudaFree synchronizes the device, so a capacity flush takes
        back even blocks whose free events are still pending — and the
        reserved-bytes invariant holds through it."""
        a = CachingAllocator(4 * MIN_BUCKET_BYTES)
        for _ in range(4):
            a.allocate(MIN_BUCKET_BYTES, stream=1)
        for _ in range(4):
            a.release(MIN_BUCKET_BYTES, stream=1, ready=100.0)
        assert a.reserved_bytes == 4 * MIN_BUCKET_BYTES
        out = a.allocate(4 * MIN_BUCKET_BYTES, stream=2, now=0.0)
        assert not out.hit and out.flushed_segments == 4
        assert a.reserved_bytes == 4 * MIN_BUCKET_BYTES
        assert a.cached_bytes == 0
        assert a.used_bytes == 4 * MIN_BUCKET_BYTES

    def test_default_stream_path_unchanged(self):
        """Single-stream (default-stream) traffic never hits the gate:
        byte-for-byte the pre-stream-aware behavior."""
        a = CachingAllocator(1 << 20)
        a.allocate(1000)
        a.release(1000)
        out = a.allocate(900)
        assert out.hit and out.same_stream
        assert a.n_blocked_reuses == 0

    def test_stats_expose_stream_counters(self):
        a = CachingAllocator(1 << 20)
        s = a.stats()
        for key in ("same_stream_hits", "event_gated_hits", "blocked_reuses"):
            assert s[key] == 0
        a.allocate(1000, stream=1)
        a.release(1000, stream=1, ready=3.0)
        a.allocate(1000, stream=2, now=1.0)   # blocked -> miss
        a.allocate(1000, stream=1, now=1.0)   # same-stream hit
        s = a.stats()
        assert s["same_stream_hits"] == 1
        assert s["blocked_reuses"] == 1


class TestScratchCounters:
    """Thrust scratch rides the free lists but keeps its own counters."""

    def test_scratch_not_counted_as_array_traffic(self):
        a = CachingAllocator(1 << 20)
        out = a.allocate_scratch(4096)
        assert not out.hit
        assert a.n_scratch_requests == 1
        assert a.n_misses == 0 and a.alloc_count == 0
        a.release_scratch(4096)
        out = a.allocate_scratch(4096)
        assert out.hit
        assert a.n_scratch_hits == 1 and a.n_hits == 0
        assert a.scratch_bytes_served == 2 * 4096

    def test_scratch_shares_free_lists_with_arrays(self):
        a = CachingAllocator(1 << 20)
        a.allocate(4096)
        a.release(4096)
        out = a.allocate_scratch(4096)
        assert out.hit  # a freed array block serves thrust scratch
        a.release_scratch(4096)
        out = a.allocate(4096)
        assert out.hit  # and scratch blocks serve arrays again

    def test_device_scratch_charges_malloc_only_on_miss(self):
        dev = Device()
        with dev.scratch(4096):
            pass  # cold: one cudaMalloc charged
        t0 = dev.elapsed
        with dev.scratch(4096):
            pass  # warm: free-list hit, no overhead event
        assert dev.elapsed == t0
        assert dev.allocator.n_scratch_hits == 1

    def test_device_scratch_releases_on_error(self):
        dev = Device()
        used0 = dev.allocator.used_bytes
        with pytest.raises(RuntimeError):
            with dev.scratch(4096):
                raise RuntimeError("kernel failed")
        assert dev.allocator.used_bytes == used0

    def test_noncaching_scratch_is_malloc_free_roundtrip(self):
        dev = Device(caching=False)
        before = dev.timeline.count("overhead")
        with dev.scratch(4096):
            pass
        assert dev.timeline.count("overhead") == before + 2  # malloc + free


class TestStreamScope:
    """Device.stream_scope tags allocations with a stream's id and stamps
    frees with the stream's horizon as the free-event time."""

    def test_scope_blocks_cross_stream_reuse_until_horizon(self):
        from repro.cuda.stream import Stream

        dev = Device()
        s1 = Stream(dev, name="copy1")
        s2 = Stream(dev, name="copy2")
        assert s1.stream_id != s2.stream_id != 0
        s1.free_at = dev.elapsed + 1.0  # stream has in-flight work
        with dev.stream_scope(s1):
            buf = dev.empty(1000)
            buf.free()  # free event completes at s1.free_at
        with dev.stream_scope(s2):
            dev.empty(1000)  # device clock < s1.free_at: must miss
        assert dev.allocator.n_blocked_reuses == 1

    def test_default_scope_reuse_is_same_stream(self, device):
        buf = device.empty(1000)
        buf.free()
        device.empty(1000)
        assert device.allocator.n_same_stream_hits == 1
        assert device.allocator.n_blocked_reuses == 0


class TestPinnedHostPool:
    def test_pool_grows_to_high_water_then_reuses(self):
        from repro.cuda.allocator import PinnedHostPool

        pool = PinnedHostPool()
        assert pool.stage(1000)       # first leg registers
        assert not pool.stage(800)    # smaller leg reuses
        assert pool.stage(2000)       # growth re-registers
        assert not pool.stage(2000)
        assert pool.pool_bytes == 2000
        assert pool.n_registrations == 2
        assert pool.n_stages == 4
        assert pool.n_reuses == 2
        assert pool.staged_bytes == 5800

    def test_device_transfers_stage_through_pool(self, device):
        host = np.zeros(100)
        buf = device.to_device(host)
        buf.copy_to_host()
        stats = device.transfer_stats()
        assert stats["pinned_stages"] == 2
        assert stats["pinned_pool_bytes"] == host.nbytes
        assert stats["pinned_staged_bytes"] == 2 * host.nbytes
