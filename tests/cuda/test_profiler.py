"""Profiler aggregation: the Table VII communication/computation split."""

import numpy as np
import pytest

from repro.cuda.profiler import Profiler


class TestProfiler:
    def test_start_stop_scopes_events(self, device, rng):
        prof = Profiler(device)
        device.charge_kernel("before", 1, 1)  # outside the window
        prof.start()
        device.to_device(rng.random(100))
        device.charge_kernel("inside", 1e6, 1e6)
        rep = prof.stop()
        assert rep.kernel_launches == 1
        assert rep.communication > 0

    def test_stop_without_start_raises(self, device):
        with pytest.raises(RuntimeError):
            Profiler(device).stop()

    def test_split_matches_timeline(self, device, rng):
        prof = Profiler(device)
        prof.start()
        d = device.to_device(rng.random(1000))
        device.charge_kernel("k", 1e6, 1e6)
        device.charge_cpu("host", 0.25)
        d.copy_to_host()
        rep = prof.stop()
        assert rep.communication == pytest.approx(
            device.timeline.communication_time()
        )
        assert rep.computation == pytest.approx(device.timeline.computation_time())
        assert rep.total == pytest.approx(rep.communication + rep.computation)

    def test_fraction(self, device, rng):
        host = rng.random(10)
        device.to_device(host).free()  # warm the allocator cache
        prof = Profiler(device)
        prof.start()
        device.to_device(host)  # cache hit: the H2D copy is the only event
        rep = prof.stop()
        assert rep.communication_fraction() == pytest.approx(1.0)

    def test_fraction_empty_report(self, device):
        prof = Profiler(device)
        prof.start()
        rep = prof.stop()
        assert rep.communication_fraction() == 0.0

    def test_by_stage_aggregation(self, device):
        prof = Profiler(device)
        prof.start()
        with device.stage("kmeans"):
            device.charge_kernel("k", 1e6, 1e6)
        rep = prof.stop()
        assert "kmeans" in rep.by_stage

    def test_snapshot_sees_all(self, device):
        device.charge_kernel("k", 1, 1)
        rep = Profiler(device).snapshot()
        assert rep.kernel_launches == 1

    def test_format_table_mentions_totals(self, device):
        device.charge_kernel("k", 1e6, 1e6)
        text = Profiler(device).snapshot().format_table()
        assert "comm" in text and "compute" in text

    def test_snapshot_ignores_start_window(self, device):
        """snapshot() always covers the whole timeline, even mid-window."""
        device.charge_kernel("before", 1, 1)
        prof = Profiler(device)
        prof.start()
        device.charge_kernel("inside", 1, 1)
        assert prof.snapshot().kernel_launches == 2
        assert prof.stop().kernel_launches == 1

    def test_stop_consumes_window(self, device):
        prof = Profiler(device)
        prof.start()
        prof.stop()
        with pytest.raises(RuntimeError):
            prof.stop()

    def test_stop_aggregates_by_category_and_stage(self, device, rng):
        prof = Profiler(device)
        prof.start()
        with device.stage("similarity"):
            device.to_device(rng.random(100))
        with device.stage("kmeans"):
            device.charge_kernel("k", 1e6, 1e6)
        rep = prof.stop()
        assert set(rep.by_stage) == {"similarity", "kmeans"}
        assert rep.by_category.get("h2d", 0.0) > 0
        assert rep.by_category.get("kernel", 0.0) > 0
        assert sum(rep.by_category.values()) == pytest.approx(rep.total)

    def test_per_kernel_breakdown(self, device):
        prof = Profiler(device)
        prof.start()
        device.charge_kernel("fused_assign", 1e6, 1e6)
        device.charge_kernel("fused_assign", 1e6, 1e6)
        device.charge_kernel("cusparseDcsrmm", 2e6, 2e6)
        rep = prof.stop()
        assert rep.kernels["fused_assign"]["count"] == 2
        assert rep.kernels["cusparseDcsrmm"]["count"] == 1
        assert rep.kernels["fused_assign"]["seconds"] > 0
        assert sum(s["seconds"] for s in rep.kernels.values()) == pytest.approx(
            rep.by_category["kernel"]
        )
        assert sum(s["count"] for s in rep.kernels.values()) == rep.kernel_launches


class TestMergeReports:
    def test_merge_sums_all_axes(self, device, rng):
        from repro.cuda.device import Device
        from repro.cuda.profiler import merge_reports

        other = Device()
        for dev in (device, other):
            dev.to_device(rng.random(500))
            with dev.stage("kmeans"):
                dev.charge_kernel("k", 1e6, 1e6)
        reps = [Profiler(device).snapshot(), Profiler(other).snapshot()]
        merged = merge_reports(reps)
        assert merged.communication == pytest.approx(
            sum(r.communication for r in reps)
        )
        assert merged.computation == pytest.approx(
            sum(r.computation for r in reps)
        )
        assert merged.kernel_launches == 2
        assert merged.by_stage["kmeans"] == pytest.approx(
            sum(r.by_stage["kmeans"] for r in reps)
        )
        assert merged.kernels["k"]["count"] == 2
        assert merged.kernels["k"]["seconds"] == pytest.approx(
            sum(r.kernels["k"]["seconds"] for r in reps)
        )

    def test_merge_empty_iterable(self):
        from repro.cuda.profiler import merge_reports

        merged = merge_reports([])
        assert merged.total == 0.0
        assert merged.kernel_launches == 0
