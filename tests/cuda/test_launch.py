"""Occupancy model sanity."""

import pytest

from repro.cuda.launch import occupancy
from repro.errors import InvalidKernelLaunch
from repro.hw.spec import K20C


class TestOccupancy:
    def test_full_occupancy_at_256_threads(self):
        assert occupancy(K20C, 256) == pytest.approx(1.0)

    def test_small_blocks_limited_by_block_cap(self):
        # 32-thread blocks: 16 resident blocks x 1 warp = 16/64 warps
        assert occupancy(K20C, 32) == pytest.approx(0.25)

    def test_register_pressure_reduces_occupancy(self):
        light = occupancy(K20C, 256, registers_per_thread=32)
        heavy = occupancy(K20C, 256, registers_per_thread=128)
        assert heavy < light

    def test_bounded_by_one(self):
        for b in (32, 64, 128, 256, 512, 1024):
            assert 0.0 <= occupancy(K20C, b) <= 1.0

    def test_invalid_block_size_rejected(self):
        with pytest.raises(InvalidKernelLaunch):
            occupancy(K20C, 0)
        with pytest.raises(InvalidKernelLaunch):
            occupancy(K20C, 4096)
