"""Device context: accounting, stage tags, default-device management."""

import numpy as np
import pytest

from repro.cuda.device import (
    Device,
    default_device,
    get_default_device,
    set_default_device,
)
from repro.hw.spec import K20C


class TestDeviceAccounting:
    def test_charge_kernel_advances_clock(self, device):
        t0 = device.elapsed
        dt = device.charge_kernel("k", flops=1e9, bytes_moved=1e9)
        assert dt > 0
        assert device.elapsed == pytest.approx(t0 + dt)
        assert device.kernel_launches == 1

    def test_charge_cpu_records_cpu_category(self, device):
        device.charge_cpu("host work", 0.5)
        assert device.timeline.total("cpu") == pytest.approx(0.5)

    def test_stage_tags_nest_and_restore(self, device):
        with device.stage("outer"):
            device.charge_kernel("a", 0, 0)
            with device.stage("inner"):
                device.charge_kernel("b", 0, 0)
            device.charge_kernel("c", 0, 0)
        by_tag = device.timeline.by_tag()
        assert by_tag.keys() == {"outer", "inner"}

    def test_memory_info(self, device, rng):
        free0, total = device.memory_info()
        assert total == K20C.memory_bytes
        device.to_device(rng.random(1000))
        free1, _ = device.memory_info()
        # cudaMemGetInfo reports the allocator's rounded footprint: 8000
        # requested bytes occupy one 512 B-granular block (8192)
        assert free1 == free0 - 8192

    def test_reset_clears_state(self, device, rng):
        device.to_device(rng.random(10))
        device.charge_kernel("k", 1, 1)
        device.reset()
        assert device.elapsed == 0.0
        assert device.allocator.used_bytes == 0
        assert device.kernel_launches == 0

    def test_repr(self, device):
        assert "K20c" in repr(device)


class TestDefaultDevice:
    def test_lazy_creation(self):
        set_default_device(None)
        d = get_default_device()
        assert isinstance(d, Device)
        assert get_default_device() is d

    def test_set_and_restore(self):
        mine = Device()
        set_default_device(mine)
        assert get_default_device() is mine
        set_default_device(None)

    def test_scoped_default(self):
        set_default_device(None)
        outer = get_default_device()
        mine = Device()
        with default_device(mine) as d:
            assert d is mine
            assert get_default_device() is mine
        assert get_default_device() is outer
