"""Kernel launch semantics: validation, execution, cost charging."""

import numpy as np
import pytest

from repro.cuda.kernel import Kernel, LaunchConfig, kernel, launch
from repro.cuda.launch import grid_1d
from repro.errors import InvalidKernelLaunch

square = Kernel(
    name="square",
    body=lambda tid, x, out: out.__setitem__(tid, x[tid] ** 2),
    cost=lambda nt, x, out: (nt, 2.0 * nt * 8),
)


class TestLaunchConfig:
    def test_n_threads(self):
        assert LaunchConfig(4, 256).n_threads == 1024

    def test_rejects_nonpositive(self, device):
        with pytest.raises(InvalidKernelLaunch):
            LaunchConfig(0, 256).validate(device)
        with pytest.raises(InvalidKernelLaunch):
            LaunchConfig(1, 0).validate(device)

    def test_rejects_oversized_block(self, device):
        with pytest.raises(InvalidKernelLaunch):
            LaunchConfig(1, 2048).validate(device)


class TestLaunch:
    def test_executes_body_over_all_threads(self, device, rng):
        x = device.to_device(rng.random(100))
        out = device.empty(100)
        launch(square, grid_1d(100), x, out, n_threads=100)
        assert np.allclose(out.data, x.data**2)

    def test_charges_time_and_counts(self, device, rng):
        x = device.to_device(rng.random(10))
        out = device.empty(10)
        t0 = device.elapsed
        launches0 = device.kernel_launches
        dt = launch(square, (1, 32), x, out, n_threads=10)
        assert dt > 0
        assert device.elapsed == pytest.approx(t0 + dt)
        assert device.kernel_launches == launches0 + 1

    def test_partial_tail_threads_masked(self, device, rng):
        # grid covers 128 threads but only 100 are live
        x = device.to_device(rng.random(100))
        out = device.zeros(100)
        launch(square, grid_1d(100, 64), x, out, n_threads=100)
        assert np.allclose(out.data, x.data**2)

    def test_n_threads_over_capacity_rejected(self, device, rng):
        x = device.to_device(rng.random(10))
        with pytest.raises(InvalidKernelLaunch):
            launch(square, (1, 4), x, x, n_threads=10)

    def test_requires_device_operand(self):
        with pytest.raises(InvalidKernelLaunch):
            launch(square, (1, 32), np.zeros(4), np.zeros(4))

    def test_mixed_devices_rejected(self, rng):
        from repro.cuda.device import Device

        d1, d2 = Device(), Device()
        a = d1.to_device(rng.random(4))
        b = d2.to_device(rng.random(4))
        with pytest.raises(InvalidKernelLaunch):
            launch(square, (1, 32), a, b)

    def test_decorator_form(self, device, rng):
        @kernel("triple", cost=lambda nt, x, out: (nt, 2.0 * nt * 8))
        def triple(tid, x, out):
            out[tid] = 3.0 * x[tid]

        x = device.to_device(rng.random(16))
        out = device.empty(16)
        launch(triple, (1, 16), x, out)
        assert np.allclose(out.data, 3.0 * x.data)

    def test_bad_kind_rejected_at_definition(self):
        with pytest.raises(ValueError):
            Kernel("k", lambda tid: None, lambda nt: (0, 0), kind="warp-magic")


class TestGrid1d:
    def test_covers_requested_threads(self):
        g, b = grid_1d(1000, 256)
        assert g * b >= 1000
        assert g == 4

    def test_exact_multiple(self):
        assert grid_1d(512, 256) == (2, 256)

    def test_zero_threads(self):
        g, b = grid_1d(0)
        assert g >= 1

    def test_negative_rejected(self):
        with pytest.raises(InvalidKernelLaunch):
            grid_1d(-1)
