"""Stream and Event timing semantics."""

import pytest

from repro.cuda.device import Device
from repro.cuda.stream import Event, Stream
from repro.errors import StreamError


class TestEvent:
    def test_elapsed_time_in_milliseconds(self, device):
        s = Stream(device)
        e0 = s.record_event()
        device.charge_kernel("k", flops=0, bytes_moved=2e9)  # ~17 ms
        e1 = s.record_event()
        ms = e0.elapsed_time(e1)
        assert ms > 0
        assert ms == pytest.approx((e1.time - e0.time) * 1e3)

    def test_unrecorded_event_raises(self, device):
        with pytest.raises(StreamError):
            _ = Event(device).time

    def test_cross_device_elapsed_rejected(self):
        d1, d2 = Device(), Device()
        e1 = Event(d1).record()
        e2 = Event(d2).record()
        with pytest.raises(StreamError):
            e1.elapsed_time(e2)

    def test_record_on_foreign_stream_rejected(self):
        d1, d2 = Device(), Device()
        with pytest.raises(StreamError):
            Event(d1).record(Stream(d2))

    def test_is_recorded_flag(self, device):
        e = Event(device)
        assert not e.is_recorded
        e.record()
        assert e.is_recorded


class TestStream:
    def test_synchronize_is_noop(self, device):
        Stream(device).synchronize()

    def test_default_device_binding(self):
        from repro.cuda.device import set_default_device

        d = Device()
        set_default_device(d)
        try:
            assert Stream().device is d
        finally:
            set_default_device(None)

    def test_repr(self, device):
        assert "K20c" in repr(Stream(device))
