"""DeviceArray lifecycle, transfers, and the allocator's capacity guard."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.cuda.memory import Allocator
from repro.errors import DeviceArrayError, DeviceMemoryError
from repro.hw.spec import K20C
from dataclasses import replace


class TestAllocator:
    def test_tracks_usage_and_peak(self):
        a = Allocator(1000)
        a.allocate(400)
        a.allocate(300)
        a.release(400)
        assert a.used_bytes == 300
        assert a.peak_bytes == 700
        assert a.free_bytes == 700

    def test_capacity_enforced(self):
        a = Allocator(100)
        a.allocate(90)
        with pytest.raises(DeviceMemoryError):
            a.allocate(20)

    def test_oom_message_mentions_sizes(self):
        a = Allocator(100)
        with pytest.raises(DeviceMemoryError, match="101"):
            a.allocate(101)

    def test_negative_rejected(self):
        a = Allocator(100)
        with pytest.raises(ValueError):
            a.allocate(-1)
        with pytest.raises(ValueError):
            a.release(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Allocator(0)


class TestDeviceArray:
    def test_to_device_round_trip(self, device, rng):
        x = rng.random((10, 3))
        d = device.to_device(x)
        assert d.shape == (10, 3)
        assert np.array_equal(d.copy_to_host(), x)

    def test_transfers_charge_pcie_time(self, device, rng):
        x = rng.random(1000)
        before = device.timeline.communication_time()
        d = device.to_device(x)
        d.copy_to_host()
        assert device.timeline.communication_time() > before
        assert device.timeline.count("h2d") == 1
        assert device.timeline.count("d2h") == 1

    def test_copy_to_host_into_preallocated(self, device, rng):
        x = rng.random(50)
        d = device.to_device(x)
        out = np.empty(50)
        got = d.copy_to_host(out=out)
        assert got is out
        assert np.array_equal(out, x)

    def test_copy_to_host_buffer_mismatch(self, device, rng):
        d = device.to_device(rng.random(50))
        with pytest.raises(DeviceArrayError):
            d.copy_to_host(out=np.empty(51))

    def test_copy_from_host_shape_check(self, device, rng):
        d = device.to_device(rng.random(5))
        with pytest.raises(DeviceArrayError):
            d.copy_from_host(rng.random(6))

    def test_free_releases_memory(self, device, rng):
        used0 = device.allocator.used_bytes
        d = device.to_device(rng.random(1000))
        assert device.allocator.used_bytes == used0 + 8000
        d.free()
        assert device.allocator.used_bytes == used0

    def test_use_after_free_raises(self, device, rng):
        d = device.to_device(rng.random(10))
        d.free()
        with pytest.raises(DeviceArrayError):
            _ = d.shape
        with pytest.raises(DeviceArrayError):
            d.copy_to_host()

    def test_double_free_is_idempotent(self, device, rng):
        d = device.to_device(rng.random(10))
        d.free()
        d.free()  # no raise
        assert not d.is_valid

    def test_device_oom(self):
        tiny = Device(spec=replace(K20C, memory_bytes=1024))
        with pytest.raises(DeviceMemoryError):
            tiny.to_device(np.zeros(1000))

    def test_reshape_is_view(self, device, rng):
        d = device.to_device(rng.random(12))
        r = d.reshape(3, 4)
        assert r.shape == (3, 4)
        r.data[0, 0] = 42.0
        assert d.data[0] == 42.0

    def test_ravel(self, device, rng):
        d = device.to_device(rng.random((3, 4)))
        assert d.ravel().shape == (12,)

    def test_device_copy_charges_kernel_not_pcie(self, device, rng):
        d = device.to_device(rng.random(100))
        comm0 = device.timeline.communication_time()
        c = d.copy()
        assert np.array_equal(c.data, d.data)
        assert device.timeline.communication_time() == comm0

    def test_zeros_full_empty(self, device):
        z = device.zeros(5)
        f = device.full(5, 3.5)
        e = device.empty(5)
        assert np.all(z.data == 0)
        assert np.all(f.data == 3.5)
        assert e.shape == (5,)

    def test_repr_mentions_freed(self, device, rng):
        d = device.to_device(rng.random(3))
        d.free()
        assert "freed" in repr(d)

    def test_view_rows_is_zero_copy(self, device, rng):
        d = device.to_device(rng.random((10, 4)))
        used = device.allocator.used_bytes
        v = d.view_rows(2, 5)
        assert device.allocator.used_bytes == used  # no allocation
        assert v.shape == (3, 4)
        v.data[0, 0] = 99.0
        assert d.data[2, 0] == 99.0

    def test_view_rows_bounds_checked(self, device, rng):
        d = device.to_device(rng.random((10, 4)))
        with pytest.raises(DeviceArrayError):
            d.view_rows(5, 11)
        with pytest.raises(DeviceArrayError):
            d.view_rows(-1, 3)

    def test_view_rows_of_freed_array(self, device, rng):
        d = device.to_device(rng.random((4, 2)))
        d.free()
        with pytest.raises(DeviceArrayError):
            d.view_rows(0, 2)
