"""Benchmark runner and paper-scale projection."""

import pytest

from repro.bench.report import format_comparison, format_paper_check, speedup
from repro.bench.runner import project_paper_scale, run_comparison


@pytest.fixture(scope="module")
def fb_result():
    return run_comparison("fb", scale=0.2, seed=0, eig_tol=1e-8)


class TestRunComparison:
    def test_stage_columns_present(self, fb_result):
        assert set(fb_result.stages) == {"eigensolver", "kmeans"}
        for cols in fb_result.stages.values():
            assert set(cols) == {"cuda", "matlab", "python"}
            assert all(v >= 0 for v in cols.values())

    def test_quality_reported(self, fb_result):
        assert set(fb_result.quality) == {"cuda", "matlab", "python"}
        assert fb_result.quality["cuda"] > 0.8

    def test_counters(self, fb_result):
        c = fb_result.counters
        assert c["n_op"] > 0
        assert c["cuda_kmeans_iters"] >= 1

    def test_comm_comp_split(self, fb_result):
        assert fb_result.comm > 0
        assert fb_result.comp > 0

    def test_point_dataset_has_similarity_stage(self):
        r = run_comparison("dti", scale=0.005, seed=0, eig_tol=1e-6, project=True)
        assert "similarity" in r.stages
        assert "similarity" in r.projection

    def test_paper_rows_attached(self, fb_result):
        assert "eigensolver" in fb_result.paper


class TestProjection:
    def test_projection_stages(self, fb_result):
        proj = fb_result.projection
        assert "eigensolver" in proj and "kmeans" in proj
        for col in ("cuda", "matlab", "python"):
            assert proj["eigensolver"][col] > 0

    def test_projected_winner_matches_paper_fb(self, fb_result):
        """Shape check: at paper scale CUDA wins both FB stages, as in
        Table IV."""
        proj = fb_result.projection
        for stage in ("eigensolver", "kmeans"):
            assert proj[stage]["cuda"] < proj[stage]["matlab"]
            assert proj[stage]["cuda"] < proj[stage]["python"]

    def test_projection_standalone(self):
        proj = project_paper_scale(
            "dblp",
            dict(
                n_op=3000, n_restarts=4, m=1001,
                cuda_kmeans_iters=20, matlab_kmeans_iters=60,
                python_kmeans_iters=25,
            ),
        )
        # DBLP shape (Table VI): CUDA beats Matlab on the eigensolver (the
        # model under-predicts the paper's 2.8x factor — the winner is the
        # shape claim; see EXPERIMENTS.md) and k-means by orders of magnitude
        assert proj["eigensolver"]["matlab"] / proj["eigensolver"]["cuda"] > 1.0
        assert proj["kmeans"]["matlab"] / proj["kmeans"]["cuda"] > 50

    def test_communication_fraction_small_at_paper_scale(self, fb_result):
        proj = fb_result.projection["eigensolver"]
        assert proj["cuda_communication"] < 0.5 * proj["cuda"]


class TestReport:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == float("inf")

    def test_format_comparison(self, fb_result):
        text = format_comparison(fb_result)
        assert "eigensolver" in text and "CUDA" in text and "ARI" in text

    def test_format_paper_check(self, fb_result):
        text = format_paper_check(fb_result)
        assert "paper" in text
        assert "winner" in text
