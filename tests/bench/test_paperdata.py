"""Transcription integrity of the paper's published numbers."""

from repro.bench.paperdata import PAPER_TABLES, TABLE_OF_DATASET


class TestPaperData:
    def test_all_tables_present(self):
        assert {
            "table3_dti", "table4_fb", "table5_syn200", "table6_dblp",
            "table7_comm", "dti_vectorized_similarity",
        } <= set(PAPER_TABLES)

    def test_cuda_wins_every_stage_in_tables_3_to_6(self):
        """The paper's headline claim: CUDA fastest at each step."""
        for key in ("table3_dti", "table4_fb", "table5_syn200", "table6_dblp"):
            for stage, cols in PAPER_TABLES[key].items():
                assert cols["cuda"] < cols["matlab"], (key, stage)
                assert cols["cuda"] < cols["python"], (key, stage)

    def test_table7_communication_always_smaller(self):
        """§V.C: 'we expect the data communication time to be less than the
        computational time'."""
        for ds, row in PAPER_TABLES["table7_comm"].items():
            assert row["communication"] < row["computation"], ds

    def test_known_headline_numbers(self):
        t3 = PAPER_TABLES["table3_dti"]
        assert t3["similarity"]["cuda"] == 0.0331
        assert t3["eigensolver"]["python"] == 3281.973
        assert PAPER_TABLES["table6_dblp"]["kmeans"]["cuda"] == 1.79456

    def test_dataset_table_mapping(self):
        assert TABLE_OF_DATASET == {
            "dti": "table3_dti",
            "fb": "table4_fb",
            "syn200": "table5_syn200",
            "dblp": "table6_dblp",
        }

    def test_kmeans_speedups_match_prose(self):
        """§V.C quotes >300x (DTI), ~4x (FB), >100x (Syn200), >400x (DBLP)."""
        t = PAPER_TABLES
        assert t["table3_dti"]["kmeans"]["matlab"] / t["table3_dti"]["kmeans"]["cuda"] > 300
        assert 2 < t["table4_fb"]["kmeans"]["matlab"] / t["table4_fb"]["kmeans"]["cuda"] < 5
        assert t["table5_syn200"]["kmeans"]["matlab"] / t["table5_syn200"]["kmeans"]["cuda"] > 100
        assert t["table6_dblp"]["kmeans"]["matlab"] / t["table6_dblp"]["kmeans"]["cuda"] > 400
