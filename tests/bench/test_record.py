"""Experiment record persistence and drift detection."""

import json

import pytest

from repro.bench.record import (
    SCHEMA_VERSION,
    diff_records,
    load_record,
    record_to_dict,
    save_record,
)
from repro.bench.runner import run_comparison
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def result():
    return run_comparison("fb", scale=0.1, seed=0, eig_tol=1e-8, project=False)


class TestRecordIO:
    def test_round_trip(self, result, tmp_path):
        p = tmp_path / "fb.json"
        save_record(p, result)
        back = load_record(p)
        assert back["dataset"] == "fb"
        assert back["schema_version"] == SCHEMA_VERSION
        assert back["stages"]["eigensolver"]["cuda"] == pytest.approx(
            result.stages["eigensolver"]["cuda"]
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(BenchmarkError, match="no such record"):
            load_record(tmp_path / "nope.json")

    def test_corrupt_file(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{not json")
        with pytest.raises(BenchmarkError, match="corrupt"):
            load_record(p)

    def test_schema_mismatch(self, tmp_path):
        p = tmp_path / "old.json"
        p.write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(BenchmarkError, match="schema"):
            load_record(p)


class TestDrift:
    def test_identical_run_no_drift(self, result, tmp_path):
        p = tmp_path / "fb.json"
        save_record(p, result)
        again = run_comparison("fb", scale=0.1, seed=0, eig_tol=1e-8,
                               project=False)
        assert diff_records(load_record(p), again) == []

    def test_perturbation_detected(self, result):
        old = record_to_dict(result)
        new = record_to_dict(result)
        new["stages"]["eigensolver"]["cuda"] *= 2.0
        drifts = diff_records(old, new)
        assert any("eigensolver/cuda" in d for d in drifts)

    def test_small_noise_tolerated(self, result):
        old = record_to_dict(result)
        new = record_to_dict(result)
        new["stages"]["eigensolver"]["cuda"] *= 1.01
        assert diff_records(old, new, rel_tol=0.05) == []

    def test_missing_stage_flagged(self, result):
        old = record_to_dict(result)
        new = record_to_dict(result)
        del new["stages"]["kmeans"]["python"]
        drifts = diff_records(old, new)
        assert any("missing" in d for d in drifts)

    def test_dataset_mismatch_rejected(self, result):
        old = record_to_dict(result)
        new = record_to_dict(result)
        new["dataset"] = "dblp"
        with pytest.raises(BenchmarkError):
            diff_records(old, new)
