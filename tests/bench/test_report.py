"""Report formatting edge cases."""

import pytest

from repro.bench.report import format_comparison, format_paper_check, speedup
from repro.bench.runner import ComparisonResult


def minimal_result(**kw) -> ComparisonResult:
    base = dict(
        dataset="fb",
        scale=0.1,
        n=100,
        nnz_directed=500,
        k=5,
        stages={"eigensolver": {"cuda": 0.1, "matlab": 0.5, "python": 1.0}},
        quality={"cuda": 0.9, "matlab": 0.8, "python": 0.9},
        counters={},
        comm=0.01,
        comp=0.09,
    )
    base.update(kw)
    return ComparisonResult(**base)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == 5.0

    def test_zero_denominator(self):
        assert speedup(1.0, 0.0) == float("inf")


class TestFormatComparison:
    def test_contains_columns_and_quality(self):
        text = format_comparison(minimal_result())
        assert "CUDA(sim)/s" in text
        assert "eigensolver" in text
        assert "ARI" in text
        assert "PCIe" in text

    def test_no_quality_row_when_absent(self):
        text = format_comparison(minimal_result(quality={}))
        assert "ARI" not in text

    def test_speedup_columns_rendered(self):
        text = format_comparison(minimal_result())
        assert "5.0x" in text  # matlab/cuda
        assert "10.0x" in text  # python/cuda


class TestFormatPaperCheck:
    def test_without_projection(self):
        text = format_paper_check(minimal_result())
        assert "no projection" in text

    def test_with_projection_and_paper(self):
        r = minimal_result(
            projection={
                "eigensolver": {"cuda": 0.02, "matlab": 0.11, "python": 0.09}
            },
            paper={
                "eigensolver": {"cuda": 0.0216, "matlab": 0.1027, "python": 0.0851}
            },
        )
        text = format_paper_check(r)
        assert "winner MATCHES" in text
        assert "0.0216" in text

    def test_winner_differs_reported(self):
        r = minimal_result(
            projection={"eigensolver": {"cuda": 1.0, "matlab": 0.1, "python": 2.0}},
            paper={"eigensolver": {"cuda": 0.02, "matlab": 0.10, "python": 0.09}},
        )
        text = format_paper_check(r)
        assert "DIFFERS" in text
