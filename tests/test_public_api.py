"""Public API surface contract: exports resolve, carry docs, and the
advertised entry points exist."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.core",
    "repro.cuda",
    "repro.cublas",
    "repro.cusparse",
    "repro.thrust",
    "repro.sparse",
    "repro.linalg",
    "repro.graph",
    "repro.kmeans",
    "repro.baselines",
    "repro.datasets",
    "repro.metrics",
    "repro.bench",
    "repro.hw",
    "repro.serve",
]


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_all_exports_resolve(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__, f"{modname} lacks a module docstring"
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name, None)
        assert obj is not None, f"{modname}.{name} in __all__ but missing"


@pytest.mark.parametrize("modname", PUBLIC_MODULES)
def test_public_callables_documented(modname):
    mod = importlib.import_module(modname)
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{modname}.{name} lacks a docstring"


def test_top_level_surface():
    import repro

    assert repro.__version__
    assert callable(repro.SpectralClustering)
    assert callable(repro.spectral_embedding)


def test_estimator_signature_stability():
    """The documented constructor arguments exist (downstream code relies
    on keyword names)."""
    import repro

    params = inspect.signature(repro.SpectralClustering).parameters
    for expected in (
        "n_clusters", "similarity", "sigma", "operator", "objective", "m",
        "eig_tol", "kmeans_init", "normalize_rows", "handle_isolated",
        "seed", "device",
    ):
        assert expected in params, expected


def test_fit_signature_stability():
    import repro

    params = inspect.signature(repro.SpectralClustering.fit).parameters
    assert {"X", "edges", "graph"} <= set(params)
