"""Cross-module integration scenarios and failure injection."""

from dataclasses import replace

import numpy as np
import pytest

from repro import SpectralClustering
from repro.cuda.device import Device
from repro.datasets.registry import load_dataset
from repro.errors import ClusteringError, DeviceMemoryError
from repro.hw.spec import K20C
from repro.kmeans.utils import KMeansResult
from repro.metrics.cuts import ncut
from repro.metrics.external import adjusted_rand_index, normalized_mutual_info


class TestEndToEndAllDatasets:
    @pytest.mark.parametrize("name,scale,min_ari", [
        ("fb", 0.2, 0.7),
        ("syn200", 0.05, 0.7),
        ("dti", 0.005, 0.3),
    ])
    def test_registry_dataset_clusters(self, name, scale, min_ari):
        ds = load_dataset(name, scale=scale, seed=0)
        sc = SpectralClustering(n_clusters=ds.n_clusters, eig_tol=1e-8, seed=0)
        if ds.points is not None:
            res = sc.fit(X=ds.points, edges=ds.edges)
        else:
            res = sc.fit(graph=ds.graph)
        clustered = res.labels >= 0
        assert clustered.any()
        ari = adjusted_rand_index(
            res.labels[clustered], ds.labels[clustered]
        )
        assert ari > min_ari, f"{name}: ARI {ari:.3f}"

    def test_dblp_finds_near_zero_cut(self):
        """Scaled DBLP has k (=5) far below its community count, and the
        sparse graph fragments into many components — for the NCut
        objective the pipeline optimizes, zero-cut component groupings
        are *optimal* even though they ignore community labels.  Assert
        the objective, not ARI: the recovered partition's NCut must be at
        least as good as the ground-truth labeling's."""
        ds = load_dataset("dblp", scale=0.003, seed=0)
        res = SpectralClustering(
            n_clusters=ds.n_clusters, eig_tol=1e-8, seed=0
        ).fit(graph=ds.graph)
        clustered = res.labels >= 0
        pred = np.where(clustered, res.labels, ds.n_clusters)
        assert ncut(ds.graph, pred) <= ncut(ds.graph, ds.labels) + 1e-9


class TestSpectralBeatsDirectKMeans:
    def test_nonconvex_structure(self):
        """Two concentric rings: k-means on raw coordinates fails; spectral
        clustering with an ε-graph separates them — the motivating example
        for spectral methods (paper §I: 'able to discover non-convex
        regions')."""
        from repro.graph.neighbors import epsilon_neighbors
        from repro.graph.build import build_similarity_graph
        from repro.kmeans.cpu import kmeans_cpu

        rng = np.random.default_rng(0)
        n_per = 200
        t = rng.uniform(0, 2 * np.pi, 2 * n_per)
        r = np.concatenate([np.full(n_per, 1.0), np.full(n_per, 3.0)])
        r += 0.05 * rng.standard_normal(2 * n_per)
        X = np.column_stack([r * np.cos(t), r * np.sin(t)])
        truth = np.repeat([0, 1], n_per)

        direct = kmeans_cpu(X, 2, seed=0)
        ari_direct = adjusted_rand_index(direct.labels, truth)

        # ε large enough that each ring stays one connected component
        edges = epsilon_neighbors(X, 0.7)
        W = build_similarity_graph(X, edges, measure="expdecay", sigma=0.5)
        res = SpectralClustering(n_clusters=2, seed=0).fit(graph=W)
        ari_spectral = adjusted_rand_index(res.labels, truth)

        assert ari_direct < 0.5
        assert ari_spectral > 0.95


class TestTimelineConsistency:
    def test_stage_times_sum_to_device_clock(self, sbm_graph):
        W, _ = sbm_graph
        dev = Device()
        res = SpectralClustering(n_clusters=6, seed=0, device=dev).fit(graph=W)
        assert res.timings.total_simulated() == pytest.approx(dev.elapsed, rel=1e-9)
        # summed event durations exceed the clock by exactly the seconds the
        # copy engine hid under concurrent host/device work
        overlap = dev.transfer_stats()["overlap_s"]
        assert res.profile.total == pytest.approx(dev.elapsed + overlap, rel=1e-9)
        assert overlap > 0.0

    def test_device_memory_returns_to_baseline(self, sbm_graph):
        """The pipeline frees its scratch: only the graph, operator and
        embedding-sized residue may remain."""
        W, _ = sbm_graph
        dev = Device()
        SpectralClustering(n_clusters=6, seed=0, device=dev).fit(graph=W)
        # everything not freed is bounded by the persistent matrices
        bound = 4 * (3 * W.nnz * 8) + 8 * W.shape[0] * 8
        assert dev.allocator.used_bytes < bound

    def test_eigensolver_dominates_large_k(self, sbm_graph):
        """The paper's cost structure: for k ≫ 1 the eigensolver stage is
        the most expensive simulated stage."""
        W, _ = sbm_graph
        res = SpectralClustering(n_clusters=12, seed=0).fit(graph=W)
        sim = res.timings.simulated
        assert sim["eigensolver"] == max(sim.values())


class TestFailureInjection:
    def test_device_oom_surfaces_cleanly(self, sbm_graph):
        W, _ = sbm_graph
        tiny = Device(spec=replace(K20C, memory_bytes=W.nnz * 8))
        with pytest.raises(DeviceMemoryError):
            SpectralClustering(n_clusters=6, seed=0, device=tiny).fit(graph=W)

    def test_unconverged_eigensolver_reported_not_hidden(self, sbm_graph):
        W, _ = sbm_graph
        res = SpectralClustering(
            n_clusters=6, seed=0, eig_tol=1e-14, eig_maxiter=1, m=8
        ).fit(graph=W)
        assert res.eig_stats["converged"] in (False, True)
        # labels still produced from the best available approximation
        assert np.all(res.labels >= 0)

    def test_empty_graph_rejected(self):
        from repro.sparse.construct import from_edge_list

        W = from_edge_list(np.empty((0, 2), dtype=np.int64), n_nodes=10)
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3, seed=0).fit(graph=W)


class TestPredict:
    def test_kmeans_result_predict(self, blobs):
        from repro.kmeans.cpu import kmeans_cpu

        V, truth, k = blobs
        res = kmeans_cpu(V, k, seed=0)
        again = res.predict(V)
        assert np.array_equal(again, res.labels)

    def test_predict_new_points_near_centroids(self, blobs):
        from repro.kmeans.cpu import kmeans_cpu

        V, _, k = blobs
        res = kmeans_cpu(V, k, seed=0)
        new = res.centroids + 1e-6
        assert np.array_equal(res.predict(new), np.arange(k))

    def test_predict_dim_check(self, blobs):
        from repro.kmeans.cpu import kmeans_cpu

        V, _, k = blobs
        res = kmeans_cpu(V, k, seed=0)
        with pytest.raises(ClusteringError):
            res.predict(np.zeros((3, V.shape[1] + 1)))


class TestMetricAgreement:
    def test_good_clustering_scores_well_on_all_metrics(self, sbm_graph):
        W, truth = sbm_graph
        res = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        assert adjusted_rand_index(res.labels, truth) > 0.9
        assert normalized_mutual_info(res.labels, truth) > 0.9
        assert ncut(W, res.labels) < 6 * 0.25  # well under the trivial bound
