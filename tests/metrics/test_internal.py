"""Modularity."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.metrics.internal import modularity
from repro.sparse.construct import from_edge_list


class TestModularity:
    def test_matches_networkx(self, sbm_graph):
        import networkx as nx

        W, labels = sbm_graph
        coo = W
        G = nx.Graph()
        G.add_nodes_from(range(W.shape[0]))
        mask = coo.row < coo.col
        G.add_weighted_edges_from(
            zip(coo.row[mask].tolist(), coo.col[mask].tolist(), coo.data[mask])
        )
        comms = [set(np.flatnonzero(labels == c)) for c in np.unique(labels)]
        ref = nx.algorithms.community.modularity(G, comms)
        assert modularity(W, labels) == pytest.approx(ref, abs=1e-10)

    def test_good_partition_beats_random(self, sbm_graph, rng):
        W, labels = sbm_graph
        good = modularity(W, labels)
        bad = modularity(W, rng.permutation(labels))
        assert good > bad + 0.2

    def test_single_cluster_zero_ish(self, sbm_graph):
        W, labels = sbm_graph
        q = modularity(W, np.zeros(W.shape[0], dtype=int))
        assert q == pytest.approx(0.0, abs=1e-9)

    def test_empty_graph(self):
        W = from_edge_list(np.empty((0, 2), dtype=np.int64), n_nodes=4)
        assert modularity(W, np.zeros(4, dtype=int)) == 0.0

    def test_label_length_checked(self, sbm_graph):
        W, _ = sbm_graph
        with pytest.raises(ClusteringError):
            modularity(W, np.zeros(3, dtype=int))

    def test_bounded(self, sbm_graph):
        W, labels = sbm_graph
        assert -1.0 <= modularity(W, labels) <= 1.0
