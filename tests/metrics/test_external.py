"""External agreement metrics vs their defining properties (and sklearn-free
hand-checked values)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ClusteringError
from repro.metrics.external import (
    adjusted_rand_index,
    contingency_matrix,
    normalized_mutual_info,
    purity,
)

labelings = hnp.arrays(np.int64, st.integers(2, 60), elements=st.integers(0, 5))


class TestContingency:
    def test_known_table(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 1, 1, 1])
        C = contingency_matrix(a, b)
        assert C.tolist() == [[1, 1], [0, 2]]

    def test_sums_to_n(self, rng):
        a = rng.integers(0, 4, 50)
        b = rng.integers(0, 3, 50)
        assert contingency_matrix(a, b).sum() == 50

    def test_noncontiguous_labels_compacted(self):
        C = contingency_matrix(np.array([10, 99]), np.array([5, 5]))
        assert C.shape == (2, 1)

    def test_length_mismatch(self):
        with pytest.raises(ClusteringError):
            contingency_matrix(np.zeros(3), np.zeros(4))


class TestARI:
    def test_identical_is_one(self, rng):
        a = rng.integers(0, 5, 40)
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)

    def test_permutation_invariant(self, rng):
        a = rng.integers(0, 4, 40)
        remap = np.array([3, 0, 2, 1])
        assert adjusted_rand_index(a, remap[a]) == pytest.approx(1.0)

    def test_random_near_zero(self, rng):
        vals = [
            adjusted_rand_index(rng.integers(0, 4, 500), rng.integers(0, 4, 500))
            for _ in range(10)
        ]
        assert abs(np.mean(vals)) < 0.05

    def test_known_value(self):
        # classic worked example
        a = np.array([0, 0, 0, 1, 1, 1])
        b = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(a, b) == pytest.approx(0.2424242, abs=1e-6)

    @given(labelings)
    @settings(max_examples=30, deadline=None)
    def test_symmetric(self, a):
        b = np.roll(a, 1)
        assert adjusted_rand_index(a, b) == pytest.approx(
            adjusted_rand_index(b, a)
        )

    @given(labelings)
    @settings(max_examples=30, deadline=None)
    def test_bounded_above_by_one(self, a):
        b = np.roll(a, 1)
        assert adjusted_rand_index(a, b) <= 1.0 + 1e-12


class TestNMI:
    def test_identical_is_one(self, rng):
        a = rng.integers(0, 5, 40)
        # guard against degenerate single-cluster draws
        a[0], a[1] = 0, 1
        assert normalized_mutual_info(a, a) == pytest.approx(1.0)

    def test_independent_near_zero(self, rng):
        a = rng.integers(0, 4, 2000)
        b = rng.integers(0, 4, 2000)
        assert normalized_mutual_info(a, b) < 0.02

    def test_range(self, rng):
        for _ in range(10):
            a = rng.integers(0, 6, 30)
            b = rng.integers(0, 3, 30)
            v = normalized_mutual_info(a, b)
            assert -1e-12 <= v <= 1.0 + 1e-12

    def test_single_cluster_convention(self):
        a = np.zeros(10, dtype=int)
        assert normalized_mutual_info(a, a) == 1.0


class TestPurity:
    def test_perfect(self, rng):
        a = rng.integers(0, 3, 30)
        assert purity(a, a) == 1.0

    def test_known_value(self):
        pred = np.array([0, 0, 0, 1, 1, 1])
        truth = np.array([0, 0, 1, 1, 1, 1])
        # cluster 0 majority=0 (2), cluster 1 majority=1 (3) -> 5/6
        assert purity(pred, truth) == pytest.approx(5 / 6)

    def test_singleton_clusters_trivially_pure(self, rng):
        truth = rng.integers(0, 3, 20)
        assert purity(np.arange(20), truth) == 1.0

    def test_one_cluster_gives_majority_fraction(self):
        truth = np.array([0, 0, 0, 1])
        assert purity(np.zeros(4, dtype=int), truth) == pytest.approx(0.75)
