"""Graph-cut objectives (Eqs. 1-4)."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.metrics.cuts import cut_value, ncut, ratio_cut
from repro.sparse.construct import from_edge_list


@pytest.fixture
def two_triangles():
    """Two triangles joined by one bridge edge; the natural partition cuts
    exactly that bridge."""
    edges = np.array(
        [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]]
    )
    return from_edge_list(edges, n_nodes=6), np.array([0, 0, 0, 1, 1, 1])


class TestCut:
    def test_bridge_cut_value(self, two_triangles):
        W, labels = two_triangles
        assert cut_value(W, labels) == pytest.approx(1.0)

    def test_all_one_cluster_zero(self, two_triangles):
        W, _ = two_triangles
        assert cut_value(W, np.zeros(6, dtype=int)) == 0.0

    def test_singletons_cut_everything(self, two_triangles):
        W, _ = two_triangles
        total_weight = W.data.sum() / 2
        assert cut_value(W, np.arange(6)) == pytest.approx(total_weight)

    def test_weighted_edges(self):
        W = from_edge_list(np.array([[0, 1]]), weights=np.array([3.5]), n_nodes=2)
        assert cut_value(W, np.array([0, 1])) == pytest.approx(3.5)

    def test_label_length_checked(self, two_triangles):
        W, _ = two_triangles
        with pytest.raises(ClusteringError):
            cut_value(W, np.zeros(5, dtype=int))

    def test_negative_labels_rejected(self, two_triangles):
        W, _ = two_triangles
        with pytest.raises(ClusteringError):
            cut_value(W, np.array([0, 0, 0, 1, 1, -1]))


class TestRatioCut:
    def test_formula(self, two_triangles):
        W, labels = two_triangles
        # cut of 1 split over |A|=3, |Ā|=3: (1/3 + 1/3)/2... Eq 3 with the
        # 1/2 factor: 0.5 * (1/3 + 1/3)
        assert ratio_cut(W, labels) == pytest.approx(0.5 * (1 / 3 + 1 / 3))

    def test_penalizes_unbalanced(self, two_triangles):
        W, balanced = two_triangles
        unbalanced = np.array([0, 1, 1, 1, 1, 1])
        assert ratio_cut(W, balanced) < ratio_cut(W, unbalanced)


class TestNCut:
    def test_formula(self, two_triangles):
        W, labels = two_triangles
        vol = 2 * 3 + 1  # each triangle: 6 degree + bridge endpoint
        assert ncut(W, labels) == pytest.approx(0.5 * (1 / vol + 1 / vol))

    def test_natural_partition_minimizes_over_alternatives(self, two_triangles):
        W, labels = two_triangles
        best = ncut(W, labels)
        rng = np.random.default_rng(0)
        for _ in range(30):
            alt = rng.integers(0, 2, 6)
            if len(set(alt.tolist())) < 2:
                continue
            assert ncut(W, alt) >= best - 1e-12

    def test_scale_invariance(self, two_triangles):
        """NCut is invariant to uniform edge-weight scaling (RatioCut is
        not) — exactly why the paper optimizes NCut."""
        W, labels = two_triangles
        W2 = from_edge_list(
            np.column_stack([W.row, W.col]), weights=W.data * 10,
            n_nodes=6, symmetrize=False,
        )
        assert ncut(W2, labels) == pytest.approx(ncut(W, labels))

    def test_bounded_by_k(self, rng):
        from repro.sparse.construct import random_sparse

        W = random_sparse(30, 30, 0.3, rng=rng, symmetric=True)
        labels = rng.integers(0, 4, 30)
        assert 0.0 <= ncut(W, labels) <= 4.0

    def test_empty_cluster_id_gap_ok(self, two_triangles):
        W, _ = two_triangles
        labels = np.array([0, 0, 0, 5, 5, 5])  # ids 1-4 unused
        v = ncut(W, labels)
        assert np.isfinite(v) and v > 0
