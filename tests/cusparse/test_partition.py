"""Row-partitioned CSR + multi-device SpMV: splitting, halo accounting,
bit-identity, and the overlapped makespan."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.cusparse.matrices import csr_to_device
from repro.cusparse.partition import (
    partition_bounds,
    partition_csr,
    spmv_partitioned,
)
from repro.cusparse.spmv import csrmv
from repro.errors import SparseValueError
from repro.sparse.construct import random_sparse


def make_devices(p):
    """p devices sharing one timeline (one simulated platform)."""
    primary = Device()
    peers = [
        Device(primary.spec, primary.pcie, timeline=primary.timeline)
        for _ in range(p - 1)
    ]
    return [primary] + peers


@pytest.fixture
def operator(device, rng):
    host = random_sparse(120, 120, 0.1, rng=rng, symmetric=True).to_csr()
    return csr_to_device(device, host), host


class TestPartitionBounds:
    def test_balanced_split(self):
        b = partition_bounds(100, 4)
        assert list(b) == [0, 25, 50, 75, 100]
        assert b.dtype == np.int64

    def test_uneven_rows_differ_by_at_most_one(self):
        b = partition_bounds(10, 3)
        sizes = np.diff(b)
        assert sizes.sum() == 10
        assert sizes.max() - sizes.min() <= 1

    def test_single_device_is_whole_range(self):
        assert list(partition_bounds(7, 1)) == [0, 7]

    def test_zero_devices_rejected(self):
        with pytest.raises(SparseValueError):
            partition_bounds(10, 0)

    def test_more_devices_than_rows_rejected(self):
        with pytest.raises(SparseValueError):
            partition_bounds(2, 3)


class TestPartitionCSR:
    def test_local_plus_halo_covers_every_entry(self, rng):
        devices = make_devices(3)
        host = random_sparse(90, 90, 0.12, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        total = 0
        for shard in P.shards:
            total += shard.nnz_local + shard.nnz_halo
            # local column offsets stay inside the block
            assert (shard.local_indices.data[: shard.nnz_local] >= 0).all()
            assert (
                shard.local_indices.data[: shard.nnz_local] < shard.n_rows
            ).all()
            # halo columns are genuinely off-block
            assert not np.isin(shard.halo_cols, shard.rows).any()
        assert total == A.nnz

    def test_halo_src_counts_sum_to_halo_count(self, rng):
        devices = make_devices(4)
        host = random_sparse(100, 100, 0.1, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        for shard in P.shards:
            assert shard.halo_src_counts.sum() == shard.halo_count
            # a device never receives its own columns
            assert shard.halo_src_counts[shard.index] == 0
        assert P.step_halo_bytes() == sum(P.halo_counts) * 8

    def test_rectangular_rejected(self, device, rng):
        host = random_sparse(20, 30, 0.2, rng=rng).to_csr()
        A = csr_to_device(device, host)
        with pytest.raises(SparseValueError):
            partition_csr(A, [device])

    def test_devices_must_share_timeline(self, operator):
        A, _ = operator
        with pytest.raises(SparseValueError):
            partition_csr(A, [A.device, Device()])  # separate platform

    def test_distribution_charged_as_p2p(self, rng):
        devices = make_devices(2)
        host = random_sparse(60, 60, 0.15, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        before = devices[1].bytes_p2p
        P = partition_csr(A, devices)
        # device 1's raw row block crossed the peer bus, byte-for-byte
        assert devices[1].bytes_p2p - before == P.shard_upload_bytes
        assert P.shard_upload_bytes > 0
        names = [e.name for e in devices[0].timeline if e.category == "p2p"]
        assert any("memcpyPeerAsync" in n for n in names)

    def test_split_kernels_concurrent_not_summed(self, rng):
        """The setup is charged as a makespan over devices: the clock
        advances less than the sum of the individual event durations."""
        devices = make_devices(4)
        host = random_sparse(200, 200, 0.1, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        tl = devices[0].timeline
        n0, t0 = len(tl), tl.clock.now
        partition_csr(A, devices)
        elapsed = tl.clock.now - t0
        summed = sum(ev.duration for ev in tl.events[n0:])
        assert 0 < elapsed < summed


class TestSpmvPartitioned:
    @pytest.mark.parametrize("p", [1, 2, 3, 4])
    def test_bit_identical_to_csrmv(self, rng, p):
        host = random_sparse(100, 100, 0.1, rng=rng, symmetric=True).to_csr()
        x = rng.standard_normal(100)

        ref_dev = Device()
        dA = csr_to_device(ref_dev, host)
        dx = ref_dev.to_device(x)
        dy = ref_dev.empty(100, dtype=np.float64)
        csrmv(dA, dx, dy)
        ref = dy.data.copy()

        devices = make_devices(p)
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        y = spmv_partitioned(P, x)
        assert y.tobytes() == ref.tobytes()

    def test_output_array_reused(self, rng):
        devices = make_devices(2)
        host = random_sparse(50, 50, 0.2, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        x = rng.standard_normal(50)
        y = np.empty(50)
        out = spmv_partitioned(P, x, y)
        assert out is y
        assert y.tobytes() == spmv_partitioned(P, x).tobytes()

    def test_shape_mismatch_rejected(self, rng):
        devices = make_devices(2)
        host = random_sparse(40, 40, 0.2, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        with pytest.raises(SparseValueError):
            spmv_partitioned(P, np.zeros(41))

    def test_halo_exchange_bytes_per_step(self, rng):
        devices = make_devices(3)
        host = random_sparse(90, 90, 0.1, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        before = sum(d.bytes_p2p for d in devices)
        x = rng.standard_normal(90)
        spmv_partitioned(P, x)
        spmv_partitioned(P, x)
        moved = sum(d.bytes_p2p for d in devices) - before
        assert moved == 2 * P.step_halo_bytes()

    def test_local_kernel_overlaps_halo_copy(self, rng):
        """The point of the split: local compute and the peer copies run
        concurrently from a common start."""
        devices = make_devices(2)
        host = random_sparse(400, 400, 0.05, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        tl = devices[0].timeline
        n0 = len(tl)
        spmv_partitioned(P, rng.standard_normal(400))
        window = tl.events[n0:]
        locals_ = [e for e in window if "csrmv[local" in e.name]
        copies = [e for e in window if e.category == "p2p"]
        assert locals_ and copies
        overlap = any(
            k.start < c.end and c.start < k.end
            for k in locals_
            for c in copies
        )
        assert overlap

    def test_halo_kernel_waits_for_arrival_and_local(self, rng):
        devices = make_devices(2)
        host = random_sparse(100, 100, 0.1, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        tl = devices[0].timeline
        n0 = len(tl)
        spmv_partitioned(P, rng.standard_normal(100))
        window = tl.events[n0:]
        for d in range(2):
            local = [e for e in window if e.name == f"cusparseDcsrmv[local,dev{d}]"]
            halo = [e for e in window if e.name == f"cusparseDcsrmv[halo,dev{d}]"]
            if not halo:
                continue
            assert halo[0].start >= local[0].end - 1e-15

    def test_makespan_not_sum(self, rng):
        """One partitioned SpMV advances the clock by the slowest device's
        path, not the total work."""
        devices = make_devices(4)
        host = random_sparse(800, 800, 0.02, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices)
        tl = devices[0].timeline
        n0, t0 = len(tl), tl.clock.now
        spmv_partitioned(P, rng.standard_normal(800))
        elapsed = tl.clock.now - t0
        summed = sum(ev.duration for ev in tl.events[n0:])
        assert 0 < elapsed < summed


class TestPartitionModes:
    """nnz-balanced and min-cut partitioning: balance, coverage, halo wins,
    and mode-independent bit-identity."""

    def _skewed(self, rng, n=120):
        """A graph whose first rows are far denser than the rest."""
        from repro.sparse.construct import random_sparse

        dense = random_sparse(n // 4, n, 0.4, rng=rng).to_coo()
        sparse = random_sparse(3 * n // 4, n, 0.02, rng=rng).to_coo()
        import numpy as np
        from repro.sparse.coo import COOMatrix

        rows = np.concatenate([dense.row, sparse.row + n // 4])
        cols = np.concatenate([dense.col, sparse.col])
        vals = np.concatenate([dense.data, sparse.data])
        return COOMatrix(rows, cols, vals, shape=(n, n)).to_csr()

    def test_nnz_bounds_balance_nnz_not_rows(self, rng):
        host = self._skewed(rng)
        from repro.cusparse.partition import partition_bounds_nnz

        b = partition_bounds_nnz(host.indptr, 2)
        nnz0 = host.indptr[b[1]] - host.indptr[b[0]]
        nnz1 = host.indptr[b[2]] - host.indptr[b[1]]
        total = host.indptr[-1]
        assert abs(nnz0 - nnz1) < 0.2 * total
        # the row split is NOT even — that's the point
        assert (b[1] - b[0]) < (b[2] - b[1])

    def test_nnz_is_default_mode(self, rng):
        devices = make_devices(2)
        host = self._skewed(rng)
        A = csr_to_device(devices[0], host.to_coo().to_csr())
        P = partition_csr(A, devices)
        assert P.mode == "nnz"
        nnzs = [s.nnz_local + s.nnz_halo for s in P.shards]
        assert abs(nnzs[0] - nnzs[1]) < 0.2 * A.nnz

    def test_rows_mode_behind_knob(self, rng):
        devices = make_devices(2)
        host = self._skewed(rng)
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices, mode="rows")
        assert P.mode == "rows"
        assert P.shards[0].n_rows == P.shards[1].n_rows == 60

    def test_unknown_mode_rejected(self, rng):
        devices = make_devices(2)
        from repro.sparse.construct import random_sparse

        host = random_sparse(40, 40, 0.2, rng=rng).to_csr()
        A = csr_to_device(devices[0], host)
        with pytest.raises(SparseValueError):
            partition_csr(A, devices, mode="metis")

    def test_mincut_covers_all_rows_and_balances(self, rng):
        from repro.cusparse.partition import partition_owner_mincut
        from repro.sparse.construct import random_sparse

        host = random_sparse(200, 200, 0.05, rng=rng, symmetric=True).to_csr()
        owner = partition_owner_mincut(host.indptr, host.indices, 3)
        assert owner.shape == (200,)
        counts = np.bincount(owner, minlength=3)
        assert (counts > 0).all()
        nnz_per = np.bincount(owner, weights=np.diff(host.indptr), minlength=3)
        assert nnz_per.max() < 1.5 * nnz_per.min() + host.indptr[-1] * 0.15

    def test_mincut_reduces_halo_on_clustered_graph(self, rng):
        """On a community graph with shuffled vertex ids, BFS-grow finds
        the communities contiguous splits cannot see."""
        from repro.datasets.sbm import stochastic_block_model
        from repro.sparse.construct import from_edge_list

        edges, _ = stochastic_block_model(
            [60, 60, 60, 60], p_in=0.25, p_out=0.01,
            rng=np.random.default_rng(7),
        )
        perm = np.random.default_rng(3).permutation(240)
        shuffled = from_edge_list(perm[edges], n_nodes=240).to_csr()

        halo = {}
        for mode in ("rows", "mincut"):
            devices = make_devices(2)
            A = csr_to_device(devices[0], shuffled)
            P = partition_csr(A, devices, mode=mode)
            halo[mode] = P.step_halo_bytes()
        assert halo["mincut"] <= 0.8 * halo["rows"]

    @pytest.mark.parametrize("mode", ["rows", "nnz", "mincut"])
    def test_bit_identical_across_modes(self, rng, mode):
        host = self._skewed(rng)
        x = rng.standard_normal(120)
        ref_dev = Device()
        dA = csr_to_device(ref_dev, host)
        dx = ref_dev.to_device(x)
        dy = ref_dev.empty(120, dtype=np.float64)
        csrmv(dA, dx, dy)
        ref = dy.data.copy()

        devices = make_devices(3)
        A = csr_to_device(devices[0], host)
        P = partition_csr(A, devices, mode=mode)
        y = spmv_partitioned(P, x)
        assert y.tobytes() == ref.tobytes()

    def test_explicit_row_sets_reused(self, rng):
        from repro.sparse.construct import random_sparse

        host = random_sparse(60, 60, 0.1, rng=rng).to_csr()
        devices = make_devices(2)
        A = csr_to_device(devices[0], host)
        sets = [np.arange(0, 20, dtype=np.int64), np.arange(20, 60, dtype=np.int64)]
        P = partition_csr(A, devices, row_sets=sets)
        assert P.row_counts == (20, 40)
        bad = [np.arange(0, 20, dtype=np.int64), np.arange(25, 60, dtype=np.int64)]
        devices2 = make_devices(2)
        A2 = csr_to_device(devices2[0], host)
        with pytest.raises(SparseValueError):
            partition_csr(A2, devices2, row_sets=bad)
