"""Device sparse x dense products (csrmm)."""

import numpy as np
import pytest

from repro.cusparse.matrices import csr_to_device
from repro.cusparse.spmm import csrmm
from repro.errors import SparseValueError
from repro.sparse.construct import random_sparse


class TestCsrmm:
    def test_matches_dense(self, device, rng):
        host = random_sparse(20, 15, 0.3, rng=rng)
        d = csr_to_device(device, host.to_csr())
        B = rng.random((15, 4))
        C = csrmm(d, device.to_device(B))
        assert np.allclose(C.data, host.to_dense() @ B)

    def test_alpha_beta(self, device, rng):
        host = random_sparse(10, 10, 0.4, rng=rng)
        d = csr_to_device(device, host.to_csr())
        B = rng.random((10, 3))
        C0 = rng.random((10, 3))
        dC = device.to_device(C0)
        csrmm(d, device.to_device(B), dC, alpha=-1.0, beta=2.0)
        assert np.allclose(dC.data, -(host.to_dense() @ B) + 2.0 * C0)

    def test_shape_mismatch(self, device, rng):
        host = random_sparse(10, 10, 0.4, rng=rng)
        d = csr_to_device(device, host.to_csr())
        with pytest.raises(SparseValueError):
            csrmm(d, device.zeros((11, 2)))

    def test_c_shape_mismatch(self, device, rng):
        host = random_sparse(10, 10, 0.4, rng=rng)
        d = csr_to_device(device, host.to_csr())
        with pytest.raises(SparseValueError):
            csrmm(d, device.zeros((10, 2)), device.zeros((10, 3)))

    def test_cost_scales_sublinearly_with_columns(self, device, rng):
        # cusparseDcsrmm streams the matrix structure once and reuses it
        # across the B columns, so cost grows with p but stays well under
        # p independent csrmv sweeps
        n = 2000
        host = random_sparse(n, n, 0.05, rng=rng)
        d = csr_to_device(device, host.to_csr())
        B1 = device.zeros((n, 1))
        B8 = device.zeros((n, 8))
        # warm the output buckets so the timed windows are kernel-only
        # (cache hits skip the cudaMalloc latency charge)
        csrmm(d, B1).free()
        csrmm(d, B8).free()
        t0 = device.elapsed
        csrmm(d, B1)
        t1 = device.elapsed - t0
        t0 = device.elapsed
        csrmm(d, B8)
        t8 = device.elapsed - t0
        assert t8 > 2 * t1, "more columns must cost more"
        assert t8 < 8 * t1, "matrix traffic must amortize across columns"

    def test_cheaper_than_column_sweeps(self, device, rng):
        n = 2000
        host = random_sparse(n, n, 0.05, rng=rng)
        d = csr_to_device(device, host.to_csr())
        B = device.zeros((n, 8))
        csrmm(d, B).free()  # warm the output bucket
        t0 = device.elapsed
        csrmm(d, B)
        t8 = device.elapsed - t0
        assert t8 < 8 * device.cost.spmv_time(n, d.nnz)


class TestFormatSpmm:
    """ELL/HYB SpMM paths: bit-identical products, dispatch, autotuning."""

    def _operand(self, device, rng, n=60, m=40, density=0.15):
        host = random_sparse(n, m, density, rng=rng)
        return csr_to_device(device, host.to_csr()), host

    @pytest.mark.parametrize("fmt", ["ell", "hyb"])
    def test_bit_identical_to_csrmm(self, device, rng, fmt):
        from repro.cusparse.formats import convert_for_spmv
        from repro.cusparse.spmm import spmm_any

        d, _ = self._operand(device, rng)
        B = device.to_device(rng.random((40, 5)))
        ref = csrmm(d, B)
        A = convert_for_spmv(d, fmt)
        C = spmm_any(A, B)
        assert C.data.tobytes() == ref.data.tobytes()
        A.free()

    @pytest.mark.parametrize("fmt", ["ell", "hyb"])
    def test_alpha_beta_accumulate(self, device, rng, fmt):
        from repro.cusparse.formats import convert_for_spmv
        from repro.cusparse.spmm import spmm_any

        d, _ = self._operand(device, rng)
        B = device.to_device(rng.random((40, 3)))
        C0 = rng.random((60, 3))
        ref = device.to_device(C0)
        csrmm(d, B, ref, alpha=0.5, beta=-1.0)
        A = convert_for_spmv(d, fmt)
        C = device.to_device(C0)
        spmm_any(A, B, C, alpha=0.5, beta=-1.0)
        assert C.data.tobytes() == ref.data.tobytes()
        A.free()

    def test_spmm_any_rejects_unknown_operand(self, device, rng):
        from repro.cusparse.spmm import spmm_any

        with pytest.raises(SparseValueError):
            spmm_any(object(), device.zeros((4, 2)))

    def test_kernel_names_recorded(self, device, rng):
        from repro.cusparse.formats import convert_for_spmv
        from repro.cusparse.spmm import spmm_any

        d, _ = self._operand(device, rng)
        B = device.zeros((40, 4))
        spmm_any(convert_for_spmv(d, "ell"), B)
        spmm_any(convert_for_spmv(d, "hyb"), B)
        names = [e.name for e in device.timeline if e.category == "kernel"]
        assert any(n == "cusparseDellmm" for n in names)
        assert any(n.startswith("cusparseDhybmm") for n in names)


class TestSpmmAutotune:
    def test_invalid_args_rejected(self, device, rng):
        from repro.cusparse.formats import autotune_spmm_format
        from repro.errors import SparseFormatError

        host = random_sparse(30, 30, 0.2, rng=rng).to_csr()
        with pytest.raises(SparseFormatError):
            autotune_spmm_format(host.indptr, device.cost, p=0)
        with pytest.raises(SparseFormatError):
            autotune_spmm_format(
                host.indptr, device.cost, p=4, conversion_uses=0
            )

    def test_uniform_rows_favor_ell_when_conversion_free(self, device):
        """One nonzero per row (the k-means membership shape): ELL wins on
        the kernel alone."""
        from repro.cusparse.formats import autotune_spmm_format

        indptr = np.arange(5001, dtype=np.int64)  # exactly 1 nnz per row
        d = autotune_spmm_format(indptr, device.cost, p=16)
        assert d.format == "ell"

    def test_conversion_pricing_shifts_choice_to_csr(self, device):
        """Charging the per-iteration CSR->ELL rebuild flips the same
        matrix back to CSR — the conversion never amortizes at one use."""
        from repro.cusparse.formats import autotune_spmm_format

        indptr = np.arange(2001, dtype=np.int64)
        free = autotune_spmm_format(indptr, device.cost, p=16)
        priced = autotune_spmm_format(
            indptr, device.cost, p=16, conversion_uses=1
        )
        assert free.format == "ell"
        assert priced.format == "csr"

    def test_many_uses_amortize_conversion(self, device):
        from repro.cusparse.formats import autotune_spmm_format

        indptr = np.arange(2001, dtype=np.int64)
        amortized = autotune_spmm_format(
            indptr, device.cost, p=16, conversion_uses=10_000
        )
        assert amortized.format == "ell"

    def test_decision_reports_all_candidates(self, device, rng):
        from repro.cusparse.formats import autotune_spmm_format

        host = random_sparse(200, 200, 0.05, rng=rng).to_csr()
        d = autotune_spmm_format(host.indptr, device.cost, p=8)
        assert set(d.predicted_s) == {"csr", "ell", "hyb"}
        assert d.format in d.predicted_s
        assert d.hyb_width >= 1
