"""Device sparse x dense products (csrmm)."""

import numpy as np
import pytest

from repro.cusparse.matrices import csr_to_device
from repro.cusparse.spmm import csrmm
from repro.errors import SparseValueError
from repro.sparse.construct import random_sparse


class TestCsrmm:
    def test_matches_dense(self, device, rng):
        host = random_sparse(20, 15, 0.3, rng=rng)
        d = csr_to_device(device, host.to_csr())
        B = rng.random((15, 4))
        C = csrmm(d, device.to_device(B))
        assert np.allclose(C.data, host.to_dense() @ B)

    def test_alpha_beta(self, device, rng):
        host = random_sparse(10, 10, 0.4, rng=rng)
        d = csr_to_device(device, host.to_csr())
        B = rng.random((10, 3))
        C0 = rng.random((10, 3))
        dC = device.to_device(C0)
        csrmm(d, device.to_device(B), dC, alpha=-1.0, beta=2.0)
        assert np.allclose(dC.data, -(host.to_dense() @ B) + 2.0 * C0)

    def test_shape_mismatch(self, device, rng):
        host = random_sparse(10, 10, 0.4, rng=rng)
        d = csr_to_device(device, host.to_csr())
        with pytest.raises(SparseValueError):
            csrmm(d, device.zeros((11, 2)))

    def test_c_shape_mismatch(self, device, rng):
        host = random_sparse(10, 10, 0.4, rng=rng)
        d = csr_to_device(device, host.to_csr())
        with pytest.raises(SparseValueError):
            csrmm(d, device.zeros((10, 2)), device.zeros((10, 3)))

    def test_cost_scales_sublinearly_with_columns(self, device, rng):
        # cusparseDcsrmm streams the matrix structure once and reuses it
        # across the B columns, so cost grows with p but stays well under
        # p independent csrmv sweeps
        n = 2000
        host = random_sparse(n, n, 0.05, rng=rng)
        d = csr_to_device(device, host.to_csr())
        B1 = device.zeros((n, 1))
        B8 = device.zeros((n, 8))
        # warm the output buckets so the timed windows are kernel-only
        # (cache hits skip the cudaMalloc latency charge)
        csrmm(d, B1).free()
        csrmm(d, B8).free()
        t0 = device.elapsed
        csrmm(d, B1)
        t1 = device.elapsed - t0
        t0 = device.elapsed
        csrmm(d, B8)
        t8 = device.elapsed - t0
        assert t8 > 2 * t1, "more columns must cost more"
        assert t8 < 8 * t1, "matrix traffic must amortize across columns"

    def test_cheaper_than_column_sweeps(self, device, rng):
        n = 2000
        host = random_sparse(n, n, 0.05, rng=rng)
        d = csr_to_device(device, host.to_csr())
        B = device.zeros((n, 8))
        csrmm(d, B).free()  # warm the output bucket
        t0 = device.elapsed
        csrmm(d, B)
        t8 = device.elapsed - t0
        assert t8 < 8 * device.cost.spmv_time(n, d.nnz)
