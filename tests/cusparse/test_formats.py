"""ELL/HYB device formats and the SpMV format autotuner."""

import numpy as np
import pytest

from repro.cusparse.formats import (
    FormatDecision,
    SPMV_FORMATS,
    autotune_format,
    convert_for_spmv,
    csr_to_ell,
    csr_to_hyb,
    hyb_ell_width,
    row_stats,
)
from repro.cusparse.matrices import csr_to_device
from repro.cusparse.spmv import csrmv, ellmv, hybmv, spmv_any
from repro.errors import SparseFormatError
from repro.sparse.construct import random_sparse


@pytest.fixture
def dcsr(device, small_sym_csr):
    return csr_to_device(device, small_sym_csr)


@pytest.fixture
def dx(device, rng, small_sym_csr):
    return device.to_device(rng.standard_normal(small_sym_csr.shape[1]))


def _uniform_indptr(n_rows: int, per_row: int) -> np.ndarray:
    return np.arange(n_rows + 1, dtype=np.int64) * per_row


class TestRowStats:
    def test_uniform_rows(self):
        s = row_stats(_uniform_indptr(10, 4))
        assert (s.n_rows, s.nnz, s.mean, s.max) == (10, 40, 4.0, 4)
        assert s.variance == 0.0
        assert s.padding_ratio == 1.0

    def test_skewed_rows(self):
        s = row_stats(np.array([0, 1, 2, 12], dtype=np.int64))
        assert s.max == 10
        assert s.padding_ratio == pytest.approx(3 * 10 / 12)
        assert s.variance > 0

    def test_empty_matrix(self):
        s = row_stats(np.array([0], dtype=np.int64))
        assert s.n_rows == 0 and s.nnz == 0


class TestConversions:
    def test_ell_preserves_every_entry(self, device, dcsr):
        ell = csr_to_ell(dcsr)
        dense = np.zeros(dcsr.shape)
        mask = ell.cols.data >= 0
        rows = np.nonzero(mask)[0]
        dense[rows, ell.cols.data[mask]] = ell.val.data[mask]
        assert np.array_equal(dense, dcsr.to_host().to_dense())

    def test_ell_width_defaults_to_longest_row(self, device, dcsr):
        ell = csr_to_ell(dcsr)
        assert ell.width == int(dcsr.row_lengths().max())

    def test_ell_too_narrow_rejected(self, device, dcsr):
        with pytest.raises(SparseFormatError):
            csr_to_ell(dcsr, width=1)

    def test_hyb_splits_ell_plus_coo(self, device, dcsr):
        hyb = csr_to_hyb(dcsr)
        assert hyb.nnz_ell + hyb.nnz_coo == dcsr.nnz
        assert hyb.width == hyb_ell_width(row_stats(dcsr.indptr.data))

    def test_hyb_tail_holds_the_spill(self, device, dcsr):
        counts = dcsr.row_lengths()
        hyb = csr_to_hyb(dcsr, width=2)
        assert hyb.nnz_coo == int(np.maximum(counts - 2, 0).sum())

    def test_conversion_charges_a_kernel(self, device, dcsr):
        n0 = device.kernel_launches
        t0 = device.elapsed
        csr_to_ell(dcsr)
        assert device.kernel_launches == n0 + 1
        assert device.elapsed > t0

    def test_free_returns_device_memory(self, device, dcsr):
        used0 = device.allocator.used_bytes
        ell = csr_to_ell(dcsr)
        assert device.allocator.used_bytes > used0
        ell.free()
        assert device.allocator.used_bytes == used0


class TestBitIdenticalSpmv:
    def test_all_formats_agree_exactly(self, device, dcsr, dx):
        """The invariant the pipeline's autotuning rests on: format choice
        changes charged time, never a float."""
        y_csr = csrmv(dcsr, dx).data.copy()
        y_ell = ellmv(csr_to_ell(dcsr), dx).data.copy()
        y_hyb = hybmv(csr_to_hyb(dcsr), dx).data.copy()
        assert np.array_equal(y_csr, y_ell)
        assert np.array_equal(y_csr, y_hyb)

    def test_alpha_beta_semantics(self, device, dcsr, dx, rng):
        y0 = rng.standard_normal(dcsr.shape[0])
        ref = device.to_device(y0.copy())
        csrmv(dcsr, dx, ref, alpha=2.0, beta=-0.5)
        out = device.to_device(y0.copy())
        hybmv(csr_to_hyb(dcsr), dx, out, alpha=2.0, beta=-0.5)
        assert np.array_equal(ref.data, out.data)

    def test_spmv_any_dispatches_on_type(self, device, dcsr, dx):
        assert np.array_equal(
            spmv_any(dcsr, dx).data,
            spmv_any(csr_to_ell(dcsr), dx).data,
        )
        with pytest.raises(Exception):
            spmv_any(object(), dx)

    def test_formats_charge_different_times(self, device, dcsr, dx):
        t0 = device.elapsed
        csrmv(dcsr, dx)
        t_csr = device.elapsed - t0
        ell = csr_to_ell(dcsr)
        t1 = device.elapsed
        ellmv(ell, dx)
        t_ell = device.elapsed - t1
        assert t_csr != t_ell


class TestAutotuner:
    def test_uniform_rows_prefer_ell(self, device):
        d = autotune_format(_uniform_indptr(1000, 8), device.cost)
        assert d.format == "ell"
        assert d.predicted_s["ell"] < d.predicted_s["csr"]

    def test_skewed_rows_avoid_ell(self, device):
        # one 500-entry row forces 500-wide padding on 999 sparse rows
        indptr = np.concatenate(
            [np.arange(1000, dtype=np.int64), [999 + 500]]
        )
        d = autotune_format(indptr, device.cost)
        assert d.format != "ell"
        assert d.predicted_s["ell"] > d.predicted_s["hyb"]

    def test_picks_predicted_minimum(self, device, dcsr):
        d = autotune_format(dcsr.indptr.data, device.cost)
        best = min(d.predicted_s.values())
        assert d.predicted_s[d.format] == pytest.approx(best)

    def test_restricted_candidates(self, device):
        d = autotune_format(
            _uniform_indptr(100, 4), device.cost, formats=("csr",)
        )
        assert d.format == "csr"
        assert set(d.predicted_s) == {"csr"}
        with pytest.raises(SparseFormatError):
            autotune_format(_uniform_indptr(100, 4), device.cost,
                            formats=("dia",))

    def test_decision_is_deterministic(self, device, dcsr):
        a = autotune_format(dcsr.indptr.data, device.cost)
        b = autotune_format(dcsr.indptr.data, device.cost)
        assert a.as_dict() == b.as_dict()

    def test_as_dict_reports_evidence(self, device, dcsr):
        d = autotune_format(dcsr.indptr.data, device.cost).as_dict()
        assert d["format"] in SPMV_FORMATS
        assert set(d["predicted_spmv_s"]) == set(SPMV_FORMATS)
        assert d["row_mean"] > 0 and d["row_max"] > 0
        assert d["padding_ratio"] >= 1.0


class TestMeasuredEvidence:
    def test_no_measurements_means_all_predicted(self, device, dcsr):
        d = autotune_format(dcsr.indptr.data, device.cost)
        assert d.measured_s == {}
        assert all(v == "predicted" for v in d.evidence.values())
        assert set(d.evidence) == set(d.predicted_s)

    def test_measured_time_overrides_prediction(self, device):
        # uniform rows predict ELL cheapest; a measured CSR time far below
        # every prediction must win the ranking
        indptr = _uniform_indptr(1000, 8)
        base = autotune_format(indptr, device.cost)
        assert base.format == "ell"
        fast_csr = min(base.predicted_s.values()) / 10.0
        d = autotune_format(indptr, device.cost, measured={"csr": fast_csr})
        assert d.format == "csr"
        assert d.evidence["csr"] == "measured"
        assert d.evidence["ell"] == "predicted"
        assert d.measured_s == {"csr": fast_csr}

    def test_measured_equal_to_predicted_keeps_ranking(self, device, dcsr):
        # simulated measurements replay the cost model, so feeding the
        # winner's own prediction back must not flip the decision
        base = autotune_format(dcsr.indptr.data, device.cost)
        d = autotune_format(
            dcsr.indptr.data, device.cost,
            measured={base.format: base.predicted_s[base.format]},
        )
        assert d.format == base.format
        assert d.evidence[base.format] == "measured"

    def test_irrelevant_measurements_ignored(self, device):
        # a measurement for a format outside the candidate set is dropped
        d = autotune_format(
            _uniform_indptr(100, 4), device.cost, formats=("csr",),
            measured={"ell": 1e-9},
        )
        assert d.format == "csr"
        assert d.measured_s == {}

    def test_as_dict_includes_measured_keys(self, device, dcsr):
        d = autotune_format(
            dcsr.indptr.data, device.cost, measured={"csr": 1e-3}
        ).as_dict()
        assert d["measured_spmv_s"] == {"csr": 1e-3}
        assert d["evidence"]["csr"] == "measured"


class TestDeviceMeasurementFeedback:
    """The device accumulates per-(format, shape) SpMV timings and the
    eigensolver replays them into the next autotune call."""

    def test_note_and_average(self, device):
        device.note_spmv_time("csr", 100, 500, 2e-5)
        device.note_spmv_time("csr", 100, 500, 4e-5)
        device.note_spmv_time("ell", 100, 500, 1e-5)
        device.note_spmv_time("csr", 200, 900, 9e-5)  # different shape
        out = device.measured_spmv_times(100, 500)
        assert out["csr"] == pytest.approx(3e-5)
        assert out["ell"] == pytest.approx(1e-5)
        assert "hyb" not in out
        assert device.measured_spmv_times(999, 1) == {}

    def test_second_solve_reports_measured_evidence(self, sbm_graph):
        from repro.core.pipeline import SpectralClustering
        from repro.cuda.device import Device

        W, _ = sbm_graph
        dev = Device()
        m1 = SpectralClustering(n_clusters=6, seed=0, device=dev).fit(graph=W)
        fd1 = m1.eig_stats["format_decision"]
        assert set(fd1["evidence"].values()) == {"predicted"}
        assert fd1["n_spmv_timed"] > 0
        assert fd1["format"] in fd1["observed_spmv_s"]
        m2 = SpectralClustering(n_clusters=6, seed=0, device=dev).fit(graph=W)
        fd2 = m2.eig_stats["format_decision"]
        assert fd2["evidence"][fd2["format"]] == "measured"
        # the replayed measurement equals the model's charge, so the
        # decision (and every clustering bit) is unchanged
        assert fd2["format"] == fd1["format"]
        assert np.array_equal(m1.labels, m2.labels)


class TestConvertForSpmv:
    def test_csr_is_identity(self, device, dcsr):
        assert convert_for_spmv(dcsr, "csr") is dcsr

    @pytest.mark.parametrize("fmt", ["ell", "hyb"])
    def test_converted_operand_matches(self, device, dcsr, dx, fmt):
        op = convert_for_spmv(dcsr, fmt)
        assert np.array_equal(spmv_any(op, dx).data, csrmv(dcsr, dx).data)

    def test_unknown_format_rejected(self, device, dcsr):
        with pytest.raises(SparseFormatError):
            convert_for_spmv(dcsr, "bsr")
