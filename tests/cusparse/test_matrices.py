"""Device sparse matrix handles and host<->device movement."""

import numpy as np
import pytest

from repro.cusparse.matrices import DeviceCOO, DeviceCSR, coo_to_device, csr_to_device
from repro.errors import SparseFormatError
from repro.sparse.construct import random_sparse


@pytest.fixture
def host_coo(rng):
    return random_sparse(20, 20, 0.2, rng=rng, symmetric=True)


class TestDeviceCOO:
    def test_upload_charges_three_h2d(self, device, host_coo):
        n0 = device.timeline.count("h2d")
        d = coo_to_device(device, host_coo)
        assert device.timeline.count("h2d") == n0 + 3
        assert d.nnz == host_coo.nnz

    def test_round_trip(self, device, host_coo):
        d = coo_to_device(device, host_coo)
        back = d.to_host()
        assert np.array_equal(back.to_dense(), host_coo.to_dense())

    def test_to_host_charges_d2h(self, device, host_coo):
        d = coo_to_device(device, host_coo)
        n0 = device.timeline.count("d2h")
        d.to_host()
        assert device.timeline.count("d2h") == n0 + 3

    def test_mismatched_arrays_rejected(self, device):
        with pytest.raises(SparseFormatError):
            DeviceCOO(
                row=device.zeros(3, dtype=np.int64),
                col=device.zeros(2, dtype=np.int64),
                val=device.zeros(3),
                shape=(5, 5),
            )

    def test_free_releases(self, device, host_coo):
        used0 = device.allocator.used_bytes
        d = coo_to_device(device, host_coo)
        d.free()
        assert device.allocator.used_bytes == used0


class TestDeviceCSR:
    def test_round_trip(self, device, host_coo):
        csr = host_coo.to_csr()
        d = csr_to_device(device, csr)
        assert np.array_equal(d.to_host().to_dense(), csr.to_dense())

    def test_indptr_length_checked(self, device):
        with pytest.raises(SparseFormatError):
            DeviceCSR(
                indptr=device.zeros(3, dtype=np.int64),
                indices=device.zeros(0, dtype=np.int64),
                val=device.zeros(0),
                shape=(5, 5),
            )

    def test_indices_val_mismatch(self, device):
        indptr = device.empty(6, dtype=np.int64)
        indptr.data[...] = 0
        with pytest.raises(SparseFormatError):
            DeviceCSR(
                indptr=indptr,
                indices=device.zeros(2, dtype=np.int64),
                val=device.zeros(3),
                shape=(5, 5),
            )

    def test_device_property(self, device, host_coo):
        d = csr_to_device(device, host_coo.to_csr())
        assert d.device is device
