"""Device format conversions (coo2csr / csr2coo / csr2csc)."""

import numpy as np
import pytest

from repro.cusparse.conversions import coo2csr, csr2coo, csr2csc
from repro.cusparse.matrices import coo_to_device, csr_to_device
from repro.errors import SparseFormatError
from repro.sparse.construct import random_sparse


@pytest.fixture
def host(rng):
    return random_sparse(15, 15, 0.25, rng=rng)


class TestCoo2Csr:
    def test_matches_host_conversion(self, device, host):
        d = coo_to_device(device, host.sorted_by_row())
        dcsr = coo2csr(d)
        assert np.array_equal(dcsr.to_host().to_dense(), host.to_dense())

    def test_unsorted_rejected_when_assumed_sorted(self, device):
        from repro.sparse.coo import COOMatrix

        coo = COOMatrix([2, 0], [0, 1], [1.0, 2.0], (3, 3))
        d = coo_to_device(device, coo)
        with pytest.raises(SparseFormatError):
            coo2csr(d)

    def test_unsorted_ok_with_device_sort(self, device):
        from repro.sparse.coo import COOMatrix

        coo = COOMatrix([2, 0], [0, 1], [1.0, 2.0], (3, 3))
        d = coo_to_device(device, coo)
        dcsr = coo2csr(d, assume_sorted=False)
        assert np.array_equal(dcsr.to_host().to_dense(), coo.to_dense())

    def test_empty_rows_handled(self, device):
        from repro.sparse.coo import COOMatrix

        coo = COOMatrix([0, 4], [1, 2], [1.0, 2.0], (5, 5))
        dcsr = coo2csr(coo_to_device(device, coo))
        assert dcsr.indptr.data.tolist() == [0, 1, 1, 1, 1, 2]

    def test_no_pcie_traffic(self, device, host):
        d = coo_to_device(device, host.sorted_by_row())
        comm0 = device.timeline.communication_time()
        coo2csr(d)
        assert device.timeline.communication_time() == comm0


class TestCsr2Coo:
    def test_round_trip(self, device, host):
        d = csr_to_device(device, host.to_csr())
        dcoo = csr2coo(d)
        assert np.array_equal(dcoo.to_host().to_dense(), host.to_dense())


class TestCsr2Csc:
    def test_is_transpose_compress(self, device, host):
        d = csr_to_device(device, host.to_csr())
        dcsc = csr2csc(d)
        # the CSC of A stored as the CSR of A^T
        assert np.array_equal(dcsc.to_host().to_dense(), host.to_dense().T)

    def test_no_pcie_traffic(self, device, host):
        d = csr_to_device(device, host.to_csr())
        comm0 = device.timeline.communication_time()
        csr2csc(d)
        assert device.timeline.communication_time() == comm0
