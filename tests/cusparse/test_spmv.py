"""Device SpMV (csrmv / coomv): correctness and cost semantics."""

import numpy as np
import pytest

from repro.cusparse.conversions import coo2csr
from repro.cusparse.matrices import coo_to_device, csr_to_device
from repro.cusparse.spmv import coomv, csrmv
from repro.errors import SparseValueError
from repro.sparse.construct import random_sparse


@pytest.fixture
def setup(device, rng):
    host = random_sparse(30, 30, 0.2, rng=rng, symmetric=True)
    dcsr = csr_to_device(device, host.to_csr())
    x = rng.random(30)
    dx = device.to_device(x)
    return host, dcsr, x, dx


class TestCsrmv:
    def test_matches_dense(self, device, setup):
        host, dcsr, x, dx = setup
        y = csrmv(dcsr, dx)
        assert np.allclose(y.data, host.to_dense() @ x)

    def test_alpha_beta(self, device, setup, rng):
        host, dcsr, x, dx = setup
        y0 = rng.random(30)
        dy = device.to_device(y0)
        csrmv(dcsr, dx, dy, alpha=2.0, beta=0.5)
        assert np.allclose(dy.data, 2.0 * (host.to_dense() @ x) + 0.5 * y0)

    def test_rows_cache_gives_same_answer(self, device, setup):
        host, dcsr, x, dx = setup
        cache = np.repeat(np.arange(30), np.diff(dcsr.indptr.data))
        y1 = csrmv(dcsr, dx)
        y2 = csrmv(dcsr, dx, rows_cache=cache)
        assert np.allclose(y1.data, y2.data)

    def test_dim_mismatch(self, device, setup):
        _, dcsr, _, _ = setup
        with pytest.raises(SparseValueError):
            csrmv(dcsr, device.zeros(31))

    def test_y_dim_mismatch(self, device, setup):
        _, dcsr, _, dx = setup
        with pytest.raises(SparseValueError):
            csrmv(dcsr, dx, device.zeros(29))

    def test_charges_one_kernel(self, device, setup):
        _, dcsr, _, dx = setup
        k0 = device.kernel_launches
        csrmv(dcsr, dx, device.empty(30))
        assert device.kernel_launches == k0 + 1


class TestCoomv:
    def test_matches_dense(self, device, rng):
        host = random_sparse(25, 25, 0.2, rng=rng)
        dcoo = coo_to_device(device, host)
        x = rng.random(25)
        y = coomv(dcoo, device.to_device(x))
        assert np.allclose(y.data, host.to_dense() @ x)

    def test_slower_than_csrmv(self, device, rng):
        """The format ablation: COO atomics cost more than CSR (why the
        pipeline converts before the eigensolver)."""
        host = random_sparse(200, 200, 0.1, rng=rng)
        dcoo = coo_to_device(device, host.sorted_by_row())
        dcsr = coo2csr(dcoo)
        x = device.to_device(rng.random(200))

        t0 = device.elapsed
        coomv(dcoo, x)
        t_coo = device.elapsed - t0
        t0 = device.elapsed
        csrmv(dcsr, x)
        t_csr = device.elapsed - t0
        assert t_coo > t_csr

    def test_dim_mismatch(self, device, rng):
        host = random_sparse(5, 5, 0.5, rng=rng)
        dcoo = coo_to_device(device, host)
        with pytest.raises(SparseValueError):
            coomv(dcoo, device.zeros(6))
