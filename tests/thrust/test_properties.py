"""Property-based tests: thrust primitives vs their NumPy oracles.

Each property creates its own :class:`Device` (hypothesis re-enters the
test body many times, which a function-scoped fixture would not survive)
and verifies both the values and the allocator balance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import thrust
from repro.cuda.device import Device

finite_doubles = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

keys_arrays = hnp.arrays(
    dtype=np.int64,
    shape=st.integers(min_value=0, max_value=64),
    elements=st.integers(min_value=-8, max_value=8),
)

value_arrays = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=0, max_value=64),
    elements=finite_doubles,
)


@settings(max_examples=60, deadline=None)
@given(keys=keys_arrays, data=st.data())
def test_sort_by_key_matches_stable_argsort(keys, data):
    vals = data.draw(
        hnp.arrays(np.float64, keys.shape, elements=finite_doubles)
    )
    device = Device()
    dk = device.to_device(keys.copy())
    dv = device.to_device(vals.copy())
    thrust.sort_by_key(dk, dv)
    order = np.argsort(keys, kind="stable")
    assert np.array_equal(dk.data, keys[order])
    assert np.array_equal(dv.data, vals[order])
    dk.free()
    dv.free()
    assert device.allocator.used_bytes == 0


@settings(max_examples=60, deadline=None)
@given(keys=keys_arrays, data=st.data())
def test_reduce_by_key_matches_numpy_oracle(keys, data):
    vals = data.draw(
        hnp.arrays(np.float64, keys.shape, elements=finite_doubles)
    )
    keys = np.sort(keys)  # reduce_by_key requires sorted keys
    device = Device()
    dk = device.to_device(keys)
    dv = device.to_device(vals)
    uk, sums = thrust.reduce_by_key(dk, dv)
    expect_keys = np.unique(keys)
    expect_sums = np.array(
        [vals[keys == u].sum() for u in expect_keys], dtype=np.float64
    )
    assert np.array_equal(uk.data, expect_keys)
    np.testing.assert_allclose(sums.data, expect_sums, rtol=1e-12, atol=1e-12)
    for b in (dk, dv, uk, sums):
        b.free()
    assert device.allocator.used_bytes == 0


@settings(max_examples=60, deadline=None)
@given(vals=value_arrays)
def test_inclusive_scan_matches_cumsum(vals):
    device = Device()
    da = device.to_device(vals)
    out = thrust.inclusive_scan(da)
    np.testing.assert_allclose(
        out.data, np.cumsum(vals), rtol=1e-12, atol=1e-9
    )
    da.free()
    if out is not da:
        out.free()
    assert device.allocator.used_bytes == 0


@settings(max_examples=60, deadline=None)
@given(
    src=hnp.arrays(
        np.float64,
        st.integers(min_value=1, max_value=64),
        elements=finite_doubles,
    ),
    data=st.data(),
)
def test_gather_matches_fancy_indexing(src, data):
    idx = data.draw(
        hnp.arrays(
            np.int64,
            st.integers(min_value=0, max_value=64),
            elements=st.integers(min_value=0, max_value=src.size - 1),
        )
    )
    device = Device()
    dsrc = device.to_device(src)
    didx = device.to_device(idx)
    out = thrust.gather(didx, dsrc)
    assert np.array_equal(out.data, src[idx])
    for b in (dsrc, didx, out):
        b.free()
    assert device.allocator.used_bytes == 0


@settings(max_examples=40, deadline=None)
@given(keys=keys_arrays, data=st.data())
def test_sort_then_reduce_consistent_with_bincount(keys, data):
    """The composed k-means pattern: sort_by_key then reduce_by_key equals
    a host-side grouped sum regardless of initial order."""
    vals = data.draw(
        hnp.arrays(np.float64, keys.shape, elements=finite_doubles)
    )
    device = Device()
    dk = device.to_device(keys.copy())
    dv = device.to_device(vals.copy())
    thrust.sort_by_key(dk, dv)
    uk, sums = thrust.reduce_by_key(dk, dv)
    expect_keys = np.unique(keys)
    expect_sums = np.array(
        [vals[keys == u].sum() for u in expect_keys], dtype=np.float64
    )
    assert np.array_equal(uk.data, expect_keys)
    np.testing.assert_allclose(sums.data, expect_sums, rtol=1e-12, atol=1e-9)
    for b in (dk, dv, uk, sums):
        b.free()
    assert device.allocator.used_bytes == 0
