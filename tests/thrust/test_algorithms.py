"""Thrust primitive semantics + properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro import thrust
from repro.cuda.device import Device
from repro.errors import DeviceArrayError


class TestGeneration:
    def test_sequence(self, device):
        s = thrust.sequence(device, 5, start=3)
        assert s.data.tolist() == [3, 4, 5, 6, 7]

    def test_fill(self, device):
        a = device.empty(4)
        thrust.fill(a, 2.5)
        assert np.all(a.data == 2.5)

    def test_copy(self, device, rng):
        a = device.to_device(rng.random(8))
        b = device.empty(8)
        thrust.copy(a, b)
        assert np.array_equal(a.data, b.data)

    def test_copy_shape_mismatch(self, device, rng):
        with pytest.raises(DeviceArrayError):
            thrust.copy(device.empty(3), device.empty(4))


class TestGatherScatter:
    def test_gather(self, device):
        src = device.to_device(np.array([10.0, 20.0, 30.0]))
        idx = device.to_device(np.array([2, 0, 2], dtype=np.int64))
        out = thrust.gather(idx, src)
        assert out.data.tolist() == [30.0, 10.0, 30.0]

    def test_gather_2d_rows(self, device, rng):
        src = device.to_device(rng.random((4, 3)))
        idx = device.to_device(np.array([3, 1], dtype=np.int64))
        out = thrust.gather(idx, src)
        assert np.array_equal(out.data, src.data[[3, 1]])

    def test_scatter(self, device):
        src = device.to_device(np.array([1.0, 2.0]))
        idx = device.to_device(np.array([2, 0], dtype=np.int64))
        dst = device.zeros(3)
        thrust.scatter(src, idx, dst)
        assert dst.data.tolist() == [2.0, 0.0, 1.0]

    def test_scatter_size_mismatch(self, device):
        with pytest.raises(DeviceArrayError):
            thrust.scatter(
                device.zeros(2),
                device.to_device(np.zeros(3, dtype=np.int64)),
                device.zeros(5),
            )


class TestTransform:
    def test_unary(self, device):
        a = device.to_device(np.array([1.0, 4.0, 9.0]))
        out = thrust.transform(a, "sqrt")
        assert np.allclose(out.data, [1, 2, 3])

    def test_binary_arrays(self, device, rng):
        a = device.to_device(rng.random(6))
        b = device.to_device(rng.random(6))
        out = thrust.transform(a, "plus", b)
        assert np.allclose(out.data, a.data + b.data)

    def test_binary_scalar(self, device, rng):
        a = device.to_device(rng.random(6))
        out = thrust.transform(a, "multiplies", 3.0)
        assert np.allclose(out.data, 3.0 * a.data)

    def test_in_place_via_out(self, device, rng):
        a = device.to_device(rng.random(6))
        expected = np.minimum(a.data, 0.5)
        b = device.full(6, 0.5)
        thrust.transform(a, "minimum", b, out=a)
        assert np.allclose(a.data, expected)

    def test_unknown_functor(self, device):
        with pytest.raises(ValueError, match="unary"):
            thrust.transform(device.zeros(3), "frobnicate")
        with pytest.raises(ValueError, match="binary"):
            thrust.transform(device.zeros(3), "frobnicate", device.zeros(3))


class TestReductionsScans:
    def test_reduce_sum(self, device):
        a = device.to_device(np.arange(10.0))
        assert thrust.reduce(a) == pytest.approx(45.0)

    def test_reduce_max_min(self, device):
        a = device.to_device(np.array([3.0, -1.0, 7.0]))
        assert thrust.reduce(a, "maximum") == 7.0
        assert thrust.reduce(a, "minimum") == -1.0

    def test_reduce_empty_sum_identity(self, device):
        assert thrust.reduce(device.empty(0)) == 0.0

    def test_min_max_element(self, device):
        a = device.to_device(np.array([3.0, -1.0, 7.0]))
        assert thrust.min_element(a) == 1
        assert thrust.max_element(a) == 2

    def test_min_element_empty_raises(self, device):
        with pytest.raises(DeviceArrayError):
            thrust.min_element(device.empty(0))

    def test_count(self, device):
        a = device.to_device(np.array([1.0, 2.0, 1.0, 1.0]))
        assert thrust.count(a, 1.0) == 3

    def test_inclusive_scan(self, device):
        a = device.to_device(np.array([1.0, 2.0, 3.0]))
        assert thrust.inclusive_scan(a).data.tolist() == [1.0, 3.0, 6.0]

    def test_exclusive_scan(self, device):
        a = device.to_device(np.array([1.0, 2.0, 3.0]))
        assert thrust.exclusive_scan(a).data.tolist() == [0.0, 1.0, 3.0]

    def test_exclusive_scan_with_init(self, device):
        a = device.to_device(np.array([1.0, 2.0]))
        assert thrust.exclusive_scan(a, init=10).data.tolist() == [10.0, 11.0]


class TestSortSearch:
    def test_sort(self, device):
        a = device.to_device(np.array([3.0, 1.0, 2.0]))
        thrust.sort(a)
        assert a.data.tolist() == [1.0, 2.0, 3.0]

    def test_sort_by_key_stable(self, device):
        keys = device.to_device(np.array([1, 0, 1, 0], dtype=np.int64))
        vals = device.to_device(np.array([10.0, 20.0, 30.0, 40.0]))
        thrust.sort_by_key(keys, vals)
        assert keys.data.tolist() == [0, 0, 1, 1]
        assert vals.data.tolist() == [20.0, 40.0, 10.0, 30.0]

    def test_sort_by_key_2d_payload(self, device, rng):
        keys_np = np.array([2, 0, 1], dtype=np.int64)
        vals_np = rng.random((3, 4))
        keys = device.to_device(keys_np)
        vals = device.to_device(vals_np)
        thrust.sort_by_key(keys, vals)
        assert np.array_equal(vals.data, vals_np[np.argsort(keys_np)])

    def test_sort_by_key_length_mismatch(self, device):
        with pytest.raises(DeviceArrayError):
            thrust.sort_by_key(
                device.to_device(np.zeros(3, dtype=np.int64)), device.zeros(4)
            )

    def test_reduce_by_key_segments(self, device):
        keys = device.to_device(np.array([0, 0, 2, 2, 2], dtype=np.int64))
        vals = device.to_device(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        uk, sums = thrust.reduce_by_key(keys, vals)
        assert uk.data.tolist() == [0, 2]
        assert sums.data.tolist() == [3.0, 12.0]

    def test_reduce_by_key_empty(self, device):
        uk, sums = thrust.reduce_by_key(
            device.empty(0, dtype=np.int64), device.empty(0)
        )
        assert uk.size == 0 and sums.size == 0

    def test_lower_upper_bound(self, device):
        arr = device.to_device(np.array([1.0, 2.0, 2.0, 4.0]))
        q = device.to_device(np.array([2.0, 3.0]))
        assert thrust.lower_bound(arr, q).data.tolist() == [1, 3]
        assert thrust.upper_bound(arr, q).data.tolist() == [3, 3]


class TestProperties:
    @given(
        data=hnp.arrays(
            np.float64,
            st.integers(1, 200),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_sort_matches_numpy(self, data):
        device = Device()
        a = device.to_device(data.copy())
        thrust.sort(a)
        assert np.array_equal(a.data, np.sort(data))

    @given(
        keys=hnp.arrays(np.int64, st.integers(1, 100), elements=st.integers(0, 10)),
    )
    @settings(max_examples=25, deadline=None)
    def test_reduce_by_key_equals_bincount(self, keys):
        device = Device()
        vals = np.ones(keys.size)
        dk = device.to_device(np.sort(keys))
        dv = device.to_device(vals)
        uk, sums = thrust.reduce_by_key(dk, dv)
        ref = np.bincount(keys)
        nz = np.flatnonzero(ref)
        assert np.array_equal(uk.data, nz)
        assert np.allclose(sums.data, ref[nz])

    @given(
        data=hnp.arrays(
            np.float64,
            st.integers(1, 100),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_scan_matches_cumsum(self, data):
        device = Device()
        a = device.to_device(data)
        assert np.allclose(thrust.inclusive_scan(a).data, np.cumsum(data))

    def test_cross_device_rejected(self, rng):
        d1, d2 = Device(), Device()
        a = d1.to_device(rng.random(3))
        b = d2.to_device(rng.random(3))
        with pytest.raises(DeviceArrayError):
            thrust.transform(a, "plus", b)

    def test_host_array_rejected(self, device):
        with pytest.raises(DeviceArrayError):
            thrust.reduce(np.zeros(3))  # type: ignore[arg-type]


class TestScratchRouting:
    """Thrust temp storage rides the caching allocator (ThrustAllocator
    pattern): sort double buffers and CUB scan state show up as scratch
    traffic in allocator stats, not raw modeled cudaMalloc per call."""

    def test_sort_scratch_hits_after_warmup(self, device):
        import numpy as np
        from repro import thrust

        a = device.to_device(np.random.default_rng(0).random(1024))
        thrust.sort(a)  # cold: scratch miss reserves the double buffer
        stats0 = device.alloc_stats()
        assert stats0["scratch_requests"] == 1
        thrust.sort(a)  # warm: the parked buffer serves it
        stats1 = device.alloc_stats()
        assert stats1["scratch_requests"] == 2
        assert stats1["scratch_hits"] == stats0["scratch_hits"] + 1

    def test_scan_scratch_counted_separately_from_arrays(self, device):
        import numpy as np
        from repro import thrust

        a = device.to_device(np.arange(4096, dtype=np.int64))
        hits0 = device.alloc_stats()["hits"] + device.alloc_stats()["misses"]
        thrust.inclusive_scan(a, out=device.empty(a.shape, dtype=a.dtype))
        stats = device.alloc_stats()
        # one array alloc (the out buffer we made), scratch kept apart
        assert stats["hits"] + stats["misses"] == hits0 + 1
        assert stats["scratch_requests"] == 1

    def test_sort_by_key_scratch_covers_both_buffers(self, device):
        import numpy as np
        from repro import thrust

        keys = device.to_device(np.array([3, 1, 2], dtype=np.int64))
        vals = device.to_device(np.arange(6, dtype=np.float64).reshape(3, 2))
        thrust.sort_by_key(keys, vals)
        stats = device.alloc_stats()
        assert stats["scratch_bytes"] >= keys.nbytes + vals.nbytes
        assert device.allocator.used_bytes == keys.nbytes + vals.nbytes
