"""Exception hierarchy contract: everything catchable via ReproError."""

import inspect

import pytest

from repro import errors


def _all_error_classes():
    return [
        obj
        for _, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for cls in _all_error_classes():
            assert issubclass(cls, errors.ReproError), cls

    def test_cuda_errors_grouped(self):
        for cls in (
            errors.DeviceMemoryError,
            errors.InvalidKernelLaunch,
            errors.DeviceArrayError,
            errors.StreamError,
        ):
            assert issubclass(cls, errors.CudaError)

    def test_sparse_value_error_is_format_error(self):
        assert issubclass(errors.SparseValueError, errors.SparseFormatError)

    def test_rci_error_is_eigensolver_error(self):
        assert issubclass(
            errors.ReverseCommunicationError, errors.EigensolverError
        )

    def test_single_catch_covers_library(self, rng):
        """One except clause suffices for any library failure mode."""
        from repro.sparse.coo import COOMatrix

        with pytest.raises(errors.ReproError):
            COOMatrix([99], [0], [1.0], (2, 2))

    def test_all_documented(self):
        for cls in _all_error_classes():
            assert cls.__doc__, f"{cls.__name__} lacks a docstring"
