"""Allocator hygiene: no run — clean, recovered, or failed — leaks device
memory."""

import numpy as np
import pytest

from repro.chaos import DISABLED, FaultPlan, FaultSpec
from repro.core.pipeline import SpectralClustering
from repro.cuda.device import Device
from repro.errors import ReproError


def _fit(device, W, **kw):
    return SpectralClustering(
        n_clusters=6, seed=0, device=device, **kw
    ).fit(graph=W)


class TestZeroLiveBytes:
    @pytest.mark.parametrize("objective", ["ncut", "ratiocut"])
    @pytest.mark.parametrize("operator", ["sym", "rw"])
    def test_clean_run(self, sbm_graph, objective, operator):
        W, _ = sbm_graph
        device = Device()
        _fit(device, W, objective=objective, operator=operator)
        assert device.allocator.used_bytes == 0
        assert device.allocator.peak_bytes > 0

    def test_clean_point_run(self, blobs):
        X, _, k = blobs
        n = X.shape[0]
        ii, jj = np.triu_indices(n, 1)
        d2 = ((X[ii] - X[jj]) ** 2).sum(axis=1)
        sel = d2 < np.quantile(d2, 0.04)
        edges = np.stack([ii[sel], jj[sel]], axis=1)
        device = Device()
        SpectralClustering(
            n_clusters=k, similarity="expdecay", sigma=2.0, seed=0,
            device=device,
        ).fit(X=X, edges=edges)
        assert device.allocator.used_bytes == 0

    @pytest.mark.parametrize(
        "spec",
        [
            FaultSpec(site="cusparse.*mv", fault="transient", nth=3,
                      stage="eigensolver"),
            FaultSpec(site="cuda.alloc", fault="oom", nth=1, stage="kmeans"),
            FaultSpec(site="cuda.kernel:ScaleElements*", fault="transient",
                      prob=1.0, max_fires=None),
            FaultSpec(site="cuda.kernel:fused_assign", fault="transient",
                      prob=1.0, max_fires=None, stage="kmeans"),
            FaultSpec(site="cusparse.*mv", fault="transient",
                      prob=1.0, max_fires=None, stage="eigensolver"),
        ],
        ids=["retry", "oom-degrade", "lap-fallback", "km-fallback",
             "eig-fallback"],
    )
    def test_recovered_run(self, sbm_graph, spec):
        W, _ = sbm_graph
        device = Device()
        _fit(device, W, chaos=FaultPlan([spec]))
        assert device.allocator.used_bytes == 0

    @pytest.mark.parametrize(
        "site,stage,fault",
        [
            ("cuda.h2d", "similarity", "transfer"),
            ("cusparse.coomv", "laplacian", "transient"),
            ("cuda.kernel:*", "laplacian", "transient"),
            ("cuda.alloc", "laplacian", "oom"),
            ("cusparse.*mv", "eigensolver", "transient"),
            ("cuda.d2h", "eigensolver", "transfer"),
            ("cuda.alloc", "eigensolver", "oom"),
            ("cuda.kernel:fused_assign", "kmeans", "transient"),
            ("cuda.alloc", "kmeans", "oom"),
            ("cuda.h2d", "kmeans", "transfer"),
        ],
    )
    def test_failed_run_without_resilience(self, sbm_graph, site, stage, fault):
        W, _ = sbm_graph
        device = Device()
        plan = FaultPlan(
            [FaultSpec(site=site, fault=fault, nth=1, stage=stage)]
        )
        with pytest.raises(ReproError):
            _fit(device, W, chaos=plan, resilience=DISABLED)
        assert plan.n_fired == 1
        assert device.allocator.used_bytes == 0

    def test_repeated_runs_do_not_accumulate(self, sbm_graph):
        W, _ = sbm_graph
        device = Device()
        for _ in range(3):
            _fit(device, W)
            assert device.allocator.used_bytes == 0
