"""The chaos matrix: stage × fault type against the full pipeline.

Every cell runs the pipeline with one injected fault and requires either
(a) completion with exactly the clean run's labels, or (b) a typed
:class:`~repro.errors.ReproError` — never a crash, never silent corruption.
A second sweep confirms each canonical fault site is genuinely exercised.
"""

import numpy as np
import pytest

from repro.chaos import DISABLED, FaultPlan, FaultSpec, ResiliencePolicy, chaos
from repro.core.pipeline import SpectralClustering
from repro.cuda.device import Device
from repro.cuda.stream import Stream
from repro.errors import ReproError
from repro.metrics.external import adjusted_rand_index

#: one representative fault site per (stage, fault-type) cell
MATRIX = [
    ("similarity", "oom", FaultSpec(site="cuda.alloc", fault="oom",
                                    nth=1, stage="similarity")),
    ("similarity", "transfer", FaultSpec(site="cuda.h2d", fault="transfer",
                                         nth=1, stage="similarity")),
    ("similarity", "transient", FaultSpec(site="cuda.h2d", fault="transient",
                                          nth=2, stage="similarity")),
    ("eigensolver", "oom", FaultSpec(site="cuda.alloc", fault="oom",
                                     nth=1, stage="eigensolver")),
    ("eigensolver", "transfer", FaultSpec(site="cuda.d2h", fault="transfer",
                                          nth=3, stage="eigensolver")),
    ("eigensolver", "transient", FaultSpec(site="cusparse.*mv",
                                           fault="transient", nth=4,
                                           stage="eigensolver")),
    ("kmeans", "oom", FaultSpec(site="cuda.alloc", fault="oom",
                                nth=2, stage="kmeans")),
    ("kmeans", "transfer", FaultSpec(site="cuda.h2d", fault="transfer",
                                     nth=1, stage="kmeans")),
    ("kmeans", "transient", FaultSpec(site="cuda.kernel:fused_assign",
                                      fault="transient", nth=1,
                                      stage="kmeans")),
]


@pytest.fixture
def clean_labels(sbm_graph):
    W, _ = sbm_graph
    return SpectralClustering(n_clusters=6, seed=0).fit(graph=W).labels


class TestChaosMatrix:
    @pytest.mark.parametrize(
        "stage,fault,spec", MATRIX, ids=[f"{s}-{f}" for s, f, _ in MATRIX]
    )
    def test_resilient_run_matches_clean_labels(
        self, sbm_graph, clean_labels, stage, fault, spec
    ):
        W, _ = sbm_graph
        plan = FaultPlan([spec])
        res = SpectralClustering(n_clusters=6, seed=0, chaos=plan).fit(graph=W)
        assert plan.n_fired >= 1, "the planned fault never fired"
        assert len(res.fault_events) == plan.n_fired
        assert stage in res.degraded_stages
        assert np.array_equal(res.labels, clean_labels)

    @pytest.mark.parametrize(
        "stage,fault,spec", MATRIX, ids=[f"{s}-{f}" for s, f, _ in MATRIX]
    )
    def test_unprotected_run_raises_typed_error(
        self, sbm_graph, stage, fault, spec
    ):
        W, _ = sbm_graph
        plan = FaultPlan([spec])
        sc = SpectralClustering(
            n_clusters=6, seed=0, chaos=plan, resilience=DISABLED
        )
        with pytest.raises(ReproError):
            sc.fit(graph=W)
        assert plan.n_fired == 1

    def test_same_chaos_seed_identical_runs(self, sbm_graph):
        W, _ = sbm_graph
        a = SpectralClustering(n_clusters=6, seed=0, chaos=1234).fit(graph=W)
        b = SpectralClustering(n_clusters=6, seed=0, chaos=1234).fit(graph=W)
        assert np.array_equal(a.labels, b.labels)
        assert [
            (e.site, e.stage, e.fault, e.spec_index, e.call_index)
            for e in a.fault_events
        ] == [
            (e.site, e.stage, e.fault, e.spec_index, e.call_index)
            for e in b.fault_events
        ]


class TestCpuFallback:
    def test_persistent_kernel_fault_falls_back_and_matches(
        self, sbm_graph, clean_labels
    ):
        W, truth = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cuda.kernel:ScaleElements*", fault="transient",
                       prob=1.0, max_fires=None)]
        )
        res = SpectralClustering(n_clusters=6, seed=0, chaos=plan).fit(graph=W)
        assert res.resilience["laplacian"]["fallback"] == "cpu"
        assert adjusted_rand_index(res.labels, clean_labels) == pytest.approx(1.0)

    def test_dead_spmv_finishes_on_host_bit_identically(
        self, sbm_graph, clean_labels
    ):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.*mv", fault="transient",
                       prob=1.0, max_fires=None, stage="eigensolver")]
        )
        res = SpectralClustering(n_clusters=6, seed=0, chaos=plan).fit(graph=W)
        rec = res.resilience["eigensolver"]
        assert rec["fallback"] == "cpu"
        assert rec["resumes"] == ResiliencePolicy().max_resumes
        # host fallback performs csrmv's exact arithmetic -> same labels
        assert np.array_equal(res.labels, clean_labels)

    def test_kmeans_fallback_recovers_truth(self, sbm_graph):
        W, truth = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cuda.kernel:fused_assign", fault="transient",
                       prob=1.0, max_fires=None, stage="kmeans")]
        )
        res = SpectralClustering(n_clusters=6, seed=0, chaos=plan).fit(graph=W)
        assert res.resilience["kmeans"]["fallback"] == "cpu"
        assert adjusted_rand_index(res.labels, truth) == pytest.approx(1.0)

    def test_oom_degrades_tile_size_not_results(self, sbm_graph, clean_labels):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cuda.alloc", fault="oom", nth=1, stage="kmeans")]
        )
        res = SpectralClustering(n_clusters=6, seed=0, chaos=plan).fit(graph=W)
        assert res.resilience["kmeans"]["degrade_steps"] >= 1
        assert np.array_equal(res.labels, clean_labels)

    def test_summary_reports_recovery(self, sbm_graph):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.*mv", fault="transient", nth=3,
                       stage="eigensolver")]
        )
        res = SpectralClustering(n_clusters=6, seed=0, chaos=plan).fit(graph=W)
        s = res.summary()
        assert "injected faults fired: 1" in s
        assert "resilience[eigensolver]" in s


class TestPointInputChaos:
    def test_similarity_stage_falls_back_to_host_build(self, blobs):
        X, truth, k = blobs
        n = X.shape[0]
        rng = np.random.default_rng(0)
        ii, jj = np.triu_indices(n, 1)
        d2 = ((X[ii] - X[jj]) ** 2).sum(axis=1)
        sel = d2 < np.quantile(d2, 0.04)
        edges = np.stack([ii[sel], jj[sel]], axis=1)
        kw = dict(n_clusters=k, similarity="expdecay", sigma=2.0, seed=0)
        clean = SpectralClustering(**kw).fit(X=X, edges=edges)
        plan = FaultPlan(
            [FaultSpec(site="cuda.kernel:*", fault="transient",
                       prob=1.0, max_fires=None, stage="similarity")]
        )
        res = SpectralClustering(**kw, chaos=plan).fit(X=X, edges=edges)
        assert res.resilience["similarity"]["fallback"] == "cpu"
        assert adjusted_rand_index(res.labels, clean.labels) == pytest.approx(1.0)


class TestEverySiteFires:
    """Each canonical fault site must be reachable by at least one workload."""

    def _pipeline_sites(self, sbm_graph, site, stage=None, **kw):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site=site, fault="transient", nth=1, stage=stage)]
        )
        sc = SpectralClustering(
            n_clusters=6, seed=0, chaos=plan, resilience=DISABLED, **kw
        )
        with pytest.raises(ReproError):
            sc.fit(graph=W)
        assert plan.n_fired == 1

    @pytest.mark.parametrize(
        "site,stage,kw",
        [
            ("cuda.alloc", None, {}),
            ("cuda.h2d", None, {}),
            ("cuda.d2h", None, {}),
            ("cuda.kernel:*", "laplacian", {}),
            ("cusparse.csrmv", None, {"eig_spmv_format": "csr"}),
            ("cusparse.coomv", None, {}),
            ("cusparse.ellmv", None, {"eig_spmv_format": "ell"}),
            ("cusparse.hybmv", None, {"eig_spmv_format": "hyb"}),
            ("cusparse.csr2ell", None, {"eig_spmv_format": "ell"}),
            ("cusparse.csr2hyb", None, {"eig_spmv_format": "hyb"}),
            ("cuda.kernel:fused_assign", "kmeans", {}),
            ("cuda.kernel:label_histogram", "kmeans", {}),
            ("cublas.*", "kmeans", {"kmeans_fused": False}),
        ],
        ids=lambda v: v if isinstance(v, str) else None,
    )
    def test_pipeline_reaches_site(self, sbm_graph, site, stage, kw):
        self._pipeline_sites(sbm_graph, site, stage, **kw)

    @pytest.mark.parametrize("site", ["cuda.stream.sync", "cuda.stream.event"])
    def test_stream_sites(self, device, site):
        plan = FaultPlan([FaultSpec(site=site, fault="transient", nth=1)])
        stream = Stream(device)
        with chaos(plan):
            with pytest.raises(ReproError):
                if site == "cuda.stream.sync":
                    stream.synchronize()
                else:
                    stream.record_event()
        assert plan.n_fired == 1
