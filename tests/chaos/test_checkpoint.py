"""Eigensolver checkpoint/restart: resume must be bit-identical."""

import numpy as np
import pytest

from repro.chaos import DISABLED, FaultPlan, FaultSpec, ResiliencePolicy
from repro.core.workflow import hybrid_eigensolver
from repro.cusparse.matrices import csr_to_device
from repro.errors import EigensolverError
from repro.linalg.eigsolver import SymEigProblem
from repro.linalg.rci import LanczosCheckpoint


def _solve(A, k=4, checkpoint=None, cps=None):
    prob = SymEigProblem(
        n=A.shape[0], k=k, seed=0, maxiter=300,
        checkpoint=checkpoint,
        checkpoint_cb=(cps.append if cps is not None else None),
    )
    while not prob.converged():
        prob.take_step()
        if prob.needs_matvec():
            prob.put_vector(A.matvec(prob.get_vector()))
    return prob.find_eigenvectors()


class TestCheckpointResume:
    def test_resume_is_bit_identical(self, small_sym_csr):
        A = small_sym_csr
        cps = []
        theta_full, U_full = _solve(A, cps=cps)
        assert len(cps) >= 2, "solver should checkpoint every restart cycle"
        # resume from a mid-run snapshot and finish the same solve
        theta_res, U_res = _solve(A, checkpoint=cps[len(cps) // 2])
        assert np.array_equal(theta_full, theta_res)
        assert np.array_equal(U_full, U_res)

    def test_ritz_values_close_from_any_checkpoint(self, small_sym_csr):
        A = small_sym_csr
        cps = []
        theta_full, _ = _solve(A, cps=cps)
        for cp in cps:
            theta_res, _ = _solve(A, checkpoint=cp)
            np.testing.assert_allclose(theta_res, theta_full, atol=1e-8)

    def test_counters_are_cumulative_across_resume(self, small_sym_csr):
        A = small_sym_csr
        cps = []
        prob = SymEigProblem(
            n=A.shape[0], k=4, seed=0, maxiter=300, checkpoint_cb=cps.append
        )
        while not prob.converged():
            prob.take_step()
            if prob.needs_matvec():
                prob.put_vector(A.matvec(prob.get_vector()))
        prob.find_eigenvectors()
        full = prob.result
        cp = cps[-1]
        assert cp.n_op <= full.n_op
        assert cp.n_restarts <= full.n_restarts

        prob2 = SymEigProblem(n=A.shape[0], k=4, seed=0, maxiter=300,
                              checkpoint=cp)
        while not prob2.converged():
            prob2.take_step()
            if prob2.needs_matvec():
                prob2.put_vector(A.matvec(prob2.get_vector()))
        prob2.find_eigenvectors()
        assert prob2.result.n_op == full.n_op
        assert prob2.result.n_restarts == full.n_restarts

    def test_validate_rejects_mismatched_problem(self, small_sym_csr):
        A = small_sym_csr
        cps = []
        _solve(A, cps=cps)
        cp = cps[0]
        # validation happens when the driver generator first runs
        with pytest.raises(EigensolverError):
            SymEigProblem(n=A.shape[0], k=5, seed=0, checkpoint=cp).take_step()
        with pytest.raises(EigensolverError):
            SymEigProblem(
                n=A.shape[0] + 1, k=4, seed=0, checkpoint=cp
            ).take_step()

    def test_checkpoint_nbytes_positive(self, small_sym_csr):
        cps = []
        _solve(small_sym_csr, cps=cps)
        assert all(isinstance(cp, LanczosCheckpoint) for cp in cps)
        assert all(cp.nbytes > 0 for cp in cps)


class TestHybridResume:
    def test_midsolve_fault_resumes_from_checkpoint(
        self, device, small_sym_csr
    ):
        A = csr_to_device(device, small_sym_csr)
        clean_theta, clean_U, clean_stats = hybrid_eigensolver(
            device, A, k=4, seed=0, spmv_format="csr"
        )
        # three consecutive transients exhaust one round trip's retry
        # budget, forcing a checkpoint resume (not a fallback)
        plan = FaultPlan(
            [FaultSpec(site="cusparse.csrmv", fault="transient",
                       prob=1.0, max_fires=3)]
        )
        from repro.chaos import chaos

        with chaos(plan):
            theta, U, stats = hybrid_eigensolver(
                device, A, k=4, seed=0, policy=ResiliencePolicy(),
                spmv_format="csr",
            )
        assert plan.n_fired == 3
        assert stats.n_resumes == 1
        assert stats.fallback is None
        np.testing.assert_allclose(theta, clean_theta, atol=1e-8)
        A.free()

    def test_disabled_policy_lets_fault_escape(self, device, small_sym_csr):
        A = csr_to_device(device, small_sym_csr)
        plan = FaultPlan(
            [FaultSpec(site="cusparse.csrmv", fault="transient", nth=2)]
        )
        from repro.chaos import chaos
        from repro.errors import TransientKernelError

        with chaos(plan):
            with pytest.raises(TransientKernelError):
                hybrid_eigensolver(device, A, k=4, seed=0, policy=DISABLED,
                                   spmv_format="csr")
        A.free()
