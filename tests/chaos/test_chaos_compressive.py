"""Chaos coverage for the compressive tier.

Three new fault sites ship with the subsystem: the filter-phase SpMM
(``compressive.filter``), the downsample gather (``compressive.gather``)
and the lift's interpolation solve (``compressive.solve``) — plus the
shared ``cusparse.*mm`` kernel sites every operator application already
crosses.  The resilience contract matches the eigensolver paths:
transient faults retry bit-identically, persistent faults finish on the
host with identical arithmetic, and a disabled policy surfaces a typed
error.
"""

import numpy as np
import pytest

from repro.chaos import DISABLED, FaultPlan, FaultSpec
from repro.chaos.plan import KNOWN_SITES
from repro.core.pipeline import SpectralClustering
from repro.errors import ReproError

K = 6


def _fit(W, **kw):
    return SpectralClustering(n_clusters=K, seed=0, **kw).fit(graph=W)


@pytest.fixture
def clean(sbm_graph):
    W, _ = sbm_graph
    return _fit(W, embedding="compressive")


@pytest.fixture
def clean_sampled(sbm_graph):
    W, _ = sbm_graph
    return _fit(W, embedding="compressive", sample_frac=0.5)


class TestFilterChaos:
    def test_transient_filter_fault_retries_bit_identically(
        self, sbm_graph, clean
    ):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="compressive.filter", fault="transient",
                       nth=3, stage="eigensolver")]
        )
        res = _fit(W, embedding="compressive", chaos=plan)
        assert plan.n_fired >= 1
        assert res.eig_stats["spmv_retries"] >= 1
        assert np.array_equal(res.labels, clean.labels)
        assert res.embedding.tobytes() == clean.embedding.tobytes()

    def test_transient_spmm_kernel_fault_retries(self, sbm_graph, clean):
        """The shared cusparse kernel sites fire inside the tier too."""
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.*mm", fault="transient",
                       nth=2, stage="eigensolver")]
        )
        res = _fit(W, embedding="compressive", chaos=plan)
        assert plan.n_fired >= 1
        assert np.array_equal(res.labels, clean.labels)
        assert res.embedding.tobytes() == clean.embedding.tobytes()

    def test_dead_filter_falls_back_to_host_bit_identically(
        self, sbm_graph, clean
    ):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="compressive.filter", fault="transient",
                       prob=1.0, max_fires=None, stage="eigensolver")]
        )
        res = _fit(W, embedding="compressive", chaos=plan)
        assert res.eig_stats["fallback"] == "cpu"
        assert np.array_equal(res.labels, clean.labels)
        assert res.embedding.tobytes() == clean.embedding.tobytes()

    def test_oom_mid_solve_resumes(self, sbm_graph, clean):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cuda.alloc", fault="oom",
                       nth=2, stage="eigensolver")]
        )
        res = _fit(W, embedding="compressive", chaos=plan)
        assert plan.n_fired >= 1
        assert np.array_equal(res.labels, clean.labels)

    def test_unprotected_filter_raises_typed_error(self, sbm_graph):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="compressive.filter", fault="transient",
                       nth=1, stage="eigensolver")]
        )
        sc = SpectralClustering(
            n_clusters=K, seed=0, embedding="compressive",
            chaos=plan, resilience=DISABLED,
        )
        with pytest.raises(ReproError):
            sc.fit(graph=W)
        assert plan.n_fired == 1


class TestSamplingChaos:
    def test_transient_gather_fault_retries(self, sbm_graph, clean_sampled):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="compressive.gather", fault="transient",
                       nth=1, stage="sampling")]
        )
        res = _fit(W, embedding="compressive", sample_frac=0.5, chaos=plan)
        assert plan.n_fired >= 1
        assert res.resilience["sampling"]["retries"] >= 1
        assert np.array_equal(res.labels, clean_sampled.labels)

    def test_dead_gather_falls_back_to_host(self, sbm_graph, clean_sampled):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="compressive.gather", fault="transient",
                       prob=1.0, max_fires=None, stage="sampling")]
        )
        res = _fit(W, embedding="compressive", sample_frac=0.5, chaos=plan)
        assert plan.n_fired >= 1
        assert res.resilience["sampling"]["fallback"] == "cpu"
        # host gather is the same indexing: labels unchanged
        assert np.array_equal(res.labels, clean_sampled.labels)


class TestLiftChaos:
    def test_transient_solve_fault_retries(self, sbm_graph, clean_sampled):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="compressive.solve", fault="transient",
                       nth=1, stage="lift")]
        )
        res = _fit(W, embedding="compressive", sample_frac=0.5, chaos=plan)
        assert plan.n_fired >= 1
        assert res.resilience["lift"]["retries"] >= 1
        assert np.array_equal(res.labels, clean_sampled.labels)

    def test_dead_solve_falls_back_to_host_bit_identically(
        self, sbm_graph, clean_sampled
    ):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="compressive.solve", fault="transient",
                       prob=1.0, max_fires=None, stage="lift")]
        )
        res = _fit(W, embedding="compressive", sample_frac=0.5, chaos=plan)
        assert plan.n_fired >= 1
        assert res.resilience["lift"]["fallback"] == "cpu"
        assert np.array_equal(res.labels, clean_sampled.labels)


class TestSites:
    def test_new_sites_registered(self):
        for site in ("compressive.filter", "compressive.gather",
                     "compressive.solve"):
            assert site in KNOWN_SITES
