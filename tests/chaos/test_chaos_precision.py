"""Chaos coverage for the mixed-precision paths.

The refinement pass and the power embedding introduced two new GPU hot
loops (fp64 correction SpMM, repeated block SpMM); both must honor the
same resilience contract as the Lanczos loop: transient faults retry,
persistent faults fall back to the host with identical arithmetic, and a
disabled policy surfaces a typed error — never a crash, never silent
corruption.
"""

import numpy as np
import pytest

from repro.chaos import DISABLED, FaultPlan, FaultSpec
from repro.core.pipeline import SpectralClustering
from repro.errors import ReproError

K = 6


def _fit(W, **kw):
    return SpectralClustering(n_clusters=K, seed=0, **kw).fit(graph=W)


@pytest.fixture
def clean_fp32(sbm_graph):
    W, _ = sbm_graph
    return _fit(W, precision="fp32")


@pytest.fixture
def clean_power(sbm_graph):
    W, _ = sbm_graph
    return _fit(W, embedding="power")


class TestRefinementChaos:
    """``cusparse.csrmm`` only fires inside the refinement pass on the
    fp32 Lanczos path — the main loop runs matvecs — so these cells
    exercise exactly the ``eig.refine`` retry site."""

    def test_transient_csrmm_retries_and_matches(
        self, sbm_graph, clean_fp32
    ):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.csrmm", fault="transient",
                       nth=1, stage="eigensolver")]
        )
        res = _fit(W, precision="fp32", chaos=plan)
        assert plan.n_fired >= 1
        assert res.eig_stats["spmv_retries"] >= 1
        # the retry re-ran the same SpMM: bit-identical recovery
        assert np.array_equal(res.labels, clean_fp32.labels)
        assert res.embedding.tobytes() == clean_fp32.embedding.tobytes()

    def test_dead_csrmm_finishes_refinement_on_host(
        self, sbm_graph, clean_fp32
    ):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.csrmm", fault="transient",
                       prob=1.0, max_fires=None, stage="eigensolver")]
        )
        res = _fit(W, precision="fp32", chaos=plan)
        assert plan.n_fired >= 1
        # host fallback performs csrmm's exact gathered/reduceat
        # arithmetic -> same refined embedding, same labels
        assert np.array_equal(res.labels, clean_fp32.labels)
        assert res.embedding.tobytes() == clean_fp32.embedding.tobytes()
        assert res.eig_stats["refine_residual"] is not None

    def test_unprotected_refinement_raises_typed_error(self, sbm_graph):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.csrmm", fault="transient",
                       nth=1, stage="eigensolver")]
        )
        sc = SpectralClustering(
            n_clusters=K, seed=0, precision="fp32",
            chaos=plan, resilience=DISABLED,
        )
        with pytest.raises(ReproError):
            sc.fit(graph=W)
        assert plan.n_fired == 1

    def test_transfer_fault_on_refine_leg_recovers(
        self, sbm_graph, clean_fp32
    ):
        """The refinement block crosses PCIe at full width each way; a
        transient transfer fault on those legs must retry cleanly."""
        W, _ = sbm_graph
        n_op = clean_fp32.eig_stats["n_op"]
        plan = FaultPlan(
            [FaultSpec(site="cuda.h2d", fault="transient",
                       nth=2, stage="eigensolver")]
        )
        res = _fit(W, precision="fp32", chaos=plan)
        assert plan.n_fired >= 1
        assert np.array_equal(res.labels, clean_fp32.labels)
        assert res.eig_stats["n_op"] == n_op  # solve path undisturbed


class TestPowerEmbeddingChaos:
    """The power embedding is pure repeated SpMM — every operator
    application goes through one of the ``cusparse.*mm`` kernels (the
    autotuner picks the format, hence the wildcard site)."""

    def test_transient_spmm_retries_and_matches(
        self, sbm_graph, clean_power
    ):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.*mm", fault="transient",
                       nth=3, stage="eigensolver")]
        )
        res = _fit(W, embedding="power", chaos=plan)
        assert plan.n_fired >= 1
        assert res.eig_stats["spmv_retries"] >= 1
        assert np.array_equal(res.labels, clean_power.labels)
        assert res.embedding.tobytes() == clean_power.embedding.tobytes()

    def test_dead_spmm_falls_back_to_host_bit_identically(
        self, sbm_graph, clean_power
    ):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.*mm", fault="transient",
                       prob=1.0, max_fires=None, stage="eigensolver")]
        )
        res = _fit(W, embedding="power", chaos=plan)
        assert res.eig_stats["fallback"] == "cpu"
        assert np.array_equal(res.labels, clean_power.labels)
        assert res.embedding.tobytes() == clean_power.embedding.tobytes()

    def test_unprotected_power_raises_typed_error(self, sbm_graph):
        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cusparse.*mm", fault="transient",
                       nth=1, stage="eigensolver")]
        )
        sc = SpectralClustering(
            n_clusters=K, seed=0, embedding="power",
            chaos=plan, resilience=DISABLED,
        )
        with pytest.raises(ReproError):
            sc.fit(graph=W)
        assert plan.n_fired == 1

    def test_reduced_power_oom_recovers(self, sbm_graph):
        """fp32 power: an allocation fault mid-embedding must recover and
        stay inside the fp32 tolerance floor after refinement."""
        from repro.precision import TOL_FLOORS

        W, _ = sbm_graph
        plan = FaultPlan(
            [FaultSpec(site="cuda.alloc", fault="oom",
                       nth=2, stage="eigensolver")]
        )
        res = _fit(W, precision="fp32", embedding="power", chaos=plan)
        assert plan.n_fired >= 1
        assert res.eig_stats["converged"]
        assert res.eig_stats["refine_residual"] <= TOL_FLOORS["fp32"]
