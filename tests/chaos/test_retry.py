"""Retry-with-backoff on the simulated clock."""

import pytest

from repro.chaos import DISABLED, ResiliencePolicy, with_retry
from repro.errors import TransientKernelError


def _flaky(n_failures):
    """A callable that fails ``n_failures`` times, then succeeds."""
    state = {"calls": 0}

    def fn():
        state["calls"] += 1
        if state["calls"] <= n_failures:
            raise TransientKernelError("injected")
        return state["calls"]

    return fn, state


class TestWithRetry:
    def test_clean_call_passes_through(self, device):
        fn, state = _flaky(0)
        assert with_retry(fn, device, ResiliencePolicy()) == 1
        assert state["calls"] == 1

    def test_recovers_within_budget(self, device):
        fn, state = _flaky(2)
        assert with_retry(fn, device, ResiliencePolicy(max_attempts=3)) == 3
        assert state["calls"] == 3

    def test_gives_up_after_max_attempts(self, device):
        fn, state = _flaky(5)
        with pytest.raises(TransientKernelError):
            with_retry(fn, device, ResiliencePolicy(max_attempts=3))
        assert state["calls"] == 3

    def test_backoff_charges_simulated_overhead(self, device):
        fn, _ = _flaky(2)
        t0 = device.elapsed
        with_retry(
            fn, device,
            ResiliencePolicy(backoff=1e-3, multiplier=2.0), site="spmv",
        )
        # two retries: 1ms + 2ms of simulated stall
        assert device.elapsed - t0 == pytest.approx(3e-3)
        ev = [e for e in device.timeline.events if "chaos::backoff" in e.name]
        assert len(ev) == 2
        assert all(e.category == "overhead" for e in ev)
        assert "spmv" in ev[0].name

    def test_disabled_policy_does_not_retry(self, device):
        fn, state = _flaky(1)
        with pytest.raises(TransientKernelError):
            with_retry(fn, device, DISABLED)
        assert state["calls"] == 1
        assert not [
            e for e in device.timeline.events if "chaos::backoff" in e.name
        ]

    def test_on_retry_reports_attempt_numbers(self, device):
        fn, _ = _flaky(2)
        seen = []
        with_retry(
            fn, device, ResiliencePolicy(max_attempts=4), on_retry=seen.append
        )
        assert seen == [1, 2]

    def test_unlisted_errors_propagate_immediately(self, device):
        state = {"calls": 0}

        def fn():
            state["calls"] += 1
            raise ValueError("not a device fault")

        with pytest.raises(ValueError):
            with_retry(fn, device, ResiliencePolicy(max_attempts=5))
        assert state["calls"] == 1
