"""FaultPlan semantics: validation, triggers, determinism."""

import numpy as np
import pytest

from repro.chaos import (
    FAULT_ERRORS,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    active_plan,
    chaos,
    chaos_check,
    install_plan,
)
from repro.errors import (
    ChaosError,
    DeviceMemoryError,
    TransferError,
    TransientKernelError,
)


class TestFaultSpecValidation:
    def test_unknown_fault_type(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="cuda.alloc", fault="meltdown", nth=1)

    def test_no_trigger(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="cuda.alloc", fault="oom")

    def test_two_triggers(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="cuda.alloc", fault="oom", nth=1, prob=0.5)

    def test_bad_nth(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="cuda.alloc", fault="oom", nth=0)

    def test_bad_prob(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="cuda.alloc", fault="oom", prob=1.5)

    def test_bad_max_fires(self):
        with pytest.raises(ChaosError):
            FaultSpec(site="cuda.alloc", fault="oom", nth=1, max_fires=0)

    def test_plan_rejects_non_spec(self):
        with pytest.raises(ChaosError):
            FaultPlan([object()])


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan([FaultSpec(site="cuda.h2d", fault="transfer", nth=3)])
        plan.check("cuda.h2d")
        plan.check("cuda.h2d")
        with pytest.raises(TransferError):
            plan.check("cuda.h2d")
        # past the nth call the rule stays quiet
        for _ in range(10):
            plan.check("cuda.h2d")
        assert plan.n_fired == 1

    def test_after_bytes_threshold(self):
        plan = FaultPlan(
            [FaultSpec(site="cuda.alloc", fault="oom", after_bytes=100)]
        )
        plan.check("cuda.alloc", nbytes=40)
        plan.check("cuda.alloc", nbytes=40)
        with pytest.raises(DeviceMemoryError):
            plan.check("cuda.alloc", nbytes=40)

    def test_prob_one_fires_up_to_max(self):
        plan = FaultPlan(
            [FaultSpec(site="cusparse.csrmv", fault="transient",
                       prob=1.0, max_fires=2)]
        )
        for _ in range(2):
            with pytest.raises(TransientKernelError):
                plan.check("cusparse.csrmv")
        plan.check("cusparse.csrmv")  # cap reached
        assert plan.n_fired == 2

    def test_site_glob_and_stage_filter(self):
        plan = FaultPlan(
            [FaultSpec(site="cuda.kernel:*", fault="transient",
                       nth=1, stage="kmeans")]
        )
        plan.check("cuda.kernel:UpdateData", stage="similarity")
        plan.check("cuda.h2d", stage="kmeans")
        with pytest.raises(TransientKernelError):
            plan.check("cuda.kernel:AssignClusters", stage="kmeans")

    def test_fault_types_map_to_typed_errors(self):
        for fault, err in FAULT_ERRORS.items():
            plan = FaultPlan([FaultSpec(site="x", fault=fault, nth=1)])
            with pytest.raises(err):
                plan.check("x")


class TestDeterminism:
    def _drive(self, plan, n=200):
        fired = []
        for i in range(n):
            try:
                plan.check("cuda.kernel:K", stage="kmeans", nbytes=64)
            except tuple(FAULT_ERRORS.values()):
                fired.append(i)
        return fired, [
            (e.site, e.stage, e.fault, e.spec_index, e.call_index)
            for e in plan.schedule
        ]

    def test_same_seed_same_schedule(self):
        specs = [
            FaultSpec(site="cuda.kernel:*", fault="transient",
                      prob=0.05, max_fires=None)
        ]
        a = self._drive(FaultPlan(specs, seed=42))
        b = self._drive(FaultPlan(specs, seed=42))
        assert a == b
        assert a[0]  # the probabilistic rule actually fired

    def test_different_seed_different_schedule(self):
        specs = [
            FaultSpec(site="cuda.kernel:*", fault="transient",
                      prob=0.05, max_fires=None)
        ]
        a = self._drive(FaultPlan(specs, seed=1))
        b = self._drive(FaultPlan(specs, seed=2))
        assert a != b

    def test_reset_replays_identically(self):
        plan = FaultPlan(
            [FaultSpec(site="*", fault="transient", prob=0.1, max_fires=None)],
            seed=7,
        )
        a = self._drive(plan)
        plan.reset()
        b = self._drive(plan)
        assert a == b

    def test_from_seed_deterministic(self):
        a = FaultPlan.from_seed(99)
        b = FaultPlan.from_seed(99)
        assert a.specs == b.specs
        assert len(a.specs) == 3

    def test_from_seed_rejects_zero_faults(self):
        with pytest.raises(ChaosError):
            FaultPlan.from_seed(0, n_faults=0)

    def test_negative_seed_rejected_with_typed_error(self):
        # surfaced by CLI `--chaos -1`: must be ChaosError, not a numpy
        # ValueError traceback
        with pytest.raises(ChaosError):
            FaultPlan.from_seed(-1)
        with pytest.raises(ChaosError):
            FaultPlan([FaultSpec(site="x", fault="oom", nth=1)], seed=-1)


class TestRuntimeInstallation:
    def test_no_plan_is_noop(self):
        install_plan(None)
        chaos_check("cuda.alloc", nbytes=10**12)  # nothing raises

    def test_context_scopes_plan(self):
        plan = FaultPlan([FaultSpec(site="cuda.h2d", fault="transfer", nth=1)])
        assert active_plan() is None
        with chaos(plan):
            assert active_plan() is plan
            with pytest.raises(TransferError):
                chaos_check("cuda.h2d")
        assert active_plan() is None
        chaos_check("cuda.h2d")  # uninstalled again

    def test_event_log_records_context(self):
        plan = FaultPlan([FaultSpec(site="cuda.d2h", fault="transfer", nth=2)])
        with chaos(plan):
            chaos_check("cuda.d2h", nbytes=8)
            with pytest.raises(TransferError):
                chaos_check("cuda.d2h", nbytes=8)
        (ev,) = plan.schedule
        assert isinstance(ev, FaultEvent)
        assert ev.site == "cuda.d2h"
        assert ev.call_index == 2
