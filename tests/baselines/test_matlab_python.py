"""Baseline column wiring: profiles, seeding strategy, modeled times."""

import numpy as np
import pytest

from repro.baselines.matlab_like import run_matlab_like
from repro.baselines.python_like import run_python_like
from repro.metrics.external import adjusted_rand_index


class TestBaselineRuns:
    @pytest.fixture(scope="class")
    def runs(self):
        from repro.datasets.sbm import stochastic_block_model
        from repro.sparse.construct import from_edge_list

        rng = np.random.default_rng(12345)
        edges, labels = stochastic_block_model(
            [40] * 6, p_in=0.5, p_out=0.01, rng=rng
        )
        W = from_edge_list(edges, n_nodes=240)
        mat = run_matlab_like(graph=W, n_clusters=6, seed=0)
        py = run_python_like(graph=W, n_clusters=6, seed=0)
        return W, labels, mat, py

    def test_both_recover_communities(self, runs):
        _, truth, mat, py = runs
        # Matlab's random seeding recovers less reliably than k-means++ —
        # the very effect the paper's iteration-count comparison rests on
        assert adjusted_rand_index(mat.labels, truth) > 0.6
        assert adjusted_rand_index(py.labels, truth) > 0.9

    def test_modeled_stage_keys(self, runs):
        _, _, mat, py = runs
        for run in (mat, py):
            assert set(run.modeled) == {"similarity", "eigensolver", "kmeans"}

    def test_graph_input_has_no_similarity_cost(self, runs):
        _, _, mat, py = runs
        assert mat.modeled["similarity"] == 0.0
        assert py.modeled["similarity"] == 0.0

    def test_python_eigensolver_modeled_slower(self, runs):
        _, _, mat, py = runs
        assert py.modeled["eigensolver"] > mat.modeled["eigensolver"]

    def test_names(self, runs):
        _, _, mat, py = runs
        assert mat.name == "Matlab" and py.name == "Python"

    def test_matlab_uses_random_seeding(self, runs):
        """Matlab's random init generally needs >= iterations of the
        k-means++-seeded python run (the paper's stated reason Matlab's
        k-means is slower)."""
        _, _, mat, py = runs
        assert mat.result.kmeans.n_iter >= 1
        assert py.result.kmeans.n_iter >= 1


class TestPointInputBaselines:
    def test_similarity_modeled_serial_and_vectorized(self):
        from repro.datasets.dti import make_dti_volume

        v = make_dti_volume(grid=(8, 8, 8), n_regions=4, seed=0)
        serial = run_matlab_like(
            X=v.profiles, edges=v.edges, n_clusters=4, seed=0
        )
        vec = run_matlab_like(
            X=v.profiles, edges=v.edges, n_clusters=4, seed=0,
            vectorized_similarity=True,
        )
        assert serial.modeled["similarity"] > vec.modeled["similarity"] > 0
        # serial/vectorized ratio ~ 55.4/1.44 ~ 38x
        ratio = serial.modeled["similarity"] / vec.modeled["similarity"]
        assert 30 < ratio < 50
