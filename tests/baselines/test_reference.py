"""Host reference pipeline: correctness and agreement with the hybrid path."""

import numpy as np
import pytest

from repro.baselines.reference import reference_spectral_clustering
from repro.core.pipeline import SpectralClustering
from repro.errors import ClusteringError
from repro.metrics.external import adjusted_rand_index


class TestReferencePipeline:
    def test_recovers_sbm(self, sbm_graph):
        W, truth = sbm_graph
        ref = reference_spectral_clustering(graph=W, n_clusters=6, seed=0)
        assert adjusted_rand_index(ref.labels, truth) > 0.95

    def test_matches_hybrid_partition(self, sbm_graph):
        """Same numerics, same seeds -> same partition as the CUDA path."""
        W, _ = sbm_graph
        ref = reference_spectral_clustering(graph=W, n_clusters=6, seed=0)
        hyb = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        assert adjusted_rand_index(ref.labels, hyb.labels) > 0.99

    def test_matches_hybrid_eigenvalues(self, sbm_graph):
        W, _ = sbm_graph
        ref = reference_spectral_clustering(graph=W, n_clusters=6, seed=0)
        hyb = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        assert np.allclose(
            np.sort(ref.eigenvalues), np.sort(hyb.eigenvalues), atol=1e-8
        )

    def test_eig_stats_populated(self, sbm_graph):
        W, _ = sbm_graph
        ref = reference_spectral_clustering(graph=W, n_clusters=4, seed=0)
        assert ref.eig_stats["n_op"] > 0
        assert ref.eig_stats["m"] >= 9
        assert ref.eig_stats["converged"]

    def test_wall_times_recorded(self, sbm_graph):
        W, _ = sbm_graph
        ref = reference_spectral_clustering(graph=W, n_clusters=4, seed=0)
        assert set(ref.wall) == {"similarity", "laplacian", "eigensolver", "kmeans"}

    def test_point_input(self):
        from repro.datasets.dti import make_dti_volume

        v = make_dti_volume(grid=(8, 8, 8), n_regions=4, noise=0.2, seed=0)
        ref = reference_spectral_clustering(
            X=v.profiles, edges=v.edges, n_clusters=4, seed=0
        )
        assert adjusted_rand_index(ref.labels, v.labels) > 0.6

    def test_input_validation(self, sbm_graph, rng):
        W, _ = sbm_graph
        with pytest.raises(ClusteringError):
            reference_spectral_clustering(n_clusters=3)
        with pytest.raises(ClusteringError):
            reference_spectral_clustering(X=rng.random((5, 2)), n_clusters=2)
