"""Baseline cost models: calibration identities against the paper's own
numbers and cross-environment orderings."""

import pytest

from repro.baselines.cost import (
    MATLAB_2015A,
    PYTHON_27,
    eigensolver_time,
    kmeans_time,
    similarity_serial_time,
    similarity_vectorized_time,
    spmv_time,
    takestep_time,
)

DTI_EDGES = 3_992_290


class TestCalibration:
    """The constants must reproduce the paper's DTI similarity rows —
    these are calibration identities, exact by construction."""

    def test_matlab_serial_similarity(self):
        assert similarity_serial_time(MATLAB_2015A, DTI_EDGES) == pytest.approx(
            221.249, rel=0.01
        )

    def test_python_serial_similarity(self):
        assert similarity_serial_time(PYTHON_27, DTI_EDGES) == pytest.approx(
            220.880, rel=0.01
        )

    def test_matlab_vectorized_similarity(self):
        assert similarity_vectorized_time(MATLAB_2015A, DTI_EDGES) == pytest.approx(
            5.753, rel=0.01
        )

    def test_python_vectorized_similarity(self):
        assert similarity_vectorized_time(PYTHON_27, DTI_EDGES) == pytest.approx(
            6.271, rel=0.01
        )


class TestOrderings:
    """Predicted orderings that drive the shape of Tables III-VI."""

    def test_python_eigensolver_slower_than_matlab(self):
        kw = dict(n=142541, nnz=2 * DTI_EDGES, k=500, m=1001,
                  n_op=5000, n_restarts=8)
        t_m = eigensolver_time(MATLAB_2015A, **kw)
        t_p = eigensolver_time(PYTHON_27, **kw)
        assert 3.0 < t_p / t_m < 10.0  # paper: 3282/603 = 5.4x

    def test_eigensolver_magnitude_dti(self):
        """Projected Matlab DTI eigensolver lands within ~3x of 603 s for a
        plausible iteration history."""
        t = eigensolver_time(
            MATLAB_2015A, n=142541, nnz=2 * DTI_EDGES, k=500, m=1001,
            n_op=6000, n_restarts=10,
        )
        assert 200 < t < 1800

    def test_kmeans_matlab_magnitude_dti(self):
        """Matlab DTI k-means: ~100+ random-init iterations at the sweep
        rate should land near the paper's 1785 s."""
        t = kmeans_time(MATLAB_2015A, n=142541, d=500, k=500, iters=120)
        assert 500 < t < 4000

    def test_kmeans_python_slower_per_iter(self):
        per_m = kmeans_time(MATLAB_2015A, n=10000, d=100, k=100, iters=1)
        per_p = kmeans_time(PYTHON_27, n=10000, d=100, k=100, iters=1)
        assert per_p > per_m

    def test_spmv_matlab_faster_than_python(self):
        assert spmv_time(MATLAB_2015A, 142541, 2 * DTI_EDGES) < spmv_time(
            PYTHON_27, 142541, 2 * DTI_EDGES
        )

    def test_takestep_scales_with_basis(self):
        assert takestep_time(MATLAB_2015A, 10000, 500.0) > takestep_time(
            MATLAB_2015A, 10000, 50.0
        )

    def test_eigensolver_monotone_in_ops(self):
        kw = dict(n=10000, nnz=100000, k=50, m=101, n_restarts=3)
        assert eigensolver_time(MATLAB_2015A, n_op=2000, **kw) > eigensolver_time(
            MATLAB_2015A, n_op=1000, **kw
        )

    def test_profiles_frozen(self):
        with pytest.raises(AttributeError):
            MATLAB_2015A.blas_threads = 16  # type: ignore[misc]
