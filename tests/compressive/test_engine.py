"""Compressive embedding engine (`repro.compressive.engine`).

The placement/accounting contracts the substrate PRs established must
hold for the new tier: bit-identical sketches across residencies and
device counts, `ledger == meter` byte accounting under fp64 and fp32,
and deterministic request-seeded results.
"""

import numpy as np
import pytest

from repro.compressive.engine import _PROBE_ACCEL, compressive_embedding
from repro.compressive.filters import DEFAULT_FILTER_ORDER, default_n_signals
from repro.cuda.device import Device
from repro.cusparse.matrices import coo_to_device
from repro.datasets.sbm import stochastic_block_model
from repro.errors import EigensolverError
from repro.graph.laplacian import device_sym_normalize
from repro.linalg.spectrum import default_probe_iterations
from repro.sparse.construct import from_edge_list

K = 4
N = 4 * 40


def _operator(seed=0, device=None):
    rng = np.random.default_rng(100 + seed)
    edges, _ = stochastic_block_model([40] * K, p_in=0.5, p_out=0.02, rng=rng)
    W = from_edge_list(edges, n_nodes=N)
    dev = device or Device()
    dcoo = coo_to_device(dev, W.sorted_by_row())
    return dev, device_sym_normalize(dcoo)


def _solve(seed=0, device=None, **kw):
    dev, op = _operator(seed=0, device=device)
    F, stats = compressive_embedding(dev, op, K, seed=seed, **kw)
    return dev, F, stats


class TestSketch:
    def test_shape_and_dtype(self):
        _, F, stats = _solve()
        assert F.shape == (N, default_n_signals(K))
        assert F.dtype == np.float64
        assert stats.converged

    def test_deterministic_same_seed(self):
        _, F1, s1 = _solve(seed=7)
        _, F2, s2 = _solve(seed=7)
        assert F1.tobytes() == F2.tobytes()
        assert s1.spectrum == s2.spectrum

    def test_different_seed_differs(self):
        _, F1, _ = _solve(seed=0)
        _, F2, _ = _solve(seed=1)
        assert F1.tobytes() != F2.tobytes()

    def test_sketch_spans_cluster_subspace(self):
        """The filtered signals approximate U_k U_kᵀ R: their column space
        must lie (mostly) inside the operator's top-k eigenspace."""
        dev, op = _operator()
        F, stats = compressive_embedding(dev, op, K, seed=0)
        # dense reference spectrum of the same operator
        A = np.zeros((N, N))
        indptr, indices, data = (
            op.indptr.data, op.indices.data, op.val.data,
        )
        for i in range(N):
            A[i, indices[indptr[i]:indptr[i + 1]]] = data[indptr[i]:indptr[i + 1]]
        w, Q = np.linalg.eigh(A)
        Uk = Q[:, -K:]
        # energy of F inside span(Uk) / total energy
        proj = Uk @ (Uk.T @ F)
        ratio = np.linalg.norm(proj) ** 2 / np.linalg.norm(F) ** 2
        assert ratio > 0.95

    def test_stats_counters(self):
        _, F, stats = _solve()
        q = default_probe_iterations(N)
        assert stats.k == K
        assert stats.filter_order == DEFAULT_FILTER_ORDER
        assert stats.n_signals == default_n_signals(K)
        assert stats.probe_applications == (q + 1) * _PROBE_ACCEL
        assert stats.filter_applications == DEFAULT_FILTER_ORDER
        assert stats.n_op == stats.probe_applications + stats.filter_applications
        assert stats.embedding == "compressive"
        sp = stats.spectrum
        assert sp["lambda_max"] <= 1.0 + 1e-6
        assert sp["lambda_next"] <= sp["lambda_k"] <= sp["lambda_max"]
        assert sp["lambda_next"] < sp["band_edge"] < sp["lambda_k"]

    def test_custom_knobs_respected(self):
        _, F, stats = _solve(filter_order=12, n_signals=6, probe_q=5)
        assert F.shape == (N, 6)
        assert stats.filter_order == 12
        assert stats.filter_applications == 12
        assert stats.probe_applications == 6 * _PROBE_ACCEL


class TestPlacementParity:
    def test_host_residency_bit_identical(self):
        _, F_dev, s_dev = _solve()
        _, F_host, s_host = _solve(residency="host")
        assert F_dev.tobytes() == F_host.tobytes()
        assert s_host.residency == "host"
        assert s_host.pcie_round_trips > 0

    def test_multi_device_bit_identical(self):
        _, F1, s1 = _solve()
        _, F2, s2 = _solve(n_devices=2)
        assert F1.tobytes() == F2.tobytes()
        assert s2.n_devices == 2
        assert s2.partition is not None

    def test_forced_formats_bit_identical(self):
        base = _solve(spmv_format="csr")[1]
        for fmt in ("ell", "hyb"):
            F = _solve(spmv_format=fmt)[1]
            assert F.tobytes() == base.tobytes()

    def test_fp32_within_tolerance_not_identical(self):
        _, F64, _ = _solve()
        _, F32, s32 = _solve(precision="fp32")
        assert s32.precision == "fp32"
        assert F32.tobytes() != F64.tobytes()
        denom = np.linalg.norm(F64)
        assert np.linalg.norm(F32 - F64) / denom < 1e-3


class TestByteAccounting:
    @pytest.mark.parametrize("precision", ["fp64", "fp32"])
    def test_ledger_equals_meter(self, precision):
        _, _, stats = _solve(precision=precision)
        assert stats.ledger_bytes > 0
        assert stats.spmv_bytes == stats.ledger_bytes

    @pytest.mark.parametrize("fmt", ["csr", "ell", "hyb"])
    def test_ledger_equals_meter_all_formats(self, fmt):
        _, _, stats = _solve(spmv_format=fmt)
        assert stats.spmv_bytes == stats.ledger_bytes

    def test_ledger_equals_meter_partitioned(self):
        _, _, stats = _solve(n_devices=2)
        assert stats.spmv_bytes == stats.ledger_bytes

    def test_fp32_moves_fewer_bytes(self):
        _, _, s64 = _solve()
        _, _, s32 = _solve(precision="fp32")
        assert s32.spmv_bytes < s64.spmv_bytes

    def test_host_residency_round_trips_metered(self):
        dev, _, stats = _solve(residency="host")
        h2d, d2h, *_ = (
            stats.bytes_h2d, stats.bytes_d2h,
        )
        assert h2d > 0 and d2h > 0
        # every application crosses PCIe both ways
        assert stats.pcie_round_trips == stats.n_op


class TestValidation:
    def test_k_too_large(self):
        dev, op = _operator()
        with pytest.raises(EigensolverError):
            compressive_embedding(dev, op, N - 1)

    def test_bad_knobs(self):
        dev, op = _operator()
        with pytest.raises(ValueError):
            compressive_embedding(dev, op, K, filter_order=0)
        with pytest.raises(ValueError):
            compressive_embedding(dev, op, K, n_signals=0)
        with pytest.raises(ValueError):
            compressive_embedding(dev, op, K, residency="remote")
        with pytest.raises(ValueError):
            compressive_embedding(dev, op, K, spmv_format="coo")
        with pytest.raises(ValueError):
            compressive_embedding(dev, op, K, n_devices=0)
        with pytest.raises(ValueError):
            compressive_embedding(dev, op, K, n_devices=2, residency="host")
