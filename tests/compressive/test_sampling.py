"""Coherence-weighted downsampling (`repro.compressive.sampling`)."""

import numpy as np
import pytest

from repro.compressive.sampling import (
    coherence_weights,
    default_sample_frac,
    gather_rows,
    sample_vertices,
)
from repro.cuda.device import Device


class TestDefaultFrac:
    def test_saturates_on_small_graphs(self):
        assert default_sample_frac(10, 4) == 1.0
        assert default_sample_frac(0, 4) == 1.0

    def test_shrinks_with_n(self):
        f1 = default_sample_frac(10_000, 8)
        f2 = default_sample_frac(100_000, 8)
        assert f2 < f1 < 1.0
        # absolute sample size is n-independent: O(k log k)
        assert 10_000 * f1 == pytest.approx(100_000 * f2)

    def test_grows_with_k(self):
        assert default_sample_frac(50_000, 50) > default_sample_frac(50_000, 5)


class TestCoherenceWeights:
    def test_distribution(self, device):
        rng = np.random.default_rng(0)
        F = rng.standard_normal((200, 8))
        w = coherence_weights(device, F)
        assert w.shape == (200,)
        assert np.all(w > 0)
        assert w.sum() == pytest.approx(1.0, abs=1e-12)

    def test_concentrates_on_high_energy_rows(self, device):
        F = np.ones((100, 4)) * 0.1
        F[:10] = 5.0  # ten high-coherence rows
        w = coherence_weights(device, F)
        assert w[:10].min() > 10 * w[10:].max()

    def test_uniform_mixture_floors_zero_rows(self, device):
        F = np.zeros((50, 4))
        F[0] = 1.0
        w = coherence_weights(device, F)
        assert w[1:].min() >= 0.5 / 50 * 0.99  # the uniform half

    def test_all_zero_sketch_degrades_to_uniform(self, device):
        w = coherence_weights(device, np.zeros((30, 4)))
        assert np.allclose(w, 1 / 30)

    def test_charges_kernel(self, device):
        before = device.kernel_launches
        coherence_weights(device, np.ones((50, 4)))
        assert device.kernel_launches == before + 1


class TestSampleVertices:
    def test_deterministic_sorted_distinct(self):
        w = np.full(100, 1 / 100)
        a = sample_vertices(100, w, 20, seed=3)
        b = sample_vertices(100, w, 20, seed=3)
        assert a.tobytes() == b.tobytes()
        assert a.dtype == np.int64
        assert np.all(np.diff(a) > 0)  # sorted, no replacement
        assert sample_vertices(100, w, 20, seed=4).tobytes() != a.tobytes()

    def test_full_sample_is_identity(self):
        w = np.full(10, 0.1)
        assert sample_vertices(10, w, 10, seed=0).tolist() == list(range(10))
        assert sample_vertices(10, w, 99, seed=0).tolist() == list(range(10))

    def test_respects_weights(self):
        w = np.full(1000, 1e-9)
        w[:50] = (1.0 - 1e-9 * 950) / 50
        idx = sample_vertices(1000, w / w.sum(), 40, seed=0)
        assert np.all(idx < 50)


class TestGather:
    def test_gathers_and_charges(self, device):
        rng = np.random.default_rng(0)
        F = rng.standard_normal((60, 5))
        idx = np.array([3, 7, 40], dtype=np.int64)
        before = device.kernel_launches
        G = gather_rows(device, F, idx)
        assert G.tobytes() == F[idx].tobytes()
        assert device.kernel_launches == before + 1
