"""Label lifting (`repro.compressive.lift`)."""

import numpy as np
import pytest

from repro.compressive.lift import (
    LIFT_MODES,
    lift_labels_device,
    lift_labels_host,
)
from repro.errors import ClusteringError


def _sketch(seed=0):
    """A 3-cluster sketch with well-separated blocks plus a sample."""
    rng = np.random.default_rng(seed)
    centers = np.array([[4.0, 0, 0], [0, 4.0, 0], [0, 0, 4.0]])
    truth = np.repeat(np.arange(3), 40)
    F = centers[truth] + 0.2 * rng.standard_normal((120, 3))
    idx = np.sort(rng.choice(120, size=30, replace=False)).astype(np.int64)
    labels_s = truth[idx].astype(np.int64)
    centroids = np.stack([F[idx][labels_s == c].mean(axis=0)
                          for c in range(3)])
    return F, idx, labels_s, centroids, truth


class TestLift:
    @pytest.mark.parametrize("mode", LIFT_MODES)
    def test_recovers_all_labels(self, device, mode):
        F, idx, labels_s, centroids, truth = _sketch()
        labels = lift_labels_device(device, F, idx, labels_s, centroids,
                                    mode=mode)
        assert labels.shape == truth.shape
        assert labels.dtype == labels_s.dtype
        assert np.array_equal(labels, truth)

    @pytest.mark.parametrize("mode", LIFT_MODES)
    def test_host_matches_device_bitwise(self, device, mode):
        F, idx, labels_s, centroids, _ = _sketch()
        a = lift_labels_device(device, F, idx, labels_s, centroids, mode=mode)
        b = lift_labels_host(device, F, idx, labels_s, centroids, mode=mode)
        assert a.tobytes() == b.tobytes()

    def test_sampled_rows_keep_their_labels_interp(self, device):
        """The ridge is weak enough that the sampled rows themselves stay
        on their assigned side."""
        F, idx, labels_s, centroids, _ = _sketch()
        labels = lift_labels_device(device, F, idx, labels_s, centroids)
        assert np.array_equal(labels[idx], labels_s)

    def test_device_charges_kernels(self, device):
        F, idx, labels_s, centroids, _ = _sketch()
        before = device.kernel_launches
        lift_labels_device(device, F, idx, labels_s, centroids, mode="interp")
        assert device.kernel_launches == before + 3  # gram, potrf, scores
        before = device.kernel_launches
        lift_labels_device(device, F, idx, labels_s, centroids, mode="nearest")
        assert device.kernel_launches == before + 2  # dist, argmin

    def test_bad_mode_raises(self, device):
        F, idx, labels_s, centroids, _ = _sketch()
        with pytest.raises(ClusteringError):
            lift_labels_device(device, F, idx, labels_s, centroids,
                               mode="spline")
        with pytest.raises(ClusteringError):
            lift_labels_host(device, F, idx, labels_s, centroids,
                             mode="spline")

    def test_degenerate_single_sample_per_cluster(self, device):
        """A minimal sample (one row per cluster) must still produce a
        full labeling without blowing up the ridge solve."""
        F, _, _, _, truth = _sketch()
        idx = np.array([0, 40, 80], dtype=np.int64)
        labels_s = truth[idx].astype(np.int64)
        centroids = F[idx]
        labels = lift_labels_device(device, F, idx, labels_s, centroids)
        assert labels.shape == truth.shape
        assert set(np.unique(labels)) <= {0, 1, 2}
