"""End-to-end `SpectralClustering(embedding="compressive")` behavior."""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.errors import ClusteringError
from repro.metrics.external import adjusted_rand_index

K = 6


def _fit(W, **kw):
    return SpectralClustering(n_clusters=K, seed=0, **kw).fit(graph=W)


class TestQuality:
    def test_recovers_sbm_communities(self, sbm_graph):
        W, truth = sbm_graph
        res = _fit(W, embedding="compressive")
        assert adjusted_rand_index(res.labels, truth) > 0.95

    def test_within_band_of_exact(self, sbm_graph):
        W, truth = sbm_graph
        exact = _fit(W)
        comp = _fit(W, embedding="compressive")
        ari_exact = adjusted_rand_index(exact.labels, truth)
        ari_comp = adjusted_rand_index(comp.labels, truth)
        assert ari_comp >= 0.9 * ari_exact

    def test_sampled_lift_recovers(self, sbm_graph):
        W, truth = sbm_graph
        for lift in ("interp", "nearest"):
            res = _fit(W, embedding="compressive", sample_frac=0.5, lift=lift)
            assert adjusted_rand_index(res.labels, truth) > 0.9

    def test_point_input_path(self):
        from repro.datasets.dti import make_dti_volume

        vol = make_dti_volume(grid=(8, 8, 8), n_regions=4, seed=0)
        res = SpectralClustering(
            n_clusters=4, seed=0, embedding="compressive"
        ).fit(X=vol.profiles, edges=vol.edges)
        assert res.labels.shape == (vol.profiles.shape[0],)
        assert len(np.unique(res.labels[res.labels >= 0])) == 4


class TestDeterminism:
    def test_same_seed_identical(self, sbm_graph):
        W, _ = sbm_graph
        a = _fit(W, embedding="compressive")
        b = _fit(W, embedding="compressive")
        assert np.array_equal(a.labels, b.labels)
        assert a.embedding.tobytes() == b.embedding.tobytes()

    def test_different_seed_documented_band(self, sbm_graph):
        """Different request seeds draw different signals/samples — the
        labels may differ, but quality stays inside the ARI band."""
        W, truth = sbm_graph
        for seed in (1, 2):
            res = SpectralClustering(
                n_clusters=K, seed=seed, embedding="compressive"
            ).fit(graph=W)
            assert adjusted_rand_index(res.labels, truth) > 0.9

    def test_staged_api_parity(self, sbm_graph):
        """embed() + fit_embedding() (the serve cache path) must equal
        a monolithic fit()."""
        W, _ = sbm_graph
        sc = SpectralClustering(n_clusters=K, seed=0, embedding="compressive")
        fit_res = sc.fit(graph=W)
        emb = sc.embed(graph=W)
        staged = sc.fit_embedding(emb)
        assert emb.embedding.tobytes() == fit_res.embedding.tobytes()
        assert np.array_equal(staged.labels, fit_res.labels)


class TestConfiguration:
    def test_knobs_flow_through(self, sbm_graph):
        W, _ = sbm_graph
        res = _fit(W, embedding="compressive", filter_order=24, n_signals=12)
        assert res.eig_stats["filter_order"] == 24
        assert res.eig_stats["n_signals"] == 12
        assert res.embedding.shape[1] == 12

    def test_trace_has_compressive_stages(self, sbm_graph):
        W, _ = sbm_graph
        res = _fit(W, embedding="compressive", sample_frac=0.5)
        stages = res.profile.by_stage
        for tag in ("eigensolver", "sampling", "lift", "kmeans"):
            assert tag in stages

    def test_full_sample_skips_lift_stage(self, sbm_graph):
        W, _ = sbm_graph
        res = _fit(W, embedding="compressive", sample_frac=1.0)
        assert "lift" not in res.profile.by_stage
        assert "sampling" not in res.profile.by_stage

    def test_requires_ncut(self, sbm_graph):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=K, embedding="compressive",
                               objective="ratiocut")

    def test_knob_validation(self):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=K, filter_order=0)
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=K, n_signals=-1)
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=K, sample_frac=0.0)
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=K, sample_frac=1.5)
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=K, lift="spline")

    def test_exact_path_unchanged_by_new_params(self, sbm_graph):
        """The exact fp64 path must stay bit-identical: the compressive
        knobs are inert outside embedding='compressive'."""
        W, _ = sbm_graph
        base = _fit(W)
        with_knobs = _fit(W, filter_order=8, n_signals=4, sample_frac=0.5,
                          lift="nearest")
        assert np.array_equal(base.labels, with_knobs.labels)
        assert base.embedding.tobytes() == with_knobs.embedding.tobytes()

    def test_multi_device_and_fp32(self, sbm_graph):
        W, truth = sbm_graph
        single = _fit(W, embedding="compressive")
        multi = _fit(W, embedding="compressive", eig_devices=2)
        assert single.embedding.tobytes() == multi.embedding.tobytes()
        assert np.array_equal(single.labels, multi.labels)
        reduced = _fit(W, embedding="compressive", precision="fp32")
        assert adjusted_rand_index(reduced.labels, truth) > 0.9
