"""Chebyshev graph-filter engine (`repro.compressive.filters`)."""

import math

import numpy as np
import pytest

from repro.compressive.filters import (
    DEFAULT_FILTER_ORDER,
    apply_chebyshev_filter,
    chebyshev_filter_coefficients,
    default_n_signals,
    filter_response,
    jackson_damping,
    random_signals,
)
from repro.errors import EigensolverError


def _sym(n, seed=3):
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    lam = np.linspace(-0.95, 1.0, n)
    A = (Q * lam) @ Q.T
    return 0.5 * (A + A.T), lam, Q


class TestCoefficients:
    def test_step_response_approximated(self):
        """The damped expansion tracks the ideal step away from the
        transition band: ≈1 in the pass band, ≈0 deep in the stop band."""
        c = chebyshev_filter_coefficients(64, 0.5)
        lam = np.linspace(-1, 1, 401)
        h = filter_response(c, lam)
        assert np.all(h[lam > 0.65] > 0.9)
        assert np.all(np.abs(h[lam < 0.35]) < 0.1)

    def test_jackson_damping_monotone_transition(self):
        """Jackson kills the Gibbs overshoot: the response stays within
        [-eps, 1+eps] everywhere on the interval."""
        c = chebyshev_filter_coefficients(48, 0.3)
        h = filter_response(c, np.linspace(-1, 1, 1001))
        assert h.min() > -0.02
        assert h.max() < 1.02

    def test_undamped_expansion_overshoots(self):
        """Sanity: without damping the truncated expansion rings — the
        overshoot Jackson exists to remove is really there."""
        c = chebyshev_filter_coefficients(48, 0.3, damping="none")
        h = filter_response(c, np.linspace(-1, 1, 1001))
        assert h.max() > 1.02

    def test_sharper_with_order(self):
        lam = np.linspace(-1, 1, 801)
        widths = []
        for order in (16, 64, 256):
            c = chebyshev_filter_coefficients(order, 0.0)
            h = filter_response(c, lam)
            inside = lam[(h > 0.1) & (h < 0.9)]
            widths.append(inside.max() - inside.min())
        assert widths[0] > widths[1] > widths[2]

    def test_jackson_coefficients_shape_and_endpoints(self):
        g = jackson_damping(32)
        assert g.shape == (33,)
        assert g[0] == pytest.approx(1.0)
        assert g[-1] == pytest.approx(0.0, abs=0.01)
        assert np.all(np.diff(g) < 1e-12)  # monotone taper

    def test_validation(self):
        with pytest.raises(EigensolverError):
            chebyshev_filter_coefficients(0, 0.5)
        with pytest.raises(EigensolverError):
            chebyshev_filter_coefficients(8, 1.5)  # outside (lmin, lmax)
        with pytest.raises(EigensolverError):
            chebyshev_filter_coefficients(8, 0.5, damping="hann")


class TestApply:
    def test_matches_dense_eigendecomposition(self):
        """T_j recurrence on the operator == scalar response applied to
        each eigenvalue: Y = Q h(Λ) Qᵀ R up to truncation-free algebra."""
        A, lam, Q = _sym(40)
        c = chebyshev_filter_coefficients(24, 0.2)
        rng = np.random.default_rng(0)
        R = rng.standard_normal((40, 5))
        Y, n_apps = apply_chebyshev_filter(lambda B: A @ B, R, c)
        h = filter_response(c, lam)
        Y_ref = (Q * h) @ (Q.T @ R)
        assert n_apps == 24
        assert np.allclose(Y, Y_ref, atol=1e-10)

    def test_custom_interval_matches(self):
        A, lam, Q = _sym(40)
        A2 = 0.6 * A  # spectrum in [-0.6, 0.6], filtered on a wide domain
        c = chebyshev_filter_coefficients(24, 0.1, lmin=-1.5, lmax=1.5)
        R = np.eye(40, 3)
        Y, _ = apply_chebyshev_filter(lambda B: A2 @ B, R, c,
                                      lmin=-1.5, lmax=1.5)
        h = filter_response(c, 0.6 * lam, lmin=-1.5, lmax=1.5)
        assert np.allclose(Y, (Q * h) @ (Q.T @ R), atol=1e-10)

    def test_order_counts_applications(self):
        A, _, _ = _sym(20)
        calls = 0

        def ap(B):
            nonlocal calls
            calls += 1
            return A @ B

        c = chebyshev_filter_coefficients(17, 0.0)
        _, n_apps = apply_chebyshev_filter(ap, np.eye(20, 2), c)
        assert calls == n_apps == 17

    def test_degenerate_interval_raises(self):
        with pytest.raises(EigensolverError):
            apply_chebyshev_filter(lambda B: B, np.eye(4, 2),
                                   np.array([1.0, 0.5]), lmin=1.0, lmax=1.0)


class TestSignals:
    def test_seeded_and_stream_separated(self):
        a = random_signals(100, 8, seed=7)
        b = random_signals(100, 8, seed=7)
        c = random_signals(100, 8, seed=8)
        assert a.tobytes() == b.tobytes()
        assert a.tobytes() != c.tobytes()
        # stream separation: not the same stream the probe consumes
        probe_block = np.random.default_rng(7).standard_normal((100, 8))
        assert not np.allclose(a * math.sqrt(8), probe_block)

    def test_scaling(self):
        R = random_signals(4000, 16, seed=0)
        # E[|row|^2] = d · (1/d) = 1 after the 1/sqrt(d) scaling
        assert np.mean(np.sum(R * R, axis=1)) == pytest.approx(1.0, rel=0.1)

    def test_none_seed_non_deterministic(self):
        a = random_signals(50, 4, seed=None)
        b = random_signals(50, 4, seed=None)
        assert a.tobytes() != b.tobytes()

    def test_default_n_signals_scales_with_k(self):
        assert default_n_signals(2) == 16
        assert default_n_signals(20) == 2 * 20 + math.ceil(2 * math.log2(21))
        assert default_n_signals(100) > default_n_signals(10)

    def test_default_order_constant(self):
        assert DEFAULT_FILTER_ORDER == 48
