"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_datasets_lists_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("dti", "fb", "dblp", "syn200"):
            assert name in out
        assert "142541" in out

    def test_run_graph_dataset(self, capsys):
        assert main(["run", "syn200", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "eigensolver" in out
        assert "ARI" in out

    def test_run_with_cluster_override(self, capsys):
        assert main(["run", "fb", "--scale", "0.1", "--clusters", "4"]) == 0
        out = capsys.readouterr().out
        assert "k=4" in out
        assert "ARI" not in out  # override disables ground-truth scoring

    def test_compare(self, capsys):
        assert main(["compare", "fb", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Matlab" in out
        assert "winner" in out

    def test_unknown_dataset_rejected(self, capsys):
        assert main(["run", "imagenet"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: DatasetError:")
        assert "imagenet" in err

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCLIFailureModes:
    def test_missing_npz_path(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.npz")]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: DatasetError:")
        assert err.count("\n") == 1  # a single-line diagnostic

    def test_malformed_npz(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"definitely not a zip archive")
        assert main(["run", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: DatasetError:")

    def test_npz_missing_required_arrays(self, tmp_path, capsys):
        incomplete = tmp_path / "incomplete.npz"
        np.savez(incomplete, name=np.array("x"))  # no n_clusters
        assert main(["run", str(incomplete)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: DatasetError:")
        assert "n_clusters" in err

    def test_run_npz_problem_file(self, tmp_path, capsys):
        from repro.datasets.io import save_problem
        from repro.datasets.registry import load_dataset

        path = tmp_path / "syn.npz"
        save_problem(path, load_dataset("syn200", scale=0.03, seed=0))
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "eigensolver" in out

    def test_injected_fault_without_resilience_exits_nonzero(self, capsys):
        assert main(
            ["run", "syn200", "--scale", "0.03", "--chaos", "5",
             "--no-resilience"]
        ) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Error" in err.split(":")[1]  # typed error name
        assert err.count("\n") == 1

    def test_injected_fault_with_resilience_recovers(self, capsys):
        assert main(["run", "syn200", "--scale", "0.03", "--chaos", "5"]) == 0
        out = capsys.readouterr().out
        assert "injected faults fired" in out
        assert "resilience[" in out


class TestCLIServe:
    def _serve_json(self, tmp_path, extra, name="out.json"):
        import json

        out = tmp_path / name
        argv = [
            "serve", "--synthetic", "6", "--workload-mix", "0.5",
            "--seed", "0", "--json", str(out),
        ] + extra
        assert main(argv) == 0
        return json.loads(out.read_text())

    def test_serve_synthetic_text_report(self, capsys):
        assert main(["serve", "--synthetic", "4"]) == 0
        out = capsys.readouterr().out
        assert "requests" in out

    def test_serve_json_carries_labels_digest(self, tmp_path):
        payload = self._serve_json(tmp_path, [])
        digests = [r["labels_sha256"] for r in payload["responses"]
                   if r["status"] == "ok"]
        assert digests and all(
            isinstance(d, str) and len(d) == 64 for d in digests
        )

    def test_serve_no_preemption_flag(self, tmp_path):
        payload = self._serve_json(tmp_path, ["--no-preemption"])
        assert payload["scheduler"]["preemptions"] == 0

    def test_serve_speculation_window_flag(self, tmp_path):
        payload = self._serve_json(
            tmp_path, ["--speculation-window", "0.5"]
        )
        assert "spec_holds" in payload["batches"]

    def test_serve_cache_dir_warm_restart(self, tmp_path):
        """Two processes over one trace: the second warms from disk and
        reproduces the first's labels bit for bit."""
        store = str(tmp_path / "store")
        cold = self._serve_json(
            tmp_path, ["--cache-dir", store], name="cold.json"
        )
        warm = self._serve_json(
            tmp_path, ["--cache-dir", store], name="warm.json"
        )
        assert cold["cache"]["disk_writes"] > 0
        assert warm["cache"]["disk_hits"] > 0
        assert warm["predict"]["cold_fits"] == 0
        digest = lambda p: {
            r["request_id"]: r["labels_sha256"] for r in p["responses"]
        }
        assert digest(warm) == digest(cold)
