"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCLI:
    def test_datasets_lists_table2(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("dti", "fb", "dblp", "syn200"):
            assert name in out
        assert "142541" in out

    def test_run_graph_dataset(self, capsys):
        assert main(["run", "syn200", "--scale", "0.03"]) == 0
        out = capsys.readouterr().out
        assert "eigensolver" in out
        assert "ARI" in out

    def test_run_with_cluster_override(self, capsys):
        assert main(["run", "fb", "--scale", "0.1", "--clusters", "4"]) == 0
        out = capsys.readouterr().out
        assert "k=4" in out
        assert "ARI" not in out  # override disables ground-truth scoring

    def test_compare(self, capsys):
        assert main(["compare", "fb", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "Matlab" in out
        assert "winner" in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "imagenet"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
