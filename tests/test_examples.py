"""The shipped examples must run clean — they are part of the public API
surface and double as end-to-end smoke tests."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "dti_brain_parcellation",
        "community_detection",
        "reverse_communication",
        "custom_hardware",
    } <= names
