"""cuBLAS wrapper correctness against dense NumPy references."""

import numpy as np
import pytest

from repro import cublas
from repro.cuda.device import Device
from repro.errors import DeviceArrayError


class TestLevel1:
    def test_scal(self, device, rng):
        x = device.to_device(rng.random(10))
        ref = 2.5 * x.data.copy()
        cublas.scal(2.5, x)
        assert np.allclose(x.data, ref)

    def test_axpy(self, device, rng):
        x = device.to_device(rng.random(10))
        y = device.to_device(rng.random(10))
        ref = 3.0 * x.data + y.data
        cublas.axpy(3.0, x, y)
        assert np.allclose(y.data, ref)

    def test_axpy_shape_mismatch(self, device, rng):
        with pytest.raises(DeviceArrayError):
            cublas.axpy(1.0, device.zeros(3), device.zeros(4))

    def test_dot(self, device, rng):
        x = device.to_device(rng.random(64))
        y = device.to_device(rng.random(64))
        assert cublas.dot(x, y) == pytest.approx(float(x.data @ y.data))

    def test_dot_charges_d2h_scalar(self, device, rng):
        x = device.to_device(rng.random(8))
        d2h0 = device.timeline.count("d2h")
        cublas.dot(x, x)
        assert device.timeline.count("d2h") == d2h0 + 1

    def test_nrm2(self, device, rng):
        x = device.to_device(rng.random(32))
        assert cublas.nrm2(x) == pytest.approx(float(np.linalg.norm(x.data)))


class TestLevel2:
    def test_gemv(self, device, rng):
        A = device.to_device(rng.random((5, 3)))
        x = device.to_device(rng.random(3))
        y = cublas.gemv(A, x)
        assert np.allclose(y.data, A.data @ x.data)

    def test_gemv_transposed(self, device, rng):
        A = device.to_device(rng.random((5, 3)))
        x = device.to_device(rng.random(5))
        y = cublas.gemv(A, x, trans=True)
        assert np.allclose(y.data, A.data.T @ x.data)

    def test_gemv_accumulate(self, device, rng):
        A = device.to_device(rng.random((4, 4)))
        x = device.to_device(rng.random(4))
        y = device.to_device(rng.random(4))
        ref = 2.0 * (A.data @ x.data) + 0.5 * y.data
        cublas.gemv(A, x, y, alpha=2.0, beta=0.5)
        assert np.allclose(y.data, ref)

    def test_gemv_dim_mismatch(self, device, rng):
        with pytest.raises(DeviceArrayError):
            cublas.gemv(device.zeros((3, 4)), device.zeros(3))

    def test_ger(self, device, rng):
        x = device.to_device(rng.random(4))
        y = device.to_device(rng.random(3))
        A = device.zeros((4, 3))
        cublas.ger(1.5, x, y, A)
        assert np.allclose(A.data, 1.5 * np.outer(x.data, y.data))


class TestLevel3:
    def test_gemm_basic(self, device, rng):
        A = device.to_device(rng.random((4, 6)))
        B = device.to_device(rng.random((6, 3)))
        C = cublas.gemm(A, B)
        assert np.allclose(C.data, A.data @ B.data)

    @pytest.mark.parametrize("ta,tb", [(False, False), (True, False),
                                       (False, True), (True, True)])
    def test_gemm_transposes(self, device, rng, ta, tb):
        A = device.to_device(rng.random((6, 4) if ta else (4, 6)))
        B = device.to_device(rng.random((3, 6) if tb else (6, 3)))
        C = cublas.gemm(A, B, transa=ta, transb=tb)
        Aop = A.data.T if ta else A.data
        Bop = B.data.T if tb else B.data
        assert np.allclose(C.data, Aop @ Bop)

    def test_gemm_kmeans_update_form(self, device, rng):
        # S <- S - 2 V C^T, the Algorithm 4 distance completion
        V = device.to_device(rng.random((10, 4)))
        C = device.to_device(rng.random((3, 4)))
        S = device.to_device(rng.random((10, 3)))
        ref = S.data - 2.0 * V.data @ C.data.T
        cublas.gemm(V, C, S, alpha=-2.0, beta=1.0, transb=True)
        assert np.allclose(S.data, ref)

    def test_gemm_inner_dim_mismatch(self, device, rng):
        with pytest.raises(DeviceArrayError):
            cublas.gemm(device.zeros((4, 5)), device.zeros((6, 3)))

    def test_gemm_bad_c_shape(self, device, rng):
        with pytest.raises(DeviceArrayError):
            cublas.gemm(
                device.zeros((4, 5)), device.zeros((5, 3)), device.zeros((4, 4))
            )

    def test_gemm_charges_dense_kernel(self, device, rng):
        A = device.to_device(rng.random((64, 64)))
        t0 = device.elapsed
        cublas.gemm(A, A)
        assert device.elapsed > t0

    def test_syrk(self, device, rng):
        A = device.to_device(rng.random((5, 3)))
        C = cublas.syrk(A)
        assert np.allclose(C.data, A.data @ A.data.T)

    def test_syrk_trans(self, device, rng):
        A = device.to_device(rng.random((5, 3)))
        C = cublas.syrk(A, trans=True)
        assert np.allclose(C.data, A.data.T @ A.data)

    def test_cross_device_rejected(self, rng):
        d1, d2 = Device(), Device()
        with pytest.raises(DeviceArrayError):
            cublas.gemm(d1.to_device(rng.random((2, 2))),
                        d2.to_device(rng.random((2, 2))))
