"""Dataset registry: Table II stats and scaling behavior."""

import numpy as np
import pytest

from repro.datasets.registry import DATASETS, PAPER_STATS, load_dataset
from repro.errors import DatasetError


class TestPaperStats:
    def test_table2_verbatim(self):
        assert PAPER_STATS["dti"]["nodes"] == 142541
        assert PAPER_STATS["dti"]["edges"] == 3992290
        assert PAPER_STATS["fb"] == {"nodes": 4039, "edges": 88234, "clusters": 10}
        assert PAPER_STATS["dblp"]["nodes"] == 317080
        assert PAPER_STATS["syn200"] == {
            "nodes": 20000, "edges": 773388, "clusters": 200,
        }

    def test_all_datasets_registered(self):
        # the four Table II workloads plus the paper-scale synthetic SBM
        # the compressive tier benches against (not a Table II row)
        assert set(DATASETS) == {"dti", "fb", "dblp", "syn200", "sbm50k"}

    def test_sbm50k_stats(self):
        assert PAPER_STATS["sbm50k"]["nodes"] == 50000
        assert PAPER_STATS["sbm50k"]["clusters"] == 20


class TestLoading:
    @pytest.mark.parametrize("name", ["fb", "syn200"])
    def test_graph_datasets(self, name):
        ds = load_dataset(name, scale=0.2, seed=0)
        assert ds.graph is not None
        assert ds.points is None
        assert ds.labels is not None
        assert ds.n > 0

    def test_dti_is_point_input(self):
        ds = load_dataset("dti", scale=0.01, seed=0)
        assert ds.points is not None
        assert ds.edges is not None
        assert ds.points.shape[1] == 90

    def test_scale_tracks_paper_node_count(self):
        ds = load_dataset("syn200", scale=0.1, seed=0)
        assert abs(ds.n - 2000) < 100

    def test_dti_scale_tracks_paper(self):
        ds = load_dataset("dti", scale=0.02, seed=0)
        expect = 142541 * 0.02
        assert 0.5 * expect < ds.n < 2.0 * expect

    def test_unknown_name(self):
        with pytest.raises(DatasetError):
            load_dataset("imagenet")

    def test_bad_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("fb", scale=0.0)
        with pytest.raises(DatasetError):
            load_dataset("fb", scale=2.0)

    def test_n_edges_property(self):
        ds = load_dataset("fb", scale=0.1, seed=0)
        assert ds.n_edges == ds.graph.nnz // 2

    def test_sbm50k_scaled_load(self):
        ds = load_dataset("sbm50k", scale=0.05, seed=0)
        assert ds.graph is not None
        assert ds.labels is not None
        assert ds.n_clusters == 20
        assert abs(ds.n - 2500) < 100

    def test_sbm50k_floor_n(self):
        """Tiny scales clamp to a floor big enough for 20 communities."""
        ds = load_dataset("sbm50k", scale=0.001, seed=0)
        assert ds.n >= 1000

    def test_seed_reproducibility(self):
        a = load_dataset("syn200", scale=0.05, seed=4)
        b = load_dataset("syn200", scale=0.05, seed=4)
        assert np.array_equal(a.graph.to_dense(), b.graph.to_dense())

    def test_paper_stats_attached(self):
        ds = load_dataset("fb", scale=0.1)
        assert ds.paper_stats["nodes"] == 4039


class TestMemoization:
    """load_dataset memoizes per (name, scale, seed): the serve bench
    replays the same few workloads hundreds of times and must not pay
    repeated SBM/graph synthesis."""

    def test_same_key_returns_same_object(self):
        from repro.datasets.registry import clear_dataset_cache

        clear_dataset_cache()
        a = load_dataset("syn200", scale=0.05, seed=4)
        b = load_dataset("syn200", scale=0.05, seed=4)
        assert a is b

    def test_distinct_keys_distinct_objects(self):
        a = load_dataset("syn200", scale=0.05, seed=4)
        assert load_dataset("syn200", scale=0.05, seed=5) is not a
        assert load_dataset("syn200", scale=0.06, seed=4) is not a
        assert load_dataset("fb", scale=0.05, seed=4) is not a

    def test_clear_drops_memo(self):
        from repro.datasets.registry import clear_dataset_cache

        a = load_dataset("syn200", scale=0.05, seed=4)
        clear_dataset_cache()
        b = load_dataset("syn200", scale=0.05, seed=4)
        assert a is not b
        # ...but the synthesis is still deterministic
        assert np.array_equal(a.graph.to_dense(), b.graph.to_dense())

    def test_int_float_scale_normalize_to_one_key(self):
        from repro.datasets.registry import _CACHE, clear_dataset_cache

        clear_dataset_cache()
        load_dataset("syn200", scale=0.05, seed=0)
        n0 = len(_CACHE)
        load_dataset("syn200", scale=0.05, seed=0)
        assert len(_CACHE) == n0
