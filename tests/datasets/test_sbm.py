"""Stochastic block model generator distributional checks."""

import numpy as np
import pytest

from repro.datasets.sbm import stochastic_block_model
from repro.errors import DatasetError


class TestSBM:
    def test_edge_counts_near_expectation(self, rng):
        sizes = [100, 100, 100]
        edges, labels = stochastic_block_model(sizes, p_in=0.2, p_out=0.01, rng=rng)
        within = labels[edges[:, 0]] == labels[edges[:, 1]]
        exp_within = 3 * (100 * 99 / 2) * 0.2
        exp_cross = 3 * (100 * 100) * 0.01
        assert abs(within.sum() - exp_within) < 0.15 * exp_within
        assert abs((~within).sum() - exp_cross) < 0.3 * exp_cross

    def test_pairs_are_i_less_j_and_unique(self, rng):
        edges, _ = stochastic_block_model([50, 50], p_in=0.3, p_out=0.05, rng=rng)
        assert np.all(edges[:, 0] < edges[:, 1])
        keys = edges[:, 0] * 100 + edges[:, 1]
        assert np.unique(keys).size == keys.size

    def test_labels_match_sizes(self, rng):
        _, labels = stochastic_block_model([10, 20, 30], p_in=0.5, p_out=0.0, rng=rng)
        assert np.bincount(labels).tolist() == [10, 20, 30]

    def test_zero_cross_probability_is_block_diagonal(self, rng):
        edges, labels = stochastic_block_model([30, 30], p_in=0.5, p_out=0.0, rng=rng)
        assert np.all(labels[edges[:, 0]] == labels[edges[:, 1]])

    def test_full_p_matrix(self, rng):
        P = np.array([[0.5, 0.0], [0.0, 0.5]])
        edges, labels = stochastic_block_model([20, 20], P=P, rng=rng)
        assert np.all(labels[edges[:, 0]] == labels[edges[:, 1]])

    def test_asymmetric_p_rejected(self, rng):
        P = np.array([[0.5, 0.1], [0.2, 0.5]])
        with pytest.raises(DatasetError, match="symmetric"):
            stochastic_block_model([5, 5], P=P, rng=rng)

    def test_p_out_of_range_rejected(self, rng):
        with pytest.raises(DatasetError):
            stochastic_block_model([5, 5], p_in=1.5, p_out=0.1, rng=rng)

    def test_missing_params_rejected(self, rng):
        with pytest.raises(DatasetError):
            stochastic_block_model([5, 5], rng=rng)

    def test_bad_sizes_rejected(self, rng):
        with pytest.raises(DatasetError):
            stochastic_block_model([5, 0], p_in=0.5, p_out=0.1, rng=rng)

    def test_p_one_gives_cliques(self, rng):
        edges, _ = stochastic_block_model([6], p_in=1.0, p_out=0.0, rng=rng)
        assert edges.shape[0] == 15

    def test_reproducible(self):
        e1, _ = stochastic_block_model(
            [30, 30], p_in=0.3, p_out=0.02, rng=np.random.default_rng(9)
        )
        e2, _ = stochastic_block_model(
            [30, 30], p_in=0.3, p_out=0.02, rng=np.random.default_rng(9)
        )
        assert np.array_equal(e1, e2)

    def test_singleton_blocks(self, rng):
        edges, labels = stochastic_block_model([1, 1, 1], p_in=1.0, p_out=1.0, rng=rng)
        assert edges.shape[0] == 3  # all cross pairs

    def test_triangular_index_inversion_covers_all_pairs(self, rng):
        # p=1 within one block must produce every (i, j) exactly once
        edges, _ = stochastic_block_model([12], p_in=1.0, p_out=0.0, rng=rng)
        expect = {(i, j) for i in range(12) for j in range(i + 1, 12)}
        assert set(map(tuple, edges.tolist())) == expect
