"""FB-like and DBLP-like graph generators."""

import numpy as np
import pytest

from repro.datasets.dblp import make_coauthor_graph
from repro.datasets.social import make_social_graph
from repro.errors import DatasetError


class TestSocialGraph:
    def test_target_sizes_hit(self):
        edges, labels = make_social_graph(
            n_nodes=1000, n_communities=10, target_edges=20000, seed=0
        )
        assert labels.size == 1000
        assert abs(edges.shape[0] - 20000) < 0.15 * 20000

    def test_ten_communities(self):
        _, labels = make_social_graph(n_nodes=500, target_edges=5000, seed=1)
        assert np.unique(labels).size == 10

    def test_community_structure_dominates(self):
        edges, labels = make_social_graph(
            n_nodes=800, target_edges=16000, mix=0.03, seed=2
        )
        within = (labels[edges[:, 0]] == labels[edges[:, 1]]).mean()
        assert within > 0.9

    def test_heterogeneous_sizes(self):
        _, labels = make_social_graph(n_nodes=1000, target_edges=10000, seed=0)
        sizes = np.bincount(labels)
        assert sizes.max() > 1.5 * sizes.min()

    def test_bad_params(self):
        with pytest.raises(DatasetError):
            make_social_graph(n_nodes=5, n_communities=10)
        with pytest.raises(DatasetError):
            make_social_graph(mix=1.0)


class TestCoauthorGraph:
    def test_target_sizes_hit(self):
        edges, labels = make_coauthor_graph(
            n_nodes=5000, n_communities=100, target_edges=17000, seed=0
        )
        assert labels.size == 5000
        assert abs(edges.shape[0] - 17000) < 0.25 * 17000

    def test_community_sizes_heavy_tailed_min_two(self):
        _, labels = make_coauthor_graph(
            n_nodes=3000, n_communities=150, target_edges=10000, seed=1
        )
        sizes = np.bincount(labels)
        assert sizes.min() >= 2
        assert sizes.max() > 5 * np.median(sizes)

    def test_sparse_like_dblp(self):
        # mean degree ~ 2m/n ~ 6.6 at paper ratios
        edges, labels = make_coauthor_graph(
            n_nodes=6000, n_communities=120, target_edges=19866, seed=2
        )
        mean_deg = 2 * edges.shape[0] / 6000
        assert 4 < mean_deg < 10

    def test_exact_node_total(self):
        _, labels = make_coauthor_graph(
            n_nodes=2345, n_communities=77, target_edges=8000, seed=3
        )
        assert labels.size == 2345

    def test_bad_params(self):
        with pytest.raises(DatasetError):
            make_coauthor_graph(n_nodes=10, n_communities=20)
