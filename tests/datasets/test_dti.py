"""Synthetic DTI volume generator."""

import numpy as np
import pytest

from repro.datasets.dti import make_dti_volume
from repro.errors import DatasetError


@pytest.fixture(scope="module")
def vol():
    return make_dti_volume(grid=(12, 12, 12), n_regions=8, seed=0)


class TestDTIVolume:
    def test_profile_dimension_is_90(self, vol):
        assert vol.d == 90

    def test_voxels_inside_ellipsoid(self, vol):
        # an ellipsoid mask keeps < the full box
        assert vol.n < 12 * 12 * 12
        assert vol.n > 0.3 * 12**3

    def test_regions_spatially_contiguous(self, vol):
        """Nearest-seed parcels: each voxel's label matches at least one
        spatial neighbor (no salt-and-pepper labels)."""
        from repro.graph.neighbors import epsilon_neighbors_grid

        pairs = epsilon_neighbors_grid(vol.positions, 2.0)
        agree = vol.labels[pairs[:, 0]] == vol.labels[pairs[:, 1]]
        assert agree.mean() > 0.6

    def test_edges_respect_radius(self, vol):
        d = np.linalg.norm(
            vol.positions[vol.edges[:, 0]] - vol.positions[vol.edges[:, 1]], axis=1
        )
        assert np.all(d <= 4.0 + 1e-9)

    def test_profiles_cluster_by_region(self, vol):
        """Same-region voxels correlate more than cross-region ones."""
        rng = np.random.default_rng(0)
        idx = rng.choice(vol.n, size=(200, 2))
        same = vol.labels[idx[:, 0]] == vol.labels[idx[:, 1]]
        X = vol.profiles - vol.profiles.mean(axis=1, keepdims=True)
        X /= np.linalg.norm(X, axis=1, keepdims=True)
        corr = np.einsum("ed,ed->e", X[idx[:, 0]], X[idx[:, 1]])
        if same.any() and (~same).any():
            assert corr[same].mean() > corr[~same].mean() + 0.05

    def test_all_regions_used(self, vol):
        assert np.unique(vol.labels).size == 8

    def test_noise_controls_difficulty(self):
        clean = make_dti_volume(grid=(8, 8, 8), n_regions=4, noise=0.01, seed=1)
        noisy = make_dti_volume(grid=(8, 8, 8), n_regions=4, noise=2.0, seed=1)

        def snr(v):
            X = v.profiles - v.profiles.mean(axis=1, keepdims=True)
            X /= np.linalg.norm(X, axis=1, keepdims=True) + 1e-30
            pairs = v.edges[:500]
            same = v.labels[pairs[:, 0]] == v.labels[pairs[:, 1]]
            c = np.einsum("ed,ed->e", X[pairs[:, 0]], X[pairs[:, 1]])
            return c[same].mean() - (c[~same].mean() if (~same).any() else 0)

        assert snr(clean) > snr(noisy)

    def test_grid_too_small_rejected(self):
        with pytest.raises(DatasetError):
            make_dti_volume(grid=(1, 8, 8), n_regions=2)

    def test_too_many_regions_rejected(self):
        with pytest.raises(DatasetError):
            make_dti_volume(grid=(6, 6, 6), n_regions=10_000)

    def test_bad_params_rejected(self):
        with pytest.raises(DatasetError):
            make_dti_volume(n_regions=0)

    def test_reproducible(self):
        v1 = make_dti_volume(grid=(8, 8, 8), n_regions=4, seed=3)
        v2 = make_dti_volume(grid=(8, 8, 8), n_regions=4, seed=3)
        assert np.array_equal(v1.profiles, v2.profiles)
        assert np.array_equal(v1.edges, v2.edges)

    def test_positions_in_millimetres(self, vol):
        # 2 mm spacing: coordinates are even
        assert np.allclose(vol.positions % 2.0, 0.0)
