"""Dataset I/O: SNAP edge lists and NPZ round trips."""

import io

import numpy as np
import pytest

from repro.datasets.io import (
    graph_from_snap,
    load_problem,
    read_snap_edges,
    save_problem,
)
from repro.datasets.registry import load_dataset
from repro.errors import DatasetError

SNAP_SAMPLE = """\
# Undirected graph: example
# Nodes: 5 Edges: 4
0 1
1\t2
# a comment mid-file
7 9
9 0

"""


class TestReadSnap:
    def test_parses_with_comments_and_tabs(self):
        edges, ids = read_snap_edges(io.StringIO(SNAP_SAMPLE))
        assert edges.shape == (4, 2)
        assert ids is not None

    def test_relabel_compacts_ids(self):
        edges, ids = read_snap_edges(io.StringIO(SNAP_SAMPLE))
        assert edges.max() == len(ids) - 1
        assert ids.tolist() == [0, 1, 2, 7, 9]
        # edge (7, 9) becomes (3, 4)
        assert [3, 4] in edges.tolist()

    def test_no_relabel_preserves_ids(self):
        edges, ids = read_snap_edges(io.StringIO(SNAP_SAMPLE), relabel=False)
        assert ids is None
        assert [7, 9] in edges.tolist()

    def test_empty_file(self):
        edges, ids = read_snap_edges(io.StringIO("# nothing\n"))
        assert edges.shape == (0, 2)

    def test_malformed_line_rejected(self):
        with pytest.raises(DatasetError, match="malformed"):
            read_snap_edges(io.StringIO("0\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(DatasetError, match="non-integer"):
            read_snap_edges(io.StringIO("a b\n"))

    def test_from_path(self, tmp_path):
        p = tmp_path / "graph.txt"
        p.write_text(SNAP_SAMPLE)
        edges, _ = read_snap_edges(p)
        assert edges.shape == (4, 2)

    def test_graph_from_snap(self):
        W = graph_from_snap(io.StringIO(SNAP_SAMPLE))
        assert W.shape == (5, 5)
        d = W.to_dense()
        assert np.allclose(d, d.T)


class TestProblemRoundTrip:
    def test_graph_problem(self, tmp_path):
        ds = load_dataset("fb", scale=0.1, seed=0)
        p = tmp_path / "fb.npz"
        save_problem(p, ds)
        back = load_problem(p)
        assert back.name == "fb"
        assert back.n_clusters == ds.n_clusters
        assert np.array_equal(back.graph.to_dense(), ds.graph.to_dense())
        assert np.array_equal(back.labels, ds.labels)

    def test_point_problem(self, tmp_path):
        ds = load_dataset("dti", scale=0.005, seed=0)
        p = tmp_path / "dti.npz"
        save_problem(p, ds)
        back = load_problem(p)
        assert np.array_equal(back.points, ds.points)
        assert np.array_equal(back.edges, ds.edges)
        assert back.graph is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_problem(tmp_path / "nope.npz")

    def test_loaded_problem_clusters(self, tmp_path):
        from repro.core.pipeline import SpectralClustering
        from repro.metrics.external import adjusted_rand_index

        ds = load_dataset("syn200", scale=0.05, seed=1)
        p = tmp_path / "syn.npz"
        save_problem(p, ds)
        back = load_problem(p)
        res = SpectralClustering(n_clusters=back.n_clusters, seed=0).fit(
            graph=back.graph
        )
        assert adjusted_rand_index(res.labels, back.labels) > 0.7
