"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.cuda.device import Device

# deterministic property tests: same examples every run (no CI flakes)
settings.register_profile(
    "ci", derandomize=True, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("ci")
from repro.datasets.sbm import stochastic_block_model
from repro.sparse.construct import from_edge_list, random_sparse


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def device() -> Device:
    """A fresh simulated K20c per test."""
    return Device()


@pytest.fixture
def small_sym_csr(rng):
    """A random symmetric 80x80 sparse matrix in CSR."""
    return random_sparse(80, 80, 0.15, rng=rng, symmetric=True).to_csr()


@pytest.fixture
def sbm_graph(rng):
    """A 6-community SBM with clear structure: (W, labels)."""
    sizes = [40] * 6
    edges, labels = stochastic_block_model(sizes, p_in=0.5, p_out=0.01, rng=rng)
    W = from_edge_list(edges, n_nodes=sum(sizes))
    return W, labels


@pytest.fixture
def blobs(rng):
    """Well-separated Gaussian blobs: (X, labels, k)."""
    k, per, d = 5, 60, 6
    centers = rng.standard_normal((k, d)) * 8.0
    labels = np.repeat(np.arange(k), per)
    X = centers[labels] + 0.4 * rng.standard_normal((k * per, d))
    return X, labels, k
