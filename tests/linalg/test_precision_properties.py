"""Property-based accuracy contracts of the mixed-precision solver path.

The precision registry (:mod:`repro.precision`) promises three things the
tolerance-banded harness builds on, checked here over multiple seeded SBM
graphs rather than one lucky instance:

* a reduced-storage solve's *raw* Ritz values land within the Weyl-bound
  tolerance of the exact fp64 spectrum (``ritz_tolerance``);
* the fp64 iterative-refinement history is monotone non-increasing and
  actually contracts the residual;
* fp16 degrades gracefully — converged, finite, and recovered to near
  fp64 accuracy by the refinement pass — instead of failing loudly.
"""

import numpy as np
import pytest

from repro.core.workflow import hybrid_eigensolver
from repro.cuda.device import Device
from repro.cusparse.matrices import coo_to_device
from repro.datasets.sbm import stochastic_block_model
from repro.errors import ClusteringError
from repro.graph.laplacian import device_sym_normalize
from repro.linalg.refine import block_residual, refine_eigenpairs
from repro.precision import (
    PRECISIONS,
    TOL_FLOORS,
    as_f64,
    kernel_letter,
    precision_of,
    quantize,
    quantize_roundtrip,
    resolve_precision,
    ritz_tolerance,
    value_nbytes,
)

SEEDS = (0, 1, 2)
K = 6


def _operator(seed: int):
    """A seeded 6-community SBM normalized adjacency on a fresh device."""
    rng = np.random.default_rng(100 + seed)
    edges, labels = stochastic_block_model(
        [40] * K, p_in=0.5, p_out=0.01, rng=rng
    )
    from repro.sparse.construct import from_edge_list

    W = from_edge_list(edges, n_nodes=40 * K)
    dev = Device()
    dcoo = coo_to_device(dev, W.sorted_by_row())
    return dev, device_sym_normalize(dcoo), W.shape[0]


def _solve(seed: int, **kw):
    dev, op, n = _operator(seed)
    theta, U, stats = hybrid_eigensolver(dev, op, k=K, seed=0, **kw)
    return theta, U, stats, n


class TestRegistry:
    def test_resolve_precision_roundtrips(self):
        for name in PRECISIONS:
            dt = resolve_precision(name)
            assert precision_of(dt) == name
            assert kernel_letter(dt.itemsize) in ("D", "S", "H")

    def test_resolve_precision_rejects_unknown(self):
        with pytest.raises(ClusteringError):
            resolve_precision("bf16")

    def test_fp64_helpers_are_identities(self, rng):
        x = rng.standard_normal(64)
        assert as_f64(x) is x
        assert quantize(x, np.dtype(np.float64)) is x
        assert quantize_roundtrip(x, np.dtype(np.float64)) is x

    def test_quantize_roundtrip_carries_storage_error(self, rng):
        x = rng.standard_normal(512)
        for name in ("fp32", "fp16"):
            dt = resolve_precision(name)
            xq = quantize_roundtrip(x, dt)
            assert xq.dtype == np.float64
            err = np.max(np.abs(xq - x) / np.maximum(1e-30, np.abs(x)))
            assert 0.0 < err <= 2.0 * np.finfo(dt).eps

    def test_value_nbytes_is_itemsize_driven(self):
        assert value_nbytes(10, np.dtype(np.float64)) == 80
        assert value_nbytes(10, np.dtype(np.float32)) == 40
        assert value_nbytes(10, 2) == 20

    def test_ritz_tolerance_orders_with_eps(self):
        n = 1000
        t64 = ritz_tolerance(np.dtype(np.float64), n)
        t32 = ritz_tolerance(np.dtype(np.float32), n)
        t16 = ritz_tolerance(np.dtype(np.float16), n)
        assert 0.0 < t64 < t32 < t16


class TestReducedRitzAccuracy:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fp32_raw_ritz_within_theory_bound(self, seed):
        """With zero subspace advances (``refine_steps=0`` leaves only the
        mandatory measurement + in-span polish, a single operator
        application), fp32 Ritz values sit within the Weyl perturbation
        bound of the exact spectrum (operator norm is <= 1 for the
        normalized adjacency, so scale=1).  The bound holds for the raw
        quantized solve; the polish only rotates within its span, so it
        cannot leave the bound."""
        theta64, _, _, n = _solve(seed, tol=1e-10)
        theta32, _, s32, _ = _solve(
            seed, tol=1e-10, precision="fp32", refine_steps=0
        )
        bound = ritz_tolerance(np.dtype(np.float32), n)
        assert float(np.max(np.abs(theta32 - theta64))) <= bound
        assert s32.precision == "fp32" and s32.refine_steps == 1
        assert s32.refine_history is not None
        assert len(s32.refine_history) == 2

    @pytest.mark.parametrize("seed", SEEDS)
    def test_refinement_recovers_fp64_accuracy(self, seed):
        theta64, U64, _, _ = _solve(seed, tol=1e-10)
        theta32, U32, s32, _ = _solve(seed, tol=1e-10, precision="fp32")
        # default refinement: eigenvalues to ~fp64 roundoff, and the
        # refined residual far below the fp32 storage floor
        assert float(np.max(np.abs(theta32 - theta64))) < 1e-10
        assert s32.refine_residual is not None
        assert s32.refine_residual < TOL_FLOORS["fp32"]
        # subspaces agree (columns may flip sign)
        overlap = np.abs(U64.T @ U32)
        assert np.allclose(np.diag(overlap), 1.0, atol=1e-5)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_refine_history_is_monotone(self, seed):
        """An explicit ``refine_steps`` disables the adaptive early exit:
        the history holds the incoming residual, the in-span polish, and
        one entry per requested advance — 4 + 2 entries here, monotone by
        the keep-best guard."""
        _, _, stats, _ = _solve(
            seed, tol=1e-10, precision="fp16", refine_steps=4
        )
        hist = stats.refine_history
        assert hist is not None and len(hist) == 6
        assert stats.refine_steps == 5  # operator applications
        assert all(b <= a for a, b in zip(hist, hist[1:]))
        assert hist[-1] < hist[0]  # genuinely contracted
        assert stats.refine_residual == hist[-1]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fp16_degrades_gracefully(self, seed):
        """fp16 must converge, stay finite, and land inside its band."""
        theta64, _, _, _ = _solve(seed, tol=1e-10)
        theta16, U16, s16, _ = _solve(seed, tol=1e-10, precision="fp16")
        assert s16.converged
        assert np.all(np.isfinite(theta16)) and np.all(np.isfinite(U16))
        assert s16.refine_residual < TOL_FLOORS["fp16"]
        assert float(np.max(np.abs(theta16 - theta64))) < 1e-4

    @pytest.mark.parametrize("seed", SEEDS)
    def test_reduced_solve_moves_fewer_modeled_bytes(self, seed):
        _, _, s64, _ = _solve(seed, tol=1e-8)
        _, _, s32, _ = _solve(seed, tol=1e-8, precision="fp32")
        _, _, s16, _ = _solve(seed, tol=1e-8, precision="fp16")
        assert s64.spmv_bytes > s32.spmv_bytes > s16.spmv_bytes > 0


class TestRefineLoopUnit:
    def test_refine_on_psd_matrix_contracts(self, rng):
        n, k = 120, 5
        M = rng.standard_normal((n, n))
        A = M @ M.T / n
        w, V = np.linalg.eigh(A)
        exact_U = V[:, -k:]
        # perturb the exact invariant subspace
        U0, _ = np.linalg.qr(exact_U + 1e-3 * rng.standard_normal((n, k)))
        theta0 = np.sort(np.diag(U0.T @ A @ U0))
        apply_block = lambda B: A @ B  # noqa: E731
        theta, U, res, hist = refine_eigenpairs(
            apply_block, theta0, U0, steps=3, which="LA"
        )
        assert all(b <= a for a, b in zip(hist, hist[1:]))
        assert res < hist[0]
        assert np.allclose(theta, w[-k:], atol=1e-6)

    def test_zero_steps_measures_and_polishes_in_span(self, rng):
        """``steps=0`` costs exactly one operator application: it records
        the incoming residual and applies the free in-span Rayleigh–Ritz
        polish — no subspace advance, so span(U) is unchanged even though
        the block may rotate."""
        n, k = 40, 3
        A = np.diag(np.arange(1.0, n + 1.0))
        U0, _ = np.linalg.qr(rng.standard_normal((n, k)))
        theta0 = np.diag(U0.T @ A @ U0)
        theta, U, res, hist = refine_eigenpairs(
            lambda B: A @ B, theta0, U0, steps=0
        )
        assert len(hist) == 2  # incoming residual + in-span polish
        assert res == hist[-1] <= hist[0]
        # polish never leaves the starting span: U = U0 @ (U0.T @ U)
        assert np.allclose(U0 @ (U0.T @ U), U, atol=1e-12)

    def test_early_exit_stops_at_target(self, rng):
        """With ``target`` set, advances stop as soon as the best residual
        is inside it — an already-converged start pays one application."""
        n, k = 60, 4
        A = np.diag(np.linspace(0.0, 1.0, n))
        U0 = np.eye(n)[:, -k:]
        theta0 = np.linspace(1.0, 1.0, k) * np.diag(A)[-k:]
        theta, U, res, hist = refine_eigenpairs(
            lambda B: A @ B, theta0, U0, steps=5, target=1e-12
        )
        assert res <= 1e-12
        assert len(hist) == 2  # measurement + polish, zero advances

    def test_block_residual_zero_for_exact_pairs(self):
        A = np.diag([1.0, 2.0, 3.0, 4.0])
        U = np.eye(4)[:, 2:]
        theta = np.array([3.0, 4.0])
        assert block_residual(A @ U, U, theta) == 0.0
