"""Dense symmetric eigensolver (Householder + QL), from scratch."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.eigh import eigh, householder_tridiagonalize
from repro.linalg.tridiag import tridiag_to_dense


def random_sym(rng, n):
    A = rng.standard_normal((n, n))
    return (A + A.T) / 2


class TestTridiagonalization:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 20, 50])
    def test_similarity_preserved(self, rng, n):
        A = random_sym(rng, n)
        a, b, Q = householder_tridiagonalize(A)
        T = tridiag_to_dense(a, b)
        assert np.allclose(Q @ T @ Q.T, A, atol=1e-10)
        assert np.allclose(Q @ Q.T, np.eye(n), atol=1e-12)

    def test_eigenvalues_preserved(self, rng):
        A = random_sym(rng, 15)
        a, b, _ = householder_tridiagonalize(A)
        T = tridiag_to_dense(a, b)
        assert np.allclose(
            np.linalg.eigvalsh(T), np.linalg.eigvalsh(A), atol=1e-10
        )

    def test_already_tridiagonal_is_fixed_point(self, rng):
        T0 = tridiag_to_dense(rng.standard_normal(6), rng.standard_normal(5))
        a, b, Q = householder_tridiagonalize(T0)
        # structure preserved up to subdiagonal signs
        assert np.allclose(np.abs(a), np.abs(np.diag(T0)))
        assert np.allclose(np.abs(b), np.abs(np.diag(T0, -1)))

    def test_no_q_mode(self, rng):
        A = random_sym(rng, 8)
        a, b, Q = householder_tridiagonalize(A, compute_q=False)
        assert Q is None
        assert np.allclose(
            np.sort(np.linalg.eigvalsh(tridiag_to_dense(a, b))),
            np.sort(np.linalg.eigvalsh(A)),
            atol=1e-10,
        )

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(ValueError):
            householder_tridiagonalize(rng.standard_normal((3, 4)))


class TestEigh:
    @pytest.mark.parametrize("n", [1, 2, 4, 10, 30])
    def test_ql_matches_lapack(self, rng, n):
        A = random_sym(rng, n)
        w1, Z1 = eigh(A, method="ql")
        w2, _ = eigh(A, method="lapack")
        assert np.allclose(w1, w2, atol=1e-9)
        assert np.allclose(A @ Z1, Z1 * w1, atol=1e-8)
        assert np.allclose(Z1.T @ Z1, np.eye(n), atol=1e-9)

    def test_degenerate_spectrum(self, rng):
        Q, _ = np.linalg.qr(rng.standard_normal((12, 12)))
        d = np.array([1.0] * 4 + [2.0] * 4 + [5.0] * 4)
        A = Q @ np.diag(d) @ Q.T
        w, Z = eigh(A, method="ql")
        assert np.allclose(np.sort(w), np.sort(d), atol=1e-9)
        assert np.allclose(A @ Z, Z * w, atol=1e-8)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            eigh(random_sym(rng, 3), method="jacobi")

    def test_nonsquare_rejected(self, rng):
        with pytest.raises(ValueError):
            eigh(rng.standard_normal((3, 4)))

    @given(st.integers(0, 2**31 - 1), st.integers(2, 15))
    @settings(max_examples=25, deadline=None)
    def test_property_spectrum_matches(self, seed, n):
        A = random_sym(np.random.default_rng(seed), n)
        w, _ = eigh(A, method="ql")
        assert np.allclose(w, np.linalg.eigvalsh(A), atol=1e-8)
