"""SymEigProblem reverse-communication protocol and eigsh driver."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import EigensolverError, ReverseCommunicationError
from repro.linalg.eigsolver import SymEigProblem, eigsh
from repro.linalg.rci import RCIStatus
from repro.sparse.construct import random_sparse


def scipy_of(csr):
    return sp.csr_matrix((csr.data, csr.indices, csr.indptr), shape=csr.shape)


class TestProtocol:
    @pytest.fixture
    def A(self, rng):
        return random_sparse(60, 60, 0.2, rng=rng, symmetric=True).to_csr()

    def test_algorithm3_loop_shape(self, A):
        """The exact loop of the paper's Algorithm 3."""
        prob = SymEigProblem(60, 4, tol=1e-10)
        while not prob.converged():
            prob.take_step()
            if prob.needs_matvec():
                x = prob.get_vector()
                prob.put_vector(A.matvec(x))
        theta, U = prob.find_eigenvectors()
        assert theta.size == 4
        assert U.shape == (60, 4)

    def test_status_transitions(self, A):
        prob = SymEigProblem(60, 3)
        assert prob.status is RCIStatus.INITIAL
        prob.take_step()
        assert prob.status is RCIStatus.NEED_MATVEC
        prob.put_vector(A.matvec(prob.get_vector()))
        assert prob.status is RCIStatus.HAVE_RESULT

    def test_get_vector_before_take_step(self):
        with pytest.raises(ReverseCommunicationError):
            SymEigProblem(60, 3).get_vector()

    def test_put_vector_without_request(self):
        with pytest.raises(ReverseCommunicationError):
            SymEigProblem(60, 3).put_vector(np.zeros(60))

    def test_take_step_with_outstanding_request(self, A):
        prob = SymEigProblem(60, 3)
        prob.take_step()
        with pytest.raises(ReverseCommunicationError):
            prob.take_step()

    def test_put_vector_wrong_length(self, A):
        prob = SymEigProblem(60, 3)
        prob.take_step()
        with pytest.raises(ReverseCommunicationError):
            prob.put_vector(np.zeros(61))

    def test_find_eigenvectors_before_done(self):
        with pytest.raises(ReverseCommunicationError):
            SymEigProblem(60, 3).find_eigenvectors()

    def test_result_before_done(self):
        prob = SymEigProblem(60, 3)
        with pytest.raises(ReverseCommunicationError):
            _ = prob.result

    def test_take_step_after_done_is_idempotent(self, A):
        prob = SymEigProblem(60, 3, tol=1e-8)
        while not prob.converged():
            prob.take_step()
            if prob.needs_matvec():
                prob.put_vector(A.matvec(prob.get_vector()))
        assert prob.take_step() is RCIStatus.DONE

    def test_n_op_counts_round_trips(self, A):
        prob = SymEigProblem(60, 3, tol=1e-8)
        trips = 0
        while not prob.converged():
            prob.take_step()
            if prob.needs_matvec():
                prob.put_vector(A.matvec(prob.get_vector()))
                trips += 1
        assert prob.n_op == trips
        assert prob.result.n_op == trips

    def test_repr(self):
        assert "SymEigProblem" in repr(SymEigProblem(60, 3))


class TestEigshDriver:
    def test_matrix_object(self, rng):
        A = random_sparse(120, 120, 0.1, rng=rng, symmetric=True).to_csr()
        w, U = eigsh(A, k=6, tol=1e-10)
        ref = spla.eigsh(scipy_of(A), k=6, which="LA", return_eigenvectors=False)
        ref.sort()
        assert np.allclose(w, ref, atol=1e-8)

    def test_bare_callable_requires_n(self, rng):
        A = rng.standard_normal((30, 30))
        A = (A + A.T) / 2
        w, _ = eigsh(lambda x: A @ x, n=30, k=3, tol=1e-10)
        assert np.allclose(w, np.linalg.eigvalsh(A)[-3:], atol=1e-8)
        with pytest.raises(EigensolverError):
            eigsh(lambda x: A @ x, k=3)

    def test_nonsquare_rejected(self, rng):
        A = random_sparse(10, 12, 0.3, rng=rng).to_csr()
        with pytest.raises(EigensolverError):
            eigsh(A, k=2)

    def test_eigenvalues_ascending(self, rng):
        A = random_sparse(80, 80, 0.15, rng=rng, symmetric=True).to_csr()
        w, _ = eigsh(A, k=5, tol=1e-8)
        assert np.all(np.diff(w) >= 0)
