"""QR building blocks: Givens, Householder, and the implicit shift sweep."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.qr import (
    apply_givens_right,
    givens,
    householder_qr,
    implicit_qr_sweep,
    qr_shift_step,
)
from repro.linalg.tridiag import tridiag_to_dense


class TestGivens:
    @pytest.mark.parametrize("a,b", [(3.0, 4.0), (-1.0, 2.0), (5.0, 0.0),
                                     (0.0, 7.0), (1e-300, 1.0)])
    def test_zeroes_second_component(self, a, b):
        c, s, r = givens(a, b)
        assert -s * a + c * b == pytest.approx(0.0, abs=1e-12)
        assert c * a + s * b == pytest.approx(r)
        assert c * c + s * s == pytest.approx(1.0)

    @given(st.floats(-1e6, 1e6), st.floats(-1e6, 1e6))
    @settings(max_examples=50, deadline=None)
    def test_rotation_is_orthogonal(self, a, b):
        c, s, _ = givens(a, b)
        assert c * c + s * s == pytest.approx(1.0, abs=1e-9)

    def test_apply_right(self, rng):
        M = rng.standard_normal((4, 4))
        ref = M.copy()
        c, s, _ = givens(1.0, 2.0)
        G = np.eye(4)
        G[1, 1], G[1, 2], G[2, 1], G[2, 2] = c, s, -s, c
        apply_givens_right(M, 1, 2, c, s)
        assert np.allclose(M, ref @ G.T)


class TestHouseholderQR:
    @pytest.mark.parametrize("shape", [(5, 5), (8, 4), (4, 8), (1, 1)])
    def test_factorization(self, rng, shape):
        A = rng.standard_normal(shape)
        Q, R = householder_qr(A)
        assert np.allclose(Q @ R, A, atol=1e-12)
        assert np.allclose(Q.T @ Q, np.eye(Q.shape[1]), atol=1e-12)
        assert np.allclose(R, np.triu(R))

    def test_complete_mode(self, rng):
        A = rng.standard_normal((6, 3))
        Q, R = householder_qr(A, mode="complete")
        assert Q.shape == (6, 6)
        assert R.shape == (6, 3)
        assert np.allclose(Q @ R, A, atol=1e-12)
        assert np.allclose(Q @ Q.T, np.eye(6), atol=1e-12)

    def test_rank_deficient(self):
        A = np.ones((4, 4))
        Q, R = householder_qr(A)
        assert np.allclose(Q @ R, A, atol=1e-12)

    def test_agrees_with_lapack_up_to_signs(self, rng):
        A = rng.standard_normal((7, 7))
        Q1, R1 = householder_qr(A)
        Q2, R2 = np.linalg.qr(A)
        sgn = np.sign(np.diag(R1) * np.diag(R2))
        assert np.allclose(Q1 * sgn, Q2, atol=1e-10)

    def test_unknown_mode(self, rng):
        with pytest.raises(ValueError):
            householder_qr(rng.standard_normal((3, 3)), mode="economy")


class TestShiftSteps:
    def _random_tridiag(self, rng, m):
        return tridiag_to_dense(rng.standard_normal(m), rng.standard_normal(m - 1))

    def test_explicit_step_is_similarity(self, rng):
        T = self._random_tridiag(rng, 8)
        T2, Q = qr_shift_step(T, 0.7)
        assert np.allclose(Q.T @ T @ Q, T2, atol=1e-10)

    def test_explicit_with_householder(self, rng):
        T = self._random_tridiag(rng, 6)
        T2, Q = qr_shift_step(T, -0.3, use_lapack=False)
        assert np.allclose(Q.T @ T @ Q, T2, atol=1e-10)

    def test_implicit_matches_explicit_for_safe_shift(self, rng):
        T0 = self._random_tridiag(rng, 9)
        mu = float(np.linalg.eigvalsh(T0).min()) - 2.0  # nonsingular shift
        T_i = T0.copy()
        Q_i = np.eye(9)
        implicit_qr_sweep(T_i, mu, Q_i)
        Qe, _ = np.linalg.qr(T0 - mu * np.eye(9))
        sgn = np.sign(np.sum(Qe * Q_i, axis=0))
        assert np.allclose(Qe * sgn, Q_i, atol=1e-8)

    def test_implicit_stable_with_exact_shift(self, rng):
        """The case that breaks the explicit step (singular T - mu I)."""
        T0 = self._random_tridiag(rng, 12)
        mu = float(np.linalg.eigvalsh(T0)[3])  # exact eigenvalue
        T = T0.copy()
        Q = np.eye(12)
        implicit_qr_sweep(T, mu, Q)
        assert np.allclose(Q @ Q.T, np.eye(12), atol=1e-12)
        assert np.allclose(Q.T @ T0 @ Q, T, atol=1e-9)
        # result stays tridiagonal
        assert np.max(np.abs(np.triu(T, 2))) < 1e-9

    def test_implicit_preserves_spectrum(self, rng):
        T0 = self._random_tridiag(rng, 10)
        w0 = np.linalg.eigvalsh(T0)
        T = T0.copy()
        Q = np.eye(10)
        implicit_qr_sweep(T, 0.123, Q)
        assert np.allclose(np.linalg.eigvalsh(T), w0, atol=1e-10)

    def test_implicit_trivial_size(self):
        T = np.array([[2.0]])
        Q = np.eye(1)
        implicit_qr_sweep(T, 1.0, Q)  # no-op, no crash
        assert T[0, 0] == 2.0
