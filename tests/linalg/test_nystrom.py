"""Nyström extension primitives: segment reduce, scaling, ledgers, drift."""

import numpy as np
import pytest

from repro.linalg.nystrom import (
    DeltaLedger,
    PredictLedger,
    csr_row_reduce,
    drift_threshold,
    nystrom_degrees,
    nystrom_product,
    nystrom_scale,
    ritz_drift_bound,
)


def _dense_csr(rng, m, n, density=0.4):
    """Random CSR triple (indptr, indices, vals) plus its dense mirror."""
    dense = rng.random((m, n)) * (rng.random((m, n)) < density)
    indptr = np.zeros(m + 1, dtype=np.int64)
    cols, vals = [], []
    for i in range(m):
        nz = np.nonzero(dense[i])[0]
        indptr[i + 1] = indptr[i] + nz.size
        cols.append(nz.astype(np.int64))
        vals.append(dense[i, nz])
    return (
        indptr,
        np.concatenate(cols) if cols else np.zeros(0, np.int64),
        np.concatenate(vals) if vals else np.zeros(0),
        dense,
    )


class TestRowReduce:
    def test_matches_dense_row_sums_1d(self, rng):
        indptr, _, vals, dense = _dense_csr(rng, 13, 7)
        assert np.allclose(csr_row_reduce(indptr, vals), dense.sum(axis=1))

    def test_matches_dense_2d(self, rng):
        indptr, cols, vals, dense = _dense_csr(rng, 9, 6)
        B = rng.standard_normal((vals.size, 4))
        expect = np.zeros((9, 4))
        for i in range(9):
            expect[i] = B[indptr[i]:indptr[i + 1]].sum(axis=0)
        assert np.allclose(csr_row_reduce(indptr, B), expect)

    def test_empty_rows_stay_zero(self):
        indptr = np.array([0, 0, 2, 2], dtype=np.int64)
        vals = np.array([1.5, 2.5])
        out = csr_row_reduce(indptr, vals)
        assert np.array_equal(out, [0.0, 4.0, 0.0])


class TestNystromProduct:
    def test_equals_dense_matmul(self, rng):
        indptr, cols, vals, dense = _dense_csr(rng, 11, 8)
        U = rng.standard_normal((8, 3))
        assert np.allclose(
            nystrom_product(indptr, cols, vals, U), dense @ U
        )

    def test_degrees_are_row_sums(self, rng):
        indptr, _, vals, dense = _dense_csr(rng, 10, 5)
        assert np.allclose(nystrom_degrees(indptr, vals), dense.sum(axis=1))


class TestNystromScale:
    def test_scales_by_degree_and_theta(self, rng):
        prod = rng.standard_normal((6, 3))
        deg = rng.random(6) + 0.5
        theta = rng.random(3) + 0.5
        out = nystrom_scale(prod, deg, theta)
        assert np.allclose(out, prod / deg[:, None] / theta[None, :])

    def test_zero_degree_guard(self, rng):
        prod = rng.standard_normal((3, 2))
        deg = np.array([1.0, 0.0, 2.0])
        theta = np.array([0.5, 0.25])
        out = nystrom_scale(prod, deg, theta)
        # the guarded row divides by 1, not by 0 — finite output
        assert np.all(np.isfinite(out))
        assert np.allclose(out[1], prod[1] / theta)

    def test_tiny_theta_guard(self, rng):
        prod = rng.standard_normal((3, 2))
        deg = np.ones(3)
        theta = np.array([1.0, 1e-15])
        out = nystrom_scale(prod, deg, theta)
        assert np.all(np.isfinite(out))
        assert np.allclose(out[:, 1], prod[:, 1])


class TestPredictLedger:
    def test_weights_path_counts(self):
        led = PredictLedger(n_new=10, n_anchor=40, k=3, nnz=25)
        assert led.n_h2d == 5
        assert led.n_d2h == 2
        assert led.total_h2d_bytes() == (
            25 * 8 + 25 * 8 + 11 * 8 + 40 * 3 * 8 + 3 * 3 * 8
        )
        assert led.total_d2h_bytes() == 10 * 8 + 10 * 3 * 8

    def test_feature_path_counts(self):
        led = PredictLedger(
            n_new=4, n_anchor=20, k=2, nnz=9, d=6, feature_path=True
        )
        assert led.n_h2d == 7
        assert led.total_h2d_bytes() == (
            4 * 6 * 8 + 20 * 6 * 8 + 9 * 8 + 9 * 8 + 5 * 8
            + 20 * 2 * 8 + 2 * 2 * 8
        )

    def test_reduced_precision_itemsize(self):
        full = PredictLedger(n_new=4, n_anchor=10, k=2, nnz=8)
        half = PredictLedger(n_new=4, n_anchor=10, k=2, nnz=8, itemsize=4)
        assert half.total_h2d_bytes() == full.total_h2d_bytes() - 8 * 4

    def test_delta_ledger(self):
        led = DeltaLedger(nnz_delta=12, n=100)
        assert led.n_h2d == 3 and led.n_d2h == 1
        assert led.total_h2d_bytes() == 3 * 12 * 8
        assert led.total_d2h_bytes() == 8


class TestDriftBound:
    def test_zero_delta_zero_bound(self):
        deg = np.ones(5)
        bound = ritz_drift_bound(
            np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0),
            deg, deg,
        )
        assert bound == 0.0

    def test_monotone_in_delta_magnitude(self):
        deg = np.full(6, 4.0)
        rows = np.array([0, 1], dtype=np.int64)
        cols = np.array([1, 0], dtype=np.int64)
        small = ritz_drift_bound(rows, cols, np.array([0.01, 0.01]), deg, deg)
        large = ritz_drift_bound(rows, cols, np.array([1.0, 1.0]), deg, deg)
        assert 0 < small < large

    def test_degree_collapse_dominates(self):
        """Removing most of a vertex's weight moves the scale term."""
        deg_old = np.array([4.0, 4.0])
        deg_new = np.array([0.04, 4.0])
        rows = np.array([0, 1], dtype=np.int64)
        cols = np.array([1, 0], dtype=np.int64)
        bound = ritz_drift_bound(
            rows, cols, np.array([-3.96, -3.96]), deg_old, deg_new,
        )
        assert bound >= 2 * (np.sqrt(4.0 / 0.04) - 1) - 1e-12

    def test_threshold_uses_spectral_gap(self):
        wide = drift_threshold(np.array([1.0, 0.5]), n=100)
        narrow = drift_threshold(np.array([1.0, 0.99]), n=100)
        assert wide > narrow > 0

    def test_threshold_scale_knob(self):
        theta = np.array([1.0, 0.6])
        assert drift_threshold(theta, 50, scale=2.0) == pytest.approx(
            2.0 * drift_threshold(theta, 50)
        )
