"""Symmetric tridiagonal eigensolver vs LAPACK/scipy oracles."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.linalg.tridiag import (
    eigh_tridiagonal,
    eigh_tridiagonal_ql,
    tridiag_to_dense,
)


class TestQLRoutine:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 50])
    def test_eigenvalues_match_lapack(self, rng, n):
        a = rng.standard_normal(n)
        b = rng.standard_normal(max(0, n - 1))
        w, _ = eigh_tridiagonal_ql(a, b)
        ref = np.linalg.eigvalsh(tridiag_to_dense(a, b))
        assert np.allclose(w, ref, atol=1e-10)

    def test_eigenvectors_satisfy_definition(self, rng):
        n = 30
        a = rng.standard_normal(n)
        b = rng.standard_normal(n - 1)
        w, Z = eigh_tridiagonal_ql(a, b)
        T = tridiag_to_dense(a, b)
        assert np.allclose(T @ Z, Z * w, atol=1e-9)
        assert np.allclose(Z.T @ Z, np.eye(n), atol=1e-10)

    def test_ascending_order(self, rng):
        w, _ = eigh_tridiagonal_ql(rng.standard_normal(20), rng.standard_normal(19))
        assert np.all(np.diff(w) >= 0)

    def test_no_vectors_mode(self, rng):
        w, Z = eigh_tridiagonal_ql(
            rng.standard_normal(10), rng.standard_normal(9), compute_vectors=False
        )
        assert Z is None
        assert w.size == 10

    def test_diagonal_matrix(self):
        w, Z = eigh_tridiagonal_ql(np.array([3.0, 1.0, 2.0]), np.zeros(2))
        assert np.allclose(w, [1, 2, 3])

    def test_zero_matrix(self):
        w, _ = eigh_tridiagonal_ql(np.zeros(5), np.zeros(4))
        assert np.allclose(w, 0.0)

    def test_empty(self):
        w, Z = eigh_tridiagonal_ql(np.zeros(0), np.zeros(0))
        assert w.size == 0
        assert Z.shape == (0, 0)

    def test_wrong_beta_length(self, rng):
        with pytest.raises(ValueError):
            eigh_tridiagonal_ql(np.zeros(5), np.zeros(2))

    def test_clustered_eigenvalues(self):
        # near-degenerate spectrum: 1, 1+1e-12, 5
        a = np.array([1.0, 1.0 + 1e-12, 5.0])
        b = np.array([1e-13, 1e-13])
        w, Z = eigh_tridiagonal_ql(a, b)
        T = tridiag_to_dense(a, b)
        assert np.allclose(T @ Z, Z * w, atol=1e-9)

    @given(
        a=hnp.arrays(np.float64, st.integers(1, 20),
                     elements=st.floats(-10, 10, allow_nan=False)),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_scipy(self, a, seed):
        n = a.size
        b = np.random.default_rng(seed).uniform(-5, 5, max(0, n - 1))
        w, _ = eigh_tridiagonal_ql(a, b)
        ref = (
            sla.eigh_tridiagonal(a, b, eigvals_only=True)
            if n > 1
            else a.copy()
        )
        assert np.allclose(np.sort(w), np.sort(ref), atol=1e-8)


class TestDispatcher:
    def test_lapack_path(self, rng):
        a = rng.standard_normal(12)
        b = rng.standard_normal(11)
        w, Z = eigh_tridiagonal(a, b, method="lapack")
        T = tridiag_to_dense(a, b)
        assert np.allclose(T @ Z, Z * w, atol=1e-10)

    def test_paths_agree(self, rng):
        a = rng.standard_normal(15)
        b = rng.standard_normal(14)
        w1, _ = eigh_tridiagonal(a, b, method="lapack")
        w2, _ = eigh_tridiagonal(a, b, method="ql")
        assert np.allclose(w1, w2, atol=1e-9)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            eigh_tridiagonal(np.zeros(3), np.zeros(2), method="divide")

    def test_beta_length_checked(self):
        with pytest.raises(ValueError):
            eigh_tridiagonal(np.zeros(4), np.zeros(4))

    def test_tridiag_to_dense_symmetry(self, rng):
        T = tridiag_to_dense(rng.standard_normal(6), rng.standard_normal(5))
        assert np.array_equal(T, T.T)
