"""Shared spectral-interval estimation (`repro.linalg.spectrum`).

Two contracts: the extraction of the block power core out of
``power.py`` changed no floats (the power embedding must remain
bit-identical to the pre-refactor arithmetic, reproduced verbatim
here as a reference), and the compressive tier's shifted/accelerated
probe locates the spectrum edges accurately even on operators whose
negative end rivals the clustering band in magnitude.
"""

import numpy as np
import pytest

from repro.errors import EigensolverError
from repro.linalg.power import power_embedding
from repro.linalg.refine import block_residual
from repro.linalg.spectrum import (
    block_power_probe,
    default_power_iterations,
    default_probe_iterations,
    estimate_spectral_interval,
)


def _reference_power_embedding(apply_block, n, k, q, oversample=2, seed=0,
                               which="LA"):
    """The power embedding arithmetic as it lived inside power.py before
    the spectrum.py extraction — the bit-identity reference."""
    p = min(n, k + max(0, int(oversample)))
    rng = np.random.default_rng(seed)
    B, _ = np.linalg.qr(rng.standard_normal((n, p)))
    n_applications = 0
    for _ in range(q):
        Z = apply_block(B)
        n_applications += 1
        B, _ = np.linalg.qr(Z)
    Z = apply_block(B)
    n_applications += 1
    T = B.T @ Z
    T = 0.5 * (T + T.T)
    w, S = np.linalg.eigh(T)
    if which == "LA":
        sel = np.arange(p - k, p)
    else:
        sel = np.arange(k)
    theta = w[sel]
    U = B @ S[:, sel]
    AU = Z @ S[:, sel]
    return theta, U, block_residual(AU, U, theta), n_applications


def _sym_operator(n, seed=7, bipartite_weight=0.0):
    """A dense symmetric operator with spectrum in [-1, 1]; a positive
    ``bipartite_weight`` plants eigenvalues near -1 whose magnitude
    rivals the top band (the near-bipartite failure mode)."""
    rng = np.random.default_rng(seed)
    Q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    lam = np.linspace(-0.4, 0.55, n)
    lam[-4:] = [0.90, 0.94, 0.97, 1.0]  # the clustering band
    if bipartite_weight:
        lam[:3] = [-0.99, -0.97, -0.95]
    A = (Q * lam) @ Q.T
    A = 0.5 * (A + A.T)
    return A, np.sort(lam)


class TestPowerDelegationPinned:
    """power_embedding must stay bit-identical to the pre-extraction
    implementation for every (k, q, which, seed) cell."""

    @pytest.mark.parametrize("k,q,which,seed", [
        (4, 8, "LA", 0),
        (4, 8, "LA", 3),
        (6, 12, "LA", 0),
        (3, 5, "SA", 1),
    ])
    def test_bit_identical_to_reference(self, k, q, which, seed):
        A, _ = _sym_operator(60)
        apply_block = lambda B: A @ B
        got = power_embedding(apply_block, 60, k, q=q, seed=seed, which=which)
        ref = _reference_power_embedding(
            apply_block, 60, k, q=q, seed=seed, which=which
        )
        assert got[0].tobytes() == ref[0].tobytes()  # theta
        assert got[1].tobytes() == ref[1].tobytes()  # U
        assert got[2] == ref[2]                      # residual
        assert got[3] == ref[3]                      # n_applications

    def test_default_q_matches_reference(self):
        A, _ = _sym_operator(60)
        apply_block = lambda B: A @ B
        got = power_embedding(apply_block, 60, 4, seed=0)
        ref = _reference_power_embedding(
            apply_block, 60, 4, q=default_power_iterations(60), seed=0
        )
        assert got[0].tobytes() == ref[0].tobytes()
        assert got[1].tobytes() == ref[1].tobytes()

    def test_validation(self):
        apply_block = lambda B: B
        with pytest.raises(EigensolverError):
            block_power_probe(apply_block, 10, 0)
        with pytest.raises(EigensolverError):
            block_power_probe(apply_block, 3, 5)
        with pytest.raises(EigensolverError):
            block_power_probe(apply_block, 10, 2, q=0)


class TestDefaults:
    def test_iteration_budgets_scale_logarithmically(self):
        assert default_power_iterations(2) == 8
        assert default_power_iterations(10 ** 6) == 40
        assert default_probe_iterations(2) == 4
        assert default_probe_iterations(10 ** 6) == 20
        # the probe budget is roughly half the power budget
        for n in (100, 10_000, 1_000_000):
            assert default_probe_iterations(n) <= default_power_iterations(n)


class TestSpectralInterval:
    def test_locates_edges_on_clean_spectrum(self):
        A, lam = _sym_operator(60)
        est = estimate_spectral_interval(
            lambda B: A @ B, 60, 4, q=30, seed=0,
        )
        assert est.lambda_max == pytest.approx(1.0, abs=2e-2)
        assert est.lambda_k == pytest.approx(0.90, abs=3e-2)
        # band edge falls in the gap between λ4=0.90 and λ5=0.55
        assert 0.55 < est.band_edge < 0.90
        assert est.n_applications == 31
        assert len(est.theta) == 5

    def test_unshifted_probe_poisoned_by_negative_end(self):
        """The failure mode that motivates the shift: eigenvalues near -1
        rival the band in |λ| and corrupt the unshifted probe, while the
        shifted+accelerated probe stays accurate."""
        A, lam = _sym_operator(60, bipartite_weight=1.0)
        raw = estimate_spectral_interval(lambda B: A @ B, 60, 4, q=12, seed=0)
        fixed = estimate_spectral_interval(
            lambda B: A @ B, 60, 4, q=12, seed=0, shift=1.0, accel=8,
        )
        true_k, true_next = 0.90, 0.55
        err_raw = abs(raw.lambda_k - true_k) + abs(raw.lambda_next - true_next)
        err_fix = (abs(fixed.lambda_k - true_k)
                   + abs(fixed.lambda_next - true_next))
        assert err_fix < err_raw  # the shift is a strict improvement here
        assert fixed.lambda_k == pytest.approx(true_k, abs=5e-2)
        assert true_next - 0.05 < fixed.band_edge < true_k

    def test_accel_counts_real_applications(self):
        A, _ = _sym_operator(40)
        calls = 0

        def apply_block(B):
            nonlocal calls
            calls += 1
            return A @ B

        est = estimate_spectral_interval(
            apply_block, 40, 3, q=6, seed=0, shift=1.0, accel=4,
        )
        assert calls == (6 + 1) * 4
        assert est.n_applications == calls

    def test_shift_only_is_exact_inverse(self):
        """shift with accel=1 must reproduce the unshifted Ritz values of
        the same subspace up to roundoff (θ(A+I) - 1 = θ(A))."""
        A, _ = _sym_operator(50)
        As = A + np.eye(50)
        raw = estimate_spectral_interval(lambda B: As @ B, 50, 4, q=10, seed=0)
        shifted = estimate_spectral_interval(
            lambda B: A @ B, 50, 4, q=10, seed=0, shift=1.0,
        )
        assert shifted.lambda_max == pytest.approx(raw.lambda_max - 1.0,
                                                   abs=1e-12)
        assert shifted.lambda_k == pytest.approx(raw.lambda_k - 1.0,
                                                 abs=1e-12)

    def test_deterministic(self):
        A, _ = _sym_operator(50)
        kw = dict(q=8, seed=5, shift=1.0, accel=4)
        a = estimate_spectral_interval(lambda B: A @ B, 50, 4, **kw)
        b = estimate_spectral_interval(lambda B: A @ B, 50, 4, **kw)
        assert a.theta == b.theta
        assert a.as_dict() == b.as_dict()

    def test_as_dict_round_trips_floats(self):
        A, _ = _sym_operator(40)
        est = estimate_spectral_interval(lambda B: A @ B, 40, 3, q=6, seed=0)
        d = est.as_dict()
        assert d["band_edge"] == est.band_edge
        assert d["theta"] == list(est.theta)

    def test_validation(self):
        apply_block = lambda B: B
        with pytest.raises(EigensolverError):
            estimate_spectral_interval(apply_block, 3, 4)
        with pytest.raises(EigensolverError):
            estimate_spectral_interval(apply_block, 10, 2, shift=-1.0)
        with pytest.raises(EigensolverError):
            estimate_spectral_interval(apply_block, 10, 2, accel=0)
        with pytest.raises(EigensolverError):
            estimate_spectral_interval(apply_block, 10, 2, accel=2)  # no shift
