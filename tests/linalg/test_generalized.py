"""Generalized eigenproblem Lx = λDx (paper §II) with diagonal D."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import EigensolverError
from repro.graph.laplacian import degrees, laplacian
from repro.linalg.eigsolver import eigsh_generalized_diag
from repro.sparse.construct import random_sparse


@pytest.fixture
def connected_graph(rng):
    while True:
        W = random_sparse(60, 60, 0.2, rng=rng, symmetric=True)
        if np.all(W.row_sums() > 0):
            return W


class TestGeneralizedDiag:
    def test_matches_scipy_generalized(self, connected_graph):
        W = connected_graph
        L = laplacian(W)
        d = degrees(W)
        w, X = eigsh_generalized_diag(L, d, k=5, which="SA", tol=1e-10)
        Ls = sp.csr_matrix((L.data, L.indices, L.indptr), shape=L.shape)
        Ds = sp.diags(d)
        ref = spla.eigsh(Ls, k=5, M=Ds.tocsc(), which="SM",
                         return_eigenvectors=False)
        ref.sort()
        assert np.allclose(w, ref, atol=1e-7)

    def test_generalized_residual(self, connected_graph):
        W = connected_graph
        L = laplacian(W)
        d = degrees(W)
        w, X = eigsh_generalized_diag(L, d, k=4, which="SA", tol=1e-10)
        for i in range(4):
            r = L.matvec(X[:, i]) - w[i] * d * X[:, i]
            assert np.linalg.norm(r) < 1e-7

    def test_d_orthonormal(self, connected_graph):
        W = connected_graph
        L = laplacian(W)
        d = degrees(W)
        _, X = eigsh_generalized_diag(L, d, k=4, which="SA", tol=1e-10)
        G = X.T @ (d[:, None] * X)
        assert np.allclose(G, np.eye(4), atol=1e-8)

    def test_smallest_eigenvalue_is_zero_for_connected(self, connected_graph):
        """The generalized problem's smallest eigenvalue is 0 (constant
        vector) for a connected graph — the spectral clustering anchor."""
        from repro.graph.components import connected_components

        W = connected_graph
        if connected_components(W)[0] != 1:
            pytest.skip("random graph disconnected for this seed")
        L = laplacian(W)
        w, X = eigsh_generalized_diag(L, degrees(W), k=3, which="SA", tol=1e-10)
        assert abs(w[0]) < 1e-8
        v0 = X[:, 0]
        assert np.std(v0 / v0.mean()) < 1e-6  # constant direction

    def test_identity_d_reduces_to_standard(self, rng):
        A = random_sparse(40, 40, 0.3, rng=rng, symmetric=True).to_csr()
        from repro.linalg.eigsolver import eigsh

        w1, _ = eigsh_generalized_diag(A, np.ones(40), k=4, which="LA", tol=1e-10)
        w2, _ = eigsh(A, k=4, which="LA", tol=1e-10)
        assert np.allclose(w1, w2, atol=1e-9)

    def test_nonpositive_d_rejected(self, connected_graph):
        L = laplacian(connected_graph)
        with pytest.raises(EigensolverError, match="positive"):
            eigsh_generalized_diag(L, np.zeros(60), k=3)

    def test_wrong_d_length(self, connected_graph):
        L = laplacian(connected_graph)
        with pytest.raises(EigensolverError, match="length"):
            eigsh_generalized_diag(L, np.ones(10), k=3)
