"""Lanczos factorization invariants."""

import numpy as np
import pytest

from repro.linalg.lanczos import LanczosState, extend_factorization
from repro.linalg.tridiag import tridiag_to_dense


def drive(state, to_steps, op, rng):
    """Run the extension generator against a host operator."""
    gen = extend_factorization(state, to_steps, rng)
    try:
        x = next(gen)
        while True:
            x = gen.send(op @ x)
    except StopIteration:
        pass


@pytest.fixture
def sym_op(rng):
    A = rng.standard_normal((40, 40))
    return (A + A.T) / 2


class TestFactorization:
    def test_invariant_av_vt_fe(self, rng, sym_op):
        m = 15
        st = LanczosState.allocate(40, m)
        st.f = rng.standard_normal(40)
        drive(st, m, sym_op, rng)
        V = st.basis()
        alpha, beta = st.tridiagonal()
        T = tridiag_to_dense(alpha, beta)
        R = sym_op @ V.T - V.T @ T
        R[:, -1] -= st.f
        assert np.max(np.abs(R)) < 1e-10

    def test_basis_orthonormal(self, rng, sym_op):
        st = LanczosState.allocate(40, 20)
        st.f = rng.standard_normal(40)
        drive(st, 20, sym_op, rng)
        assert st.orthogonality_error() < 1e-12

    def test_residual_orthogonal_to_basis(self, rng, sym_op):
        st = LanczosState.allocate(40, 10)
        st.f = rng.standard_normal(40)
        drive(st, 10, sym_op, rng)
        assert np.max(np.abs(st.basis() @ st.f)) < 1e-10

    def test_incremental_extension_matches(self, rng, sym_op):
        st = LanczosState.allocate(40, 12)
        st.f = rng.standard_normal(40)
        drive(st, 6, sym_op, rng)
        drive(st, 12, sym_op, rng)
        assert st.j == 12
        assert st.orthogonality_error() < 1e-12

    def test_full_dimension_exact_breakdown(self, rng):
        # after n steps the Krylov space is everything; residual ~ 0
        A = np.diag([1.0, 2.0, 3.0, 4.0])
        st = LanczosState.allocate(4, 4)
        st.f = rng.standard_normal(4)
        drive(st, 4, A, rng)
        alpha, beta = st.tridiagonal()
        w = np.linalg.eigvalsh(tridiag_to_dense(alpha, beta))
        assert np.allclose(w, [1, 2, 3, 4], atol=1e-9)

    def test_breakdown_recovery_on_low_rank(self, rng):
        # rank-1 operator: Krylov space exhausts after 2 steps, the
        # factorization must recover via random restart vectors
        u = rng.standard_normal(20)
        A = np.outer(u, u)
        st = LanczosState.allocate(20, 8)
        st.f = u.copy()
        drive(st, 8, A, rng)
        assert st.j == 8
        assert st.breakdowns >= 1
        assert st.orthogonality_error() < 1e-10

    def test_requires_start_vector(self, rng, sym_op):
        st = LanczosState.allocate(40, 5)
        gen = extend_factorization(st, 5, rng)
        with pytest.raises(ValueError, match="start vector"):
            next(gen)

    def test_zero_start_vector_rejected(self, rng, sym_op):
        st = LanczosState.allocate(40, 5)
        st.f = np.zeros(40)
        gen = extend_factorization(st, 5, rng)
        with pytest.raises(ValueError, match="zero"):
            next(gen)

    def test_storage_limit_enforced(self, rng):
        st = LanczosState.allocate(10, 4)
        st.f = rng.standard_normal(10)
        with pytest.raises(ValueError, match="storage"):
            next(extend_factorization(st, 5, rng))

    def test_wrong_product_length_rejected(self, rng, sym_op):
        st = LanczosState.allocate(40, 3)
        st.f = rng.standard_normal(40)
        gen = extend_factorization(st, 3, rng)
        next(gen)
        with pytest.raises(ValueError, match="length"):
            gen.send(np.zeros(39))

    def test_eigenvalue_estimates_improve_with_m(self, rng, sym_op):
        true_max = np.linalg.eigvalsh(sym_op)[-1]
        errs = []
        for m in (5, 15, 30):
            st = LanczosState.allocate(40, m)
            st.f = np.ones(40)
            drive(st, m, sym_op, rng)
            alpha, beta = st.tridiagonal()
            ritz_max = np.linalg.eigvalsh(tridiag_to_dense(alpha, beta))[-1]
            errs.append(abs(ritz_max - true_max))
        assert errs[2] <= errs[0] + 1e-12
        assert errs[2] < 1e-8
