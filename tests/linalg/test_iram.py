"""The implicitly restarted Lanczos driver vs scipy's ARPACK."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import EigensolverError
from repro.linalg.iram import irlm_generator
from repro.sparse.construct import random_sparse


def drive(gen, op):
    try:
        x = next(gen)
        while True:
            x = gen.send(op(x))
    except StopIteration as stop:
        return stop.value


def scipy_of(csr):
    return sp.csr_matrix((csr.data, csr.indices, csr.indptr), shape=csr.shape)


class TestAgainstScipy:
    @pytest.mark.parametrize(
        "n,k,which",
        [(150, 5, "LA"), (250, 20, "LA"), (250, 20, "SA"),
         (200, 10, "LM"), (300, 30, "LA")],
    )
    def test_eigenvalues_match(self, rng, n, k, which):
        A = random_sparse(n, n, 0.06, rng=rng, symmetric=True).to_csr()
        res = drive(
            irlm_generator(n, k, which=which, tol=1e-10, seed=1), A.matvec
        )
        assert res.converged
        ref = spla.eigsh(scipy_of(A), k=k, which=which, return_eigenvectors=False)
        ref.sort()
        assert np.allclose(res.eigenvalues, ref, atol=1e-8)

    def test_eigenvectors_are_true_eigenvectors(self, rng):
        n, k = 200, 12
        A = random_sparse(n, n, 0.08, rng=rng, symmetric=True).to_csr()
        res = drive(irlm_generator(n, k, tol=1e-10, seed=2), A.matvec)
        S = scipy_of(A)
        resid = np.linalg.norm(
            S @ res.eigenvectors - res.eigenvectors * res.eigenvalues, axis=0
        )
        assert np.max(resid) < 1e-7
        G = res.eigenvectors.T @ res.eigenvectors
        assert np.allclose(G, np.eye(k), atol=1e-9)

    def test_dense_eig_ql_path(self, rng):
        n, k = 100, 6
        A = random_sparse(n, n, 0.1, rng=rng, symmetric=True).to_csr()
        res = drive(
            irlm_generator(n, k, tol=1e-10, seed=3, dense_eig="ql"), A.matvec
        )
        ref = spla.eigsh(scipy_of(A), k=k, which="LA", return_eigenvectors=False)
        ref.sort()
        assert np.allclose(res.eigenvalues, ref, atol=1e-8)


class TestBehavior:
    def test_m_equals_n_is_exact(self, rng):
        A = rng.standard_normal((20, 20))
        A = (A + A.T) / 2
        res = drive(
            irlm_generator(20, 3, m=20, seed=0), lambda x: A @ x
        )
        ref = np.linalg.eigvalsh(A)[-3:]
        assert np.allclose(res.eigenvalues, ref, atol=1e-10)
        assert res.n_restarts == 0

    def test_restart_count_grows_for_small_m(self, rng):
        A = random_sparse(200, 200, 0.05, rng=rng, symmetric=True).to_csr()
        res_small = drive(
            irlm_generator(200, 8, m=18, tol=1e-10, seed=0), A.matvec
        )
        res_big = drive(
            irlm_generator(200, 8, m=60, tol=1e-10, seed=0), A.matvec
        )
        assert res_small.n_restarts >= res_big.n_restarts
        assert np.allclose(res_small.eigenvalues, res_big.eigenvalues, atol=1e-7)

    def test_maxiter_gives_unconverged_result(self, rng):
        A = random_sparse(300, 300, 0.03, rng=rng, symmetric=True).to_csr()
        res = drive(
            irlm_generator(300, 10, m=22, tol=1e-14, maxiter=1, seed=0), A.matvec
        )
        assert res.n_restarts <= 2
        # still returns the best available approximations
        assert res.eigenvalues.size == 10

    def test_v0_respected(self, rng):
        A = random_sparse(100, 100, 0.1, rng=rng, symmetric=True).to_csr()
        v0 = rng.standard_normal(100)
        r1 = drive(irlm_generator(100, 4, v0=v0, tol=1e-10), A.matvec)
        r2 = drive(irlm_generator(100, 4, v0=v0, tol=1e-10), A.matvec)
        assert np.array_equal(r1.eigenvalues, r2.eigenvalues)

    def test_n_op_counts_matvecs(self, rng):
        A = random_sparse(80, 80, 0.2, rng=rng, symmetric=True).to_csr()
        calls = 0

        def counting(x):
            nonlocal calls
            calls += 1
            return A.matvec(x)

        res = drive(irlm_generator(80, 4, tol=1e-10, seed=0), counting)
        assert res.n_op == calls

    def test_multiplicity_resolved(self, rng):
        # top eigenvalue with multiplicity 3
        d = np.concatenate([[5.0, 5.0, 5.0], rng.uniform(-1, 1, 47)])
        Q, _ = np.linalg.qr(rng.standard_normal((50, 50)))
        A = Q @ np.diag(d) @ Q.T
        res = drive(
            irlm_generator(50, 3, m=20, tol=1e-10, seed=0), lambda x: A @ x
        )
        assert np.allclose(res.eigenvalues, 5.0, atol=1e-8)


class TestValidation:
    def test_k_bounds(self):
        with pytest.raises(EigensolverError):
            next(irlm_generator(10, 0))
        with pytest.raises(EigensolverError):
            next(irlm_generator(10, 10))

    def test_m_bounds(self):
        with pytest.raises(EigensolverError):
            next(irlm_generator(10, 3, m=3))
        with pytest.raises(EigensolverError):
            next(irlm_generator(10, 3, m=11))

    def test_bad_which(self):
        gen = irlm_generator(50, 3, which="XX", m=10)
        with pytest.raises(EigensolverError):
            drive(gen, lambda x: x)

    def test_bad_v0_length(self):
        with pytest.raises(EigensolverError):
            next(irlm_generator(10, 2, v0=np.zeros(9)))
