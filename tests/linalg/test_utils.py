"""Orthogonalization utilities."""

import numpy as np
import pytest

from repro.linalg.utils import (
    dgks_orthogonalize,
    normalize_columns,
    normalize_rows,
    random_unit_vector,
)


class TestDGKS:
    def test_orthogonalizes_against_basis(self, rng):
        V, _ = np.linalg.qr(rng.standard_normal((20, 5)))
        V = V.T  # rows orthonormal
        w = rng.standard_normal(20)
        w_orth, h = dgks_orthogonalize(V, w)
        assert np.max(np.abs(V @ w_orth)) < 1e-12

    def test_coefficients_reconstruct(self, rng):
        V, _ = np.linalg.qr(rng.standard_normal((10, 3)))
        V = V.T
        w = rng.standard_normal(10)
        w_orth, h = dgks_orthogonalize(V, w)
        assert np.allclose(w, w_orth + V.T @ h)

    def test_empty_basis(self, rng):
        w = rng.standard_normal(7)
        w2, h = dgks_orthogonalize(np.zeros((0, 7)), w)
        assert np.array_equal(w2, w)
        assert h.size == 0

    def test_nearly_parallel_input_needs_refinement(self, rng):
        # w almost inside span(V): classical GS alone would leave junk
        V, _ = np.linalg.qr(rng.standard_normal((50, 10)))
        V = V.T
        w = V.T @ rng.standard_normal(10) + 1e-10 * rng.standard_normal(50)
        w_orth, _ = dgks_orthogonalize(V, w)
        if np.linalg.norm(w_orth) > 0:
            assert np.max(np.abs(V @ w_orth)) < 1e-13 * max(
                1.0, np.linalg.norm(w_orth)
            ) + 1e-15

    def test_input_not_mutated(self, rng):
        V, _ = np.linalg.qr(rng.standard_normal((10, 2)))
        w = rng.standard_normal(10)
        w0 = w.copy()
        dgks_orthogonalize(V.T, w)
        assert np.array_equal(w, w0)


class TestNormalize:
    def test_columns(self, rng):
        X = rng.standard_normal((8, 4))
        N = normalize_columns(X)
        assert np.allclose(np.linalg.norm(N, axis=0), 1.0)

    def test_zero_column_preserved(self):
        X = np.zeros((4, 2))
        X[:, 1] = [3, 0, 4, 0]
        N = normalize_columns(X)
        assert np.all(N[:, 0] == 0)
        assert np.linalg.norm(N[:, 1]) == pytest.approx(1.0)

    def test_rows(self, rng):
        X = rng.standard_normal((5, 7))
        N = normalize_rows(X)
        assert np.allclose(np.linalg.norm(N, axis=1), 1.0)

    def test_zero_row_preserved(self):
        X = np.zeros((2, 3))
        X[0] = [1, 2, 2]
        N = normalize_rows(X)
        assert np.all(N[1] == 0)


class TestRandomUnitVector:
    def test_unit_norm(self, rng):
        v = random_unit_vector(10, rng)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_orthogonal_to_basis(self, rng):
        V, _ = np.linalg.qr(rng.standard_normal((20, 6)))
        v = random_unit_vector(20, rng, orthogonal_to=V.T)
        assert np.max(np.abs(V.T @ v)) < 1e-10

    def test_full_space_fails(self, rng):
        # basis spans R^2 completely: no orthogonal direction exists
        V = np.eye(2)
        with pytest.raises(RuntimeError):
            random_unit_vector(2, rng, orthogonal_to=V)
