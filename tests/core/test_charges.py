"""The hybrid workflow's CPU charge model: scaling relations matching the
paper's complexity expression (10)."""

import pytest

from repro.core.workflow import (
    charge_find_eigenvectors,
    charge_restart,
    charge_takestep,
)
from repro.cuda.device import Device
from repro.hw.costmodel import CPUCostModel
from repro.hw.spec import XEON_E5_2690

CPU = CPUCostModel(XEON_E5_2690)


def charged(fn, *args) -> float:
    dev = Device()
    fn(dev, CPU, *args)
    return dev.timeline.total("cpu")


class TestChargeScaling:
    def test_takestep_linear_in_n_and_j(self):
        base = charged(charge_takestep, 10_000, 100.0)
        assert charged(charge_takestep, 20_000, 100.0) == pytest.approx(2 * base)
        assert charged(charge_takestep, 10_000, 200.0) == pytest.approx(2 * base)

    def test_restart_cubic_term_in_m(self):
        # with n small, the m^3 tridiagonal eig dominates
        t1 = charged(charge_restart, 100, 200, 100)
        t2 = charged(charge_restart, 100, 400, 200)
        assert 6 < t2 / t1 < 10

    def test_restart_basis_update_scales_with_n(self):
        # with m fixed and n large, the V·Q gemm dominates and is linear in n
        t1 = charged(charge_restart, 10**6, 100, 50)
        t2 = charged(charge_restart, 2 * 10**6, 100, 50)
        assert 1.7 < t2 / t1 < 2.1

    def test_find_eigenvectors_matches_complexity(self):
        # O(n·m·k): doubling any factor doubles the charge
        base = charged(charge_find_eigenvectors, 10_000, 100, 50)
        assert charged(charge_find_eigenvectors, 20_000, 100, 50) == pytest.approx(
            2 * base
        )
        assert charged(charge_find_eigenvectors, 10_000, 200, 50) == pytest.approx(
            2 * base
        )
        assert charged(charge_find_eigenvectors, 10_000, 100, 100) == pytest.approx(
            2 * base
        )

    def test_all_charges_land_in_cpu_category(self):
        dev = Device()
        charge_takestep(dev, CPU, 1000, 10.0)
        charge_restart(dev, CPU, 1000, 20, 10)
        charge_find_eigenvectors(dev, CPU, 1000, 20, 10)
        assert dev.timeline.total("cpu") == pytest.approx(dev.elapsed)
        assert dev.timeline.total("kernel") == 0.0
