"""The RatioCut objective path (Eq. 3 relaxation, unnormalized Laplacian)."""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.cusparse.matrices import coo_to_device
from repro.cuda.device import Device
from repro.errors import ClusteringError
from repro.graph.laplacian import device_shifted_laplacian, laplacian
from repro.metrics.cuts import ratio_cut
from repro.metrics.external import adjusted_rand_index


class TestShiftedLaplacian:
    def test_spectrum_flip(self, sbm_graph):
        W, _ = sbm_graph
        dev = Device()
        dcoo = coo_to_device(dev, W.sorted_by_row())
        dcsr, c = device_shifted_laplacian(dcoo)
        got = dcsr.to_host().to_dense()
        L = laplacian(W).to_dense()
        assert np.allclose(got, c * np.eye(W.shape[0]) - L)

    def test_shift_is_gershgorin_safe(self, sbm_graph):
        W, _ = sbm_graph
        dev = Device()
        dcoo = coo_to_device(dev, W.sorted_by_row())
        _, c = device_shifted_laplacian(dcoo)
        lam_max = np.linalg.eigvalsh(laplacian(W).to_dense())[-1]
        assert c >= lam_max


class TestRatioCutPipeline:
    def test_recovers_sbm(self, sbm_graph):
        W, truth = sbm_graph
        res = SpectralClustering(
            n_clusters=6, objective="ratiocut", seed=0
        ).fit(graph=W)
        assert adjusted_rand_index(res.labels, truth) > 0.9

    def test_eigenvalues_are_smallest_of_l(self, sbm_graph):
        W, _ = sbm_graph
        res = SpectralClustering(
            n_clusters=6, objective="ratiocut", eig_tol=1e-10, seed=0
        ).fit(graph=W)
        lam = np.linalg.eigvalsh(laplacian(W).to_dense())[:6]
        assert np.allclose(np.sort(res.eigenvalues), lam, atol=1e-6)
        # connected graph: exactly one (near-)zero eigenvalue
        assert abs(res.eigenvalues.min()) < 1e-7

    def test_optimizes_its_own_objective(self, sbm_graph, rng):
        W, _ = sbm_graph
        res = SpectralClustering(
            n_clusters=6, objective="ratiocut", seed=0
        ).fit(graph=W)
        ours = ratio_cut(W, res.labels)
        for _ in range(10):
            rand = rng.integers(0, 6, W.shape[0])
            assert ours <= ratio_cut(W, rand) + 1e-12

    def test_ncut_and_ratiocut_agree_on_clean_sbm(self, sbm_graph):
        """Equal-size well-separated communities: both relaxations find
        the same partition."""
        W, _ = sbm_graph
        a = SpectralClustering(n_clusters=6, objective="ncut", seed=0).fit(graph=W)
        b = SpectralClustering(n_clusters=6, objective="ratiocut", seed=0).fit(
            graph=W
        )
        assert adjusted_rand_index(a.labels, b.labels) > 0.9

    def test_bad_objective(self):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3, objective="mincut")
