"""Parity grid over ``precision x embedding x n_devices x spmv_format``.

The central promise of the mixed-precision axis: ``precision="fp64"``
(with the Lanczos embedding) is the *exact* path — bit-identical labels,
spectra and embedding to a build without the precision axis, across every
device count and SpMV format the pipeline accepts.  Reduced precisions
and the power embedding trade bits for bytes; their cells of the grid are
held to the tolerance bands instead (ARI against the planted SBM
communities, refined residual under the precision's floor).
"""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.metrics.external import adjusted_rand_index
from repro.precision import TOL_FLOORS

K = 6

#: ARI each reduced/alternative cell must clear on the 6x40 SBM fixture —
#: the same planted-partition band the regression harness enforces on the
#: benchmark datasets
ARI_BANDS = {"fp64": 0.95, "fp32": 0.95, "fp16": 0.90}

#: fp64 lanczos cells that must be bit-identical to the default fit
EXACT_GRID = [
    (1, "auto"), (1, "csr"), (1, "ell"), (1, "hyb"),
    (2, "auto"), (2, "csr"),
]

#: reduced / power cells held to tolerance bands, not bit-identity
BANDED_GRID = [
    (precision, embedding, n_devices)
    for precision in ("fp32", "fp16")
    for embedding in ("lanczos", "power")
    for n_devices in (1, 2)
] + [("fp64", "power", 1), ("fp64", "power", 2)]


def _fit(graph, **kw):
    return SpectralClustering(n_clusters=K, seed=0, **kw).fit(graph=graph)


@pytest.fixture(scope="module")
def grid_graph():
    import numpy as np

    from repro.datasets.sbm import stochastic_block_model
    from repro.sparse.construct import from_edge_list

    rng = np.random.default_rng(12345)
    edges, labels = stochastic_block_model(
        [40] * K, p_in=0.5, p_out=0.01, rng=rng
    )
    return from_edge_list(edges, n_nodes=40 * K), labels


@pytest.fixture(scope="module")
def baseline(grid_graph):
    W, _ = grid_graph
    return _fit(W)


class TestExactPathBitIdentity:
    def test_explicit_fp64_kwargs_match_defaults(self, grid_graph, baseline):
        """Passing the new axes explicitly at their defaults must not
        perturb a single bit — the precision axis is invisible at fp64."""
        W, _ = grid_graph
        res = _fit(W, precision="fp64", embedding="lanczos")
        assert np.array_equal(res.labels, baseline.labels)
        assert res.eigenvalues.tobytes() == baseline.eigenvalues.tobytes()
        assert res.embedding.tobytes() == baseline.embedding.tobytes()

    @pytest.mark.parametrize("n_devices,fmt", EXACT_GRID)
    def test_fp64_grid_bit_identical(self, grid_graph, baseline, n_devices, fmt):
        W, _ = grid_graph
        res = _fit(
            W, precision="fp64", embedding="lanczos",
            eig_devices=n_devices, eig_spmv_format=fmt,
        )
        assert np.array_equal(res.labels, baseline.labels)
        assert res.eigenvalues.tobytes() == baseline.eigenvalues.tobytes()
        assert res.embedding.tobytes() == baseline.embedding.tobytes()
        assert res.eig_stats["precision"] == "fp64"
        assert res.eig_stats["refine_steps"] == 0
        assert res.eig_stats["refine_history"] is None

    def test_fp64_power_deterministic_across_devices(self, grid_graph):
        """The power embedding is a different algorithm (never claimed
        bit-identical to Lanczos) but must itself be deterministic and
        device-count invariant at fp64."""
        W, truth = grid_graph
        one = _fit(W, embedding="power", eig_devices=1)
        two = _fit(W, embedding="power", eig_devices=2)
        assert one.eigenvalues.tobytes() == two.eigenvalues.tobytes()
        assert one.embedding.tobytes() == two.embedding.tobytes()
        assert np.array_equal(one.labels, two.labels)
        assert adjusted_rand_index(one.labels, truth) >= ARI_BANDS["fp64"]


class TestBandedGrid:
    @pytest.mark.parametrize("precision,embedding,n_devices", BANDED_GRID)
    def test_cell_inside_tolerance_band(
        self, grid_graph, precision, embedding, n_devices
    ):
        W, truth = grid_graph
        res = _fit(
            W, precision=precision, embedding=embedding,
            eig_devices=n_devices,
        )
        stats = res.eig_stats
        assert stats["precision"] == precision
        assert stats["embedding"] == embedding
        assert stats["converged"]
        ari = adjusted_rand_index(res.labels, truth)
        assert ari >= ARI_BANDS[precision], (
            f"{precision}/{embedding}/{n_devices}dev ARI {ari:.3f} below "
            f"band {ARI_BANDS[precision]}"
        )
        if precision != "fp64":
            # refinement ran and landed under the precision's noise floor
            assert stats["refine_steps"] > 0
            assert stats["refine_residual"] is not None
            assert stats["refine_residual"] <= TOL_FLOORS[precision]
        assert np.all(np.isfinite(res.embedding))

    @pytest.mark.parametrize("precision", ("fp32", "fp16"))
    def test_reduced_cells_are_reproducible(self, grid_graph, precision):
        """Reduced precision is approximate but still deterministic: the
        same request must produce the same bits run-to-run (the serve
        layer caches these embeddings by fingerprint)."""
        W, _ = grid_graph
        r1 = _fit(W, precision=precision)
        r2 = _fit(W, precision=precision)
        assert np.array_equal(r1.labels, r2.labels)
        assert r1.embedding.tobytes() == r2.embedding.tobytes()

    def test_reduced_grid_moves_fewer_bytes(self, grid_graph, baseline):
        """The point of the axis: modeled SpMV byte traffic must drop
        with the storage width on the same workload."""
        W, _ = grid_graph
        b64 = baseline.eig_stats["spmv_bytes"]
        b32 = _fit(W, precision="fp32").eig_stats["spmv_bytes"]
        b16 = _fit(W, precision="fp16").eig_stats["spmv_bytes"]
        assert b64 > b32 > b16 > 0
