"""FittedSpectralModel: out-of-sample predict and incremental deltas."""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.cuda.device import Device
from repro.errors import ClusteringError


@pytest.fixture(scope="module")
def blob_fit():
    """A point-input fit (feature-path predicts available)."""
    rng = np.random.default_rng(7)
    k, per, d = 3, 30, 5
    centers = rng.standard_normal((k, d)) * 9.0
    X = centers[np.repeat(np.arange(k), per)] + 0.3 * rng.standard_normal(
        (k * per, d)
    )
    n = k * per
    pairs = [
        (i, j)
        for i in range(n) for j in range(i + 1, n)
        if abs(i // per - j // per) == 0 or rng.random() < 0.02
    ]
    edges = np.asarray(pairs, dtype=np.int64)
    res = SpectralClustering(n_clusters=k, seed=0).fit(X=X, edges=edges)
    return X, edges, res


@pytest.fixture(scope="module")
def graph_fit():
    """A graph-input fit (weights-path predicts only)."""
    from repro.datasets.sbm import stochastic_block_model
    from repro.sparse.construct import from_edge_list

    rng = np.random.default_rng(3)
    edges, _ = stochastic_block_model([30] * 3, p_in=0.5, p_out=0.02, rng=rng)
    W = from_edge_list(edges, n_nodes=90)
    res = SpectralClustering(n_clusters=3, seed=0).fit(graph=W)
    return W, res


def _clone_payload(model, positions):
    """Weights-path payload cloning each listed anchor's similarity row."""
    rows, cols, vals = [], [], []
    for i, p in enumerate(positions):
        cp, vp = model.graph.getrow(int(p))
        rows.append(np.full(cp.size, i, dtype=np.int64))
        cols.append(model.kept[cp])
        vals.append(vp)
    pairs = np.column_stack([np.concatenate(rows), np.concatenate(cols)])
    return pairs, np.concatenate(vals)


class TestFitReturnsModel:
    def test_model_attached(self, blob_fit):
        _, _, res = blob_fit
        model = res.model
        assert model is not None
        assert model.k == 3
        assert model.basis.shape == (model.n_anchor, 3)
        assert model.centroids.shape == (3, 3)
        assert model.anchors is not None
        assert model.nbytes > 0

    def test_graph_fit_has_no_anchors(self, graph_fit):
        _, res = graph_fit
        assert res.model is not None
        assert res.model.anchors is None

    def test_ratiocut_has_no_model(self, graph_fit):
        W, _ = graph_fit
        res = SpectralClustering(
            n_clusters=3, objective="ratiocut", seed=0
        ).fit(graph=W)
        assert res.model is None

    def test_compressive_has_no_model(self, graph_fit):
        W, _ = graph_fit
        res = SpectralClustering(
            n_clusters=3, embedding="compressive", seed=0
        ).fit(graph=W)
        assert res.model is None


class TestPredictFeaturePath:
    def test_anchor_clones_recover_fit_labels(self, blob_fit):
        X, edges, res = blob_fit
        model = res.model
        picks = np.array([0, 5, 40, 80])
        anchor_ids = model.kept[picks]
        # connect each clone exactly as its source vertex connects
        pairs, _ = _clone_payload(model, picks)
        out = model.predict(X_new=X[anchor_ids], pairs_new=pairs)
        assert np.array_equal(out.labels, res.labels[anchor_ids])
        assert out.ledger_ok is None  # host path: nothing to audit
        assert out.embedding.shape == (4, 3)

    def test_device_matches_host_bitwise(self, blob_fit):
        X, _, res = blob_fit
        model = res.model
        picks = np.array([1, 33, 62])
        pairs, _ = _clone_payload(model, picks)
        host = model.predict(X_new=X[model.kept[picks]], pairs_new=pairs)
        dev = model.predict(
            X_new=X[model.kept[picks]], pairs_new=pairs, device=Device()
        )
        assert np.array_equal(host.labels, dev.labels)
        assert np.array_equal(host.embedding, dev.embedding)
        assert dev.ledger_ok is True
        assert dev.simulated_time > 0

    def test_ledger_plan_is_exact(self, blob_fit):
        """The analytic byte plan equals the device meter, transfer by
        transfer — the serve bench gates on this."""
        X, _, res = blob_fit
        model = res.model
        pairs, _ = _clone_payload(model, np.array([2, 50]))
        device = Device()
        before = device.transfer_stats()
        out = model.predict(
            X_new=X[model.kept[[2, 50]]], pairs_new=pairs, device=device
        )
        after = device.transfer_stats()
        assert out.ledger_ok is True
        assert after["bytes_h2d"] - before["bytes_h2d"] == \
            out.ledger.total_h2d_bytes()
        assert after["n_h2d"] - before["n_h2d"] == out.ledger.n_h2d == 7


class TestPredictWeightsPath:
    def test_row_clone_predicts_same_label(self, graph_fit):
        _, res = graph_fit
        model = res.model
        picks = np.array([0, 10, 45, 70])
        pairs, vals = _clone_payload(model, picks)
        out = model.predict(weights_new=vals, pairs_new=pairs)
        assert np.array_equal(out.labels, res.labels[model.kept[picks]])

    def test_device_ledger_ok(self, graph_fit):
        _, res = graph_fit
        model = res.model
        pairs, vals = _clone_payload(model, np.array([3, 60]))
        out = model.predict(
            weights_new=vals, pairs_new=pairs, device=Device()
        )
        assert out.ledger_ok is True
        assert out.ledger.n_h2d == 5  # weights path skips X/anchor uploads

    def test_predict_embedding_micro_path(self, graph_fit):
        _, res = graph_fit
        model = res.model
        labels = model.predict_embedding(model.embedding[:12])
        assert np.array_equal(labels, res.labels[model.kept[:12]])


class TestPredictValidation:
    def test_feature_path_needs_anchors(self, graph_fit):
        _, res = graph_fit
        with pytest.raises(ClusteringError, match="weights_new instead"):
            res.model.predict(
                X_new=np.zeros((1, 3)), pairs_new=np.array([[0, 0]])
            )

    def test_exactly_one_payload_form(self, blob_fit):
        _, _, res = blob_fit
        with pytest.raises(ClusteringError, match="exactly one"):
            res.model.predict(pairs_new=np.array([[0, 0]]))

    def test_pairs_required(self, blob_fit):
        _, _, res = blob_fit
        with pytest.raises(ClusteringError, match="pairs_new"):
            res.model.predict(X_new=np.zeros((1, 5)))

    def test_out_of_range_anchor_rejected(self, blob_fit):
        X, _, res = blob_fit
        with pytest.raises(ClusteringError, match="outside"):
            res.model.predict(
                X_new=X[:1], pairs_new=np.array([[0, 10_000]])
            )


class TestApplyDelta:
    def _fresh(self):
        from repro.datasets.sbm import stochastic_block_model
        from repro.sparse.construct import from_edge_list

        rng = np.random.default_rng(11)
        edges, _ = stochastic_block_model(
            [25] * 3, p_in=0.6, p_out=0.02, rng=rng
        )
        W = from_edge_list(edges, n_nodes=75)
        res = SpectralClustering(n_clusters=3, seed=0).fit(graph=W)
        return W, res

    def test_small_delta_is_lazy(self):
        _, res = self._fresh()
        model = res.model
        a, b = model.kept[0], model.kept[1]
        out = model.apply_delta(
            edges_added=np.array([[a, b]]), weights_added=1e-4,
            device=Device(),
        )
        assert out.refit is False
        assert out.drift_bound <= out.threshold
        assert out.ledger_ok is True
        assert np.array_equal(out.labels, res.labels)
        assert model._accumulated_drift == out.accumulated_drift > 0

    def test_drift_accumulates_then_refits(self):
        _, res = self._fresh()
        model = res.model
        rng = np.random.default_rng(0)
        refitted = False
        for step in range(200):
            i, j = rng.choice(model.kept, size=2, replace=False)
            try:
                out = model.apply_delta(
                    edges_added=np.array([[i, j]]), weights_added=2.0,
                )
            except Exception:
                continue  # self-loop pick rejected etc.
            if out.refit:
                refitted = True
                break
        assert refitted
        assert model.n_refits == 1
        assert model._accumulated_drift == 0.0

    def test_refit_bit_identical_to_cold_fit(self):
        W, res = self._fresh()
        model = res.model
        picks = model.kept[:6]
        big = np.column_stack([picks[:3], picks[3:]])
        out = model.apply_delta(edges_added=big, weights_added=50.0)
        if not out.refit:
            # force it: drift threshold left some headroom — add more
            out = model.apply_delta(edges_added=big, weights_added=500.0)
        assert out.refit is True
        cold = SpectralClustering(n_clusters=3, seed=0).fit(graph=model.graph)
        np.testing.assert_array_equal(
            out.labels[model.kept], cold.labels[cold.model.kept]
        )

    def test_isolated_endpoint_rejected(self):
        _, res = self._fresh()
        model = res.model
        with pytest.raises(ClusteringError, match="outside"):
            model.apply_delta(
                edges_added=np.array([[0, 100_000]]), weights_added=1.0
            )
