"""Standalone spectral embedding."""

import numpy as np
import pytest

from repro.core.embedding import spectral_embedding
from repro.core.pipeline import SpectralClustering
from repro.cuda.device import Device
from repro.errors import ClusteringError
from repro.kmeans.cpu import kmeans_cpu
from repro.metrics.external import adjusted_rand_index
from repro.sparse.construct import from_edge_list


class TestSpectralEmbedding:
    def test_shapes(self, sbm_graph):
        W, _ = sbm_graph
        U, theta, kept = spectral_embedding(W, 6, seed=0)
        assert U.shape == (W.shape[0], 6)
        assert theta.shape == (6,)
        assert kept.size == W.shape[0]

    def test_eigenvalues_descending(self, sbm_graph):
        W, _ = sbm_graph
        _, theta, _ = spectral_embedding(W, 6, seed=0)
        assert np.all(np.diff(theta) <= 1e-12)
        assert theta[0] == pytest.approx(1.0, abs=1e-8)

    def test_matches_pipeline_embedding(self, sbm_graph):
        W, _ = sbm_graph
        U, _, _ = spectral_embedding(W, 6, eig_tol=1e-10, seed=0)
        res = SpectralClustering(n_clusters=6, eig_tol=1e-10, seed=0).fit(graph=W)
        # columns may differ by sign only
        for i in range(6):
            s = np.sign(U[:, i] @ res.embedding[:, i]) or 1.0
            assert np.allclose(U[:, i] * s, res.embedding[:, i], atol=1e-7)

    def test_kmeans_on_embedding_recovers(self, sbm_graph):
        W, truth = sbm_graph
        U, _, _ = spectral_embedding(W, 6, seed=0)
        km = kmeans_cpu(U, 6, seed=0)
        assert adjusted_rand_index(km.labels, truth) > 0.95

    def test_normalize_rows(self, sbm_graph):
        W, _ = sbm_graph
        U, _, _ = spectral_embedding(W, 6, normalize_rows=True, seed=0)
        assert np.allclose(np.linalg.norm(U, axis=1), 1.0)

    def test_isolated_nodes_dropped(self):
        W = from_edge_list(
            np.array([[0, 1], [1, 2], [2, 0], [3, 4], [4, 5], [5, 3]]),
            n_nodes=8,
        )
        U, _, kept = spectral_embedding(W, 2, seed=0)
        assert kept.tolist() == [0, 1, 2, 3, 4, 5]
        assert U.shape == (6, 2)

    def test_bad_n_components(self, sbm_graph):
        W, _ = sbm_graph
        with pytest.raises(ClusteringError):
            spectral_embedding(W, 0)

    def test_device_timeline_shared(self, sbm_graph):
        W, _ = sbm_graph
        dev = Device()
        spectral_embedding(W, 4, seed=0, device=dev)
        assert dev.timeline.total(tag="eigensolver") > 0
