"""TransferLedger vs measured traffic: the plan and the meters must agree.

The ledger predicts what a solve *should* move (PCIe and peer bus); the
device counters and the profiler record what it *did* move.  These tests
pin the two together byte-for-byte for full eigensolver runs, single- and
multi-device.
"""

import pytest

from repro.core.workflow import hybrid_eigensolver
from repro.cuda.device import Device
from repro.cuda.profiler import Profiler
from repro.cusparse.matrices import coo_to_device
from repro.graph.laplacian import device_sym_normalize
from repro.linalg.rci import TransferLedger


def _build(sbm_graph):
    W, _ = sbm_graph
    dev = Device()
    dcoo = coo_to_device(dev, W.sorted_by_row())
    return dev, device_sym_normalize(dcoo), W.shape[0]


def _ledger_h2d(n, stats):
    ledger = TransferLedger(
        n=n, m=stats.m, k=stats.k, n_devices=stats.n_devices
    )
    seed = ledger.seed_h2d_bytes()
    if stats.n_devices > 1:
        per_restart = ledger.restart_broadcast_bytes()
    else:
        per_restart = ledger.restart_h2d_bytes()
    return seed + stats.n_restarts * per_restart


def _ledger_d2h(n, stats):
    ledger = TransferLedger(n=n, m=stats.m, k=stats.k)
    return (
        stats.n_restarts * ledger.restart_d2h_bytes()
        + ledger.result_d2h_bytes()
    )


class TestSingleDeviceConsistency:
    def test_profiler_stats_and_ledger_agree(self, sbm_graph):
        dev, op, n = _build(sbm_graph)
        prof = Profiler(dev)
        prof.start()
        _, _, stats = hybrid_eigensolver(
            dev, op, k=6, tol=1e-8, seed=0, spmv_format="csr"
        )
        rep = prof.stop()
        assert stats.converged and stats.n_resumes == 0
        # meter == meter: the stats deltas are the profiler deltas
        assert rep.transfers["bytes_h2d"] == stats.bytes_h2d
        assert rep.transfers["bytes_d2h"] == stats.bytes_d2h
        assert rep.transfers["bytes_p2p"] == stats.bytes_p2p == 0
        # meter == plan: every byte is in the ledger
        assert stats.bytes_h2d == _ledger_h2d(n, stats)
        assert stats.bytes_d2h == _ledger_d2h(n, stats)

    def test_elided_roundtrips_match_ledger(self, sbm_graph):
        dev, op, n = _build(sbm_graph)
        prof = Profiler(dev)
        prof.start()
        _, _, stats = hybrid_eigensolver(
            dev, op, k=6, tol=1e-8, seed=0, spmv_format="csr"
        )
        rep = prof.stop()
        ledger = TransferLedger(n=n, m=stats.m, k=stats.k)
        assert (
            rep.transfers["bytes_elided"]
            == stats.n_op * ledger.step_roundtrip_bytes()
        )
        assert rep.transfers["transfers_elided"] == 2 * stats.n_op


class TestMultiDeviceConsistency:
    @pytest.mark.parametrize("p", [2, 3])
    def test_all_three_buses_match_ledger(self, sbm_graph, p):
        dev, op, n = _build(sbm_graph)
        _, _, stats = hybrid_eigensolver(
            dev, op, k=6, tol=1e-8, seed=0, n_devices=p
        )
        assert stats.converged
        part = stats.partition
        ledger = TransferLedger(
            n=n,
            m=stats.m,
            k=stats.k,
            n_devices=p,
            halo_counts=tuple(part["halo_counts"]),
            halo_pairs=part["halo_pairs"],
        )
        # PCIe up: scattered seed + per-restart Q broadcast to every GPU
        assert stats.bytes_h2d == (
            ledger.seed_h2d_bytes()
            + stats.n_restarts * ledger.restart_broadcast_bytes()
        )
        # PCIe down: tridiagonal entries per restart + the final Ritz block
        assert stats.bytes_d2h == (
            stats.n_restarts * ledger.restart_d2h_bytes()
            + ledger.result_d2h_bytes()
        )
        # peer bus: one-time shard distribution + one halo exchange per SpMV
        assert stats.bytes_p2p == (
            part["shard_upload_bytes"]
            + part["n_matvec"] * ledger.step_halo_bytes()
        )
        assert part["step_halo_bytes"] == ledger.step_halo_bytes()

    def test_seed_scatter_sums_exactly(self, sbm_graph):
        _, _, n = _build(sbm_graph)
        ledger = TransferLedger(n=n, m=30, k=6, n_devices=3)
        split = ledger.shard_split(ledger.seed_h2d_bytes())
        assert len(split) == 3
        assert sum(split) == ledger.seed_h2d_bytes()

    def test_multi_device_same_pcie_totals_as_single(self, sbm_graph):
        """The peer bus is extra; the PCIe d2h plan is unchanged, and h2d
        differs only by the (n_devices - 1) extra Q broadcast copies."""
        dev1, op1, n = _build(sbm_graph)
        _, _, s1 = hybrid_eigensolver(dev1, op1, k=6, tol=1e-8, seed=0)
        dev2, op2, _ = _build(sbm_graph)
        _, _, s2 = hybrid_eigensolver(
            dev2, op2, k=6, tol=1e-8, seed=0, n_devices=2
        )
        assert s2.n_restarts == s1.n_restarts  # identical iteration path
        assert s2.bytes_d2h == s1.bytes_d2h
        extra_q = s1.n_restarts * s1.m * s1.k * 8
        assert s2.bytes_h2d == s1.bytes_h2d + extra_q


class TestMixedDtypeConsistency:
    """The ledger's ``itemsize`` axis: every reduced-precision byte count
    must be the fp64 plan rescaled to the storage width, with the fp64
    refinement legs (the ``(n, k)`` block each way per operator
    application) priced at full width on top.  These pin the exact totals
    so a reintroduced hard-coded ``* 8`` anywhere in the metering or the
    ledger fails loudly."""

    @pytest.mark.parametrize("precision,vs", [("fp32", 4), ("fp16", 2)])
    def test_single_device_pcie_totals_exact(
        self, sbm_graph, precision, vs
    ):
        dev, op, n = _build(sbm_graph)
        prof = Profiler(dev)
        prof.start()
        _, _, stats = hybrid_eigensolver(
            dev, op, k=6, tol=1e-8, seed=0,
            spmv_format="csr", precision=precision,
        )
        rep = prof.stop()
        assert stats.converged
        # the refinement pass always ran for a reduced solve: one
        # measurement + polish application, plus any subspace advances
        apps = stats.refine_steps
        assert apps == len(stats.refine_history) - 1 >= 1
        ledger = TransferLedger(
            n=n, m=stats.m, k=stats.k, itemsize=vs
        )
        # PCIe up: seed + per-restart Q at storage width, then the fp64
        # refinement block up once per application
        assert stats.bytes_h2d == (
            ledger.seed_h2d_bytes()
            + stats.n_restarts * ledger.restart_h2d_bytes()
            + apps * ledger.refine_apply_bytes()
        )
        # PCIe down: tridiagonal + Ritz block at storage width, then the
        # fp64 refinement product down once per application
        assert stats.bytes_d2h == (
            stats.n_restarts * ledger.restart_d2h_bytes()
            + ledger.result_d2h_bytes()
            + apps * ledger.refine_apply_bytes()
        )
        # and the profiler saw the same bytes the stats deltas report
        assert rep.transfers["bytes_h2d"] == stats.bytes_h2d
        assert rep.transfers["bytes_d2h"] == stats.bytes_d2h

    @pytest.mark.parametrize("precision,vs", [("fp32", 4), ("fp16", 2)])
    def test_multi_device_peer_bus_at_storage_width(
        self, sbm_graph, precision, vs
    ):
        dev, op, n = _build(sbm_graph)
        _, _, stats = hybrid_eigensolver(
            dev, op, k=6, tol=1e-8, seed=0,
            n_devices=2, precision=precision,
        )
        assert stats.converged
        part = stats.partition
        ledger = TransferLedger(
            n=n, m=stats.m, k=stats.k, itemsize=vs, n_devices=2,
            halo_counts=tuple(part["halo_counts"]),
            halo_pairs=part["halo_pairs"],
        )
        # halo entries cross the peer bus at the storage width
        assert part["step_halo_bytes"] == ledger.step_halo_bytes()
        assert stats.bytes_p2p == ledger.solve_p2p_bytes(
            part["n_matvec"], part["shard_upload_bytes"]
        )
        # PCIe plan: storage-width seed/broadcast/results + fp64 legs
        apps = stats.refine_steps
        assert stats.bytes_h2d == (
            ledger.seed_h2d_bytes()
            + stats.n_restarts * ledger.restart_broadcast_bytes()
            + apps * ledger.refine_apply_bytes()
        )
        assert stats.bytes_d2h == (
            stats.n_restarts * ledger.restart_d2h_bytes()
            + ledger.result_d2h_bytes()
            + apps * ledger.refine_apply_bytes()
        )

    def test_reduced_width_scales_the_plan_not_the_path(self, sbm_graph):
        """fp32 must take the same iteration path as fp64 on this easy
        graph (restart counts agree), so every PCIe delta between the two
        solves is pure storage-width arithmetic plus the refinement legs
        — nothing hidden."""
        dev64, op64, n = _build(sbm_graph)
        _, _, s64 = hybrid_eigensolver(
            dev64, op64, k=6, tol=1e-8, seed=0, spmv_format="csr"
        )
        dev32, op32, _ = _build(sbm_graph)
        _, _, s32 = hybrid_eigensolver(
            dev32, op32, k=6, tol=1e-8, seed=0,
            spmv_format="csr", precision="fp32",
        )
        assert s32.n_restarts == s64.n_restarts
        assert (s32.m, s32.k) == (s64.m, s64.k)
        # every planned byte count is linear in itemsize, so netting out
        # the full-width refinement legs the fp32 solve moves exactly
        # half the fp64 bytes — any hard-coded width breaks the ratio
        ledger32 = TransferLedger(n=n, m=s32.m, k=s32.k, itemsize=4)
        refine = s32.refine_steps * ledger32.refine_apply_bytes()
        assert (s32.bytes_h2d - refine) * 2 == s64.bytes_h2d
        assert (s32.bytes_d2h - refine) * 2 == s64.bytes_d2h
