"""TransferLedger vs measured traffic: the plan and the meters must agree.

The ledger predicts what a solve *should* move (PCIe and peer bus); the
device counters and the profiler record what it *did* move.  These tests
pin the two together byte-for-byte for full eigensolver runs, single- and
multi-device.
"""

import pytest

from repro.core.workflow import hybrid_eigensolver
from repro.cuda.device import Device
from repro.cuda.profiler import Profiler
from repro.cusparse.matrices import coo_to_device
from repro.graph.laplacian import device_sym_normalize
from repro.linalg.rci import TransferLedger


def _build(sbm_graph):
    W, _ = sbm_graph
    dev = Device()
    dcoo = coo_to_device(dev, W.sorted_by_row())
    return dev, device_sym_normalize(dcoo), W.shape[0]


def _ledger_h2d(n, stats):
    ledger = TransferLedger(
        n=n, m=stats.m, k=stats.k, n_devices=stats.n_devices
    )
    seed = ledger.seed_h2d_bytes()
    if stats.n_devices > 1:
        per_restart = ledger.restart_broadcast_bytes()
    else:
        per_restart = ledger.restart_h2d_bytes()
    return seed + stats.n_restarts * per_restart


def _ledger_d2h(n, stats):
    ledger = TransferLedger(n=n, m=stats.m, k=stats.k)
    return (
        stats.n_restarts * ledger.restart_d2h_bytes()
        + ledger.result_d2h_bytes()
    )


class TestSingleDeviceConsistency:
    def test_profiler_stats_and_ledger_agree(self, sbm_graph):
        dev, op, n = _build(sbm_graph)
        prof = Profiler(dev)
        prof.start()
        _, _, stats = hybrid_eigensolver(
            dev, op, k=6, tol=1e-8, seed=0, spmv_format="csr"
        )
        rep = prof.stop()
        assert stats.converged and stats.n_resumes == 0
        # meter == meter: the stats deltas are the profiler deltas
        assert rep.transfers["bytes_h2d"] == stats.bytes_h2d
        assert rep.transfers["bytes_d2h"] == stats.bytes_d2h
        assert rep.transfers["bytes_p2p"] == stats.bytes_p2p == 0
        # meter == plan: every byte is in the ledger
        assert stats.bytes_h2d == _ledger_h2d(n, stats)
        assert stats.bytes_d2h == _ledger_d2h(n, stats)

    def test_elided_roundtrips_match_ledger(self, sbm_graph):
        dev, op, n = _build(sbm_graph)
        prof = Profiler(dev)
        prof.start()
        _, _, stats = hybrid_eigensolver(
            dev, op, k=6, tol=1e-8, seed=0, spmv_format="csr"
        )
        rep = prof.stop()
        ledger = TransferLedger(n=n, m=stats.m, k=stats.k)
        assert (
            rep.transfers["bytes_elided"]
            == stats.n_op * ledger.step_roundtrip_bytes()
        )
        assert rep.transfers["transfers_elided"] == 2 * stats.n_op


class TestMultiDeviceConsistency:
    @pytest.mark.parametrize("p", [2, 3])
    def test_all_three_buses_match_ledger(self, sbm_graph, p):
        dev, op, n = _build(sbm_graph)
        _, _, stats = hybrid_eigensolver(
            dev, op, k=6, tol=1e-8, seed=0, n_devices=p
        )
        assert stats.converged
        part = stats.partition
        ledger = TransferLedger(
            n=n,
            m=stats.m,
            k=stats.k,
            n_devices=p,
            halo_counts=tuple(part["halo_counts"]),
            halo_pairs=part["halo_pairs"],
        )
        # PCIe up: scattered seed + per-restart Q broadcast to every GPU
        assert stats.bytes_h2d == (
            ledger.seed_h2d_bytes()
            + stats.n_restarts * ledger.restart_broadcast_bytes()
        )
        # PCIe down: tridiagonal entries per restart + the final Ritz block
        assert stats.bytes_d2h == (
            stats.n_restarts * ledger.restart_d2h_bytes()
            + ledger.result_d2h_bytes()
        )
        # peer bus: one-time shard distribution + one halo exchange per SpMV
        assert stats.bytes_p2p == (
            part["shard_upload_bytes"]
            + part["n_matvec"] * ledger.step_halo_bytes()
        )
        assert part["step_halo_bytes"] == ledger.step_halo_bytes()

    def test_seed_scatter_sums_exactly(self, sbm_graph):
        _, _, n = _build(sbm_graph)
        ledger = TransferLedger(n=n, m=30, k=6, n_devices=3)
        split = ledger.shard_split(ledger.seed_h2d_bytes())
        assert len(split) == 3
        assert sum(split) == ledger.seed_h2d_bytes()

    def test_multi_device_same_pcie_totals_as_single(self, sbm_graph):
        """The peer bus is extra; the PCIe d2h plan is unchanged, and h2d
        differs only by the (n_devices - 1) extra Q broadcast copies."""
        dev1, op1, n = _build(sbm_graph)
        _, _, s1 = hybrid_eigensolver(dev1, op1, k=6, tol=1e-8, seed=0)
        dev2, op2, _ = _build(sbm_graph)
        _, _, s2 = hybrid_eigensolver(
            dev2, op2, k=6, tol=1e-8, seed=0, n_devices=2
        )
        assert s2.n_restarts == s1.n_restarts  # identical iteration path
        assert s2.bytes_d2h == s1.bytes_d2h
        extra_q = s1.n_restarts * s1.m * s1.k * 8
        assert s2.bytes_h2d == s1.bytes_h2d + extra_q
