"""The staged pipeline API: embed() + fit_embedding() vs monolithic fit().

The serving layer's cache-correctness argument rests on this contract:
running stages 1-3 and stage 4 through the staged entry points performs
the same device operations in the same order as ``fit``, so results are
bit-identical and the cached artifact is trustworthy.
"""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.core.result import EmbeddingResult


class TestStagedEntryPoints:
    def test_embed_then_fit_embedding_matches_fit(self, sbm_graph):
        W, _ = sbm_graph
        a = SpectralClustering(n_clusters=6, seed=0)
        full = a.fit(graph=W)

        b = SpectralClustering(n_clusters=6, seed=0)
        emb = b.embed(graph=W)
        staged = SpectralClustering(n_clusters=6, seed=0).fit_embedding(emb)

        assert np.array_equal(full.labels, staged.labels)
        assert np.array_equal(full.embedding, staged.embedding)
        assert np.array_equal(full.eigenvalues, staged.eigenvalues)

    def test_embed_returns_reusable_artifact(self, sbm_graph):
        W, _ = sbm_graph
        emb = SpectralClustering(n_clusters=6, seed=0).embed(graph=W)
        assert isinstance(emb, EmbeddingResult)
        assert emb.embedding.shape == (emb.kept.size, 6)
        assert emb.n_components == 6
        assert emb.n_total == W.shape[0]
        assert emb.nbytes > 0
        assert "eigensolver" in emb.timings.simulated
        assert emb.eig_stats["k"] == 6

    def test_fit_embedding_charges_only_kmeans(self, sbm_graph):
        W, _ = sbm_graph
        emb = SpectralClustering(n_clusters=6, seed=0).embed(graph=W)
        res = SpectralClustering(n_clusters=6, seed=0).fit_embedding(emb)
        assert set(res.timings.simulated) == {"kmeans"}

    def test_fit_embedding_reuse_is_deterministic(self, sbm_graph):
        """One embedding served to many fits: identical labels each time."""
        W, _ = sbm_graph
        emb = SpectralClustering(n_clusters=6, seed=0).embed(graph=W)
        r1 = SpectralClustering(n_clusters=6, seed=0).fit_embedding(emb)
        r2 = SpectralClustering(n_clusters=6, seed=0).fit_embedding(emb)
        assert np.array_equal(r1.labels, r2.labels)

    def test_embed_point_input(self, blobs):
        X, _, k = blobs
        rng = np.random.default_rng(0)
        n = X.shape[0]
        edges = np.stack(
            [rng.integers(0, n, 800), rng.integers(0, n, 800)], axis=1
        )
        est = SpectralClustering(n_clusters=k, seed=0)
        emb = est.embed(X=X, edges=edges)
        assert emb.embedding.shape[1] == k

    def test_embed_input_validation(self, sbm_graph):
        from repro.errors import ClusteringError

        W, _ = sbm_graph
        est = SpectralClustering(n_clusters=4)
        with pytest.raises(ClusteringError):
            est.embed()  # no input
        with pytest.raises(ClusteringError):
            est.embed(graph=W, X=np.zeros((4, 2)))  # both inputs

    def test_fit_embedding_validates_shape(self):
        from repro.errors import ClusteringError

        emb = EmbeddingResult(
            embedding=np.zeros(5),  # 1-D: invalid
            eigenvalues=np.zeros(2),
            kept=np.arange(5),
            n_total=5,
            timings=None,
            profile=None,
            eig_stats={},
        )
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=2).fit_embedding(emb)

    def test_different_k_shares_nothing_spurious(self, sbm_graph):
        """Embeddings for different k are independent artifacts."""
        W, _ = sbm_graph
        e4 = SpectralClustering(n_clusters=4, seed=0).embed(graph=W)
        e6 = SpectralClustering(n_clusters=6, seed=0).embed(graph=W)
        assert e4.embedding.shape[1] == 4
        assert e6.embedding.shape[1] == 6
