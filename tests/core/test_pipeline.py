"""End-to-end SpectralClustering estimator."""

import numpy as np
import pytest

from repro.core.pipeline import SpectralClustering
from repro.cuda.device import Device
from repro.errors import ClusteringError
from repro.metrics.cuts import ncut
from repro.metrics.external import adjusted_rand_index
from repro.sparse.construct import from_edge_list


class TestGraphInput:
    def test_recovers_sbm_communities(self, sbm_graph):
        W, truth = sbm_graph
        res = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        assert adjusted_rand_index(res.labels, truth) > 0.95

    def test_ncut_competitive_with_ground_truth(self, sbm_graph):
        W, truth = sbm_graph
        res = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        assert ncut(W, res.labels) <= ncut(W, truth) * 1.5 + 1e-6

    def test_csr_input_accepted(self, sbm_graph):
        W, truth = sbm_graph
        res = SpectralClustering(n_clusters=6, seed=0).fit(graph=W.to_csr())
        assert adjusted_rand_index(res.labels, truth) > 0.95

    def test_result_fields(self, sbm_graph):
        W, _ = sbm_graph
        res = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        n = W.shape[0]
        assert res.labels.shape == (n,)
        assert res.eigenvalues.shape == (6,)
        assert res.embedding.shape == (n, 6)
        assert res.n_clusters == 6
        assert set(res.timings.simulated) == {
            "similarity", "laplacian", "eigensolver", "kmeans",
        }
        assert res.profile.total > 0
        assert "n_op" in res.eig_stats

    def test_eigenvalues_descending_topped_by_one(self, sbm_graph):
        W, _ = sbm_graph
        res = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        assert np.all(np.diff(res.eigenvalues) <= 1e-12)
        assert res.eigenvalues[0] == pytest.approx(1.0, abs=1e-8)

    def test_isolated_nodes_labeled_minus_one(self, sbm_graph):
        W, _ = sbm_graph
        n = W.shape[0]
        # append two isolated nodes
        coo = W
        W2 = from_edge_list(
            np.column_stack([coo.row, coo.col]), weights=coo.data,
            n_nodes=n + 2, symmetrize=False,
        )
        res = SpectralClustering(n_clusters=6, seed=0).fit(graph=W2)
        assert res.labels[n] == -1 and res.labels[n + 1] == -1
        assert res.kept.size == n

    def test_isolated_error_mode(self, sbm_graph):
        W, _ = sbm_graph
        coo = W
        W2 = from_edge_list(
            np.column_stack([coo.row, coo.col]), weights=coo.data,
            n_nodes=W.shape[0] + 1, symmetrize=False,
        )
        sc = SpectralClustering(n_clusters=6, handle_isolated="error")
        with pytest.raises(ClusteringError, match="isolated"):
            sc.fit(graph=W2)

    def test_rw_operator_gives_same_partition(self, sbm_graph):
        W, truth = sbm_graph
        res = SpectralClustering(n_clusters=6, operator="rw", seed=0).fit(graph=W)
        assert adjusted_rand_index(res.labels, truth) > 0.9

    def test_normalize_rows_variant(self, sbm_graph):
        W, truth = sbm_graph
        res = SpectralClustering(
            n_clusters=6, normalize_rows=True, seed=0
        ).fit(graph=W)
        assert adjusted_rand_index(res.labels, truth) > 0.9
        assert np.allclose(np.linalg.norm(res.embedding, axis=1), 1.0)


class TestPointInput:
    @pytest.fixture
    def dti_like(self):
        from repro.datasets.dti import make_dti_volume

        return make_dti_volume(grid=(10, 10, 10), n_regions=5, noise=0.2, seed=0)

    def test_dti_pipeline_recovers_regions(self, dti_like):
        v = dti_like
        res = SpectralClustering(n_clusters=5, seed=0).fit(
            X=v.profiles, edges=v.edges
        )
        assert adjusted_rand_index(res.labels, v.labels) > 0.7

    def test_similarity_stage_timed(self, dti_like):
        v = dti_like
        res = SpectralClustering(n_clusters=5, seed=0).fit(
            X=v.profiles, edges=v.edges
        )
        assert res.timings.simulated["similarity"] > 0

    def test_point_input_requires_edges(self, dti_like):
        with pytest.raises(ClusteringError, match="edges"):
            SpectralClustering(n_clusters=5).fit(X=dti_like.profiles)


class TestValidation:
    def test_both_inputs_rejected(self, sbm_graph, rng):
        W, _ = sbm_graph
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3).fit(
                X=rng.random((10, 2)), edges=np.array([[0, 1]]), graph=W
            )

    def test_no_input_rejected(self):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3).fit()

    def test_k_too_small(self):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=1)

    def test_bad_operator(self):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3, operator="lazy")

    def test_bad_isolated_mode(self):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3, handle_isolated="ignore")

    def test_k_exceeds_nodes(self):
        W = from_edge_list(np.array([[0, 1], [1, 2]]), n_nodes=3)
        with pytest.raises(ClusteringError, match="non-isolated"):
            SpectralClustering(n_clusters=3).fit(graph=W)


class TestDeviceSharing:
    def test_external_device_accumulates_timeline(self, sbm_graph):
        W, _ = sbm_graph
        dev = Device()
        SpectralClustering(n_clusters=6, seed=0, device=dev).fit(graph=W)
        assert dev.elapsed > 0
        stages = dev.timeline.by_tag()
        assert "eigensolver" in stages and "kmeans" in stages

    def test_determinism_given_seed(self, sbm_graph):
        W, _ = sbm_graph
        r1 = SpectralClustering(n_clusters=6, seed=42).fit(graph=W)
        r2 = SpectralClustering(n_clusters=6, seed=42).fit(graph=W)
        assert np.array_equal(r1.labels, r2.labels)

    def test_summary_renders(self, sbm_graph):
        W, _ = sbm_graph
        res = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        text = res.summary()
        assert "eigensolver" in text and "kmeans" in text


class TestMultiDevicePipeline:
    """eig_devices > 1 through the full fit(): same answer, honest knobs."""

    def _fit(self, W, p):
        return SpectralClustering(n_clusters=6, seed=0, eig_devices=p).fit(
            graph=W
        )

    def test_bit_identical_results_across_device_counts(self, sbm_graph):
        W, _ = sbm_graph
        ref = self._fit(W, 1)
        for p in (2, 4):
            res = self._fit(W, p)
            assert res.labels.tobytes() == ref.labels.tobytes()
            assert res.eigenvalues.tobytes() == ref.eigenvalues.tobytes()
            assert res.embedding.tobytes() == ref.embedding.tobytes()

    def test_eig_stats_expose_partition(self, sbm_graph):
        W, _ = sbm_graph
        res = self._fit(W, 2)
        assert res.eig_stats["n_devices"] == 2
        assert res.eig_stats["partition"] is not None
        assert res.eig_stats["bytes_p2p"] > 0
        assert res.timings.simulated["eigensolver"] > 0

    def test_validation(self, sbm_graph):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3, eig_devices=0)
        with pytest.raises(ClusteringError):
            SpectralClustering(
                n_clusters=3, eig_devices=2, eig_residency="host"
            )
        with pytest.raises(ClusteringError):
            SpectralClustering(
                n_clusters=3, eig_devices=2, eig_spmv_format="hyb"
            )


class TestComposedFit:
    """fit_devices > 1: one partition, resident shards, same answer."""

    def _fit(self, W, p, mode="nnz", **kw):
        return SpectralClustering(
            n_clusters=6, seed=0, fit_devices=p, partition_mode=mode, **kw
        ).fit(graph=W)

    def test_bit_identical_across_device_counts(self, sbm_graph):
        W, _ = sbm_graph
        ref = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        for p in (2, 4):
            res = self._fit(W, p)
            assert res.labels.tobytes() == ref.labels.tobytes()
            assert res.eigenvalues.tobytes() == ref.eigenvalues.tobytes()
            assert res.embedding.tobytes() == ref.embedding.tobytes()

    @pytest.mark.parametrize("mode", ["rows", "nnz", "mincut"])
    def test_bit_identical_across_partition_modes(self, sbm_graph, mode):
        W, _ = sbm_graph
        ref = SpectralClustering(n_clusters=6, seed=0).fit(graph=W)
        res = self._fit(W, 2, mode=mode)
        assert res.labels.tobytes() == ref.labels.tobytes()

    def test_eig_stats_expose_composition(self, sbm_graph):
        W, _ = sbm_graph
        res = self._fit(W, 2, mode="mincut")
        comp = res.eig_stats["composed"]
        assert comp["n_devices"] == 2
        assert comp["partition_mode"] == "mincut"
        assert sum(comp["row_counts"]) == W.shape[0]
        assert comp["step_halo_bytes"] > 0
        assert comp["kmeans_makespan_s"] > 0
        # resident shards: the k-means upload was elided, not charged
        assert comp["kmeans_transfers"]["elided_bytes"] > 0
        # the sharded eigensolve ran on the same plan
        assert res.eig_stats["n_devices"] == 2
        assert res.eig_stats["partition"] is not None

    def test_resident_shards_skip_embedding_upload(self, sbm_graph):
        """The phased path re-uploads the full embedding for k-means;
        the composed path's shards are resident, so those bytes appear
        as elided transfers and the stage's charged H2D stays small.
        (The resulting end-to-end makespan win is a bench-scale claim,
        gated in benchmarks/bench_topology_composition.py.)"""
        W, _ = sbm_graph
        res = self._fit(W, 2)
        tr = res.eig_stats["composed"]["kmeans_transfers"]
        embedding_bytes = res.embedding.nbytes
        assert tr["elided_bytes"] >= embedding_bytes
        assert tr["h2d_bytes"] < embedding_bytes

    def test_validation(self):
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3, fit_devices=0)
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3, fit_devices=2, partition_mode="metis")
        with pytest.raises(ClusteringError):
            SpectralClustering(
                n_clusters=3, fit_devices=2, eig_residency="host"
            )
        with pytest.raises(ClusteringError):
            SpectralClustering(
                n_clusters=3, fit_devices=2, precision="fp32"
            )
        with pytest.raises(ClusteringError):
            SpectralClustering(
                n_clusters=3, fit_devices=2, kmeans_update="atomic"
            )
        with pytest.raises(ClusteringError):
            SpectralClustering(n_clusters=3, fit_devices=2, eig_devices=3)
