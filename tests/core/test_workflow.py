"""Algorithm 3 hybrid eigensolver: correctness and accounting."""

import numpy as np
import pytest

from repro.core.workflow import hybrid_eigensolver
from repro.cusparse.matrices import coo_to_device
from repro.graph.laplacian import device_sym_normalize, sym_normalized_adjacency
from repro.linalg.eigsolver import eigsh


@pytest.fixture
def operator(device, sbm_graph):
    W, _ = sbm_graph
    dcoo = coo_to_device(device, W.sorted_by_row())
    return device_sym_normalize(dcoo), W


class TestHybridEigensolver:
    def test_matches_host_eigsh(self, device, operator):
        dcsr, W = operator
        theta, U, stats = hybrid_eigensolver(device, dcsr, k=6, tol=1e-10, seed=0)
        S = sym_normalized_adjacency(W)
        w_ref, _ = eigsh(S, k=6, tol=1e-10, seed=0)
        assert np.allclose(theta, w_ref, atol=1e-9)
        assert stats.converged

    def test_eigenvectors_satisfy_operator(self, device, operator):
        dcsr, W = operator
        theta, U, _ = hybrid_eigensolver(device, dcsr, k=4, tol=1e-10, seed=0)
        S = sym_normalized_adjacency(W)
        for i in range(4):
            r = S.matvec(U[:, i]) - theta[i] * U[:, i]
            assert np.linalg.norm(r) < 1e-7

    def test_top_eigenvalue_is_one(self, device, operator):
        """D^{-1/2}WD^{-1/2} of a connected graph has top eigenvalue 1."""
        dcsr, _ = operator
        theta, _, _ = hybrid_eigensolver(device, dcsr, k=3, tol=1e-10, seed=0)
        assert theta[-1] == pytest.approx(1.0, abs=1e-8)

    def test_pcie_round_trips_equal_spmvs(self, device, operator):
        dcsr, _ = operator
        _, _, stats = hybrid_eigensolver(device, dcsr, k=4, tol=1e-8, seed=0)
        assert stats.pcie_round_trips == stats.n_op
        # two transfers per round trip, plus the three initial uploads and
        # degree-vector machinery already on the timeline
        assert device.timeline.count("h2d") >= stats.n_op
        assert device.timeline.count("d2h") >= stats.n_op

    def test_events_tagged_eigensolver(self, device, operator):
        dcsr, _ = operator
        hybrid_eigensolver(device, dcsr, k=4, tol=1e-8, seed=0)
        assert device.timeline.total(tag="eigensolver") > 0

    def test_cpu_phases_charged(self, device, operator):
        dcsr, _ = operator
        hybrid_eigensolver(device, dcsr, k=4, tol=1e-8, seed=0)
        assert device.timeline.total("cpu", tag="eigensolver") > 0
        names = [e.name for e in device.timeline if e.category == "cpu"]
        assert any("TakeStep" in n for n in names)
        assert any("FindEigenvectors" in n for n in names)

    def test_spmv_runs_on_gpu(self, device, operator):
        dcsr, _ = operator
        hybrid_eigensolver(device, dcsr, k=4, tol=1e-8, seed=0)
        names = [e.name for e in device.timeline if e.category == "kernel"]
        assert any("csrmv" in n for n in names)

    def test_stats_fields(self, device, operator):
        dcsr, _ = operator
        _, _, stats = hybrid_eigensolver(device, dcsr, k=5, tol=1e-8, seed=0)
        d = stats.as_dict()
        assert d["k"] == 5
        assert d["m"] >= 11
        assert d["n_op"] > 0
        assert d["wall_seconds"] > 0
