"""Algorithm 3 hybrid eigensolver: correctness and accounting."""

import numpy as np
import pytest

from repro.core.workflow import hybrid_eigensolver
from repro.cusparse.matrices import coo_to_device
from repro.graph.laplacian import device_sym_normalize, sym_normalized_adjacency
from repro.linalg.eigsolver import eigsh


@pytest.fixture
def operator(device, sbm_graph):
    W, _ = sbm_graph
    dcoo = coo_to_device(device, W.sorted_by_row())
    return device_sym_normalize(dcoo), W


class TestHybridEigensolver:
    def test_matches_host_eigsh(self, device, operator):
        dcsr, W = operator
        theta, U, stats = hybrid_eigensolver(device, dcsr, k=6, tol=1e-10, seed=0)
        S = sym_normalized_adjacency(W)
        w_ref, _ = eigsh(S, k=6, tol=1e-10, seed=0)
        assert np.allclose(theta, w_ref, atol=1e-9)
        assert stats.converged

    def test_eigenvectors_satisfy_operator(self, device, operator):
        dcsr, W = operator
        theta, U, _ = hybrid_eigensolver(device, dcsr, k=4, tol=1e-10, seed=0)
        S = sym_normalized_adjacency(W)
        for i in range(4):
            r = S.matvec(U[:, i]) - theta[i] * U[:, i]
            assert np.linalg.norm(r) < 1e-7

    def test_top_eigenvalue_is_one(self, device, operator):
        """D^{-1/2}WD^{-1/2} of a connected graph has top eigenvalue 1."""
        dcsr, _ = operator
        theta, _, _ = hybrid_eigensolver(device, dcsr, k=3, tol=1e-10, seed=0)
        assert theta[-1] == pytest.approx(1.0, abs=1e-8)

    def test_pcie_round_trips_equal_spmvs(self, device, operator):
        """Host residency: the paper's original two-transfers-per-step."""
        dcsr, _ = operator
        _, _, stats = hybrid_eigensolver(
            device, dcsr, k=4, tol=1e-8, seed=0, residency="host"
        )
        assert stats.pcie_round_trips == stats.n_op
        # two transfers per round trip, plus the three initial uploads and
        # degree-vector machinery already on the timeline
        assert device.timeline.count("h2d") >= stats.n_op
        assert device.timeline.count("d2h") >= stats.n_op

    def test_events_tagged_eigensolver(self, device, operator):
        dcsr, _ = operator
        hybrid_eigensolver(device, dcsr, k=4, tol=1e-8, seed=0)
        assert device.timeline.total(tag="eigensolver") > 0

    def test_cpu_phases_charged(self, device, operator):
        dcsr, _ = operator
        hybrid_eigensolver(
            device, dcsr, k=4, tol=1e-8, seed=0, residency="host"
        )
        assert device.timeline.total("cpu", tag="eigensolver") > 0
        names = [e.name for e in device.timeline if e.category == "cpu"]
        assert any("TakeStep" in n for n in names)
        assert any("FindEigenvectors" in n for n in names)

    def test_spmv_runs_on_gpu(self, device, operator):
        dcsr, _ = operator
        hybrid_eigensolver(
            device, dcsr, k=4, tol=1e-8, seed=0, spmv_format="csr"
        )
        names = [e.name for e in device.timeline if e.category == "kernel"]
        assert any("csrmv" in n for n in names)

    def test_stats_fields(self, device, operator):
        dcsr, _ = operator
        _, _, stats = hybrid_eigensolver(device, dcsr, k=5, tol=1e-8, seed=0)
        d = stats.as_dict()
        assert d["k"] == 5
        assert d["m"] >= 11
        assert d["n_op"] > 0
        assert d["wall_seconds"] > 0
        assert d["residency"] == "device"
        assert d["spmv_format"] in ("csr", "ell", "hyb")

    def test_bad_residency_and_format(self, device, operator):
        dcsr, _ = operator
        with pytest.raises(ValueError):
            hybrid_eigensolver(device, dcsr, k=3, residency="gpu")
        with pytest.raises(ValueError):
            hybrid_eigensolver(device, dcsr, k=3, spmv_format="bsr")


class TestDeviceResidency:
    """The GPU-resident loop: same bits, a fraction of the bus traffic."""

    def test_bit_identical_to_host_residency(self, device, operator):
        from repro.cuda.device import Device

        dcsr, W = operator
        theta_d, U_d, _ = hybrid_eigensolver(
            device, dcsr, k=6, tol=1e-10, seed=0, residency="device"
        )
        other = Device()
        dcoo = coo_to_device(other, W.sorted_by_row())
        dcsr_h = device_sym_normalize(dcoo)
        theta_h, U_h, _ = hybrid_eigensolver(
            other, dcsr_h, k=6, tol=1e-10, seed=0, residency="host"
        )
        assert np.array_equal(theta_d, theta_h)
        assert np.array_equal(U_d, U_h)

    def test_roundtrips_elided(self, device, operator):
        dcsr, _ = operator
        _, _, stats = hybrid_eigensolver(device, dcsr, k=4, tol=1e-8, seed=0)
        n = dcsr.shape[0]
        assert stats.transfers_elided == 2 * stats.n_op
        assert stats.bytes_elided == stats.n_op * 2 * n * 8
        # the per-step vector never crosses: what does cross is the seed,
        # restart Q uploads, and the final Ritz block — far below the
        # ship-everything baseline
        assert stats.bytes_h2d + stats.bytes_d2h < stats.bytes_elided

    def test_communication_time_drops(self, device, operator):
        from repro.cuda.device import Device

        dcsr, W = operator
        hybrid_eigensolver(device, dcsr, k=6, tol=1e-10, seed=0,
                           residency="device")
        comm_device = device.timeline.communication_time(tag="eigensolver")

        other = Device()
        dcoo = coo_to_device(other, W.sorted_by_row())
        dcsr_h = device_sym_normalize(dcoo)
        hybrid_eigensolver(other, dcsr_h, k=6, tol=1e-10, seed=0,
                           residency="host")
        comm_host = other.timeline.communication_time(tag="eigensolver")
        assert comm_device < comm_host / 2

    def test_restart_q_upload_overlaps_host_math(self, device, operator):
        dcsr, _ = operator
        # k small + m tight forces restarts, exercising the copy engine
        _, _, stats = hybrid_eigensolver(
            device, dcsr, k=2, m=6, tol=1e-12, seed=0
        )
        assert stats.n_restarts > 0
        assert stats.transfer_overlap_s > 0.0

    def test_format_decision_recorded(self, device, operator):
        dcsr, _ = operator
        _, _, stats = hybrid_eigensolver(device, dcsr, k=4, tol=1e-8, seed=0)
        d = stats.format_decision
        assert d is not None
        assert d["format"] == stats.spmv_format
        assert set(d["predicted_spmv_s"]) == {"csr", "ell", "hyb"}
        assert d["row_mean"] > 0

    def test_forced_formats_identical_results(self, device, operator):
        from repro.cuda.device import Device

        dcsr, W = operator
        results = {}
        for fmt in ("csr", "ell", "hyb"):
            dev = Device()
            dcoo = coo_to_device(dev, W.sorted_by_row())
            op = device_sym_normalize(dcoo)
            theta, U, stats = hybrid_eigensolver(
                dev, op, k=5, tol=1e-10, seed=0, spmv_format=fmt
            )
            assert stats.spmv_format == fmt
            results[fmt] = (theta, U)
        theta_ref, U_ref = results["csr"]
        for fmt in ("ell", "hyb"):
            assert np.array_equal(results[fmt][0], theta_ref)
            assert np.array_equal(results[fmt][1], U_ref)


class TestMultiDeviceEigensolver:
    """Row-partitioned Lanczos: identical spectra, honest halo accounting."""

    def _solve(self, W, p, k=5):
        from repro.cuda.device import Device

        dev = Device()
        dcoo = coo_to_device(dev, W.sorted_by_row())
        op = device_sym_normalize(dcoo)
        theta, U, stats = hybrid_eigensolver(
            dev, op, k=k, tol=1e-10, seed=0, n_devices=p
        )
        return dev, theta, U, stats

    @pytest.mark.parametrize("p", [2, 4])
    def test_bit_identical_spectra(self, sbm_graph, p):
        W, _ = sbm_graph
        _, theta1, U1, _ = self._solve(W, 1)
        _, theta_p, U_p, stats = self._solve(W, p)
        assert theta_p.tobytes() == theta1.tobytes()
        assert U_p.tobytes() == U1.tobytes()
        assert stats.converged

    def test_partition_evidence_recorded(self, sbm_graph):
        W, _ = sbm_graph
        _, _, _, stats = self._solve(W, 2)
        assert stats.n_devices == 2
        part = stats.partition
        assert part is not None
        assert len(part["bounds"]) == 3
        assert len(part["halo_counts"]) == 2
        assert part["step_halo_bytes"] == sum(part["halo_counts"]) * 8
        assert part["n_matvec"] == stats.n_op
        d = stats.as_dict()
        assert d["n_devices"] == 2
        assert d["partition"]["shard_upload_bytes"] > 0

    def test_p2p_ledger_matches_partition_exactly(self, sbm_graph):
        """TransferLedger equation: every peer byte is either the one-time
        shard distribution or a per-matvec halo exchange."""
        W, _ = sbm_graph
        _, _, _, stats = self._solve(W, 2)
        part = stats.partition
        expected = (
            part["shard_upload_bytes"]
            + part["n_matvec"] * part["step_halo_bytes"]
        )
        assert stats.bytes_p2p == expected
        assert stats.n_p2p > 0

    def test_single_device_has_no_p2p(self, device, operator):
        dcsr, _ = operator
        _, _, stats = hybrid_eigensolver(device, dcsr, k=4, tol=1e-8, seed=0)
        assert stats.n_devices == 1
        assert stats.bytes_p2p == 0
        assert stats.partition is None

    def test_halo_copies_on_copy_streams(self, sbm_graph):
        W, _ = sbm_graph
        dev, _, _, _ = self._solve(W, 2)
        p2p = [e for e in dev.timeline if e.category == "p2p"]
        assert p2p
        assert all("memcpyPeerAsync" in e.name for e in p2p)
        assert all(e.tag == "eigensolver" for e in p2p)

    def test_validation(self, device, operator):
        dcsr, _ = operator
        with pytest.raises(ValueError):
            hybrid_eigensolver(device, dcsr, k=4, seed=0, n_devices=0)
        with pytest.raises(ValueError):
            hybrid_eigensolver(
                device, dcsr, k=4, seed=0, n_devices=2, residency="host"
            )
        with pytest.raises(ValueError):
            hybrid_eigensolver(
                device, dcsr, k=4, seed=0, n_devices=2, spmv_format="ell"
            )
