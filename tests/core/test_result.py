"""Result record formatting."""

import pytest

from repro.core.result import StageTimings


class TestStageTimings:
    def test_totals(self):
        t = StageTimings(
            simulated={"a": 1.0, "b": 2.0}, wall={"a": 0.1, "b": 0.2}
        )
        assert t.total_simulated() == pytest.approx(3.0)
        assert t.total_wall() == pytest.approx(0.3)

    def test_format_table_includes_all_stages(self):
        t = StageTimings(simulated={"eig": 1.0}, wall={"kmeans": 0.5})
        text = t.format_table()
        assert "eig" in text and "kmeans" in text and "total" in text

    def test_empty(self):
        t = StageTimings()
        assert t.total_simulated() == 0.0
        assert "total" in t.format_table()
