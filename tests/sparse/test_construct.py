"""Sparse constructors: edge lists, diagonals, random matrices."""

import numpy as np
import pytest

from repro.errors import SparseFormatError, SparseValueError
from repro.sparse.construct import diags, from_edge_list, identity, random_sparse


class TestFromEdgeList:
    def test_symmetrizes_by_default(self):
        W = from_edge_list(np.array([[0, 1]]), n_nodes=3)
        d = W.to_dense()
        assert d[0, 1] == 1.0 and d[1, 0] == 1.0

    def test_weights_carried(self):
        W = from_edge_list(np.array([[0, 1]]), weights=np.array([2.5]), n_nodes=2)
        assert W.to_dense()[0, 1] == 2.5

    def test_self_loops_dropped(self):
        W = from_edge_list(np.array([[0, 0], [0, 1]]), n_nodes=2)
        assert W.to_dense()[0, 0] == 0.0

    def test_duplicate_edges_summed(self):
        W = from_edge_list(np.array([[0, 1], [0, 1]]), n_nodes=2)
        assert W.to_dense()[0, 1] == 2.0

    def test_directed_mode(self):
        W = from_edge_list(np.array([[0, 1]]), n_nodes=2, symmetrize=False)
        d = W.to_dense()
        assert d[0, 1] == 1.0 and d[1, 0] == 0.0

    def test_n_nodes_inferred(self):
        W = from_edge_list(np.array([[0, 4]]))
        assert W.shape == (5, 5)

    def test_bad_shape(self):
        with pytest.raises(SparseValueError):
            from_edge_list(np.array([0, 1, 2]))

    def test_weight_length_mismatch(self):
        with pytest.raises(SparseValueError):
            from_edge_list(np.array([[0, 1]]), weights=np.ones(2))


class TestDiagsIdentity:
    def test_diags(self, rng):
        d = rng.random(5)
        D = diags(d)
        assert np.allclose(D.to_dense(), np.diag(d))

    def test_identity(self):
        I = identity(4)
        assert np.array_equal(I.to_dense(), np.eye(4))

    def test_identity_negative(self):
        with pytest.raises(SparseFormatError):
            identity(-1)

    def test_diag_matvec(self, rng):
        d = rng.random(6)
        x = rng.random(6)
        assert np.allclose(diags(d).matvec(x), d * x)


class TestRandomSparse:
    def test_density_approx(self, rng):
        A = random_sparse(100, 100, 0.1, rng=rng)
        assert 0.05 < A.nnz / 10000 <= 0.15

    def test_symmetric(self, rng):
        A = random_sparse(50, 50, 0.1, rng=rng, symmetric=True)
        d = A.to_dense()
        assert np.allclose(d, d.T)

    def test_symmetric_requires_square(self, rng):
        with pytest.raises(SparseValueError):
            random_sparse(3, 4, 0.5, rng=rng, symmetric=True)

    def test_density_bounds(self, rng):
        with pytest.raises(SparseValueError):
            random_sparse(3, 3, 1.5, rng=rng)

    def test_zero_density(self, rng):
        assert random_sparse(10, 10, 0.0, rng=rng).nnz == 0

    def test_indices_in_range(self, rng):
        A = random_sparse(20, 30, 0.2, rng=rng)
        assert A.row.max() < 20 and A.col.max() < 30

    def test_reproducible_with_seed(self):
        A = random_sparse(20, 20, 0.2, rng=np.random.default_rng(5))
        B = random_sparse(20, 20, 0.2, rng=np.random.default_rng(5))
        assert np.array_equal(A.to_dense(), B.to_dense())
