"""Format-generic operations."""

import numpy as np
import pytest

from repro.errors import SparseValueError
from repro.sparse.construct import random_sparse
from repro.sparse.ops import row_sums, scale_cols, scale_rows, spmm


@pytest.fixture
def A(rng):
    return random_sparse(12, 9, 0.3, rng=rng)


class TestGenericOps:
    def test_row_sums_all_formats(self, A):
        ref = A.to_dense().sum(axis=1)
        assert np.allclose(row_sums(A), ref)
        assert np.allclose(row_sums(A.to_csr()), ref)
        assert np.allclose(row_sums(A.to_csc()), ref)

    def test_scale_rows_all_formats(self, A, rng):
        s = rng.random(12)
        ref = np.diag(s) @ A.to_dense()
        for M in (A, A.to_csr(), A.to_csc()):
            out = scale_rows(M, s)
            assert type(out) is type(M)
            assert np.allclose(out.to_dense(), ref)

    def test_scale_cols_all_formats(self, A, rng):
        s = rng.random(9)
        ref = A.to_dense() @ np.diag(s)
        for M in (A, A.to_csr(), A.to_csc()):
            assert np.allclose(scale_cols(M, s).to_dense(), ref)

    def test_scale_wrong_length(self, A):
        with pytest.raises(SparseValueError):
            scale_cols(A, np.ones(5))

    def test_spmm_vector_fallback(self, A, rng):
        x = rng.random(9)
        assert np.allclose(spmm(A, x), A.to_dense() @ x)

    def test_spmm_matrix_all_formats(self, A, rng):
        X = rng.random((9, 4))
        ref = A.to_dense() @ X
        for M in (A, A.to_csr(), A.to_csc()):
            assert np.allclose(spmm(M, X), ref)

    def test_unsupported_type_rejected(self):
        with pytest.raises(SparseValueError):
            row_sums(np.zeros((3, 3)))  # type: ignore[arg-type]
