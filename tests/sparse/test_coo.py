"""COO format semantics."""

import numpy as np
import pytest

from repro.errors import SparseFormatError, SparseValueError
from repro.sparse.coo import COOMatrix


def simple_coo():
    # [[1, 2, 0],
    #  [0, 0, 3],
    #  [4, 0, 0]]
    return COOMatrix([0, 0, 1, 2], [0, 1, 2, 0], [1.0, 2.0, 3.0, 4.0], (3, 3))


class TestConstruction:
    def test_basic(self):
        A = simple_coo()
        assert A.nnz == 4
        assert A.shape == (3, 3)

    def test_length_mismatch(self):
        with pytest.raises(SparseFormatError):
            COOMatrix([0, 1], [0], [1.0, 2.0], (2, 2))

    def test_row_out_of_range(self):
        with pytest.raises(SparseFormatError):
            COOMatrix([5], [0], [1.0], (3, 3))

    def test_col_out_of_range(self):
        with pytest.raises(SparseFormatError):
            COOMatrix([0], [-1], [1.0], (3, 3))

    def test_bad_shape(self):
        with pytest.raises(SparseFormatError):
            COOMatrix([], [], [], (3, -1))

    def test_check_skippable(self):
        # trusted internal path can bypass the O(nnz) scan
        A = COOMatrix([9], [9], [1.0], (3, 3), check=False)
        assert A.nnz == 1


class TestOps:
    def test_to_dense(self):
        d = simple_coo().to_dense()
        assert np.array_equal(
            d, [[1, 2, 0], [0, 0, 3], [4, 0, 0]]
        )

    def test_duplicates_sum_in_dense(self):
        A = COOMatrix([0, 0], [0, 0], [1.0, 2.0], (1, 1))
        assert A.to_dense()[0, 0] == 3.0

    def test_matvec(self):
        A = simple_coo()
        x = np.array([1.0, 2.0, 3.0])
        assert np.allclose(A.matvec(x), A.to_dense() @ x)

    def test_matvec_wrong_length(self):
        with pytest.raises(SparseValueError):
            simple_coo().matvec(np.zeros(4))

    def test_matvec_out_param(self):
        A = simple_coo()
        out = np.empty(3)
        got = A.matvec(np.ones(3), out=out)
        assert got is out

    def test_transpose_swaps(self):
        A = simple_coo()
        assert np.array_equal(A.T.to_dense(), A.to_dense().T)

    def test_row_sums(self):
        assert np.allclose(simple_coo().row_sums(), [3.0, 3.0, 4.0])

    def test_scale_rows(self):
        A = simple_coo()
        s = np.array([2.0, 3.0, 4.0])
        assert np.allclose(A.scale_rows(s).to_dense(), np.diag(s) @ A.to_dense())

    def test_scale_rows_bad_length(self):
        with pytest.raises(SparseValueError):
            simple_coo().scale_rows(np.ones(2))

    def test_diagonal(self):
        A = COOMatrix([0, 1, 1], [0, 1, 1], [5.0, 1.0, 2.0], (2, 2))
        assert np.allclose(A.diagonal(), [5.0, 3.0])

    def test_sum_duplicates(self):
        A = COOMatrix([0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0], (2, 2))
        B = A.sum_duplicates()
        assert B.nnz == 2
        assert np.array_equal(B.to_dense(), A.to_dense())

    def test_eliminate_zeros(self):
        A = COOMatrix([0, 1], [0, 1], [0.0, 2.0], (2, 2))
        B = A.eliminate_zeros()
        assert B.nnz == 1

    def test_sorted_by_row(self):
        A = COOMatrix([2, 0, 1], [0, 1, 2], [1.0, 2.0, 3.0], (3, 3))
        B = A.sorted_by_row()
        assert np.all(np.diff(B.row) >= 0)
        assert np.array_equal(A.to_dense(), B.to_dense())

    def test_copy_independent(self):
        A = simple_coo()
        B = A.copy()
        B.data[0] = 99.0
        assert A.data[0] == 1.0

    def test_repr(self):
        assert "3x3" in repr(simple_coo())


class TestConversions:
    def test_to_csr_round_trip(self):
        A = simple_coo()
        assert np.array_equal(A.to_csr().to_dense(), A.to_dense())

    def test_to_csc_round_trip(self):
        A = simple_coo()
        assert np.array_equal(A.to_csc().to_dense(), A.to_dense())

    def test_to_coo_is_self(self):
        A = simple_coo()
        assert A.to_coo() is A

    def test_empty_matrix_conversions(self):
        A = COOMatrix([], [], [], (4, 4))
        assert A.to_csr().nnz == 0
        assert A.to_csc().nnz == 0
        assert np.array_equal(A.to_dense(), np.zeros((4, 4)))

    def test_rectangular(self, rng):
        A = COOMatrix([0, 1], [4, 2], [1.0, 2.0], (2, 5))
        assert A.to_csr().shape == (2, 5)
        assert np.array_equal(A.to_csr().to_dense(), A.to_dense())
