"""BSR format: tiling, ragged padding, block matvec."""

import numpy as np
import pytest

from repro.errors import SparseFormatError, SparseValueError
from repro.sparse.bsr import BSRMatrix
from repro.sparse.construct import random_sparse


class TestFromCSR:
    def test_round_trip_exact_blocks(self, rng):
        A = random_sparse(12, 12, 0.2, rng=rng).to_csr()
        B = BSRMatrix.from_csr(A, 4)
        assert np.array_equal(B.to_dense(), A.to_dense())

    def test_round_trip_ragged(self, rng):
        # 10 is not a multiple of 4: blocks must pad without corrupting
        A = random_sparse(10, 10, 0.25, rng=rng).to_csr()
        B = BSRMatrix.from_csr(A, 4)
        assert np.array_equal(B.to_dense(), A.to_dense())

    def test_rectangular(self, rng):
        A = random_sparse(9, 13, 0.2, rng=rng).to_csr()
        B = BSRMatrix.from_csr(A, 3)
        assert B.shape == (9, 13)
        assert np.array_equal(B.to_dense(), A.to_dense())

    def test_block_size_one_is_csr_equivalent(self, rng):
        A = random_sparse(7, 7, 0.3, rng=rng).to_csr()
        B = BSRMatrix.from_csr(A, 1)
        assert B.block_size == 1
        assert np.array_equal(B.to_dense(), A.to_dense())

    def test_invalid_block_size(self, rng):
        A = random_sparse(4, 4, 0.5, rng=rng).to_csr()
        with pytest.raises(SparseValueError):
            BSRMatrix.from_csr(A, 0)

    def test_dense_blocks_merge_nonzeros(self):
        from repro.sparse.csr import CSRMatrix

        # two nonzeros in the same 2x2 tile -> one block
        A = CSRMatrix([0, 2, 2], [0, 1], [1.0, 2.0], (2, 2))
        B = BSRMatrix.from_csr(A, 2)
        assert B.n_blocks == 1


class TestValidation:
    def test_blocks_must_be_square_3d(self):
        with pytest.raises(SparseFormatError):
            BSRMatrix([0, 1], [0], np.zeros((1, 2, 3)), (2, 2))

    def test_indptr_mismatch(self):
        with pytest.raises(SparseFormatError):
            BSRMatrix([0, 1, 1], [0], np.zeros((1, 2, 2)), (2, 2))

    def test_block_col_out_of_range(self):
        with pytest.raises(SparseFormatError):
            BSRMatrix([0, 1], [5], np.zeros((1, 2, 2)), (2, 2))


class TestMatvec:
    @pytest.mark.parametrize("n,b", [(12, 4), (10, 4), (9, 3), (17, 5)])
    def test_matches_dense(self, rng, n, b):
        A = random_sparse(n, n, 0.2, rng=rng).to_csr()
        B = BSRMatrix.from_csr(A, b)
        x = rng.random(n)
        assert np.allclose(B.matvec(x), A.to_dense() @ x)

    def test_wrong_length(self, rng):
        A = random_sparse(8, 8, 0.3, rng=rng).to_csr()
        B = BSRMatrix.from_csr(A, 2)
        with pytest.raises(SparseValueError):
            B.matvec(np.zeros(9))

    def test_nnz_counts_block_storage(self, rng):
        A = random_sparse(8, 8, 0.1, rng=rng).to_csr()
        B = BSRMatrix.from_csr(A, 4)
        assert B.nnz == B.n_blocks * 16

    def test_repr(self, rng):
        A = random_sparse(8, 8, 0.2, rng=rng).to_csr()
        assert "blocks" in repr(BSRMatrix.from_csr(A, 2))
