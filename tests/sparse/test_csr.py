"""CSR format semantics — the eigensolver's hot format."""

import numpy as np
import pytest

from repro.errors import SparseFormatError, SparseValueError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def simple_csr():
    # [[1, 2, 0],
    #  [0, 0, 3],
    #  [4, 0, 0]]
    return CSRMatrix([0, 2, 3, 4], [0, 1, 2, 0], [1.0, 2.0, 3.0, 4.0], (3, 3))


class TestValidation:
    def test_indptr_wrong_length(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 1], [0], [1.0], (3, 3))

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([1, 1, 1, 1], [], [], (3, 3))

    def test_indptr_monotone(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 2, 1, 3], [0, 1, 2], [1.0, 2.0, 3.0], (3, 3))

    def test_indptr_last_equals_nnz(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 1, 1, 5], [0], [1.0], (3, 3))

    def test_column_out_of_range(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 1, 1, 1], [7], [1.0], (3, 3))

    def test_indices_data_mismatch(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix([0, 2, 2, 2], [0, 1], [1.0], (3, 3))


class TestArithmetic:
    def test_matvec(self, rng):
        A = simple_csr()
        x = rng.random(3)
        assert np.allclose(A.matvec(x), A.to_dense() @ x)

    def test_matvec_empty_rows(self):
        A = CSRMatrix([0, 0, 1, 1], [2], [5.0], (3, 3))
        y = A.matvec(np.ones(3))
        assert np.allclose(y, [0.0, 5.0, 0.0])

    def test_matvec_wrong_length(self):
        with pytest.raises(SparseValueError):
            simple_csr().matvec(np.zeros(2))

    def test_rmatvec(self, rng):
        A = simple_csr()
        x = rng.random(3)
        assert np.allclose(A.rmatvec(x), A.to_dense().T @ x)

    def test_matmat(self, rng):
        A = simple_csr()
        X = rng.random((3, 5))
        assert np.allclose(A.matmat(X), A.to_dense() @ X)

    def test_matmat_shape_check(self, rng):
        with pytest.raises(SparseValueError):
            simple_csr().matmat(rng.random((4, 2)))

    def test_row_sums(self):
        assert np.allclose(simple_csr().row_sums(), [3.0, 3.0, 4.0])

    def test_scale_rows_cols(self, rng):
        A = simple_csr()
        r = rng.random(3)
        c = rng.random(3)
        assert np.allclose(
            A.scale_rows(r).to_dense(), np.diag(r) @ A.to_dense()
        )
        assert np.allclose(
            A.scale_cols(c).to_dense(), A.to_dense() @ np.diag(c)
        )

    def test_add(self):
        A = simple_csr()
        B = simple_csr()
        assert np.allclose(A.add(B).to_dense(), 2 * A.to_dense())

    def test_add_shape_mismatch(self):
        with pytest.raises(SparseValueError):
            simple_csr().add(CSRMatrix([0, 0], [], [], (1, 1)))

    def test_scaled(self):
        assert np.allclose(
            simple_csr().scaled(-2.0).to_dense(), -2.0 * simple_csr().to_dense()
        )

    def test_diagonal(self):
        A = CSRMatrix([0, 1, 2], [0, 1], [7.0, 8.0], (2, 2))
        assert np.allclose(A.diagonal(), [7.0, 8.0])

    def test_getrow(self):
        idx, vals = simple_csr().getrow(0)
        assert idx.tolist() == [0, 1]
        assert vals.tolist() == [1.0, 2.0]

    def test_getrow_out_of_range(self):
        with pytest.raises(SparseValueError):
            simple_csr().getrow(3)


class TestConversionsStructure:
    def test_transpose(self):
        A = simple_csr()
        assert np.array_equal(A.T.to_dense(), A.to_dense().T)

    def test_to_coo_round_trip(self):
        A = simple_csr()
        assert np.array_equal(A.to_coo().to_csr().to_dense(), A.to_dense())

    def test_to_csc_round_trip(self):
        A = simple_csr()
        assert np.array_equal(A.to_csc().to_dense(), A.to_dense())

    def test_row_expansion_cached(self):
        A = simple_csr()
        r1 = A._rows()
        r2 = A._rows()
        assert r1 is r2

    def test_sort_indices(self):
        A = CSRMatrix([0, 2], [1, 0], [2.0, 1.0], (1, 2))
        B = A.sort_indices()
        assert B.indices.tolist() == [0, 1]
        assert np.array_equal(A.to_dense(), B.to_dense())

    def test_row_lengths(self):
        assert simple_csr().row_lengths().tolist() == [2, 1, 1]

    def test_rectangular_matvec(self, rng):
        coo = COOMatrix([0, 1, 1], [3, 0, 4], [1.0, 2.0, 3.0], (2, 5))
        A = coo.to_csr()
        x = rng.random(5)
        assert np.allclose(A.matvec(x), A.to_dense() @ x)
