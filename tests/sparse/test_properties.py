"""Hypothesis property tests over the sparse formats.

Strategy: generate random COO triples, then assert (a) every format
conversion round-trips through the dense representation, (b) every
format's matvec equals the dense matvec, (c) scipy agrees (scipy is the
oracle here, never a dependency of the library itself).
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse.bsr import BSRMatrix
from repro.sparse.coo import COOMatrix


@st.composite
def coo_matrices(draw):
    n = draw(st.integers(1, 25))
    m = draw(st.integers(1, 25))
    nnz = draw(st.integers(0, min(60, n * m)))
    idx = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, m - 1)),
            min_size=nnz, max_size=nnz,
        )
    )
    vals = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=nnz, max_size=nnz,
        )
    )
    rows = np.array([i for i, _ in idx], dtype=np.int64)
    cols = np.array([j for _, j in idx], dtype=np.int64)
    return COOMatrix(rows, cols, np.array(vals), (n, m))


@given(coo_matrices())
@settings(max_examples=60, deadline=None)
def test_format_round_trips_preserve_dense(A):
    d = A.to_dense()
    assert np.allclose(A.to_csr().to_dense(), d)
    assert np.allclose(A.to_csc().to_dense(), d)
    assert np.allclose(A.to_csr().to_coo().to_dense(), d)
    assert np.allclose(A.to_csc().to_csr().to_dense(), d)
    assert np.allclose(A.sum_duplicates().to_dense(), d)


@given(coo_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_all_matvecs_agree_with_dense(A, seed):
    x = np.random.default_rng(seed).standard_normal(A.shape[1])
    ref = A.to_dense() @ x
    assert np.allclose(A.matvec(x), ref)
    assert np.allclose(A.to_csr().matvec(x), ref)
    assert np.allclose(A.to_csc().matvec(x), ref)


@given(coo_matrices(), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_bsr_matvec_any_block_size(A, b):
    csr = A.to_csr()
    B = BSRMatrix.from_csr(csr, b)
    x = np.arange(A.shape[1], dtype=np.float64)
    assert np.allclose(B.matvec(x), A.to_dense() @ x)
    assert np.allclose(B.to_dense(), A.sum_duplicates().eliminate_zeros().to_dense())


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_transpose_involution(A):
    assert np.allclose(A.T.T.to_dense(), A.to_dense())
    assert np.allclose(A.to_csr().T.T.to_dense(), A.to_dense())


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_agrees_with_scipy(A):
    S = sp.coo_matrix((A.data, (A.row, A.col)), shape=A.shape)
    assert np.allclose(A.to_dense(), S.toarray())
    ours = A.to_csr()
    theirs = S.tocsr()
    theirs.sum_duplicates()
    x = np.linspace(-1, 1, A.shape[1])
    assert np.allclose(ours.matvec(x), theirs @ x)


@given(coo_matrices())
@settings(max_examples=40, deadline=None)
def test_row_sums_match_dense(A):
    assert np.allclose(A.row_sums(), A.to_dense().sum(axis=1))
    assert np.allclose(A.to_csr().row_sums(), A.to_dense().sum(axis=1))


@given(coo_matrices(), st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_rmatvec_is_transpose_matvec(A, seed):
    x = np.random.default_rng(seed).standard_normal(A.shape[0])
    ref = A.to_dense().T @ x
    assert np.allclose(A.to_csr().rmatvec(x), ref)
    assert np.allclose(A.to_csc().rmatvec(x), ref)
