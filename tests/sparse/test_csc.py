"""CSC format semantics."""

import numpy as np
import pytest

from repro.errors import SparseFormatError, SparseValueError
from repro.sparse.coo import COOMatrix
from repro.sparse.csc import CSCMatrix


def simple_csc():
    # column-compressed form of [[1, 2, 0], [0, 0, 3], [4, 0, 0]]
    return CSCMatrix([0, 2, 3, 4], [0, 2, 0, 1], [1.0, 4.0, 2.0, 3.0], (3, 3))


class TestValidation:
    def test_indptr_length(self):
        with pytest.raises(SparseFormatError):
            CSCMatrix([0, 1], [0], [1.0], (3, 3))

    def test_row_out_of_range(self):
        with pytest.raises(SparseFormatError):
            CSCMatrix([0, 1, 1, 1], [9], [1.0], (3, 3))

    def test_monotone_indptr(self):
        with pytest.raises(SparseFormatError):
            CSCMatrix([0, 2, 1, 3], [0, 1, 2], [1.0] * 3, (3, 3))


class TestOps:
    def test_dense(self):
        assert np.array_equal(
            simple_csc().to_dense(), [[1, 2, 0], [0, 0, 3], [4, 0, 0]]
        )

    def test_matvec(self, rng):
        A = simple_csc()
        x = rng.random(3)
        assert np.allclose(A.matvec(x), A.to_dense() @ x)

    def test_matvec_wrong_len(self):
        with pytest.raises(SparseValueError):
            simple_csc().matvec(np.zeros(5))

    def test_rmatvec(self, rng):
        A = simple_csc()
        x = rng.random(3)
        assert np.allclose(A.rmatvec(x), A.to_dense().T @ x)

    def test_col_sums(self):
        assert np.allclose(simple_csc().col_sums(), [5.0, 2.0, 3.0])

    def test_getcol(self):
        rows, vals = simple_csc().getcol(0)
        assert rows.tolist() == [0, 2]
        assert vals.tolist() == [1.0, 4.0]

    def test_getcol_out_of_range(self):
        with pytest.raises(SparseValueError):
            simple_csc().getcol(5)

    def test_transpose(self):
        A = simple_csc()
        assert np.array_equal(A.T.to_dense(), A.to_dense().T)

    def test_round_trips(self):
        A = simple_csc()
        assert np.array_equal(A.to_coo().to_dense(), A.to_dense())
        assert np.array_equal(A.to_csr().to_dense(), A.to_dense())
        assert np.array_equal(A.to_csr().to_csc().to_dense(), A.to_dense())

    def test_copy_independent(self):
        A = simple_csc()
        B = A.copy()
        B.data[0] = -1.0
        assert A.data[0] == 1.0

    def test_rectangular(self, rng):
        coo = COOMatrix([0, 3], [1, 0], [2.0, 5.0], (4, 2))
        A = coo.to_csc()
        assert A.shape == (4, 2)
        x = rng.random(2)
        assert np.allclose(A.matvec(x), A.to_dense() @ x)
