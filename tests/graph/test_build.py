"""Algorithm 1: device builder vs host reference."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.errors import GraphConstructionError
from repro.graph.build import (
    build_similarity_device,
    build_similarity_graph,
    threshold_graph,
)
from repro.graph.neighbors import epsilon_neighbors
from repro.graph.similarity import pairwise_similarity


@pytest.fixture
def workload(rng):
    X = rng.standard_normal((60, 20))
    pos = rng.random((60, 3)) * 3.0
    edges = epsilon_neighbors(pos, 0.9)
    return X, edges


class TestHostBuilder:
    def test_symmetric_output(self, workload):
        X, edges = workload
        W = build_similarity_graph(X, edges)
        d = W.to_dense()
        assert np.allclose(d, d.T)

    def test_values_match_measure(self, workload):
        X, edges = workload
        W = build_similarity_graph(X, edges, drop_nonpositive=False)
        sims = pairwise_similarity(X, edges, "crosscorr")
        d = W.to_dense()
        for (i, j), s in zip(edges, sims):
            assert d[i, j] == pytest.approx(s)

    def test_nonpositive_dropped_by_default(self, workload):
        X, edges = workload
        W = build_similarity_graph(X, edges)
        assert np.all(W.data > 0)

    def test_expdecay_always_positive(self, workload):
        X, edges = workload
        W = build_similarity_graph(X, edges, measure="expdecay", sigma=2.0)
        assert W.nnz == 2 * edges.shape[0]
        assert np.all(W.data > 0)


class TestDeviceBuilder:
    @pytest.mark.parametrize("measure", ["crosscorr", "cosine", "expdecay"])
    def test_matches_host(self, device, workload, measure):
        X, edges = workload
        host = build_similarity_graph(X, edges, measure=measure, sigma=1.5)
        dcoo = build_similarity_device(device, X, edges, measure=measure, sigma=1.5)
        got = dcoo.to_host().sum_duplicates()
        assert np.allclose(got.to_dense(), host.to_dense())

    def test_output_sorted_for_coo2csr(self, device, workload):
        X, edges = workload
        dcoo = build_similarity_device(device, X, edges)
        keys = dcoo.row.data * dcoo.shape[1] + dcoo.col.data
        assert np.all(np.diff(keys) >= 0)

    def test_events_tagged_similarity(self, device, workload):
        X, edges = workload
        build_similarity_device(device, X, edges)
        assert device.timeline.total(tag="similarity") > 0
        assert device.timeline.total(tag="") == 0

    def test_charges_input_transfers(self, device, workload):
        X, edges = workload
        h2d0 = device.timeline.count("h2d")
        build_similarity_device(device, X, edges)
        assert device.timeline.count("h2d") >= h2d0 + 3  # X + src + dst

    def test_bad_edges_shape(self, device, workload):
        X, _ = workload
        with pytest.raises(GraphConstructionError):
            build_similarity_device(device, X, np.zeros((4, 3), dtype=np.int64))

    def test_edge_out_of_range(self, device, workload):
        X, _ = workload
        with pytest.raises(GraphConstructionError):
            build_similarity_device(device, X, np.array([[0, 600]]))

    def test_unknown_measure(self, device, workload):
        X, edges = workload
        with pytest.raises(GraphConstructionError):
            build_similarity_device(device, X, edges, measure="jaccard")

    @pytest.mark.parametrize("chunk", [1, 3, 17, 10_000])
    def test_edge_chunking_invariant(self, workload, chunk):
        """Chunked uploads produce the same matrix as the monolithic path."""
        X, edges = workload
        full = build_similarity_device(Device(), X, edges)
        chunked = build_similarity_device(Device(), X, edges, edge_chunk=chunk)
        assert np.array_equal(full.row.data, chunked.row.data)
        assert np.allclose(full.val.data, chunked.val.data)

    def test_auto_chunking_on_tiny_device(self, workload):
        """A device too small for three whole edge arrays still builds the
        graph by chunking automatically."""
        from dataclasses import replace

        from repro.hw.spec import K20C

        X, edges = workload
        # room for X + the final symmetric COO + slack, but not 4x the
        # staged edge arrays
        out_bytes = 2 * edges.shape[0] * 24
        cap = X.nbytes + out_bytes + edges.shape[0] * 30
        dev = Device(spec=replace(K20C, memory_bytes=int(cap)))
        dcoo = build_similarity_device(dev, X, edges)
        ref = build_similarity_device(Device(), X, edges)
        assert np.allclose(dcoo.val.data, ref.val.data)

    def test_bad_edge_chunk(self, device, workload):
        X, edges = workload
        with pytest.raises(GraphConstructionError):
            build_similarity_device(device, X, edges, edge_chunk=0)

    def test_dti_paper_shape_time(self, workload):
        """Sanity on the simulated magnitude: a 4M-edge, d=90 build should
        land within ~3x of the paper's 0.033 s."""
        device = Device()
        # charge the cost model directly at paper scale (no real 4M build)
        from repro.hw.costmodel import GPUCostModel, TransferCostModel
        from repro.hw.spec import K20C, PCIE_X16_GEN2

        gpu = GPUCostModel(K20C)
        pcie = TransferCostModel(PCIE_X16_GEN2)
        n, d, nnz = 142541, 90, 3992290
        t = pcie.h2d_time(n * d * 8) + pcie.h2d_time(nnz * 16)
        t += gpu.kernel_time(n * d, n * d * 8)
        t += gpu.kernel_time(3 * n * d, 2 * n * d * 8)
        t += gpu.kernel_time(2 * nnz * d, 2 * nnz * d * 8)
        assert 0.01 < t < 0.5


class TestThresholdGraph:
    def test_respects_lambda(self, rng):
        X = rng.standard_normal((25, 8))
        W = threshold_graph(X, lam=0.3)
        assert np.all(W.data > 0.3)

    def test_symmetric(self, rng):
        X = rng.standard_normal((20, 5))
        d = threshold_graph(X, lam=0.0).to_dense()
        assert np.allclose(d, d.T)

    def test_high_lambda_empty(self, rng):
        X = rng.standard_normal((15, 5))
        assert threshold_graph(X, lam=0.9999).nnz == 0

    def test_blocking_invariant(self, rng):
        X = rng.standard_normal((30, 6))
        a = threshold_graph(X, 0.2, block=7).to_dense()
        b = threshold_graph(X, 0.2, block=1024).to_dense()
        assert np.allclose(a, b)
