"""Connected components and isolated-node surgery."""

import numpy as np
import pytest

from repro.graph.components import connected_components, remove_isolated
from repro.sparse.construct import from_edge_list


class TestConnectedComponents:
    def test_single_chain(self):
        W = from_edge_list(np.array([[0, 1], [1, 2], [2, 3]]), n_nodes=4)
        nc, labels = connected_components(W)
        assert nc == 1
        assert len(set(labels.tolist())) == 1

    def test_two_components_plus_isolated(self):
        W = from_edge_list(np.array([[0, 1], [2, 3]]), n_nodes=5)
        nc, labels = connected_components(W)
        assert nc == 3
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2] != labels[4]

    def test_empty_graph_each_node_own_component(self):
        W = from_edge_list(np.empty((0, 2), dtype=np.int64), n_nodes=4)
        nc, labels = connected_components(W)
        assert nc == 4

    def test_matches_networkx(self, rng):
        import networkx as nx

        edges = rng.integers(0, 40, size=(30, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        W = from_edge_list(edges, n_nodes=40)
        nc, labels = connected_components(W)
        G = nx.Graph()
        G.add_nodes_from(range(40))
        G.add_edges_from(edges.tolist())
        assert nc == nx.number_connected_components(G)
        # same partition: nodes sharing a nx component share a label
        for comp in nx.connected_components(G):
            comp = sorted(comp)
            assert len(set(labels[comp].tolist())) == 1

    def test_count_of_zero_laplacian_eigenvalues(self, rng):
        """#components == multiplicity of eigenvalue 0 of L (spectral
        graph theory sanity, ties components to the Laplacian)."""
        from repro.graph.laplacian import laplacian

        W = from_edge_list(np.array([[0, 1], [1, 2], [3, 4]]), n_nodes=6)
        nc, _ = connected_components(W)
        w = np.linalg.eigvalsh(laplacian(W).to_dense())
        assert np.count_nonzero(np.abs(w) < 1e-9) == nc


class TestRemoveIsolated:
    def test_noop_when_all_connected(self):
        W = from_edge_list(np.array([[0, 1], [1, 2]]), n_nodes=3)
        sub, kept = remove_isolated(W)
        assert kept.tolist() == [0, 1, 2]
        assert np.array_equal(sub.to_dense(), W.to_dense())

    def test_drops_and_remaps(self):
        W = from_edge_list(np.array([[0, 2], [2, 4]]), n_nodes=5)
        sub, kept = remove_isolated(W)
        assert kept.tolist() == [0, 2, 4]
        assert sub.shape == (3, 3)
        d = sub.to_dense()
        assert d[0, 1] == 1.0 and d[1, 2] == 1.0

    def test_all_isolated(self):
        W = from_edge_list(np.empty((0, 2), dtype=np.int64), n_nodes=3)
        sub, kept = remove_isolated(W)
        assert kept.size == 0
        assert sub.shape == (0, 0)

    def test_weights_preserved(self):
        W = from_edge_list(
            np.array([[1, 3]]), weights=np.array([2.5]), n_nodes=5
        )
        sub, kept = remove_isolated(W)
        assert sub.to_dense()[0, 1] == 2.5
