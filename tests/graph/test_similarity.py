"""Similarity measures (Eqs. 6-8): reference semantics and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphConstructionError
from repro.graph.similarity import (
    MEASURES,
    cosine_similarity,
    cross_correlation,
    exp_decay,
    pairwise_similarity,
)


@pytest.fixture
def X(rng):
    return rng.standard_normal((30, 12))


def all_pairs(n):
    i, j = np.triu_indices(n, k=1)
    return np.column_stack([i, j])


class TestCosine:
    def test_self_similarity_is_one(self, X):
        pairs = np.column_stack([np.arange(30), np.arange(30)])
        assert np.allclose(cosine_similarity(X, pairs), 1.0)

    def test_scale_invariant(self, X):
        pairs = all_pairs(30)
        s1 = cosine_similarity(X, pairs)
        s2 = cosine_similarity(X * 7.5, pairs)
        assert np.allclose(s1, s2)

    def test_range(self, X):
        s = cosine_similarity(X, all_pairs(30))
        assert np.all(s <= 1.0 + 1e-12) and np.all(s >= -1.0 - 1e-12)

    def test_orthogonal_vectors(self):
        X = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cosine_similarity(X, np.array([[0, 1]]))[0] == pytest.approx(0.0)

    def test_zero_row_gets_zero(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert cosine_similarity(X, np.array([[0, 1]]))[0] == 0.0


class TestCrossCorrelation:
    def test_matches_numpy_corrcoef(self, X):
        pairs = all_pairs(10)
        s = cross_correlation(X[:10], pairs)
        for (i, j), v in zip(pairs, s):
            assert v == pytest.approx(np.corrcoef(X[i], X[j])[0, 1], abs=1e-12)

    def test_shift_invariant(self, X):
        pairs = all_pairs(30)
        assert np.allclose(
            cross_correlation(X, pairs), cross_correlation(X + 100.0, pairs)
        )

    def test_constant_row_gets_zero(self):
        X = np.array([[2.0, 2.0, 2.0], [1.0, 2.0, 3.0]])
        assert cross_correlation(X, np.array([[0, 1]]))[0] == 0.0

    def test_anticorrelated(self):
        X = np.array([[1.0, 2.0, 3.0], [3.0, 2.0, 1.0]])
        assert cross_correlation(X, np.array([[0, 1]]))[0] == pytest.approx(-1.0)


class TestExpDecay:
    def test_identical_points_similarity_one(self, X):
        pairs = np.column_stack([np.arange(30), np.arange(30)])
        assert np.allclose(exp_decay(X, pairs), 1.0)

    def test_monotone_in_distance(self):
        X = np.array([[0.0], [1.0], [5.0]])
        s = exp_decay(X, np.array([[0, 1], [0, 2]]), sigma=1.0)
        assert s[0] > s[1]

    def test_sigma_controls_width(self):
        X = np.array([[0.0], [2.0]])
        narrow = exp_decay(X, np.array([[0, 1]]), sigma=0.5)[0]
        wide = exp_decay(X, np.array([[0, 1]]), sigma=5.0)[0]
        assert wide > narrow

    def test_sigma_positive(self, X):
        with pytest.raises(GraphConstructionError):
            exp_decay(X, all_pairs(3), sigma=0.0)

    def test_known_value(self):
        X = np.array([[0.0], [1.0]])
        assert exp_decay(X, np.array([[0, 1]]), sigma=1.0)[0] == pytest.approx(
            np.exp(-0.5)
        )


class TestDispatch:
    def test_all_registered(self):
        assert set(MEASURES) == {"cosine", "crosscorr", "expdecay"}

    def test_dispatch(self, X):
        pairs = all_pairs(5)
        assert np.allclose(
            pairwise_similarity(X[:5], pairs, "cosine"),
            cosine_similarity(X[:5], pairs),
        )

    def test_unknown_measure(self, X):
        with pytest.raises(GraphConstructionError, match="unknown measure"):
            pairwise_similarity(X, all_pairs(3), "hamming")

    def test_bad_pairs_shape(self, X):
        with pytest.raises(GraphConstructionError):
            cosine_similarity(X, np.zeros((3, 3), dtype=np.int64))

    def test_pair_index_out_of_range(self, X):
        with pytest.raises(GraphConstructionError):
            cosine_similarity(X, np.array([[0, 99]]))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_symmetry_property(self, seed):
        r = np.random.default_rng(seed)
        X = r.standard_normal((8, 5))
        pairs = np.array([[1, 4]])
        rev = np.array([[4, 1]])
        for name in MEASURES:
            assert pairwise_similarity(X, pairs, name)[0] == pytest.approx(
                pairwise_similarity(X, rev, name)[0]
            )
