"""Laplacian operators: host identities and the Algorithm 2 device path."""

import numpy as np
import pytest

from repro.cusparse.matrices import coo_to_device
from repro.errors import GraphConstructionError
from repro.graph.laplacian import (
    degrees,
    device_rw_normalize,
    device_sym_normalize,
    laplacian,
    rw_normalized_adjacency,
    sym_normalized_adjacency,
)
from repro.sparse.construct import from_edge_list, random_sparse


@pytest.fixture
def W(rng):
    # connected-ish random symmetric graph with no isolated nodes
    while True:
        W = random_sparse(25, 25, 0.3, rng=rng, symmetric=True)
        if np.all(W.row_sums() > 0):
            return W


class TestHostLaplacians:
    def test_degrees(self, W):
        assert np.allclose(degrees(W), W.to_dense().sum(axis=1))

    def test_rw_rows_sum_to_one(self, W):
        P = rw_normalized_adjacency(W)
        assert np.allclose(P.row_sums(), 1.0)

    def test_rw_matches_dense_formula(self, W):
        P = rw_normalized_adjacency(W)
        D = np.diag(1.0 / W.to_dense().sum(axis=1))
        assert np.allclose(P.to_dense(), D @ W.to_dense())

    def test_sym_matches_dense_formula(self, W):
        S = sym_normalized_adjacency(W)
        d = W.to_dense().sum(axis=1)
        Dh = np.diag(1.0 / np.sqrt(d))
        assert np.allclose(S.to_dense(), Dh @ W.to_dense() @ Dh)

    def test_sym_is_symmetric(self, W):
        S = sym_normalized_adjacency(W).to_dense()
        assert np.allclose(S, S.T)

    def test_sym_and_rw_share_spectrum(self, W):
        ws = np.linalg.eigvalsh(sym_normalized_adjacency(W).to_dense())
        wr = np.linalg.eigvals(rw_normalized_adjacency(W).to_dense())
        assert np.allclose(np.sort(ws), np.sort(wr.real), atol=1e-8)

    def test_unnormalized_laplacian(self, W):
        L = laplacian(W).to_dense()
        d = W.to_dense().sum(axis=1)
        assert np.allclose(L, np.diag(d) - W.to_dense())
        # PSD with a zero eigenvalue per component
        w = np.linalg.eigvalsh(L)
        assert w[0] > -1e-10

    def test_normalized_laplacian_eigenvalue_relation(self, W):
        # eigenvalues of L_n = I - D^-1 W are 1 - eig(D^-1 W)
        Ln = laplacian(W, normalized=True).to_dense()
        P = rw_normalized_adjacency(W).to_dense()
        assert np.allclose(
            np.sort(np.linalg.eigvals(Ln).real),
            np.sort(1.0 - np.linalg.eigvals(P).real),
            atol=1e-8,
        )

    def test_isolated_nodes_rejected(self):
        W = from_edge_list(np.array([[0, 1]]), n_nodes=3)
        with pytest.raises(GraphConstructionError, match="isolated"):
            rw_normalized_adjacency(W)
        with pytest.raises(GraphConstructionError):
            sym_normalized_adjacency(W)

    def test_isolated_allowed_when_requested(self):
        W = from_edge_list(np.array([[0, 1]]), n_nodes=3)
        P = rw_normalized_adjacency(W, allow_isolated=True)
        assert P.shape == (3, 3)

    def test_negative_weights_rejected(self):
        from repro.sparse.coo import COOMatrix

        W = COOMatrix([0, 1], [1, 0], [-1.0, -1.0], (2, 2))
        with pytest.raises(GraphConstructionError, match="non-negative"):
            rw_normalized_adjacency(W)


class TestDevicePath:
    def test_rw_matches_host(self, device, W):
        dcoo = coo_to_device(device, W.sorted_by_row())
        dP = device_rw_normalize(dcoo)
        assert np.allclose(
            dP.to_host().to_dense(), rw_normalized_adjacency(W).to_dense()
        )

    def test_sym_matches_host(self, device, W):
        dcoo = coo_to_device(device, W.sorted_by_row())
        dS = device_sym_normalize(dcoo)
        assert np.allclose(
            dS.to_host().to_dense(), sym_normalized_adjacency(W).to_dense()
        )

    def test_events_tagged_laplacian(self, device, W):
        dcoo = coo_to_device(device, W.sorted_by_row())
        device_rw_normalize(dcoo)
        assert device.timeline.total(tag="laplacian") > 0

    def test_isolated_rejected_on_device(self, device):
        W = from_edge_list(np.array([[0, 1]]), n_nodes=3)
        dcoo = coo_to_device(device, W.sorted_by_row())
        with pytest.raises(GraphConstructionError):
            device_rw_normalize(dcoo)
