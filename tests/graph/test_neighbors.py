"""Neighborhood enumeration: grid index vs brute force, kNN semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphConstructionError
from repro.graph.neighbors import (
    epsilon_neighbors,
    epsilon_neighbors_grid,
    knn_neighbors,
)


def pair_set(pairs):
    return set(map(tuple, pairs.tolist()))


class TestEpsilonBrute:
    def test_known_line(self):
        P = np.array([[0.0], [1.0], [2.5]])
        pairs = epsilon_neighbors(P, 1.5)
        assert pair_set(pairs) == {(0, 1), (1, 2)}

    def test_pairs_are_i_less_j(self, rng):
        P = rng.random((50, 3))
        pairs = epsilon_neighbors(P, 0.4)
        assert np.all(pairs[:, 0] < pairs[:, 1])

    def test_blocking_invariant(self, rng):
        P = rng.random((70, 4))
        a = epsilon_neighbors(P, 0.5, block=7)
        b = epsilon_neighbors(P, 0.5, block=1024)
        assert pair_set(a) == pair_set(b)

    def test_boundary_inclusive(self):
        P = np.array([[0.0], [1.0]])
        assert epsilon_neighbors(P, 1.0).shape[0] == 1
        assert epsilon_neighbors(P, 1.0, include_equal=False).shape[0] == 0

    def test_eps_zero_no_self_pairs(self, rng):
        P = rng.random((10, 2))
        assert epsilon_neighbors(P, 0.0).shape[0] == 0

    def test_negative_eps(self, rng):
        with pytest.raises(GraphConstructionError):
            epsilon_neighbors(rng.random((4, 2)), -1.0)

    def test_1d_input_rejected(self):
        with pytest.raises(GraphConstructionError):
            epsilon_neighbors(np.zeros(5), 1.0)


class TestEpsilonGrid:
    @given(st.integers(0, 2**31 - 1), st.integers(10, 120))
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, seed, n):
        r = np.random.default_rng(seed)
        P = r.random((n, 3)) * 5.0
        eps = float(r.uniform(0.3, 1.2))
        assert pair_set(epsilon_neighbors(P, eps)) == pair_set(
            epsilon_neighbors_grid(P, eps)
        )

    def test_2d_points(self, rng):
        P = rng.random((80, 2)) * 4.0
        assert pair_set(epsilon_neighbors(P, 0.7)) == pair_set(
            epsilon_neighbors_grid(P, 0.7)
        )

    def test_high_dim_rejected(self, rng):
        with pytest.raises(GraphConstructionError, match="low dimension"):
            epsilon_neighbors_grid(rng.random((10, 8)), 1.0)

    def test_eps_zero_rejected(self, rng):
        with pytest.raises(GraphConstructionError):
            epsilon_neighbors_grid(rng.random((5, 3)), 0.0)

    def test_empty_input(self):
        assert epsilon_neighbors_grid(np.zeros((0, 3)), 1.0).shape == (0, 2)

    def test_voxel_grid_4mm(self):
        # the DTI setting: 2 mm voxels, 4 mm radius -> each interior voxel
        # touches the 32 lattice neighbors within distance 2 (in voxels)
        g = np.stack(np.meshgrid(*([np.arange(5)] * 3), indexing="ij"), -1)
        P = g.reshape(-1, 3) * 2.0
        pairs = epsilon_neighbors_grid(P, 4.0)
        counts = np.bincount(pairs.ravel(), minlength=125)
        center = 2 * 25 + 2 * 5 + 2
        assert counts[center] == 32


class TestKNN:
    def test_each_node_has_at_least_k_edges_total(self, rng):
        X = rng.random((40, 3))
        pairs = knn_neighbors(X, 3)
        deg = np.bincount(pairs.ravel(), minlength=40)
        assert np.all(deg >= 3)

    def test_mutual_definition_includes_either_direction(self):
        # an outlier is in nobody's top-k but still keeps its own edges
        X = np.concatenate([np.zeros((5, 1)) + np.arange(5)[:, None] * 0.1,
                            [[100.0]]])
        pairs = knn_neighbors(X, 2)
        deg = np.bincount(pairs.ravel(), minlength=6)
        assert deg[5] >= 2

    def test_no_self_loops_no_duplicates(self, rng):
        X = rng.random((30, 4))
        pairs = knn_neighbors(X, 4)
        assert np.all(pairs[:, 0] < pairs[:, 1])
        assert len(pair_set(pairs)) == pairs.shape[0]

    def test_k_bounds(self, rng):
        X = rng.random((10, 2))
        with pytest.raises(GraphConstructionError):
            knn_neighbors(X, 0)
        with pytest.raises(GraphConstructionError):
            knn_neighbors(X, 10)

    def test_cosine_metric(self, rng):
        X = rng.standard_normal((25, 6))
        pairs = knn_neighbors(X, 3, metric="cosine")
        assert pairs.shape[0] >= 25 * 3 // 2

    def test_unknown_metric(self, rng):
        with pytest.raises(GraphConstructionError):
            knn_neighbors(rng.random((10, 2)), 2, metric="manhattan")

    def test_blocking_invariant(self, rng):
        X = rng.random((50, 3))
        a = knn_neighbors(X, 3, block=8)
        b = knn_neighbors(X, 3, block=1024)
        assert pair_set(a) == pair_set(b)
