"""Hypothesis property tests for the Laplacian operators."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.graph.laplacian import (
    degrees,
    laplacian,
    rw_normalized_adjacency,
    sym_normalized_adjacency,
)
from repro.sparse.construct import random_sparse


@st.composite
def connected_weight_graphs(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(4, 40))
    density = draw(st.floats(0.15, 0.6))
    rng = np.random.default_rng(seed)
    W = random_sparse(n, n, density, rng=rng, symmetric=True)
    assume(np.all(W.row_sums() > 0))
    return W


@given(connected_weight_graphs())
@settings(max_examples=40, deadline=None)
def test_rw_rows_sum_to_one(W):
    P = rw_normalized_adjacency(W)
    assert np.allclose(P.row_sums(), 1.0)


@given(connected_weight_graphs())
@settings(max_examples=40, deadline=None)
def test_sym_spectrum_in_unit_interval(W):
    S = sym_normalized_adjacency(W).to_dense()
    w = np.linalg.eigvalsh(S)
    assert w.max() <= 1.0 + 1e-9
    assert w.min() >= -1.0 - 1e-9


@given(connected_weight_graphs())
@settings(max_examples=40, deadline=None)
def test_laplacian_psd_with_constant_kernel(W):
    L = laplacian(W).to_dense()
    w = np.linalg.eigvalsh(L)
    assert w.min() > -1e-8
    # the constant vector is always in the kernel
    assert np.allclose(L @ np.ones(W.shape[0]), 0.0, atol=1e-9)


@given(connected_weight_graphs())
@settings(max_examples=40, deadline=None)
def test_sym_and_rw_isospectral(W):
    ws = np.linalg.eigvalsh(sym_normalized_adjacency(W).to_dense())
    wr = np.sort(np.linalg.eigvals(rw_normalized_adjacency(W).to_dense()).real)
    assert np.allclose(ws, wr, atol=1e-7)


@given(connected_weight_graphs())
@settings(max_examples=40, deadline=None)
def test_degree_scaling_linearity(W):
    d1 = degrees(W)
    from repro.sparse.coo import COOMatrix

    W2 = COOMatrix(W.row, W.col, 3.0 * W.data, W.shape, check=False)
    assert np.allclose(degrees(W2), 3.0 * d1)
    # normalization is scale invariant
    assert np.allclose(
        rw_normalized_adjacency(W).to_dense(),
        rw_normalized_adjacency(W2).to_dense(),
    )
