"""Incremental edge deltas on the fitted similarity CSR."""

import numpy as np
import pytest

from repro.errors import GraphConstructionError
from repro.graph.delta import apply_edge_delta
from repro.sparse.construct import from_edge_list


@pytest.fixture
def ring_graph():
    """A unit-weight 6-ring (every vertex degree 2)."""
    edges = np.array([[i, (i + 1) % 6] for i in range(6)], dtype=np.int64)
    return from_edge_list(edges, n_nodes=6).to_csr()


class TestAddEdges:
    def test_adds_symmetric_pair(self, ring_graph):
        W_new, drows, dcols, dvals, deg_old, deg_new = apply_edge_delta(
            ring_graph, edges_added=np.array([[0, 3]]), weights_added=2.0,
        )
        dense = W_new.to_dense()
        assert dense[0, 3] == 2.0 and dense[3, 0] == 2.0
        assert deg_new[0] == deg_old[0] + 2.0
        assert deg_new[3] == deg_old[3] + 2.0
        # delta mirror covers both directions
        assert dvals.size == 2 and np.all(dvals == 2.0)
        assert set(zip(drows.tolist(), dcols.tolist())) == {(0, 3), (3, 0)}

    def test_accumulates_on_existing_edge(self, ring_graph):
        W_new, *_ = apply_edge_delta(
            ring_graph, edges_added=np.array([[0, 1]]), weights_added=0.5,
        )
        assert W_new.to_dense()[0, 1] == 1.5

    def test_duplicate_pairs_collapse(self, ring_graph):
        W_new, _, _, dvals, _, _ = apply_edge_delta(
            ring_graph,
            edges_added=np.array([[0, 3], [0, 3]]),
            weights_added=np.array([1.0, 2.0]),
        )
        assert W_new.to_dense()[0, 3] == 3.0
        assert dvals.size == 2  # one symmetric pair after dedup

    def test_original_untouched(self, ring_graph):
        before = ring_graph.to_dense().copy()
        apply_edge_delta(
            ring_graph, edges_added=np.array([[1, 4]]), weights_added=1.0
        )
        assert np.array_equal(ring_graph.to_dense(), before)


class TestRemoveEdges:
    def test_removes_both_directions(self, ring_graph):
        W_new, _, _, _, deg_old, deg_new = apply_edge_delta(
            ring_graph, edges_removed=np.array([[2, 3]]),
        )
        dense = W_new.to_dense()
        assert dense[2, 3] == 0.0 and dense[3, 2] == 0.0
        # the zeroed entries are pruned from the sparsity structure
        assert W_new.nnz == ring_graph.nnz - 2
        assert deg_new[2] == deg_old[2] - 1.0

    def test_remove_missing_edge_raises(self, ring_graph):
        with pytest.raises(GraphConstructionError):
            apply_edge_delta(ring_graph, edges_removed=np.array([[0, 3]]))

    def test_add_and_remove_together(self, ring_graph):
        W_new, *_ = apply_edge_delta(
            ring_graph,
            edges_added=np.array([[0, 3]]),
            weights_added=4.0,
            edges_removed=np.array([[0, 1]]),
        )
        dense = W_new.to_dense()
        assert dense[0, 3] == 4.0 and dense[0, 1] == 0.0


class TestValidation:
    def test_empty_delta_rejected(self, ring_graph):
        with pytest.raises(GraphConstructionError):
            apply_edge_delta(ring_graph)

    def test_self_loop_rejected(self, ring_graph):
        with pytest.raises(GraphConstructionError):
            apply_edge_delta(
                ring_graph, edges_added=np.array([[2, 2]]), weights_added=1.0
            )

    def test_out_of_range_vertex_rejected(self, ring_graph):
        with pytest.raises(GraphConstructionError):
            apply_edge_delta(
                ring_graph, edges_added=np.array([[0, 6]]), weights_added=1.0
            )

    def test_nonpositive_weight_rejected(self, ring_graph):
        with pytest.raises(GraphConstructionError):
            apply_edge_delta(
                ring_graph, edges_added=np.array([[0, 3]]), weights_added=0.0
            )

    def test_bad_shape_rejected(self, ring_graph):
        with pytest.raises(GraphConstructionError):
            apply_edge_delta(
                ring_graph,
                edges_added=np.array([[0, 1, 2]]),
                weights_added=1.0,
            )


class TestResultInvariants:
    def test_symmetry_preserved(self, ring_graph, rng):
        W_new, *_ = apply_edge_delta(
            ring_graph,
            edges_added=np.array([[0, 2], [1, 5]]),
            weights_added=np.array([0.7, 0.9]),
        )
        dense = W_new.to_dense()
        assert np.array_equal(dense, dense.T)

    def test_degrees_match_graph(self, ring_graph):
        W_new, _, _, _, _, deg_new = apply_edge_delta(
            ring_graph, edges_added=np.array([[1, 3]]), weights_added=0.3,
        )
        assert np.allclose(deg_new, W_new.to_dense().sum(axis=1))
