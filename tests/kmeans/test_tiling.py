"""Distance-matrix tiling: identical results, bounded device memory."""

from dataclasses import replace

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.errors import ClusteringError, DeviceMemoryError
from repro.hw.spec import K20C
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.init import kmeans_plus_plus


class TestTiling:
    def test_tiled_equals_untiled(self, blobs):
        V, _, k = blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(5))
        full = kmeans_device(Device(), V, k, initial_centroids=C0)
        for t in (1, 7, 64, 10_000):
            tiled = kmeans_device(
                Device(), V, k, initial_centroids=C0, tile_rows=t
            )
            assert np.array_equal(full.labels, tiled.labels), t
            assert np.allclose(full.centroids, tiled.centroids), t
            assert full.n_iter == tiled.n_iter, t

    def test_auto_tiling_fits_tiny_device(self, blobs):
        """A device too small for the full n x k matrix still works: the
        auto tile size shrinks to fit."""
        V, _, k = blobs
        n = V.shape[0]
        # room for the data + small buffers but NOT for n*k doubles * 4
        cap = V.nbytes * 3 + n * k * 8 // 2
        dev = Device(spec=replace(K20C, memory_bytes=cap))
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(5))
        res = kmeans_device(dev, V, k, initial_centroids=C0)
        full = kmeans_device(Device(), V, k, initial_centroids=C0)
        assert np.array_equal(res.labels, full.labels)

    def test_explicit_oversized_tile_raises_oom(self, blobs):
        V, _, k = blobs
        n = V.shape[0]
        cap = V.nbytes * 2 + n * k * 8 // 4
        dev = Device(spec=replace(K20C, memory_bytes=cap))
        with pytest.raises(DeviceMemoryError):
            kmeans_device(dev, V, k, seed=0, tile_rows=n)

    def test_bad_tile_rows(self, device, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(device, V, k, tile_rows=0)

    def test_tiling_charges_more_launches_same_flops_order(self, blobs):
        V, _, k = blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(5))
        d1, d2 = Device(), Device()
        kmeans_device(d1, V, k, initial_centroids=C0)
        kmeans_device(d2, V, k, initial_centroids=C0, tile_rows=16)
        assert d2.kernel_launches > d1.kernel_launches
        # launch overheads make tiling slightly slower, not orders worse
        assert d2.elapsed < 10 * d1.elapsed
