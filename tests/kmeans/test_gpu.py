"""Algorithm 4 on the device: exact parity with the host path + GPU-specific
mechanics (sort-based update, BLAS-3 distances, timeline accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.device import Device
from repro.errors import ClusteringError
from repro.kmeans.cpu import kmeans_cpu
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.init import kmeans_plus_plus
from repro.kmeans.utils import exact_labels


class TestParityWithCPU:
    def test_identical_from_same_seeds(self, device, blobs):
        """Sort-based centroid update == direct group-by update."""
        V, _, k = blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(9))
        cpu = kmeans_cpu(V, k, initial_centroids=C0)
        gpu = kmeans_device(device, V, k, initial_centroids=C0)
        assert np.array_equal(cpu.labels, gpu.labels)
        assert np.allclose(cpu.centroids, gpu.centroids)
        assert cpu.n_iter == gpu.n_iter
        assert cpu.inertia == pytest.approx(gpu.inertia)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_parity_property(self, seed):
        r = np.random.default_rng(seed)
        V = r.random((60, 3))
        k = int(r.integers(2, 8))
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(seed + 1))
        cpu = kmeans_cpu(V, k, initial_centroids=C0, max_iter=50)
        gpu = kmeans_device(Device(), V, k, initial_centroids=C0, max_iter=50)
        assert np.array_equal(cpu.labels, gpu.labels)
        assert np.allclose(cpu.centroids, gpu.centroids)


class TestInvariants:
    def test_inertia_monotone(self, device, blobs):
        V, _, k = blobs
        res = kmeans_device(device, V, k, seed=2)
        h = res.inertia_history
        assert all(h[i + 1] <= h[i] + 1e-9 for i in range(len(h) - 1))

    def test_labels_exact_argmin(self, device, blobs):
        V, _, k = blobs
        res = kmeans_device(device, V, k, seed=2)
        assert np.array_equal(res.labels, exact_labels(V, res.centroids))

    def test_recovers_blobs(self, device, blobs):
        from repro.metrics.external import adjusted_rand_index

        V, truth, k = blobs
        res = kmeans_device(device, V, k, seed=1)
        assert adjusted_rand_index(res.labels, truth) > 0.98

    def test_no_empty_clusters(self, device, rng):
        V = rng.random((50, 2))
        res = kmeans_device(device, V, 12, seed=0)
        assert np.all(np.bincount(res.labels, minlength=12) >= 1)


class TestDeviceMechanics:
    def test_uses_gemm_and_sort(self, device, blobs):
        V, _, k = blobs
        kmeans_device(device, V, k, seed=0)
        names = [e.name for e in device.timeline]
        assert any("cublasDgemm" in n for n in names)
        assert any("sort_by_key" in n for n in names)
        assert any("reduce_by_key" in n for n in names)

    def test_events_tagged_kmeans(self, device, blobs):
        V, _, k = blobs
        kmeans_device(device, V, k, seed=0)
        assert device.timeline.total(tag="kmeans") > 0

    def test_transfers_data_in_and_labels_out(self, device, blobs):
        V, _, k = blobs
        kmeans_device(device, V, k, seed=0)
        assert device.timeline.count("h2d") >= 1
        assert device.timeline.count("d2h") >= 1

    def test_accepts_device_resident_input(self, device, blobs):
        V, _, k = blobs
        dV = device.to_device(V)
        res = kmeans_device(device, dV, k, seed=0)
        assert res.labels.size == V.shape[0]
        assert dV.is_valid  # caller-owned buffer not freed

    def test_frees_working_buffers(self, device, blobs):
        V, _, k = blobs
        used0 = device.allocator.used_bytes
        kmeans_device(device, V, k, seed=0)
        assert device.allocator.used_bytes == used0

    def test_random_init_mode(self, device, blobs):
        V, _, k = blobs
        res = kmeans_device(device, V, k, init="random", seed=0)
        assert res.converged

    def test_bad_init_name(self, device, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(device, V, k, init="pca")

    def test_bad_initial_centroid_shape(self, device, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(device, V, k, initial_centroids=np.zeros((k, 99)))

    def test_max_iter_cap(self, device, rng):
        V = rng.random((100, 4))
        res = kmeans_device(device, V, 10, max_iter=3, seed=0)
        assert res.n_iter <= 3

    def test_direct_distance_method_identical(self, device, blobs):
        """Eqs. 12-16 (gemm) vs the naive kernel: same clustering."""
        V, _, k = blobs
        C0 = np.asarray(V[:k])
        from repro.cuda.device import Device

        g = kmeans_device(Device(), V, k, initial_centroids=C0)
        d = kmeans_device(
            Device(), V, k, initial_centroids=C0, distance_method="direct"
        )
        assert np.array_equal(g.labels, d.labels)
        assert np.allclose(g.centroids, d.centroids)

    def test_unknown_distance_method(self, device, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(device, V, k, distance_method="manhattan")
