"""Algorithm 4 on the device: exact parity with the host path + GPU-specific
mechanics (sort-based update, BLAS-3 distances, timeline accounting)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda.device import Device
from repro.errors import ClusteringError
from repro.kmeans.cpu import kmeans_cpu
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.init import kmeans_plus_plus
from repro.kmeans.utils import exact_labels


class TestParityWithCPU:
    def test_identical_from_same_seeds(self, device, blobs):
        """Sort-based centroid update == direct group-by update."""
        V, _, k = blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(9))
        cpu = kmeans_cpu(V, k, initial_centroids=C0)
        gpu = kmeans_device(device, V, k, initial_centroids=C0)
        assert np.array_equal(cpu.labels, gpu.labels)
        assert np.allclose(cpu.centroids, gpu.centroids)
        assert cpu.n_iter == gpu.n_iter
        assert cpu.inertia == pytest.approx(gpu.inertia)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_parity_property(self, seed):
        r = np.random.default_rng(seed)
        V = r.random((60, 3))
        k = int(r.integers(2, 8))
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(seed + 1))
        cpu = kmeans_cpu(V, k, initial_centroids=C0, max_iter=50)
        gpu = kmeans_device(Device(), V, k, initial_centroids=C0, max_iter=50)
        assert np.array_equal(cpu.labels, gpu.labels)
        assert np.allclose(cpu.centroids, gpu.centroids)


class TestInvariants:
    def test_inertia_monotone(self, device, blobs):
        V, _, k = blobs
        res = kmeans_device(device, V, k, seed=2)
        h = res.inertia_history
        assert all(h[i + 1] <= h[i] + 1e-9 for i in range(len(h) - 1))

    def test_labels_exact_argmin(self, device, blobs):
        V, _, k = blobs
        res = kmeans_device(device, V, k, seed=2)
        assert np.array_equal(res.labels, exact_labels(V, res.centroids))

    def test_recovers_blobs(self, device, blobs):
        from repro.metrics.external import adjusted_rand_index

        V, truth, k = blobs
        res = kmeans_device(device, V, k, seed=1)
        assert adjusted_rand_index(res.labels, truth) > 0.98

    def test_no_empty_clusters(self, device, rng):
        V = rng.random((50, 2))
        res = kmeans_device(device, V, 12, seed=0)
        assert np.all(np.bincount(res.labels, minlength=12) >= 1)


class TestDeviceMechanics:
    def test_default_path_is_fused_spmm(self, device, blobs):
        V, _, k = blobs
        kmeans_device(device, V, k, seed=0)
        names = [e.name for e in device.timeline]
        assert any("fused_assign" in n for n in names)
        assert any("label_histogram" in n for n in names)
        assert any("exclusive_scan" in n for n in names)
        assert any("cusparseDcsrmm" in n for n in names)
        assert any("tile_inertia" in n for n in names)
        # the fused/SpMM path issues none of the discrete-kernel machinery
        assert not any("sort_by_key" in n for n in names)
        assert not any("cublasDgemm" in n for n in names)
        assert not any("count_changes" in n for n in names)

    def test_sort_path_uses_gemm_and_sort(self, device, blobs):
        V, _, k = blobs
        kmeans_device(device, V, k, seed=0, centroid_update="sort", fused=False)
        names = [e.name for e in device.timeline]
        assert any("cublasDgemm" in n for n in names)
        assert any("sort_by_key" in n for n in names)
        assert any("reduce_by_key" in n for n in names)

    def test_events_tagged_kmeans(self, device, blobs):
        V, _, k = blobs
        kmeans_device(device, V, k, seed=0)
        assert device.timeline.total(tag="kmeans") > 0

    def test_transfers_data_in_and_labels_out(self, device, blobs):
        V, _, k = blobs
        kmeans_device(device, V, k, seed=0)
        assert device.timeline.count("h2d") >= 1
        assert device.timeline.count("d2h") >= 1

    def test_accepts_device_resident_input(self, device, blobs):
        V, _, k = blobs
        dV = device.to_device(V)
        res = kmeans_device(device, dV, k, seed=0)
        assert res.labels.size == V.shape[0]
        assert dV.is_valid  # caller-owned buffer not freed

    def test_frees_working_buffers(self, device, blobs):
        V, _, k = blobs
        used0 = device.allocator.used_bytes
        kmeans_device(device, V, k, seed=0)
        assert device.allocator.used_bytes == used0

    def test_random_init_mode(self, device, blobs):
        V, _, k = blobs
        res = kmeans_device(device, V, k, init="random", seed=0)
        assert res.converged

    def test_bad_init_name(self, device, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(device, V, k, init="pca")

    def test_bad_initial_centroid_shape(self, device, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(device, V, k, initial_centroids=np.zeros((k, 99)))

    def test_max_iter_cap(self, device, rng):
        V = rng.random((100, 4))
        res = kmeans_device(device, V, 10, max_iter=3, seed=0)
        assert res.n_iter <= 3

    def test_direct_distance_method_identical(self, device, blobs):
        """Eqs. 12-16 (gemm) vs the naive kernel: same clustering."""
        V, _, k = blobs
        C0 = np.asarray(V[:k])
        from repro.cuda.device import Device

        g = kmeans_device(Device(), V, k, initial_centroids=C0)
        d = kmeans_device(
            Device(), V, k, initial_centroids=C0, distance_method="direct"
        )
        assert np.array_equal(g.labels, d.labels)
        assert np.allclose(g.centroids, d.centroids)

    def test_unknown_distance_method(self, device, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(device, V, k, distance_method="manhattan")

    def test_unknown_centroid_update(self, device, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(device, V, k, centroid_update="atomic")


#: every (centroid_update, fused) combination the ablation pins
KNOB_GRID = [("spmm", True), ("spmm", False), ("sort", True), ("sort", False)]


class TestKnobParity:
    """The perf knobs change charged time, never a bit of the results."""

    def _run(self, V, k, C0, update, fused, **kw):
        return kmeans_device(
            Device(), V, k, initial_centroids=C0,
            centroid_update=update, fused=fused, max_iter=60, **kw
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_identical_across_knob_grid(self, seed):
        r = np.random.default_rng(seed)
        V = r.random((150, 5))
        k = 7
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(seed + 1))
        ref = self._run(V, k, C0, "sort", False)
        for update, fused in KNOB_GRID:
            res = self._run(V, k, C0, update, fused)
            assert np.array_equal(res.labels, ref.labels)
            assert res.centroids.tobytes() == ref.centroids.tobytes()
            assert res.n_iter == ref.n_iter
            assert res.converged == ref.converged
            hist = np.asarray(res.inertia_history)
            assert hist.tobytes() == np.asarray(ref.inertia_history).tobytes()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_under_tiling(self, seed):
        """Fused tiles + on-device change count: tiling never changes bits."""
        r = np.random.default_rng(seed + 100)
        V = r.random((123, 4))
        k = 6
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(seed))
        ref = self._run(V, k, C0, "spmm", True)
        tiled = self._run(V, k, C0, "spmm", True, tile_rows=17)
        assert np.array_equal(tiled.labels, ref.labels)
        assert tiled.centroids.tobytes() == ref.centroids.tobytes()
        assert np.asarray(tiled.inertia_history).tobytes() == np.asarray(
            ref.inertia_history
        ).tobytes()

    def test_bit_identical_with_empty_cluster_repair(self):
        """Duplicated points force empty clusters; the repair rule must fire
        identically on every knob combination."""
        r = np.random.default_rng(7)
        base = r.random((8, 3))
        V = np.repeat(base, 6, axis=0)  # 48 points, only 8 distinct
        k = 12  # more clusters than distinct points -> guaranteed repair
        C0 = V[:k] + r.random((k, 3)) * 1e-3
        ref = self._run(V, k, C0, "sort", False)
        assert np.all(np.bincount(ref.labels, minlength=k) >= 1)
        for update, fused in KNOB_GRID:
            res = self._run(V, k, C0, update, fused)
            assert np.array_equal(res.labels, ref.labels)
            assert res.centroids.tobytes() == ref.centroids.tobytes()

    def test_spmm_fused_is_faster(self, blobs):
        """The rebuilt default beats the paper's sort+discrete pipeline."""
        V, _, k = blobs
        C0 = np.asarray(V[:k])
        dev_new, dev_old = Device(), Device()
        kmeans_device(dev_new, V, k, initial_centroids=C0)
        kmeans_device(
            dev_old, V, k, initial_centroids=C0,
            centroid_update="sort", fused=False,
        )
        assert dev_new.timeline.total(tag="kmeans") < dev_old.timeline.total(
            tag="kmeans"
        )


class TestIterationAllocations:
    """The Lloyd loop's working set is allocated once, before the loop."""

    @staticmethod
    def _total_allocs(device):
        stats = device.alloc_stats()
        return stats["hits"] + stats["misses"]

    def test_default_path_zero_allocs_per_iteration(self):
        r = np.random.default_rng(0)
        V = r.random((300, 6))
        C0 = np.asarray(V[:10])
        totals = []
        for max_iter in (1, 6):
            dev = Device()
            res = kmeans_device(dev, V, 10, initial_centroids=C0, max_iter=max_iter)
            assert res.n_iter == max_iter  # genuinely ran the extra trips
            totals.append(self._total_allocs(dev))
        assert totals[0] == totals[1], (
            "extra Lloyd iterations must not allocate device memory"
        )

    def test_sort_path_allocates_per_iteration(self):
        """The ablation baseline still pays ~7 allocations per trip."""
        r = np.random.default_rng(0)
        V = r.random((300, 6))
        C0 = np.asarray(V[:10])
        totals = []
        for max_iter in (1, 6):
            dev = Device()
            res = kmeans_device(
                dev, V, 10, initial_centroids=C0, max_iter=max_iter,
                centroid_update="sort", fused=False,
            )
            assert res.n_iter == max_iter
            totals.append(self._total_allocs(dev))
        assert totals[1] == totals[0] + 5 * 7


class TestSpmmFormat:
    """The centroid-update SpMM can run from ELL/HYB membership operands;
    the format changes only the charged time, never the numbers."""

    def test_forced_formats_bit_identical(self, blobs):
        V, _, k = blobs
        results = {}
        for fmt in ("csr", "ell", "hyb"):
            res = kmeans_device(Device(), V, k, seed=0, spmm_format=fmt)
            results[fmt] = res
        for fmt in ("ell", "hyb"):
            assert np.array_equal(results[fmt].labels, results["csr"].labels)
            assert (
                results[fmt].centroids.tobytes()
                == results["csr"].centroids.tobytes()
            )
            assert results[fmt].inertia == results["csr"].inertia

    def test_auto_matches_forced_choice(self, blobs):
        V, _, k = blobs
        auto = kmeans_device(Device(), V, k, seed=0, spmm_format="auto")
        ref = kmeans_device(Device(), V, k, seed=0, spmm_format="csr")
        assert np.array_equal(auto.labels, ref.labels)
        assert auto.centroids.tobytes() == ref.centroids.tobytes()

    def test_forced_format_launches_its_kernel(self, blobs):
        V, _, k = blobs
        dev = Device()
        kmeans_device(dev, V, k, seed=0, spmm_format="ell")
        names = [e.name for e in dev.timeline if e.category == "kernel"]
        assert any(n == "cusparseDellmm" for n in names)
        dev2 = Device()
        kmeans_device(dev2, V, k, seed=0, spmm_format="hyb")
        names2 = [e.name for e in dev2.timeline if e.category == "kernel"]
        assert any(n.startswith("cusparseDhybmm") for n in names2)

    def test_invalid_format_rejected(self, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_device(Device(), V, k, seed=0, spmm_format="coo")
