"""k-means shared helpers."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.kmeans.utils import (
    exact_labels,
    inertia,
    relabel_empty_clusters,
    validate_inputs,
)


class TestValidation:
    def test_accepts_2d(self, rng):
        V = validate_inputs(rng.random((10, 3)), 2)
        assert V.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self, rng):
        with pytest.raises(ClusteringError):
            validate_inputs(rng.random(10), 2)

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ClusteringError):
            validate_inputs(rng.random((5, 2)), 0)
        with pytest.raises(ClusteringError):
            validate_inputs(rng.random((5, 2)), 6)


class TestInertia:
    def test_zero_for_points_on_centroids(self):
        V = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert inertia(V, V.copy(), np.array([0, 1])) == 0.0

    def test_known_value(self):
        V = np.array([[0.0], [2.0]])
        C = np.array([[1.0]])
        assert inertia(V, C, np.array([0, 0])) == pytest.approx(2.0)


class TestExactLabels:
    def test_matches_brute_force(self, rng):
        V = rng.random((50, 4))
        C = rng.random((6, 4))
        lab = exact_labels(V, C)
        for i in range(50):
            dists = np.linalg.norm(V[i] - C, axis=1)
            assert dists[lab[i]] == pytest.approx(dists.min())


class TestEmptyClusterRepair:
    def test_noop_when_all_populated(self, rng):
        V = rng.random((10, 2))
        C = rng.random((2, 2))
        labels = np.array([0, 1] * 5)
        counts = np.array([5, 5])
        C2, l2, c2 = relabel_empty_clusters(V, C, labels, counts)
        assert np.array_equal(l2, labels)
        assert np.array_equal(c2, counts)

    def test_fills_empty_with_farthest_point(self):
        V = np.array([[0.0], [0.1], [0.2], [10.0]])
        C = np.array([[0.1], [99.0]])
        labels = np.array([0, 0, 0, 0])
        counts = np.array([4, 0])
        C2, l2, c2 = relabel_empty_clusters(V, C, labels, counts)
        assert c2.tolist() == [3, 1]
        assert l2[3] == 1  # the farthest point moved
        assert np.allclose(C2[1], [10.0])

    def test_never_empties_a_singleton(self):
        V = np.array([[0.0], [5.0]])
        C = np.array([[0.0], [5.0], [99.0]])
        labels = np.array([0, 1])
        counts = np.array([1, 1, 0])
        C2, l2, c2 = relabel_empty_clusters(V, C, labels, counts)
        # can't steal: both donors are singletons; cluster 2 stays empty
        assert c2[0] >= 1 and c2[1] >= 1

    def test_multiple_empty_clusters(self, rng):
        V = rng.random((20, 2)) * 10
        C = rng.random((5, 2))
        labels = np.zeros(20, dtype=np.int64)
        counts = np.array([20, 0, 0, 0, 0])
        C2, l2, c2 = relabel_empty_clusters(V, C, labels, counts)
        assert np.all(c2 >= 1)
        assert c2.sum() == 20
        assert np.array_equal(np.bincount(l2, minlength=5), c2)
