"""Multi-GPU k-means: correctness parity and scaling behavior."""

import numpy as np
import pytest

from repro.cuda.device import Device
from repro.errors import ClusteringError
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.init import kmeans_plus_plus
from repro.kmeans.multi_gpu import kmeans_multi_device


@pytest.fixture
def big_blobs(rng):
    k, per, d = 6, 300, 8
    centers = rng.standard_normal((k, d)) * 10
    truth = np.repeat(np.arange(k), per)
    V = centers[truth] + 0.5 * rng.standard_normal((k * per, d))
    return V, truth, k


class TestParity:
    @pytest.mark.parametrize("n_dev", [1, 2, 3, 4])
    def test_matches_single_device(self, big_blobs, n_dev):
        V, _, k = big_blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(3))
        single = kmeans_device(Device(), V, k, initial_centroids=C0)
        multi, _ = kmeans_multi_device(
            [Device() for _ in range(n_dev)], V, k, initial_centroids=C0
        )
        assert np.array_equal(single.labels, multi.labels)
        assert np.allclose(single.centroids, multi.centroids)
        assert single.n_iter == multi.n_iter

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_dev", [2, 3])
    def test_multi_seed_parity(self, seed, n_dev):
        """Sharded runs agree with one device across seeds and pool sizes."""
        r = np.random.default_rng(seed)
        V = r.random((400, 5))
        k = 6
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(seed + 10))
        single = kmeans_device(Device(), V, k, initial_centroids=C0)
        multi, _ = kmeans_multi_device(
            [Device() for _ in range(n_dev)], V, k, initial_centroids=C0
        )
        assert np.array_equal(single.labels, multi.labels)
        assert np.allclose(single.centroids, multi.centroids)
        assert single.n_iter == multi.n_iter
        assert single.converged == multi.converged

    @pytest.mark.parametrize("n_dev", [1, 2, 3])
    def test_empty_cluster_repair_parity(self, n_dev):
        """Duplicated points force the empty-cluster repair rule; the
        sharded path must apply it exactly like the single-device path."""
        r = np.random.default_rng(7)
        base = r.random((8, 3))
        V = np.repeat(base, 6, axis=0)  # 48 points, only 8 distinct
        k = 12  # more clusters than distinct points -> guaranteed repair
        C0 = V[:k] + r.random((k, 3)) * 1e-3
        single = kmeans_device(Device(), V, k, initial_centroids=C0)
        multi, _ = kmeans_multi_device(
            [Device() for _ in range(n_dev)], V, k, initial_centroids=C0
        )
        assert np.all(np.bincount(multi.labels, minlength=k) >= 1)
        assert np.array_equal(single.labels, multi.labels)
        assert np.allclose(single.centroids, multi.centroids)

    def test_inertia_monotone(self, big_blobs):
        V, _, k = big_blobs
        res, _ = kmeans_multi_device(
            [Device(), Device()], V, k, seed=0
        )
        h = res.inertia_history
        assert all(h[i + 1] <= h[i] + 1e-9 for i in range(len(h) - 1))

    def test_recovers_blobs(self, big_blobs):
        from repro.metrics.external import adjusted_rand_index

        V, truth, k = big_blobs
        res, _ = kmeans_multi_device([Device(), Device()], V, k, seed=0)
        assert adjusted_rand_index(res.labels, truth) > 0.98


class TestScaling:
    def test_parallel_time_beats_single_device(self, rng):
        # scaling shows only when per-shard work dominates the fixed
        # kernel-launch overheads — use a large-n workload, few iterations
        V = rng.random((120_000, 8))
        k = 8
        C0 = kmeans_plus_plus(V[:2000], k, np.random.default_rng(3))
        d1 = Device()
        kmeans_device(d1, V, k, initial_centroids=C0, max_iter=2)
        t1 = d1.timeline.total(tag="kmeans")
        _, timings = kmeans_multi_device(
            [Device() for _ in range(4)], V, k,
            initial_centroids=C0, max_iter=2,
        )
        # makespan clearly under the one-device time (launch overheads +
        # host reduction keep it short of the ideal 4x)
        assert timings.parallel_seconds < 0.7 * t1

    def test_tiny_problem_launch_bound(self, big_blobs):
        """The flip side (Amdahl on launch latency): at tiny sizes adding
        devices buys almost nothing because each shard still pays the
        full per-iteration launch sequence."""
        V, _, k = big_blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(3))
        d1 = Device()
        kmeans_device(d1, V, k, initial_centroids=C0)
        t1 = d1.timeline.total(tag="kmeans")
        _, timings = kmeans_multi_device(
            [Device() for _ in range(4)], V, k, initial_centroids=C0
        )
        assert timings.parallel_seconds > 0.5 * t1

    def test_per_device_times_balanced(self, big_blobs):
        V, _, k = big_blobs
        _, timings = kmeans_multi_device(
            [Device(), Device()], V, k, seed=0
        )
        a, b = timings.per_device_seconds
        assert abs(a - b) < 0.3 * max(a, b)

    def test_host_reduce_counted(self, big_blobs):
        V, _, k = big_blobs
        _, timings = kmeans_multi_device([Device(), Device()], V, k, seed=0)
        assert timings.host_reduce_seconds > 0
        assert timings.parallel_seconds > timings.host_reduce_seconds


class TestValidation:
    def test_no_devices(self, big_blobs):
        V, _, k = big_blobs
        with pytest.raises(ClusteringError):
            kmeans_multi_device([], V, k)

    def test_more_devices_than_points(self, rng):
        with pytest.raises(ClusteringError):
            kmeans_multi_device(
                [Device() for _ in range(5)], rng.random((3, 2)), 2
            )

    def test_bad_centroid_shape(self, big_blobs):
        V, _, k = big_blobs
        with pytest.raises(ClusteringError):
            kmeans_multi_device(
                [Device()], V, k, initial_centroids=np.zeros((k, 99))
            )

    def test_devices_memory_freed(self, big_blobs):
        V, _, k = big_blobs
        devs = [Device(), Device()]
        kmeans_multi_device(devs, V, k, seed=0)
        for d in devs:
            assert d.allocator.used_bytes == 0


def composed_group(p):
    """p topology-aware devices on one shared timeline."""
    from repro.hw.costmodel import TransferCostModel
    from repro.hw.topology import paper_topology

    topo = paper_topology(p)
    primary = Device(device_index=0, topology=topo)
    primary.transfer_cost = TransferCostModel(primary.pcie, topo)
    return [primary] + [
        Device(primary.spec, primary.pcie, timeline=primary.timeline,
               device_index=d, topology=topo)
        for d in range(1, p)
    ]


def contiguous_row_sets(n, p):
    from repro.cusparse.partition import partition_bounds

    b = partition_bounds(n, p)
    return [np.arange(b[j], b[j + 1], dtype=np.int64) for j in range(p)]


class TestComposed:
    """kmeans_composed: the one-plan fit's resident-shard k-means."""

    @pytest.mark.parametrize("n_dev", [1, 2, 4])
    def test_bitwise_matches_single_device(self, big_blobs, n_dev):
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(3))
        single = kmeans_device(Device(), V, k, initial_centroids=C0)
        res, _, _ = kmeans_composed(
            composed_group(n_dev), contiguous_row_sets(len(V), n_dev),
            V, k, initial_centroids=C0,
        )
        assert res.labels.tobytes() == single.labels.tobytes()
        assert res.centroids.tobytes() == single.centroids.tobytes()
        assert np.array_equal(res.inertia_history, single.inertia_history)
        assert res.n_iter == single.n_iter

    @pytest.mark.parametrize("seed", [0, 5])
    def test_plus_plus_seeding_matches_device_rng(self, big_blobs, seed):
        """Composed k-means++ consumes the RNG exactly like the
        single-device device-side seeding path."""
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        single = kmeans_device(Device(), V, k, seed=seed)
        res, _, _ = kmeans_composed(
            composed_group(2), contiguous_row_sets(len(V), 2),
            V, k, seed=seed,
        )
        assert res.labels.tobytes() == single.labels.tobytes()
        assert res.centroids.tobytes() == single.centroids.tobytes()

    def test_noncontiguous_row_sets_bit_identical(self, big_blobs):
        """A mincut-style interleaved ownership changes nothing but time."""
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        n = len(V)
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(3))
        single = kmeans_device(Device(), V, k, initial_centroids=C0)
        rows = np.random.default_rng(11).permutation(n)
        sets = [np.sort(rows[: n // 2]), np.sort(rows[n // 2:])]
        res, _, _ = kmeans_composed(
            composed_group(2), sets, V, k, initial_centroids=C0
        )
        assert res.labels.tobytes() == single.labels.tobytes()

    def test_transfer_plan_matches_meters(self, big_blobs):
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        devs = composed_group(3)
        _, _, plan = kmeans_composed(
            devs, contiguous_row_sets(len(V), 3), V, k, seed=0
        )
        assert plan["h2d_bytes"] == sum(d.bytes_h2d for d in devs)
        assert plan["d2h_bytes"] == sum(d.bytes_d2h for d in devs)
        assert plan["p2p_bytes"] == sum(d.bytes_p2p for d in devs)
        assert plan["elided_bytes"] == sum(d.bytes_elided for d in devs)
        assert plan["elided_count"] == sum(
            d.transfers_elided for d in devs
        )

    def test_resident_elides_shard_uploads(self, big_blobs):
        """resident=True converts every per-shard embedding upload into
        an elided transfer of the same size."""
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(3))
        sets = contiguous_row_sets(len(V), 2)
        _, _, cold = kmeans_composed(
            composed_group(2), sets, V, k, initial_centroids=C0
        )
        devs = composed_group(2)
        res, _, warm = kmeans_composed(
            devs, sets, V, k, initial_centroids=C0, resident=True
        )
        shard_bytes = V.nbytes
        assert cold["h2d_bytes"] - warm["h2d_bytes"] == shard_bytes
        assert warm["elided_bytes"] - cold["elided_bytes"] == shard_bytes
        assert warm["elided_count"] - cold["elided_count"] == 2
        assert sum(d.bytes_elided for d in devs) == warm["elided_bytes"]

    def test_resident_faster_than_cold(self, big_blobs):
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        C0 = kmeans_plus_plus(V, k, np.random.default_rng(3))
        sets = contiguous_row_sets(len(V), 2)
        _, cold, _ = kmeans_composed(
            composed_group(2), sets, V, k, initial_centroids=C0
        )
        _, warm, _ = kmeans_composed(
            composed_group(2), sets, V, k, initial_centroids=C0,
            resident=True,
        )
        assert warm.parallel_seconds < cold.parallel_seconds

    def test_row_sets_must_cover(self, big_blobs):
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        devs = composed_group(2)
        sets = contiguous_row_sets(len(V), 2)
        with pytest.raises(ClusteringError):
            kmeans_composed(devs, sets[:1], V, k)
        with pytest.raises(ClusteringError):
            kmeans_composed(
                devs, [sets[0], sets[1][:-3]], V, k
            )

    def test_devices_must_share_timeline(self, big_blobs):
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        with pytest.raises(ClusteringError):
            kmeans_composed(
                [Device(), Device()], contiguous_row_sets(len(V), 2), V, k
            )

    def test_memory_freed(self, big_blobs):
        from repro.kmeans.multi_gpu import kmeans_composed

        V, _, k = big_blobs
        devs = composed_group(2)
        kmeans_composed(devs, contiguous_row_sets(len(V), 2), V, k, seed=0)
        for d in devs:
            assert d.allocator.used_bytes == 0
