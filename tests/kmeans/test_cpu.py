"""Host Lloyd iteration: invariants and recovery."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.kmeans.cpu import kmeans_cpu
from repro.kmeans.utils import exact_labels, inertia


class TestInvariants:
    def test_inertia_monotone_nonincreasing(self, blobs):
        V, _, k = blobs
        res = kmeans_cpu(V, k, seed=3)
        h = res.inertia_history
        assert all(h[i + 1] <= h[i] + 1e-9 for i in range(len(h) - 1))

    def test_labels_are_exact_argmin_at_convergence(self, blobs):
        V, _, k = blobs
        res = kmeans_cpu(V, k, seed=3)
        assert res.converged
        assert np.array_equal(res.labels, exact_labels(V, res.centroids))

    def test_centroids_are_cluster_means(self, blobs):
        V, _, k = blobs
        res = kmeans_cpu(V, k, seed=3)
        for c in range(k):
            members = V[res.labels == c]
            if members.size:
                assert np.allclose(res.centroids[c], members.mean(axis=0))

    def test_reported_inertia_consistent(self, blobs):
        V, _, k = blobs
        res = kmeans_cpu(V, k, seed=0)
        assert res.inertia == pytest.approx(
            inertia(V, res.centroids, res.labels)
        )

    def test_no_empty_clusters(self, rng):
        V = rng.random((40, 2))
        res = kmeans_cpu(V, 15, seed=0)
        assert np.all(np.bincount(res.labels, minlength=15) >= 1)


class TestRecovery:
    def test_recovers_separated_blobs(self, blobs):
        from repro.metrics.external import adjusted_rand_index

        V, truth, k = blobs
        res = kmeans_cpu(V, k, seed=1)
        assert adjusted_rand_index(res.labels, truth) > 0.98

    def test_kmeanspp_beats_or_matches_random_inertia(self, rng):
        centers = rng.standard_normal((8, 4)) * 12
        V = centers[rng.integers(0, 8, 400)] + rng.standard_normal((400, 4))
        pp = [kmeans_cpu(V, 8, init="k-means++", seed=s).inertia for s in range(5)]
        rd = [kmeans_cpu(V, 8, init="random", seed=s).inertia for s in range(5)]
        assert np.median(pp) <= np.median(rd) * 1.05


class TestOptions:
    def test_explicit_initial_centroids(self, blobs):
        V, _, k = blobs
        C0 = V[:k].copy()
        r1 = kmeans_cpu(V, k, initial_centroids=C0)
        r2 = kmeans_cpu(V, k, initial_centroids=C0)
        assert np.array_equal(r1.labels, r2.labels)

    def test_initial_centroid_shape_checked(self, blobs):
        V, _, k = blobs
        with pytest.raises(ClusteringError):
            kmeans_cpu(V, k, initial_centroids=np.zeros((k, 99)))

    def test_max_iter_respected(self, rng):
        V = rng.random((200, 5))
        res = kmeans_cpu(V, 20, max_iter=2, seed=0)
        assert res.n_iter <= 2

    def test_tol_early_stop(self, rng):
        V = rng.random((300, 4))
        loose = kmeans_cpu(V, 10, tol=0.5, seed=0)
        tight = kmeans_cpu(V, 10, tol=0.0, seed=0)
        assert loose.n_iter <= tight.n_iter

    def test_unknown_init(self, rng):
        with pytest.raises(ClusteringError):
            kmeans_cpu(rng.random((10, 2)), 2, init="farthest")

    def test_k_equals_n(self, rng):
        V = rng.random((6, 2))
        res = kmeans_cpu(V, 6, seed=0)
        assert res.inertia == pytest.approx(0.0)

    def test_single_cluster(self, rng):
        V = rng.random((30, 3))
        res = kmeans_cpu(V, 1, seed=0)
        assert np.all(res.labels == 0)
        assert np.allclose(res.centroids[0], V.mean(axis=0))
