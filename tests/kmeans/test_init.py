"""Seeding strategies: k-means++ host/device agreement and distribution
properties (Algorithm 5)."""

import numpy as np
import pytest

from repro.errors import ClusteringError
from repro.kmeans.init import (
    kmeans_plus_plus,
    kmeans_plus_plus_device,
    random_init,
)


class TestRandomInit:
    def test_selects_distinct_points(self, rng):
        V = rng.random((20, 3))
        C = random_init(V, 5, rng)
        assert C.shape == (5, 3)
        # each centroid is an actual data point
        for c in C:
            assert np.any(np.all(np.isclose(V, c), axis=1))

    def test_k_bounds(self, rng):
        with pytest.raises(ClusteringError):
            random_init(rng.random((4, 2)), 5, rng)


class TestKMeansPlusPlusHost:
    def test_seeds_are_data_points(self, rng):
        V = rng.random((30, 4))
        C = kmeans_plus_plus(V, 6, rng)
        for c in C:
            assert np.any(np.all(np.isclose(V, c), axis=1))

    def test_spreads_over_separated_blobs(self, rng, blobs):
        V, _, k = blobs
        # with well-separated blobs, k-means++ picks one seed per blob
        # almost surely; check over a few trials
        hits = 0
        for trial in range(5):
            C = kmeans_plus_plus(V, k, np.random.default_rng(trial))
            d2 = ((C[:, None, :] - C[None, :, :]) ** 2).sum(axis=2)
            np.fill_diagonal(d2, np.inf)
            if d2.min() > 1.0:  # no two seeds in the same blob
                hits += 1
        assert hits >= 4

    def test_deterministic_given_rng(self, rng):
        V = np.random.default_rng(0).random((25, 3))
        C1 = kmeans_plus_plus(V, 4, np.random.default_rng(7))
        C2 = kmeans_plus_plus(V, 4, np.random.default_rng(7))
        assert np.array_equal(C1, C2)

    def test_duplicate_points_fall_back_to_uniform(self, rng):
        V = np.ones((10, 2))
        C = kmeans_plus_plus(V, 3, rng)
        assert C.shape == (3, 2)
        assert np.all(C == 1.0)

    def test_k_equals_n(self, rng):
        V = rng.random((5, 2))
        C = kmeans_plus_plus(V, 5, rng)
        assert C.shape == (5, 2)


class TestKMeansPlusPlusDevice:
    def test_seeds_are_data_points(self, device, rng):
        V = rng.random((40, 3))
        dV = device.to_device(V)
        dC = kmeans_plus_plus_device(dV, 5, rng)
        for c in dC.data:
            assert np.any(np.all(np.isclose(V, c), axis=1))

    def test_spreads_over_separated_blobs(self, device, blobs):
        V, _, k = blobs
        dV = device.to_device(V)
        dC = kmeans_plus_plus_device(dV, k, np.random.default_rng(1))
        d2 = ((dC.data[:, None, :] - dC.data[None, :, :]) ** 2).sum(axis=2)
        np.fill_diagonal(d2, np.inf)
        assert d2.min() > 1.0

    def test_uses_thrust_primitives(self, device, rng):
        dV = device.to_device(rng.random((20, 2)))
        kmeans_plus_plus_device(dV, 4, rng)
        names = [e.name for e in device.timeline]
        assert any("inclusive_scan" in n for n in names)
        assert any("lower_bound" in n for n in names)

    def test_k_bounds(self, device, rng):
        dV = device.to_device(rng.random((4, 2)))
        with pytest.raises(ClusteringError):
            kmeans_plus_plus_device(dV, 9, rng)

    def test_degenerate_all_identical(self, device, rng):
        dV = device.to_device(np.ones((8, 2)))
        dC = kmeans_plus_plus_device(dV, 3, rng)
        assert np.all(dC.data == 1.0)
