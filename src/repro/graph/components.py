"""Connected components and isolated-node handling.

The paper assumes every ``D_ii > 0``, "otherwise the isolated nodes can be
removed from the graph" (§IV.B) — :func:`remove_isolated` performs exactly
that surgery.  :func:`connected_components` is a vectorized frontier BFS
over CSR used by diagnostics and dataset validation (the number of zero
eigenvalues of L equals the number of components, which tests exploit).
"""

from __future__ import annotations

import numpy as np

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def connected_components(W) -> tuple[int, np.ndarray]:
    """Label connected components of an undirected graph.

    Parameters
    ----------
    W:
        Sparse adjacency in any format (values ignored; treated as
        undirected — edges are followed both ways).

    Returns
    -------
    (n_components, labels):
        Component count and a length-n label vector (0-based, ordered by
        first-seen node).
    """
    csr = W if isinstance(W, CSRMatrix) else W.to_csr()
    n = csr.shape[0]
    labels = np.full(n, -1, dtype=np.int64)
    comp = 0
    for seed in range(n):
        if labels[seed] != -1:
            continue
        labels[seed] = comp
        frontier = np.array([seed], dtype=np.int64)
        while frontier.size:
            # gather all neighbors of the frontier in one shot
            starts = csr.indptr[frontier]
            stops = csr.indptr[frontier + 1]
            counts = stops - starts
            if counts.sum() == 0:
                break
            take = np.concatenate(
                [csr.indices[s:e] for s, e in zip(starts, stops)]
            )
            fresh = take[labels[take] == -1]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            labels[fresh] = comp
            frontier = fresh
        comp += 1
    return comp, labels


def remove_isolated(W) -> tuple[CSRMatrix, np.ndarray]:
    """Drop zero-degree nodes from a similarity graph.

    Returns
    -------
    (W_sub, kept):
        The induced subgraph on non-isolated nodes (CSR) and the original
        indices of the kept nodes, so cluster labels can be scattered back
        (isolated nodes get their own singleton treatment downstream).
    """
    csr = W if isinstance(W, CSRMatrix) else W.to_csr()
    deg = csr.row_sums()
    kept = np.flatnonzero(deg > 0)
    if kept.size == csr.shape[0]:
        return csr, kept
    # remap: old index -> new index
    remap = np.full(csr.shape[0], -1, dtype=np.int64)
    remap[kept] = np.arange(kept.size)
    coo = csr.to_coo()
    mask = (remap[coo.row] >= 0) & (remap[coo.col] >= 0)
    sub = COOMatrix(
        remap[coo.row[mask]],
        remap[coo.col[mask]],
        coo.data[mask],
        (kept.size, kept.size),
        check=False,
    )
    return sub.to_csr(), kept
