"""Incremental edge deltas on a fitted similarity graph.

:func:`apply_edge_delta` turns an (edges_added, edges_removed) pair into
a new host CSR plus the symmetrized COO delta triple and the old/new
degree vectors — everything :meth:`FittedSpectralModel.apply_delta`
needs to price the device patch and evaluate the Weyl drift bound
without ever re-running graph construction.

The delta semantics mirror ``from_edge_list(symmetrize=True)``: each
undirected edge (i, j) contributes both (i, j) and (j, i); adding an
edge that already exists accumulates its weight; removing an edge
cancels the *entire current* weight of that entry (removals of absent
edges are an error — they indicate a stale caller view of the graph).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def _as_edge_array(edges, n: int, what: str) -> np.ndarray:
    e = np.asarray(edges, dtype=np.int64)
    if e.size == 0:
        return e.reshape(0, 2)
    if e.ndim != 2 or e.shape[1] != 2:
        raise GraphConstructionError(
            f"{what} must be an (m, 2) array of vertex pairs, got shape {e.shape}"
        )
    if e.min() < 0 or e.max() >= n:
        raise GraphConstructionError(
            f"{what} references vertex outside [0, {n}): "
            f"found [{e.min()}, {e.max()}]"
        )
    if np.any(e[:, 0] == e[:, 1]):
        raise GraphConstructionError(f"{what} contains self-loops")
    return e


def _current_weights(W: CSRMatrix, edges: np.ndarray) -> np.ndarray:
    """Weight of each (i, j) entry in ``W`` (rows must be column-sorted,
    which every ``to_csr()`` product in this repo guarantees)."""
    out = np.zeros(edges.shape[0])
    for idx, (i, j) in enumerate(edges):
        lo, hi = W.indptr[i], W.indptr[i + 1]
        pos = lo + np.searchsorted(W.indices[lo:hi], j)
        if pos >= hi or W.indices[pos] != j:
            raise GraphConstructionError(
                f"edges_removed contains ({i}, {j}) which is not in the graph"
            )
        out[idx] = W.data[pos]
    return out


def apply_edge_delta(
    W: CSRMatrix,
    edges_added=None,
    weights_added=None,
    edges_removed=None,
):
    """Apply an undirected edge delta to the similarity graph ``W``.

    Parameters
    ----------
    W:
        Current symmetric similarity CSR (the fitted model's graph).
    edges_added:
        ``(m_a, 2)`` vertex pairs to add (or strengthen).
    weights_added:
        Positive weight per added edge; scalar broadcasts, default 1.0.
    edges_removed:
        ``(m_r, 2)`` vertex pairs whose entries are removed entirely.

    Returns
    -------
    (W_new, drows, dcols, dvals, deg_old, deg_new):
        The patched CSR plus the symmetrized COO delta (ΔW as it would
        ride H2D to patch the device-resident copy) and the degree
        vectors before/after — the drift bound's inputs.
    """
    n = W.shape[0]
    added = _as_edge_array(
        edges_added if edges_added is not None else [], n, "edges_added"
    )
    removed = _as_edge_array(
        edges_removed if edges_removed is not None else [], n, "edges_removed"
    )
    if added.shape[0] == 0 and removed.shape[0] == 0:
        raise GraphConstructionError("empty delta: nothing to add or remove")

    wa = np.broadcast_to(
        np.asarray(
            weights_added if weights_added is not None else 1.0, dtype=np.float64
        ),
        (added.shape[0],),
    )
    if added.shape[0] and np.any(wa <= 0):
        raise GraphConstructionError("weights_added must be positive")
    wr = -_current_weights(W, removed) if removed.shape[0] else np.zeros(0)

    # symmetrize: every undirected pair contributes both directions
    half_r = np.concatenate([added[:, 0], removed[:, 0]])
    half_c = np.concatenate([added[:, 1], removed[:, 1]])
    half_v = np.concatenate([wa, wr])
    drows = np.concatenate([half_r, half_c])
    dcols = np.concatenate([half_c, half_r])
    dvals = np.concatenate([half_v, half_v])
    # collapse duplicate pairs within the delta itself so the H2D triple
    # (and its ledger price) reflects what actually lands on the device
    delta = COOMatrix(drows, dcols, dvals, W.shape, check=False).sum_duplicates()
    drows, dcols, dvals = delta.row, delta.col, delta.data

    merged = W.add(delta.to_csr())
    # drop entries cancelled to (numerical) zero by removals
    keep = merged.data != 0.0
    if not np.all(keep):
        rows_kept = merged._rows()[keep]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows_kept, minlength=n), out=indptr[1:])
        merged = CSRMatrix(
            indptr, merged.indices[keep], merged.data[keep], W.shape, check=False
        )

    deg_old = W.row_sums()
    deg_new = merged.row_sums()
    return merged, drows, dcols, dvals, deg_old, deg_new
