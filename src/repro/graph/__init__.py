"""Similarity-graph construction (paper §IV.A) and Laplacian operators (§IV.B).

* :mod:`repro.graph.similarity` — the three similarity measures of Eqs. 6-8
  (cosine, cross-correlation, exponential decay);
* :mod:`repro.graph.neighbors` — ε-distance and k-nearest-neighbor edge
  enumeration (uniform-grid spatial index for volumetric data, blockwise
  brute force in general dimension);
* :mod:`repro.graph.build` — Algorithm 1: the GPU similarity-matrix
  builder producing a COO graph, plus the host reference path;
* :mod:`repro.graph.laplacian` — Algorithm 2: degree computation and
  ``D⁻¹W`` / ``D^{-1/2} W D^{-1/2}`` scaling on device and host;
* :mod:`repro.graph.components` — connected components / isolated-node
  handling (the paper removes isolated nodes before the eigensolver).
"""

from repro.graph.similarity import (
    cosine_similarity,
    cross_correlation,
    exp_decay,
    pairwise_similarity,
)
from repro.graph.neighbors import (
    epsilon_neighbors,
    epsilon_neighbors_grid,
    knn_neighbors,
)
from repro.graph.build import (
    build_similarity_graph,
    build_similarity_device,
    threshold_graph,
)
from repro.graph.laplacian import (
    degrees,
    device_rw_normalize,
    device_shifted_laplacian,
    device_sym_normalize,
    laplacian,
    rw_normalized_adjacency,
    sym_normalized_adjacency,
)
from repro.graph.components import connected_components, remove_isolated
from repro.graph.delta import apply_edge_delta

__all__ = [
    "apply_edge_delta",
    "cosine_similarity",
    "cross_correlation",
    "exp_decay",
    "pairwise_similarity",
    "epsilon_neighbors",
    "epsilon_neighbors_grid",
    "knn_neighbors",
    "build_similarity_graph",
    "build_similarity_device",
    "threshold_graph",
    "degrees",
    "device_rw_normalize",
    "device_shifted_laplacian",
    "device_sym_normalize",
    "laplacian",
    "rw_normalized_adjacency",
    "sym_normalized_adjacency",
    "connected_components",
    "remove_isolated",
]
