"""Neighborhood enumeration: ε-distance and k-nearest-neighbor edge lists.

The DTI experiment's edge list ("all pairs of voxels within 4 mm") comes
from positions on a regular 3-D grid, for which a uniform-grid spatial index
enumerates candidate pairs in O(n · c) rather than O(n²)
(:func:`epsilon_neighbors_grid`).  For general high-dimensional data a
blockwise brute-force sweep is provided; both return deduplicated
``i < j`` pairs.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError


def _as_points(P: np.ndarray) -> np.ndarray:
    P = np.asarray(P, dtype=np.float64)
    if P.ndim != 2:
        raise GraphConstructionError(f"points must be 2-D (n, d), got {P.shape}")
    return P


def epsilon_neighbors(
    P: np.ndarray, eps: float, block: int = 1024, include_equal: bool = True
) -> np.ndarray:
    """All pairs ``i < j`` with ``||P_i - P_j|| <= eps`` (brute force, blocked).

    Parameters
    ----------
    P:
        ``(n, d)`` spatial positions.
    eps:
        Distance threshold (inclusive when ``include_equal``).
    block:
        Row-block size bounding the temporary distance tile to
        ``block × n`` — the cache-friendly sweep the optimization guide
        prescribes instead of an ``n × n`` allocation.
    """
    P = _as_points(P)
    if eps < 0:
        raise GraphConstructionError(f"eps must be non-negative, got {eps}")
    n = P.shape[0]
    sq_norms = np.einsum("nd,nd->n", P, P)
    eps2 = eps * eps
    out: list[np.ndarray] = []
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        # squared distances of rows [lo, hi) against all later points
        d2 = (
            sq_norms[lo:hi, None]
            + sq_norms[None, :]
            - 2.0 * (P[lo:hi] @ P.T)
        )
        if include_equal:
            mask = d2 <= eps2 + 1e-12
        else:
            mask = d2 < eps2 - 1e-12
        ii, jj = np.nonzero(mask)
        ii = ii + lo
        keep = ii < jj  # dedupe + drop self pairs
        if np.any(keep):
            out.append(np.column_stack([ii[keep], jj[keep]]))
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(out).astype(np.int64)


def epsilon_neighbors_grid(P: np.ndarray, eps: float) -> np.ndarray:
    """ε-pairs via a uniform grid of cell size ε (low-dimensional points).

    Bins points into cells, then tests only pairs from each cell against
    its 3^d neighborhood — linear in n for bounded density.  Intended for
    the 3-D voxel grids of the DTI workload; raises for d > 4 where the
    3^d blowup loses to brute force.
    """
    P = _as_points(P)
    n, d = P.shape
    if eps <= 0:
        raise GraphConstructionError(f"grid search needs eps > 0, got {eps}")
    if d > 4:
        raise GraphConstructionError(
            f"grid index is for low dimension (d <= 4), got d={d}; "
            "use epsilon_neighbors"
        )
    if n == 0:
        return np.empty((0, 2), dtype=np.int64)
    cells = np.floor((P - P.min(axis=0)) / eps).astype(np.int64)
    dims = cells.max(axis=0) + 1
    # linearized cell ids
    strides = np.cumprod(np.concatenate(([1], dims[:-1])))
    cell_id = cells @ strides
    order = np.argsort(cell_id, kind="stable")
    sorted_ids = cell_id[order]
    uniq, starts = np.unique(sorted_ids, return_index=True)
    ends = np.concatenate([starts[1:], [n]])
    cell_members = {int(c): order[s:e] for c, s, e in zip(uniq, starts, ends)}

    # neighbor cell offsets with positive linear displacement (dedupe cells)
    offsets = np.stack(
        np.meshgrid(*([np.arange(-1, 2)] * d), indexing="ij"), axis=-1
    ).reshape(-1, d)
    off_lin = offsets @ strides
    offsets = offsets[off_lin >= 0]
    off_lin = off_lin[off_lin >= 0]

    eps2 = eps * eps
    pairs: list[np.ndarray] = []
    for c, members in cell_members.items():
        for dl in off_lin:
            other = members if dl == 0 else cell_members.get(c + int(dl))
            if other is None:
                continue
            ii = np.repeat(members, other.size)
            jj = np.tile(other, members.size)
            if dl == 0:
                keep = ii < jj
                ii, jj = ii[keep], jj[keep]
            if ii.size == 0:
                continue
            diff = P[ii] - P[jj]
            d2 = np.einsum("ed,ed->e", diff, diff)
            ok = d2 <= eps2 + 1e-12
            if np.any(ok):
                lo = np.minimum(ii[ok], jj[ok])
                hi = np.maximum(ii[ok], jj[ok])
                pairs.append(np.column_stack([lo, hi]))
    if not pairs:
        return np.empty((0, 2), dtype=np.int64)
    allp = np.concatenate(pairs)
    # neighbor-cell enumeration can emit a pair once per shared offset; dedupe
    key = allp[:, 0] * n + allp[:, 1]
    _, first = np.unique(key, return_index=True)
    return allp[np.sort(first)].astype(np.int64)


def knn_neighbors(
    X: np.ndarray, k: int, metric: str = "euclidean", block: int = 1024
) -> np.ndarray:
    """Symmetric k-nearest-neighbor pairs (paper's kNN graph definition:
    connect ``i`` and ``j`` if either is among the other's k nearest).

    Returns deduplicated ``i < j`` pairs.
    """
    X = _as_points(X)
    n = X.shape[0]
    if not 0 < k < n:
        raise GraphConstructionError(f"need 0 < k < n, got k={k}, n={n}")
    if metric not in ("euclidean", "cosine"):
        raise GraphConstructionError(f"unknown metric {metric!r}")
    if metric == "cosine":
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        X = X / np.where(norms > 0, norms, 1.0)
    sq = np.einsum("nd,nd->n", X, X)
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        d2 = sq[lo:hi, None] + sq[None, :] - 2.0 * (X[lo:hi] @ X.T)
        np.put_along_axis(
            d2, np.arange(lo, hi)[:, None] - 0, np.inf, axis=1
        )  # mask self-distances
        nn = np.argpartition(d2, kth=k - 1, axis=1)[:, :k]
        rows.append(np.repeat(np.arange(lo, hi), k))
        cols.append(nn.ravel())
    i = np.concatenate(rows)
    j = np.concatenate(cols)
    lo_ = np.minimum(i, j)
    hi_ = np.maximum(i, j)
    key = lo_ * n + hi_
    _, first = np.unique(key, return_index=True)
    return np.column_stack([lo_[first], hi_[first]]).astype(np.int64)
