"""Similarity measures between data points (paper Eqs. 6-8).

Host reference implementations, vectorized over an edge list: given
``X (n, d)`` and pairs ``(i, j)``, each function returns the per-pair
similarity.  The device path (Algorithm 1) lives in
:mod:`repro.graph.build` and must agree with these to rounding error —
a property test enforces it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphConstructionError

#: available similarity measures, name -> callable(X, pairs, **kw)
MEASURES = {}


def _register(name):
    def deco(fn):
        MEASURES[name] = fn
        return fn

    return deco


def _check(X: np.ndarray, pairs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    pairs = np.asarray(pairs, dtype=np.int64)
    if X.ndim != 2:
        raise GraphConstructionError(f"X must be 2-D (n, d), got {X.shape}")
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise GraphConstructionError(f"pairs must be (nnz, 2), got {pairs.shape}")
    if pairs.size and (pairs.min() < 0 or pairs.max() >= X.shape[0]):
        raise GraphConstructionError(
            f"pair index out of range [0, {X.shape[0]})"
        )
    return X, pairs


@_register("cosine")
def cosine_similarity(X: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Eq. 6: ``<x_i, x_j> / (||x_i|| ||x_j||)`` per pair.

    Pairs touching an all-zero row get similarity 0 (no direction defined).
    """
    X, pairs = _check(X, pairs)
    norms = np.linalg.norm(X, axis=1)
    i, j = pairs[:, 0], pairs[:, 1]
    dots = np.einsum("ed,ed->e", X[i], X[j])
    denom = norms[i] * norms[j]
    out = np.zeros(pairs.shape[0])
    ok = denom > 0
    out[ok] = dots[ok] / denom[ok]
    return out


@_register("crosscorr")
def cross_correlation(X: np.ndarray, pairs: np.ndarray) -> np.ndarray:
    """Eq. 7: the Pearson correlation of the mean-centered rows.

    This is the measure the DTI experiment uses.  Pairs touching a
    constant row (zero variance) get similarity 0.
    """
    X, pairs = _check(X, pairs)
    Xc = X - X.mean(axis=1, keepdims=True)
    norms = np.linalg.norm(Xc, axis=1)
    i, j = pairs[:, 0], pairs[:, 1]
    dots = np.einsum("ed,ed->e", Xc[i], Xc[j])
    denom = norms[i] * norms[j]
    out = np.zeros(pairs.shape[0])
    ok = denom > 0
    out[ok] = dots[ok] / denom[ok]
    return out


@_register("expdecay")
def exp_decay(X: np.ndarray, pairs: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Eq. 8: the Gaussian kernel ``exp(-||x_i - x_j||² / (2σ²))``.

    (The paper's Eq. 8 omits the minus sign — an obvious typo; a decaying
    similarity requires it, and the standard RBF kernel is reproduced here.)
    """
    if sigma <= 0:
        raise GraphConstructionError(f"sigma must be positive, got {sigma}")
    X, pairs = _check(X, pairs)
    diff = X[pairs[:, 0]] - X[pairs[:, 1]]
    sq = np.einsum("ed,ed->e", diff, diff)
    return np.exp(-sq / (2.0 * sigma * sigma))


def pairwise_similarity(
    X: np.ndarray, pairs: np.ndarray, measure: str = "crosscorr", **kwargs
) -> np.ndarray:
    """Dispatch on a named measure (the host reference path)."""
    try:
        fn = MEASURES[measure]
    except KeyError:
        raise GraphConstructionError(
            f"unknown measure {measure!r}; expected one of {sorted(MEASURES)}"
        ) from None
    return fn(X, pairs, **kwargs)
