"""Algorithm 1: parallel construction of the sparse similarity matrix.

The device path mirrors the paper's three kernels:

1. ``compute_average`` — thread *i* computes the mean of data row *i*;
2. ``update_data``     — thread *i* centers row *i* and computes its norm;
3. ``compute_similarity`` — thread *e* computes the similarity of edge
   *e*'s endpoint pair.

The edge list plus the value vector form the graph in COO format, resident
on the device and ready for Algorithm 2.  The cosine and exponential-decay
measures reuse the same structure (centering skipped / distances instead),
so the whole preprocessing family is covered by one builder.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.device import Device
from repro.cuda.kernel import Kernel, launch
from repro.cuda.launch import grid_1d
from repro.cuda.memory import BufferGroup
from repro.cusparse.matrices import DeviceCOO
from repro.errors import GraphConstructionError
from repro.graph.similarity import pairwise_similarity
from repro.sparse.coo import COOMatrix
from repro.sparse.construct import from_edge_list

# ---------------------------------------------------------------------------
# Algorithm 1 kernels
# ---------------------------------------------------------------------------

compute_average = Kernel(
    name="compute_average",
    body=lambda tid, X, avg: avg.__setitem__(tid, X[tid].mean(axis=1)),
    cost=lambda nt, X, avg: (X[:nt].size, X[:nt].nbytes + avg.nbytes),
    kind="stream",
)

def _update_data_body(tid, X, avg, norm):
    X[tid] -= avg[tid, None]
    norm[tid] = np.sqrt(np.einsum("nd,nd->n", X[tid], X[tid]))

update_data = Kernel(
    name="update_data",
    body=_update_data_body,
    cost=lambda nt, X, avg, norm: (
        3.0 * X[:nt].size,
        2.0 * X[:nt].nbytes + avg.nbytes + norm.nbytes,
    ),
    kind="stream",
)

def _compute_similarity_body(tid, X, norm, src, dst, val):
    i = src[tid]
    j = dst[tid]
    dots = np.einsum("ed,ed->e", X[i], X[j])
    denom = norm[i] * norm[j]
    out = np.zeros(tid.size)
    ok = denom > 0
    out[ok] = dots[ok] / denom[ok]
    val[tid] = out

compute_similarity = Kernel(
    name="compute_similarity",
    body=_compute_similarity_body,
    cost=lambda nt, X, norm, src, dst, val: (
        2.0 * nt * X.shape[1],
        2.0 * nt * X.shape[1] * X.itemsize + nt * 24.0,
    ),
    kind="stream",
)

def _compute_expdecay_body(tid, X, src, dst, sigma, val):
    diff = X[src[tid]] - X[dst[tid]]
    val[tid] = np.exp(-np.einsum("ed,ed->e", diff, diff) / (2.0 * sigma * sigma))

compute_expdecay = Kernel(
    name="compute_expdecay",
    body=_compute_expdecay_body,
    cost=lambda nt, X, src, dst, sigma, val: (
        3.0 * nt * X.shape[1],
        2.0 * nt * X.shape[1] * X.itemsize + nt * 24.0,
    ),
    kind="stream",
)


def build_similarity_device(
    device: Device,
    X: np.ndarray,
    edges: np.ndarray,
    measure: str = "crosscorr",
    sigma: float = 1.0,
    block: int = 256,
    drop_nonpositive: bool = True,
    edge_chunk: int | None = None,
) -> DeviceCOO:
    """Algorithm 1 on the simulated device.

    Parameters
    ----------
    X:
        Host data points ``(n, d)``; transferred to the device (step 1).
    edges:
        ``(nnz, 2)`` index pairs with ``i < j`` (an undirected edge list
        as the DTI preprocessing provides); the output contains each edge
        mirrored so the COO matrix is symmetric.
    measure:
        'crosscorr' (Eq. 7, the paper's choice), 'cosine' (Eq. 6, skips
        centering), or 'expdecay' (Eq. 8).
    drop_nonpositive:
        Remove edges whose similarity is ≤ 0 — correlation graphs must be
        non-negatively weighted for the Laplacian machinery to apply.
    edge_chunk:
        Edges staged on the device at once.  ``None`` auto-sizes: the full
        list when its three device arrays fit in a quarter of free memory,
        otherwise chunked uploads — each chunk's ``compute_similarity``
        launch overlaps with host-side staging on real hardware, and the
        resident working set never exceeds one chunk.  Chunking changes
        transfer granularity, never values.

    Returns
    -------
    DeviceCOO:
        The symmetric similarity matrix in COO, resident on the device
        and sorted by (row, col) — ready for ``cusparseXcoo2csr``.
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    edges = np.asarray(edges, dtype=np.int64)
    if X.ndim != 2:
        raise GraphConstructionError(f"X must be (n, d), got {X.shape}")
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphConstructionError(f"edges must be (nnz, 2), got {edges.shape}")
    n, d = X.shape
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise GraphConstructionError(f"edge index out of range [0, {n})")
    if measure not in ("crosscorr", "cosine", "expdecay"):
        raise GraphConstructionError(f"unknown measure {measure!r}")

    nnz = edges.shape[0]
    tmp = BufferGroup()   # working buffers, always released
    out = BufferGroup()   # the returned COO arrays, released only on error
    with device.stage("similarity"):
      try:
        # step 1: transfer the input data
        dX = tmp.add(device.to_device(X))
        dnorm = tmp.add(device.empty(n, dtype=np.float64))

        # per-row preprocessing (steps 4-5)
        if measure == "crosscorr":
            davg = tmp.add(device.empty(n, dtype=np.float64))
            launch(compute_average, grid_1d(n, block), dX, davg, n_threads=n)
            launch(update_data, grid_1d(n, block), dX, davg, dnorm, n_threads=n)
            davg.free()
        elif measure == "cosine":
            dnorm.data[...] = np.sqrt(np.einsum("nd,nd->n", dX.data, dX.data))
            device.charge_kernel(
                "compute_norm", flops=2.0 * X.size,
                bytes_moved=X.nbytes + dnorm.nbytes,
            )

        # edge staging size: full list if it fits comfortably, else chunks
        if edge_chunk is None:
            need = nnz * 24  # src + dst + val
            budget = device.allocator.free_bytes // 4
            edge_chunk = nnz if need <= budget else max(1, budget // 24)
        elif edge_chunk < 1:
            raise GraphConstructionError(
                f"edge_chunk must be positive, got {edge_chunk}"
            )
        edge_chunk = max(1, min(edge_chunk, max(nnz, 1)))

        # step 6: one thread per edge, chunk by chunk
        val = np.empty(nnz)
        for lo in range(0, nnz, edge_chunk):
            hi = min(nnz, lo + edge_chunk)
            c = hi - lo
            dsrc = tmp.add(device.to_device(edges[lo:hi, 0]))
            ddst = tmp.add(device.to_device(edges[lo:hi, 1]))
            dval = tmp.add(device.empty(c, dtype=np.float64))
            if measure == "expdecay":
                launch(
                    compute_expdecay, grid_1d(c, block),
                    dX, dsrc, ddst, sigma, dval, n_threads=c,
                )
            else:
                launch(
                    compute_similarity, grid_1d(c, block),
                    dX, dnorm, dsrc, ddst, dval, n_threads=c,
                )
            val[lo:hi] = dval.data
            dsrc.free()
            ddst.free()
            dval.free()
        dnorm.free()
        dX.free()  # the (centered) data is no longer needed on the device

        # step 7: symmetrize (mirror each i<j edge) and sort by (row, col);
        # on the GPU this is a thrust sort over the doubled edge list.
        src = edges[:, 0]
        dst = edges[:, 1]
        if drop_nonpositive and measure != "expdecay":
            keep = val > 0
            src, dst, val = src[keep], dst[keep], val[keep]
        row = np.concatenate([src, dst])
        col = np.concatenate([dst, src])
        v2 = np.concatenate([val, val])
        order = np.argsort(row * n + col, kind="stable")
        device.timeline.record(
            "thrust::sort_by_key[edges]", "kernel", device.cost.sort_time(row.size)
        )
        drow = out.add(device.empty(row.size, dtype=np.int64))
        drow.data[...] = row[order]
        dcol = out.add(device.empty(col.size, dtype=np.int64))
        dcol.data[...] = col[order]
        dv = out.add(device.empty(v2.size, dtype=np.float64))
        dv.data[...] = v2[order]
        device.charge_kernel(
            "symmetrize_edges", flops=row.size, bytes_moved=3 * row.size * 8 * 2
        )
      except BaseException:
        out.free_all()
        raise
      finally:
        tmp.free_all()
    return DeviceCOO(row=drow, col=dcol, val=dv, shape=(n, n))


def build_similarity_graph(
    X: np.ndarray,
    edges: np.ndarray,
    measure: str = "crosscorr",
    sigma: float = 1.0,
    drop_nonpositive: bool = True,
) -> COOMatrix:
    """Host reference of Algorithm 1: same inputs, a host COO matrix out."""
    edges = np.asarray(edges, dtype=np.int64)
    if measure == "expdecay":
        val = pairwise_similarity(X, edges, measure, sigma=sigma)
    else:
        val = pairwise_similarity(X, edges, measure)
    if drop_nonpositive and measure != "expdecay":
        keep = val > 0
        edges, val = edges[keep], val[keep]
    n = np.asarray(X).shape[0]
    return from_edge_list(edges, weights=val, n_nodes=n, symmetrize=True)


def threshold_graph(
    X: np.ndarray,
    lam: float,
    measure: str = "crosscorr",
    block: int = 1024,
) -> COOMatrix:
    """The λ-threshold graph of §IV.A: connect pairs whose similarity
    exceeds ``lam`` (dense sweep, blocked; for moderate n)."""
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    for lo in range(0, n, block):
        hi = min(n, lo + block)
        pairs_i = np.repeat(np.arange(lo, hi), n)
        pairs_j = np.tile(np.arange(n), hi - lo)
        keep = pairs_i < pairs_j
        pairs = np.column_stack([pairs_i[keep], pairs_j[keep]])
        if pairs.size == 0:
            continue
        sim = pairwise_similarity(X, pairs, measure)
        mask = sim > lam
        rows.append(pairs[mask, 0])
        cols.append(pairs[mask, 1])
        vals.append(sim[mask])
    if not rows:
        return COOMatrix(
            np.empty(0, np.int64), np.empty(0, np.int64), np.empty(0), (n, n)
        )
    edges = np.column_stack([np.concatenate(rows), np.concatenate(cols)])
    return from_edge_list(
        edges, weights=np.concatenate(vals), n_nodes=n, symmetrize=True
    )
