"""Graph Laplacians and Algorithm 2: parallel computation of ``D⁻¹W``.

The eigenvectors for the smallest k eigenvalues of the normalized
Laplacian ``L_n = I - D⁻¹W`` are exactly the eigenvectors for the
*largest* k eigenvalues of ``D⁻¹W`` (paper §IV.B), so the device path
prepares ``D⁻¹W`` in CSR:

1. a ones-vector is multiplied through the similarity matrix to get the
   degree vector (one ``cusparse`` SpMV);
2. the ``ScaleElements`` kernel divides each COO value by the degree of its
   row;
3. ``cusparseXcoo2csr`` compresses the row indices.

Because ``D⁻¹W`` is not symmetric, while the Lanczos machinery requires a
symmetric operator, the pipeline by default works with the *symmetrically*
normalized ``D^{-1/2} W D^{-1/2}`` — similar to ``D⁻¹W`` (identical
eigenvalues; eigenvectors map through ``D^{-1/2}``), and exactly the
generalized eigenvectors of ``L x = λ D x`` that minimize NCut.  Both
scalings are provided.
"""

from __future__ import annotations

import numpy as np

from repro.cuda.device import Device
from repro.cuda.kernel import Kernel, launch
from repro.cuda.launch import grid_1d
from repro.cuda.memory import BufferGroup
from repro.cusparse.conversions import coo2csr
from repro.cusparse.matrices import DeviceCOO, DeviceCSR
from repro.cusparse.spmv import coomv
from repro.errors import GraphConstructionError
from repro.sparse import ops as sparse_ops
from repro.sparse.construct import diags
from repro.sparse.csr import CSRMatrix

# ---------------------------------------------------------------------------
# host path
# ---------------------------------------------------------------------------


def degrees(W) -> np.ndarray:
    """Degree vector ``D_ii = sum_j W_ij`` for any sparse format."""
    return sparse_ops.row_sums(W)


def _check_degrees(d: np.ndarray, allow_isolated: bool) -> None:
    if np.any(d < 0):
        raise GraphConstructionError(
            "negative degrees: similarity matrix must be non-negative"
        )
    if not allow_isolated and np.any(d == 0):
        isolated = int(np.count_nonzero(d == 0))
        raise GraphConstructionError(
            f"{isolated} isolated nodes (zero degree); remove them first "
            "(repro.graph.remove_isolated) — the paper assumes all D_ii > 0"
        )


def rw_normalized_adjacency(W, allow_isolated: bool = False) -> CSRMatrix:
    """``P = D⁻¹ W`` (random-walk normalization), host reference of Alg. 2."""
    d = degrees(W)
    _check_degrees(d, allow_isolated)
    inv = np.where(d > 0, 1.0 / np.where(d > 0, d, 1.0), 0.0)
    csr = W.to_csr() if not isinstance(W, CSRMatrix) else W
    return csr.scale_rows(inv)


def sym_normalized_adjacency(W, allow_isolated: bool = False) -> CSRMatrix:
    """``Ŵ = D^{-1/2} W D^{-1/2}`` — the symmetric twin of ``D⁻¹W``."""
    d = degrees(W)
    _check_degrees(d, allow_isolated)
    inv_sqrt = np.where(d > 0, 1.0 / np.sqrt(np.where(d > 0, d, 1.0)), 0.0)
    csr = W.to_csr() if not isinstance(W, CSRMatrix) else W
    return csr.scale_rows(inv_sqrt).scale_cols(inv_sqrt)


def laplacian(W, normalized: bool = False, allow_isolated: bool = True) -> CSRMatrix:
    """``L = D - W`` or the random-walk normalized ``L_n = I - D⁻¹W``."""
    d = degrees(W)
    _check_degrees(d, allow_isolated or not normalized)
    csr = W.to_csr() if not isinstance(W, CSRMatrix) else W
    if not normalized:
        return diags(d).add(csr.scaled(-1.0))
    inv = np.where(d > 0, 1.0 / np.where(d > 0, d, 1.0), 0.0)
    n = csr.shape[0]
    return diags(np.ones(n)).add(csr.scale_rows(inv).scaled(-1.0))


# ---------------------------------------------------------------------------
# device path (Algorithm 2)
# ---------------------------------------------------------------------------

def _scale_elements_body(tid, row, val, inv_deg):
    val[tid] *= inv_deg[row[tid]]

scale_elements = Kernel(
    name="ScaleElements",
    body=_scale_elements_body,
    cost=lambda nt, row, val, inv_deg: (nt, nt * 24.0),
    kind="gather",
)

def _scale_elements_sym_body(tid, row, col, val, inv_sqrt):
    val[tid] *= inv_sqrt[row[tid]] * inv_sqrt[col[tid]]

scale_elements_sym = Kernel(
    name="ScaleElementsSym",
    body=_scale_elements_sym_body,
    cost=lambda nt, row, col, val, inv_sqrt: (2.0 * nt, nt * 32.0),
    kind="gather",
)


def _device_degrees(W: DeviceCOO) -> "np.ndarray":
    """Steps 1-2 of Algorithm 2: y = W @ 1 on the device; returns the
    device vector of degrees."""
    dev = W.device
    n = W.shape[0]
    ones = dev.full(n, 1.0)
    try:
        y = coomv(W, ones)
    finally:
        ones.free()
    return y


def device_rw_normalize(W: DeviceCOO, allow_isolated: bool = False) -> DeviceCSR:
    """Algorithm 2 verbatim: ``D⁻¹W`` in CSR on the device."""
    dev = W.device
    with dev.stage("laplacian"):
        bufs = BufferGroup()
        try:
            y = bufs.add(_device_degrees(W))
            d = y.data
            _check_degrees(d, allow_isolated)
            inv = bufs.add(dev.empty(d.size, dtype=np.float64))
            inv.data[...] = np.where(d > 0, 1.0 / np.where(d > 0, d, 1.0), 0.0)
            dev.charge_kernel("reciprocal", flops=d.size, bytes_moved=2 * d.size * 8)
            # step 3: scale each COO item by the inverse degree of its row
            launch(
                scale_elements, grid_1d(W.nnz, 256), W.row, W.val, inv,
                n_threads=W.nnz,
            )
            # steps 4-5: compress row indices
            csr = coo2csr(W)
        finally:
            bufs.free_all()
    return csr


def device_shifted_laplacian(
    W: DeviceCOO, allow_isolated: bool = True
) -> tuple[DeviceCSR, float]:
    """Build ``cI - L = cI - D + W`` on the device, with ``c = 2·max(d)``.

    The RatioCut relaxation needs the *smallest* eigenvectors of the
    unnormalized ``L = D - W``; Lanczos converges far better to extremal
    *largest* eigenvalues, so the pipeline iterates with the spectrum
    flipped by a Gershgorin-safe shift: eigenvalues of ``L`` lie in
    ``[0, 2·max(d)]``, hence ``cI - L`` is PSD with the wanted vectors on
    top.  Returns the device CSR and the shift ``c`` (so callers can map
    Ritz values back via ``λ(L) = c - θ``).
    """
    dev = W.device
    with dev.stage("laplacian"):
        bufs = BufferGroup()
        try:
            y = bufs.add(_device_degrees(W))
            d = y.data
            _check_degrees(d, allow_isolated)
            c = 2.0 * float(d.max()) if d.size else 0.0
            dev._record_d2h(8)
            n = W.shape[0]
            # append the diagonal (c - d_i) to the off-diagonal +W entries
            row = np.concatenate([W.row.data, np.arange(n, dtype=np.int64)])
            col = np.concatenate([W.col.data, np.arange(n, dtype=np.int64)])
            val = np.concatenate([W.val.data, c - d])
            order = np.argsort(row * n + col, kind="stable")
            drow = bufs.add(dev.empty(row.size, dtype=np.int64))
            drow.data[...] = row[order]
            dcol = bufs.add(dev.empty(col.size, dtype=np.int64))
            dcol.data[...] = col[order]
            dval = bufs.add(dev.empty(val.size, dtype=np.float64))
            dval.data[...] = val[order]
            dev.timeline.record(
                "thrust::sort_by_key[shifted_laplacian]", "kernel",
                dev.cost.sort_time(row.size),
            )
            shifted = DeviceCOO(row=drow, col=dcol, val=dval, shape=W.shape)
            csr = coo2csr(shifted)
        finally:
            # releases y and the intermediate shifted COO (drow/dcol/dval)
            # on success and on any faulted sub-step alike
            bufs.free_all()
    return csr, c


def device_sym_normalize(W: DeviceCOO, allow_isolated: bool = False) -> DeviceCSR:
    """Algorithm 2 with symmetric scaling: ``D^{-1/2} W D^{-1/2}`` in CSR.

    Returns the operator the hybrid eigensolver iterates with by default;
    ``d^{-1/2}`` is recoverable from the degrees for the back-mapping of
    eigenvectors (done host-side in the pipeline).
    """
    dev = W.device
    with dev.stage("laplacian"):
        bufs = BufferGroup()
        try:
            y = bufs.add(_device_degrees(W))
            d = y.data
            _check_degrees(d, allow_isolated)
            inv_sqrt = bufs.add(dev.empty(d.size, dtype=np.float64))
            inv_sqrt.data[...] = np.where(
                d > 0, 1.0 / np.sqrt(np.where(d > 0, d, 1.0)), 0.0
            )
            dev.charge_kernel("rsqrt", flops=2.0 * d.size, bytes_moved=2 * d.size * 8)
            launch(
                scale_elements_sym, grid_1d(W.nnz, 256),
                W.row, W.col, W.val, inv_sqrt,
                n_threads=W.nnz,
            )
            csr = coo2csr(W)
        finally:
            bufs.free_all()
    return csr
