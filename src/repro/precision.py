"""Storage-precision registry for the mixed-precision solver path.

The cost model prices *bytes*, and the eigensolver's hot loop is
bandwidth-bound SpMV — so halving or quartering the storage width of the
operator values and iteration vectors is a raw-speed lever (Sgherzi et
al., *A Mixed Precision, Multi-GPU Design for Large-scale Top-K Sparse
Eigenproblems*).  The numerical contract everywhere in the repo is:

* **storage** may be fp64, fp32 or fp16 — values and vectors live on the
  (simulated) device at that width, and every byte charge derives from
  the array's real ``itemsize``;
* **accumulation** is always fp64 — operands are upcast before the
  multiply-reduce, so a reduced-precision product differs from the exact
  one only by the *quantization* of its inputs and output, never by a
  low-precision accumulator;
* ``precision="fp64"`` is the exact path: :func:`as_f64` and
  :func:`quantize` return their argument untouched for float64 input, so
  the fp64 pipeline executes bit-identically to a build without the
  precision axis.

:func:`value_nbytes` is the single itemsize-driven byte helper the
ledger, the partitioner and the charge functions use instead of
hand-written ``* 8`` arithmetic.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError

#: supported storage precisions, widest first
PRECISIONS = ("fp64", "fp32", "fp16")

#: precision name -> numpy storage dtype
PRECISION_DTYPES = {
    "fp64": np.dtype(np.float64),
    "fp32": np.dtype(np.float32),
    "fp16": np.dtype(np.float16),
}

#: cuSPARSE/cuBLAS kernel-name letter per storage width (D/S/H convention)
KERNEL_LETTERS = {8: "D", 4: "S", 2: "H"}

#: convergence floor per precision: asking a reduced-storage Lanczos
#: iteration for residuals below its quantization noise just burns
#: matvecs, so the solver clamps ``tol`` here and lets the fp64
#: iterative-refinement step recover the remaining digits.
TOL_FLOORS = {"fp64": 0.0, "fp32": 1e-5, "fp16": 1e-2}


def resolve_precision(precision: str) -> np.dtype:
    """Validate a precision name and return its storage dtype."""
    try:
        return PRECISION_DTYPES[precision]
    except KeyError:
        raise ClusteringError(
            f"precision must be one of {PRECISIONS}, got {precision!r}"
        ) from None


def precision_of(dtype) -> str:
    """The precision name of a storage dtype (``'fp64'`` for float64)."""
    dt = np.dtype(dtype)
    for name, cand in PRECISION_DTYPES.items():
        if cand == dt:
            return name
    raise ClusteringError(f"no precision name for dtype {dt}")


def itemsize(precision: str) -> int:
    """Bytes per element at the given storage precision."""
    return resolve_precision(precision).itemsize


def value_nbytes(count: int | float, dtype_or_itemsize) -> int:
    """Bytes of ``count`` values at a storage width.

    The itemsize-driven replacement for scattered ``* 8`` byte
    arithmetic: accepts a dtype, an array (its dtype is used), or a raw
    itemsize integer.
    """
    if isinstance(dtype_or_itemsize, (int, np.integer)):
        width = int(dtype_or_itemsize)
    elif hasattr(dtype_or_itemsize, "dtype"):
        width = np.dtype(dtype_or_itemsize.dtype).itemsize
    else:
        width = np.dtype(dtype_or_itemsize).itemsize
    return int(count) * width


def kernel_letter(dtype_or_itemsize) -> str:
    """The D/S/H kernel-name letter for a storage width."""
    if isinstance(dtype_or_itemsize, (int, np.integer)):
        width = int(dtype_or_itemsize)
    else:
        width = np.dtype(dtype_or_itemsize).itemsize
    try:
        return KERNEL_LETTERS[width]
    except KeyError:
        raise ClusteringError(f"no kernel letter for itemsize {width}") from None


def as_f64(a: np.ndarray) -> np.ndarray:
    """fp64 view of an operand for accumulation.

    Returns the array itself when already float64 (the exact path runs
    the identical expression it always did); upcasts a copy otherwise.
    """
    if a.dtype == np.float64:
        return a
    return a.astype(np.float64)


def quantize(a: np.ndarray, dtype) -> np.ndarray:
    """Quantize a host array to a storage dtype (identity for float64)."""
    dt = np.dtype(dtype)
    if a.dtype == dt:
        return a
    return a.astype(dt)


def quantize_roundtrip(a: np.ndarray, dtype) -> np.ndarray:
    """fp64 array carrying the quantization error of a storage dtype."""
    dt = np.dtype(dtype)
    if dt == np.float64:
        return a
    return a.astype(dt).astype(np.float64)


def ritz_tolerance(dtype, n: int, scale: float = 1.0) -> float:
    """Theory-derived bound on Ritz-value perturbation from quantization.

    Storing the operator values and iteration vectors at unit roundoff
    ``eps`` perturbs the applied operator by ``E`` with ``||E||_2 <=
    c·eps·sqrt(n)·||A||_2`` (entrywise relative error amplified at most
    by the 2-norm/max-norm gap); Weyl's inequality then moves each
    eigenvalue by at most ``||E||_2``.  ``c`` absorbs the extra vector
    quantizations of the reverse-communication loop.
    """
    eps = float(np.finfo(np.dtype(dtype)).eps)
    return 64.0 * eps * float(np.sqrt(n)) * float(scale)
