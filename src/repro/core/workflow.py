"""Hybrid stage runners: the CPU/GPU split of Algorithm 3 with full time
accounting.

:func:`hybrid_eigensolver` is the heart of the paper: ARPACK-style reverse
communication runs on the (modeled) CPU while every sparse matrix-vector
product runs on the (simulated) GPU, with the iteration vector crossing the
PCIe bus twice per Lanczos step.  CPU phases are charged to the shared
timeline from the Xeon cost model:

* per Lanczos step — the ``TakeStep`` orthogonalization sweep, a
  memory-bound BLAS-2 pass over the current basis (``O(n·j)``);
* per restart — the m×m tridiagonal eigendecomposition + shift sweeps
  (``O(m³)``, LAPACK single-threaded) and the BLAS-3 basis update
  ``V <- V Q`` (``O(n·m·k)``, multithreaded OpenBLAS);
* at exit — ``FindEigenvectors`` (``O(n·m·k)`` BLAS-3), matching the
  complexity expression (10) of §IV.B.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.chaos.retry import DISABLED, ResiliencePolicy, TRANSIENT_ERRORS, with_retry
from repro.cuda.boundaries import mark_boundary
from repro.cuda.device import Device
from repro.cuda.memory import BufferGroup
from repro.cuda.stream import Stream
from repro.cusparse.formats import (
    autotune_format,
    autotune_spmm_format,
    convert_for_spmv,
)
from repro.cusparse.matrices import DeviceCSR, cast_csr
from repro.cusparse.partition import (
    PARTITION_MODES,
    PartitionedCSR,
    partition_csr,
    partition_rows,
    spmm_partitioned,
    spmv_partitioned,
)
from repro.cusparse.spmm import csrmm, spmm_any
from repro.cusparse.spmv import csrmv, spmv_any
from repro.errors import CudaError, DeviceMemoryError
from repro.hw.costmodel import CPUCostModel, TransferCostModel
from repro.hw.spec import CPUSpec, XEON_E5_2690
from repro.hw.topology import PCIeTopology, paper_topology
from repro.linalg.eigsolver import SymEigProblem
from repro.linalg.power import default_power_iterations, power_embedding
from repro.linalg.rci import LanczosCheckpoint, TransferLedger
from repro.linalg.refine import refine_eigenpairs
from repro.precision import (
    TOL_FLOORS,
    as_f64,
    kernel_letter,
    precision_of,
    quantize,
    quantize_roundtrip,
    resolve_precision,
)

#: iteration-vector placements for :func:`hybrid_eigensolver`
RESIDENCY_MODES = ("device", "host")
#: SpMV format requests (``"auto"`` = cost-model autotune over row stats)
SPMV_FORMAT_CHOICES = ("auto", "csr", "ell", "hyb")
#: embedding algorithms: full IRLM or the block power iteration of
#: Boutsidis et al. (q = O(log n) SpMMs, no restarts)
EMBEDDING_MODES = ("lanczos", "power")
#: fp64 refinement steps applied by default after a reduced-precision solve
DEFAULT_REFINE_STEPS = 2


@dataclass
class EigStats:
    """Counters from one hybrid eigensolver run.

    ``n_resumes``/``spmv_retries``/``fallback`` report resilience activity:
    checkpoint restarts after a device failure, recovered per-round-trip
    faults, and whether the solve finished on the host (``"cpu"``) instead
    of the device (``None``).  ``residency``/``spmv_format`` record the
    placement and format the solve actually ran with; the transfer counters
    (bytes moved, transfers elided, overlap) quantify what the GPU-resident
    path saved over the ship-the-vector-twice-per-step baseline.
    """

    n_op: int
    n_restarts: int
    n_reorth: int
    converged: bool
    m: int
    k: int
    pcie_round_trips: int
    wall_seconds: float
    n_resumes: int = 0
    spmv_retries: int = 0
    fallback: str | None = None
    residency: str = "host"
    spmv_format: str = "csr"
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    bytes_p2p: int = 0
    n_p2p: int = 0
    transfers_elided: int = 0
    bytes_elided: int = 0
    transfer_overlap_s: float = 0.0
    format_decision: dict | None = None
    n_devices: int = 1
    #: row-partitioning evidence when ``n_devices > 1`` (bounds, halo
    #: counts, per-step halo bytes, one-time shard distribution bytes)
    partition: dict | None = None
    #: storage precision of the operator values and iteration vectors
    precision: str = "fp64"
    #: embedding algorithm the solve ran ("lanczos" or "power")
    embedding: str = "lanczos"
    #: fp64 operator applications the refinement pass performed
    #: (``len(refine_history) - 1``: one for the measurement + in-span
    #: polish, one per subspace advance; 0 = the pass never ran)
    refine_steps: int = 0
    #: max relative eigen-residual after refinement (None = not measured;
    #: the exact fp64 path doesn't run the refinement pass)
    refine_residual: float | None = None
    #: per-step residual history of the refinement loop (monotone)
    refine_history: list | None = None
    #: modeled SpMV/SpMM device-memory bytes this solve moved (the
    #: roofline byte expressions, summed — the precision ablation's gate)
    spmv_bytes: float = 0.0
    #: summed simulated seconds of the SpMV/SpMM kernels themselves
    spmv_kernel_s: float = 0.0

    def as_dict(self) -> dict:
        return dict(
            n_op=self.n_op,
            n_restarts=self.n_restarts,
            n_reorth=self.n_reorth,
            converged=self.converged,
            m=self.m,
            k=self.k,
            pcie_round_trips=self.pcie_round_trips,
            wall_seconds=self.wall_seconds,
            n_resumes=self.n_resumes,
            spmv_retries=self.spmv_retries,
            fallback=self.fallback,
            residency=self.residency,
            spmv_format=self.spmv_format,
            bytes_h2d=self.bytes_h2d,
            bytes_d2h=self.bytes_d2h,
            bytes_p2p=self.bytes_p2p,
            n_p2p=self.n_p2p,
            transfers_elided=self.transfers_elided,
            bytes_elided=self.bytes_elided,
            transfer_overlap_s=self.transfer_overlap_s,
            format_decision=self.format_decision,
            n_devices=self.n_devices,
            partition=self.partition,
            precision=self.precision,
            embedding=self.embedding,
            refine_steps=self.refine_steps,
            refine_residual=self.refine_residual,
            refine_history=self.refine_history,
            spmv_bytes=self.spmv_bytes,
            spmv_kernel_s=self.spmv_kernel_s,
        )


def charge_takestep(
    device: Device, cpu: CPUCostModel, n: int, j_avg: float
) -> None:
    """Charge one reverse-communication ``TakeStep`` to the timeline.

    The step's dominant cost is the full-reorthogonalization sweep against
    the current basis: two passes of ``V_j @ w`` / ``w -= V_jᵀ h`` — a
    memory-bound read of ``2·j·n`` doubles on the host.
    """
    nbytes = 2.0 * j_avg * n * 8.0
    device.charge_cpu("TakeStep[reorth]", cpu.blas1_time(nbytes))


def charge_restart(
    device: Device, cpu: CPUCostModel, n: int, m: int, kp: int
) -> None:
    """Charge one implicit restart: T-eig + shift sweeps + basis update."""
    # dense tridiagonal eig of the m×m projected matrix (LAPACK, 1 thread)
    device.charge_cpu("dsteqr[T]", cpu.blas3_time(15.0 * m**3, threads=1))
    # p = m - kp implicit QR sweeps, O(m) rotations each over Q (m×m)
    device.charge_cpu(
        "qr_sweeps", cpu.blas3_time(6.0 * (m - kp) * m * m, threads=1)
    )
    # V <- V Q[:, :kp]: (n × m) @ (m × kp) BLAS-3, multithreaded OpenBLAS
    device.charge_cpu("basis_update[VQ]", cpu.blas3_time(2.0 * n * m * kp))


def charge_find_eigenvectors(
    device: Device, cpu: CPUCostModel, n: int, m: int, k: int
) -> None:
    """Charge the ``FindEigenvectors`` post-processing (dseupd analogue)."""
    device.charge_cpu("FindEigenvectors", cpu.blas3_time(2.0 * n * m * k))


def charge_takestep_device(
    device: Device, n: int, j_avg: float, itemsize: int = 8
) -> None:
    """Charge one ``TakeStep`` with the basis kept device-resident.

    The reorthogonalization sweep becomes two cuBLAS gemv launches over the
    on-device basis (project then update) instead of a host BLAS-2 pass —
    the same ``O(j·n)`` traffic, but at GPU stream bandwidth.  ``itemsize``
    is the basis storage width (reduced-precision solves keep the basis at
    fp32/fp16, so the sweep reads proportionally fewer bytes).
    """
    letter = kernel_letter(itemsize)
    flops = 2.0 * j_avg * n
    bytes_moved = (j_avg * n + 2.0 * n) * float(itemsize)
    device.charge_kernel(
        f"cublas{letter}gemv[proj]", flops, bytes_moved, kind="stream"
    )
    device.charge_kernel(
        f"cublas{letter}gemv[update]", flops, bytes_moved, kind="stream"
    )


def charge_restart_device(
    device: Device,
    cpu: CPUCostModel,
    copy_stream: Stream,
    n: int,
    m: int,
    kp: int,
    itemsize: int = 8,
) -> None:
    """Charge one implicit restart with a device-resident basis.

    Only ARPACK's small tridiagonal state crosses the bus: the ``2m``
    coefficients come down before the host runs ``dsteqr`` + the shift
    sweeps, and the ``m x kp`` rotation matrix streams back up on the copy
    engine *while* the host is still grinding — the H2D lands on the
    timeline overlapped with the CPU phases via the dedicated stream.  The
    basis update ``V <- V Q`` then runs as a cublas gemm on the device
    instead of host BLAS-3.  The two staging buffers cycle through the
    caching allocator every restart, so after the first restart they are
    free-list hits.

    ``itemsize`` is the basis storage width.  The staging buffers
    (``coef``/``qbuf``) are priced at the same width: ARPACK's host copy
    of the tridiagonal state stays fp64, but what crosses the bus is the
    device-side storage representation — the same convention
    :meth:`~repro.linalg.rci.TransferLedger.seed_h2d_bytes` uses, so the
    ledger's restart entries match the meters at every precision.
    """
    stage_dt = np.dtype(f"f{itemsize}")
    coef = device.empty(2 * m, dtype=stage_dt)
    qbuf = device.empty((m, kp), dtype=stage_dt)
    try:
        # pinned-host staging: the host needs alpha/beta before dsteqr
        device._record_d2h(coef.nbytes)
        t_host = device.timeline.clock.now
        device.charge_cpu("dsteqr[T]", cpu.blas3_time(15.0 * m**3, threads=1))
        device.charge_cpu(
            "qr_sweeps", cpu.blas3_time(6.0 * (m - kp) * m * m, threads=1)
        )
        # async H2D of Q, hidden behind the host-side restart math
        copy_stream.enqueue_h2d(qbuf.nbytes, ready_at=t_host)
        device.charge_kernel(
            f"cublas{kernel_letter(itemsize)}gemm[VQ]",
            flops=2.0 * n * m * kp,
            bytes_moved=(n * m + m * kp + 2.0 * n * kp) * float(itemsize),
            kind="dense",
        )
    finally:
        coef.free()
        qbuf.free()


def _sum_transfer_stats(devices: list[Device]) -> dict:
    """Aggregate :meth:`Device.transfer_stats` over a device group."""
    out: dict = {}
    for dev in devices:
        for key, val in dev.transfer_stats().items():
            out[key] = out.get(key, 0) + val
    return out


def charge_takestep_multi(
    devices: list[Device],
    row_counts: tuple[int, ...],
    j_avg: float,
    itemsize: int = 8,
) -> None:
    """Charge one ``TakeStep`` with the basis row-partitioned over devices.

    Each GPU runs the two reorthogonalization gemvs over its own basis
    block concurrently (laid at a common start on the shared timeline, so
    the step costs the makespan over devices).  The ``2j`` projection
    coefficients are per-step scalar state and stay elided, the same
    convention the single-device device-resident path uses for per-step
    coefficient traffic — only restart-boundary state crosses a bus.
    """
    timeline = devices[0].timeline
    t0 = timeline.clock.now
    letter = kernel_letter(itemsize)
    for d, dev in enumerate(devices):
        nd = int(row_counts[d])
        flops = 2.0 * j_avg * nd
        bytes_moved = (j_avg * nd + 2.0 * nd) * float(itemsize)
        dt_proj = dev.cost.kernel_time(flops, bytes_moved, kind="stream")
        timeline.record_at(
            f"cublas{letter}gemv[proj,dev{d}]", "kernel", t0, dt_proj
        )
        dt_upd = dev.cost.kernel_time(flops, bytes_moved, kind="stream")
        timeline.record_at(
            f"cublas{letter}gemv[update,dev{d}]", "kernel", t0 + dt_proj, dt_upd
        )
        dev.kernel_launches += 2


def charge_restart_multi(
    devices: list[Device],
    cpu: CPUCostModel,
    copy_streams: list[Stream],
    row_counts: tuple[int, ...],
    m: int,
    kp: int,
    itemsize: int = 8,
) -> None:
    """Charge one implicit restart with the basis sharded over devices.

    The ``2m`` tridiagonal coefficients allgather to the host from device
    0 (they are replicated scalar state), the host runs ``dsteqr`` + the
    shift sweeps once, and the ``m x kp`` rotation ``Q`` broadcasts to
    *every* device on its copy engine — each destination has its own bus
    link, so the copies land concurrently, hidden behind the host math.
    The basis update ``V <- V Q`` then runs as one gemm per device over
    its own row block, concurrent across devices.
    """
    primary = devices[0]
    timeline = primary.timeline
    stage_dt = np.dtype(f"f{itemsize}")
    coef = primary.empty(2 * m, dtype=stage_dt)
    qbuf = primary.empty((m, kp), dtype=stage_dt)
    try:
        primary._record_d2h(coef.nbytes)
        t_host = timeline.clock.now
        primary.charge_cpu("dsteqr[T]", cpu.blas3_time(15.0 * m**3, threads=1))
        primary.charge_cpu(
            "qr_sweeps", cpu.blas3_time(6.0 * (m - kp) * m * m, threads=1)
        )
        t_cpu_done = timeline.clock.now
        q_ready = []
        for cs in copy_streams:
            _, end = cs.enqueue_h2d(qbuf.nbytes, ready_at=t_host)
            q_ready.append(end)
        letter = kernel_letter(itemsize)
        for d, dev in enumerate(devices):
            nd = int(row_counts[d])
            dt = dev.cost.kernel_time(
                2.0 * nd * m * kp,
                (nd * m + m * kp + 2.0 * nd * kp) * float(itemsize),
                kind="dense",
            )
            timeline.record_at(
                f"cublas{letter}gemm[VQ,dev{d}]",
                "kernel",
                max(t_cpu_done, q_ready[d]),
                dt,
            )
            dev.kernel_launches += 1
    finally:
        coef.free()
        qbuf.free()


def hybrid_eigensolver(
    device: Device,
    A: DeviceCSR,
    k: int,
    m: int | None = None,
    tol: float = 0.0,
    maxiter: int | None = None,
    seed: int | None = 0,
    which: str = "LA",
    cpu_spec: CPUSpec = XEON_E5_2690,
    v0: np.ndarray | None = None,
    policy: ResiliencePolicy = DISABLED,
    residency: str = "device",
    spmv_format: str = "auto",
    n_devices: int = 1,
    precision: str = "fp64",
    embedding: str = "lanczos",
    refine_steps: int | None = None,
    power_q: int | None = None,
    partition_mode: str = "nnz",
    plan: PartitionedCSR | None = None,
    topology: PCIeTopology | None = None,
    elide_result_d2h: bool = False,
) -> tuple[np.ndarray, np.ndarray, EigStats]:
    """Algorithm 3: the reverse-communication loop with GPU SpMV.

    Parameters
    ----------
    device:
        The simulated GPU (owns the shared timeline).
    A:
        The device-resident operator in CSR (``D^{-1/2} W D^{-1/2}`` or
        ``D⁻¹W`` from Algorithm 2).
    k, m, tol, maxiter, seed, which, v0:
        Passed to :class:`~repro.linalg.eigsolver.SymEigProblem`.
    policy:
        Fault response (default: let device errors propagate).  With an
        enabled policy each SpMV retries transient faults with backoff, a
        mid-solve device failure resumes from the latest restart-boundary
        :class:`~repro.linalg.rci.LanczosCheckpoint` (``policy.max_resumes``
        attempts), and when the device stays unusable the solve finishes
        with a host SpMV that performs the *same arithmetic* as
        ``cusparseDcsrmv``, so the Ritz pairs match the all-GPU run bit
        for bit.
    residency:
        ``"device"`` (default) keeps the iteration vector and Lanczos basis
        in persistent device buffers across reverse-communication steps —
        only ARPACK's small tridiagonal state crosses the bus, at restart
        boundaries, with the Q upload hidden on the copy engine.
        ``"host"`` is the paper's original Algorithm 3: the vector ships
        over PCIe twice per Lanczos step.  Both placements drive the exact
        same IRLM arithmetic, so eigenpairs are bit-identical.
    spmv_format:
        ``"auto"`` (default) picks CSR/ELL/HYB per matrix from row-length
        statistics via the cost-model autotuner; or force one format.
        All formats share one reference substrate arithmetic, so this only
        changes charged time.
    n_devices:
        Shard the solve across this many GPUs (default 1).  The operator
        is split into row blocks (:mod:`repro.cusparse.partition`), each
        SpMV runs a local kernel immediately while halo segments of the
        iteration vector travel device-to-device on dedicated copy
        streams, the Lanczos basis lives in per-device blocks, and the
        restart rotation applies as one gemm per device; the ``2m``
        restart coefficients allgather to the host as before.  Requires
        ``residency="device"`` and CSR (the row blocks are stored as
        split local/halo CSR).  Numerics are computed through the
        canonical substrate on every path, so spectra are bit-identical
        to ``n_devices=1`` — only the charged makespan changes.
    precision:
        Storage precision of the operator values and iteration vectors:
        ``"fp64"`` (default, the exact path — bit-identical to a build
        without this axis), ``"fp32"`` or ``"fp16"``.  Reduced solves
        accumulate in fp64 (see :mod:`repro.precision`), clamp ``tol``
        to the storage dtype's noise floor, and finish with
        ``refine_steps`` fp64 Rayleigh–Ritz corrections against the
        full-precision operator.
    embedding:
        ``"lanczos"`` (default) is the full IRLM loop; ``"power"`` is
        the block power-iteration embedding of Boutsidis et al. — pure
        repeated SpMM (``power_q + 1`` operator applications, no
        restarts), which rides the partitioned multi-GPU SpMV, the
        format autotuner, and the caching allocator unchanged.  Power
        spectra are approximate by design; gate them with the ARI/
        residual tolerance bands, not bit-identity.
    refine_steps:
        Maximum fp64 subspace advances in the refinement pass after the
        solve (the pass always starts with one operator application that
        measures the incoming residual and applies a free in-span
        Rayleigh–Ritz polish).  ``None`` (default) means 0 for
        ``precision="fp64"`` and an *adaptive* budget of
        ``DEFAULT_REFINE_STEPS`` for reduced precisions: advances stop
        early once the residual is at 10% of the precision's tolerance
        band, so an already-in-band solve pays a single application.  An
        explicit integer disables the early exit and runs exactly that
        many advances.
    power_q:
        Power-iteration count for ``embedding="power"``
        (default ``max(8, ceil(2·log2 n))``).
    partition_mode:
        Row-partitioning strategy for ``n_devices > 1``: ``"nnz"``
        (default) balances nonzeros over contiguous blocks, ``"rows"``
        is the PR-5 uniform row split, ``"mincut"`` grows connected,
        nnz-balanced row sets that minimize the per-step halo.  Every
        mode drives the same substrate arithmetic — spectra stay
        bit-identical; only halo bytes and charged time change.
    plan:
        A prebuilt :class:`~repro.cusparse.partition.PartitionedCSR` to
        reuse (the composed multi-device fit partitions once and keeps
        the shards resident across stages).  The plan's shard devices
        become the device group — its first shard must live on
        ``device`` — and the plan is *not* freed on exit; the caller
        owns it.
    topology:
        PCIe/NUMA topology pricing peer copies per (src, dst) pair.
        Defaults to :func:`~repro.hw.topology.paper_topology` for the
        device count; at 2 devices every pair is switch-direct, so
        pricing matches the flat single-link law exactly.
    elide_result_d2h:
        Keep the Ritz block ``U`` on the devices instead of shipping it
        down (composed fits hand the shards straight to multi-device
        k-means; the elided bytes are metered like the device-resident
        loop's elided round trips).

    Returns
    -------
    (theta, U, stats):
        Eigenvalues ascending, eigenvector columns ``(n, k)``, counters.
    """
    if residency not in RESIDENCY_MODES:
        raise ValueError(
            f"residency must be one of {RESIDENCY_MODES}, got {residency!r}"
        )
    if spmv_format not in SPMV_FORMAT_CHOICES:
        raise ValueError(
            f"spmv_format must be one of {SPMV_FORMAT_CHOICES}, "
            f"got {spmv_format!r}"
        )
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    if n_devices > 1:
        if residency != "device":
            raise ValueError(
                "n_devices > 1 requires residency='device' (the row-"
                "partitioned basis blocks live on the GPUs)"
            )
        if spmv_format not in ("auto", "csr"):
            raise ValueError(
                "n_devices > 1 stores row blocks as split local/halo CSR; "
                f"spmv_format={spmv_format!r} is not supported"
            )
        if partition_mode not in PARTITION_MODES:
            raise ValueError(
                f"partition_mode must be one of {PARTITION_MODES}, "
                f"got {partition_mode!r}"
            )
        if plan is not None:
            if len(plan.shards) != n_devices:
                raise ValueError(
                    f"plan has {len(plan.shards)} shards for "
                    f"n_devices={n_devices}"
                )
            if plan.shards[0].device is not device:
                raise ValueError(
                    "plan's first shard must live on the primary device"
                )
    elif plan is not None:
        raise ValueError("plan requires n_devices > 1")
    if embedding not in EMBEDDING_MODES:
        raise ValueError(
            f"embedding must be one of {EMBEDDING_MODES}, got {embedding!r}"
        )
    store_dtype = resolve_precision(precision)
    vs = store_dtype.itemsize
    refine_eff = (
        refine_steps
        if refine_steps is not None
        else (0 if vs == 8 else DEFAULT_REFINE_STEPS)
    )
    if refine_eff < 0:
        raise ValueError(f"refine_steps must be >= 0, got {refine_steps}")
    # default (adaptive) refinement stops advancing once the residual is
    # comfortably inside the precision's tolerance band — a reduced solve
    # that converged under the band pays one measurement application, not
    # a fixed polish budget; an explicit refine_steps runs to its budget
    refine_target = (
        0.0 if refine_steps is not None else 0.1 * TOL_FLOORS[precision]
    )
    # reduced-storage iterations bottom out at the quantization noise
    # floor; asking for residuals below it only burns matvecs that the
    # fp64 refinement pass recovers more cheaply
    tol_eff = max(float(tol), TOL_FLOORS[precision])
    n = A.shape[0]
    cpu = CPUCostModel(cpu_spec)
    t0 = time.perf_counter()
    m_eff = int(m) if m is not None else min(n, max(2 * k + 1, 20))
    j_avg = (k + m_eff) / 2.0
    rows_cache = np.repeat(np.arange(n, dtype=np.int64), np.diff(A.indptr.data))
    # reduced-precision solve operand: a device-side streaming cast of the
    # values (identity for fp64 — A_solve IS A and nothing is charged);
    # the original fp64 operator stays alive for the refinement pass
    A_solve = cast_csr(device, A, store_dtype)

    latest_cp: LanczosCheckpoint | None = None
    n_resumes = 0
    spmv_retries = 0
    round_trips = 0
    fallback: str | None = None
    prob: SymEigProblem | None = None
    # peer devices start with zeroed counters, so summing over the group
    # after the solve still yields correct deltas against the primary-only
    # snapshot taken here
    transfers_before = device.transfer_stats()
    traffic_before = device.spmv_traffic_bytes

    # ---- multi-device context (shared timeline, own allocators/streams) --
    all_devices = [device]
    bounds: np.ndarray | None = None
    row_sets: list[np.ndarray] | None = None
    row_counts: tuple[int, ...] = ()
    if n_devices > 1:
        topo = topology if topology is not None else paper_topology(n_devices)
        if plan is not None:
            # composed fit: the device group and row layout come from the
            # prebuilt plan; the shards stay resident across stages
            all_devices = [s.device for s in plan.shards]
            row_sets = [s.rows for s in plan.shards]
            bounds = plan.bounds
            partition_mode = plan.mode
        else:
            all_devices += [
                Device(
                    device.spec, device.pcie, timeline=device.timeline,
                    device_index=d, topology=topo,
                )
                for d in range(1, n_devices)
            ]
            row_sets, _, bounds = partition_rows(
                A.indptr.data, A.indices.data, n_devices, mode=partition_mode
            )
        # the primary joins the peer group at slot 0: halo copies landing
        # on it (and on the peers) price per (src, dst) pair
        device.device_index = 0
        device.topology = topo
        device.transfer_cost = TransferCostModel(device.pcie, topo)
        row_counts = tuple(int(r.size) for r in row_sets)
    copy_streams = [
        Stream(dev, name=f"dev{d}/copyEngine")
        for d, dev in enumerate(all_devices)
    ]
    shard_upload_total = 0
    n_matvec = 0
    ledger_multi: TransferLedger | None = None

    def note_cp(cp: LanczosCheckpoint) -> None:
        nonlocal latest_cp
        latest_cp = cp

    def count_retry(_attempt: int) -> None:
        nonlocal spmv_retries
        spmv_retries += 1

    def make_prob(restart_cb=None) -> SymEigProblem:
        # step 1: initialize the Prob object with parameters (resumes pick
        # up the factorization and RNG from the latest checkpoint instead)
        def on_restart_boundary(r: int) -> None:
            # an implicit restart compacts the factorization to the same
            # checkpointable basis block the resilience layer saves — a
            # preemption-safe point for the serving scheduler
            mark_boundary(device)
            if restart_cb is not None:
                restart_cb(r)

        return SymEigProblem(
            n=n, k=k, which=which, m=m, tol=tol_eff, maxiter=maxiter,
            seed=seed, v0=v0, checkpoint=latest_cp, checkpoint_cb=note_cp,
            restart_cb=on_restart_boundary,
        )

    # power-iteration parameters (fixed before format selection so the
    # SpMM autotuner can amortize conversion over the q+1 applications)
    q_power = power_q if power_q is not None else default_power_iterations(n)
    p_power = min(n, k + 2)

    events_before = len(device.timeline)
    with device.stage("eigensolver"):
        # ---- SpMV format selection (autotune over row-length stats) ------
        decision = None
        fmt = spmv_format
        if fmt == "auto":
            if n_devices > 1:
                # the partitioned path stores row blocks as split CSR
                fmt = "csr"
            elif embedding == "power":
                # the power path is pure SpMM: rank candidates by the
                # block-product kernels, charging conversion against the
                # q+1 applications that amortize it
                decision = autotune_spmm_format(
                    A.indptr.data, device.cost, p_power,
                    conversion_uses=q_power + 1, itemsize=vs,
                )
                fmt = decision.format
            else:
                # re-runs on the same device rank candidates by the kernel
                # times actually recorded on earlier solves of this
                # operator, falling back to the roofline prediction for
                # untimed formats; measured evidence is fp64-kernel only,
                # so reduced-precision solves rank purely by prediction
                decision = autotune_format(
                    A.indptr.data, device.cost,
                    measured=(
                        (device.measured_spmv_times(n, A.nnz) or None)
                        if vs == 8 else None
                    ),
                    itemsize=vs,
                )
                fmt = decision.format
        A_op = A_solve

        def materialize_op() -> None:
            # conversion kernel charged once, amortized over the solve
            nonlocal A_op
            if fmt != "csr" and A_op is A_solve:
                A_op = convert_for_spmv(
                    A_solve, fmt,
                    hyb_width=decision.hyb_width if decision is not None else None,
                )

        def drop_op() -> None:
            nonlocal A_op
            if A_op is not A_solve:
                A_op.free()
                A_op = A_solve

        if residency == "device":
            copy_stream = Stream(device, name="copyEngine")
        while embedding == "lanczos":
            bufs = BufferGroup()
            dx = dy = None
            part: PartitionedCSR | None = None
            try:
                if residency == "device" and n_devices > 1:
                    # ---- row-partitioned multi-GPU loop ------------------
                    # per-device workspace: x/y shard pair plus this
                    # device's (m, n_d) block of the Lanczos basis
                    def alloc_workspace_multi():
                        group = BufferGroup()
                        xs_, ys_ = [], []
                        try:
                            for d, dev in enumerate(all_devices):
                                nd = row_counts[d]
                                xs_.append(
                                    group.add(dev.empty(nd, dtype=store_dtype))
                                )
                                ys_.append(
                                    group.add(dev.empty(nd, dtype=store_dtype))
                                )
                                group.add(
                                    dev.empty((m_eff, nd), dtype=store_dtype)
                                )  # basis block V_d
                        except BaseException:
                            group.free_all()
                            raise
                        return group, xs_, ys_

                    bufs, xs, ys = with_retry(
                        alloc_workspace_multi, device, policy,
                        site="eig.alloc",
                        errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                        on_retry=count_retry,
                    )
                    # distribute the operator: row blocks to each device,
                    # split into local/halo parts (P2P + split kernels
                    # charged as a makespan over devices)
                    if plan is not None:
                        part = plan
                    else:
                        part = partition_csr(
                            A_solve, all_devices, rows_cache=rows_cache,
                            mode=partition_mode, row_sets=row_sets,
                        )
                    shard_upload_total += part.shard_upload_bytes
                    ledger_multi = TransferLedger(
                        n=n, m=m_eff, k=k, itemsize=vs, n_devices=n_devices,
                        halo_counts=part.halo_counts,
                        halo_pairs=part.halo_pairs,
                        row_counts=row_counts,
                    )
                    ledger = ledger_multi
                    # scatter the seed (or the resumed factorization) —
                    # each device uploads its row slice concurrently
                    t_seed = device.timeline.clock.now
                    seed_parts = ledger.shard_split(
                        ledger.seed_h2d_bytes(latest_cp)
                    )
                    for dev, nbytes in zip(all_devices, seed_parts):
                        if nbytes:
                            dev._record_h2d_at(nbytes, t_seed)

                    def on_restart_multi(_r: int) -> None:
                        charge_restart_multi(
                            all_devices, cpu, copy_streams, row_counts,
                            m_eff, k, itemsize=vs,
                        )

                    prob = make_prob(restart_cb=on_restart_multi)
                    P = part
                    while not prob.converged():
                        prob.take_step()
                        charge_takestep_multi(
                            all_devices, row_counts, j_avg, itemsize=vs
                        )
                        if prob.needs_matvec():
                            xh = prob.get_vector()
                            # the storage round trip mirrors what landing in
                            # the store_dtype shard buffers does to the
                            # values (identity for fp64 — bit-identical)
                            xq = quantize_roundtrip(xh, store_dtype)
                            for d, xd in enumerate(xs):
                                xd.data[...] = xq[row_sets[d]]
                            yh = with_retry(
                                lambda: spmv_partitioned(P, xq),
                                device, policy,
                                site="eig.spmv", on_retry=count_retry,
                            )
                            yq = quantize_roundtrip(yh, store_dtype)
                            for d, yd in enumerate(ys):
                                yd.data[...] = yq[row_sets[d]]
                            prob.put_vector(yq)
                            n_matvec += 1
                            device.note_elided_transfer(
                                2, ledger.step_roundtrip_bytes()
                            )
                    if part is not plan:
                        part.free()
                    part = None
                elif residency == "device":
                    # persistent workspace: the ping-pong pair plus the
                    # (m, n) Lanczos basis live on the device for the whole
                    # solve; a transient alloc hiccup is retryable
                    def alloc_workspace():
                        group = BufferGroup()
                        try:
                            wx = group.add(device.empty(n, dtype=store_dtype))
                            wy = group.add(device.empty(n, dtype=store_dtype))
                            group.add(
                                device.empty((m_eff, n), dtype=store_dtype)
                            )  # basis V
                        except BaseException:
                            group.free_all()
                            raise
                        return group, wx, wy

                    bufs, dx, dy = with_retry(
                        alloc_workspace, device, policy,
                        site="eig.alloc",
                        errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                        on_retry=count_retry,
                    )
                    materialize_op()
                    # seed the device state: v0 on a cold start, the kept
                    # factorization after a resume (the device lost it)
                    ledger = TransferLedger(n=n, m=m_eff, k=k, itemsize=vs)
                    device._record_h2d(ledger.seed_h2d_bytes(latest_cp))

                    def on_restart(_r: int) -> None:
                        charge_restart_device(
                            device, cpu, copy_stream, n, m_eff, k, itemsize=vs
                        )

                    prob = make_prob(restart_cb=on_restart)
                    while not prob.converged():
                        prob.take_step()
                        charge_takestep_device(device, n, j_avg, itemsize=vs)
                        if prob.needs_matvec():
                            # the vector is already device-resident: no
                            # PCIe crossing in either direction
                            dx.data[...] = prob.get_vector()
                            with_retry(
                                lambda: spmv_any(
                                    A_op, dx, dy, rows_cache=rows_cache
                                ),
                                device, policy,
                                site="eig.spmv", on_retry=count_retry,
                            )
                            prob.put_vector(dy.data.copy())
                            device.note_elided_transfer(
                                2, ledger.step_roundtrip_bytes()
                            )
                else:
                    # the ping-pong pair is tiny (2n doubles) — no degrade
                    # ladder, but a transient alloc hiccup is retryable
                    dx = with_retry(
                        lambda: device.empty(n, dtype=store_dtype), device,
                        policy, site="eig.alloc",
                        errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                        on_retry=count_retry,
                    )
                    bufs.add(dx)
                    dy = with_retry(
                        lambda: device.empty(n, dtype=store_dtype), device,
                        policy, site="eig.alloc",
                        errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                        on_retry=count_retry,
                    )
                    bufs.add(dy)
                    materialize_op()
                    prob = make_prob()

                    # step 2: while !Prob.converge()
                    while not prob.converged():
                        prob.take_step()
                        charge_takestep(device, cpu, n, j_avg)
                        if prob.needs_matvec():
                            x = prob.get_vector()

                            def roundtrip() -> np.ndarray:
                                # transfer Prob.GetVector() host→device, run
                                # the SpMV, transfer the result back —
                                # idempotent end to end (dx/dy fully
                                # rewritten), so a fault at any site retries.
                                # the H2D/D2H legs move the storage-width
                                # representation (quantize is an identity
                                # passthrough for fp64)
                                dx.copy_from_host(quantize(x, store_dtype))
                                spmv_any(A_op, dx, dy, rows_cache=rows_cache)
                                return dy.copy_to_host()

                            y = with_retry(
                                roundtrip, device, policy,
                                site="eig.spmv", on_retry=count_retry,
                            )
                            prob.put_vector(y)
                            round_trips += 1
                bufs.free_all()
                break
            except CudaError:
                if part is not None and part is not plan:
                    part.free()
                bufs.free_all()
                drop_op()
                if not policy.enabled:
                    raise
                if n_resumes < policy.max_resumes:
                    # resume from the latest restart-boundary checkpoint
                    n_resumes += 1
                    continue
                if not policy.cpu_fallback:
                    raise
                prob = None
                break

        if embedding == "lanczos" and prob is None:
            # ---- CPU fallback: finish the solve host-side ----------------
            # Same bincount arithmetic as csrmv over the same storage-width
            # values (with the quantize round trip the device buffers apply
            # — an identity for fp64), so the resumed iteration produces
            # bit-identical Ritz pairs; each product is charged as host
            # SpMV time instead of kernel + 2 PCIe transfers.
            fallback = "cpu"
            indices = A_solve.indices.data.copy()
            val = A_solve.val.data.copy()
            nnz = A_solve.nnz
            prob = make_prob()
            while not prob.converged():
                prob.take_step()
                charge_takestep(device, cpu, n, j_avg)
                if prob.needs_matvec():
                    x = prob.get_vector()
                    xq = quantize_roundtrip(x, store_dtype)
                    y = np.bincount(
                        rows_cache,
                        weights=as_f64(val) * xq[indices],
                        minlength=n,
                    )
                    device.charge_cpu(
                        "spmv[host-fallback]", cpu.spmv_time(n, nnz)
                    )
                    prob.put_vector(quantize_roundtrip(y, store_dtype))

        power_applications = 0
        power_residual: float | None = None
        if embedding == "power":
            # ---- block power-iteration embedding (Boutsidis et al.) ------
            # pure repeated SpMM — q+1 operator applications, no restarts,
            # no reorthogonalization sweeps, no tridiagonal host state.  A
            # hard mid-solve fault restarts the whole solve: the seeded
            # start block makes the replay deterministic, so there is no
            # factorization worth checkpointing.
            letter = kernel_letter(vs)
            while True:
                bufs = BufferGroup()
                part = None
                dB = dC = None
                try:
                    if n_devices > 1:
                        for d, dev in enumerate(all_devices):
                            nd = row_counts[d]
                            # per-device B/Z slabs of the iteration block
                            bufs.add(
                                dev.empty((nd, p_power), dtype=store_dtype)
                            )
                            bufs.add(
                                dev.empty((nd, p_power), dtype=store_dtype)
                            )
                        if plan is not None:
                            part = plan
                        else:
                            part = partition_csr(
                                A_solve, all_devices, rows_cache=rows_cache,
                                mode=partition_mode, row_sets=row_sets,
                            )
                        shard_upload_total += part.shard_upload_bytes
                        ledger_multi = TransferLedger(
                            n=n, m=p_power, k=k, itemsize=vs,
                            n_devices=n_devices,
                            halo_counts=part.halo_counts,
                            halo_pairs=part.halo_pairs,
                            row_counts=row_counts,
                        )
                        # scatter the random start block, one row slab per
                        # device, concurrently
                        t_seed = device.timeline.clock.now
                        for dev, nbytes in zip(
                            all_devices,
                            ledger_multi.shard_split(n * p_power * vs),
                        ):
                            if nbytes:
                                dev._record_h2d_at(nbytes, t_seed)
                        P = part

                        def apply_block(Bh: np.ndarray) -> np.ndarray:
                            nonlocal n_matvec
                            # one row-partitioned SpMM per application —
                            # the reduceat substrate keeps the block
                            # product bit-identical to the single-device
                            # csrmm at every storage precision
                            Bq = quantize_roundtrip(Bh, store_dtype)
                            Zh = with_retry(
                                lambda: spmm_partitioned(P, Bq),
                                device, policy,
                                site="eig.spmv", on_retry=count_retry,
                            )
                            Z = quantize_roundtrip(Zh, store_dtype)
                            # column-matvec equivalents, so the p2p plan
                            # n_matvec * step_halo_bytes stays exact
                            n_matvec += p_power
                            device.note_elided_transfer(
                                2, 2 * n * p_power * vs
                            )
                            # TSQR-style panel factorization: one geqrf per
                            # device over its row slab, concurrent
                            tq = device.timeline.clock.now
                            for d, dev in enumerate(all_devices):
                                nd = row_counts[d]
                                dtq = dev.cost.kernel_time(
                                    2.0 * nd * p_power * p_power,
                                    2.0 * nd * p_power * vs,
                                    kind="dense",
                                )
                                device.timeline.record_at(
                                    f"cusolver{letter}geqrf[power,dev{d}]",
                                    "kernel", tq, dtq,
                                )
                                dev.kernel_launches += 1
                            return Z
                    elif residency == "device":
                        def alloc_power():
                            group = BufferGroup()
                            try:
                                b = group.add(device.empty(
                                    (n, p_power), dtype=store_dtype
                                ))
                                c = group.add(device.empty(
                                    (n, p_power), dtype=store_dtype
                                ))
                            except BaseException:
                                group.free_all()
                                raise
                            return group, b, c

                        bufs, dB, dC = with_retry(
                            alloc_power, device, policy, site="eig.alloc",
                            errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                            on_retry=count_retry,
                        )
                        materialize_op()
                        # the random start block uploads once; every later
                        # application stays device-resident
                        device._record_h2d(n * p_power * vs)

                        def apply_block(Bh: np.ndarray) -> np.ndarray:
                            dB.data[...] = Bh  # quantizes to storage dtype
                            with_retry(
                                lambda: spmm_any(A_op, dB, dC),
                                device, policy,
                                site="eig.spmv", on_retry=count_retry,
                            )
                            device.note_elided_transfer(
                                2, 2 * n * p_power * vs
                            )
                            device.charge_kernel(
                                f"cusolver{letter}geqrf[power]",
                                flops=2.0 * n * p_power * p_power,
                                bytes_moved=2.0 * n * p_power * vs,
                                kind="dense",
                            )
                            return np.asarray(
                                dC.data, dtype=np.float64
                            ).copy()
                    else:
                        dB = with_retry(
                            lambda: device.empty(
                                (n, p_power), dtype=store_dtype
                            ),
                            device, policy, site="eig.alloc",
                            errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                            on_retry=count_retry,
                        )
                        bufs.add(dB)
                        dC = with_retry(
                            lambda: device.empty(
                                (n, p_power), dtype=store_dtype
                            ),
                            device, policy, site="eig.alloc",
                            errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                            on_retry=count_retry,
                        )
                        bufs.add(dC)
                        materialize_op()

                        def apply_block(Bh: np.ndarray) -> np.ndarray:
                            nonlocal round_trips

                            def block_roundtrip() -> np.ndarray:
                                # idempotent: dB/dC fully rewritten per call
                                dB.copy_from_host(quantize(Bh, store_dtype))
                                spmm_any(A_op, dB, dC)
                                return dC.copy_to_host()

                            Ch = with_retry(
                                block_roundtrip, device, policy,
                                site="eig.spmv", on_retry=count_retry,
                            )
                            round_trips += 1
                            # the QR panel factorization runs host-side
                            device.charge_cpu(
                                "qr[power]",
                                cpu.blas3_time(2.0 * n * p_power * p_power),
                            )
                            return np.asarray(Ch, dtype=np.float64)

                    theta, U, power_residual, power_applications = (
                        power_embedding(
                            apply_block, n, k, q=q_power, seed=seed,
                            which=which,
                        )
                    )
                    if residency == "device":
                        # Ritz rotation on-device, then U comes down once
                        if n_devices > 1:
                            t_r = device.timeline.clock.now
                            for d, dev in enumerate(all_devices):
                                nd = row_counts[d]
                                dt_r = dev.cost.kernel_time(
                                    2.0 * nd * p_power * k,
                                    (
                                        nd * p_power + p_power * k
                                        + 2.0 * nd * k
                                    ) * float(vs),
                                    kind="dense",
                                )
                                device.timeline.record_at(
                                    f"cublas{letter}gemm[ritz,dev{d}]",
                                    "kernel", t_r, dt_r,
                                )
                                dev.kernel_launches += 1
                                if elide_result_d2h:
                                    dev.note_elided_transfer(1, nd * k * vs)
                                else:
                                    dev._record_d2h_at(nd * k * vs, t_r + dt_r)
                        else:
                            device.charge_kernel(
                                f"cublas{letter}gemm[ritz]",
                                flops=2.0 * n * p_power * k,
                                bytes_moved=(
                                    n * p_power + p_power * k + 2.0 * n * k
                                ) * float(vs),
                                kind="dense",
                            )
                            device._record_d2h(n * k * vs)
                    bufs.free_all()
                    if part is not None:
                        if part is not plan:
                            part.free()
                        part = None
                    break
                except CudaError:
                    if part is not None and part is not plan:
                        part.free()
                    bufs.free_all()
                    drop_op()
                    if not policy.enabled:
                        raise
                    if n_resumes < policy.max_resumes:
                        n_resumes += 1
                        continue
                    if not policy.cpu_fallback:
                        raise
                    # ---- CPU fallback: the whole power solve host-side ---
                    fallback = "cpu"
                    indices = A_solve.indices.data.copy()
                    val = A_solve.val.data.copy()
                    indptr = A_solve.indptr.data.copy()
                    nnz = A_solve.nnz

                    def apply_host(Bh: np.ndarray) -> np.ndarray:
                        # same gathered/reduceat arithmetic as csrmm, with
                        # the storage round trip on both operands, so the
                        # host solve matches the all-GPU one bit for bit
                        Bq = quantize_roundtrip(Bh, store_dtype)
                        gathered = as_f64(val)[:, None] * Bq[indices]
                        row_nnz = np.diff(indptr)
                        nonempty = np.flatnonzero(row_nnz > 0)
                        prod = np.zeros((n, Bh.shape[1]))
                        if nonempty.size:
                            prod[nonempty] = np.add.reduceat(
                                gathered, indptr[nonempty], axis=0
                            )
                        device.charge_cpu(
                            "spmm[host-fallback]",
                            cpu.spmv_time(n, nnz) * Bh.shape[1],
                        )
                        device.charge_cpu(
                            "qr[power]",
                            cpu.blas3_time(2.0 * n * p_power * p_power),
                        )
                        return quantize_roundtrip(prod, store_dtype)

                    theta, U, power_residual, power_applications = (
                        power_embedding(
                            apply_host, n, k, q=q_power, seed=seed,
                            which=which,
                        )
                    )
                    break

        drop_op()
        if embedding == "lanczos":
            # step 3: compute the eigenvectors
            theta, U = prob.find_eigenvectors()
            res = prob.result
            if residency == "device" and fallback is None:
                # restarts were charged inline (charge_restart_device /
                # charge_restart_multi); the Ritz basis assembles
                # on-device, then U comes down once
                letter = kernel_letter(vs)
                if n_devices > 1:
                    # each device rotates its own basis block and ships its
                    # row slice down concurrently; slices sum to exactly
                    # n*k*itemsize
                    def assemble_ritz() -> None:
                        tl = device.timeline
                        t_r = tl.clock.now
                        for d, dev in enumerate(all_devices):
                            nd = row_counts[d]
                            dt = dev.cost.kernel_time(
                                2.0 * nd * prob.m * k,
                                (nd * prob.m + prob.m * k + 2.0 * nd * k)
                                * float(vs),
                                kind="dense",
                            )
                            tl.record_at(
                                f"cublas{letter}gemm[ritz,dev{d}]",
                                "kernel", t_r, dt,
                            )
                            dev.kernel_launches += 1
                            if elide_result_d2h:
                                dev.note_elided_transfer(1, nd * k * vs)
                            else:
                                dev._record_d2h_at(nd * k * vs, t_r + dt)
                else:
                    def assemble_ritz() -> None:
                        device.charge_kernel(
                            f"cublas{letter}gemm[ritz]",
                            flops=2.0 * n * prob.m * k,
                            bytes_moved=(
                                n * prob.m + prob.m * k + 2.0 * n * k
                            ) * float(vs),
                            kind="dense",
                        )
                        device._record_d2h(
                            TransferLedger(
                                n=n, m=prob.m, k=k, itemsize=vs
                            ).result_d2h_bytes()
                        )

                with_retry(
                    assemble_ritz, device, policy,
                    site="eig.result", on_retry=count_retry,
                )
            else:
                for _ in range(res.n_restarts):
                    charge_restart(device, cpu, n, prob.m, k)
                charge_find_eigenvectors(device, cpu, n, prob.m, k)
            n_op_total = res.n_op
            n_restarts_total = res.n_restarts
            n_reorth_total = res.n_reorth
            converged_flag = res.converged
            m_used = prob.m
        else:
            n_op_total = power_applications
            n_restarts_total = 0
            n_reorth_total = q_power
            converged_flag = True
            m_used = p_power

        # ---- fp64 iterative refinement of the reduced-precision solve ----
        # every reduced solve at least *measures* its residual against the
        # full-precision operator; the exact fp64 path skips the pass
        # entirely unless refinement was explicitly requested, preserving
        # bit-identity with pre-precision-axis builds
        refine_residual: float | None = None
        refine_history: list | None = None
        if vs != 8 or refine_eff > 0:
            host_refine = fallback == "cpu"

            def host_apply64(Bh: np.ndarray) -> np.ndarray:
                # same gathered/reduceat arithmetic as csrmm on fp64 A
                gathered = A.val.data[:, None] * Bh[A.indices.data]
                row_nnz = np.diff(A.indptr.data)
                nonempty = np.flatnonzero(row_nnz > 0)
                prod = np.zeros((n, Bh.shape[1]))
                if nonempty.size:
                    prod[nonempty] = np.add.reduceat(
                        gathered, A.indptr.data[nonempty], axis=0
                    )
                device.charge_cpu(
                    "spmm[refine-host]",
                    cpu.spmv_time(n, A.nnz) * Bh.shape[1],
                )
                return prod

            def apply64(Bh: np.ndarray) -> np.ndarray:
                nonlocal host_refine
                if not host_refine:
                    def refine_mm() -> np.ndarray:
                        # idempotent: fresh staging buffers per attempt
                        dBr = device.empty(Bh.shape, dtype=np.float64)
                        try:
                            dBr.copy_from_host(Bh)
                            dCr = csrmm(A, dBr)
                            try:
                                return dCr.copy_to_host()
                            finally:
                                dCr.free()
                        finally:
                            dBr.free()

                    try:
                        return with_retry(
                            refine_mm, device, policy,
                            site="eig.refine", on_retry=count_retry,
                        )
                    except CudaError:
                        if not (policy.enabled and policy.cpu_fallback):
                            raise
                        host_refine = True
                return host_apply64(Bh)

            theta, U, refine_residual, refine_history = refine_eigenpairs(
                apply64, theta, U, steps=refine_eff, which=which,
                target=refine_target,
            )
    wall = time.perf_counter() - t0
    if A_solve is not A:
        A_solve.free()
    transfers_after = _sum_transfer_stats(all_devices)
    observed = _harvest_spmv_times(device, n, A.nnz, events_before)
    format_decision = decision.as_dict() if decision is not None else None
    if format_decision is not None:
        format_decision["observed_spmv_s"] = {
            f: t for f, (t, _c) in observed.items()
        }
        format_decision["n_spmv_timed"] = sum(
            c for (_t, c) in observed.values()
        )
        format_decision["precision"] = precision
        format_decision["value_itemsize"] = vs
    stats = EigStats(
        n_op=n_op_total,
        n_restarts=n_restarts_total,
        n_reorth=n_reorth_total,
        converged=converged_flag,
        m=m_used,
        k=k,
        pcie_round_trips=round_trips,
        wall_seconds=wall,
        n_resumes=n_resumes,
        spmv_retries=spmv_retries,
        fallback=fallback,
        residency=residency,
        spmv_format=fmt,
        bytes_h2d=transfers_after["bytes_h2d"] - transfers_before["bytes_h2d"],
        bytes_d2h=transfers_after["bytes_d2h"] - transfers_before["bytes_d2h"],
        transfers_elided=(
            transfers_after["transfers_elided"]
            - transfers_before["transfers_elided"]
        ),
        bytes_elided=(
            transfers_after["bytes_elided"] - transfers_before["bytes_elided"]
        ),
        transfer_overlap_s=(
            transfers_after["overlap_s"] - transfers_before["overlap_s"]
        ),
        format_decision=format_decision,
        bytes_p2p=transfers_after["bytes_p2p"] - transfers_before["bytes_p2p"],
        n_p2p=transfers_after["n_p2p"] - transfers_before["n_p2p"],
        n_devices=n_devices,
        partition=(
            {
                "mode": partition_mode,
                "row_counts": list(row_counts),
                **(
                    {"bounds": [int(b) for b in bounds]}
                    if bounds is not None
                    else {}
                ),
                "halo_counts": list(ledger_multi.halo_counts),
                "halo_pairs": ledger_multi.halo_pairs,
                "step_halo_bytes": ledger_multi.step_halo_bytes(),
                "shard_upload_bytes": shard_upload_total,
                "n_matvec": n_matvec,
            }
            if n_devices > 1 and ledger_multi is not None
            else None
        ),
        precision=precision,
        embedding=embedding,
        refine_steps=(
            len(refine_history) - 1 if refine_history is not None else 0
        ),
        refine_residual=refine_residual,
        refine_history=refine_history,
        spmv_bytes=(
            sum(d.spmv_traffic_bytes for d in all_devices) - traffic_before
        ),
        spmv_kernel_s=_sum_spmv_kernel_seconds(device, events_before),
    )
    return theta, U, stats


#: name fragments identifying SpMV/SpMM kernels on the timeline (any
#: precision letter, any device suffix) — the byte-traffic meter's twin
_SPMV_KERNEL_SUBSTRINGS = (
    "csrmv", "coomv", "ellmv", "hybmv", "csrmm", "ellmm", "hybmm",
)


def _sum_spmv_kernel_seconds(device: Device, events_before: int) -> float:
    """Sum the simulated seconds of every sparse-product kernel a solve
    charged (the timeline is shared across the device group, so one scan
    covers the partitioned multi-GPU paths too)."""
    total = 0.0
    for ev in device.timeline.events[events_before:]:
        if ev.category != "kernel":
            continue
        if any(s in ev.name for s in _SPMV_KERNEL_SUBSTRINGS):
            total += ev.duration
    return total


#: SpMV kernel event names -> format key.  ``hybmv`` charges two events per
#: product (ELL slab + COO tail); only the ``[ell]`` event counts a product.
_SPMV_EVENT_FORMATS = {
    "cusparseDcsrmv": ("csr", True),
    "cusparseDellmv": ("ell", True),
    "cusparseDhybmv[ell]": ("hyb", True),
    "cusparseDhybmv[coo]": ("hyb", False),
}


def _harvest_spmv_times(
    device: Device, n: int, nnz: int, events_before: int
) -> dict[str, tuple[float, int]]:
    """Record the SpMV kernel times charged during this solve.

    Scans the timeline window the eigensolver stage appended, aggregates
    per-format mean seconds per product, and feeds them back to the
    device's measurement table so the *next* ``autotune_format`` on the
    same operator ranks by observed kernel time instead of the roofline
    prediction.  Returns ``{fmt: (mean_seconds, n_products)}``.
    """
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for ev in device.timeline.events[events_before:]:
        hit = _SPMV_EVENT_FORMATS.get(ev.name)
        if hit is None:
            continue
        fmt_name, is_product = hit
        sums[fmt_name] = sums.get(fmt_name, 0.0) + ev.duration
        if is_product:
            counts[fmt_name] = counts.get(fmt_name, 0) + 1
    out: dict[str, tuple[float, int]] = {}
    for fmt_name, total in sums.items():
        n_products = counts.get(fmt_name, 0)
        if n_products == 0:
            continue
        per = total / n_products
        device.note_spmv_time(fmt_name, n, nnz, per)
        out[fmt_name] = (per, n_products)
    return out
