"""Hybrid stage runners: the CPU/GPU split of Algorithm 3 with full time
accounting.

:func:`hybrid_eigensolver` is the heart of the paper: ARPACK-style reverse
communication runs on the (modeled) CPU while every sparse matrix-vector
product runs on the (simulated) GPU, with the iteration vector crossing the
PCIe bus twice per Lanczos step.  CPU phases are charged to the shared
timeline from the Xeon cost model:

* per Lanczos step — the ``TakeStep`` orthogonalization sweep, a
  memory-bound BLAS-2 pass over the current basis (``O(n·j)``);
* per restart — the m×m tridiagonal eigendecomposition + shift sweeps
  (``O(m³)``, LAPACK single-threaded) and the BLAS-3 basis update
  ``V <- V Q`` (``O(n·m·k)``, multithreaded OpenBLAS);
* at exit — ``FindEigenvectors`` (``O(n·m·k)`` BLAS-3), matching the
  complexity expression (10) of §IV.B.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cuda.device import Device
from repro.cusparse.matrices import DeviceCSR
from repro.cusparse.spmv import csrmv
from repro.hw.costmodel import CPUCostModel
from repro.hw.spec import CPUSpec, XEON_E5_2690
from repro.linalg.eigsolver import SymEigProblem


@dataclass
class EigStats:
    """Counters from one hybrid eigensolver run."""

    n_op: int
    n_restarts: int
    n_reorth: int
    converged: bool
    m: int
    k: int
    pcie_round_trips: int
    wall_seconds: float

    def as_dict(self) -> dict:
        return dict(
            n_op=self.n_op,
            n_restarts=self.n_restarts,
            n_reorth=self.n_reorth,
            converged=self.converged,
            m=self.m,
            k=self.k,
            pcie_round_trips=self.pcie_round_trips,
            wall_seconds=self.wall_seconds,
        )


def charge_takestep(
    device: Device, cpu: CPUCostModel, n: int, j_avg: float
) -> None:
    """Charge one reverse-communication ``TakeStep`` to the timeline.

    The step's dominant cost is the full-reorthogonalization sweep against
    the current basis: two passes of ``V_j @ w`` / ``w -= V_jᵀ h`` — a
    memory-bound read of ``2·j·n`` doubles on the host.
    """
    nbytes = 2.0 * j_avg * n * 8.0
    device.charge_cpu("TakeStep[reorth]", cpu.blas1_time(nbytes))


def charge_restart(
    device: Device, cpu: CPUCostModel, n: int, m: int, kp: int
) -> None:
    """Charge one implicit restart: T-eig + shift sweeps + basis update."""
    # dense tridiagonal eig of the m×m projected matrix (LAPACK, 1 thread)
    device.charge_cpu("dsteqr[T]", cpu.blas3_time(15.0 * m**3, threads=1))
    # p = m - kp implicit QR sweeps, O(m) rotations each over Q (m×m)
    device.charge_cpu(
        "qr_sweeps", cpu.blas3_time(6.0 * (m - kp) * m * m, threads=1)
    )
    # V <- V Q[:, :kp]: (n × m) @ (m × kp) BLAS-3, multithreaded OpenBLAS
    device.charge_cpu("basis_update[VQ]", cpu.blas3_time(2.0 * n * m * kp))


def charge_find_eigenvectors(
    device: Device, cpu: CPUCostModel, n: int, m: int, k: int
) -> None:
    """Charge the ``FindEigenvectors`` post-processing (dseupd analogue)."""
    device.charge_cpu("FindEigenvectors", cpu.blas3_time(2.0 * n * m * k))


def hybrid_eigensolver(
    device: Device,
    A: DeviceCSR,
    k: int,
    m: int | None = None,
    tol: float = 0.0,
    maxiter: int | None = None,
    seed: int | None = 0,
    which: str = "LA",
    cpu_spec: CPUSpec = XEON_E5_2690,
    v0: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, EigStats]:
    """Algorithm 3: the reverse-communication loop with GPU SpMV.

    Parameters
    ----------
    device:
        The simulated GPU (owns the shared timeline).
    A:
        The device-resident operator in CSR (``D^{-1/2} W D^{-1/2}`` or
        ``D⁻¹W`` from Algorithm 2).
    k, m, tol, maxiter, seed, which, v0:
        Passed to :class:`~repro.linalg.eigsolver.SymEigProblem`.

    Returns
    -------
    (theta, U, stats):
        Eigenvalues ascending, eigenvector columns ``(n, k)``, counters.
    """
    n = A.shape[0]
    cpu = CPUCostModel(cpu_spec)
    t0 = time.perf_counter()
    with device.stage("eigensolver"):
        # step 1: initialize the Prob object with parameters
        prob = SymEigProblem(
            n=n, k=k, which=which, m=m, tol=tol, maxiter=maxiter, seed=seed, v0=v0
        )
        j_avg = (k + prob.m) / 2.0
        rows_cache = np.repeat(
            np.arange(n, dtype=np.int64), np.diff(A.indptr.data)
        )
        dx = device.empty(n, dtype=np.float64)
        dy = device.empty(n, dtype=np.float64)

        # step 2: while !Prob.converge()
        round_trips = 0
        while not prob.converged():
            prob.take_step()
            charge_takestep(device, cpu, n, j_avg)
            if prob.needs_matvec():
                # transfer the data located at Prob.GetVector() host→device
                dx.copy_from_host(prob.get_vector())
                # cusparseDcsrmv on the device
                csrmv(A, dx, dy, rows_cache=rows_cache)
                # transfer the result back to Prob.PutVector()
                prob.put_vector(dy.copy_to_host())
                round_trips += 1

        # step 3: compute the eigenvectors
        theta, U = prob.find_eigenvectors()
        res = prob.result
        for _ in range(res.n_restarts):
            charge_restart(device, cpu, n, prob.m, k)
        charge_find_eigenvectors(device, cpu, n, prob.m, k)
        dx.free()
        dy.free()
    wall = time.perf_counter() - t0
    stats = EigStats(
        n_op=res.n_op,
        n_restarts=res.n_restarts,
        n_reorth=res.n_reorth,
        converged=res.converged,
        m=prob.m,
        k=k,
        pcie_round_trips=round_trips,
        wall_seconds=wall,
    )
    return theta, U, stats
