"""Hybrid stage runners: the CPU/GPU split of Algorithm 3 with full time
accounting.

:func:`hybrid_eigensolver` is the heart of the paper: ARPACK-style reverse
communication runs on the (modeled) CPU while every sparse matrix-vector
product runs on the (simulated) GPU, with the iteration vector crossing the
PCIe bus twice per Lanczos step.  CPU phases are charged to the shared
timeline from the Xeon cost model:

* per Lanczos step — the ``TakeStep`` orthogonalization sweep, a
  memory-bound BLAS-2 pass over the current basis (``O(n·j)``);
* per restart — the m×m tridiagonal eigendecomposition + shift sweeps
  (``O(m³)``, LAPACK single-threaded) and the BLAS-3 basis update
  ``V <- V Q`` (``O(n·m·k)``, multithreaded OpenBLAS);
* at exit — ``FindEigenvectors`` (``O(n·m·k)`` BLAS-3), matching the
  complexity expression (10) of §IV.B.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.chaos.retry import DISABLED, ResiliencePolicy, TRANSIENT_ERRORS, with_retry
from repro.cuda.device import Device
from repro.cusparse.matrices import DeviceCSR
from repro.cusparse.spmv import csrmv
from repro.errors import CudaError, DeviceMemoryError
from repro.hw.costmodel import CPUCostModel
from repro.hw.spec import CPUSpec, XEON_E5_2690
from repro.linalg.eigsolver import SymEigProblem
from repro.linalg.rci import LanczosCheckpoint


@dataclass
class EigStats:
    """Counters from one hybrid eigensolver run.

    ``n_resumes``/``spmv_retries``/``fallback`` report resilience activity:
    checkpoint restarts after a device failure, recovered per-round-trip
    faults, and whether the solve finished on the host (``"cpu"``) instead
    of the device (``None``).
    """

    n_op: int
    n_restarts: int
    n_reorth: int
    converged: bool
    m: int
    k: int
    pcie_round_trips: int
    wall_seconds: float
    n_resumes: int = 0
    spmv_retries: int = 0
    fallback: str | None = None

    def as_dict(self) -> dict:
        return dict(
            n_op=self.n_op,
            n_restarts=self.n_restarts,
            n_reorth=self.n_reorth,
            converged=self.converged,
            m=self.m,
            k=self.k,
            pcie_round_trips=self.pcie_round_trips,
            wall_seconds=self.wall_seconds,
            n_resumes=self.n_resumes,
            spmv_retries=self.spmv_retries,
            fallback=self.fallback,
        )


def charge_takestep(
    device: Device, cpu: CPUCostModel, n: int, j_avg: float
) -> None:
    """Charge one reverse-communication ``TakeStep`` to the timeline.

    The step's dominant cost is the full-reorthogonalization sweep against
    the current basis: two passes of ``V_j @ w`` / ``w -= V_jᵀ h`` — a
    memory-bound read of ``2·j·n`` doubles on the host.
    """
    nbytes = 2.0 * j_avg * n * 8.0
    device.charge_cpu("TakeStep[reorth]", cpu.blas1_time(nbytes))


def charge_restart(
    device: Device, cpu: CPUCostModel, n: int, m: int, kp: int
) -> None:
    """Charge one implicit restart: T-eig + shift sweeps + basis update."""
    # dense tridiagonal eig of the m×m projected matrix (LAPACK, 1 thread)
    device.charge_cpu("dsteqr[T]", cpu.blas3_time(15.0 * m**3, threads=1))
    # p = m - kp implicit QR sweeps, O(m) rotations each over Q (m×m)
    device.charge_cpu(
        "qr_sweeps", cpu.blas3_time(6.0 * (m - kp) * m * m, threads=1)
    )
    # V <- V Q[:, :kp]: (n × m) @ (m × kp) BLAS-3, multithreaded OpenBLAS
    device.charge_cpu("basis_update[VQ]", cpu.blas3_time(2.0 * n * m * kp))


def charge_find_eigenvectors(
    device: Device, cpu: CPUCostModel, n: int, m: int, k: int
) -> None:
    """Charge the ``FindEigenvectors`` post-processing (dseupd analogue)."""
    device.charge_cpu("FindEigenvectors", cpu.blas3_time(2.0 * n * m * k))


def hybrid_eigensolver(
    device: Device,
    A: DeviceCSR,
    k: int,
    m: int | None = None,
    tol: float = 0.0,
    maxiter: int | None = None,
    seed: int | None = 0,
    which: str = "LA",
    cpu_spec: CPUSpec = XEON_E5_2690,
    v0: np.ndarray | None = None,
    policy: ResiliencePolicy = DISABLED,
) -> tuple[np.ndarray, np.ndarray, EigStats]:
    """Algorithm 3: the reverse-communication loop with GPU SpMV.

    Parameters
    ----------
    device:
        The simulated GPU (owns the shared timeline).
    A:
        The device-resident operator in CSR (``D^{-1/2} W D^{-1/2}`` or
        ``D⁻¹W`` from Algorithm 2).
    k, m, tol, maxiter, seed, which, v0:
        Passed to :class:`~repro.linalg.eigsolver.SymEigProblem`.
    policy:
        Fault response (default: let device errors propagate).  With an
        enabled policy each PCIe round trip retries transient faults with
        backoff, a mid-solve device failure resumes from the latest
        restart-boundary :class:`~repro.linalg.rci.LanczosCheckpoint`
        (``policy.max_resumes`` attempts), and when the device stays
        unusable the solve finishes with a host SpMV that performs the
        *same arithmetic* as ``cusparseDcsrmv``, so the Ritz pairs match
        the all-GPU run bit for bit.

    Returns
    -------
    (theta, U, stats):
        Eigenvalues ascending, eigenvector columns ``(n, k)``, counters.
    """
    n = A.shape[0]
    cpu = CPUCostModel(cpu_spec)
    t0 = time.perf_counter()
    m_eff = int(m) if m is not None else min(n, max(2 * k + 1, 20))
    j_avg = (k + m_eff) / 2.0
    rows_cache = np.repeat(np.arange(n, dtype=np.int64), np.diff(A.indptr.data))

    latest_cp: LanczosCheckpoint | None = None
    n_resumes = 0
    spmv_retries = 0
    round_trips = 0
    fallback: str | None = None
    prob: SymEigProblem | None = None

    def note_cp(cp: LanczosCheckpoint) -> None:
        nonlocal latest_cp
        latest_cp = cp

    def count_retry(_attempt: int) -> None:
        nonlocal spmv_retries
        spmv_retries += 1

    def make_prob() -> SymEigProblem:
        # step 1: initialize the Prob object with parameters (resumes pick
        # up the factorization and RNG from the latest checkpoint instead)
        return SymEigProblem(
            n=n, k=k, which=which, m=m, tol=tol, maxiter=maxiter,
            seed=seed, v0=v0, checkpoint=latest_cp, checkpoint_cb=note_cp,
        )

    with device.stage("eigensolver"):
        while True:
            dx = dy = None
            try:
                # the ping-pong pair is tiny (2n doubles) — no degrade
                # ladder, but a transient alloc hiccup is retryable
                dx = with_retry(
                    lambda: device.empty(n, dtype=np.float64), device, policy,
                    site="eig.alloc", errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                    on_retry=count_retry,
                )
                dy = with_retry(
                    lambda: device.empty(n, dtype=np.float64), device, policy,
                    site="eig.alloc", errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                    on_retry=count_retry,
                )
                prob = make_prob()

                # step 2: while !Prob.converge()
                while not prob.converged():
                    prob.take_step()
                    charge_takestep(device, cpu, n, j_avg)
                    if prob.needs_matvec():
                        x = prob.get_vector()

                        def roundtrip() -> np.ndarray:
                            # transfer Prob.GetVector() host→device, run
                            # cusparseDcsrmv, transfer the result back —
                            # idempotent end to end (dx/dy fully rewritten),
                            # so a fault at any of the three sites retries
                            dx.copy_from_host(x)
                            csrmv(A, dx, dy, rows_cache=rows_cache)
                            return dy.copy_to_host()

                        y = with_retry(
                            roundtrip, device, policy,
                            site="eig.spmv", on_retry=count_retry,
                        )
                        prob.put_vector(y)
                        round_trips += 1
                dx.free()
                dy.free()
                break
            except CudaError:
                for buf in (dx, dy):
                    if buf is not None:
                        buf.free()
                if not policy.enabled:
                    raise
                if n_resumes < policy.max_resumes:
                    # resume from the latest restart-boundary checkpoint
                    n_resumes += 1
                    continue
                if not policy.cpu_fallback:
                    raise
                prob = None
                break

        if prob is None:
            # ---- CPU fallback: finish the solve host-side ----------------
            # Same bincount arithmetic as csrmv, so the resumed iteration
            # produces bit-identical Ritz pairs; each product is charged as
            # host SpMV time instead of kernel + 2 PCIe transfers.
            fallback = "cpu"
            indices = A.indices.data.copy()
            val = A.val.data.copy()
            nnz = A.nnz
            prob = make_prob()
            while not prob.converged():
                prob.take_step()
                charge_takestep(device, cpu, n, j_avg)
                if prob.needs_matvec():
                    x = prob.get_vector()
                    y = np.bincount(
                        rows_cache, weights=val * x[indices], minlength=n
                    )
                    device.charge_cpu(
                        "spmv[host-fallback]", cpu.spmv_time(n, nnz)
                    )
                    prob.put_vector(y)

        # step 3: compute the eigenvectors
        theta, U = prob.find_eigenvectors()
        res = prob.result
        for _ in range(res.n_restarts):
            charge_restart(device, cpu, n, prob.m, k)
        charge_find_eigenvectors(device, cpu, n, prob.m, k)
    wall = time.perf_counter() - t0
    stats = EigStats(
        n_op=res.n_op,
        n_restarts=res.n_restarts,
        n_reorth=res.n_reorth,
        converged=res.converged,
        m=prob.m,
        k=k,
        pcie_round_trips=round_trips,
        wall_seconds=wall,
        n_resumes=n_resumes,
        spmv_retries=spmv_retries,
        fallback=fallback,
    )
    return theta, U, stats
