"""The fitted spectral model: out-of-sample predict and graph deltas.

:class:`FittedSpectralModel` is what :meth:`SpectralClustering.fit`
hands back alongside the labels (``result.model``): the embedding basis,
Ritz values, degree scaling, k-means centroids and the fitted similarity
graph — everything needed to label *new* points without re-running the
pipeline.

Three serving-tier entry points:

``predict(X_new, pairs_new)``
    Nyström out-of-sample extension (Boutsidis et al.): similarity rows
    against the anchor (training) vertices, one SpMM through the
    existing cusparse substrate — precision, chaos sites and the cost
    model inherited — then the ``(1/θ)(1/d)`` rescale and an
    embedding-space nearest-centroid assignment.  Runs on the device
    under the same resilience ladder as the pipeline stages, with a
    bit-identical host fallback, and pins its transfer plan
    (:class:`~repro.linalg.nystrom.PredictLedger`) against the device
    meter.

``predict_embedding(E_new)``
    The microsecond path: callers who already hold embedding-space rows
    (e.g. replaying a cached predict) get a pure-centroid assignment
    with zero device work.

``apply_delta(edges_added, edges_removed)``
    Incremental graph update.  The edge delta patches the (simulated)
    device-resident CSR in place and is priced as the small H2D/D2H it
    actually costs (:class:`~repro.linalg.nystrom.DeltaLedger`); a full
    refit happens lazily, only when the accumulated Weyl-style Ritz
    drift bound crosses the spectral-gap threshold — at which point the
    refit is a standard ``fit(graph=...)`` and therefore bit-identical
    to a cold fit on the patched graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cusparse.matrices import DeviceCSR
from repro.cusparse.spmm import csrmm
from repro.errors import ClusteringError
from repro.graph.delta import apply_edge_delta
from repro.graph.similarity import pairwise_similarity
from repro.kmeans.utils import assign_nearest
from repro.linalg.nystrom import (
    DeltaLedger,
    PredictLedger,
    drift_threshold,
    nystrom_degrees,
    nystrom_product,
    nystrom_scale,
    ritz_drift_bound,
)
from repro.linalg.utils import normalize_rows
from repro.precision import PRECISION_DTYPES, quantize
from repro.sparse.csr import CSRMatrix


@dataclass
class PredictResult:
    """One out-of-sample predict call.

    ``ledger_ok`` is True when the analytic transfer plan matched the
    device meter exactly, False on a mismatch, and None when the call
    never had a clean device pass to audit (host path, or resilience
    recovery double-charged transfers).
    """

    labels: np.ndarray
    embedding: np.ndarray
    degrees: np.ndarray
    ledger: PredictLedger
    ledger_ok: bool | None
    resilience: dict
    simulated_time: float = 0.0

    @property
    def n_new(self) -> int:
        return int(self.labels.size)


@dataclass
class ApplyDeltaResult:
    """One incremental graph update.

    ``refit`` — whether the drift bound crossed the threshold and the
    model re-fit on the patched graph (``result`` then holds the full
    :class:`~repro.core.result.ClusteringResult`); on the lazy path the
    cached embedding is reused and ``ledger``/``ledger_ok`` price the
    patch transfers.
    """

    refit: bool
    drift_bound: float
    threshold: float
    accumulated_drift: float
    labels: np.ndarray
    ledger: DeltaLedger | None = None
    ledger_ok: bool | None = None
    result: object | None = None
    simulated_time: float = 0.0


def _fresh_rec() -> dict:
    return {"retries": 0, "degrade_steps": 0, "resumes": 0, "fallback": None}


@dataclass
class FittedSpectralModel:
    """Everything a fit learned, packaged for predict-many serving.

    Attributes
    ----------
    basis:
        ``(n_anchor, k)`` fp64 eigenvector block *after* the sym→rw
        back-mapping but *before* optional row normalization — the
        Nyström formula's ``U``.
    eigenvalues:
        The k kept Ritz values ``θ`` (descending).
    degrees:
        Fitted degree vector over the anchor vertices.
    centroids:
        ``(k, k)`` k-means centroids in embedding space.
    labels:
        Fit labels on the original indexing (isolated nodes ``-1``).
    embedding:
        ``(n_anchor, k)`` final embedding rows (post normalization) —
        reused verbatim by the lazy delta path.
    kept:
        Original indices of the anchor (non-isolated) vertices.
    graph:
        Host mirror of the fitted similarity CSR over the anchors (the
        simulated device-resident copy the delta path patches).
    anchors:
        ``(n_anchor, d)`` feature rows of the anchor vertices, or None
        for graph-input fits (predict then requires precomputed
        weights).
    params:
        Estimator constructor kwargs — enough to re-fit bit-identically.
    """

    basis: np.ndarray
    eigenvalues: np.ndarray
    degrees: np.ndarray
    centroids: np.ndarray
    labels: np.ndarray
    embedding: np.ndarray
    kept: np.ndarray
    n_total: int
    graph: CSRMatrix
    anchors: np.ndarray | None
    params: dict
    resilience: dict = field(default_factory=dict)
    drift_scale: float = 1.0
    n_refits: int = 0
    _accumulated_drift: float = 0.0

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        return int(self.centroids.shape[0])

    @property
    def n_anchor(self) -> int:
        return int(self.basis.shape[0])

    @property
    def nbytes(self) -> int:
        """Cached footprint (the embedding-cache accounting unit)."""
        total = (
            self.basis.nbytes + self.eigenvalues.nbytes + self.degrees.nbytes
            + self.centroids.nbytes + self.labels.nbytes
            + self.embedding.nbytes + self.kept.nbytes
            + self.graph.indptr.nbytes + self.graph.indices.nbytes
            + self.graph.data.nbytes
        )
        if self.anchors is not None:
            total += self.anchors.nbytes
        return int(total)

    # ------------------------------------------------------------------
    # index mapping helpers
    # ------------------------------------------------------------------
    def _anchor_positions(self, ids: np.ndarray, what: str) -> np.ndarray:
        """Map original vertex ids to anchor-subgraph positions."""
        lookup = np.full(self.n_total, -1, dtype=np.int64)
        lookup[self.kept] = np.arange(self.kept.size, dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.n_total):
            raise ClusteringError(
                f"{what}: vertex id outside [0, {self.n_total})"
            )
        pos = lookup[ids]
        if np.any(pos < 0):
            raise ClusteringError(
                f"{what}: references an isolated vertex dropped at fit time"
            )
        return pos

    def _store_dtype(self):
        return PRECISION_DTYPES[self.params.get("precision", "fp64")]

    # ------------------------------------------------------------------
    # predict
    # ------------------------------------------------------------------
    def predict(
        self,
        X_new: np.ndarray | None = None,
        pairs_new: np.ndarray | None = None,
        weights_new: np.ndarray | None = None,
        n_new: int | None = None,
        device=None,
        policy=None,
    ) -> PredictResult:
        """Label new points via the Nyström extension.

        ``pairs_new`` is ``(nnz, 2)`` rows of ``(new_index,
        anchor_vertex_id)`` where anchor ids use the *original* fit
        indexing.  Two input forms:

        * feature path — ``X_new`` given: similarity values are computed
          against the stored anchor feature rows with the fit's measure
          (requires a point-input fit);
        * weights path — ``weights_new`` given: the caller supplies the
          precomputed similarity values (the only form available after a
          graph-input fit).

        Runs on ``device`` under ``policy``'s resilience ladder when a
        device is provided; otherwise on the bit-identical host path.
        """
        if self.params.get("objective") == "ratiocut":
            raise ClusteringError(
                "predict requires the ncut objective: the Nyström extension "
                "is derived for the normalized adjacency operators"
            )
        if pairs_new is None:
            raise ClusteringError("predict requires pairs_new (new, anchor) pairs")
        pairs = np.asarray(pairs_new, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2 or pairs.shape[0] == 0:
            raise ClusteringError(
                f"pairs_new must be a non-empty (nnz, 2) array, got {pairs.shape}"
            )
        feature_path = X_new is not None
        if feature_path == (weights_new is not None):
            raise ClusteringError(
                "provide exactly one of X_new (feature path) or weights_new "
                "(precomputed similarity values)"
            )
        if feature_path and self.anchors is None:
            raise ClusteringError(
                "feature-path predict needs anchor features; this model was "
                "fit from a prebuilt graph — pass weights_new instead"
            )

        rows = pairs[:, 0]
        cols = self._anchor_positions(pairs[:, 1], "pairs_new")
        if feature_path:
            Xn = np.asarray(X_new, dtype=np.float64)
            if Xn.ndim != 2 or Xn.shape[1] != self.anchors.shape[1]:
                raise ClusteringError(
                    f"X_new must be (n_new, {self.anchors.shape[1]}), "
                    f"got {np.asarray(X_new).shape}"
                )
            m = Xn.shape[0]
        else:
            Xn = None
            m = int(rows.max()) + 1
        if n_new is not None:
            if n_new < (int(rows.max()) + 1 if rows.size else 0):
                raise ClusteringError("n_new smaller than pairs_new row range")
            m = int(n_new)
        if rows.min() < 0 or rows.max() >= m:
            raise ClusteringError(f"pairs_new new-index outside [0, {m})")

        # similarity values (host substrate; the device path charges the
        # kernel over the same arithmetic)
        if feature_path:
            stacked = np.vstack([self.anchors, Xn])
            spairs = np.column_stack([self.n_anchor + rows, cols])
            kw = (
                {"sigma": self.params.get("sigma", 1.0)}
                if self.params.get("similarity") == "expdecay" else {}
            )
            vals = pairwise_similarity(
                stacked, spairs, measure=self.params.get("similarity", "crosscorr"),
                **kw,
            )
            if self.params.get("similarity") != "expdecay":
                # mirror the fit-time graph build: correlation-style
                # measures keep positive-affinity edges only
                pos = vals > 0
                rows, cols, vals = rows[pos], cols[pos], vals[pos]
                if vals.size == 0:
                    raise ClusteringError(
                        "no positive-similarity pairs survive; the new points "
                        "are unconnected to the fitted graph"
                    )
        else:
            vals = np.asarray(weights_new, dtype=np.float64).ravel()
            if vals.size != pairs.shape[0]:
                raise ClusteringError(
                    f"weights_new length {vals.size} != pairs_new rows "
                    f"{pairs.shape[0]}"
                )
            if np.any(vals <= 0):
                raise ClusteringError("weights_new must be positive")

        # CSR structure of S_new (n_new × n_anchor), rows column-sorted
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=m), out=indptr[1:])

        store_dtype = self._store_dtype()
        vals_q = quantize(vals, store_dtype)
        nnz = int(vals_q.size)
        d = int(self.anchors.shape[1]) if feature_path else 0
        ledger = PredictLedger(
            n_new=m, n_anchor=self.n_anchor, k=self.k, nnz=nnz, d=d,
            feature_path=feature_path, itemsize=int(np.dtype(store_dtype).itemsize),
        )

        do_normalize = bool(self.params.get("normalize_rows", False))

        def host_path():
            deg = nystrom_degrees(indptr, vals_q)
            emb = nystrom_scale(
                nystrom_product(indptr, cols, vals_q, self.basis),
                deg, self.eigenvalues,
            )
            if do_normalize:
                emb = normalize_rows(emb)
            return assign_nearest(emb, self.centroids), emb, deg, None

        if device is None:
            labels, emb, deg, _ = host_path()
            return PredictResult(
                labels=labels, embedding=emb, degrees=deg, ledger=ledger,
                ledger_ok=None, resilience={},
            )

        def device_path():
            meter0 = device.transfer_stats()
            t0 = device.elapsed
            bufs = []

            def alloc(fn):
                a = fn()
                bufs.append(a)
                return a

            try:
                with device.stage("predict"):
                    if feature_path:
                        alloc(lambda: device.to_device(Xn))
                        alloc(lambda: device.to_device(self.anchors))
                        alloc(lambda: device.to_device(rows))
                        dcols = alloc(lambda: device.to_device(cols))
                        device.charge_kernel(
                            "predict_similarity",
                            2.0 * nnz * d,
                            2.0 * nnz * d * 8 + nnz * 24.0,
                        )
                        dvals = alloc(
                            lambda: device.empty((nnz,), dtype=store_dtype)
                        )
                        dvals.data[...] = vals_q
                    else:
                        dcols = alloc(lambda: device.to_device(cols))
                        dvals = alloc(lambda: device.to_device(vals_q))
                    dptr = alloc(lambda: device.to_device(indptr))
                    device.charge_kernel(
                        "predict_degrees",
                        1.0 * nnz,
                        nnz * ledger.itemsize + m * 8.0,
                    )
                    deg = nystrom_degrees(indptr, vals_q)
                    dbasis = alloc(lambda: device.to_device(self.basis))
                    S_dev = DeviceCSR(dptr, dcols, dvals, (m, self.n_anchor))
                    C = alloc(
                        lambda: device.empty((m, self.k), dtype=np.float64)
                    )
                    csrmm(S_dev, dbasis, C=C)
                    device.charge_kernel(
                        "nystrom_scale", 2.0 * m * self.k, 3.0 * m * self.k * 8
                    )
                    C.data[...] = nystrom_scale(C.data, deg, self.eigenvalues)
                    if do_normalize:
                        device.charge_kernel(
                            "normalize_rows",
                            3.0 * m * self.k,
                            2.0 * m * self.k * 8,
                        )
                        C.data[...] = normalize_rows(C.data)
                    alloc(lambda: device.to_device(self.centroids))
                    dlabels = alloc(
                        lambda: device.empty((m,), dtype=np.int64)
                    )
                    device.charge_kernel(
                        "predict_assign",
                        2.0 * m * self.k * self.k + 3.0 * m * self.k,
                        (m * self.k + self.k * self.k + 2.0 * m) * 8,
                        kind="dense",
                    )
                    dlabels.data[...] = assign_nearest(C.data, self.centroids)
                    emb = C.copy_to_host()
                    labels = dlabels.copy_to_host()
            finally:
                for a in bufs:
                    a.free()
            return labels, emb, deg, (meter0, device.elapsed - t0)

        from repro.core.pipeline import _run_resilient

        if policy is None:
            from repro.chaos.retry import ResiliencePolicy

            policy = ResiliencePolicy()
        (labels, emb, deg, audit), rec = _run_resilient(
            device, policy, "predict", [device_path], host_path
        )

        ledger_ok: bool | None = None
        sim_time = 0.0
        clean = (
            audit is not None
            and not rec["retries"] and not rec["degrade_steps"]
            and rec["fallback"] is None
        )
        if audit is not None:
            meter0, sim_time = audit
        if clean:
            meter1 = device.transfer_stats()
            ledger_ok = (
                meter1["bytes_h2d"] - meter0["bytes_h2d"]
                == ledger.total_h2d_bytes()
                and meter1["bytes_d2h"] - meter0["bytes_d2h"]
                == ledger.total_d2h_bytes()
                and meter1["n_h2d"] - meter0["n_h2d"] == ledger.n_h2d
                and meter1["n_d2h"] - meter0["n_d2h"] == ledger.n_d2h
            )
        resilience = {}
        if any((rec["retries"], rec["degrade_steps"], rec["resumes"],
                rec["fallback"])):
            resilience["predict"] = rec
        return PredictResult(
            labels=labels, embedding=emb, degrees=deg, ledger=ledger,
            ledger_ok=ledger_ok, resilience=resilience,
            simulated_time=sim_time,
        )

    def predict_embedding(self, E_new: np.ndarray) -> np.ndarray:
        """Pure-centroid assignment of precomputed embedding rows.

        The microsecond path: no similarity build, no SpMM, no device —
        one small GEMM-expansion argmin on the host.
        """
        E = np.asarray(E_new, dtype=np.float64)
        if E.ndim != 2 or E.shape[1] != self.k:
            raise ClusteringError(
                f"E_new must be (n, {self.k}), got {np.asarray(E_new).shape}"
            )
        return assign_nearest(E, self.centroids)

    # ------------------------------------------------------------------
    # incremental graph deltas
    # ------------------------------------------------------------------
    def apply_delta(
        self,
        edges_added=None,
        weights_added=None,
        edges_removed=None,
        device=None,
        policy=None,
    ) -> ApplyDeltaResult:
        """Apply an edge delta; refit lazily on Ritz-drift threshold.

        Edges use original vertex ids (both endpoints must be anchor
        vertices — the fitted vertex set is fixed).  The delta patches
        the resident CSR and is priced as its own small transfers; the
        Weyl bound on the resulting Ritz movement accumulates across
        lazy updates, and once it exceeds half the fitted spectral gap a
        full (bit-identical) refit on the patched graph runs instead.
        """

        def map_edges(edges, what):
            if edges is None:
                return None
            e = np.asarray(edges, dtype=np.int64)
            if e.size == 0:
                return e.reshape(0, 2)
            if e.ndim != 2 or e.shape[1] != 2:
                raise ClusteringError(
                    f"{what} must be (m, 2) vertex pairs, got {e.shape}"
                )
            return np.column_stack([
                self._anchor_positions(e[:, 0], what),
                self._anchor_positions(e[:, 1], what),
            ])

        W_new, drows, dcols, dvals, deg_old, deg_new = apply_edge_delta(
            self.graph,
            map_edges(edges_added, "edges_added"),
            weights_added,
            map_edges(edges_removed, "edges_removed"),
        )
        bound = ritz_drift_bound(drows, dcols, dvals, deg_old, deg_new)
        threshold = drift_threshold(
            self.eigenvalues, self.n_anchor, self.drift_scale
        )
        accumulated = self._accumulated_drift + bound

        if accumulated <= threshold:
            ledger = DeltaLedger(nnz_delta=int(dvals.size), n=self.n_anchor)
            ledger_ok: bool | None = None
            sim_time = 0.0
            if device is not None:
                meter0 = device.transfer_stats()
                t0 = device.elapsed
                bufs = []
                try:
                    with device.stage("delta"):
                        bufs.append(device.to_device(drows))
                        bufs.append(device.to_device(dcols))
                        bufs.append(device.to_device(dvals))
                        # in-place scatter into the resident CSR + the
                        # on-device drift statistic (fused reduction)
                        device.charge_kernel(
                            "csr_delta_patch",
                            4.0 * dvals.size,
                            6.0 * dvals.size * 8,
                        )
                        device.charge_scalar_d2h()
                finally:
                    for a in bufs:
                        a.free()
                sim_time = device.elapsed - t0
                meter1 = device.transfer_stats()
                ledger_ok = (
                    meter1["bytes_h2d"] - meter0["bytes_h2d"]
                    == ledger.total_h2d_bytes()
                    and meter1["bytes_d2h"] - meter0["bytes_d2h"]
                    == ledger.total_d2h_bytes()
                    and meter1["n_h2d"] - meter0["n_h2d"] == ledger.n_h2d
                    and meter1["n_d2h"] - meter0["n_d2h"] == ledger.n_d2h
                )
            self.graph = W_new
            self.degrees = deg_new
            self._accumulated_drift = accumulated
            return ApplyDeltaResult(
                refit=False, drift_bound=bound, threshold=threshold,
                accumulated_drift=accumulated, labels=self.labels,
                ledger=ledger, ledger_ok=ledger_ok, simulated_time=sim_time,
            )

        # threshold crossed: full refit on the patched graph — a plain
        # fit(graph=...), so parity with a cold fit is exact by
        # construction
        from repro.core.pipeline import SpectralClustering

        params = dict(self.params)
        params["device"] = device
        params["chaos"] = None
        if policy is not None:
            params["resilience"] = policy
        t0 = device.elapsed if device is not None else 0.0
        res = SpectralClustering(**params).fit(graph=W_new)
        sim_time = (device.elapsed - t0) if device is not None else 0.0
        refit_model = res.model
        if refit_model is None:  # pragma: no cover - same param family
            raise ClusteringError("refit produced no model")
        labels_global = np.full(self.n_total, -1, dtype=np.int64)
        labels_global[self.kept] = res.labels

        self.basis = refit_model.basis
        self.eigenvalues = refit_model.eigenvalues
        self.degrees = refit_model.degrees
        self.centroids = refit_model.centroids
        self.embedding = refit_model.embedding
        self.graph = refit_model.graph
        if self.anchors is not None:
            self.anchors = self.anchors[refit_model.kept]
        self.kept = self.kept[refit_model.kept]
        self.labels = labels_global
        self.resilience = dict(refit_model.resilience)
        self._accumulated_drift = 0.0
        self.n_refits += 1
        return ApplyDeltaResult(
            refit=True, drift_bound=bound, threshold=threshold,
            accumulated_drift=0.0, labels=labels_global, result=res,
            simulated_time=sim_time,
        )
