"""Standalone spectral embedding (steps 1-3 of the pipeline).

Useful when the downstream consumer is not k-means — visualization,
a different clusterer, or embedding reuse across several k-means runs
(the seeding ablation does exactly that).
"""

from __future__ import annotations

import numpy as np

from repro.core.workflow import hybrid_eigensolver
from repro.cuda.device import Device
from repro.cusparse.matrices import coo_to_device
from repro.errors import ClusteringError
from repro.graph.components import remove_isolated
from repro.graph.laplacian import device_sym_normalize
from repro.linalg.utils import normalize_rows as _normalize_rows
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def spectral_embedding(
    graph: COOMatrix | CSRMatrix,
    n_components: int,
    m: int | None = None,
    eig_tol: float = 0.0,
    normalize_rows: bool = False,
    seed: int | None = 0,
    device: Device | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the k-dimensional spectral embedding of a similarity graph
    on the hybrid platform.

    Returns
    -------
    (embedding, eigenvalues, kept):
        ``(n_kept, k)`` embedding rows (eigenvectors of ``D⁻¹W`` scaled
        from the symmetric operator), the corresponding eigenvalues
        (descending), and the original indices of non-isolated nodes.
    """
    if n_components < 1:
        raise ClusteringError(f"n_components must be >= 1, got {n_components}")
    csr = graph if isinstance(graph, CSRMatrix) else graph.to_csr()
    W_sub, kept = remove_isolated(csr)
    n = W_sub.shape[0]
    if n <= n_components:
        raise ClusteringError(
            f"only {n} non-isolated nodes for {n_components} components"
        )
    device = device if device is not None else Device()
    dcoo = coo_to_device(device, W_sub.to_coo().sorted_by_row())
    deg = np.bincount(dcoo.row.data, weights=dcoo.val.data, minlength=n)
    dcsr = device_sym_normalize(dcoo)
    theta, U, _ = hybrid_eigensolver(
        device, dcsr, k=n_components, m=m, tol=eig_tol, seed=seed
    )
    order = np.argsort(theta)[::-1]
    theta = theta[order]
    U = U[:, order]
    inv_sqrt = 1.0 / np.sqrt(np.where(deg > 0, deg, 1.0))
    U = U * inv_sqrt[:, None]
    if normalize_rows:
        U = _normalize_rows(U)
    return U, theta, kept
