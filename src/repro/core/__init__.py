"""The paper's primary contribution: the hybrid CPU-GPU spectral clustering
pipeline (Figure 2).

:class:`~repro.core.pipeline.SpectralClustering` is the public estimator;
:mod:`repro.core.workflow` contains the hybrid stage runners (Algorithm 1 →
Algorithm 2 → Algorithm 3 → Algorithm 4) with the CPU/GPU/PCIe time
accounting; :mod:`repro.core.result` defines the result records.
"""

from repro.core.embedding import spectral_embedding
from repro.core.model import (
    ApplyDeltaResult,
    FittedSpectralModel,
    PredictResult,
)
from repro.core.pipeline import SpectralClustering
from repro.core.result import ClusteringResult, EmbeddingResult, StageTimings
from repro.core.workflow import hybrid_eigensolver, EigStats

__all__ = [
    "SpectralClustering",
    "spectral_embedding",
    "ApplyDeltaResult",
    "FittedSpectralModel",
    "PredictResult",
    "ClusteringResult",
    "EmbeddingResult",
    "StageTimings",
    "hybrid_eigensolver",
    "EigStats",
]
