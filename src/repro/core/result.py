"""Result records for the spectral clustering pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cuda.profiler import ProfileReport
from repro.kmeans.utils import KMeansResult


@dataclass
class StageTimings:
    """Per-stage timing on both axes.

    ``simulated`` — seconds on the modeled Table I platform (the
    paper-comparable axis); ``wall`` — actual Python execution seconds of
    this process (regression-tracking axis; not comparable to the paper).
    """

    simulated: dict[str, float] = field(default_factory=dict)
    wall: dict[str, float] = field(default_factory=dict)

    def total_simulated(self) -> float:
        return sum(self.simulated.values())

    def total_wall(self) -> float:
        return sum(self.wall.values())

    def format_table(self) -> str:
        stages = sorted(set(self.simulated) | set(self.wall))
        lines = [f"{'stage':<16}{'simulated/s':>14}{'wall/s':>12}", "-" * 42]
        for s in stages:
            lines.append(
                f"{s:<16}{self.simulated.get(s, 0.0):>14.4f}"
                f"{self.wall.get(s, 0.0):>12.4f}"
            )
        lines.append("-" * 42)
        lines.append(
            f"{'total':<16}{self.total_simulated():>14.4f}{self.total_wall():>12.4f}"
        )
        return "\n".join(lines)


@dataclass
class EmbeddingResult:
    """Stages 1-3 of the pipeline: the reusable spectral embedding.

    This is the expensive artifact worth caching across requests (the
    Laplacian build and Lanczos solve dominate pipeline cost); the serving
    layer's embedding cache stores exactly this record, keyed by a content
    fingerprint of the graph plus the solver parameters.

    Attributes
    ----------
    embedding:
        ``(n_kept, k)`` spectral embedding rows, post back-mapping and
        optional row normalization — exactly what stage 4 consumes.
    eigenvalues:
        The k leading eigenvalues (same ordering convention as
        :class:`ClusteringResult`).
    kept:
        Original indices of non-isolated nodes.
    n_total:
        Node count before isolated-node removal (labels length).
    timings:
        Per-stage simulated + wall times of stages 1-3.
    profile:
        Device profile over the embedding computation.
    eig_stats:
        Eigensolver counters.
    resilience:
        Per-stage fault-recovery record (see :class:`ClusteringResult`).
    fault_events:
        Chaos events fired while computing the embedding.
    """

    embedding: np.ndarray
    eigenvalues: np.ndarray
    kept: np.ndarray
    n_total: int
    timings: StageTimings
    profile: ProfileReport
    eig_stats: dict
    resilience: dict = field(default_factory=dict)
    fault_events: tuple = ()

    @property
    def n_components(self) -> int:
        return int(self.embedding.shape[1])

    @property
    def nbytes(self) -> int:
        """Approximate cached footprint (embedding + eigenvalues + kept)."""
        return int(
            self.embedding.nbytes + self.eigenvalues.nbytes + self.kept.nbytes
        )


@dataclass
class ClusteringResult:
    """Everything a pipeline run produces.

    Attributes
    ----------
    labels:
        ``(n,)`` cluster assignment on the *original* node indexing;
        isolated nodes removed before clustering carry label ``-1``.
    eigenvalues:
        The k leading eigenvalues of the normalized adjacency (descending
        closeness to 1 indicates cluster structure).
    embedding:
        ``(n_kept, k)`` spectral embedding rows fed to k-means.
    kmeans:
        The full k-means sub-result.
    timings:
        Per-stage simulated + wall times.
    profile:
        Device profile (communication vs computation, Table VII).
    eig_stats:
        Eigensolver counters (ops, restarts, PCIe round trips).
    kept:
        Original indices of non-isolated nodes that were clustered.
    resilience:
        Per-stage fault-recovery record: ``{stage: {"retries": int,
        "degrade_steps": int, "resumes": int, "fallback": "cpu" | None}}``.
        Empty when the run saw no faults and no resilience policy.
    fault_events:
        The :class:`~repro.chaos.plan.FaultEvent` records fired by an
        installed chaos plan during this run, in firing order.
    model:
        The reusable :class:`~repro.core.model.FittedSpectralModel` for
        out-of-sample ``predict`` and incremental ``apply_delta``
        (untyped here to keep this module import-light).  ``None`` for
        parameterizations without a Nyström extension (ratiocut
        objective, compressive embedding tier).
    """

    labels: np.ndarray
    eigenvalues: np.ndarray
    embedding: np.ndarray
    kmeans: KMeansResult
    timings: StageTimings
    profile: ProfileReport
    eig_stats: dict
    kept: np.ndarray
    resilience: dict = field(default_factory=dict)
    fault_events: tuple = ()
    model: object | None = None

    @property
    def degraded_stages(self) -> tuple[str, ...]:
        """Stages that recovered from a fault (retry, degrade, or fallback)."""
        return tuple(
            stage for stage, rec in self.resilience.items()
            if rec.get("retries") or rec.get("degrade_steps")
            or rec.get("resumes") or rec.get("fallback")
        )

    @property
    def n_clusters(self) -> int:
        return self.kmeans.k

    def summary(self) -> str:
        """Human-readable one-stop report."""
        lines = [
            f"spectral clustering: n={self.labels.size} "
            f"(kept {self.kept.size}), k={self.n_clusters}",
            f"eigensolver: {self.eig_stats.get('n_op', '?')} SpMVs, "
            f"{self.eig_stats.get('n_restarts', '?')} restarts, "
            f"converged={self.eig_stats.get('converged', '?')}",
            f"k-means: {self.kmeans.n_iter} iterations, "
            f"inertia={self.kmeans.inertia:.6g}",
            self.timings.format_table(),
            f"communication {self.profile.communication:.4f}s vs "
            f"computation {self.profile.computation:.4f}s (simulated)",
        ]
        if self.fault_events:
            lines.append(f"injected faults fired: {len(self.fault_events)}")
        for stage in self.degraded_stages:
            rec = self.resilience[stage]
            parts = []
            if rec.get("retries"):
                parts.append(f"{rec['retries']} retries")
            if rec.get("degrade_steps"):
                parts.append(f"degraded x{rec['degrade_steps']}")
            if rec.get("resumes"):
                parts.append(f"{rec['resumes']} checkpoint resumes")
            if rec.get("fallback"):
                parts.append(f"finished on {rec['fallback']}")
            lines.append(f"resilience[{stage}]: " + ", ".join(parts))
        return "\n".join(lines)
