"""The public estimator: :class:`SpectralClustering`.

Implements the complete Figure 2 workflow on the simulated CPU-GPU
platform:

1. **Preprocessing** (point input only, Algorithm 1): transfer data and
   ε-edge list, build the COO similarity matrix on the device;
2. **Laplacian** (Algorithm 2): degree vector by SpMV, ``ScaleElements``,
   ``coo2csr``;
3. **Eigensolver** (Algorithm 3): ARPACK-style reverse communication on
   the CPU with ``cusparseDcsrmv`` on the GPU;
4. **k-means** (Algorithms 4-5) on the rows of the eigenvector matrix.

Graph input (FB/DBLP/Syn200-style) enters directly at step 2, exactly as
§II notes.

Staged entry points
-------------------
:meth:`SpectralClustering.fit` runs all four stages.  The serving layer
(:mod:`repro.serve`) needs to reuse intermediate artifacts across
requests, so the stages are also exposed as composable entry points with
identical arithmetic:

* :meth:`SpectralClustering.embed` — stages 1-3, returning an
  :class:`~repro.core.result.EmbeddingResult` (the cacheable artifact);
* :meth:`SpectralClustering.fit_embedding` — stage 4 on a precomputed
  embedding, returning a full :class:`~repro.core.result.ClusteringResult`.

``fit(graph=W)`` and ``fit_embedding(embed(graph=W))`` perform the same
operations in the same order, so labels and embeddings agree bit for bit.

Fault injection and resilience
------------------------------
``chaos=`` installs a :class:`~repro.chaos.plan.FaultPlan` (or builds one
from an integer seed) for the duration of the fit, making the simulated
runtime raise typed :class:`~repro.errors.CudaError`\\ s at planned sites.
``resilience=`` selects the :class:`~repro.chaos.retry.ResiliencePolicy`
response: transient faults retry with simulated-clock backoff, device OOM
shrinks the stage's working-set knob (``edge_chunk`` / ``tile_rows``) and
retries, the eigensolver resumes from its latest Lanczos checkpoint, and
as a last resort each stage falls back to its host implementation.  Every
recovery is recorded per-stage in ``result.resilience``.
"""

from __future__ import annotations

import contextlib
import math
import time
from dataclasses import replace as _dc_replace

import numpy as np

from repro.chaos.plan import FaultPlan
from repro.chaos.retry import ResiliencePolicy, TRANSIENT_ERRORS, with_retry
from repro.chaos.runtime import chaos as _chaos_scope
from repro.compressive.engine import compressive_embedding
from repro.compressive.lift import (
    LIFT_MODES,
    lift_labels_device,
    lift_labels_host,
)
from repro.compressive.sampling import (
    coherence_weights,
    default_sample_frac,
    gather_rows,
    sample_vertices,
)
from repro.core.model import FittedSpectralModel
from repro.core.result import ClusteringResult, EmbeddingResult, StageTimings
from repro.core.workflow import EMBEDDING_MODES, hybrid_eigensolver
from repro.cuda.device import Device
from repro.cuda.profiler import Profiler
from repro.cusparse.matrices import coo_to_device, csr_to_device
from repro.cusparse.partition import PARTITION_MODES, partition_csr
from repro.errors import ChaosError, ClusteringError, CudaError, DeviceMemoryError
from repro.graph.build import build_similarity_device, build_similarity_graph
from repro.graph.components import remove_isolated
from repro.graph.laplacian import (
    degrees,
    device_rw_normalize,
    device_shifted_laplacian,
    device_sym_normalize,
    rw_normalized_adjacency,
    sym_normalized_adjacency,
)
from repro.hw.costmodel import TransferCostModel
from repro.hw.topology import paper_topology
from repro.kmeans.cpu import kmeans_cpu
from repro.kmeans.gpu import kmeans_device
from repro.kmeans.multi_gpu import kmeans_composed
from repro.linalg.utils import normalize_rows
from repro.precision import PRECISIONS
from repro.sparse.construct import diags
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

#: embedding algorithms the pipeline accepts: the eigensolver-backed
#: modes plus the compressive tier (which has its own device driver)
PIPELINE_EMBEDDINGS = (*EMBEDDING_MODES, "compressive")


def _run_resilient(device, policy, stage, gpu_attempts, cpu_fn):
    """Run one pipeline stage under a resilience policy.

    ``gpu_attempts`` is the degrade ladder: zero-arg callables tried in
    order, each internally retried for transient faults with backoff.  A
    :class:`DeviceMemoryError` advances to the next (smaller working set)
    rung; exhausted transients or any other device error drop to
    ``cpu_fn`` (the host implementation) when the policy allows it.

    Returns ``(value, record)`` where ``record`` tallies the recovery
    actions taken (all zero/None on a clean first attempt).
    """
    rec = {"retries": 0, "degrade_steps": 0, "resumes": 0, "fallback": None}

    def count(_attempt: int) -> None:
        rec["retries"] += 1

    if not policy.enabled:
        return gpu_attempts[0](), rec

    last_err: CudaError | None = None
    for rung, attempt in enumerate(gpu_attempts):
        try:
            value = with_retry(
                attempt, device, policy, site=f"stage.{stage}", on_retry=count
            )
            rec["degrade_steps"] = rung
            return value, rec
        except DeviceMemoryError as err:
            last_err = err
            if not policy.oom_degrade:
                break
            # fall through to the next rung with a smaller working set
        except CudaError as err:
            last_err = err
            break
    if cpu_fn is not None and policy.cpu_fallback:
        rec["fallback"] = "cpu"
        return cpu_fn(), rec
    assert last_err is not None
    raise last_err


class _ComposedPlan:
    """Per-fit state of the one-plan multi-device composition.

    Created (empty) when ``fit_devices > 1``; :meth:`build` runs once,
    right after the operator stage, and is the *only* place the fit
    partitions rows: the peer device group, the PCIe topology, and the
    :class:`~repro.cusparse.partition.PartitionedCSR` built here are
    reused by the sharded eigensolve (which elides its result D2H) and by
    the composed k-means (which consumes the still-resident embedding
    shards) — no re-gather/re-scatter between stages.
    """

    def __init__(self, n_devices: int, mode: str) -> None:
        self.n_devices = n_devices
        self.mode = mode
        self.devices: list[Device] | None = None
        self.topology = None
        self.plan = None
        self.kmeans_timings = None
        self.kmeans_plan: dict | None = None

    @property
    def active(self) -> bool:
        return self.plan is not None

    def build(self, device: Device, dcsr) -> None:
        """Partition ``dcsr`` once over a fresh topology-aware device
        group (device 0 is the pipeline's primary device)."""
        topo = paper_topology(self.n_devices)
        device.device_index = 0
        device.topology = topo
        device.transfer_cost = TransferCostModel(device.pcie, topo)
        self.topology = topo
        self.devices = [device] + [
            Device(
                device.spec, device.pcie, timeline=device.timeline,
                device_index=dd, topology=topo,
            )
            for dd in range(1, self.n_devices)
        ]
        self.plan = partition_csr(dcsr, self.devices, mode=self.mode)

    @property
    def row_sets(self):
        return [shard.rows for shard in self.plan.shards]

    def summary(self) -> dict:
        """Composition evidence surfaced on ``result.eig_stats``."""
        out = {
            "n_devices": self.n_devices,
            "partition_mode": self.mode,
            "row_counts": [int(r.size) for r in self.row_sets],
            "step_halo_bytes": int(self.plan.step_halo_bytes()),
        }
        if self.kmeans_timings is not None:
            out["kmeans_makespan_s"] = float(
                self.kmeans_timings.parallel_seconds
            )
        if self.kmeans_plan is not None:
            out["kmeans_transfers"] = dict(self.kmeans_plan)
        return out

    def close(self) -> None:
        if self.plan is not None:
            self.plan.free()
            self.plan = None


def _fresh_rec() -> dict:
    return {"retries": 0, "degrade_steps": 0, "resumes": 0, "fallback": None}


def _note(resilience: dict, stage: str, rec: dict) -> None:
    if any(bool(v) for v in rec.values()):
        resilience[stage] = rec


class SpectralClustering:
    """Hybrid CPU-GPU spectral clustering (normalized cut).

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    similarity:
        Measure for the point-input path: 'crosscorr' (paper's DTI
        choice), 'cosine' or 'expdecay'.
    sigma:
        Bandwidth for 'expdecay'.
    operator:
        'sym' (default) iterates with the symmetric ``D^{-1/2}WD^{-1/2}``
        and maps eigenvectors back through ``D^{-1/2}`` — the numerically
        sound realization of the paper's ``D⁻¹W`` largest-eigenvector
        formulation (identical spectrum, and exactly the generalized
        eigenvectors of ``Lx = λDx``).  'rw' feeds ``D⁻¹W`` to the
        symmetric Lanczos machinery verbatim, as the paper describes;
        offered for ablation.
    objective:
        'ncut' (default): the paper's normalized-cut relaxation via
        ``operator``.  'ratiocut': the Eq. 3 relaxation — smallest
        eigenvectors of the *unnormalized* ``L = D - W``, computed on the
        device through a Gershgorin shift (``operator`` is then ignored);
        ``result.eigenvalues`` holds λ(L) ascending in that mode.
    m:
        Lanczos basis size (default ``min(n, max(2k+1, 20))``, the paper's
        ``m = 2k`` rule).
    eig_tol:
        Eigensolver relative tolerance (0 = machine eps).
    eig_maxiter:
        Restart cap.
    eig_residency:
        Iteration-vector placement for Algorithm 3: 'device' (default)
        keeps the Lanczos vectors GPU-resident so only ARPACK's small
        tridiagonal state crosses PCIe at restart boundaries; 'host' is
        the paper's original ship-the-vector-twice-per-step loop.  Both
        produce bit-identical eigenpairs.
    eig_spmv_format:
        SpMV operand format for the eigensolver: 'auto' (default) lets
        the row-length-statistics autotuner choose between 'csr', 'ell'
        and 'hyb'; or force one.  Format only changes charged time.
    eig_devices:
        Shard the eigensolver across this many simulated GPUs (default
        1).  The normalized operator splits into row blocks with
        local/halo column separation; each SpMV overlaps the local
        kernel with device-to-device halo exchange on copy streams
        (:mod:`repro.cusparse.partition`).  Spectra, embeddings and
        labels are bit-identical to the single-device run — only the
        charged makespan changes.  Requires ``eig_residency='device'``
        and a CSR-compatible ``eig_spmv_format`` ('auto' or 'csr').
    fit_devices:
        Compose the *whole* fit — graph upload, Laplacian, sharded
        eigensolve, and multi-device k-means — as one multi-device plan
        spanning this many simulated GPUs (default 1).  Rows are
        partitioned once (``partition_mode``) right after the operator
        stage; the eigensolver reuses that plan and keeps its Ritz block
        sharded (the result D2H is elided), and the k-means stage runs
        on the still-resident shards — no re-gather/re-scatter between
        stages.  Labels, spectra and embeddings stay bit-identical to
        ``fit_devices=1`` at every device count.  Requires
        ``eig_residency='device'``, an exact eigensolver embedding
        ('lanczos' or 'power'), ``precision='fp64'``, a CSR-compatible
        ``eig_spmv_format``, and ``eig_devices`` either 1 or equal to
        ``fit_devices``.  Composition evidence (partition mode, halo
        bytes, k-means transfer plan) lands on
        ``result.eig_stats['composed']``.
    partition_mode:
        Row partitioner for every multi-device path (``eig_devices`` or
        ``fit_devices`` > 1): 'nnz' (default) balances nonzeros per
        device with contiguous row blocks; 'rows' is the uniform
        row-count split (the pre-topology behavior); 'mincut' grows
        BFS clusters to minimize cross-device halo traffic (row sets may
        be non-contiguous).  All modes are bit-identical; only charged
        transfer/kernel time changes.
    precision:
        Storage precision for the eigensolver's operator values and
        iteration vectors: 'fp64' (default — the exact path, bit-identical
        to builds without this knob), 'fp32' or 'fp16'.  Reduced solves
        accumulate in fp64 and finish with fp64 iterative-refinement
        steps against the full-precision operator
        (:mod:`repro.precision`); accuracy is gated by the tolerance
        bands in the regression harness rather than bit-identity.
    embedding:
        Spectral embedding algorithm: 'lanczos' (default) is the full
        IRLM reverse-communication loop; 'power' is the block
        power-iteration embedding of Boutsidis et al. — pure repeated
        SpMM, no restarts — whose embedding is approximate by design but
        k-means-equivalent on clusterable graphs.  'compressive' is the
        Chebyshev graph-filtering tier of Tremblay et al.
        (:mod:`repro.compressive`): no eigenvectors at all — an order-p
        polynomial filter applied to O(log k) seeded random signals
        yields the feature sketch, k-means runs on a coherence-sampled
        vertex subset, and labels lift back by regularized
        interpolation.  Requires ``objective='ncut'`` (the filter's
        pass band targets the normalized operators' top-k spectrum).
    filter_order:
        Chebyshev polynomial degree for ``embedding='compressive'``
        (default :data:`repro.compressive.DEFAULT_FILTER_ORDER`).  One
        SpMM per degree; higher = sharper band edge = better ARI.
    n_signals:
        Random-signal count d for ``embedding='compressive'``
        (default ``max(8, ceil(4·log2(k+1)))``).
    sample_frac:
        Fraction of vertices the compressive k-means clusters (default:
        the ``O(k log k / n)`` heuristic, saturating at 1.0 on small
        graphs, where downsampling and lifting are skipped entirely).
    lift:
        Label-lifting mode for ``embedding='compressive'``: 'interp'
        (default) is the regularized sketch-space interpolation;
        'nearest' assigns by nearest sampled centroid (cheap mode).
    kmeans_init:
        'k-means++' (paper's choice) or 'random'.
    kmeans_max_iter:
        Lloyd iteration cap.
    kmeans_update:
        Centroid update for Algorithm 4: 'spmm' (default) builds the
        one-hot membership CSR on-device and computes centroid sums with
        one ``cusparseDcsrmm``; 'sort' is the paper's §IV.C
        sort + segmented-reduction formulation.  Results are bit-identical;
        only charged time differs.
    kmeans_fused:
        Fuse the per-tile distance init, gemm, argmin and label-change
        count into one kernel (default True), with inertia computed by a
        charged device kernel.  False keeps the discrete kernel sequence
        for ablation; bit-identical results either way.
    normalize_rows:
        Scale embedding rows to unit norm before k-means (the
        Ng-Jordan-Weiss variant; the paper does not, so default False).
    handle_isolated:
        'remove' (default) drops zero-degree nodes and labels them ``-1``;
        'error' raises (the paper's stated assumption is ``D_ii > 0``).
    seed:
        Seeds the eigensolver start vector and the k-means initialization.
    device:
        Supply a :class:`~repro.cuda.device.Device` to share/inspect the
        timeline; a fresh K20c is created per fit otherwise.
    chaos:
        Fault injection: a :class:`~repro.chaos.plan.FaultPlan`, an int
        seed (expanded with :meth:`FaultPlan.from_seed` at each fit, so
        equal seeds give identical schedules), or None (no faults).
    resilience:
        A :class:`~repro.chaos.retry.ResiliencePolicy`; None selects the
        default enabled policy.  Pass
        :data:`~repro.chaos.retry.DISABLED` to let faults propagate.
    """

    def __init__(
        self,
        n_clusters: int,
        similarity: str = "crosscorr",
        sigma: float = 1.0,
        operator: str = "sym",
        objective: str = "ncut",
        m: int | None = None,
        eig_tol: float = 0.0,
        eig_maxiter: int | None = None,
        eig_residency: str = "device",
        eig_spmv_format: str = "auto",
        eig_devices: int = 1,
        fit_devices: int = 1,
        partition_mode: str = "nnz",
        precision: str = "fp64",
        embedding: str = "lanczos",
        filter_order: int | None = None,
        n_signals: int | None = None,
        sample_frac: float | None = None,
        lift: str = "interp",
        kmeans_init: str = "k-means++",
        kmeans_max_iter: int = 300,
        kmeans_update: str = "spmm",
        kmeans_fused: bool = True,
        normalize_rows: bool = False,
        handle_isolated: str = "remove",
        seed: int | None = 0,
        device: Device | None = None,
        chaos: FaultPlan | int | None = None,
        resilience: ResiliencePolicy | None = None,
    ) -> None:
        if n_clusters < 2:
            raise ClusteringError(f"n_clusters must be >= 2, got {n_clusters}")
        if operator not in ("sym", "rw"):
            raise ClusteringError(f"operator must be 'sym' or 'rw', got {operator!r}")
        if objective not in ("ncut", "ratiocut"):
            raise ClusteringError(
                f"objective must be 'ncut' or 'ratiocut', got {objective!r}"
            )
        if handle_isolated not in ("remove", "error"):
            raise ClusteringError(
                f"handle_isolated must be 'remove' or 'error', got {handle_isolated!r}"
            )
        if eig_residency not in ("device", "host"):
            raise ClusteringError(
                f"eig_residency must be 'device' or 'host', got {eig_residency!r}"
            )
        if eig_spmv_format not in ("auto", "csr", "ell", "hyb"):
            raise ClusteringError(
                f"eig_spmv_format must be 'auto', 'csr', 'ell' or 'hyb', "
                f"got {eig_spmv_format!r}"
            )
        if not isinstance(eig_devices, int) or eig_devices < 1:
            raise ClusteringError(
                f"eig_devices must be an int >= 1, got {eig_devices!r}"
            )
        if eig_devices > 1 and eig_residency != "device":
            raise ClusteringError(
                "eig_devices > 1 requires eig_residency='device'"
            )
        if eig_devices > 1 and eig_spmv_format not in ("auto", "csr"):
            raise ClusteringError(
                "eig_devices > 1 requires eig_spmv_format 'auto' or 'csr' "
                "(row blocks are stored as split local/halo CSR)"
            )
        if not isinstance(fit_devices, int) or fit_devices < 1:
            raise ClusteringError(
                f"fit_devices must be an int >= 1, got {fit_devices!r}"
            )
        if partition_mode not in PARTITION_MODES:
            raise ClusteringError(
                f"partition_mode must be one of {PARTITION_MODES}, "
                f"got {partition_mode!r}"
            )
        if fit_devices > 1:
            if eig_residency != "device":
                raise ClusteringError(
                    "fit_devices > 1 requires eig_residency='device'"
                )
            if embedding not in EMBEDDING_MODES:
                raise ClusteringError(
                    "fit_devices > 1 requires an eigensolver embedding "
                    f"({EMBEDDING_MODES}); the compressive tier shards via "
                    "eig_devices instead"
                )
            if precision != "fp64":
                raise ClusteringError(
                    "fit_devices > 1 requires precision='fp64' (the "
                    "composed plan partitions the fp64 operator once)"
                )
            if eig_spmv_format not in ("auto", "csr"):
                raise ClusteringError(
                    "fit_devices > 1 requires eig_spmv_format 'auto' or "
                    "'csr' (row blocks are stored as split local/halo CSR)"
                )
            if eig_devices not in (1, fit_devices):
                raise ClusteringError(
                    f"eig_devices ({eig_devices}) must be 1 or equal to "
                    f"fit_devices ({fit_devices}) when composing the fit"
                )
            if kmeans_update != "spmm" or not kmeans_fused:
                raise ClusteringError(
                    "fit_devices > 1 requires the default k-means path "
                    "(kmeans_update='spmm', kmeans_fused=True)"
                )
        if precision not in PRECISIONS:
            raise ClusteringError(
                f"precision must be one of {PRECISIONS}, got {precision!r}"
            )
        if embedding not in PIPELINE_EMBEDDINGS:
            raise ClusteringError(
                f"embedding must be one of {PIPELINE_EMBEDDINGS}, "
                f"got {embedding!r}"
            )
        if embedding == "compressive" and objective != "ncut":
            raise ClusteringError(
                "embedding='compressive' requires objective='ncut' (the "
                "Chebyshev filter's pass band targets the normalized "
                "operators' top-k spectrum)"
            )
        if filter_order is not None and (
            not isinstance(filter_order, int) or filter_order < 1
        ):
            raise ClusteringError(
                f"filter_order must be an int >= 1, got {filter_order!r}"
            )
        if n_signals is not None and (
            not isinstance(n_signals, int) or n_signals < 1
        ):
            raise ClusteringError(
                f"n_signals must be an int >= 1, got {n_signals!r}"
            )
        if sample_frac is not None and not (0.0 < float(sample_frac) <= 1.0):
            raise ClusteringError(
                f"sample_frac must be in (0, 1], got {sample_frac!r}"
            )
        if lift not in LIFT_MODES:
            raise ClusteringError(
                f"lift must be one of {LIFT_MODES}, got {lift!r}"
            )
        if kmeans_update not in ("spmm", "sort"):
            raise ClusteringError(
                f"kmeans_update must be 'spmm' or 'sort', got {kmeans_update!r}"
            )
        if chaos is not None and not isinstance(chaos, (int, FaultPlan)):
            raise ChaosError(
                f"chaos must be a FaultPlan, an int seed or None, "
                f"got {type(chaos).__name__}"
            )
        self.n_clusters = n_clusters
        self.similarity = similarity
        self.sigma = sigma
        self.operator = operator
        self.objective = objective
        self.m = m
        self.eig_tol = eig_tol
        self.eig_maxiter = eig_maxiter
        self.eig_residency = eig_residency
        self.eig_spmv_format = eig_spmv_format
        self.eig_devices = eig_devices
        self.fit_devices = fit_devices
        self.partition_mode = partition_mode
        self.precision = precision
        self.embedding = embedding
        self.filter_order = filter_order
        self.n_signals = n_signals
        self.sample_frac = sample_frac
        self.lift = lift
        self.kmeans_init = kmeans_init
        self.kmeans_max_iter = kmeans_max_iter
        self.kmeans_update = kmeans_update
        self.kmeans_fused = bool(kmeans_fused)
        self.normalize_rows = normalize_rows
        self.handle_isolated = handle_isolated
        self.seed = seed
        self.device = device
        self.chaos = chaos
        self.resilience = resilience
        # stage-capture scratch for the fitted model (fit-scoped)
        self._capture: dict | None = None

    # ------------------------------------------------------------------
    def _fault_plan(self) -> FaultPlan | None:
        if self.chaos is None:
            return None
        if isinstance(self.chaos, FaultPlan):
            return self.chaos
        return FaultPlan.from_seed(self.chaos)

    def _policy(self) -> ResiliencePolicy:
        if self.resilience is None:
            return ResiliencePolicy()
        return self.resilience

    def _model_params(self) -> dict:
        """Constructor kwargs that re-create this estimator bit for bit
        (runtime objects — device, chaos plan, policy — excluded)."""
        return {
            "n_clusters": self.n_clusters,
            "similarity": self.similarity,
            "sigma": self.sigma,
            "operator": self.operator,
            "objective": self.objective,
            "m": self.m,
            "eig_tol": self.eig_tol,
            "eig_maxiter": self.eig_maxiter,
            "eig_residency": self.eig_residency,
            "eig_spmv_format": self.eig_spmv_format,
            "eig_devices": self.eig_devices,
            "fit_devices": self.fit_devices,
            "partition_mode": self.partition_mode,
            "precision": self.precision,
            "embedding": self.embedding,
            "filter_order": self.filter_order,
            "n_signals": self.n_signals,
            "sample_frac": self.sample_frac,
            "lift": self.lift,
            "kmeans_init": self.kmeans_init,
            "kmeans_max_iter": self.kmeans_max_iter,
            "kmeans_update": self.kmeans_update,
            "kmeans_fused": self.kmeans_fused,
            "normalize_rows": self.normalize_rows,
            "handle_isolated": self.handle_isolated,
            "seed": self.seed,
        }

    def _check_inputs(self, X, edges, graph) -> None:
        point_input = X is not None
        if point_input == (graph is not None):
            raise ClusteringError(
                "provide either (X, edges) for the point path or graph= for "
                "the graph path, not both"
            )
        if point_input and edges is None:
            raise ClusteringError("point input requires the ε-neighborhood edges")

    def _context(self):
        """(device, policy, plan, chaos-scope) for one top-level entry."""
        device = self.device if self.device is not None else Device()
        policy = self._policy()
        plan = self._fault_plan()
        scope = _chaos_scope(plan) if plan is not None else contextlib.nullcontext()
        return device, policy, plan, scope

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray | None = None,
        edges: np.ndarray | None = None,
        graph: COOMatrix | CSRMatrix | None = None,
    ) -> ClusteringResult:
        """Cluster point data (``X`` + ``edges``) or a prebuilt ``graph``.

        Exactly one input form must be provided.  Returns a
        :class:`~repro.core.result.ClusteringResult`.
        """
        self._check_inputs(X, edges, graph)
        device, policy, plan, scope = self._context()
        with scope:
            return self._fit_under_plan(device, policy, plan, X, edges, graph)

    def embed(
        self,
        X: np.ndarray | None = None,
        edges: np.ndarray | None = None,
        graph: COOMatrix | CSRMatrix | None = None,
    ) -> EmbeddingResult:
        """Run stages 1-3 only and return the reusable spectral embedding.

        The returned :class:`~repro.core.result.EmbeddingResult` is the
        artifact the serving layer caches: feeding it to
        :meth:`fit_embedding` on an estimator with the same parameters
        reproduces :meth:`fit` bit for bit while skipping the Laplacian
        build and the Lanczos solve.
        """
        self._check_inputs(X, edges, graph)
        device, policy, plan, scope = self._context()
        with scope:
            prof = Profiler(device)
            prof.start()
            timings = StageTimings()
            resilience: dict[str, dict] = {}
            theta, embedding, kept, n_total, stats = self._embed_stages(
                device, policy, X, edges, graph, timings, resilience
            )
            return EmbeddingResult(
                embedding=embedding,
                eigenvalues=theta,
                kept=kept,
                n_total=n_total,
                timings=timings,
                profile=prof.stop(),
                eig_stats=stats.as_dict(),
                resilience=resilience,
                fault_events=plan.schedule if plan is not None else (),
            )

    def fit_embedding(self, emb: EmbeddingResult) -> ClusteringResult:
        """Run stage 4 (k-means) on a precomputed spectral embedding.

        The cache-hit path of the serving layer: no similarity build, no
        Laplacian, no eigensolve — only the k-means stage charges
        simulated time.  ``emb`` must come from :meth:`embed` on an
        estimator with the same embedding-relevant parameters for the
        result to match a cold :meth:`fit`.
        """
        if emb.embedding.ndim != 2:
            raise ClusteringError(
                f"embedding must be 2-D, got shape {emb.embedding.shape}"
            )
        device, policy, plan, scope = self._context()
        with scope:
            prof = Profiler(device)
            prof.start()
            timings = StageTimings()
            resilience: dict[str, dict] = {}
            km = self._kmeans_stage(device, policy, emb.embedding, timings, resilience)
            labels_full = np.full(emb.n_total, -1, dtype=np.int64)
            labels_full[emb.kept] = km.labels
            return ClusteringResult(
                labels=labels_full,
                eigenvalues=emb.eigenvalues,
                embedding=emb.embedding,
                kmeans=km,
                timings=timings,
                profile=prof.stop(),
                eig_stats=dict(emb.eig_stats),
                kept=emb.kept,
                resilience=resilience,
                fault_events=plan.schedule if plan is not None else (),
            )

    # ------------------------------------------------------------------
    def _fit_under_plan(
        self, device, policy, plan, X, edges, graph
    ) -> ClusteringResult:
        prof = Profiler(device)
        prof.start()
        timings = StageTimings()
        resilience: dict[str, dict] = {}

        composed = (
            _ComposedPlan(self.fit_devices, self.partition_mode)
            if self.fit_devices > 1
            else None
        )
        composed_summary = None
        # stage-level capture of the artifacts the fitted model reuses
        # (similarity graph, pre-normalization basis, degrees); only the
        # parameterizations with a Nyström extension capture anything
        self._capture = (
            {}
            if self.objective == "ncut" and self.embedding != "compressive"
            else None
        )
        try:
            theta, embedding, kept, n_total, stats = self._embed_stages(
                device, policy, X, edges, graph, timings, resilience,
                composed=composed,
            )
            km = self._kmeans_stage(
                device, policy, embedding, timings, resilience,
                composed=composed,
            )
            if composed is not None and composed.active:
                composed_summary = composed.summary()

            labels_full = np.full(n_total, -1, dtype=np.int64)
            labels_full[kept] = km.labels
            model = None
            cap = self._capture
            if cap is not None and "graph" in cap and "basis" in cap:
                model = FittedSpectralModel(
                    basis=cap["basis"],
                    eigenvalues=theta,
                    degrees=cap["degrees"],
                    centroids=km.centroids,
                    labels=labels_full,
                    embedding=embedding,
                    kept=kept,
                    n_total=n_total,
                    graph=cap["graph"],
                    anchors=cap.get("anchors"),
                    params=self._model_params(),
                    resilience=dict(resilience),
                )
        finally:
            self._capture = None
            if composed is not None:
                composed.close()

        report = prof.stop()
        eig_stats = stats.as_dict()
        if composed_summary is not None:
            eig_stats["composed"] = composed_summary
        return ClusteringResult(
            labels=labels_full,
            eigenvalues=theta,
            embedding=embedding,
            kmeans=km,
            timings=timings,
            profile=report,
            eig_stats=eig_stats,
            kept=kept,
            resilience=resilience,
            fault_events=plan.schedule if plan is not None else (),
            model=model,
        )

    # ------------------------------------------------------------------
    # stages (each charges its own simulated + wall time into `timings`)
    # ------------------------------------------------------------------
    def _embed_stages(
        self, device, policy, X, edges, graph, timings, resilience,
        composed: _ComposedPlan | None = None,
    ):
        """Stages 1-3: similarity graph → operator → eigenvectors."""
        dcoo, n_total, kept = self._similarity_stage(
            device, policy, X, edges, graph, timings, resilience
        )
        n = dcoo.shape[0]
        dcsr = None
        try:
            if n <= self.n_clusters:
                raise ClusteringError(
                    f"only {n} non-isolated nodes for k={self.n_clusters} clusters"
                )
            dcsr, shift, deg_kept = self._operator_stage(
                device, policy, dcoo, timings, resilience
            )
            dcoo.free()
            theta, embedding, stats = self._eigensolver_stage(
                device, policy, dcsr, shift, deg_kept, timings, resilience,
                composed=composed,
            )
        finally:
            # a fault that escapes resilience must not leak the operator
            dcoo.free()
            if dcsr is not None:
                dcsr.free()
        return theta, embedding, kept, n_total, stats

    def _similarity_stage(self, device, policy, X, edges, graph, timings, resilience):
        """Stage 1: build/upload the similarity graph; returns
        ``(device COO, n_total, kept)``."""

        def upload(fn, stage_name: str, rec: dict):
            # uploads are idempotent, so even an injected OOM is retryable
            def bump(_attempt: int) -> None:
                rec["retries"] += 1

            return with_retry(
                fn, device, policy, site=f"{stage_name}.upload",
                errors=TRANSIENT_ERRORS + (DeviceMemoryError,), on_retry=bump,
            )

        t0 = time.perf_counter()
        sim_start = device.elapsed
        point_input = X is not None
        if point_input:
            X_arr = np.asarray(X)
            edges_arr = np.asarray(edges)
            n_total = X_arr.shape[0]
            n_edges = max(1, int(edges_arr.shape[0]))

            def build_gpu(chunk):
                return lambda: build_similarity_device(
                    device, X_arr, edges_arr,
                    measure=self.similarity, sigma=self.sigma, edge_chunk=chunk,
                )

            def build_cpu():
                W = build_similarity_graph(
                    X_arr, edges_arr, measure=self.similarity, sigma=self.sigma
                )
                with device.stage("similarity"):
                    return with_retry(
                        lambda: coo_to_device(device, W.sorted_by_row()),
                        device, policy, site="similarity.upload",
                    )

            dcoo, rec = _run_resilient(
                device, policy, "similarity",
                [build_gpu(None),
                 build_gpu(max(1, n_edges // 8)),
                 build_gpu(max(1, n_edges // 64))],
                build_cpu,
            )
            # isolated-node check on the host mirror of the device graph
            deg = np.bincount(dcoo.row.data, weights=dcoo.val.data, minlength=n_total)
            kept = np.flatnonzero(deg > 0)
            if kept.size < n_total:
                if self.handle_isolated == "error":
                    dcoo.free()
                    raise ClusteringError(
                        f"{n_total - kept.size} isolated nodes; the paper "
                        "requires D_ii > 0 (use handle_isolated='remove')"
                    )
                host_coo = COOMatrix(
                    dcoo.row.data, dcoo.col.data, dcoo.val.data,
                    dcoo.shape, check=False,
                )
                W_sub, kept = remove_isolated(host_coo)
                dcoo.free()
                with device.stage("similarity"):
                    dcoo = upload(
                        lambda: coo_to_device(
                            device, W_sub.to_coo().sorted_by_row()
                        ),
                        "similarity", rec,
                    )
            cap = getattr(self, "_capture", None)
            if cap is not None:
                # the fitted model keeps a host mirror of the resident
                # graph plus the anchor feature rows for predict
                if kept.size < n_total:
                    cap["graph"] = W_sub
                else:
                    cap["graph"] = COOMatrix(
                        dcoo.row.data.copy(), dcoo.col.data.copy(),
                        dcoo.val.data.copy(), dcoo.shape, check=False,
                    ).to_csr()
                cap["anchors"] = np.asarray(X_arr[kept], dtype=np.float64)
            _note(resilience, "similarity", rec)
        else:
            assert graph is not None
            n_total = graph.shape[0]
            csr = graph if isinstance(graph, CSRMatrix) else graph.to_csr()
            W_sub, kept = remove_isolated(csr)
            if self.handle_isolated == "error" and kept.size < n_total:
                raise ClusteringError(
                    f"{n_total - kept.size} isolated nodes; the paper "
                    "requires D_ii > 0 (use handle_isolated='remove')"
                )
            rec = _fresh_rec()
            with device.stage("similarity"):
                dcoo = upload(
                    lambda: coo_to_device(device, W_sub.to_coo().sorted_by_row()),
                    "similarity", rec,
                )
            cap = getattr(self, "_capture", None)
            if cap is not None:
                cap["graph"] = W_sub
                cap["anchors"] = None
            _note(resilience, "similarity", rec)
        timings.wall["similarity"] = time.perf_counter() - t0
        timings.simulated["similarity"] = device.elapsed - sim_start
        return dcoo, n_total, kept

    def _operator_stage(self, device, policy, dcoo, timings, resilience):
        """Stage 2 (Algorithm 2): normalized operator in device CSR;
        returns ``(device CSR, shift, kept-degree vector)``."""
        t0 = time.perf_counter()
        lap_start = device.elapsed
        # keep degrees for the sym->rw eigenvector back-mapping
        deg_kept = np.bincount(
            dcoo.row.data, weights=dcoo.val.data, minlength=dcoo.shape[0]
        )
        # ScaleElements rescales the COO values in place, so a retried
        # attempt must first restore them from this host mirror
        val0 = dcoo.val.data.copy() if policy.enabled else None

        def lap_gpu():
            if val0 is not None:
                dcoo.val.data[...] = val0
            if self.objective == "ratiocut":
                return device_shifted_laplacian(dcoo)
            if self.operator == "sym":
                return device_sym_normalize(dcoo), 0.0
            return device_rw_normalize(dcoo), 0.0

        def lap_cpu():
            vals = (val0 if val0 is not None else dcoo.val.data).copy()
            W_host = COOMatrix(
                dcoo.row.data.copy(), dcoo.col.data.copy(), vals,
                dcoo.shape, check=False,
            )
            if self.objective == "ratiocut":
                d = degrees(W_host)
                c = 2.0 * float(d.max()) if d.size else 0.0
                host_csr = diags(c - d).add(W_host.to_csr())
                sh = c
            elif self.operator == "sym":
                host_csr = sym_normalized_adjacency(W_host)
                sh = 0.0
            else:
                host_csr = rw_normalized_adjacency(W_host)
                sh = 0.0
            with device.stage("laplacian"):
                up = with_retry(
                    lambda: csr_to_device(device, host_csr),
                    device, policy, site="laplacian.upload",
                )
            return up, sh

        (dcsr, shift), rec = _run_resilient(
            device, policy, "laplacian", [lap_gpu], lap_cpu
        )
        _note(resilience, "laplacian", rec)
        timings.wall["laplacian"] = time.perf_counter() - t0
        timings.simulated["laplacian"] = device.elapsed - lap_start
        return dcsr, shift, deg_kept

    def _eigensolver_stage(
        self, device, policy, dcsr, shift, deg_kept, timings, resilience,
        free_operator: bool = True, composed: _ComposedPlan | None = None,
    ):
        """Stage 3 (Algorithm 3): k leading eigenpairs + back-mapping;
        returns ``(eigenvalues, embedding, stats)``.

        ``free_operator=False`` keeps the device CSR alive so several
        solves (different k/seed) can share one operator build — the
        serving layer's micro-batching path.  With a ``composed`` plan
        the one-time row partition is built here (charged into the
        eigensolver window), the solve reuses it, and the Ritz block
        stays sharded on the devices (result D2H elided) for the
        composed k-means stage.
        """
        t0 = time.perf_counter()
        eig_start = device.elapsed
        if self.embedding == "compressive":
            # the compressive tier forms no eigenvectors: the Chebyshev-
            # filtered random signals ARE the embedding; the spectrum
            # probe's Ritz values stand in as the eigenvalue evidence
            F, stats = compressive_embedding(
                device, dcsr, self.n_clusters,
                filter_order=self.filter_order, n_signals=self.n_signals,
                seed=self.seed, policy=policy,
                residency=self.eig_residency,
                spmv_format=self.eig_spmv_format,
                n_devices=self.eig_devices, precision=self.precision,
                partition_mode=self.partition_mode,
            )
            _note(resilience, "eigensolver", {
                "retries": stats.spmv_retries,
                "degrade_steps": 0,
                "resumes": stats.n_resumes,
                "fallback": stats.fallback,
            })
            if free_operator:
                dcsr.free()
            theta = np.sort(np.asarray(stats.spectrum["theta"]))[::-1][
                : self.n_clusters
            ]
            U = F
            if self.operator == "sym":
                # the filtered signals live in the symmetric operator's
                # eigenbasis; the same D^{-1/2} row scaling as the exact
                # path maps them to the D^{-1}W geometry k-means expects
                inv_sqrt = 1.0 / np.sqrt(np.where(deg_kept > 0, deg_kept, 1.0))
                U = U * inv_sqrt[:, None]
            # row normalization is part of the compressive algorithm, not
            # an option: the sketch preserves the k-band subspace's
            # *angles*, while its row norms mix coherence with vertex
            # degree — on degree-heterogeneous graphs unnormalized sketch
            # norms dominate the k-means distances and bury the cluster
            # structure (measured: 3x ARI on the dblp bench graph)
            embedding = normalize_rows(U)
            timings.wall["eigensolver"] = time.perf_counter() - t0
            timings.simulated["eigensolver"] = device.elapsed - eig_start
            return theta, embedding, stats
        if composed is not None:
            # the fit's single partitioning point: build the plan on the
            # device group once, inside the eigensolver timing window
            with device.stage("partition"):
                composed.build(device, dcsr)
        theta, U, stats = hybrid_eigensolver(
            device, dcsr, k=self.n_clusters, m=self.m,
            tol=self.eig_tol, maxiter=self.eig_maxiter, seed=self.seed,
            policy=policy, residency=self.eig_residency,
            spmv_format=self.eig_spmv_format,
            # staged entry points (embed/fit_embedding — the serving
            # layer) have no composed plan to reuse, but a fit_devices
            # request still shards the solve across the same device count
            # so staged and composed runs agree on placement
            n_devices=(
                composed.n_devices if composed is not None
                else max(self.eig_devices, self.fit_devices)
            ),
            precision=self.precision, embedding=self.embedding,
            partition_mode=self.partition_mode,
            plan=composed.plan if composed is not None else None,
            topology=composed.topology if composed is not None else None,
            elide_result_d2h=composed is not None,
        )
        _note(resilience, "eigensolver", {
            "retries": stats.spmv_retries,
            "degrade_steps": 0,
            "resumes": stats.n_resumes,
            "fallback": stats.fallback,
        })
        if free_operator:
            dcsr.free()
        if self.objective == "ratiocut":
            # top of cI - L == bottom of L: report λ(L) ascending
            order = np.argsort(theta)[::-1]
            theta = shift - theta[order]
            U = U[:, order]
        else:
            # largest k eigenvalues of D^{-1}W == smallest of L_n (§IV.B)
            order = np.argsort(theta)[::-1]
            theta = theta[order]
            U = U[:, order]
            if self.operator == "sym":
                # map eigenvectors of D^{-1/2}WD^{-1/2} to those of D^{-1}W
                inv_sqrt = 1.0 / np.sqrt(np.where(deg_kept > 0, deg_kept, 1.0))
                U = U * inv_sqrt[:, None]
        cap = getattr(self, "_capture", None)
        if cap is not None:
            # the Nyström extension needs the basis before optional row
            # normalization, plus the degree scaling it was built under
            cap["basis"] = U
            cap["degrees"] = deg_kept
        embedding = normalize_rows(U) if self.normalize_rows else U
        if composed is not None and composed.active:
            # the back-mapping reorder/scale applies shard-locally (one
            # elementwise pass per device, concurrent) so the embedding
            # block stays resident for the composed k-means stage
            tl = device.timeline
            t_s = tl.clock.now
            for j, rows in enumerate(composed.row_sets):
                nd = int(rows.size)
                dev = composed.devices[j]
                dt = dev.cost.kernel_time(
                    2.0 * nd * self.n_clusters,
                    3.0 * nd * self.n_clusters * 8,
                )
                tl.record_at(f"scale_rows[dev{j}]", "kernel", t_s, dt)
                dev.kernel_launches += 1
        timings.wall["eigensolver"] = time.perf_counter() - t0
        timings.simulated["eigensolver"] = device.elapsed - eig_start
        return theta, embedding, stats

    def _kmeans_stage(
        self, device, policy, embedding, timings, resilience,
        composed: _ComposedPlan | None = None,
    ):
        """Stage 4 (Algorithms 4-5): cluster the embedding rows."""
        if self.embedding == "compressive":
            return self._compressive_kmeans_stage(
                device, policy, embedding, timings, resilience
            )
        if composed is not None and composed.active:
            return self._composed_kmeans_stage(
                device, policy, embedding, timings, resilience, composed
            )
        t0 = time.perf_counter()
        km_start = device.elapsed
        n_emb = embedding.shape[0]

        def km_gpu(tile):
            return lambda: kmeans_device(
                device, embedding, self.n_clusters,
                init=self.kmeans_init, max_iter=self.kmeans_max_iter,
                seed=self.seed, tile_rows=tile,
                centroid_update=self.kmeans_update, fused=self.kmeans_fused,
            )

        def km_cpu():
            return kmeans_cpu(
                embedding, self.n_clusters,
                init=self.kmeans_init, max_iter=self.kmeans_max_iter,
                seed=self.seed,
            )

        km, rec = _run_resilient(
            device, policy, "kmeans",
            [km_gpu(None),
             km_gpu(max(1, n_emb // 4)),
             km_gpu(max(1, n_emb // 16))],
            km_cpu,
        )
        _note(resilience, "kmeans", rec)
        timings.wall["kmeans"] = time.perf_counter() - t0
        timings.simulated["kmeans"] = device.elapsed - km_start
        return km

    def _composed_kmeans_stage(
        self, device, policy, embedding, timings, resilience, composed
    ):
        """Stage 4 on the composed plan: the embedding shards never left
        their devices, so k-means consumes them in place — same row
        layout as the eigensolve, upload elided, centroid allreduce over
        the peer bus.  Labels are bit-identical to the single-device
        :func:`~repro.kmeans.gpu.kmeans_device` path."""
        t0 = time.perf_counter()
        km_start = device.elapsed

        def km_gpu():
            res, tim, km_plan = kmeans_composed(
                composed.devices, composed.row_sets, embedding,
                self.n_clusters, init=self.kmeans_init,
                max_iter=self.kmeans_max_iter, seed=self.seed,
                resident=True,
            )
            composed.kmeans_timings = tim
            composed.kmeans_plan = km_plan
            return res

        def km_cpu():
            return kmeans_cpu(
                embedding, self.n_clusters,
                init=self.kmeans_init, max_iter=self.kmeans_max_iter,
                seed=self.seed,
            )

        km, rec = _run_resilient(device, policy, "kmeans", [km_gpu], km_cpu)
        _note(resilience, "kmeans", rec)
        timings.wall["kmeans"] = time.perf_counter() - t0
        timings.simulated["kmeans"] = device.elapsed - km_start
        return km

    def _compressive_kmeans_stage(
        self, device, policy, embedding, timings, resilience
    ):
        """Stage 4, compressive tier: coherence-weighted downsampling,
        k-means on the sampled sketch rows, and label lifting back to
        all vertices.  The whole stage is a deterministic function of
        ``(embedding, seed, knobs)``, so the serve cache-hit path
        (:meth:`fit_embedding`) reproduces a cold :meth:`fit` bit for
        bit.  On small graphs the default sample fraction saturates at
        1.0 and the stage degenerates to plain k-means (no gather, no
        lift).  Everything is charged inside the ``kmeans`` timing
        window; the Chrome trace separates ``sampling`` / ``kmeans`` /
        ``lift`` stage tags.
        """
        t0 = time.perf_counter()
        km_start = device.elapsed
        n_emb = embedding.shape[0]
        k = self.n_clusters
        frac = (
            float(self.sample_frac)
            if self.sample_frac is not None
            else default_sample_frac(n_emb, k)
        )
        n_s = min(n_emb, max(int(math.ceil(frac * n_emb)), min(n_emb, 2 * k)))

        if n_s >= n_emb:
            idx = np.arange(n_emb, dtype=np.int64)
            F_s = embedding
        else:
            with device.stage("sampling"):
                weights = coherence_weights(device, embedding)
                idx = sample_vertices(n_emb, weights, n_s, seed=self.seed)
                F_s, rec = _run_resilient(
                    device, policy, "sampling",
                    [lambda: gather_rows(device, embedding, idx)],
                    lambda: embedding[idx],
                )
                _note(resilience, "sampling", rec)

        def km_gpu(tile):
            return lambda: kmeans_device(
                device, F_s, k,
                init=self.kmeans_init, max_iter=self.kmeans_max_iter,
                seed=self.seed, tile_rows=tile,
                centroid_update=self.kmeans_update, fused=self.kmeans_fused,
            )

        def km_cpu():
            return kmeans_cpu(
                F_s, k,
                init=self.kmeans_init, max_iter=self.kmeans_max_iter,
                seed=self.seed,
            )

        km, rec = _run_resilient(
            device, policy, "kmeans",
            [km_gpu(None),
             km_gpu(max(1, n_s // 4)),
             km_gpu(max(1, n_s // 16))],
            km_cpu,
        )
        _note(resilience, "kmeans", rec)

        if idx.size < n_emb:
            with device.stage("lift"):
                labels_full, rec = _run_resilient(
                    device, policy, "lift",
                    [lambda: lift_labels_device(
                        device, embedding, idx, km.labels, km.centroids,
                        mode=self.lift,
                    )],
                    lambda: lift_labels_host(
                        device, embedding, idx, km.labels, km.centroids,
                        mode=self.lift,
                    ),
                )
                _note(resilience, "lift", rec)
            # inertia/centroids describe the sampled solve; labels cover
            # every vertex
            km = _dc_replace(km, labels=labels_full)
        timings.wall["kmeans"] = time.perf_counter() - t0
        timings.simulated["kmeans"] = device.elapsed - km_start
        return km
