"""The public estimator: :class:`SpectralClustering`.

Implements the complete Figure 2 workflow on the simulated CPU-GPU
platform:

1. **Preprocessing** (point input only, Algorithm 1): transfer data and
   ε-edge list, build the COO similarity matrix on the device;
2. **Laplacian** (Algorithm 2): degree vector by SpMV, ``ScaleElements``,
   ``coo2csr``;
3. **Eigensolver** (Algorithm 3): ARPACK-style reverse communication on
   the CPU with ``cusparseDcsrmv`` on the GPU;
4. **k-means** (Algorithms 4-5) on the rows of the eigenvector matrix.

Graph input (FB/DBLP/Syn200-style) enters directly at step 2, exactly as
§II notes.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.result import ClusteringResult, StageTimings
from repro.core.workflow import hybrid_eigensolver
from repro.cuda.device import Device
from repro.cuda.profiler import Profiler
from repro.cusparse.matrices import coo_to_device
from repro.errors import ClusteringError
from repro.graph.build import build_similarity_device
from repro.graph.components import remove_isolated
from repro.graph.laplacian import (
    device_rw_normalize,
    device_shifted_laplacian,
    device_sym_normalize,
)
from repro.kmeans.gpu import kmeans_device
from repro.linalg.utils import normalize_rows
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


class SpectralClustering:
    """Hybrid CPU-GPU spectral clustering (normalized cut).

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    similarity:
        Measure for the point-input path: 'crosscorr' (paper's DTI
        choice), 'cosine' or 'expdecay'.
    sigma:
        Bandwidth for 'expdecay'.
    operator:
        'sym' (default) iterates with the symmetric ``D^{-1/2}WD^{-1/2}``
        and maps eigenvectors back through ``D^{-1/2}`` — the numerically
        sound realization of the paper's ``D⁻¹W`` largest-eigenvector
        formulation (identical spectrum, and exactly the generalized
        eigenvectors of ``Lx = λDx``).  'rw' feeds ``D⁻¹W`` to the
        symmetric Lanczos machinery verbatim, as the paper describes;
        offered for ablation.
    objective:
        'ncut' (default): the paper's normalized-cut relaxation via
        ``operator``.  'ratiocut': the Eq. 3 relaxation — smallest
        eigenvectors of the *unnormalized* ``L = D - W``, computed on the
        device through a Gershgorin shift (``operator`` is then ignored);
        ``result.eigenvalues`` holds λ(L) ascending in that mode.
    m:
        Lanczos basis size (default ``min(n, max(2k+1, 20))``, the paper's
        ``m = 2k`` rule).
    eig_tol:
        Eigensolver relative tolerance (0 = machine eps).
    eig_maxiter:
        Restart cap.
    kmeans_init:
        'k-means++' (paper's choice) or 'random'.
    kmeans_max_iter:
        Lloyd iteration cap.
    normalize_rows:
        Scale embedding rows to unit norm before k-means (the
        Ng-Jordan-Weiss variant; the paper does not, so default False).
    handle_isolated:
        'remove' (default) drops zero-degree nodes and labels them ``-1``;
        'error' raises (the paper's stated assumption is ``D_ii > 0``).
    seed:
        Seeds the eigensolver start vector and the k-means initialization.
    device:
        Supply a :class:`~repro.cuda.device.Device` to share/inspect the
        timeline; a fresh K20c is created per fit otherwise.
    """

    def __init__(
        self,
        n_clusters: int,
        similarity: str = "crosscorr",
        sigma: float = 1.0,
        operator: str = "sym",
        objective: str = "ncut",
        m: int | None = None,
        eig_tol: float = 0.0,
        eig_maxiter: int | None = None,
        kmeans_init: str = "k-means++",
        kmeans_max_iter: int = 300,
        normalize_rows: bool = False,
        handle_isolated: str = "remove",
        seed: int | None = 0,
        device: Device | None = None,
    ) -> None:
        if n_clusters < 2:
            raise ClusteringError(f"n_clusters must be >= 2, got {n_clusters}")
        if operator not in ("sym", "rw"):
            raise ClusteringError(f"operator must be 'sym' or 'rw', got {operator!r}")
        if objective not in ("ncut", "ratiocut"):
            raise ClusteringError(
                f"objective must be 'ncut' or 'ratiocut', got {objective!r}"
            )
        if handle_isolated not in ("remove", "error"):
            raise ClusteringError(
                f"handle_isolated must be 'remove' or 'error', got {handle_isolated!r}"
            )
        self.n_clusters = n_clusters
        self.similarity = similarity
        self.sigma = sigma
        self.operator = operator
        self.objective = objective
        self.m = m
        self.eig_tol = eig_tol
        self.eig_maxiter = eig_maxiter
        self.kmeans_init = kmeans_init
        self.kmeans_max_iter = kmeans_max_iter
        self.normalize_rows = normalize_rows
        self.handle_isolated = handle_isolated
        self.seed = seed
        self.device = device

    # ------------------------------------------------------------------
    def fit(
        self,
        X: np.ndarray | None = None,
        edges: np.ndarray | None = None,
        graph: COOMatrix | CSRMatrix | None = None,
    ) -> ClusteringResult:
        """Cluster point data (``X`` + ``edges``) or a prebuilt ``graph``.

        Exactly one input form must be provided.  Returns a
        :class:`~repro.core.result.ClusteringResult`.
        """
        point_input = X is not None
        if point_input == (graph is not None):
            raise ClusteringError(
                "provide either (X, edges) for the point path or graph= for "
                "the graph path, not both"
            )
        if point_input and edges is None:
            raise ClusteringError("point input requires the ε-neighborhood edges")

        device = self.device if self.device is not None else Device()
        prof = Profiler(device)
        prof.start()
        timings = StageTimings()

        # ---- stage 1: similarity matrix ---------------------------------
        t0 = time.perf_counter()
        sim_start = device.elapsed
        if point_input:
            n_total = np.asarray(X).shape[0]
            dcoo = build_similarity_device(
                device, np.asarray(X), np.asarray(edges),
                measure=self.similarity, sigma=self.sigma,
            )
            # isolated-node check on the host mirror of the device graph
            deg = np.bincount(dcoo.row.data, weights=dcoo.val.data, minlength=n_total)
            kept = np.flatnonzero(deg > 0)
            if kept.size < n_total:
                if self.handle_isolated == "error":
                    raise ClusteringError(
                        f"{n_total - kept.size} isolated nodes; the paper "
                        "requires D_ii > 0 (use handle_isolated='remove')"
                    )
                host_coo = COOMatrix(
                    dcoo.row.data, dcoo.col.data, dcoo.val.data,
                    dcoo.shape, check=False,
                )
                W_sub, kept = remove_isolated(host_coo)
                dcoo.free()
                with device.stage("similarity"):
                    dcoo = coo_to_device(device, W_sub.to_coo().sorted_by_row())
        else:
            assert graph is not None
            n_total = graph.shape[0]
            csr = graph if isinstance(graph, CSRMatrix) else graph.to_csr()
            W_sub, kept = remove_isolated(csr)
            if self.handle_isolated == "error" and kept.size < n_total:
                raise ClusteringError(
                    f"{n_total - kept.size} isolated nodes; the paper "
                    "requires D_ii > 0 (use handle_isolated='remove')"
                )
            with device.stage("similarity"):
                dcoo = coo_to_device(device, W_sub.to_coo().sorted_by_row())
        n = dcoo.shape[0]
        timings.wall["similarity"] = time.perf_counter() - t0
        timings.simulated["similarity"] = device.elapsed - sim_start

        if n <= self.n_clusters:
            raise ClusteringError(
                f"only {n} non-isolated nodes for k={self.n_clusters} clusters"
            )

        # ---- stage 2: normalized operator (Algorithm 2) ------------------
        t0 = time.perf_counter()
        lap_start = device.elapsed
        # keep degrees for the sym->rw eigenvector back-mapping
        deg_kept = np.bincount(
            dcoo.row.data, weights=dcoo.val.data, minlength=dcoo.shape[0]
        )
        shift = 0.0
        if self.objective == "ratiocut":
            dcsr, shift = device_shifted_laplacian(dcoo)
        elif self.operator == "sym":
            dcsr = device_sym_normalize(dcoo)
        else:
            dcsr = device_rw_normalize(dcoo)
        timings.wall["laplacian"] = time.perf_counter() - t0
        timings.simulated["laplacian"] = device.elapsed - lap_start

        # ---- stage 3: eigensolver (Algorithm 3) --------------------------
        t0 = time.perf_counter()
        eig_start = device.elapsed
        theta, U, stats = hybrid_eigensolver(
            device, dcsr, k=self.n_clusters, m=self.m,
            tol=self.eig_tol, maxiter=self.eig_maxiter, seed=self.seed,
        )
        if self.objective == "ratiocut":
            # top of cI - L == bottom of L: report λ(L) ascending
            order = np.argsort(theta)[::-1]
            theta = shift - theta[order]
            U = U[:, order]
        else:
            # largest k eigenvalues of D^{-1}W == smallest of L_n (§IV.B)
            order = np.argsort(theta)[::-1]
            theta = theta[order]
            U = U[:, order]
            if self.operator == "sym":
                # map eigenvectors of D^{-1/2}WD^{-1/2} to those of D^{-1}W
                inv_sqrt = 1.0 / np.sqrt(np.where(deg_kept > 0, deg_kept, 1.0))
                U = U * inv_sqrt[:, None]
        embedding = normalize_rows(U) if self.normalize_rows else U
        timings.wall["eigensolver"] = time.perf_counter() - t0
        timings.simulated["eigensolver"] = device.elapsed - eig_start

        # ---- stage 4: k-means (Algorithms 4-5) ---------------------------
        t0 = time.perf_counter()
        km_start = device.elapsed
        km = kmeans_device(
            device, embedding, self.n_clusters,
            init=self.kmeans_init, max_iter=self.kmeans_max_iter, seed=self.seed,
        )
        timings.wall["kmeans"] = time.perf_counter() - t0
        timings.simulated["kmeans"] = device.elapsed - km_start

        labels_full = np.full(n_total, -1, dtype=np.int64)
        labels_full[kept] = km.labels
        report = prof.stop()
        return ClusteringResult(
            labels=labels_full,
            eigenvalues=theta,
            embedding=embedding,
            kmeans=km,
            timings=timings,
            profile=report,
            eig_stats=stats.as_dict(),
            kept=kept,
        )
