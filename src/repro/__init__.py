"""fastsc-py — a reproduction of "A High Performance Implementation of
Spectral Clustering on CPU-GPU Platforms" (Jin & JaJa, 2016).

The package implements the paper's full pipeline on a *simulated* CUDA
platform (real numerics, modeled K20c/Xeon/PCIe time — see DESIGN.md):

>>> from repro import SpectralClustering
>>> from repro.datasets import load_dataset
>>> ds = load_dataset("syn200", scale=0.05)
>>> result = SpectralClustering(n_clusters=ds.n_clusters).fit(graph=ds.graph)
>>> result.labels  # doctest: +SKIP

Subpackages
-----------
``repro.core``
    The public :class:`SpectralClustering` estimator (Figure 2 pipeline).
``repro.cuda`` / ``repro.cublas`` / ``repro.cusparse`` / ``repro.thrust``
    The simulated CUDA runtime and libraries.
``repro.sparse``
    From-scratch COO/CSR/CSC/BSR sparse formats.
``repro.linalg``
    The ARPACK-style implicitly restarted Lanczos eigensolver with the
    reverse communication interface.
``repro.graph``
    Similarity measures, ε/kNN/λ graph construction, Laplacians.
``repro.kmeans``
    GPU k-means (Algorithm 4) with k-means++ seeding (Algorithm 5).
``repro.baselines``
    The Matlab-like and Python-like comparison columns.
``repro.datasets`` / ``repro.metrics`` / ``repro.bench``
    Table II workloads, quality metrics, and the table/figure harness.
"""

from repro._version import __version__
from repro.core.embedding import spectral_embedding
from repro.core.pipeline import SpectralClustering
from repro.core.result import ClusteringResult, StageTimings
from repro.errors import ReproError

__all__ = [
    "__version__",
    "SpectralClustering",
    "spectral_embedding",
    "ClusteringResult",
    "StageTimings",
    "ReproError",
]
