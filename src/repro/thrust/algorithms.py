"""Thrust algorithm implementations over :class:`~repro.cuda.memory.DeviceArray`.

Every algorithm

* validates that its operands are device-resident and co-located,
* executes the real computation vectorized on the backing buffers,
* charges the owning device a cost appropriate to the primitive
  (radix-sort throughput for sorts, streaming bandwidth for scans and
  transforms, gather bandwidth for permutations).

Binary ``transform`` functors are named strings (``"plus"``, ``"minus"``,
``"multiplies"`` …) rather than arbitrary Python callables, mirroring how
Thrust functors are compiled device code rather than host closures.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.cuda.device import Device
from repro.cuda.memory import DeviceArray
from repro.errors import DeviceArrayError

_BINARY_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "plus": np.add,
    "minus": np.subtract,
    "multiplies": np.multiply,
    "divides": np.divide,
    "maximum": np.maximum,
    "minimum": np.minimum,
}

_UNARY_OPS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "negate": np.negative,
    "square": np.square,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "abs": np.abs,
    "reciprocal": lambda x: 1.0 / x,
    "identity": lambda x: x,
}

_REDUCE_OPS = {
    "plus": np.sum,
    "maximum": np.max,
    "minimum": np.min,
}

#: cub::DeviceScan/DeviceReduceByKey tile granularity (items per tile) and
#: per-tile descriptor footprint for the modeled ``temp_storage_bytes``
_CUB_TILE_ITEMS = 2048
_CUB_TILE_STATE_BYTES = 16
_CUB_TEMP_HEADER_BYTES = 256


def _cub_temp_bytes(n: int) -> int:
    """Modeled CUB ``temp_storage_bytes`` for an ``n``-item scan/keyed
    reduce: one decoupled-lookback tile descriptor per tile plus a fixed
    header — small, but a real ``cudaMalloc`` when not served from a cache,
    which is exactly why Thrust exposes a custom allocator hook."""
    tiles = -(-max(0, int(n)) // _CUB_TILE_ITEMS)
    return _CUB_TEMP_HEADER_BYTES + _CUB_TILE_STATE_BYTES * tiles


def _device_of(*arrays: DeviceArray) -> Device:
    dev = None
    for a in arrays:
        if not isinstance(a, DeviceArray):
            raise DeviceArrayError(
                f"thrust operand must be a DeviceArray, got {type(a).__name__}"
            )
        if dev is None:
            dev = a.device
        elif a.device is not dev:
            raise DeviceArrayError("thrust operands on different devices")
    assert dev is not None
    return dev


# ---------------------------------------------------------------------------
# generation / movement
# ---------------------------------------------------------------------------


def sequence(device: Device, n: int, start: int = 0, dtype=np.int64) -> DeviceArray:
    """``thrust::sequence`` — fill a new vector with start, start+1, …"""
    out = device.empty(n, dtype=dtype)
    out.data[:] = np.arange(start, start + n, dtype=dtype)
    device.charge_kernel("thrust::sequence", flops=n, bytes_moved=out.nbytes)
    return out


def fill(arr: DeviceArray, value) -> DeviceArray:
    """``thrust::fill`` — in-place constant fill."""
    dev = _device_of(arr)
    arr.data.fill(value)
    dev.charge_kernel("thrust::fill", flops=0, bytes_moved=arr.nbytes)
    return arr


def copy(src: DeviceArray, dst: DeviceArray) -> DeviceArray:
    """``thrust::copy`` — device-to-device element copy."""
    dev = _device_of(src, dst)
    if src.shape != dst.shape:
        raise DeviceArrayError(f"copy shape mismatch {src.shape} vs {dst.shape}")
    np.copyto(dst.data, src.data)
    dev.charge_kernel("thrust::copy", flops=0, bytes_moved=2 * src.nbytes)
    return dst


def gather(index_map: DeviceArray, src: DeviceArray) -> DeviceArray:
    """``thrust::gather`` — ``out[i] = src[map[i]]``."""
    dev = _device_of(index_map, src)
    out_shape = (index_map.size,) + src.shape[1:]
    out = dev.empty(out_shape, dtype=src.dtype)
    out.data[...] = src.data[index_map.data]
    row_bytes = src.itemsize * int(np.prod(src.shape[1:], initial=1))
    dev.charge_kernel(
        "thrust::gather",
        flops=0,
        bytes_moved=index_map.size * (row_bytes * 2 + index_map.itemsize),
        kind="gather",
    )
    return out


def scatter(src: DeviceArray, index_map: DeviceArray, dst: DeviceArray) -> DeviceArray:
    """``thrust::scatter`` — ``dst[map[i]] = src[i]``."""
    dev = _device_of(src, index_map, dst)
    if src.size != index_map.size:
        raise DeviceArrayError("scatter: src and map size mismatch")
    dst.data[index_map.data] = src.data
    dev.charge_kernel(
        "thrust::scatter",
        flops=0,
        bytes_moved=src.nbytes * 2 + index_map.nbytes,
        kind="gather",
    )
    return dst


# ---------------------------------------------------------------------------
# transforms
# ---------------------------------------------------------------------------


def transform(
    a: DeviceArray,
    op: str,
    b: DeviceArray | float | None = None,
    out: DeviceArray | None = None,
) -> DeviceArray:
    """``thrust::transform`` with a named functor.

    Unary form: ``transform(a, "sqrt")``.
    Binary form: ``transform(a, "plus", b)`` where ``b`` is a device array
    of matching shape or a scalar.
    """
    dev = _device_of(a)
    if out is None:
        out = dev.empty(a.shape, dtype=a.dtype)
    else:
        _device_of(a, out)

    if b is None:
        try:
            fn = _UNARY_OPS[op]
        except KeyError:
            raise ValueError(
                f"unknown unary functor {op!r}; expected one of {sorted(_UNARY_OPS)}"
            ) from None
        out.data[...] = fn(a.data)
        moved = a.nbytes + out.nbytes
    else:
        try:
            fn2 = _BINARY_OPS[op]
        except KeyError:
            raise ValueError(
                f"unknown binary functor {op!r}; expected one of {sorted(_BINARY_OPS)}"
            ) from None
        if isinstance(b, DeviceArray):
            _device_of(a, b)
            out.data[...] = fn2(a.data, b.data)
            moved = a.nbytes + b.nbytes + out.nbytes
        else:
            out.data[...] = fn2(a.data, b)
            moved = a.nbytes + out.nbytes
    dev.charge_kernel(f"thrust::transform[{op}]", flops=a.size, bytes_moved=moved)
    return out


# ---------------------------------------------------------------------------
# reductions / scans
# ---------------------------------------------------------------------------


def reduce(a: DeviceArray, op: str = "plus") -> float:
    """``thrust::reduce`` — full reduction to a host scalar."""
    dev = _device_of(a)
    try:
        fn = _REDUCE_OPS[op]
    except KeyError:
        raise ValueError(
            f"unknown reduce op {op!r}; expected one of {sorted(_REDUCE_OPS)}"
        ) from None
    value = fn(a.data) if a.size else _reduce_identity(op, a.dtype)
    dev.charge_kernel(f"thrust::reduce[{op}]", flops=a.size, bytes_moved=a.nbytes)
    dev._record_d2h(a.itemsize)
    return value


def _reduce_identity(op: str, dtype) -> float:
    if op == "plus":
        return dtype.type(0)
    raise ValueError(f"reduce of empty range has no identity for {op!r}")


def min_element(a: DeviceArray) -> int:
    """``thrust::min_element`` — index of the minimum (host int)."""
    dev = _device_of(a)
    if a.size == 0:
        raise DeviceArrayError("min_element of empty range")
    idx = int(np.argmin(a.data))
    dev.charge_kernel("thrust::min_element", flops=a.size, bytes_moved=a.nbytes)
    dev._record_d2h(8)
    return idx


def max_element(a: DeviceArray) -> int:
    """``thrust::max_element`` — index of the maximum (host int)."""
    dev = _device_of(a)
    if a.size == 0:
        raise DeviceArrayError("max_element of empty range")
    idx = int(np.argmax(a.data))
    dev.charge_kernel("thrust::max_element", flops=a.size, bytes_moved=a.nbytes)
    dev._record_d2h(8)
    return idx


def count(a: DeviceArray, value) -> int:
    """``thrust::count`` — occurrences of ``value`` (host int)."""
    dev = _device_of(a)
    c = int(np.count_nonzero(a.data == value))
    dev.charge_kernel("thrust::count", flops=a.size, bytes_moved=a.nbytes)
    dev._record_d2h(8)
    return c


def inclusive_scan(a: DeviceArray, out: DeviceArray | None = None) -> DeviceArray:
    """``thrust::inclusive_scan`` — running prefix sums."""
    dev = _device_of(a)
    if out is None:
        out = dev.empty(a.shape, dtype=a.dtype)
    with dev.scratch(_cub_temp_bytes(a.size)):
        np.cumsum(a.data, out=out.data)
        dev.charge_kernel(
            "thrust::inclusive_scan", flops=2 * a.size, bytes_moved=a.nbytes + out.nbytes
        )
    return out


def exclusive_scan(
    a: DeviceArray, out: DeviceArray | None = None, init=0
) -> DeviceArray:
    """``thrust::exclusive_scan`` — shifted prefix sums starting at ``init``."""
    dev = _device_of(a)
    if out is None:
        out = dev.empty(a.shape, dtype=a.dtype)
    with dev.scratch(_cub_temp_bytes(a.size)):
        np.cumsum(a.data, out=out.data)
        out.data[1:] = out.data[:-1]
        out.data[0] = 0
        if init:
            np.add(out.data, init, out=out.data)
        dev.charge_kernel(
            "thrust::exclusive_scan", flops=2 * a.size, bytes_moved=a.nbytes + out.nbytes
        )
    return out


# ---------------------------------------------------------------------------
# sorting / searching / keyed reduction
# ---------------------------------------------------------------------------


def sort(a: DeviceArray) -> DeviceArray:
    """``thrust::sort`` — in-place ascending sort.

    Radix sort ping-pongs through a double buffer; the scratch rides the
    caching allocator (ThrustAllocator pattern) rather than a raw
    per-call ``cudaMalloc``.
    """
    dev = _device_of(a)
    with dev.scratch(a.nbytes):
        a.data.sort()
        dev.timeline.record("thrust::sort", "kernel", dev.cost.sort_time(a.size))
    return a


def sort_by_key(keys: DeviceArray, values: DeviceArray) -> tuple[DeviceArray, DeviceArray]:
    """``thrust::sort_by_key`` — stable in-place sort of (keys, values).

    ``values`` may be 2-D (one row per key), matching the k-means use where
    the payload is a d-dimensional point.  The radix double buffer covers
    both arrays; like :func:`sort` it comes from the caching allocator.
    """
    dev = _device_of(keys, values)
    if keys.size != values.shape[0]:
        raise DeviceArrayError(
            f"sort_by_key: {keys.size} keys vs {values.shape[0]} values"
        )
    with dev.scratch(keys.nbytes + values.nbytes):
        order = np.argsort(keys.data, kind="stable")
        keys.data[...] = keys.data[order]
        values.data[...] = values.data[order]
        dev.timeline.record(
            "thrust::sort_by_key", "kernel", dev.cost.sort_time(keys.size)
        )
    return keys, values


def reduce_by_key(
    keys: DeviceArray, values: DeviceArray
) -> tuple[DeviceArray, DeviceArray]:
    """``thrust::reduce_by_key`` with ``plus`` — segmented sums over *sorted* keys.

    Returns (unique_keys, segment_sums).  2-D values reduce row-wise.
    """
    dev = _device_of(keys, values)
    if keys.size != values.shape[0]:
        raise DeviceArrayError(
            f"reduce_by_key: {keys.size} keys vs {values.shape[0]} values"
        )
    if keys.size == 0:
        empty_keys = dev.empty(0, dtype=keys.dtype)
        try:
            empty_vals = dev.empty((0,) + values.shape[1:], dtype=values.dtype)
        except BaseException:
            empty_keys.free()
            raise
        return empty_keys, empty_vals
    with dev.scratch(_cub_temp_bytes(keys.size)):
        kd = keys.data
        boundaries = np.flatnonzero(np.diff(kd)) + 1
        starts = np.concatenate(([0], boundaries))
        uniq = kd[starts]
        sums = np.add.reduceat(values.data, starts, axis=0)
        out_keys = dev.empty(uniq.shape, dtype=keys.dtype)
        try:
            out_vals = dev.empty(sums.shape, dtype=values.dtype)
        except BaseException:
            out_keys.free()
            raise
        out_keys.data[...] = uniq
        out_vals.data[...] = sums
        dev.charge_kernel(
            "thrust::reduce_by_key",
            flops=values.size,
            bytes_moved=keys.nbytes + values.nbytes + out_vals.nbytes,
        )
    return out_keys, out_vals


def lower_bound(sorted_arr: DeviceArray, queries: DeviceArray) -> DeviceArray:
    """``thrust::lower_bound`` — first position not less than each query."""
    dev = _device_of(sorted_arr, queries)
    out = dev.empty(queries.shape, dtype=np.int64)
    out.data[...] = np.searchsorted(sorted_arr.data, queries.data, side="left")
    dev.charge_kernel(
        "thrust::lower_bound",
        flops=queries.size * max(1, int(np.log2(max(2, sorted_arr.size)))),
        bytes_moved=queries.nbytes + out.nbytes,
        kind="gather",
    )
    return out


def upper_bound(sorted_arr: DeviceArray, queries: DeviceArray) -> DeviceArray:
    """``thrust::upper_bound`` — first position greater than each query."""
    dev = _device_of(sorted_arr, queries)
    out = dev.empty(queries.shape, dtype=np.int64)
    out.data[...] = np.searchsorted(sorted_arr.data, queries.data, side="right")
    dev.charge_kernel(
        "thrust::upper_bound",
        flops=queries.size * max(1, int(np.log2(max(2, sorted_arr.size)))),
        bytes_moved=queries.nbytes + out.nbytes,
        kind="gather",
    )
    return out
