"""Simulated Thrust: STL-like parallel primitives on device arrays.

The paper's k-means (centroid update via sort + segmented reduction) and
k-means++ seeding (prefix sums, weighted sampling) are built on these
primitives, exactly as the reference CUDA implementation builds on the real
Thrust library.
"""

from repro.thrust.algorithms import (
    copy,
    count,
    exclusive_scan,
    fill,
    gather,
    inclusive_scan,
    lower_bound,
    max_element,
    min_element,
    reduce,
    reduce_by_key,
    scatter,
    sequence,
    sort,
    sort_by_key,
    transform,
    upper_bound,
)

__all__ = [
    "copy",
    "count",
    "exclusive_scan",
    "fill",
    "gather",
    "inclusive_scan",
    "lower_bound",
    "max_element",
    "min_element",
    "reduce",
    "reduce_by_key",
    "scatter",
    "sequence",
    "sort",
    "sort_by_key",
    "transform",
    "upper_bound",
]
