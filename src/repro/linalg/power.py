"""Block power-iteration spectral embedding (Boutsidis et al.).

*Spectral Clustering via the Power Method — Provably* (PAPERS.md) shows
that for k-way spectral clustering the exact invariant subspace is
overkill: ``q = O(log n)`` power iterations of a random start block give
an embedding whose k-means cost is within ``1 + ε`` of the exact one.
That makes the embedding *pure repeated SpMM* — no reorthogonalization
sweeps, no implicit restarts, no per-iteration host round trips — so it
rides the partitioned multi-GPU SpMV, the format autotuner, and the
caching allocator exactly as-is, and pairs naturally with reduced-
precision operator storage (the quantization noise is far below the
O(1/q) subspace error).

The driver is placement-agnostic: ``apply_block`` is the only way it
touches the operator, so the caller owns devices, faults, and cost
accounting, mirroring :mod:`repro.linalg.refine`.

The iteration core (orthonormalized block power + Rayleigh–Ritz) lives
in :mod:`repro.linalg.spectrum` since the compressive tier's spectrum-
edge probe shares it; :func:`power_embedding` is a pure delegation, so
the extraction changed no floats (pinned by the spectrum unit tests).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.linalg.spectrum import block_power_probe, default_power_iterations

__all__ = ["default_power_iterations", "power_embedding"]


def power_embedding(
    apply_block: Callable[[np.ndarray], np.ndarray],
    n: int,
    k: int,
    q: int | None = None,
    oversample: int = 2,
    seed: int | None = 0,
    which: str = "LA",
) -> tuple[np.ndarray, np.ndarray, float, int]:
    """Top-k (or bottom-k) eigenpair approximation by block power iteration.

    ``q`` orthonormalized power steps on a ``p = k + oversample`` column
    random block, then one Rayleigh–Ritz projection to read eigenpairs
    out of the subspace — ``q + 1`` operator applications total.

    Note ``which="SA"`` still converges toward the *dominant* subspace;
    it only selects the other end of the projected spectrum, so it is
    meaningful for operators whose small eigenvalues are the large ones
    of a shifted operator (the pipeline feeds ``2I - L_sym``-style
    operators where "LA" is the clustering-relevant end).

    Returns
    -------
    (theta, U, residual, n_applications):
        ``k`` eigenvalues ascending (matching the Lanczos driver's
        convention), their Ritz vectors, the max relative block
        residual, and how many times ``apply_block`` ran.
    """
    return block_power_probe(
        apply_block, n, k, q=q, oversample=oversample, seed=seed, which=which,
    )
