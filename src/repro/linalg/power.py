"""Block power-iteration spectral embedding (Boutsidis et al.).

*Spectral Clustering via the Power Method — Provably* (PAPERS.md) shows
that for k-way spectral clustering the exact invariant subspace is
overkill: ``q = O(log n)`` power iterations of a random start block give
an embedding whose k-means cost is within ``1 + ε`` of the exact one.
That makes the embedding *pure repeated SpMM* — no reorthogonalization
sweeps, no implicit restarts, no per-iteration host round trips — so it
rides the partitioned multi-GPU SpMV, the format autotuner, and the
caching allocator exactly as-is, and pairs naturally with reduced-
precision operator storage (the quantization noise is far below the
O(1/q) subspace error).

The driver is placement-agnostic: ``apply_block`` is the only way it
touches the operator, so the caller owns devices, faults, and cost
accounting, mirroring :mod:`repro.linalg.refine`.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import EigensolverError
from repro.linalg.refine import block_residual


def default_power_iterations(n: int) -> int:
    """The ``q = O(log n)`` iteration count of Boutsidis et al., with a
    floor that keeps tiny test graphs well-converged."""
    return max(8, int(math.ceil(2.0 * math.log2(max(2, n)))))


def power_embedding(
    apply_block: Callable[[np.ndarray], np.ndarray],
    n: int,
    k: int,
    q: int | None = None,
    oversample: int = 2,
    seed: int | None = 0,
    which: str = "LA",
) -> tuple[np.ndarray, np.ndarray, float, int]:
    """Top-k (or bottom-k) eigenpair approximation by block power iteration.

    ``q`` orthonormalized power steps on a ``p = k + oversample`` column
    random block, then one Rayleigh–Ritz projection to read eigenpairs
    out of the subspace — ``q + 1`` operator applications total.

    Note ``which="SA"`` still converges toward the *dominant* subspace;
    it only selects the other end of the projected spectrum, so it is
    meaningful for operators whose small eigenvalues are the large ones
    of a shifted operator (the pipeline feeds ``2I - L_sym``-style
    operators where "LA" is the clustering-relevant end).

    Returns
    -------
    (theta, U, residual, n_applications):
        ``k`` eigenvalues ascending (matching the Lanczos driver's
        convention), their Ritz vectors, the max relative block
        residual, and how many times ``apply_block`` ran.
    """
    if k < 1:
        raise EigensolverError(f"power embedding needs k >= 1, got {k}")
    if n < k:
        raise EigensolverError(
            f"power embedding needs n >= k, got n={n}, k={k}"
        )
    if q is None:
        q = default_power_iterations(n)
    if q < 1:
        raise EigensolverError(f"power embedding needs q >= 1, got {q}")
    p = min(n, k + max(0, int(oversample)))
    rng = np.random.default_rng(seed)
    B, _ = np.linalg.qr(rng.standard_normal((n, p)))
    n_applications = 0
    for _ in range(q):
        Z = apply_block(B)
        n_applications += 1
        B, _ = np.linalg.qr(Z)
    # Rayleigh–Ritz on the converged block
    Z = apply_block(B)
    n_applications += 1
    T = B.T @ Z
    T = 0.5 * (T + T.T)
    w, S = np.linalg.eigh(T)  # ascending
    if which == "LA":
        sel = np.arange(p - k, p)
    else:
        sel = np.arange(k)
    theta = w[sel]
    U = B @ S[:, sel]
    AU = Z @ S[:, sel]
    res = block_residual(AU, U, theta)
    return theta, U, res, n_applications
