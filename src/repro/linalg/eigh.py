"""Dense symmetric eigendecomposition, from scratch.

Completes the no-LAPACK path of the eigensolver stack: a dense symmetric
matrix is reduced to tridiagonal form by Householder similarity
transformations (the classic ``tred2`` reduction), then diagonalized by
the implicit-QL routine in :mod:`repro.linalg.tridiag`.  Used when the
IRLM is configured with ``dense_eig="ql"`` together with an arrowhead /
dense projected matrix, and available standalone as :func:`eigh`.

The LAPACK route (``numpy.linalg.eigh``) remains the default everywhere
for speed — exactly as ARPACK defers its small dense problems to LAPACK —
and the test suite cross-validates this implementation against it.
"""

from __future__ import annotations

import numpy as np

from repro.linalg.tridiag import eigh_tridiagonal_ql


def householder_tridiagonalize(
    A: np.ndarray, compute_q: bool = True
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Reduce a symmetric matrix to tridiagonal form: ``Qᵀ A Q = T``.

    Parameters
    ----------
    A:
        Symmetric ``(n, n)`` matrix (only assumed symmetric; not checked
        beyond shape).
    compute_q:
        Accumulate the orthogonal transformation.

    Returns
    -------
    (alpha, beta, Q):
        Diagonal and subdiagonal of ``T``, and the orthogonal ``Q`` with
        ``Q @ T @ Qᵀ = A`` (or None).
    """
    A = np.array(A, dtype=np.float64, copy=True)
    n = A.shape[0]
    if A.ndim != 2 or A.shape[1] != n:
        raise ValueError(f"matrix must be square, got {A.shape}")
    Q = np.eye(n) if compute_q else None

    for k in range(n - 2):
        x = A[k + 1 :, k]
        normx = np.linalg.norm(x)
        if normx == 0.0:
            continue
        alpha_h = -np.sign(x[0]) * normx if x[0] != 0 else -normx
        v = x.copy()
        v[0] -= alpha_h
        vnorm = np.linalg.norm(v)
        if vnorm == 0.0:
            continue
        v /= vnorm
        # two-sided update of the trailing block: S <- H S H with
        # H = I - 2 v vᵀ, via the symmetric rank-2 form
        #   S <- S - 2 v qᵀ - 2 q vᵀ,  q = S v - (vᵀ S v) v
        sub = A[k + 1 :, k + 1 :]
        p = sub @ v
        kappa = float(v @ p)
        q = p - kappa * v
        sub -= 2.0 * (np.outer(v, q) + np.outer(q, v))
        A[k + 1 :, k] = 0.0
        A[k, k + 1 :] = 0.0
        A[k + 1, k] = alpha_h
        A[k, k + 1] = alpha_h
        if Q is not None:
            Q[:, k + 1 :] -= 2.0 * np.outer(Q[:, k + 1 :] @ v, v)

    alpha = np.diag(A).copy()
    beta = np.diag(A, -1).copy()
    return alpha, beta, Q


def eigh(
    A: np.ndarray, method: str = "lapack"
) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a dense symmetric matrix.

    ``method="lapack"`` calls ``numpy.linalg.eigh``; ``method="ql"`` runs
    the from-scratch Householder + implicit-QL stack.

    Returns eigenvalues ascending and the orthonormal eigenvector columns.
    """
    A = np.asarray(A, dtype=np.float64)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ValueError(f"matrix must be square, got {A.shape}")
    if method == "lapack":
        return np.linalg.eigh(A)
    if method != "ql":
        raise ValueError(f"unknown method {method!r}; expected 'lapack' or 'ql'")
    alpha, beta, Q = householder_tridiagonalize(A)
    w, Z = eigh_tridiagonal_ql(alpha, beta)
    assert Q is not None and Z is not None
    return w, Q @ Z
