"""Large-scale symmetric eigensolver, written from scratch.

This subpackage is the stand-in for ARPACK/ARPACK++ (paper §III.C, §IV.B):

* :mod:`repro.linalg.tridiag` — symmetric tridiagonal eigensolver
  (implicit QL with Wilkinson shifts, an EISPACK ``tql2``-style routine);
* :mod:`repro.linalg.qr` — Householder QR and Givens rotations;
* :mod:`repro.linalg.lanczos` — the m-step Lanczos factorization with
  full (DGKS) reorthogonalization;
* :mod:`repro.linalg.iram` — the implicitly restarted Lanczos method with
  exact-shift polynomial filtering (the symmetric IRAM of Sorensen);
* :mod:`repro.linalg.rci` — the reverse communication interface: the solver
  suspends whenever it needs ``OP @ x`` and the caller supplies the product,
  which is how the paper splits the eigensolver between CPU (driver) and GPU
  (SpMV);
* :mod:`repro.linalg.eigsolver` — :class:`SymEigProblem`, the "Prob" object
  of the paper's Algorithm 3, plus a one-call :func:`eigsh` driver.

Like ARPACK itself (which defers small dense eigenproblems to LAPACK), the
inner m×m dense operations default to LAPACK via ``numpy.linalg``; the
from-scratch QL/QR routines are selectable and cross-validated in the test
suite.
"""

from repro.linalg.tridiag import eigh_tridiagonal, eigh_tridiagonal_ql
from repro.linalg.eigh import eigh, householder_tridiagonalize
from repro.linalg.qr import givens, householder_qr
from repro.linalg.utils import dgks_orthogonalize, normalize_columns
from repro.linalg.lanczos import LanczosState
from repro.linalg.iram import IRLMResult, irlm_generator
from repro.linalg.rci import (
    LanczosCheckpoint,
    MatvecRequest,
    RCIStatus,
    TransferLedger,
)
from repro.linalg.eigsolver import SymEigProblem, eigsh, eigsh_generalized_diag

__all__ = [
    "eigh_tridiagonal",
    "eigh_tridiagonal_ql",
    "eigh",
    "householder_tridiagonalize",
    "givens",
    "householder_qr",
    "dgks_orthogonalize",
    "normalize_columns",
    "LanczosState",
    "IRLMResult",
    "irlm_generator",
    "LanczosCheckpoint",
    "MatvecRequest",
    "RCIStatus",
    "TransferLedger",
    "SymEigProblem",
    "eigsh",
    "eigsh_generalized_diag",
]
