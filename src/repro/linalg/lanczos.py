"""The Lanczos factorization with full reorthogonalization.

A ``j``-step Lanczos factorization of a symmetric operator ``A`` is::

    A V_j = V_j T_j + f e_jᵀ

with orthonormal ``V_j`` (here stored row-major: ``V[i]`` is the i-th basis
vector), symmetric tridiagonal ``T_j`` (``alpha`` diagonal / ``beta``
subdiagonal), and residual ``f`` orthogonal to the basis.

:class:`LanczosState` holds the factorization; extension is written as a
*generator* step so the operator application can be supplied externally —
the hook the reverse communication interface hangs off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.linalg.utils import dgks_orthogonalize, random_unit_vector


@dataclass
class LanczosState:
    """An in-progress Lanczos factorization.

    Attributes
    ----------
    V:
        ``(m_max, n)`` basis storage; rows ``0..j-1`` are valid.
    alpha, beta:
        Tridiagonal entries; ``alpha[i]`` valid for ``i < j``;
        ``beta[i]`` couples steps ``i`` and ``i+1`` (``beta[j-1]`` is the
        current residual norm once step ``j-1`` completes).
    j:
        Number of completed steps (valid basis rows).
    f:
        Current residual vector (unnormalized).
    breakdowns:
        Count of exact breakdowns recovered via random restarts — each one
        means an invariant subspace was captured.
    """

    V: np.ndarray
    alpha: np.ndarray
    beta: np.ndarray
    j: int = 0
    f: np.ndarray | None = None
    breakdowns: int = 0
    reorth_passes: int = 0

    @classmethod
    def allocate(cls, n: int, m_max: int) -> "LanczosState":
        return cls(
            V=np.zeros((m_max, n)),
            alpha=np.zeros(m_max),
            beta=np.zeros(m_max),
        )

    @property
    def n(self) -> int:
        return self.V.shape[1]

    @property
    def m_max(self) -> int:
        return self.V.shape[0]

    def basis(self) -> np.ndarray:
        """The valid rows of the basis, shape ``(j, n)``."""
        return self.V[: self.j]

    def tridiagonal(self) -> tuple[np.ndarray, np.ndarray]:
        """(alpha, beta) of the current j×j projected matrix."""
        return self.alpha[: self.j].copy(), self.beta[: self.j - 1].copy()

    def orthogonality_error(self) -> float:
        """``max |V Vᵀ - I|`` over the valid basis — a health diagnostic."""
        Vj = self.basis()
        G = Vj @ Vj.T
        return float(np.max(np.abs(G - np.eye(self.j)))) if self.j else 0.0


def extend_factorization(
    state: LanczosState,
    to_steps: int,
    rng: np.random.Generator,
    breakdown_tol: float = 0.0,
) -> Generator[np.ndarray, np.ndarray, None]:
    """Grow the factorization to ``to_steps`` steps (a generator).

    Yields the vector to be multiplied by the operator and receives the
    product via ``send`` — one round trip per Lanczos step.  On entry,
    either ``state.j == 0`` (fresh start; ``state.f`` must hold the start
    vector) or a valid j-step factorization with residual ``state.f`` is
    present (post-restart continuation).
    """
    n = state.n
    if to_steps > state.m_max:
        raise ValueError(f"requested {to_steps} steps but storage has {state.m_max}")
    if breakdown_tol <= 0.0:
        breakdown_tol = n * np.finfo(np.float64).eps

    while state.j < to_steps:
        j = state.j
        # place the next basis vector from the residual
        if j == 0:
            if state.f is None:
                raise ValueError("fresh factorization requires a start vector in f")
            fnorm = np.linalg.norm(state.f)
            if fnorm == 0.0:
                raise ValueError("start vector is zero")
            state.V[0] = state.f / fnorm
        else:
            fnorm = np.linalg.norm(state.f)
            scale = max(1.0, np.max(np.abs(state.alpha[:j])), np.max(state.beta[:j]))
            if fnorm <= breakdown_tol * scale:
                # exact breakdown: invariant subspace found; restart with a
                # random direction orthogonal to everything so far.
                state.V[j] = random_unit_vector(n, rng, orthogonal_to=state.V[:j])
                state.beta[j - 1] = 0.0
                state.breakdowns += 1
            else:
                state.V[j] = state.f / fnorm
                state.beta[j - 1] = fnorm

        # one operator application (suspend here)
        w = yield state.V[j]
        w = np.asarray(w, dtype=np.float64).ravel()
        if w.size != n:
            raise ValueError(f"operator returned length {w.size}, expected {n}")

        a = float(state.V[j] @ w)
        w = w - a * state.V[j]
        if j > 0:
            w = w - state.beta[j - 1] * state.V[j - 1]
        # full reorthogonalization with DGKS refinement
        w, h = dgks_orthogonalize(state.V[: j + 1], w)
        state.reorth_passes += 1
        a += float(h[j])
        if j > 0:
            state.beta[j - 1] += float(h[j - 1])
        state.alpha[j] = a
        state.f = w
        state.j = j + 1
    # final residual norm is read by the caller via np.linalg.norm(state.f)
