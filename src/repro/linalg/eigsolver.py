"""The ``Prob`` object of the paper's Algorithm 3, and a one-call driver.

:class:`SymEigProblem` exposes exactly the interface the paper's hybrid
eigensolver loop is written against::

    Prob = SymEigProblem(n, k, which="LA")
    while not Prob.converged():
        Prob.take_step()
        if Prob.needs_matvec():
            x = Prob.get_vector()          # transfer H2D
            y = ...                         # cusparseDcsrmv on the GPU
            Prob.put_vector(y)              # transfer D2H
    theta, U = Prob.find_eigenvectors()

The object is a thin protocol adapter over the
:func:`~repro.linalg.iram.irlm_generator` coroutine; all numerics live
there.  :func:`eigsh` is the convenience driver for host-side use (tests,
baselines): it loops the protocol with a provided matvec callable.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import EigensolverError, ReverseCommunicationError
from repro.linalg.iram import IRLMResult, irlm_generator
from repro.linalg.rci import LanczosCheckpoint, MatvecRequest, RCIStatus


class SymEigProblem:
    """Reverse-communication symmetric eigenproblem (ARPACK ``dsaupd`` style).

    Parameters mirror :func:`~repro.linalg.iram.irlm_generator`; pass
    ``checkpoint_cb`` to receive restart-boundary snapshots and
    ``checkpoint`` to resume a problem from one (see
    :class:`~repro.linalg.rci.LanczosCheckpoint`).  ``restart_cb`` fires at
    every implicit restart *as it happens* (argument: the 1-based restart
    count) — device-resident drivers use it to charge the restart's
    tridiagonal solve and basis update inline, at the simulated instant the
    host/device exchange actually occurs.
    """

    def __init__(
        self,
        n: int,
        k: int,
        which: str = "LA",
        m: int | None = None,
        tol: float = 0.0,
        maxiter: int | None = None,
        v0: np.ndarray | None = None,
        seed: int | None = 0,
        dense_eig: str = "lapack",
        checkpoint: LanczosCheckpoint | None = None,
        checkpoint_cb: "Callable[[LanczosCheckpoint], None] | None" = None,
        restart_cb: "Callable[[int], None] | None" = None,
    ) -> None:
        self.n = int(n)
        self.k = int(k)
        self.which = which
        self.m = int(m) if m is not None else min(n, max(2 * k + 1, 20))
        self._restart_cb = restart_cb
        self._cycles_seen = 0
        self._user_checkpoint_cb = checkpoint_cb
        self._gen = irlm_generator(
            n=n, k=k, which=which, m=m, tol=tol, maxiter=maxiter,
            v0=v0, seed=seed, dense_eig=dense_eig,
            checkpoint=checkpoint, checkpoint_cb=self._on_checkpoint,
        )
        self._status = RCIStatus.INITIAL
        self._request: MatvecRequest | None = None
        self._pending_y: np.ndarray | None = None
        self._result: IRLMResult | None = None
        self._n_requests = 0

    def _on_checkpoint(self, cp: LanczosCheckpoint) -> None:
        # the generator snapshots at every restart boundary, including once
        # before the first cycle — only boundaries after that are restarts
        self._cycles_seen += 1
        if self._restart_cb is not None and self._cycles_seen > 1:
            self._restart_cb(self._cycles_seen - 1)
        if self._user_checkpoint_cb is not None:
            self._user_checkpoint_cb(cp)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    @property
    def status(self) -> RCIStatus:
        return self._status

    def converged(self) -> bool:
        """True once the driver has finished (Algorithm 3's loop guard)."""
        return self._status is RCIStatus.DONE

    def needs_matvec(self) -> bool:
        return self._status is RCIStatus.NEED_MATVEC

    def take_step(self) -> RCIStatus:
        """Advance the solver until it needs a product or finishes."""
        if self._status is RCIStatus.NEED_MATVEC:
            raise ReverseCommunicationError(
                "take_step called while a matvec request is outstanding; "
                "supply the product with put_vector first"
            )
        if self._status is RCIStatus.DONE:
            return self._status
        try:
            if self._status is RCIStatus.INITIAL:
                x = next(self._gen)
            else:  # HAVE_RESULT
                assert self._pending_y is not None
                y, self._pending_y = self._pending_y, None
                x = self._gen.send(y)
        except StopIteration as stop:
            self._result = stop.value
            self._status = RCIStatus.DONE
            self._request = None
            return self._status
        self._request = MatvecRequest(x=x, index=self._n_requests)
        self._n_requests += 1
        self._status = RCIStatus.NEED_MATVEC
        return self._status

    def get_vector(self) -> np.ndarray:
        """The vector awaiting multiplication (solver workspace view)."""
        if self._status is not RCIStatus.NEED_MATVEC or self._request is None:
            raise ReverseCommunicationError(
                f"get_vector called in state {self._status.value!r}; "
                "call take_step until a matvec is requested"
            )
        return self._request.x

    def put_vector(self, y: np.ndarray) -> None:
        """Supply ``OP @ x`` for the outstanding request."""
        if self._status is not RCIStatus.NEED_MATVEC:
            raise ReverseCommunicationError(
                f"put_vector called in state {self._status.value!r} "
                "with no outstanding request"
            )
        y = np.asarray(y, dtype=np.float64).ravel()
        if y.size != self.n:
            raise ReverseCommunicationError(
                f"put_vector got length {y.size}, expected {self.n}"
            )
        self._pending_y = y.copy()
        self._request = None
        self._status = RCIStatus.HAVE_RESULT

    def find_eigenvectors(self) -> tuple[np.ndarray, np.ndarray]:
        """(eigenvalues ascending, eigenvector columns) after convergence.

        The analogue of ARPACK's ``dseupd`` post-processing call.
        """
        if self._result is None:
            raise ReverseCommunicationError(
                "find_eigenvectors called before the iteration finished"
            )
        return self._result.eigenvalues, self._result.eigenvectors

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def result(self) -> IRLMResult:
        if self._result is None:
            raise ReverseCommunicationError("solver has not finished")
        return self._result

    @property
    def n_op(self) -> int:
        """Operator applications so far (== PCIe round trips in Alg. 3)."""
        return self._n_requests

    def __repr__(self) -> str:
        return (
            f"<SymEigProblem n={self.n} k={self.k} which={self.which!r} "
            f"m={self.m} status={self._status.value}>"
        )


def eigsh(
    matvec: Callable[[np.ndarray], np.ndarray] | object,
    n: int | None = None,
    k: int = 6,
    which: str = "LA",
    m: int | None = None,
    tol: float = 0.0,
    maxiter: int | None = None,
    v0: np.ndarray | None = None,
    seed: int | None = 0,
    dense_eig: str = "lapack",
) -> tuple[np.ndarray, np.ndarray]:
    """Host-side convenience driver: solve with a callable or matrix.

    Parameters
    ----------
    matvec:
        Either a callable ``x -> OP @ x`` (requires ``n``) or an object with
        ``matvec`` and ``shape`` attributes (our sparse matrices).
    n:
        Dimension; inferred from ``matvec.shape`` when a matrix is passed.

    Returns
    -------
    (w, U):
        Eigenvalues ascending and eigenvector columns, like
        ``scipy.sparse.linalg.eigsh``.
    """
    if callable(matvec) and not hasattr(matvec, "shape"):
        if n is None:
            raise EigensolverError("n is required when passing a bare callable")
        apply_op = matvec
    else:
        shape = getattr(matvec, "shape", None)
        if shape is None or shape[0] != shape[1]:
            raise EigensolverError(f"operator must be square, got shape {shape}")
        n = shape[0]
        apply_op = matvec.matvec  # type: ignore[union-attr]

    prob = SymEigProblem(
        n=n, k=k, which=which, m=m, tol=tol, maxiter=maxiter,
        v0=v0, seed=seed, dense_eig=dense_eig,
    )
    while not prob.converged():
        prob.take_step()
        if prob.needs_matvec():
            prob.put_vector(apply_op(prob.get_vector()))
    return prob.find_eigenvectors()


def eigsh_generalized_diag(
    A,
    d: np.ndarray,
    k: int = 6,
    which: str = "SA",
    m: int | None = None,
    tol: float = 0.0,
    maxiter: int | None = None,
    seed: int | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Solve the generalized problem ``A x = λ D x`` with *diagonal* ``D``.

    This is the paper's §II formulation — "the k generalized eigenvectors
    corresponding to the smallest k eigenvalues of Lx = λDx" — realized by
    the similarity transform ``D^{-1/2} A D^{-1/2} u = λ u`` with
    ``x = D^{-1/2} u``; D must be positive.

    Parameters
    ----------
    A:
        Symmetric operator with ``matvec`` and square ``shape`` (our
        sparse matrices).
    d:
        The diagonal of ``D`` (strictly positive).

    Returns
    -------
    (w, X):
        Generalized eigenvalues ascending and D-orthonormal eigenvector
        columns (``Xᵀ D X = I``).
    """
    d = np.asarray(d, dtype=np.float64).ravel()
    shape = getattr(A, "shape", None)
    if shape is None or shape[0] != shape[1]:
        raise EigensolverError(f"operator must be square, got shape {shape}")
    n = shape[0]
    if d.size != n:
        raise EigensolverError(f"diagonal has length {d.size}, expected {n}")
    if np.any(d <= 0):
        raise EigensolverError("D must be positive definite (all d_i > 0)")
    inv_sqrt = 1.0 / np.sqrt(d)

    def transformed(x: np.ndarray) -> np.ndarray:
        return inv_sqrt * A.matvec(inv_sqrt * x)

    w, U = eigsh(
        transformed, n=n, k=k, which=which, m=m, tol=tol,
        maxiter=maxiter, seed=seed,
    )
    X = U * inv_sqrt[:, None]
    return w, X
