"""Orthogonalization and small vector utilities for the eigensolver."""

from __future__ import annotations

import numpy as np


def dgks_orthogonalize(
    V: np.ndarray,
    w: np.ndarray,
    max_passes: int = 3,
    eta: float = 1.0 / np.sqrt(2.0),
) -> tuple[np.ndarray, np.ndarray]:
    """Orthogonalize ``w`` against the rows of ``V`` with DGKS refinement.

    Classical Gram-Schmidt with iterative refinement (Daniel, Gragg,
    Kaufman & Stewart) — the scheme ARPACK uses.  A pass is repeated while
    the vector loses more than a factor ``eta`` of its norm, which signals
    cancellation.

    Parameters
    ----------
    V:
        ``(j, n)`` matrix with orthonormal rows.
    w:
        Vector to orthogonalize (modified copy returned).

    Returns
    -------
    (w_orth, h):
        The orthogonalized vector and the total projection coefficients
        ``h = V @ w`` accumulated over all passes (used to correct the
        tridiagonal entries).
    """
    w = np.array(w, dtype=np.float64, copy=True)
    h_total = np.zeros(V.shape[0])
    if V.shape[0] == 0:
        return w, h_total
    for _ in range(max_passes):
        norm_before = np.linalg.norm(w)
        h = V @ w
        w -= V.T @ h
        h_total += h
        norm_after = np.linalg.norm(w)
        if norm_after >= eta * norm_before or norm_after == 0.0:
            break
    return w, h_total


def normalize_columns(X: np.ndarray, eps: float = 0.0) -> np.ndarray:
    """Return ``X`` with each column scaled to unit Euclidean norm.

    Columns with norm ≤ ``eps`` are left unscaled (all-zero columns stay
    zero rather than becoming NaN).
    """
    X = np.asarray(X, dtype=np.float64)
    norms = np.linalg.norm(X, axis=0)
    safe = np.where(norms > eps, norms, 1.0)
    return X / safe


def normalize_rows(X: np.ndarray, eps: float = 0.0) -> np.ndarray:
    """Return ``X`` with each row scaled to unit Euclidean norm."""
    X = np.asarray(X, dtype=np.float64)
    norms = np.linalg.norm(X, axis=1)
    safe = np.where(norms > eps, norms, 1.0)
    return X / safe[:, None]


def random_unit_vector(
    n: int, rng: np.random.Generator, orthogonal_to: np.ndarray | None = None
) -> np.ndarray:
    """A random unit vector, optionally orthogonalized against given rows.

    Used to restart the Lanczos process after exact breakdown (an invariant
    subspace was found).
    """
    for _ in range(5):
        v = rng.standard_normal(n)
        if orthogonal_to is not None and orthogonal_to.size:
            v, _ = dgks_orthogonalize(orthogonal_to, v)
        norm = np.linalg.norm(v)
        if norm > 1e-10:
            return v / norm
    raise RuntimeError(
        "failed to draw a vector outside the current invariant subspace "
        f"(n={n}, basis rows={0 if orthogonal_to is None else len(orthogonal_to)})"
    )
