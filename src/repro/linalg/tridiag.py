"""Symmetric tridiagonal eigensolver.

:func:`eigh_tridiagonal_ql` is a from-scratch implicit-QL-with-shifts
routine in the lineage of EISPACK's ``tql2`` (the algorithm LAPACK's
``dsteqr`` descends from): for each eigenvalue it chases a bulge of Givens
rotations down the matrix with a Wilkinson-style shift, accumulating the
rotations into the eigenvector matrix.

:func:`eigh_tridiagonal` is the dispatching front door used by the IRLM
restart machinery; it defaults to LAPACK (``numpy.linalg.eigh`` on the
assembled dense matrix) for speed on the small m×m projected problems —
mirroring how ARPACK itself calls LAPACK — with ``method="ql"`` selecting
the from-scratch path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError

_EPS = np.finfo(np.float64).eps


def eigh_tridiagonal_ql(
    alpha: np.ndarray,
    beta: np.ndarray,
    compute_vectors: bool = True,
    max_sweeps: int = 50,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Eigendecomposition of the symmetric tridiagonal ``T(alpha, beta)``.

    Parameters
    ----------
    alpha:
        Diagonal, length ``n``.
    beta:
        Subdiagonal, length ``n - 1``.
    compute_vectors:
        Accumulate eigenvectors (columns of the returned ``Z``).
    max_sweeps:
        QL iterations allowed per eigenvalue before declaring failure.

    Returns
    -------
    (w, Z):
        Eigenvalues ascending and (optionally) the orthonormal eigenvector
        matrix with ``T @ Z[:, i] = w[i] * Z[:, i]``.
    """
    d = np.array(alpha, dtype=np.float64, copy=True).ravel()
    n = d.size
    if n == 0:
        return d, (np.zeros((0, 0)) if compute_vectors else None)
    e = np.zeros(n)
    if n > 1:
        b = np.asarray(beta, dtype=np.float64).ravel()
        if b.size != n - 1:
            raise ValueError(f"beta must have length {n - 1}, got {b.size}")
        e[: n - 1] = b
    Z = np.eye(n) if compute_vectors else None

    for l in range(n):
        sweeps = 0
        while True:
            # locate the first negligible subdiagonal at or beyond l
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e[m]) <= _EPS * dd:
                    break
                m += 1
            if m == l:
                break  # d[l] has converged
            sweeps += 1
            if sweeps > max_sweeps:
                raise ConvergenceError(
                    f"tridiagonal QL failed to converge for eigenvalue {l} "
                    f"after {max_sweeps} sweeps"
                )
            # Wilkinson-style shift from the leading 2x2
            g = (d[l + 1] - d[l]) / (2.0 * e[l])
            r = float(np.hypot(g, 1.0))
            g = d[m] - d[l] + e[l] / (g + (r if g >= 0 else -r))
            s = c = 1.0
            p = 0.0
            underflow = False
            for i in range(m - 1, l - 1, -1):
                f = s * e[i]
                b2 = c * e[i]
                r = float(np.hypot(f, g))
                e[i + 1] = r
                if r == 0.0:
                    # recover from underflow: skip this sweep
                    d[i + 1] -= p
                    e[m] = 0.0
                    underflow = True
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * b2
                p = s * r
                d[i + 1] = g + p
                g = c * r - b2
                if Z is not None:
                    zi1 = Z[:, i + 1].copy()
                    Z[:, i + 1] = s * Z[:, i] + c * zi1
                    Z[:, i] = c * Z[:, i] - s * zi1
            if underflow:
                continue
            d[l] -= p
            e[l] = g
            e[m] = 0.0

    order = np.argsort(d, kind="stable")
    d = d[order]
    if Z is not None:
        Z = Z[:, order]
    return d, Z


def eigh_tridiagonal(
    alpha: np.ndarray,
    beta: np.ndarray,
    compute_vectors: bool = True,
    method: str = "lapack",
) -> tuple[np.ndarray, np.ndarray | None]:
    """Front door: eigendecomposition of a symmetric tridiagonal matrix.

    ``method="lapack"`` assembles the dense matrix and calls
    ``numpy.linalg.eigh`` (fast, and the projected matrices inside IRLM are
    small); ``method="ql"`` runs the from-scratch implicit QL routine.
    """
    if method == "ql":
        return eigh_tridiagonal_ql(alpha, beta, compute_vectors=compute_vectors)
    if method != "lapack":
        raise ValueError(f"unknown method {method!r}; expected 'lapack' or 'ql'")
    alpha = np.asarray(alpha, dtype=np.float64).ravel()
    beta = np.asarray(beta, dtype=np.float64).ravel()
    n = alpha.size
    if beta.size != max(0, n - 1):
        raise ValueError(f"beta must have length {n - 1}, got {beta.size}")
    T = np.diag(alpha)
    if n > 1:
        idx = np.arange(n - 1)
        T[idx, idx + 1] = beta
        T[idx + 1, idx] = beta
    if compute_vectors:
        w, Z = np.linalg.eigh(T)
        return w, Z
    return np.linalg.eigvalsh(T), None


def tridiag_to_dense(alpha: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Assemble the dense symmetric tridiagonal matrix ``T(alpha, beta)``."""
    alpha = np.asarray(alpha, dtype=np.float64).ravel()
    beta = np.asarray(beta, dtype=np.float64).ravel()
    n = alpha.size
    T = np.diag(alpha)
    if n > 1:
        idx = np.arange(n - 1)
        T[idx, idx + 1] = beta
        T[idx + 1, idx] = beta
    return T
