"""Reverse communication interface plumbing.

ARPACK's calling convention asks the *user* to perform every operator
application: ``dsaupd`` returns with ``ido = 1`` and pointers into its
workspace; the caller multiplies, stores the result, and calls back in.
The paper (Algorithm 3) exploits exactly this to run the multiplication on
the GPU while ARPACK runs on the CPU.

Here the same protocol is expressed over the IRLM generator: a
:class:`MatvecRequest` corresponds to one ``ido = 1`` return, and
:class:`RCIStatus` enumerates the driver states.

:class:`LanczosCheckpoint` is the resilience hook: the IRLM driver emits a
snapshot of its factorization at every restart boundary, so a device
failure mid-solve resumes from the last restart instead of from scratch —
on DTI-scale problems the RCI loop performs thousands of PCIe round trips,
which is too much work to lose to one transfer error.

:class:`TransferLedger` is the bus-traffic plan for a placement of the
loop: with the iteration vector host-resident every ``ido = 1`` costs a 2n
round trip; device-resident, only the small tridiagonal state crosses at
restart boundaries and those round trips are elided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import EigensolverError


class RCIStatus(enum.Enum):
    """State of the reverse-communication driver (the ``ido`` flag)."""

    #: driver not yet started
    INITIAL = "initial"
    #: a matvec has been requested; caller must get_vector/put_vector
    NEED_MATVEC = "need_matvec"
    #: the requested product has been supplied; take_step may proceed
    HAVE_RESULT = "have_result"
    #: iteration finished (converged or iteration limit)
    DONE = "done"


@dataclass
class MatvecRequest:
    """One pending operator application.

    Attributes
    ----------
    x:
        The vector to multiply.  This is a *view into solver workspace*
        (like ARPACK's ``workd(ipntr(1))``); callers must not mutate it.
    index:
        Running count of requests, 0-based.
    """

    x: np.ndarray
    index: int

    @property
    def n(self) -> int:
        return self.x.size


@dataclass
class LanczosCheckpoint:
    """A restartable snapshot of the IRLM driver at a restart boundary.

    Captures the kept block of the Lanczos factorization (``A V_j = V_j
    T_j + f e_jᵀ``), the iteration counters, and the RNG state — everything
    needed to recreate a generator that continues *bit-identically* with
    the same operator.  All arrays are defensive copies; a checkpoint stays
    valid while the live solver mutates its workspace.

    Attributes
    ----------
    n, k, m, which:
        Problem parameters; a resume validates them against the new
        driver's configuration.
    j:
        Completed Lanczos steps in the snapshot (``0`` for the pre-first-
        cycle checkpoint, ``k+`` after a restart contraction).
    V, alpha, beta:
        The kept basis rows ``(j, n)`` and tridiagonal entries.
    f:
        The residual vector (the start vector when ``j == 0``).
    n_restarts, n_op, reorth_passes, breakdowns:
        Counters restored so resumed statistics stay cumulative.
    rng_state:
        ``bit_generator.state`` of the driver RNG (breakdown recovery
        draws), restored on resume for exact reproducibility.
    """

    n: int
    k: int
    m: int
    which: str
    j: int
    V: np.ndarray
    alpha: np.ndarray
    beta: np.ndarray
    f: np.ndarray
    n_restarts: int
    n_op: int
    reorth_passes: int
    breakdowns: int
    rng_state: dict

    def validate(self, n: int, k: int, m: int, which: str) -> None:
        """Reject a resume into a differently-configured problem."""
        if (self.n, self.k, self.m, self.which) != (n, k, m, which):
            raise EigensolverError(
                f"checkpoint is for (n={self.n}, k={self.k}, m={self.m}, "
                f"which={self.which!r}) but the solver was configured with "
                f"(n={n}, k={k}, m={m}, which={which!r})"
            )

    @property
    def nbytes(self) -> int:
        """Host memory held by the snapshot arrays."""
        return (
            self.V.nbytes + self.alpha.nbytes + self.beta.nbytes + self.f.nbytes
        )


@dataclass(frozen=True)
class TransferLedger:
    """PCIe traffic plan for one placement of the Algorithm 3 loop.

    The host-resident loop (the paper's original) moves the iteration
    vector both ways on every operator application; the device-resident
    loop keeps it on the GPU and only exchanges ARPACK's small host-side
    state at restart boundaries.  The ledger centralizes those byte counts
    so the driver, the profiler assertions, and the benchmark model all
    agree on what "should" cross the bus.

    With ``n_devices > 1`` the plan additionally covers the peer bus: one
    halo exchange per operator application (``halo_counts[d]`` x entries
    land on device ``d``, one peer copy per contributing (dst, src) pair),
    the one-time row-block distribution from device 0, a per-restart
    broadcast of the rotation ``Q`` to every device, and scattered
    seed/result slices whose per-device byte splits sum exactly to the
    single-device totals.

    Attributes
    ----------
    n, m, k:
        Problem dimension, Krylov subspace size, and wanted pairs.
    itemsize:
        Bytes per element of the iteration vectors at their *storage*
        precision (8 for the exact fp64 path, 4/2 for the reduced
        mixed-precision paths — every byte count below scales with it).
    n_devices:
        Devices the row-partitioned loop spans (1 = the pinned path).
    halo_counts:
        Per-device count of off-device x entries received per SpMV.
    halo_pairs:
        Peer copies issued per SpMV (nonzero (dst, src) pairs).
    row_counts:
        Rows owned per device.  Empty means the uniform ``linspace``
        split (the PR-5 row-balanced partitioner); the nnz-balanced and
        min-cut modes pass their actual row counts so scatter/gather
        slices follow the real layout.
    """

    n: int
    m: int
    k: int
    itemsize: int = 8
    n_devices: int = 1
    halo_counts: tuple = ()
    halo_pairs: int = 0
    row_counts: tuple = ()

    def step_roundtrip_bytes(self) -> int:
        """Bytes one host-resident ``ido = 1`` moves (x up, y down)."""
        return 2 * self.n * self.itemsize

    def restart_d2h_bytes(self) -> int:
        """Tridiagonal entries (alpha, beta) shipped down per restart."""
        return 2 * self.m * self.itemsize

    def restart_h2d_bytes(self) -> int:
        """The implicit-QR rotation product ``Q`` shipped up per restart."""
        return self.m * self.k * self.itemsize

    def result_d2h_bytes(self) -> int:
        """The Ritz vectors ``U`` coming down once at the end."""
        return self.n * self.k * self.itemsize

    def refine_apply_bytes(self) -> int:
        """One fp64 iterative-refinement block application, each way: the
        ``(n, k)`` block ships up and the product ships down at *full*
        width regardless of the solve's storage itemsize — refinement is
        the correction pass against the fp64 operator.  A refinement pass
        performs ``len(stats.refine_history) - 1`` applications: one for
        the residual measurement + in-span polish, one per subspace
        advance (``stats.refine_steps`` reports the same count)."""
        return self.n * self.k * 8

    def seed_h2d_bytes(self, checkpoint: "LanczosCheckpoint | None" = None) -> int:
        """Initial upload: the start vector, or the kept factorization
        (basis + residual) when resuming after a device failure.

        The checkpoint arrays live on the host in fp64, but what crosses
        the bus is the device-side *storage* representation — so the
        element counts are priced at the ledger's itemsize, not at the
        host arrays' width.
        """
        if checkpoint is not None:
            return (checkpoint.V.size + checkpoint.f.size) * self.itemsize
        return self.n * self.itemsize

    # -- multi-device (row-partitioned) plan ---------------------------
    def step_halo_bytes(self) -> int:
        """Peer-exchange bytes one partitioned SpMV moves over the bus."""
        return sum(self.halo_counts) * self.itemsize

    def step_halo_transfers(self) -> int:
        """Peer copies one partitioned SpMV issues."""
        return self.halo_pairs

    def restart_broadcast_bytes(self) -> int:
        """``Q`` shipped up per restart: one copy *per device* (each GPU
        rotates its own basis block)."""
        return self.n_devices * self.restart_h2d_bytes()

    def shard_split(self, total: int) -> tuple[int, ...]:
        """Split ``total`` bytes across the row blocks, exactly.

        Proportional to rows with the rounding remainder charged to
        device 0, so per-device scatter/gather slices always sum to the
        single-device total — the consistency tests rely on this.
        """
        if self.n_devices <= 1:
            return (total,)
        import numpy as np

        if self.row_counts:
            rows = np.asarray(self.row_counts, dtype=np.int64)
        else:
            bounds = np.linspace(0, self.n, self.n_devices + 1).astype(np.int64)
            rows = np.diff(bounds)
        parts = [int(total * int(r) // self.n) for r in rows]
        parts[0] += total - sum(parts)
        return tuple(parts)

    def solve_p2p_bytes(self, n_matvecs: int, shard_upload_bytes: int) -> int:
        """Total peer-bus bytes a full partitioned solve moves: the
        one-time row-block distribution plus one halo exchange per
        operator application."""
        return shard_upload_bytes + n_matvecs * self.step_halo_bytes()
