"""Reverse communication interface plumbing.

ARPACK's calling convention asks the *user* to perform every operator
application: ``dsaupd`` returns with ``ido = 1`` and pointers into its
workspace; the caller multiplies, stores the result, and calls back in.
The paper (Algorithm 3) exploits exactly this to run the multiplication on
the GPU while ARPACK runs on the CPU.

Here the same protocol is expressed over the IRLM generator: a
:class:`MatvecRequest` corresponds to one ``ido = 1`` return, and
:class:`RCIStatus` enumerates the driver states.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class RCIStatus(enum.Enum):
    """State of the reverse-communication driver (the ``ido`` flag)."""

    #: driver not yet started
    INITIAL = "initial"
    #: a matvec has been requested; caller must get_vector/put_vector
    NEED_MATVEC = "need_matvec"
    #: the requested product has been supplied; take_step may proceed
    HAVE_RESULT = "have_result"
    #: iteration finished (converged or iteration limit)
    DONE = "done"


@dataclass
class MatvecRequest:
    """One pending operator application.

    Attributes
    ----------
    x:
        The vector to multiply.  This is a *view into solver workspace*
        (like ARPACK's ``workd(ipntr(1))``); callers must not mutate it.
    index:
        Running count of requests, 0-based.
    """

    x: np.ndarray
    index: int

    @property
    def n(self) -> int:
        return self.x.size
