"""QR factorizations from scratch: Givens rotations and Householder QR.

These are the building blocks ARPACK's restart machinery is made of.  The
restart path defaults to LAPACK (``numpy.linalg.qr``) for the small dense
m×m problems — the same division of labor as real ARPACK — but these
implementations are selectable (``Config.qr_impl``) and are validated
against LAPACK in the test suite.
"""

from __future__ import annotations

import numpy as np


def givens(a: float, b: float) -> tuple[float, float, float]:
    """Compute a Givens rotation ``(c, s, r)`` with::

        [ c  s] [a]   [r]
        [-s  c] [b] = [0]

    Uses the hypot-stable formulation.
    """
    if b == 0.0:
        return 1.0, 0.0, a
    if a == 0.0:
        return 0.0, 1.0, b
    # scale by the larger magnitude so subnormal/overflowing inputs stay
    # well-conditioned (LAPACK dlartg-style)
    scale = max(abs(a), abs(b))
    a1 = a / scale
    b1 = b / scale
    r1 = float(np.hypot(a1, b1))
    return a1 / r1, b1 / r1, scale * r1


def apply_givens_right(M: np.ndarray, i: int, j: int, c: float, s: float) -> None:
    """In-place ``M <- M @ G(i, j, c, s)ᵀ`` — rotate columns ``i`` and ``j``."""
    ci = M[:, i].copy()
    cj = M[:, j]
    M[:, i] = c * ci + s * cj
    M[:, j] = -s * ci + c * cj


def householder_qr(
    A: np.ndarray, mode: str = "reduced"
) -> tuple[np.ndarray, np.ndarray]:
    """Householder QR factorization ``A = Q R``.

    Parameters
    ----------
    A:
        ``(m, n)`` real matrix.
    mode:
        ``"reduced"`` returns Q ``(m, min(m, n))``, R ``(min(m, n), n)``;
        ``"complete"`` returns square Q ``(m, m)``, R ``(m, n)``.

    The sign convention matches LAPACK's ``dgeqrf`` up to column signs; tests
    compare ``Q @ R`` and orthogonality, not the factors elementwise.
    """
    A = np.array(A, dtype=np.float64, copy=True)
    m, n = A.shape
    t = min(m, n)
    Q = np.eye(m)
    for k in range(t):
        x = A[k:, k]
        normx = np.linalg.norm(x)
        if normx == 0.0:
            continue
        alpha = -np.sign(x[0]) * normx if x[0] != 0 else -normx
        v = x.copy()
        v[0] -= alpha
        vnorm = np.linalg.norm(v)
        if vnorm == 0.0:
            continue
        v /= vnorm
        # A[k:, k:] -= 2 v (vᵀ A[k:, k:]);  Q[:, k:] -= 2 (Q[:, k:] v) vᵀ
        A[k:, k:] -= 2.0 * np.outer(v, v @ A[k:, k:])
        Q[:, k:] -= 2.0 * np.outer(Q[:, k:] @ v, v)
    # zero out the strictly-lower numerical noise
    R = np.triu(A)
    if mode == "reduced":
        return Q[:, :t], R[:t, :]
    if mode == "complete":
        return Q, R
    raise ValueError(f"unknown mode {mode!r}")


def qr_shift_step(
    T: np.ndarray, mu: float, use_lapack: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """One explicit shifted QR step: factor ``T - mu I = Q R`` and return
    ``(T', Q)`` with ``T' = R Q + mu I = Qᵀ T Q``.

    .. warning::
        With *exact* shifts (Ritz values of ``T`` itself, as IRAM uses)
        ``T - mu I`` is singular and the explicit step is forward unstable —
        the restart machinery uses :func:`implicit_qr_sweep` instead.  This
        routine is kept for testing and for well-separated shifts.
    """
    m = T.shape[0]
    shifted = T - mu * np.eye(m)
    if use_lapack:
        Q, R = np.linalg.qr(shifted)
    else:
        Q, R = householder_qr(shifted, mode="complete")
    T_new = R @ Q + mu * np.eye(m)
    return T_new, Q


def implicit_qr_sweep(T: np.ndarray, mu: float, Q: np.ndarray) -> None:
    """One *implicit* shifted QR sweep on a symmetric tridiagonal matrix.

    Performs, in place, the transformation ``T <- Pᵀ T P`` where ``P`` is
    the orthogonal factor of the QR factorization of ``T - mu I``, without
    ever forming the (possibly singular) shifted matrix: a Givens rotation
    determined by the first column starts a bulge that subsequent rotations
    chase off the band (Golub & Van Loan Alg. 8.3.2).  ``Q <- Q P`` is
    accumulated in place.  Numerically stable for exact shifts, which is
    what the IRAM polynomial filter applies.

    Parameters
    ----------
    T:
        Dense symmetric tridiagonal ``(m, m)`` array, modified in place.
        Only the tridiagonal band is referenced and written (plus the
        transient bulge).
    mu:
        The shift.
    Q:
        ``(m, m)`` accumulation matrix, updated in place.
    """
    m = T.shape[0]
    if m < 2:
        return
    x = T[0, 0] - mu
    z = T[1, 0]
    for i in range(m - 1):
        c, s, _ = givens(x, z)
        # rows/cols touched by the plane rotation in (i, i+1)
        lo = max(0, i - 1)
        hi = min(m, i + 3)
        G = np.array([[c, s], [-s, c]])
        T[i : i + 2, lo:hi] = G @ T[i : i + 2, lo:hi]
        T[lo:hi, i : i + 2] = T[lo:hi, i : i + 2] @ G.T
        # accumulate Q <- Q @ Gᵀ (columns i, i+1)
        qi = Q[:, i].copy()
        qj = Q[:, i + 1]
        Q[:, i] = c * qi + s * qj
        Q[:, i + 1] = -s * qi + c * qj
        if i < m - 2:
            x = T[i + 1, i]
            z = T[i + 2, i]
    # scrub the transient bulge entries left by rounding
    if m > 2:
        idx = np.arange(m - 2)
        T[idx + 2, idx] = 0.0
        T[idx, idx + 2] = 0.0
