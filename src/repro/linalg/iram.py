"""The implicitly restarted Lanczos method (symmetric IRAM).

Implements the restart scheme of Sorensen (1992) as used by ARPACK's
``dsaupd``: build an m-step Lanczos factorization, compute the Ritz pairs of
the projected tridiagonal, test convergence with the ARPACK bound
``|beta_m * s_{m,i}| <= tol * |theta_i|``, and — while unconverged — apply
the unwanted Ritz values as exact polynomial-filter shifts via explicit
shifted QR steps on the tridiagonal, contract the factorization back to
``k+`` steps, and extend again.

The driver is a *generator*: every operator application suspends at a
``yield``, making the CPU/GPU split of the paper's Algorithm 3 a pure
call-protocol concern layered on top (see :mod:`repro.linalg.rci`).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Callable, Generator

import numpy as np

from repro.errors import EigensolverError
from repro.linalg.lanczos import LanczosState, extend_factorization
from repro.linalg.qr import implicit_qr_sweep
from repro.linalg.rci import LanczosCheckpoint
from repro.linalg.tridiag import eigh_tridiagonal

_EPS = np.finfo(np.float64).eps


@dataclass
class IRLMResult:
    """Outcome of an implicitly restarted Lanczos run.

    Attributes
    ----------
    eigenvalues:
        The ``k`` converged Ritz values, ascending.
    eigenvectors:
        ``(n, k)`` matrix of Ritz vectors (columns match ``eigenvalues``).
    residual_norms:
        ARPACK-style error bounds ``|beta_m * s_{m,i}|`` at exit.
    n_op:
        Operator applications performed (the number of SpMVs, and hence of
        PCIe round-trips in the hybrid deployment).
    n_restarts:
        Implicit restarts performed.
    n_reorth:
        Lanczos steps that ran DGKS reorthogonalization.
    converged:
        Whether all ``k`` pairs met the tolerance.
    breakdowns:
        Exact Lanczos breakdowns recovered (invariant subspaces hit).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    residual_norms: np.ndarray
    n_op: int
    n_restarts: int
    n_reorth: int
    converged: bool
    breakdowns: int = 0


def _select(theta: np.ndarray, k: int, which: str) -> tuple[np.ndarray, np.ndarray]:
    """Partition Ritz value indices into (wanted, unwanted) for ``which``."""
    if which == "LA":
        order = np.argsort(theta)[::-1]
    elif which == "SA":
        order = np.argsort(theta)
    elif which == "LM":
        order = np.argsort(np.abs(theta))[::-1]
    elif which == "SM":
        order = np.argsort(np.abs(theta))
    else:
        raise EigensolverError(
            f"unknown which={which!r}; expected 'LA', 'SA', 'LM' or 'SM'"
        )
    return order[:k], order[k:]


def irlm_generator(
    n: int,
    k: int,
    which: str = "LA",
    m: int | None = None,
    tol: float = 0.0,
    maxiter: int | None = None,
    v0: np.ndarray | None = None,
    seed: int | None = 0,
    dense_eig: str = "lapack",
    checkpoint: LanczosCheckpoint | None = None,
    checkpoint_cb: Callable[[LanczosCheckpoint], None] | None = None,
) -> Generator[np.ndarray, np.ndarray, IRLMResult]:
    """Create the IRLM driver generator.

    Yields the vector to multiply; receives ``OP @ x`` via ``send``; returns
    an :class:`IRLMResult` (as ``StopIteration.value``).

    Parameters
    ----------
    n:
        Operator dimension.
    k:
        Number of eigenpairs wanted (``0 < k < n``).
    which:
        Spectrum end: 'LA' largest algebraic (the pipeline's choice for
        D⁻¹W), 'SA', 'LM', 'SM'.
    m:
        Lanczos basis size; defaults to ``min(n, max(2k + 1, 20))`` — the
        paper's ``m = 2k`` heuristic with a floor for tiny ``k``.
    tol:
        Relative accuracy; ``0`` means machine epsilon (ARPACK convention).
    maxiter:
        Maximum implicit restarts (default 300, ARPACK-like).
    v0:
        Start vector (default: seeded random).
    dense_eig:
        'lapack' or 'ql' — inner tridiagonal eigensolver selection.
    checkpoint:
        Resume from this :class:`~repro.linalg.rci.LanczosCheckpoint`
        instead of starting fresh.  The problem parameters must match the
        ones the checkpoint was taken with; ``v0``/``seed`` are ignored in
        favor of the checkpointed factorization and RNG state, so the
        resumed run replays the interrupted cycle bit-identically (the
        operator being deterministic).
    checkpoint_cb:
        Called with a fresh snapshot at every restart boundary (including
        once before the first cycle).  Snapshots are defensive copies and
        may be stored across the generator's lifetime.
    """
    if not 0 < k < n:
        raise EigensolverError(f"need 0 < k < n, got k={k}, n={n}")
    if m is None:
        m = min(n, max(2 * k + 1, 20))
    m = int(m)
    if m <= k:
        raise EigensolverError(f"basis size m={m} must exceed k={k}")
    if m > n:
        raise EigensolverError(f"basis size m={m} exceeds dimension n={n}")
    if maxiter is None:
        maxiter = 300
    eff_tol = tol if tol > 0 else _EPS
    rng = np.random.default_rng(seed)

    state = LanczosState.allocate(n, m)
    if checkpoint is not None:
        checkpoint.validate(n, k, m, which)
        state.V[: checkpoint.j] = checkpoint.V
        state.alpha[: checkpoint.alpha.size] = checkpoint.alpha
        state.beta[: checkpoint.beta.size] = checkpoint.beta
        state.j = checkpoint.j
        state.f = checkpoint.f.copy()
        state.reorth_passes = checkpoint.reorth_passes
        state.breakdowns = checkpoint.breakdowns
        rng.bit_generator.state = copy.deepcopy(checkpoint.rng_state)
        n_op = checkpoint.n_op
        n_restarts = checkpoint.n_restarts
    else:
        if v0 is not None:
            v0 = np.asarray(v0, dtype=np.float64).ravel()
            if v0.size != n:
                raise EigensolverError(f"v0 has length {v0.size}, expected {n}")
            state.f = v0.copy()
        else:
            state.f = rng.standard_normal(n)
        n_op = 0
        n_restarts = 0
    exhausted = n_restarts >= maxiter

    def snapshot() -> LanczosCheckpoint:
        # alpha/beta are saved to length j (beta's last valid slot may hold
        # a stale value the extension's breakdown test reads; preserving it
        # keeps the resumed cycle bit-identical to the original).
        j = state.j
        return LanczosCheckpoint(
            n=n, k=k, m=m, which=which, j=j,
            V=state.V[:j].copy(),
            alpha=state.alpha[:j].copy(),
            beta=state.beta[:j].copy(),
            f=np.array(state.f, dtype=np.float64),
            n_restarts=n_restarts,
            n_op=n_op,
            reorth_passes=state.reorth_passes,
            breakdowns=state.breakdowns,
            rng_state=copy.deepcopy(rng.bit_generator.state),
        )

    while True:
        if checkpoint_cb is not None:
            checkpoint_cb(snapshot())

        # ---- extend the factorization to m steps -----------------------
        ext = extend_factorization(state, m, rng)
        try:
            x = next(ext)
            while True:
                y = yield x
                n_op += 1
                x = ext.send(y)
        except StopIteration:
            pass

        # ---- Ritz decomposition of the projected tridiagonal -----------
        alpha, beta = state.tridiagonal()
        theta, S = eigh_tridiagonal(alpha, beta, method=dense_eig)
        assert S is not None
        beta_m = float(np.linalg.norm(state.f))
        wanted, unwanted = _select(theta, k, which)
        bounds = np.abs(beta_m * S[m - 1, wanted])
        tol_scale = np.maximum(np.abs(theta[wanted]), _EPS ** (2.0 / 3.0))
        conv_mask = bounds <= eff_tol * tol_scale
        nconv = int(np.count_nonzero(conv_mask))

        if nconv >= k or m >= n or n_restarts >= maxiter or exhausted:
            # assemble Ritz vectors X = Vᵀ S_wanted, ascending eigenvalues
            out_order = np.argsort(theta[wanted])
            sel = wanted[out_order]
            X = (S[:, sel].T @ state.basis()).T  # (n, k)
            return IRLMResult(
                eigenvalues=theta[sel].copy(),
                eigenvectors=X,
                residual_norms=np.abs(beta_m * S[m - 1, sel]),
                n_op=n_op,
                n_restarts=n_restarts,
                n_reorth=state.reorth_passes,
                converged=bool(nconv >= k or m >= n),
                breakdowns=state.breakdowns,
            )

        # ---- implicit restart with exact shifts -------------------------
        # ARPACK trick: roll converged pairs into the kept block so shifts
        # concentrate on the live part of the spectrum.
        kp = min(k + min(nconv, (m - k) // 2), m - 1)
        shift_idx = _select(theta, kp, which)[1]
        shifts = theta[shift_idx]

        T = np.diag(alpha)
        if m > 1:
            idx = np.arange(m - 1)
            T[idx, idx + 1] = beta
            T[idx + 1, idx] = beta
        Q = np.eye(m)
        for mu in shifts:
            implicit_qr_sweep(T, float(mu), Q)

        new_alpha = np.diag(T).copy()
        new_beta = np.diag(T, -1).copy()

        Vm = state.basis()
        # rows 0..kp of the rotated basis (kp+1 rows: kept block + link row)
        VQ = Q[:, : kp + 1].T @ Vm
        f_new = VQ[kp] * T[kp, kp - 1] + state.f * Q[m - 1, kp - 1]

        state.V[:kp] = VQ[:kp]
        state.alpha[:kp] = new_alpha[:kp]
        state.beta[: kp - 1] = new_beta[: kp - 1]
        state.j = kp
        state.f = f_new
        n_restarts += 1
        if n_restarts >= maxiter:
            exhausted = True
