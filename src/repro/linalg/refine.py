"""Iterative refinement of approximate eigenpairs in fp64.

The mixed-precision contract (see :mod:`repro.precision`): a reduced-
storage Lanczos or power-iteration solve converges quickly to the
quantization noise floor of its storage dtype, then this module polishes
the result against the *full-precision* operator.  The pass is built so
that its first operator application pays for three things at once:

1. the **incoming residual** of the raw reduced-precision pairs
   (``history[0]``) — the number the tolerance-banded harness gates;
2. a free **in-span Rayleigh–Ritz polish**: with ``Z = A U`` on hand and
   ``U`` orthonormal (both Lanczos and the power embedding return an
   orthonormal block), the projected problem ``T = sym(Uᵀ Z)`` re-derives
   the eigenvalues from the *fp64* operator and rotates the block to the
   best pairs inside the current span — no extra SpMM;
3. the image ``Z`` that seeds the first subspace advance, should one be
   needed.

Each subsequent **advance** is one guarded subspace-iteration step
(``Q = qr(Z)``, ``Z' = A Q``, project, rotate) costing exactly one more
operator application.  Advances stop early once the best residual is at
or below ``target`` — the caller passes a fraction of the precision's
tolerance band, so a solve that already sits inside its band pays one
application total (the measurement) instead of a fixed polish budget.
That early exit is what keeps the fp32 path's modeled byte traffic well
under the fp64 baseline even on graphs where Lanczos converges in few
iterations.

A candidate is *accepted only if its residual improves on the best seen
so far* — the keep-best guard makes the residual history monotone
non-increasing by construction, which the property tests pin.

Convergence: classical subspace-iteration analysis gives per-advance
contraction of the invariant-subspace error by the eigenvalue ratio
``|λ_{k+1}/λ_k|`` (Saad, *Numerical Methods for Large Eigenvalue
Problems*, ch. 5), and the Rayleigh–Ritz eigenvalue error is quadratic
in the subspace angle — so the in-span polish alone typically recovers
fp64-level eigenvalues from an fp32 start, and one or two advances close
most of the fp16 gap.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def block_residual(
    AU: np.ndarray, U: np.ndarray, theta: np.ndarray
) -> float:
    """Max relative eigen-residual over the block's columns.

    ``max_j ||A u_j - θ_j u_j|| / max(1, |θ_j|)`` — the same scaling the
    tolerance bands in the regression harness use.
    """
    num = np.linalg.norm(AU - U * theta[None, :], axis=0)
    den = np.maximum(1.0, np.abs(theta))
    return float(np.max(num / den)) if num.size else 0.0


def _rayleigh_ritz(
    Q: np.ndarray, Z: np.ndarray, k: int, which: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Project ``A`` onto span(Q) via its image ``Z = A Q`` and extract
    the ``k`` pairs from the requested end; returns (theta, U, AU, res)."""
    T = Q.T @ Z
    T = 0.5 * (T + T.T)
    w, S = np.linalg.eigh(T)  # ascending
    if which == "LA":
        sel = np.arange(w.size - k, w.size)
    else:
        sel = np.arange(k)
    w, S = w[sel], S[:, sel]
    U_new = Q @ S
    AU_new = Z @ S
    return w, U_new, AU_new, block_residual(AU_new, U_new, w)


def refine_eigenpairs(
    apply_block: Callable[[np.ndarray], np.ndarray],
    theta: np.ndarray,
    U: np.ndarray,
    steps: int,
    which: str = "LA",
    target: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, float, list[float]]:
    """Polish ``(theta, U)`` against the fp64 operator ``apply_block``.

    Parameters
    ----------
    apply_block:
        ``B -> A @ B`` in full fp64 (one SpMM per call); the caller owns
        device placement, fault retry, and cost accounting.
    theta, U:
        Approximate eigenvalues (ascending, as
        :meth:`~repro.linalg.eigsolver.SymEigProblem.find_eigenvectors`
        returns them) and the matching *orthonormal* eigenvector columns.
    steps:
        Maximum subspace advances to attempt.  ``steps=0`` still costs
        one operator application: it measures the incoming residual and
        applies the free in-span Rayleigh–Ritz polish.
    which:
        ``"LA"``/``"SA"`` — which end of the projected spectrum the
        ``k`` refined pairs are drawn from.
    target:
        Stop advancing once the best residual is ``<= target`` (0.0 =
        always run the full ``steps`` budget).  Callers pass a fraction
        of the storage precision's tolerance band, so a reduced solve
        that already sits inside its band pays exactly one application.

    Returns
    -------
    (theta, U, residual, history):
        The best eigenpairs seen, their residual, and the residual
        history: ``history[0]`` is the incoming residual, ``history[1]``
        the in-span polish, and one entry per subspace advance after
        that — monotone non-increasing, ``len(history) - 1`` operator
        applications in total.
    """
    theta = np.asarray(theta, dtype=np.float64)
    U = np.asarray(U, dtype=np.float64)
    k = U.shape[1]
    # application 1: measure the incoming pairs and polish in-span.  U is
    # orthonormal, so Z = A U doubles as the image for the projected
    # problem AND for the first advance's QR — nothing extra to apply.
    Z = apply_block(U)
    best_res = block_residual(Z, U, theta)
    best_theta, best_U = theta, U
    history = [best_res]
    w, U_new, AU_new, res = _rayleigh_ritz(U, Z, k, which)
    if res < best_res:
        best_res, best_theta, best_U = res, w, U_new
    history.append(best_res)
    Z = AU_new  # freshest image available, rotated into the best basis
    for _ in range(max(0, int(steps))):
        if best_res <= target:
            break
        # subspace advance: orthonormalizing the *image* A U moves the
        # span toward the invariant one (contraction by the eigenvalue
        # ratio); orthonormalizing U itself would only rotate within the
        # current span and never improve it
        Q, _ = np.linalg.qr(Z)
        Z2 = apply_block(Q)
        w, U_new, AU_new, res = _rayleigh_ritz(Q, Z2, k, which)
        if res < best_res:
            best_res, best_theta, best_U = res, w, U_new
        history.append(best_res)
        # iterate from the freshly rotated block either way: an advance
        # that did not yet beat the best can still set up the next
        # contraction
        Z = AU_new
    return best_theta, best_U, best_res, history
