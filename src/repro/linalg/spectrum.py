"""Shared spectral-interval estimation for the approximate embeddings.

Both approximate tiers need the same primitive: *where does the operator's
spectrum live?*  The power embedding (Boutsidis et al.) answers it
implicitly — its orthonormalized block iteration converges onto the
dominant subspace and the Rayleigh–Ritz projection reads the edge
eigenvalues out.  The compressive tier (Tremblay et al.) needs the answer
*explicitly* before it can do any work: the Chebyshev low-pass filter is
parameterized by λmax and the λk band edge, so a short probe must locate
them first.

This module hosts the one implementation both paths share:

* :func:`block_power_probe` — the orthonormalized block power iteration +
  Rayleigh–Ritz extraction.  This is the *verbatim* arithmetic that used
  to live inside :func:`repro.linalg.power.power_embedding`; the power
  path now delegates here, so extracting it changed no floats (pinned by
  ``tests/linalg/test_spectrum.py``).
* :func:`estimate_spectral_interval` — the compressive tier's short
  probe: a few block power steps at width ``k + 2`` yield λmax, the λk
  estimate, and the mid-gap band edge the filter cuts at.

Like :mod:`repro.linalg.power` and :mod:`repro.linalg.refine`, everything
here is placement-agnostic: ``apply_block`` is the only way the operator
is touched, so the caller owns devices, faults, and cost accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import EigensolverError
from repro.linalg.refine import block_residual


def default_power_iterations(n: int) -> int:
    """The ``q = O(log n)`` iteration count of Boutsidis et al., with a
    floor that keeps tiny test graphs well-converged."""
    return max(8, int(math.ceil(2.0 * math.log2(max(2, n)))))


def default_probe_iterations(n: int) -> int:
    """Iteration count of the *spectrum-edge probe*: half the power
    embedding's budget.  The probe only needs edge eigenvalue estimates
    good to the width of the spectral gap (the filter cuts mid-gap), not
    a usable invariant subspace, so ``O(log n)`` steps with a small
    constant suffice."""
    return max(4, int(math.ceil(math.log2(max(2, n)))))


def block_power_probe(
    apply_block: Callable[[np.ndarray], np.ndarray],
    n: int,
    k: int,
    q: int | None = None,
    oversample: int = 2,
    seed: int | None = 0,
    which: str = "LA",
) -> tuple[np.ndarray, np.ndarray, float, int]:
    """Top-k (or bottom-k) eigenpair approximation by block power iteration.

    ``q`` orthonormalized power steps on a ``p = k + oversample`` column
    random block, then one Rayleigh–Ritz projection to read eigenpairs
    out of the subspace — ``q + 1`` operator applications total.

    This is the extracted core of the power embedding; see
    :func:`repro.linalg.power.power_embedding` for the full contract
    (that wrapper is a pure delegation, so results are bit-identical to
    the pre-extraction implementation).

    Returns
    -------
    (theta, U, residual, n_applications):
        ``k`` eigenvalues ascending (matching the Lanczos driver's
        convention), their Ritz vectors, the max relative block
        residual, and how many times ``apply_block`` ran.
    """
    if k < 1:
        raise EigensolverError(f"power embedding needs k >= 1, got {k}")
    if n < k:
        raise EigensolverError(
            f"power embedding needs n >= k, got n={n}, k={k}"
        )
    if q is None:
        q = default_power_iterations(n)
    if q < 1:
        raise EigensolverError(f"power embedding needs q >= 1, got {q}")
    p = min(n, k + max(0, int(oversample)))
    rng = np.random.default_rng(seed)
    B, _ = np.linalg.qr(rng.standard_normal((n, p)))
    n_applications = 0
    for _ in range(q):
        Z = apply_block(B)
        n_applications += 1
        B, _ = np.linalg.qr(Z)
    # Rayleigh–Ritz on the converged block
    Z = apply_block(B)
    n_applications += 1
    T = B.T @ Z
    T = 0.5 * (T + T.T)
    w, S = np.linalg.eigh(T)  # ascending
    if which == "LA":
        sel = np.arange(p - k, p)
    else:
        sel = np.arange(k)
    theta = w[sel]
    U = B @ S[:, sel]
    AU = Z @ S[:, sel]
    res = block_residual(AU, U, theta)
    return theta, U, res, n_applications


@dataclass(frozen=True)
class SpectrumEstimate:
    """Spectrum-edge evidence from one :func:`estimate_spectral_interval`.

    ``band_edge`` is the mid-gap cutoff the compressive filter uses:
    halfway between the λk and λk+1 estimates, so a moderately inaccurate
    probe still lands the cutoff inside the spectral gap on clusterable
    graphs (where the gap is wide by definition).
    """

    #: estimate of the largest eigenvalue (the θ₁ Ritz value)
    lambda_max: float
    #: estimate of the k-th largest eigenvalue (the filter must pass it)
    lambda_k: float
    #: estimate of the (k+1)-th largest eigenvalue (must be rejected)
    lambda_next: float
    #: the filter cutoff: ``(lambda_k + lambda_next) / 2``
    band_edge: float
    #: max relative block residual of the probe's Ritz pairs
    residual: float
    #: operator applications the probe consumed (``q + 1``)
    n_applications: int
    #: all ``k + 1`` probe Ritz values, ascending
    theta: tuple = ()

    def as_dict(self) -> dict:
        return dict(
            lambda_max=float(self.lambda_max),
            lambda_k=float(self.lambda_k),
            lambda_next=float(self.lambda_next),
            band_edge=float(self.band_edge),
            residual=float(self.residual),
            n_applications=int(self.n_applications),
            theta=[float(t) for t in self.theta],
        )


def estimate_spectral_interval(
    apply_block: Callable[[np.ndarray], np.ndarray],
    n: int,
    k: int,
    q: int | None = None,
    seed: int | None = 0,
    which: str = "LA",
    shift: float = 0.0,
    accel: int = 1,
) -> SpectrumEstimate:
    """Short block power probe for λmax and the λk band edge.

    Runs :func:`block_power_probe` at width ``k + 2`` (``k + 1`` wanted
    Ritz values plus one oversample column) for ``q`` steps (default
    :func:`default_probe_iterations` — about half the power embedding's
    budget) and reads the spectrum edges out of the Ritz values:

    * ``lambda_max`` = the largest Ritz value,
    * ``lambda_k`` / ``lambda_next`` = the k-th / (k+1)-th largest,
    * ``band_edge`` = their midpoint — the dichotomy point the Chebyshev
      low-pass filter cuts at.

    ``shift`` probes ``A + shift·I`` instead of ``A`` (one host-side
    axpy per application — no extra operator products) and maps the
    Ritz values back.  Block power converges onto the
    largest-*magnitude* subspace; normalized adjacency operators often
    carry near-bipartite eigenvalues close to −1 whose magnitude rivals
    the clustering band near +1, and they poison an unshifted probe.
    Shifting by the spectral radius moves the spectrum to ``[0, 2r]``,
    making the algebraic top the magnitude top.

    ``accel`` counters the shift's cost: moving the spectrum to
    ``[0, 2r]`` compresses the *relative* gaps near the top (the power
    method's convergence ratio), so the shifted probe iterates on the
    monotone power ``(A + shift·I)^accel`` — ``accel`` operator
    applications between orthonormalizations — which restores the gap
    amplification at the same QR cost, and the Ritz values are inverted
    through ``λ = θ^(1/accel) − shift``.  ``accel > 1`` requires a
    positive shift (an even power of a sign-indefinite operator is not
    monotone in λ).

    The probe shares its RNG convention with the power embedding (a
    ``default_rng(seed)`` start block), so a given request seed drives
    both paths deterministically.
    """
    if n < k + 1:
        raise EigensolverError(
            f"spectral-interval probe needs n >= k + 1, got n={n}, k={k}"
        )
    if shift < 0.0:
        raise EigensolverError(f"probe shift must be >= 0, got {shift}")
    if accel < 1:
        raise EigensolverError(f"probe accel must be >= 1, got {accel}")
    if accel > 1 and shift <= 0.0:
        raise EigensolverError(
            "probe accel > 1 needs a positive shift (even operator powers "
            "are not monotone in the eigenvalue)"
        )
    if q is None:
        q = default_probe_iterations(n)
    k_probe = min(n - 1, k) + 1  # k+1 wanted values, capped by n
    if shift != 0.0 or accel > 1:
        def probe_apply(B: np.ndarray) -> np.ndarray:
            for _ in range(accel):
                B = apply_block(B) + shift * B
            return B
    else:
        probe_apply = apply_block
    theta, _U, res, n_apps = block_power_probe(
        probe_apply, n, k_probe, q=q, oversample=1, seed=seed, which=which,
    )
    n_apps *= accel
    if shift != 0.0 or accel > 1:
        # invert θ = (λ + shift)^accel; clamp roundoff below zero first
        # ((A + shift·I)^accel is PSD when shift covers the spectrum)
        theta = (
            np.power(np.maximum(theta, np.finfo(np.float64).tiny),
                     1.0 / accel)
            - shift
        )
    # theta is ascending: [-1] is the extreme end of the selected window
    if which == "LA":
        lam_max = float(theta[-1])
        lam_k = float(theta[1]) if theta.size > 1 else float(theta[0])
        lam_next = float(theta[0])
    else:
        lam_max = float(theta[0])
        lam_k = float(theta[-2]) if theta.size > 1 else float(theta[-1])
        lam_next = float(theta[-1])
    return SpectrumEstimate(
        lambda_max=lam_max,
        lambda_k=lam_k,
        lambda_next=lam_next,
        band_edge=0.5 * (lam_k + lam_next),
        residual=float(res),
        n_applications=n_apps,
        theta=tuple(float(t) for t in theta),
    )
