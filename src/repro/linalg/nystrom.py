"""Nyström out-of-sample extension: numerics, byte plans, drift bounds.

A fitted spectral model (:class:`repro.core.model.FittedSpectralModel`)
labels new points without re-running the pipeline: a sparse similarity
row against the anchor (training) vertices, one SpMM against the stored
eigenvector basis, a degree/Ritz rescale, and a nearest-centroid
assignment.  The algebra: for the normalized operator ``A`` (either
``D^{-1}W`` or ``D^{-1/2}WD^{-1/2}``) with eigenpairs ``A u = θ u``, the
Nyström row of a new point with similarity vector ``s`` and degree
``d = Σ s`` is

    e_new = (1/θ) · (1/d) · (s · U)

where ``U`` is the back-mapped basis the pipeline already computes (for
'sym' that back-mapping is exactly the ``D^{-1/2}`` row scaling, which
makes the formula identical for both operators) — Boutsidis et al.
justify the embedding-space nearest-centroid assignment.

This module holds the *pure* numerics shared by the device path and the
host fallback (bit-identity by construction: both call the same
functions; the device path only adds charged kernels and transfers
around them), plus the analytic transfer ledgers the tests and the serve
bench pin against the device meter, and the Weyl-style Ritz drift bound
that gates lazy refits after an incremental graph delta.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.precision import as_f64, ritz_tolerance

#: ritz values closer to zero than this are clamped before the 1/θ
#: rescale — a numerically-zero ritz value carries no embedding signal
_THETA_FLOOR = 1e-12


def csr_row_reduce(indptr: np.ndarray, vals2d: np.ndarray) -> np.ndarray:
    """Segment-sum ``vals2d`` rows by the CSR row pointer.

    The exact ``np.add.reduceat`` call :func:`repro.cusparse.spmm.csrmm`
    uses, factored out so host fallbacks reproduce device products bit
    for bit.  ``vals2d`` may be 1-D (degrees) or 2-D (gathered basis
    rows).
    """
    n = indptr.shape[0] - 1
    row_nnz = np.diff(indptr)
    nonempty = np.flatnonzero(row_nnz > 0)
    shape = (n,) if vals2d.ndim == 1 else (n, vals2d.shape[1])
    out = np.zeros(shape)
    if nonempty.size:
        out[nonempty] = np.add.reduceat(vals2d, indptr[nonempty], axis=0)
    return out


def nystrom_product(
    indptr: np.ndarray,
    indices: np.ndarray,
    vals: np.ndarray,
    basis: np.ndarray,
) -> np.ndarray:
    """``S @ basis`` with the identical gather/reduceat arithmetic as the
    device ``cusparseDcsrmm`` substrate (fp64 accumulation)."""
    gathered = as_f64(vals)[:, None] * as_f64(basis)[indices]
    return csr_row_reduce(indptr, gathered)


def nystrom_degrees(indptr: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """Row sums of the new-point similarity rows (the Nyström degrees)."""
    return csr_row_reduce(indptr, as_f64(vals))


def nystrom_scale(
    prod: np.ndarray, deg: np.ndarray, theta: np.ndarray
) -> np.ndarray:
    """The ``(1/θ)·(1/d)`` rescale; zero-degree rows and numerically-zero
    ritz values are clamped to 1 (their rows/columns carry no signal)."""
    safe_d = np.where(deg > 0, deg, 1.0)
    safe_t = np.where(np.abs(theta) > _THETA_FLOOR, theta, 1.0)
    return prod / safe_d[:, None] / safe_t[None, :]


# ---------------------------------------------------------------------------
# transfer ledgers (analytic byte plans, pinned against the device meter)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictLedger:
    """Byte plan of one device-path :meth:`FittedSpectralModel.predict`.

    Every transfer the predict fast path performs, agreed between the
    model driver, the tests and the serve bench: the plan must equal the
    device meter's ``transfer_stats()`` delta exactly (``ledger ==
    meter``), the same discipline as the eigensolver's
    :class:`~repro.linalg.rci.TransferLedger`.

    ``feature_path`` — True when similarity values are computed on the
    device from new-point features (Algorithm-1 style); False when the
    caller supplied precomputed similarity weights, which then ride H2D
    themselves.
    """

    n_new: int
    n_anchor: int
    k: int
    nnz: int
    d: int = 0
    feature_path: bool = False
    #: similarity value storage itemsize (fit precision)
    itemsize: int = 8

    def x_new_h2d_bytes(self) -> int:
        """New-point feature rows (feature path only)."""
        return self.n_new * self.d * 8 if self.feature_path else 0

    def anchors_h2d_bytes(self) -> int:
        """Anchor feature rows for the similarity kernel (feature path)."""
        return self.n_anchor * self.d * 8 if self.feature_path else 0

    def pairs_h2d_bytes(self) -> int:
        """Edge endpoint uploads: src+dst (feature path) or the CSR
        column indices alone (weights path)."""
        return 2 * self.nnz * 8 if self.feature_path else self.nnz * 8

    def values_h2d_bytes(self) -> int:
        """Similarity values (weights path only; the feature path forms
        them on the device)."""
        return 0 if self.feature_path else self.nnz * self.itemsize

    def indptr_h2d_bytes(self) -> int:
        return (self.n_new + 1) * 8

    def basis_h2d_bytes(self) -> int:
        """The anchor eigenvector block for the SpMM."""
        return self.n_anchor * self.k * 8

    def centroids_h2d_bytes(self) -> int:
        return self.k * self.k * 8

    def labels_d2h_bytes(self) -> int:
        return self.n_new * 8

    def embedding_d2h_bytes(self) -> int:
        return self.n_new * self.k * 8

    def total_h2d_bytes(self) -> int:
        return (
            self.x_new_h2d_bytes()
            + self.anchors_h2d_bytes()
            + self.pairs_h2d_bytes()
            + self.values_h2d_bytes()
            + self.indptr_h2d_bytes()
            + self.basis_h2d_bytes()
            + self.centroids_h2d_bytes()
        )

    def total_d2h_bytes(self) -> int:
        return self.labels_d2h_bytes() + self.embedding_d2h_bytes()

    @property
    def n_h2d(self) -> int:
        """Transfer count: X_new, anchors, src, dst, indptr, basis,
        centroids (feature path) vs indices, values, indptr, basis,
        centroids (weights path)."""
        return 7 if self.feature_path else 5

    @property
    def n_d2h(self) -> int:
        return 2  # labels + embedding


@dataclass(frozen=True)
class DeltaLedger:
    """Byte plan of one under-threshold :meth:`apply_delta` patch.

    The whole point of the lazy path: the delta is priced as the small
    transfers it actually costs — the symmetrized COO triple rides H2D,
    the patch scatters in place on the resident CSR, and one scalar
    (the drift statistic) rides back.
    """

    nnz_delta: int
    n: int

    def delta_h2d_bytes(self) -> int:
        """Symmetrized (row, col, value) triple of the edge delta."""
        return 3 * self.nnz_delta * 8

    def drift_d2h_bytes(self) -> int:
        """Scalar drift-statistic readback."""
        return 8

    def total_h2d_bytes(self) -> int:
        return self.delta_h2d_bytes()

    def total_d2h_bytes(self) -> int:
        return self.drift_d2h_bytes()

    @property
    def n_h2d(self) -> int:
        return 3

    @property
    def n_d2h(self) -> int:
        return 1


# ---------------------------------------------------------------------------
# drift bound (Weyl)
# ---------------------------------------------------------------------------


def ritz_drift_bound(
    rows: np.ndarray,
    cols: np.ndarray,
    dvals: np.ndarray,
    deg_old: np.ndarray,
    deg_new: np.ndarray,
) -> float:
    """Weyl-style bound on the movement of the normalized operator's
    eigenvalues under an edge delta.

    Write ``A = D^{-1/2} W D^{-1/2}`` and split the perturbed operator::

        A' - A = D'^{-1/2} ΔW D'^{-1/2}
               + (D'^{-1/2} - D^{-1/2}) W D^{-1/2}
               + D'^{-1/2} W (D'^{-1/2} - D^{-1/2})

    The first term is bounded by its Frobenius norm (computed exactly
    from the delta entries); the other two by ``max_i |√(d_i/d'_i) - 1|``
    since ``‖D^{-1/2}WD^{-1/2}‖₂ ≤ 1``.  Weyl's inequality then gives
    ``|θ'_j - θ_j| ≤ ‖A' - A‖₂ ≤`` this bound for every j.  The same
    bound is conservative for ``D^{-1}W`` (similar matrix, identical
    spectrum).

    A vertex whose new degree drops to zero contributes the worst-case
    scale factor 1.0 (it leaves the operator entirely).
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    dvals = as_f64(np.asarray(dvals))
    deg_old = as_f64(np.asarray(deg_old))
    deg_new = as_f64(np.asarray(deg_new))
    if dvals.size == 0:
        return 0.0
    safe_new = np.where(deg_new > 0, deg_new, 1.0)
    fro = float(
        np.sqrt(np.sum(dvals * dvals / (safe_new[rows] * safe_new[cols])))
    )
    touched = np.flatnonzero(deg_new != deg_old)
    if touched.size:
        ratio = np.where(
            deg_new[touched] > 0,
            np.sqrt(deg_old[touched] / safe_new[touched]),
            # degree collapsed to zero: the vertex leaves the operator
            2.0,
        )
        scale = float(np.max(np.abs(ratio - 1.0)))
    else:
        scale = 0.0
    return fro + 2.0 * scale


def drift_threshold(
    theta: np.ndarray, n: int, scale: float = 1.0
) -> float:
    """Refit threshold for :func:`ritz_drift_bound`.

    Half the smallest gap between adjacent kept Ritz values — the point
    beyond which Weyl permits adjacent eigenvalues to cross, i.e. the
    cached eigenvectors may rotate out of the invariant subspace — with
    the fp64 :func:`~repro.precision.ritz_tolerance` floor so a
    numerically-degenerate spectrum never pins the threshold at zero.
    ``scale`` multiplies the threshold (the model's ``drift_scale`` knob:
    <1 refits eagerly, >1 tolerates more drift).
    """
    theta = np.sort(as_f64(np.asarray(theta)))
    floor = ritz_tolerance(np.float64, max(int(n), 1))
    if theta.size < 2:
        return float(scale) * max(floor, 0.05)
    min_gap = float(np.min(np.diff(theta)))
    return float(scale) * max(floor, 0.5 * min_gap)
