"""Coherence-weighted vertex downsampling for the compressive tier.

k-means over all ``n`` sketch rows would erase most of the compressive
tier's advantage on paper-scale graphs, so the tier clusters a sampled
vertex subset instead and lifts the labels back (:mod:`.lift`).
Uniform sampling is fragile on graphs with unbalanced clusters — a
small cluster can vanish from the sample entirely — so rows are drawn
by *coherence*: the squared row norm of the filtered sketch, which
concentrates on vertices the k-band subspace actually represents
(the graph-sampling leverage scores of Tremblay et al., up to the
sketch's Johnson–Lindenstrauss distortion), mixed 50/50 with the
uniform distribution so no vertex is unreachable.

The RNG is stream-separated from the filter signals and the probe
start block but derives from the same request seed, so the sampled set
— and therefore every downstream label — is a pure function of
``random_state``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.device import Device

#: RNG stream tag for the vertex sampler (distinct from the filter's
#: signal stream and the probe's plain ``default_rng(seed)``)
_SAMPLE_STREAM = 0x5A3

#: uniform-mixture weight guarding against zero-coherence rows
_UNIFORM_MIX = 0.5


def default_sample_frac(n: int, k: int) -> float:
    """Sample-size heuristic: ``O(k log k)`` vertices suffice for the
    lifted labels to match the full k-means with high probability
    (Tremblay et al. §4.3), with a constant generous enough to keep the
    ARI bands tight.  Saturates at 1.0 — on small graphs the tier
    simply clusters every row and the lift is the identity."""
    if n <= 0:
        return 1.0
    target = 8.0 * k * math.log2(k + 1) + 64.0
    return float(min(1.0, target / n))


def coherence_weights(device: Device, F: np.ndarray) -> np.ndarray:
    """Sampling distribution over vertices from the sketch ``F``.

    One memory-bound row-norm sweep over the feature block (charged as
    a stream kernel), then a host-side normalize + uniform mixture.
    """
    n, d = F.shape
    device.charge_kernel(
        "rownorm[coherence]",
        flops=2.0 * n * d,
        bytes_moved=float(n * d * 8 + n * 8),
        kind="stream",
    )
    norms = np.einsum("ij,ij->i", F, F)
    total = float(norms.sum())
    if total <= 0.0:
        return np.full(n, 1.0 / n)
    w = norms / total
    w = (1.0 - _UNIFORM_MIX) * w + _UNIFORM_MIX / n
    # renormalize exactly (rng.choice is strict about sum(p) == 1)
    return w / w.sum()


def sample_vertices(
    n: int, weights: np.ndarray, n_samples: int, seed: int | None = 0
) -> np.ndarray:
    """Draw ``n_samples`` distinct vertex indices (sorted) by weight."""
    n_samples = int(min(n, max(1, n_samples)))
    if n_samples >= n:
        return np.arange(n, dtype=np.int64)
    if seed is None:
        rng = np.random.default_rng()
    else:
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=int(seed), spawn_key=(_SAMPLE_STREAM,)
            )
        )
    idx = rng.choice(n, size=n_samples, replace=False, p=weights)
    return np.sort(idx).astype(np.int64)


def gather_rows(device: Device, F: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """Gather the sampled sketch rows ``F[idx]`` on the device.

    A pure gather kernel — ``n_s·d`` irregular reads plus the packed
    write — with its own chaos fault site (``compressive.gather``) so
    the resilience tests can target the downsample step specifically.
    """
    chaos_check("compressive.gather", device)
    n_s = int(idx.shape[0])
    d = int(F.shape[1])
    device.charge_kernel(
        "gather[sample]",
        flops=float(n_s * d),
        bytes_moved=float(2 * n_s * d * 8 + n_s * 8),
        kind="stream",
    )
    return F[idx]
