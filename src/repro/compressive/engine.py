"""Device driver for the compressive embedding tier.

:func:`compressive_embedding` owns everything the placement-agnostic
math in :mod:`repro.compressive.filters` and
:mod:`repro.linalg.spectrum` deliberately doesn't: device buffers and
residency, reduced-precision storage, SpMM format autotuning, the
row-partitioned multi-GPU path, chaos fault handling, and byte-accurate
roofline accounting.  The plumbing mirrors the ``embedding="power"``
branch of :func:`repro.core.workflow.hybrid_eigensolver` — the solve is
pure repeated SpMM, a hard mid-solve fault restarts the whole solve
(the seeded signals make the replay deterministic, so there is nothing
worth checkpointing), and when the device stays unusable the run
finishes host-side with the *same* gathered/reduceat arithmetic, so the
feature sketch matches the all-GPU run bit for bit.

The solve has two phases, both pure block products through one shared
``apply_block`` plumbing:

1. **Spectrum probe** — ``estimate_spectral_interval`` at block width
   ``k + 2`` locates λmax and the mid-gap band edge.
2. **Chebyshev filter** — the order-``p`` step-response polynomial is
   applied to ``d = O(log k)`` seeded random signals; the filtered
   block *is* the spectral feature sketch.

Byte accounting: every SpMM prices through the same roofline byte
expressions the kernels charge to the traffic meter, and the engine
re-derives the analytic plan (``applications × bytes-per-application``
for the materialized format) into ``CompressiveStats.ledger_bytes`` —
tests pin ``ledger == meter`` on clean runs at fp64 and fp32.  Faulted
runs legitimately exceed the ledger: retried and resumed work is real
traffic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.chaos.retry import (
    DISABLED,
    ResiliencePolicy,
    TRANSIENT_ERRORS,
    with_retry,
)
from repro.chaos.runtime import chaos_check
from repro.compressive.filters import (
    DEFAULT_FILTER_ORDER,
    apply_chebyshev_filter,
    chebyshev_filter_coefficients,
    default_n_signals,
    random_signals,
)
from repro.cuda.device import Device
from repro.cuda.memory import BufferGroup
from repro.cusparse.formats import autotune_spmm_format, convert_for_spmv
from repro.cusparse.matrices import DeviceCSR, cast_csr
from repro.cusparse.partition import (
    PARTITION_MODES,
    partition_csr,
    partition_rows,
    spmm_partitioned,
)
from repro.cusparse.spmm import spmm_any
from repro.errors import CudaError, DeviceMemoryError, EigensolverError
from repro.hw.costmodel import CPUCostModel, GPUCostModel, TransferCostModel
from repro.hw.spec import CPUSpec, XEON_E5_2690
from repro.hw.topology import paper_topology
from repro.linalg.rci import TransferLedger
from repro.linalg.spectrum import (
    SpectrumEstimate,
    default_probe_iterations,
    estimate_spectral_interval,
)
from repro.precision import (
    as_f64,
    kernel_letter,
    quantize,
    quantize_roundtrip,
    resolve_precision,
)

#: relative safety margin widening the Chebyshev domain past the
#: analytic spectral bound — reduced-precision operator storage perturbs
#: eigenvalues by O(unit roundoff · ||A||), and the recurrence must not
#: see points outside [lmin, lmax] (Chebyshev polynomials grow
#: exponentially off-domain)
_DOMAIN_MARGIN = 5e-3

#: operator applications per probe orthonormalization step — the probe
#: iterates on (A + rI)^accel so the shift (needed to keep bipartite
#: negative eigenvalues from poisoning the |λ|-driven block power) does
#: not also flatten the convergence-driving relative gaps near the top
_PROBE_ACCEL = 8


@dataclass
class CompressiveStats:
    """Counters from one compressive embedding solve.

    The resilience / placement / transfer fields carry the same
    contracts as :class:`repro.core.workflow.EigStats` (the pipeline's
    recovery ledger reads them uniformly); the compressive-specific
    fields record the filter configuration and the spectrum-edge
    evidence the probe produced.  ``ledger_bytes`` is the analytic SpMM
    traffic plan; ``spmv_bytes`` is the metered traffic — equal on
    clean runs, meter ≥ ledger when faults forced retries or resumes,
    and ledger 0 when the solve fell back to the host (host products
    move no device memory).
    """

    n_op: int
    converged: bool
    k: int
    filter_order: int
    n_signals: int
    probe_applications: int
    filter_applications: int
    wall_seconds: float
    pcie_round_trips: int = 0
    n_resumes: int = 0
    spmv_retries: int = 0
    fallback: str | None = None
    residency: str = "device"
    spmv_format: str = "csr"
    bytes_h2d: int = 0
    bytes_d2h: int = 0
    bytes_p2p: int = 0
    n_p2p: int = 0
    transfers_elided: int = 0
    bytes_elided: int = 0
    transfer_overlap_s: float = 0.0
    format_decision: dict | None = None
    n_devices: int = 1
    #: row-partitioning evidence when ``n_devices > 1``
    partition: dict | None = None
    precision: str = "fp64"
    embedding: str = "compressive"
    #: spectrum-edge evidence from the probe (λmax, λk, band edge, ...)
    spectrum: dict | None = None
    #: modeled SpMV/SpMM device-memory bytes this solve moved (meter)
    spmv_bytes: float = 0.0
    #: analytic traffic plan: Σ applications × bytes-per-application
    ledger_bytes: float = 0.0
    #: summed simulated seconds of the SpMM kernels themselves
    spmv_kernel_s: float = 0.0

    def as_dict(self) -> dict:
        return dict(
            n_op=self.n_op,
            converged=self.converged,
            k=self.k,
            filter_order=self.filter_order,
            n_signals=self.n_signals,
            probe_applications=self.probe_applications,
            filter_applications=self.filter_applications,
            wall_seconds=self.wall_seconds,
            pcie_round_trips=self.pcie_round_trips,
            n_resumes=self.n_resumes,
            spmv_retries=self.spmv_retries,
            fallback=self.fallback,
            residency=self.residency,
            spmv_format=self.spmv_format,
            bytes_h2d=self.bytes_h2d,
            bytes_d2h=self.bytes_d2h,
            bytes_p2p=self.bytes_p2p,
            n_p2p=self.n_p2p,
            transfers_elided=self.transfers_elided,
            bytes_elided=self.bytes_elided,
            transfer_overlap_s=self.transfer_overlap_s,
            format_decision=self.format_decision,
            n_devices=self.n_devices,
            partition=self.partition,
            precision=self.precision,
            embedding=self.embedding,
            spectrum=self.spectrum,
            spmv_bytes=self.spmv_bytes,
            ledger_bytes=self.ledger_bytes,
            spmv_kernel_s=self.spmv_kernel_s,
        )


def _bytes_per_application(
    cost: GPUCostModel, A_op, fmt: str, n: int, width: int, vs: int
) -> float:
    """Analytic device-memory bytes of one block product at ``width``
    columns through the materialized operator — the exact expressions
    ``csrmm``/``ellmm``/``hybmm`` charge to the traffic meter."""
    if fmt == "ell":
        return cost.ellmm_bytes(n, A_op.nnz, A_op.width, width, vs)
    if fmt == "hyb":
        total = cost.ellmm_bytes(n, A_op.nnz_ell, A_op.width, width, vs)
        if A_op.nnz_coo > 0:
            total += cost.spmm_bytes(n, A_op.nnz_coo, width, vs)
        return total
    return cost.spmm_bytes(n, A_op.nnz, width, vs)


def _bytes_per_application_partitioned(
    cost: GPUCostModel, part, width: int, vs: int
) -> float:
    """Per-application traffic of the row-partitioned SpMM: each shard's
    local product plus its halo-segment product when the shard has one."""
    total = 0.0
    for shard in part.shards:
        total += cost.spmm_bytes(shard.n_rows, shard.nnz_local, width, vs)
        if shard.nnz_halo > 0:
            total += cost.spmm_halo_bytes(
                shard.n_rows, shard.nnz_halo, width, vs
            )
    return total


def compressive_embedding(
    device: Device,
    A: DeviceCSR,
    k: int,
    *,
    filter_order: int | None = None,
    n_signals: int | None = None,
    probe_q: int | None = None,
    seed: int | None = 0,
    which: str = "LA",
    policy: ResiliencePolicy = DISABLED,
    residency: str = "device",
    spmv_format: str = "auto",
    n_devices: int = 1,
    precision: str = "fp64",
    spectral_radius: float = 1.0,
    cpu_spec: CPUSpec = XEON_E5_2690,
    partition_mode: str = "nnz",
) -> tuple[np.ndarray, CompressiveStats]:
    """Compute the compressive spectral feature sketch ``F`` (``n × d``).

    Runs the two-phase solve (spectrum probe, then Chebyshev filtering
    of seeded random signals) on the simulated device, inheriting the
    residency / format / precision / multi-device machinery of the
    hybrid eigensolver.  Unlike the eigensolver drivers this returns no
    eigenvalues: the filtered signals themselves are the embedding —
    row ``i`` of ``F`` is (approximately) the i-th row of ``U_k`` times
    a random rotation/sketch, which preserves the inter-point distances
    k-means consumes (Tremblay et al., Prop. 2).

    Parameters mirror :func:`repro.core.workflow.hybrid_eigensolver`
    where shared; the compressive-specific knobs:

    filter_order:
        Chebyshev polynomial degree ``p`` (default
        ``DEFAULT_FILTER_ORDER``).  Higher = sharper band edge = better
        ARI, at one SpMM per degree.
    n_signals:
        Sketch width ``d`` (default ``max(16, 2k + ceil(2·log2(k+1)))``,
        see :func:`repro.compressive.filters.default_n_signals`).
    probe_q:
        Orthonormalization steps of the spectrum-edge probe (default
        ``max(4, ceil(log2 n))``); each step applies the shifted
        operator ``_PROBE_ACCEL`` times.
    spectral_radius:
        Analytic bound on ``|λ|`` of the operator (the pipeline's
        normalized operators live in ``[-1, 1]``, so 1.0).  The filter
        domain is this bound (or the probed λmax if larger) widened by
        a small safety margin.

    Returns
    -------
    (F, stats):
        The ``(n, d)`` feature sketch (fp64) and the counters.
    """
    if residency not in ("device", "host"):
        raise ValueError(
            f"residency must be one of ('device', 'host'), got {residency!r}"
        )
    if spmv_format not in ("auto", "csr", "ell", "hyb"):
        raise ValueError(
            f"spmv_format must be one of ('auto', 'csr', 'ell', 'hyb'), "
            f"got {spmv_format!r}"
        )
    if n_devices < 1:
        raise ValueError(f"n_devices must be >= 1, got {n_devices}")
    if n_devices > 1:
        if residency != "device":
            raise ValueError(
                "n_devices > 1 requires residency='device' (the row-"
                "partitioned shards live on the GPUs)"
            )
        if spmv_format not in ("auto", "csr"):
            raise ValueError(
                "n_devices > 1 stores row blocks as split local/halo CSR; "
                f"spmv_format={spmv_format!r} is not supported"
            )
        if partition_mode not in PARTITION_MODES:
            raise ValueError(
                f"partition_mode must be one of {PARTITION_MODES}, "
                f"got {partition_mode!r}"
            )
    n = A.shape[0]
    if k < 1:
        raise EigensolverError(f"compressive embedding needs k >= 1, got {k}")
    if n < k + 2:
        raise EigensolverError(
            f"compressive embedding needs n >= k + 2, got n={n}, k={k}"
        )
    order = int(filter_order) if filter_order is not None else DEFAULT_FILTER_ORDER
    if order < 1:
        raise ValueError(f"filter_order must be >= 1, got {filter_order}")
    d = int(n_signals) if n_signals is not None else default_n_signals(k)
    if d < 1:
        raise ValueError(f"n_signals must be >= 1, got {n_signals}")
    q_probe = int(probe_q) if probe_q is not None else default_probe_iterations(n)
    p_probe = min(n, k + 2)

    store_dtype = resolve_precision(precision)
    vs = store_dtype.itemsize
    letter = kernel_letter(vs)
    cpu = CPUCostModel(cpu_spec)
    t0 = time.perf_counter()
    rows_cache = np.repeat(np.arange(n, dtype=np.int64), np.diff(A.indptr.data))
    A_solve = cast_csr(device, A, store_dtype)

    n_resumes = 0
    spmv_retries = 0
    round_trips = 0
    fallback: str | None = None
    from repro.core.workflow import (
        _sum_spmv_kernel_seconds,
        _sum_transfer_stats,
    )

    transfers_before = device.transfer_stats()
    traffic_before = device.spmv_traffic_bytes

    all_devices = [device]
    bounds: np.ndarray | None = None
    row_sets: list[np.ndarray] | None = None
    row_counts: tuple[int, ...] = ()
    if n_devices > 1:
        topo = paper_topology(n_devices)
        all_devices += [
            Device(
                device.spec, device.pcie, timeline=device.timeline,
                device_index=dd, topology=topo,
            )
            for dd in range(1, n_devices)
        ]
        row_sets, _, bounds = partition_rows(
            A.indptr.data, A.indices.data, n_devices, mode=partition_mode
        )
        row_counts = tuple(int(r.size) for r in row_sets)
        device.device_index = 0
        device.topology = topo
        device.transfer_cost = TransferCostModel(device.pcie, topo)
    shard_upload_total = 0
    n_block_products = 0
    ledger_multi: TransferLedger | None = None

    def count_retry(_attempt: int) -> None:
        nonlocal spmv_retries
        spmv_retries += 1

    events_before = len(device.timeline)
    est: SpectrumEstimate | None = None
    filter_applications = 0
    ledger_bytes = 0.0
    partition_info: dict | None = None

    with device.stage("eigensolver"):
        # ---- SpMM format selection ---------------------------------------
        # both phases are pure block products; rank candidates by the
        # filter-width kernels (the dominant phase) and amortize the
        # conversion over every application the solve will perform
        decision = None
        fmt = spmv_format
        if fmt == "auto":
            if n_devices > 1:
                fmt = "csr"
            else:
                decision = autotune_spmm_format(
                    A.indptr.data, device.cost, d,
                    conversion_uses=(q_probe + 1) * _PROBE_ACCEL + order,
                    itemsize=vs,
                )
                fmt = decision.format
        A_op = A_solve

        def materialize_op() -> None:
            nonlocal A_op
            if fmt != "csr" and A_op is A_solve:
                A_op = convert_for_spmv(
                    A_solve, fmt,
                    hyb_width=decision.hyb_width if decision is not None else None,
                )

        def drop_op() -> None:
            nonlocal A_op
            if A_op is not A_solve:
                A_op.free()
                A_op = A_solve

        def charge_probe_panel(width: int) -> None:
            # per-application QR panel factorization of the probe block
            device.charge_kernel(
                f"cusolver{letter}geqrf[probe]",
                flops=2.0 * n * width * width,
                bytes_moved=2.0 * n * width * vs,
                kind="dense",
            )

        def charge_filter_axpy(width: int) -> None:
            # per-application three-term recurrence update: one fused
            # scale-subtract-accumulate sweep over the block
            device.charge_kernel(
                f"cublas{letter}axpy[cheb]",
                flops=3.0 * n * width,
                bytes_moved=5.0 * n * width * vs,
                kind="stream",
            )

        def charge_probe_panel_multi(width: int) -> None:
            # TSQR-style panel factorization, one geqrf per device
            tq = device.timeline.clock.now
            for dd, dev in enumerate(all_devices):
                nd = row_counts[dd]
                dtq = dev.cost.kernel_time(
                    2.0 * nd * width * width,
                    2.0 * nd * width * vs,
                    kind="dense",
                )
                device.timeline.record_at(
                    f"cusolver{letter}geqrf[probe,dev{dd}]",
                    "kernel", tq, dtq,
                )
                dev.kernel_launches += 1

        def charge_filter_axpy_multi(width: int) -> None:
            ta = device.timeline.clock.now
            for dd, dev in enumerate(all_devices):
                nd = row_counts[dd]
                dta = dev.cost.kernel_time(
                    3.0 * nd * width,
                    5.0 * nd * width * vs,
                    kind="stream",
                )
                device.timeline.record_at(
                    f"cublas{letter}axpy[cheb,dev{dd}]",
                    "kernel", ta, dta,
                )
                dev.kernel_launches += 1

        def run_phases(apply_factory) -> np.ndarray:
            """Run probe + filter through per-phase apply closures.

            ``apply_factory(width, extra, site)`` yields an
            ``apply_block`` for a block of ``width`` columns; ``extra``
            is the per-application dense-update charge and ``site`` the
            chaos fault site guarding each application (None = only the
            kernels' own cusparse sites).
            """
            nonlocal est, filter_applications
            # ---- phase A: spectrum-edge probe ----------------------------
            # Probe the shifted operator A + rI (spectrum in [0, 2r]):
            # block power converges on the largest-|λ| subspace, and the
            # near-bipartite eigenvalues these normalized operators carry
            # close to -1 would otherwise poison the band-edge estimate.
            # The power acceleration restores the relative gaps the
            # shift compresses (see estimate_spectral_interval).
            with apply_factory(p_probe, "probe", None) as apply_probe:
                est = estimate_spectral_interval(
                    apply_probe, n, k, q=q_probe, seed=seed, which=which,
                    shift=float(spectral_radius), accel=_PROBE_ACCEL,
                )
            # the filter domain: the analytic bound (or probed λmax if
            # the quantized operator crept past it), widened by a margin
            dom = max(float(spectral_radius), est.lambda_max)
            dom *= 1.0 + _DOMAIN_MARGIN
            coeffs = chebyshev_filter_coefficients(
                order, est.band_edge, lmin=-dom, lmax=dom,
            )
            R = random_signals(n, d, seed)
            # ---- phase B: Chebyshev filtering of the random signals ------
            with apply_factory(d, "filter", "compressive.filter") as apply_f:
                Y, filter_applications = apply_chebyshev_filter(
                    apply_f, R, coeffs, lmin=-dom, lmax=dom,
                )
            return Y

        while True:
            part = None
            phase_bufs = BufferGroup()
            try:
                if n_devices > 1:
                    part = partition_csr(
                        A_solve, all_devices, rows_cache=rows_cache,
                        mode=partition_mode, row_sets=row_sets,
                    )
                    shard_upload_total += part.shard_upload_bytes
                    P = part

                    class _MultiPhase:
                        def __init__(self, width, kind, site):
                            self.width = width
                            self.kind = kind
                            self.site = site

                        def __enter__(self):
                            nonlocal ledger_multi
                            width, site = self.width, self.site
                            extra = (
                                charge_probe_panel_multi
                                if self.kind == "probe"
                                else charge_filter_axpy_multi
                            )
                            for dd, dev in enumerate(all_devices):
                                nd = row_counts[dd]
                                phase_bufs.add(
                                    dev.empty((nd, width), dtype=store_dtype)
                                )
                                phase_bufs.add(
                                    dev.empty((nd, width), dtype=store_dtype)
                                )
                            ledger_multi = TransferLedger(
                                n=n, m=width, k=k, itemsize=vs,
                                n_devices=n_devices,
                                halo_counts=part.halo_counts,
                                halo_pairs=part.halo_pairs,
                                row_counts=row_counts,
                            )
                            # scatter the seed block, one row slab per
                            # device, concurrently
                            t_seed = device.timeline.clock.now
                            for dev, nbytes in zip(
                                all_devices,
                                ledger_multi.shard_split(n * width * vs),
                            ):
                                if nbytes:
                                    dev._record_h2d_at(nbytes, t_seed)

                            def apply_block(Bh: np.ndarray) -> np.ndarray:
                                nonlocal n_block_products

                                def partitioned_mm() -> np.ndarray:
                                    if site is not None:
                                        chaos_check(site, device)
                                    Bq = quantize_roundtrip(Bh, store_dtype)
                                    return spmm_partitioned(P, Bq)

                                Zh = with_retry(
                                    partitioned_mm, device, policy,
                                    site="eig.spmv", on_retry=count_retry,
                                )
                                Z = quantize_roundtrip(Zh, store_dtype)
                                n_block_products += width
                                device.note_elided_transfer(
                                    2, 2 * n * width * vs
                                )
                                extra(width)
                                return Z

                            return apply_block

                        def __exit__(self, *exc):
                            phase_bufs.free_all()
                            return False

                    Y = run_phases(_MultiPhase)
                    # each device ships its row slice of the sketch down
                    # concurrently; slices sum to exactly n*d*itemsize
                    t_r = device.timeline.clock.now
                    for dd, dev in enumerate(all_devices):
                        nd = row_counts[dd]
                        dev._record_d2h_at(nd * d * vs, t_r)
                    bpa_probe = _bytes_per_application_partitioned(
                        device.cost, part, p_probe, vs
                    )
                    bpa_filter = _bytes_per_application_partitioned(
                        device.cost, part, d, vs
                    )
                    ledger_bytes = (
                        est.n_applications * bpa_probe
                        + filter_applications * bpa_filter
                    )
                    partition_info = {
                        "mode": partition_mode,
                        "row_counts": list(row_counts),
                        **(
                            {"bounds": [int(b) for b in bounds]}
                            if bounds is not None
                            else {}
                        ),
                        "halo_counts": list(part.halo_counts),
                        "halo_pairs": part.halo_pairs,
                        "shard_upload_bytes": shard_upload_total,
                        "n_matvec": n_block_products,
                    }
                    part.free()
                    part = None
                elif residency == "device":
                    materialize_op()

                    class _DevicePhase:
                        def __init__(self, width, kind, site):
                            self.width = width
                            self.kind = kind
                            self.site = site

                        def __enter__(self):
                            width, site = self.width, self.site
                            extra = (
                                charge_probe_panel
                                if self.kind == "probe"
                                else charge_filter_axpy
                            )

                            def alloc_pair():
                                group = BufferGroup()
                                try:
                                    b = group.add(device.empty(
                                        (n, width), dtype=store_dtype
                                    ))
                                    c = group.add(device.empty(
                                        (n, width), dtype=store_dtype
                                    ))
                                except BaseException:
                                    group.free_all()
                                    raise
                                return group, b, c

                            self.group, dB, dC = with_retry(
                                alloc_pair, device, policy, site="eig.alloc",
                                errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                                on_retry=count_retry,
                            )
                            # the seed block uploads once; every later
                            # application stays device-resident
                            device._record_h2d(n * width * vs)

                            def apply_block(Bh: np.ndarray) -> np.ndarray:
                                dB.data[...] = Bh  # quantizes to storage

                                def resident_mm() -> None:
                                    if site is not None:
                                        chaos_check(site, device)
                                    spmm_any(A_op, dB, dC)

                                with_retry(
                                    resident_mm, device, policy,
                                    site="eig.spmv", on_retry=count_retry,
                                )
                                device.note_elided_transfer(
                                    2, 2 * n * width * vs
                                )
                                extra(width)
                                return np.asarray(
                                    dC.data, dtype=np.float64
                                ).copy()

                            return apply_block

                        def __exit__(self, *exc):
                            self.group.free_all()
                            return False

                    Y = run_phases(_DevicePhase)
                    # the feature sketch comes down once
                    device._record_d2h(n * d * vs)
                    bpa = lambda w: _bytes_per_application(
                        device.cost, A_op, fmt, n, w, vs
                    )
                    ledger_bytes = (
                        est.n_applications * bpa(p_probe)
                        + filter_applications * bpa(d)
                    )
                else:
                    materialize_op()

                    class _HostPhase:
                        def __init__(self, width, kind, site):
                            self.width = width
                            self.kind = kind
                            self.site = site

                        def __enter__(self):
                            width, site = self.width, self.site
                            kind = self.kind
                            self.group = BufferGroup()
                            dB = with_retry(
                                lambda: device.empty(
                                    (n, width), dtype=store_dtype
                                ),
                                device, policy, site="eig.alloc",
                                errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                                on_retry=count_retry,
                            )
                            self.group.add(dB)
                            dC = with_retry(
                                lambda: device.empty(
                                    (n, width), dtype=store_dtype
                                ),
                                device, policy, site="eig.alloc",
                                errors=TRANSIENT_ERRORS + (DeviceMemoryError,),
                                on_retry=count_retry,
                            )
                            self.group.add(dC)

                            def apply_block(Bh: np.ndarray) -> np.ndarray:
                                nonlocal round_trips

                                def block_roundtrip() -> np.ndarray:
                                    # idempotent: dB/dC fully rewritten
                                    if site is not None:
                                        chaos_check(site, device)
                                    dB.copy_from_host(
                                        quantize(Bh, store_dtype)
                                    )
                                    spmm_any(A_op, dB, dC)
                                    return dC.copy_to_host()

                                Ch = with_retry(
                                    block_roundtrip, device, policy,
                                    site="eig.spmv", on_retry=count_retry,
                                )
                                round_trips += 1
                                # the dense block update runs host-side
                                if kind == "probe":
                                    device.charge_cpu(
                                        "qr[probe]",
                                        cpu.blas3_time(
                                            2.0 * n * width * width
                                        ),
                                    )
                                else:
                                    device.charge_cpu(
                                        "axpy[cheb]",
                                        cpu.blas1_time(5.0 * n * width * 8.0),
                                    )
                                return np.asarray(Ch, dtype=np.float64)

                            return apply_block

                        def __exit__(self, *exc):
                            self.group.free_all()
                            return False

                    Y = run_phases(_HostPhase)
                    bpa = lambda w: _bytes_per_application(
                        device.cost, A_op, fmt, n, w, vs
                    )
                    ledger_bytes = (
                        est.n_applications * bpa(p_probe)
                        + filter_applications * bpa(d)
                    )
                break
            except CudaError:
                if part is not None:
                    part.free()
                phase_bufs.free_all()
                drop_op()
                if not policy.enabled:
                    raise
                if n_resumes < policy.max_resumes:
                    # the whole solve restarts: the seeded probe block
                    # and random signals make the replay deterministic
                    n_resumes += 1
                    continue
                if not policy.cpu_fallback:
                    raise
                # ---- CPU fallback: the whole solve host-side -------------
                fallback = "cpu"
                indices = A_solve.indices.data.copy()
                val = A_solve.val.data.copy()
                indptr = A_solve.indptr.data.copy()
                nnz = A_solve.nnz

                class _FallbackPhase:
                    def __init__(self, width, kind, site):
                        self.width = width
                        self.kind = kind

                    def __enter__(self):
                        width, kind = self.width, self.kind

                        def apply_host(Bh: np.ndarray) -> np.ndarray:
                            # same gathered/reduceat arithmetic as csrmm,
                            # with the storage round trip on both
                            # operands, so the host sketch matches the
                            # all-GPU one bit for bit
                            Bq = quantize_roundtrip(Bh, store_dtype)
                            gathered = as_f64(val)[:, None] * Bq[indices]
                            row_nnz = np.diff(indptr)
                            nonempty = np.flatnonzero(row_nnz > 0)
                            prod = np.zeros((n, Bh.shape[1]))
                            if nonempty.size:
                                prod[nonempty] = np.add.reduceat(
                                    gathered, indptr[nonempty], axis=0
                                )
                            device.charge_cpu(
                                "spmm[host-fallback]",
                                cpu.spmv_time(n, nnz) * Bh.shape[1],
                            )
                            if kind == "probe":
                                device.charge_cpu(
                                    "qr[probe]",
                                    cpu.blas3_time(2.0 * n * width * width),
                                )
                            else:
                                device.charge_cpu(
                                    "axpy[cheb]",
                                    cpu.blas1_time(5.0 * n * width * 8.0),
                                )
                            return quantize_roundtrip(prod, store_dtype)

                        return apply_host

                    def __exit__(self, *exc):
                        return False

                Y = run_phases(_FallbackPhase)
                ledger_bytes = 0.0
                break

        drop_op()
    wall = time.perf_counter() - t0
    if A_solve is not A:
        A_solve.free()
    transfers_after = _sum_transfer_stats(all_devices)
    format_decision = decision.as_dict() if decision is not None else None
    if format_decision is not None:
        format_decision["precision"] = precision
        format_decision["value_itemsize"] = vs
    stats = CompressiveStats(
        n_op=est.n_applications + filter_applications,
        converged=True,
        k=k,
        filter_order=order,
        n_signals=d,
        probe_applications=est.n_applications,
        filter_applications=filter_applications,
        wall_seconds=wall,
        pcie_round_trips=round_trips,
        n_resumes=n_resumes,
        spmv_retries=spmv_retries,
        fallback=fallback,
        residency=residency,
        spmv_format=fmt,
        bytes_h2d=transfers_after["bytes_h2d"] - transfers_before["bytes_h2d"],
        bytes_d2h=transfers_after["bytes_d2h"] - transfers_before["bytes_d2h"],
        bytes_p2p=transfers_after["bytes_p2p"] - transfers_before["bytes_p2p"],
        n_p2p=transfers_after["n_p2p"] - transfers_before["n_p2p"],
        transfers_elided=(
            transfers_after["transfers_elided"]
            - transfers_before["transfers_elided"]
        ),
        bytes_elided=(
            transfers_after["bytes_elided"] - transfers_before["bytes_elided"]
        ),
        transfer_overlap_s=(
            transfers_after["overlap_s"] - transfers_before["overlap_s"]
        ),
        format_decision=format_decision,
        n_devices=n_devices,
        partition=partition_info,
        precision=precision,
        spectrum=est.as_dict(),
        spmv_bytes=(
            sum(dv.spmv_traffic_bytes for dv in all_devices) - traffic_before
        ),
        ledger_bytes=ledger_bytes,
        spmv_kernel_s=_sum_spmv_kernel_seconds(device, events_before),
    )
    return np.asarray(Y, dtype=np.float64), stats
