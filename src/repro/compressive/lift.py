"""Label lifting: from the sampled k-means back to all ``n`` vertices.

After k-means labels the coherence-sampled sketch rows, every other
vertex still needs a cluster.  Two lift modes:

* ``"interp"`` (default) — regularized least-squares interpolation in
  sketch space: fit a ridge model ``W = (F_sᵀF_s + λI)⁻¹ F_sᵀ Y`` from
  the sampled rows to their one-hot labels, score every vertex as
  ``F W``, and take the argmax.  This is the cheap stand-in for
  Tremblay et al.'s graph-regularized decoder: the sketch rows already
  embed the k-band subspace, so a linear decoder in sketch space
  recovers the cluster indicators without touching the graph again.
* ``"nearest"`` — assign every vertex to the nearest sampled-k-means
  centroid in sketch space.  One distance pass; the cheap mode.

Both modes are deterministic functions of ``(F, idx, labels_s)`` and
are implemented with identical arithmetic on the device-charged and
host-fallback paths, so lifted labels never depend on where the lift
ran.  The interpolation solve carries its own chaos fault site
(``compressive.solve``).
"""

from __future__ import annotations

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.device import Device
from repro.errors import ClusteringError
from repro.hw.costmodel import CPUCostModel
from repro.hw.spec import XEON_E5_2690

#: lift modes accepted by the pipeline / CLI
LIFT_MODES = ("interp", "nearest")

#: relative ridge: λ = _RIDGE_REL · trace(F_sᵀF_s)/d keeps the normal
#: equations well-posed when the sample under-determines a direction
_RIDGE_REL = 1e-3


def _interp_scores(
    F: np.ndarray, F_s: np.ndarray, labels_s: np.ndarray, k: int
) -> np.ndarray:
    """The shared ridge-interpolation arithmetic (all paths)."""
    n_s, d = F_s.shape
    Y = np.zeros((n_s, k))
    Y[np.arange(n_s), labels_s] = 1.0
    G = F_s.T @ F_s
    lam = _RIDGE_REL * (np.trace(G) / d if d else 1.0)
    if lam <= 0.0:
        lam = _RIDGE_REL
    G = G + lam * np.eye(d)
    W = np.linalg.solve(G, F_s.T @ Y)
    return F @ W


def _nearest_labels(F: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Nearest-centroid assignment (all paths)."""
    d2 = (
        np.einsum("ij,ij->i", F, F)[:, None]
        - 2.0 * (F @ centroids.T)
        + np.einsum("ij,ij->i", centroids, centroids)[None, :]
    )
    return np.argmin(d2, axis=1)


def lift_labels_device(
    device: Device,
    F: np.ndarray,
    idx: np.ndarray,
    labels_s: np.ndarray,
    centroids: np.ndarray,
    mode: str = "interp",
) -> np.ndarray:
    """Lift sampled labels to all ``n`` vertices on the device.

    ``idx``/``labels_s`` are the sampled vertex indices and their
    k-means labels; ``centroids`` the sampled-k-means centroids (used
    by ``mode="nearest"``).  Charges the dense kernels to the timeline;
    the interpolation solve is guarded by the ``compressive.solve``
    fault site.
    """
    if mode not in LIFT_MODES:
        raise ClusteringError(
            f"lift mode must be one of {LIFT_MODES}, got {mode!r}"
        )
    n, d = F.shape
    k = int(centroids.shape[0])
    if mode == "nearest":
        device.charge_kernel(
            "cublasDgemm[lift-dist]",
            flops=2.0 * n * d * k,
            bytes_moved=float((n * d + d * k + n * k) * 8),
            kind="dense",
        )
        device.charge_kernel(
            "argmin[lift]",
            flops=float(n * k),
            bytes_moved=float(n * k * 8 + n * 4),
            kind="stream",
        )
        labels = _nearest_labels(F, centroids)
    else:
        chaos_check("compressive.solve", device)
        n_s = int(idx.shape[0])
        device.charge_kernel(
            "cublasDgemm[lift-gram]",
            flops=2.0 * n_s * d * d + 2.0 * n_s * d * k,
            bytes_moved=float((n_s * d + d * d + d * k) * 8),
            kind="dense",
        )
        device.charge_kernel(
            "cusolverDpotrf[lift]",
            flops=(d ** 3) / 3.0 + 2.0 * d * d * k,
            bytes_moved=float(d * d * 8),
            kind="dense",
        )
        device.charge_kernel(
            "cublasDgemm[lift-scores]",
            flops=2.0 * n * d * k,
            bytes_moved=float((n * d + d * k + 2 * n * k) * 8),
            kind="dense",
        )
        labels = np.argmax(_interp_scores(F, F[idx], labels_s, k), axis=1)
    return labels.astype(labels_s.dtype, copy=False)


def lift_labels_host(
    device: Device,
    F: np.ndarray,
    idx: np.ndarray,
    labels_s: np.ndarray,
    centroids: np.ndarray,
    mode: str = "interp",
    cpu: CPUCostModel | None = None,
) -> np.ndarray:
    """CPU-fallback lift: the *same arithmetic* as the device path
    (lifted labels are placement-independent), charged as host BLAS."""
    if mode not in LIFT_MODES:
        raise ClusteringError(
            f"lift mode must be one of {LIFT_MODES}, got {mode!r}"
        )
    cpu = cpu or CPUCostModel(XEON_E5_2690)
    n, d = F.shape
    k = int(centroids.shape[0])
    if mode == "nearest":
        device.charge_cpu(
            "lift-dist[host]", cpu.blas3_time(2.0 * n * d * k)
        )
        labels = _nearest_labels(F, centroids)
    else:
        n_s = int(idx.shape[0])
        device.charge_cpu(
            "lift-solve[host]",
            cpu.blas3_time(
                2.0 * n_s * d * d
                + 2.0 * n_s * d * k
                + (d ** 3) / 3.0
                + 2.0 * n * d * k
            ),
        )
        labels = np.argmax(_interp_scores(F, F[idx], labels_s, k), axis=1)
    return labels.astype(labels_s.dtype, copy=False)
