"""Chebyshev graph-filter engine (Tremblay et al., *Compressive Spectral
Clustering*).

The compressive tier never forms eigenvectors.  It approximates the
action of the ideal low-pass filter ``H = U_k U_kᵀ`` (the projector onto
the clustering-relevant end of the operator's spectrum) by a degree-``p``
Chebyshev polynomial in the operator, applied to a block of ``d =
O(log k)`` random signals:

    ``H R  ≈  Σ_j c_j T_j(Ã) R``

where ``Ã`` is the operator affinely mapped onto ``[-1, 1]`` and the
``c_j`` are the Chebyshev expansion coefficients of the ideal step
response, tapered by Jackson damping to suppress the Gibbs overshoot at
the band edge.  Evaluating the three-term recurrence costs exactly one
SpMM per degree — pure repeated block products, the substrate PRs 3–6
already optimized.

Everything here is placement-agnostic (the operator is only touched
through ``apply_block``), deterministic, and precision-oblivious: the
driver in :mod:`repro.compressive.engine` owns devices, faults, byte
accounting and storage width, exactly as :mod:`repro.linalg.power` does
for the power embedding.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.errors import EigensolverError

#: default Chebyshev polynomial degree; order 48 keeps the transition
#: band a few percent of the spectral interval, sharp enough that a
#: mid-gap cutoff on clusterable graphs passes the k-band essentially
#: untouched while the stop band is attenuated below the sampling noise
DEFAULT_FILTER_ORDER = 48

#: RNG stream tag separating the filter's random signals from the
#: spectrum probe's start block (both derive from the request seed)
_SIGNAL_STREAM = 0xC5C


def default_n_signals(k: int) -> int:
    """Default sketch width ``d = 2k + O(log k)``, floored at 16.

    Tremblay et al.'s asymptotic ``d = O(log k)`` is optimistic at bench
    scales: the sketch must preserve the *geometry* of a k-dimensional
    subspace through a random projection, and at ``d ≈ log k`` the
    Johnson–Lindenstrauss distortion (``~1/sqrt(d)``) eats the inter-
    cluster margins k-means needs once k grows past a handful.  A width
    of ``2k`` plus a logarithmic cushion restores the margins (measured:
    k=20 SBM recovers the exact path's ARI at d=48 but loses ~12% at
    d=27) while keeping the filter cost far below the ``k`` full
    eigenvectors the exact path computes."""
    return max(16, 2 * k + int(math.ceil(2.0 * math.log2(k + 1))))


def random_signals(n: int, d: int, seed: int | None = 0) -> np.ndarray:
    """The seeded ``(n, d)`` random signal block, scaled by ``1/sqrt(d)``.

    Derivation is *request-seeded but stream-separated*: the generator is
    spawned from ``(seed, _SIGNAL_STREAM)`` so the signals are decoupled
    from the spectrum probe's ``default_rng(seed)`` start block while
    still being a pure function of the request-level ``random_state`` —
    same seed, same signals, same labels, cache-safe.
    """
    if seed is None:
        rng = np.random.default_rng()
    else:
        rng = np.random.default_rng(
            np.random.SeedSequence(
                entropy=int(seed), spawn_key=(_SIGNAL_STREAM,)
            )
        )
    return rng.standard_normal((n, d)) / math.sqrt(d)


def jackson_damping(order: int) -> np.ndarray:
    """Jackson kernel coefficients ``g_0..g_order``.

    The optimal positive damping for Chebyshev expansions of
    discontinuous responses: multiplying ``c_j`` by ``g_j`` turns the
    oscillating Gibbs overshoot into a monotone transition of width
    ``O(1/order)`` around the cutoff.
    """
    N = order + 1
    j = np.arange(N, dtype=np.float64)
    a = math.pi / (N + 1)
    return (
        (N - j + 1) * np.cos(a * j) + np.sin(a * j) / math.tan(a)
    ) / (N + 1)


def chebyshev_filter_coefficients(
    order: int,
    band_edge: float,
    lmin: float = -1.0,
    lmax: float = 1.0,
    damping: str = "jackson",
) -> np.ndarray:
    """Chebyshev expansion of the ideal step response on ``[lmin, lmax]``.

    The target is ``h(λ) = 1`` for ``λ >= band_edge`` and ``0`` below —
    the pass band is the *top* of the spectrum because the pipeline's
    operators (``D^{-1/2}WD^{-1/2}`` / ``D⁻¹W``) put the clustering
    subspace at the largest eigenvalues; on the Laplacian this is exactly
    Tremblay's ideal *low-pass* ``λ(L) <= λ_k``.

    Coefficients come from the exact Chebyshev–Gauss quadrature at
    ``order + 1`` nodes (exact for integrands of this degree), optionally
    tapered by :func:`jackson_damping`.
    """
    if order < 1:
        raise EigensolverError(f"filter order must be >= 1, got {order}")
    if not lmin < band_edge < lmax:
        raise EigensolverError(
            f"band edge {band_edge} outside the spectral interval "
            f"({lmin}, {lmax})"
        )
    if damping not in ("jackson", "none"):
        raise EigensolverError(
            f"damping must be 'jackson' or 'none', got {damping!r}"
        )
    N = order + 1
    theta = math.pi * (np.arange(N, dtype=np.float64) + 0.5) / N
    nodes = np.cos(theta)  # Chebyshev–Gauss nodes on [-1, 1]
    lam = 0.5 * (lmax + lmin) + 0.5 * (lmax - lmin) * nodes
    h = (lam >= band_edge).astype(np.float64)
    j = np.arange(N, dtype=np.float64)
    c = (2.0 / N) * (np.cos(np.outer(j, theta)) @ h)
    c[0] *= 0.5
    if damping == "jackson":
        c *= jackson_damping(order)
    return c


def filter_response(
    coeffs: np.ndarray,
    lam: np.ndarray,
    lmin: float = -1.0,
    lmax: float = 1.0,
) -> np.ndarray:
    """Evaluate the filter polynomial at eigenvalues ``lam`` (evidence/
    tests): the scalar twin of :func:`apply_chebyshev_filter`."""
    lam = np.asarray(lam, dtype=np.float64)
    x = (2.0 * lam - (lmax + lmin)) / (lmax - lmin)
    t_prev = np.ones_like(x)
    out = coeffs[0] * t_prev
    if len(coeffs) > 1:
        t_cur = x.copy()
        out = out + coeffs[1] * t_cur
        for cj in coeffs[2:]:
            t_next = 2.0 * x * t_cur - t_prev
            out = out + cj * t_next
            t_prev, t_cur = t_cur, t_next
    return out


def apply_chebyshev_filter(
    apply_block: Callable[[np.ndarray], np.ndarray],
    R: np.ndarray,
    coeffs: np.ndarray,
    lmin: float = -1.0,
    lmax: float = 1.0,
) -> tuple[np.ndarray, int]:
    """``Y = Σ_j c_j T_j(Ã) R`` by the three-term recurrence.

    ``Ã = (2A - (lmax+lmin)I) / (lmax - lmin)`` maps the operator's
    spectrum into ``[-1, 1]``; each recurrence step costs exactly one
    ``apply_block`` (an SpMM on the device paths), so a degree-``p``
    filter is ``p`` operator applications — no orthogonalization, no
    restarts, no extra memory beyond the three-term window.

    Returns ``(Y, n_applications)``.
    """
    scale = lmax - lmin
    if scale <= 0:
        raise EigensolverError(
            f"degenerate spectral interval [{lmin}, {lmax}]"
        )
    alpha = 0.5 * (lmax + lmin)
    beta = 0.5 * scale
    R = np.asarray(R, dtype=np.float64)
    n_applications = 0
    t_prev = R
    Y = coeffs[0] * R
    if len(coeffs) == 1:
        return Y, n_applications
    t_cur = (apply_block(R) - alpha * R) / beta
    n_applications += 1
    Y = Y + coeffs[1] * t_cur
    for cj in coeffs[2:]:
        t_next = (
            2.0 * (apply_block(t_cur) - alpha * t_cur) / beta - t_prev
        )
        n_applications += 1
        Y = Y + cj * t_next
        t_prev, t_cur = t_cur, t_next
    return Y, n_applications
