"""Compressive spectral clustering tier (Tremblay et al., PAPERS.md).

The approximate embedding path for paper-scale graphs: Chebyshev
polynomial filtering of ``O(log k)`` seeded random signals replaces the
eigendecomposition, coherence-weighted downsampling + the fused GPU
k-means replaces full-n clustering, and a regularized interpolation
lifts the labels back to every vertex.  Selected as
``SpectralClustering(embedding="compressive")`` / ``repro run
--embedding compressive``; see ``docs/compressive.md``.
"""

from repro.compressive.engine import CompressiveStats, compressive_embedding
from repro.compressive.filters import (
    DEFAULT_FILTER_ORDER,
    apply_chebyshev_filter,
    chebyshev_filter_coefficients,
    default_n_signals,
    filter_response,
    jackson_damping,
    random_signals,
)
from repro.compressive.lift import (
    LIFT_MODES,
    lift_labels_device,
    lift_labels_host,
)
from repro.compressive.sampling import (
    coherence_weights,
    default_sample_frac,
    gather_rows,
    sample_vertices,
)

__all__ = [
    "CompressiveStats",
    "compressive_embedding",
    "DEFAULT_FILTER_ORDER",
    "apply_chebyshev_filter",
    "chebyshev_filter_coefficients",
    "default_n_signals",
    "filter_response",
    "jackson_damping",
    "random_signals",
    "LIFT_MODES",
    "lift_labels_device",
    "lift_labels_host",
    "coherence_weights",
    "default_sample_frac",
    "gather_rows",
    "sample_vertices",
]
