"""Dense BLAS routines over device arrays.

Naming and semantics follow cuBLAS level-1/2/3 conventions
(``cublasDgemm`` → :func:`gemm`, …).  Costs:

* level-3 routines are compute-bound at the device gemm efficiency;
* level-1/2 routines are bandwidth-bound streaming kernels;
* routines returning host scalars (``dot``, ``nrm2``) additionally charge
  the scalar D2H read, like cuBLAS in host-pointer mode.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.runtime import chaos_check
from repro.cuda.device import Device
from repro.cuda.memory import DeviceArray
from repro.errors import DeviceArrayError


def _device_of(*arrays: DeviceArray) -> Device:
    dev = None
    for a in arrays:
        if not isinstance(a, DeviceArray):
            raise DeviceArrayError(
                f"cublas operand must be a DeviceArray, got {type(a).__name__}"
            )
        if dev is None:
            dev = a.device
        elif a.device is not dev:
            raise DeviceArrayError("cublas operands on different devices")
    assert dev is not None
    return dev


def _maybe_t(a: np.ndarray, trans: bool) -> np.ndarray:
    return a.T if trans else a


# ---------------------------------------------------------------------------
# level 1
# ---------------------------------------------------------------------------


def scal(alpha: float, x: DeviceArray) -> DeviceArray:
    """``x <- alpha * x`` (``cublasDscal``)."""
    dev = _device_of(x)
    chaos_check("cublas.scal", dev)
    np.multiply(x.data, alpha, out=x.data)
    dev.charge_kernel("cublasDscal", flops=x.size, bytes_moved=2 * x.nbytes)
    return x


def axpy(alpha: float, x: DeviceArray, y: DeviceArray) -> DeviceArray:
    """``y <- alpha * x + y`` (``cublasDaxpy``)."""
    dev = _device_of(x, y)
    chaos_check("cublas.axpy", dev)
    if x.shape != y.shape:
        raise DeviceArrayError(f"axpy shape mismatch {x.shape} vs {y.shape}")
    np.add(y.data, alpha * x.data, out=y.data)
    dev.charge_kernel(
        "cublasDaxpy", flops=2 * x.size, bytes_moved=x.nbytes + 2 * y.nbytes
    )
    return y


def dot(x: DeviceArray, y: DeviceArray) -> float:
    """``<x, y>`` returned to the host (``cublasDdot``)."""
    dev = _device_of(x, y)
    chaos_check("cublas.dot", dev)
    if x.size != y.size:
        raise DeviceArrayError(f"dot length mismatch {x.size} vs {y.size}")
    v = float(np.dot(x.data.ravel(), y.data.ravel()))
    dev.charge_kernel("cublasDdot", flops=2 * x.size, bytes_moved=x.nbytes + y.nbytes)
    dev._record_d2h(8)
    return v


def nrm2(x: DeviceArray) -> float:
    """Euclidean norm returned to the host (``cublasDnrm2``)."""
    dev = _device_of(x)
    chaos_check("cublas.nrm2", dev)
    v = float(np.linalg.norm(x.data.ravel()))
    dev.charge_kernel("cublasDnrm2", flops=2 * x.size, bytes_moved=x.nbytes)
    dev._record_d2h(8)
    return v


# ---------------------------------------------------------------------------
# level 2
# ---------------------------------------------------------------------------


def gemv(
    A: DeviceArray,
    x: DeviceArray,
    y: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    trans: bool = False,
) -> DeviceArray:
    """``y <- alpha * op(A) @ x + beta * y`` (``cublasDgemv``)."""
    dev = _device_of(A, x)
    chaos_check("cublas.gemv", dev)
    Aop = _maybe_t(A.data, trans)
    m, n = Aop.shape
    if x.size != n:
        raise DeviceArrayError(f"gemv: op(A) is {m}x{n} but x has {x.size}")
    if y is None:
        y = dev.zeros(m, dtype=A.dtype)
        beta = 0.0
    elif y.size != m:
        raise DeviceArrayError(f"gemv: op(A) is {m}x{n} but y has {y.size}")
    _device_of(A, y)
    y.data[...] = alpha * (Aop @ x.data.ravel()) + beta * y.data
    dev.charge_kernel(
        "cublasDgemv",
        flops=2.0 * m * n,
        bytes_moved=A.nbytes + x.nbytes + 2 * y.nbytes,
    )
    return y


def ger(alpha: float, x: DeviceArray, y: DeviceArray, A: DeviceArray) -> DeviceArray:
    """Rank-1 update ``A <- alpha * x yᵀ + A`` (``cublasDger``)."""
    dev = _device_of(x, y, A)
    chaos_check("cublas.ger", dev)
    m, n = A.shape
    if x.size != m or y.size != n:
        raise DeviceArrayError(
            f"ger: A is {m}x{n} but x has {x.size}, y has {y.size}"
        )
    np.add(A.data, alpha * np.outer(x.data.ravel(), y.data.ravel()), out=A.data)
    dev.charge_kernel(
        "cublasDger", flops=2.0 * m * n, bytes_moved=2 * A.nbytes + x.nbytes + y.nbytes
    )
    return A


# ---------------------------------------------------------------------------
# level 3
# ---------------------------------------------------------------------------


def gemm(
    A: DeviceArray,
    B: DeviceArray,
    C: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    transa: bool = False,
    transb: bool = False,
) -> DeviceArray:
    """``C <- alpha * op(A) @ op(B) + beta * C`` (``cublasDgemm``).

    The k-means distance computation ``S -= 2 V Cᵀ`` is one call:
    ``gemm(V, C, S, alpha=-2.0, beta=1.0, transb=True)``.
    """
    dev = _device_of(A, B)
    chaos_check("cublas.gemm", dev)
    Aop = _maybe_t(A.data, transa)
    Bop = _maybe_t(B.data, transb)
    m, k = Aop.shape
    k2, n = Bop.shape
    if k != k2:
        raise DeviceArrayError(f"gemm: inner dims differ, op(A) {m}x{k}, op(B) {k2}x{n}")
    if C is None:
        C = dev.empty((m, n), dtype=A.dtype)
        beta = 0.0
    else:
        _device_of(A, C)
        if C.shape != (m, n):
            raise DeviceArrayError(f"gemm: C is {C.shape}, expected {(m, n)}")
    if beta == 0.0:
        C.data[...] = alpha * (Aop @ Bop)
    else:
        C.data[...] = alpha * (Aop @ Bop) + beta * C.data
    dt = dev.cost.gemm_time(m, n, k, itemsize=A.itemsize)
    dev.timeline.record("cublasDgemm", "kernel", dt)
    dev.kernel_launches += 1
    return C


def syrk(
    A: DeviceArray,
    C: DeviceArray | None = None,
    alpha: float = 1.0,
    beta: float = 0.0,
    trans: bool = False,
) -> DeviceArray:
    """Symmetric rank-k update ``C <- alpha * op(A) op(A)ᵀ + beta * C``."""
    dev = _device_of(A)
    chaos_check("cublas.syrk", dev)
    Aop = _maybe_t(A.data, trans)
    m, k = Aop.shape
    if C is None:
        C = dev.empty((m, m), dtype=A.dtype)
        beta = 0.0
    else:
        _device_of(A, C)
        if C.shape != (m, m):
            raise DeviceArrayError(f"syrk: C is {C.shape}, expected {(m, m)}")
    prod = Aop @ Aop.T
    if beta == 0.0:
        C.data[...] = alpha * prod
    else:
        C.data[...] = alpha * prod + beta * C.data
    dt = dev.cost.gemm_time(m, m, k, itemsize=A.itemsize) * 0.5
    dev.timeline.record("cublasDsyrk", "kernel", dt)
    dev.kernel_launches += 1
    return C
