"""Simulated cuBLAS: dense BLAS on device arrays with modeled K20c costs."""

from repro.cublas.blas import (
    axpy,
    dot,
    gemm,
    gemv,
    ger,
    nrm2,
    scal,
    syrk,
)

__all__ = ["axpy", "dot", "gemm", "gemv", "ger", "nrm2", "scal", "syrk"]
