"""The Python 2.7 column: reference numerics + the Python cost profile.

Python-2.7-era specifics reproduced: effectively single-threaded BLAS under
scipy's ARPACK wrapper (the eigensolver's ~5× gap to Matlab on DTI),
numpy-1.10 ufunc overheads on memory-bound sweeps, and sklearn-0.17
``KMeans`` with k-means++ seeding (fewer iterations than Matlab's random
seeding, as the paper notes).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import cost
from repro.baselines.cost import PYTHON_27
from repro.baselines.matlab_like import BaselineRun
from repro.baselines.reference import reference_spectral_clustering


def run_python_like(
    X: np.ndarray | None = None,
    edges: np.ndarray | None = None,
    graph=None,
    n_clusters: int = 2,
    similarity: str = "crosscorr",
    seed: int | None = 0,
    m: int | None = None,
    eig_tol: float = 0.0,
    kmeans_max_iter: int = 300,
    vectorized_similarity: bool = False,
) -> BaselineRun:
    """Run the Python-like baseline; see
    :class:`~repro.baselines.matlab_like.BaselineRun`."""
    ref = reference_spectral_clustering(
        X=X, edges=edges, graph=graph, n_clusters=n_clusters,
        similarity=similarity, m=m, eig_tol=eig_tol,
        kmeans_init=PYTHON_27.kmeans_init, kmeans_max_iter=kmeans_max_iter,
        seed=seed,
    )
    n = ref.kept.size
    nnz_dir = edges.shape[0] if edges is not None else (graph.nnz // 2)
    nnz_sym = 2 * nnz_dir
    stats = ref.eig_stats
    modeled = {
        "similarity": (
            cost.similarity_vectorized_time(PYTHON_27, nnz_dir)
            if vectorized_similarity
            else cost.similarity_serial_time(PYTHON_27, nnz_dir)
        )
        if X is not None
        else 0.0,
        "eigensolver": cost.eigensolver_time(
            PYTHON_27, n=n, nnz=nnz_sym, k=n_clusters,
            m=stats["m"], n_op=stats["n_op"], n_restarts=stats["n_restarts"],
        ),
        "kmeans": cost.kmeans_time(
            PYTHON_27, n=n, d=n_clusters, k=n_clusters,
            iters=ref.kmeans.n_iter,
        ),
    }
    return BaselineRun(name="Python", result=ref, modeled=modeled)
