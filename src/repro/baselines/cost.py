"""Cost models for the Matlab/Python baseline columns.

Calibration
-----------
The per-environment constants are fixed once, against the paper's own DTI
measurements, and then *every other* table entry is a prediction:

* ``loop_overhead_s`` — the paper's serial similarity loop takes 221.2 s
  (Matlab) / 220.9 s (Python) over 3,992,290 edges → 55.4 / 55.3 µs per
  interpreted loop iteration.
* ``vectorized_edge_cost_s`` — the vectorized variants take 5.753 / 6.271 s
  → 1.44 / 1.57 µs per edge.
* ``blas_threads`` — Matlab 2015a ships multithreaded MKL (8 cores on the
  Table I Xeon); the paper's Python 2.7 scipy/numpy stack runs effectively
  single-threaded BLAS, which is why its eigensolver lags Matlab by ~5×
  on DTI (3282 s vs 603 s).
* ``blas1_derate`` — additional Python slowdown on memory-bound sweeps
  (temporaries and dispatch in numpy-1.10-era ufuncs).
* ``kmeans_init`` — the paper notes Matlab's kmeans uses random seeding
  ("the CUDA and Python implementations utilize the k-means++
  initialization, which leads to fewer number of iterations in general
  than Matlab").

Every model is a pure function of (profile, workload descriptor), so the
same code evaluates both the scaled benchmark runs and the paper-scale
projections recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.costmodel import CPUCostModel
from repro.hw.spec import XEON_E5_2690


@dataclass(frozen=True)
class InterpreterProfile:
    """Execution characteristics of one baseline environment."""

    name: str
    #: seconds per iteration of an interpreted scalar loop
    loop_overhead_s: float
    #: seconds per edge for the vectorized similarity construction
    vectorized_edge_cost_s: float
    #: threads the BLAS-3 kernels use
    blas_threads: int
    #: threads the memory-bound BLAS-1/2 and SpMV paths use
    blas1_threads: int
    #: multiplicative slowdown on memory-bound sweeps (1.0 = none)
    blas1_derate: float
    #: k-means seeding strategy the environment defaults to
    kmeans_init: str
    #: fixed seconds of interpreted reverse-communication machinery per
    #: operator application (eigs.m / scipy LinearOperator bookkeeping,
    #: workspace copies, convergence checks in interpreted code)
    rci_overhead_s: float = 0.0


MATLAB_2015A = InterpreterProfile(
    name="Matlab",
    loop_overhead_s=55.4e-6,
    vectorized_edge_cost_s=1.441e-6,
    blas_threads=8,
    blas1_threads=8,
    blas1_derate=1.0,
    kmeans_init="random",
    rci_overhead_s=2e-3,
)

PYTHON_27 = InterpreterProfile(
    name="Python",
    loop_overhead_s=55.3e-6,
    vectorized_edge_cost_s=1.571e-6,
    blas_threads=1,
    blas1_threads=1,
    blas1_derate=1.6,
    kmeans_init="k-means++",
    rci_overhead_s=8e-3,
)

_CPU = CPUCostModel(XEON_E5_2690)


def similarity_serial_time(profile: InterpreterProfile, nnz: int) -> float:
    """The paper's baseline similarity build: a scalar loop over edges."""
    return nnz * profile.loop_overhead_s


def similarity_vectorized_time(profile: InterpreterProfile, nnz: int) -> float:
    """The vectorized alternative the paper also reports (§V.C prose)."""
    return nnz * profile.vectorized_edge_cost_s


def spmv_time(
    profile: InterpreterProfile, n: int, nnz: int, cpu: CPUCostModel = _CPU
) -> float:
    """One CPU CSR SpMV inside the RCI loop."""
    return cpu.spmv_time(n, nnz, threads=profile.blas1_threads) * profile.blas1_derate


def takestep_time(
    profile: InterpreterProfile, n: int, j_avg: float, cpu: CPUCostModel = _CPU
) -> float:
    """One ARPACK ``TakeStep``: the reorthogonalization sweep (BLAS-2)."""
    nbytes = 2.0 * j_avg * n * 8.0
    return cpu.blas1_time(nbytes, threads=profile.blas1_threads) * profile.blas1_derate


def restart_time(
    profile: InterpreterProfile, n: int, m: int, k: int, cpu: CPUCostModel = _CPU
) -> float:
    """One implicit restart: m×m tridiagonal eig + shift sweeps + V·Q."""
    t = cpu.blas3_time(15.0 * m**3, threads=1)
    t += cpu.blas3_time(6.0 * (m - k) * m * m, threads=1)
    t += cpu.blas3_time(2.0 * n * m * k, threads=profile.blas_threads)
    return t


def eigensolver_time(
    profile: InterpreterProfile,
    n: int,
    nnz: int,
    k: int,
    m: int,
    n_op: int,
    n_restarts: int,
    cpu: CPUCostModel = _CPU,
) -> float:
    """Total baseline eigensolver time for a given iteration history.

    The structure mirrors the paper's complexity expression (10): the
    per-iteration CPU interface cost plus the per-restart dense work, with
    the SpMV on the *CPU* — the one term the hybrid implementation moves
    to the GPU.
    """
    j_avg = (k + m) / 2.0
    per_op = (
        takestep_time(profile, n, j_avg, cpu)
        + spmv_time(profile, n, nnz, cpu)
        + profile.rci_overhead_s
    )
    total = n_op * per_op
    total += n_restarts * restart_time(profile, n, m, k, cpu)
    total += cpu.blas3_time(2.0 * n * m * k, threads=profile.blas_threads)
    return total


def kmeans_time(
    profile: InterpreterProfile,
    n: int,
    d: int,
    k: int,
    iters: int,
    cpu: CPUCostModel = _CPU,
) -> float:
    """Baseline Lloyd k-means: a per-cluster distance sweep each iteration.

    Matlab's kmeans and sklearn-0.17's C path both compute point-to-center
    distances cluster by cluster — ``k`` passes over the ``(n, d)`` data
    per iteration, memory bound — rather than one BLAS-3 product.  That
    access-pattern difference (not raw flops) is what the GPU's
    gemm-reformulated distance kernel exploits for its 100-400× speedups.
    """
    sweep_bytes = float(k) * n * d * 8.0
    per_iter = (
        cpu.blas1_time(sweep_bytes, threads=profile.blas1_threads)
        * profile.blas1_derate
    )
    init = per_iter if profile.kmeans_init == "k-means++" else 0.0
    return iters * per_iter + init
